#!/usr/bin/env bash
# Enforces statement-coverage floors on the packages whose correctness the
# serving path leans on hardest. The floors sit below current coverage
# (~91% each as of PR 3) so routine changes don't trip them, but a PR that
# lands a subsystem without tests does.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A floors=(
  ["./internal/serve"]=85
  ["./internal/matcher"]=85
  ["./internal/shardrpc"]=80
)

fail=0
for pkg in "${!floors[@]}"; do
  floor=${floors[$pkg]}
  out=$(go test -cover "$pkg" 2>&1 | tail -n 1)
  pct=$(printf '%s\n' "$out" | grep -oE 'coverage: [0-9.]+%' | grep -oE '[0-9.]+' || true)
  if [ -z "$pct" ]; then
    echo "could not read coverage for $pkg: $out" >&2
    fail=1
    continue
  fi
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "$pkg coverage ${pct}% is below the ${floor}% floor" >&2
    fail=1
  else
    echo "$pkg coverage ${pct}% >= ${floor}%"
  fi
done
exit "$fail"
