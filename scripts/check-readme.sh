#!/usr/bin/env bash
# Fails when README.md references an HTTP endpoint or a bellflower-server
# flag that no longer exists in the code, so the docs cannot silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Endpoints: every /v1/..., /healthz or /metrics path named anywhere in the
# README must be registered in the server's mux.
for ep in $(grep -oE '/(v1/[a-z/]+|healthz|metrics)' README.md | sed 's:/$::' | sort -u); do
  if ! grep -qF "\"$ep\"" cmd/bellflower-server/server.go; then
    echo "README references endpoint $ep, which is not registered in cmd/bellflower-server/server.go" >&2
    fail=1
  fi
done

# Flags: every backticked -flag inside the server-flags section must be
# defined by the server's flag set.
section=$(sed -n '/<!-- server-flags:begin -->/,/<!-- server-flags:end -->/p' README.md)
if [ -z "$section" ]; then
  echo "README is missing the server-flags section markers" >&2
  exit 1
fi
for fl in $(printf '%s\n' "$section" | grep -oE '`-[a-z][a-z-]*`' | tr -d '\`' | sort -u); do
  name=${fl#-}
  if ! grep -qE "fs\.[A-Za-z0-9]+\(\"$name\"" cmd/bellflower-server/main.go; then
    echo "README documents flag $fl, which is not defined in cmd/bellflower-server/main.go" >&2
    fail=1
  fi
done

# ... and the reverse: every flag the server defines must be documented in
# the server-flags section, so new flags (e.g. the distributed -shard-of /
# -remote-shards pair) cannot ship undocumented.
for name in $(grep -oE 'fs\.[A-Za-z0-9]+\("[a-z][a-z-]*"' cmd/bellflower-server/main.go | sed -E 's/.*\("([a-z-]+)".*/\1/' | sort -u); do
  if ! printf '%s\n' "$section" | grep -q -- "\`-$name\`"; then
    echo "server flag -$name is not documented in the README server-flags section" >&2
    fail=1
  fi
done

# Metrics: every bellflower_* Prometheus metric named anywhere in the
# README must be emitted by the exporter, so renamed or retired series
# cannot linger in the docs (labels and histogram suffixes stripped; the
# exporter writes the bare family name in its HELP/TYPE lines).
for metric in $(grep -oE 'bellflower_[a-z_]+' README.md | sed -E 's/_(bucket|sum|count)$//' | sort -u); do
  if ! grep -q "$metric" internal/serve/prometheus.go; then
    echo "README references metric $metric, which internal/serve/prometheus.go does not emit" >&2
    fail=1
  fi
done

# ... and the reverse: every bellflower_* metric family the exporter
# emits (a quoted name in prometheus.go, including the per-shard series)
# must be named somewhere in the README, so new series cannot ship
# undocumented.
for metric in $(grep -oE '"bellflower_[a-z_]+"' internal/serve/prometheus.go | tr -d '"' | sort -u); do
  if ! grep -q "$metric" README.md; then
    echo "exporter emits metric $metric, which README.md does not document" >&2
    fail=1
  fi
done

# Debug endpoints: when the README documents the -debug-addr listener,
# the paths it names must be mounted by debugRoutes.
for ep in /debug/pprof/ /debug/vars; do
  if grep -q "$ep" README.md && ! grep -qF "\"$ep\"" cmd/bellflower-server/server.go; then
    echo "README references debug endpoint $ep, which is not registered in cmd/bellflower-server/server.go" >&2
    fail=1
  fi
done

# Shard wire endpoints: when the README documents the distributed mode,
# the endpoints it names must be mounted by the shard-mode mux.
for ep in /v1/shard/match /v1/shard/stats; do
  if grep -q "$ep" README.md && ! grep -qF "\"$ep\"" cmd/bellflower-server/server.go; then
    echo "README references shard endpoint $ep, which is not registered in cmd/bellflower-server/server.go" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "README.md is out of sync with the server; fix the docs or the code" >&2
  exit 1
fi
echo "README endpoints and flags are in sync"
