#!/usr/bin/env bash
# Multi-process smoke test for distributed serving: two shard-server
# processes plus one router process, one end-to-end match through the
# public API, and a stats scrape proving the fan-out actually crossed
# process boundaries. Then the control-plane drill: kill one shard
# mid-run, assert the -partial router keeps answering (Incomplete) and
# reports the shard unhealthy, restart the shard, and assert probes
# re-admit it. Run from anywhere; used by CI.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)/bellflower-server
PORT_A=18181 PORT_B=18182 PORT_R=18180
SYNTH="-synthetic 1200 -seed 7"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/bellflower-server

"$BIN" $SYNTH -shard-of 0/2 -addr "127.0.0.1:$PORT_A" &
PIDS+=($!)
"$BIN" $SYNTH -shard-of 1/2 -addr "127.0.0.1:$PORT_B" &
PIDS+=($!)

wait_healthy() {
  local port=$1
  for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "process on port $port never became healthy" >&2
  return 1
}
wait_healthy "$PORT_A"
wait_healthy "$PORT_B"

# Partial mode with fast health probes, so the control-plane drill below
# can observe mark-down and re-admission within seconds.
"$BIN" $SYNTH -remote-shards "127.0.0.1:$PORT_A,127.0.0.1:$PORT_B" -addr "127.0.0.1:$PORT_R" \
  -partial -health-interval 200ms -health-failures 2 &
PIDS+=($!)
wait_healthy "$PORT_R"

# One end-to-end match through the router: must be a 200 with a pipeline
# section and no incomplete marker (all shards are healthy).
resp=$(curl -sf "http://127.0.0.1:$PORT_R/v1/match" \
  -d '{"personal":"book(title,author)","options":{"delta":0.5,"min_sim":0.3,"top_n":5,"variant":"tree"}}')
echo "$resp" | grep -q '"pipeline"' || { echo "match response carries no pipeline stats: $resp" >&2; exit 1; }
if echo "$resp" | grep -q '"incomplete": true'; then
  echo "healthy distributed fan-out reported incomplete: $resp" >&2
  exit 1
fi

# The router's stats must show a two-shard rollup, and each shard server
# must have served exactly the fanned-out pipeline work. Buffer the body
# before grepping: `curl | grep -q` under pipefail dies on the EPIPE that
# grep's early exit sends once the stats payload outgrows one pipe write.
stats=$(curl -sf "http://127.0.0.1:$PORT_R/v1/stats")
echo "$stats" | grep -q '"shards"' \
  || { echo "router stats carry no per-shard breakdown" >&2; exit 1; }
for port in "$PORT_A" "$PORT_B"; do
  runs=$(curl -sf "http://127.0.0.1:$port/v1/shard/stats" | grep -o '"pipeline_runs": *[0-9]*' | grep -o '[0-9]*$')
  if [ "${runs:-0}" -lt 1 ]; then
    echo "shard on port $port served no pipeline runs; fan-out never reached it" >&2
    exit 1
  fi
done

# --- Control-plane drill: kill shard B mid-run. ---------------------------
kill "${PIDS[1]}" 2>/dev/null || true
wait "${PIDS[1]}" 2>/dev/null || true

# The router's probes must mark the dead shard unhealthy within seconds.
down=0
for _ in $(seq 1 50); do
  if curl -sf "http://127.0.0.1:$PORT_R/v1/stats" | grep -q '"healthy": false'; then down=1; break; fi
  sleep 0.2
done
if [ "$down" -ne 1 ]; then
  echo "router never marked the killed shard unhealthy in /v1/stats" >&2
  exit 1
fi

# With the shard marked down, the -partial router must keep answering:
# 200, Incomplete merge, and promptly (the skip pays no request timeout).
resp=$(curl -sf --max-time 5 "http://127.0.0.1:$PORT_R/v1/match" \
  -d '{"personal":"book(title,author)","options":{"delta":0.5,"min_sim":0.3,"top_n":7,"variant":"tree"}}')
echo "$resp" | grep -q '"incomplete": true' \
  || { echo "match with a dead shard was not served as a partial result: $resp" >&2; exit 1; }

# Restart shard B on the same port: probes must re-verify the descriptor
# and re-admit it, after which matches are complete again.
"$BIN" $SYNTH -shard-of 1/2 -addr "127.0.0.1:$PORT_B" &
PIDS[1]=$!
wait_healthy "$PORT_B"
up=0
for _ in $(seq 1 50); do
  if ! curl -sf "http://127.0.0.1:$PORT_R/v1/stats" | grep -q '"healthy": false'; then up=1; break; fi
  sleep 0.2
done
if [ "$up" -ne 1 ]; then
  echo "router never re-admitted the restarted shard" >&2
  exit 1
fi
resp=$(curl -sf "http://127.0.0.1:$PORT_R/v1/match" \
  -d '{"personal":"book(title,author)","options":{"delta":0.5,"min_sim":0.3,"top_n":9,"variant":"tree"}}')
if echo "$resp" | grep -q '"incomplete": true'; then
  echo "match after shard re-admission still incomplete: $resp" >&2
  exit 1
fi

echo "distributed smoke: 2 shard servers + 1 router served one match end to end,"
echo "  survived a shard kill as a partial result, and re-admitted the restarted shard"
