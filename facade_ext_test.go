package bellflower

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestShardedServiceFacade is the facade-level golden comparison: a
// 4-shard fan-out must deliver the same top-N report as the unsharded
// service.
func TestShardedServiceFacade(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.TargetNodes = 900
	repo, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MinSim = 0.3
	opts.Threshold = 0.6
	opts.Variant = VariantTree
	opts.TopN = 5

	svc := NewService(repo, ServiceConfig{})
	defer svc.Close()
	sharded := NewShardedService(repo, 4, ServiceConfig{})
	defer sharded.Close()
	if sharded.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", sharded.NumShards())
	}

	personal := MustParseSchema("address(name,email)")
	want, err := svc.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Mappings) == 0 {
		t.Fatal("no mappings; golden comparison is vacuous")
	}
	wd, gd := want.Deltas(), got.Deltas()
	if len(wd) != len(gd) {
		t.Fatalf("sharded top-N has %d mappings, unsharded %d", len(gd), len(wd))
	}
	for i := range wd {
		if wd[i] != gd[i] {
			t.Errorf("rank %d: sharded Δ %v, unsharded %v", i, gd[i], wd[i])
		}
	}

	// Prometheus rendering through the facade covers every shard.
	var b strings.Builder
	if err := WritePrometheusMetrics(&b, sharded); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "bellflower_shards 4") {
		t.Errorf("metrics missing shard gauge:\n%s", b.String())
	}

	// Shard counts clamp to the tree count.
	small := NewRepository()
	small.MustAdd(MustParseSchema("a(b,c)"))
	one := NewShardedService(small, 8, ServiceConfig{})
	defer one.Close()
	if one.NumShards() != 1 {
		t.Errorf("1-tree repository sharded %d ways", one.NumShards())
	}
}

func TestSaveLoadRepositoryFacade(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.TargetNodes = 600
	repo, err := Synthetic(cfg)
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	var buf bytes.Buffer
	if err := SaveRepository(&buf, repo); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := LoadRepository(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Len() != repo.Len() || back.NumTrees() != repo.NumTrees() {
		t.Errorf("round trip lost data: %d/%d nodes", back.Len(), repo.Len())
	}
	// A loaded repository must be fully matchable.
	m := NewMatcher(back)
	opts := DefaultOptions()
	opts.MinSim = 0.3
	rep, err := m.Match(MustParseSchema("address(name,email)"), opts)
	if err != nil {
		t.Fatalf("Match on loaded repo: %v", err)
	}
	if rep.MappingElements == 0 {
		t.Errorf("loaded repository yields no candidates")
	}
}

func TestInferSchemaFacade(t *testing.T) {
	tr, err := InferSchema(strings.NewReader(
		`<contacts><person id="1"><name>A</name><email>a@x</email></person>
		 <person id="2"><name>B</name><phone>5</phone></person></contacts>`))
	if err != nil {
		t.Fatalf("InferSchema: %v", err)
	}
	if tr.String() != "contacts(person(id@,name,email,phone))" {
		t.Errorf("inferred = %q", tr.String())
	}
	// Use the inferred tree as a repository schema.
	repo := NewRepository()
	repo.MustAdd(tr)
	m := NewMatcher(repo)
	opts := DefaultOptions()
	opts.Variant = VariantTree
	opts.Threshold = 0.5
	opts.MinSim = 0.4
	rep, err := m.Match(MustParseSchema("person(name,email)"), opts)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(rep.Mappings) == 0 {
		t.Errorf("no mappings against inferred schema")
	}
}

func TestNewStructureMatcherFacade(t *testing.T) {
	for _, kind := range []string{"path", "child", "leaf"} {
		sm, err := NewStructureMatcher(kind)
		if err != nil {
			t.Fatalf("NewStructureMatcher(%q): %v", kind, err)
		}
		if sm == nil {
			t.Fatalf("nil matcher for %q", kind)
		}
	}
	if _, err := NewStructureMatcher("bogus"); err == nil {
		t.Errorf("bogus kind accepted")
	}

	// Two-phase matching through the facade.
	repo := NewRepository()
	repo.MustAdd(MustParseSchema("lib(book(title,author))"))
	repo.MustAdd(MustParseSchema("misc(title,junk(author))"))
	m := NewMatcher(repo)
	sm, _ := NewStructureMatcher("path")
	opts := DefaultOptions()
	opts.Variant = VariantTree
	opts.Threshold = 0.4
	opts.MinSim = 0.4
	opts.StructureMatcher = sm
	opts.StructureWeight = 0.5
	rep, err := m.Match(MustParseSchema("book(title,author)"), opts)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(rep.Mappings) == 0 || rep.Mappings[0].Images[0].Tree().ID != 0 {
		t.Errorf("two-phase matching did not prefer the structurally faithful tree")
	}
}

func TestAgglomerativeFacade(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.TargetNodes = 1200
	repo, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(repo)
	personal := MustParseSchema("address(name,email)")
	opts := DefaultOptions()
	opts.MinSim = 0.3
	opts.Agglomerative = true
	rep, err := m.Match(personal, opts)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if rep.Clusters == 0 {
		t.Errorf("agglomerative produced no clusters")
	}
	// Still a valid matching run.
	for _, mp := range rep.Mappings {
		if mp.Score.Delta < opts.Threshold {
			t.Errorf("mapping below threshold")
		}
	}
}

func TestCostModelFacade(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.TargetNodes = 1500
	repo, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(repo)
	personal := MustParseSchema("address(name,email)")
	opts := DefaultOptions()
	opts.MinSim = 0.3
	rep, err := m.Match(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters.PartialMappings == 0 {
		t.Skip("no partial mappings to calibrate from")
	}
	model, err := CalibrateCostModel(
		rep.ClusterTime.Seconds(), float64(rep.Clusters*rep.Iterations*rep.MappingElements),
		rep.GenTime.Seconds(), float64(rep.Counters.PartialMappings),
	)
	if err != nil {
		t.Fatalf("CalibrateCostModel: %v", err)
	}
	if model.SecondsPerPartial <= 0 {
		t.Errorf("model = %+v", model)
	}
}

// TestPartitionStrategyFacade covers the facade wiring of the shard
// partition strategies: parsing, the explicit-strategy constructor, and
// report equivalence between the two strategies.
func TestPartitionStrategyFacade(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PartitionStrategy
	}{
		{"balanced", PartitionBalanced},
		{"clustered", PartitionClustered},
	} {
		got, err := ParsePartitionStrategy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePartitionStrategy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePartitionStrategy("round-robin"); err == nil {
		t.Error("unknown strategy accepted")
	}

	cfg := DefaultSyntheticConfig()
	cfg.TargetNodes = 600
	repo, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MinSim = 0.3
	opts.Threshold = 0.6
	opts.Variant = VariantTree
	personal := MustParseSchema("address(name,email)")

	var deltas [][]float64
	for _, strategy := range []PartitionStrategy{PartitionBalanced, PartitionClustered} {
		svc := NewShardedServicePartitioned(repo, 3, ServiceConfig{}, strategy)
		rep, err := svc.Match(context.Background(), personal, opts)
		if err != nil {
			svc.Close()
			t.Fatalf("%v: %v", strategy, err)
		}
		deltas = append(deltas, rep.Deltas())
		if st := svc.Stats(); st.CandidatePrePass != 1 {
			t.Errorf("%v: candidate pre-pass ran %d times, want 1", strategy, st.CandidatePrePass)
		}
		svc.Close()
	}
	if len(deltas[0]) == 0 {
		t.Fatal("no mappings; strategy comparison is vacuous")
	}
	if len(deltas[0]) != len(deltas[1]) {
		t.Fatalf("balanced found %d mappings, clustered %d", len(deltas[0]), len(deltas[1]))
	}
	for i := range deltas[0] {
		if deltas[0][i] != deltas[1][i] {
			t.Errorf("rank %d: balanced Δ %v, clustered %v", i, deltas[0][i], deltas[1][i])
		}
	}
}
