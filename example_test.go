package bellflower_test

import (
	"fmt"
	"strings"

	"bellflower"
)

// The paper's Fig. 1: match a personal book schema against a library
// schema and print the best mapping.
func Example() {
	repo := bellflower.NewRepository()
	tree, _ := bellflower.ParseSchema("lib(address,book(authorName,data(title),shelf))")
	repo.MustAdd(tree)

	personal := bellflower.MustParseSchema("book(title,author)")
	opts := bellflower.DefaultOptions()
	opts.Variant = bellflower.VariantTree
	opts.Threshold = 0.5
	opts.MinSim = 0.4

	m := bellflower.NewMatcher(repo)
	report, _ := m.Match(personal, opts)
	fmt.Println(bellflower.FormatMapping(personal, report.Mappings[0]))
	// Output: Δ=0.871 book→/lib/book  title→/lib/book/data/title  author→/lib/book/authorName
}

// Rewrite a personal-schema XPath query over a discovered mapping.
func ExampleMatcher_RewriteQuery() {
	repo := bellflower.NewRepository()
	tree, _ := bellflower.ParseSchema("lib(address,book(authorName,data(title),shelf))")
	repo.MustAdd(tree)

	personal := bellflower.MustParseSchema("book(title,author)")
	opts := bellflower.DefaultOptions()
	opts.Variant = bellflower.VariantTree
	opts.Threshold = 0.5
	opts.MinSim = 0.4

	m := bellflower.NewMatcher(repo)
	report, _ := m.Match(personal, opts)
	q, _ := m.RewriteQuery(`/book[title="Iliad"]/author`, personal, report.Mappings[0])
	fmt.Println(q)
	// Output: /lib/book[data/title="Iliad"]/authorName
}

// Parse the compact schema spec syntax.
func ExampleParseSchema() {
	tree, _ := bellflower.ParseSchema("book(title:string,author(first,last),isbn@:token)")
	fmt.Print(bellflower.FormatSchema(tree))
	// Output:
	// book
	//   title:string
	//   author
	//     first
	//     last
	//   @isbn:token
}

// Ingest an XML Schema document.
func ExampleParseXSD() {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="contact">
	    <xs:complexType><xs:sequence>
	      <xs:element name="name" type="xs:string"/>
	      <xs:element name="email" type="xs:string"/>
	    </xs:sequence></xs:complexType>
	  </xs:element>
	</xs:schema>`
	trees, _ := bellflower.ParseXSD(strings.NewReader(src))
	fmt.Println(trees[0])
	// Output: contact(name,email)
}

// Infer a schema tree from an instance document: repeated siblings merge.
func ExampleInferSchema() {
	doc := `<lib><book isbn="1"><title>A</title></book><book isbn="2"><author>B</author></book></lib>`
	tree, _ := bellflower.InferSchema(strings.NewReader(doc))
	fmt.Println(tree)
	// Output: lib(book(isbn@,title,author))
}
