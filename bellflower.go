// Package bellflower is a clustered XML schema matching library — an
// open-source reproduction of "Using Element Clustering to Increase the
// Efficiency of XML Schema Matching" (Smiljanić, van Keulen, Jonker;
// ICDE 2006) and of its experimental system, Bellflower.
//
// Schema matching discovers semantic mappings between a small personal
// schema and a large repository of schema trees. The search space of
// candidate mappings grows exponentially with the personal schema size, so
// Bellflower inserts a k-means clustering step between element matching and
// mapping generation: the repository candidates are partitioned into
// regions (clusters) and the Branch & Bound mapping generator runs per
// cluster, trading a controlled loss of low-ranked mappings for a large
// efficiency gain.
//
// # Quick start
//
//	repo := bellflower.NewRepository()
//	tree, _ := bellflower.ParseSchema("lib(address,book(authorName,data(title),shelf))")
//	repo.MustAdd(tree)
//
//	m := bellflower.NewMatcher(repo)
//	personal, _ := bellflower.ParseSchema("book(title,author)")
//	report, _ := m.Match(personal, bellflower.DefaultOptions())
//	for _, mp := range report.Mappings {
//	    fmt.Println(bellflower.FormatMapping(personal, mp))
//	}
//
// Repositories can also be ingested from XSD and DTD files (ParseXSD,
// ParseDTD) or generated synthetically at the paper's experimental scale
// (Synthetic). Discovered mappings can rewrite personal-schema XPath
// queries into repository queries (Matcher.RewriteQuery), completing the
// personal-schema-querying workflow the paper's introduction motivates.
//
// # Serving
//
// For many users sharing one indexed repository, NewService wraps a
// Matcher's pipeline in a long-lived concurrent matching service: match
// requests flow through a bounded worker pool, identical in-flight
// requests are deduplicated into one pipeline run, and completed reports
// are cached in an LRU keyed by the canonical request signature. Requests
// honour context deadlines and cancellation end to end.
//
//	svc := bellflower.NewService(repo, bellflower.ServiceConfig{Workers: 8})
//	defer svc.Close()
//
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	report, err := svc.Match(ctx, personal, bellflower.DefaultOptions())
//	stats := svc.Stats() // cache hits, dedupe, queue depth, latency histogram
//
// To scale beyond one worker pool, NewShardedService partitions the
// repository into shards — by default co-locating trees with overlapping
// vocabulary (candidate matching is per-tree and clusters never span
// schema trees, so partitioning loses no candidate mappings) — runs one
// Service per shard and fans each request out across all of them, merging
// the per-shard ranked lists into one global top-N report. Shards are
// views over a single shared labelling index, so index memory stays one
// full-repository copy regardless of shard count, and all caches answer
// to one byte-budget memory governor. A shared pre-pass runs element
// matching and clustering once against the full repository per request
// shape and hands each shard its projection, so the merged report is
// exactly the unsharded one for every clustering variant and the cold
// path pays the quadratic matching stage once.
//
// The same services back the bellflower-server HTTP daemon
// (cmd/bellflower-server), which exposes /v1/match, /v1/match/batch,
// /v1/rewrite, /v1/repository, /v1/stats and /healthz as JSON endpoints
// plus Prometheus-format metrics at /metrics; examples/server is a client
// for it.
package bellflower

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/cost"
	"bellflower/internal/dtd"
	"bellflower/internal/labeling"
	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/pipeline"
	"bellflower/internal/query"
	"bellflower/internal/repogen"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
	"bellflower/internal/shardrpc"
	"bellflower/internal/trace"
	"bellflower/internal/xmldoc"
	"bellflower/internal/xsd"
)

// Core data model, re-exported from the internal packages so library users
// need only this import.
type (
	// Tree is a rooted labelled schema tree (personal schema or one
	// repository schema).
	Tree = schema.Tree

	// Node is a schema element or attribute.
	Node = schema.Node

	// Repository is a forest of schema trees.
	Repository = schema.Repository

	// Mapping is a discovered schema mapping s ↦ t with its decomposed
	// objective score.
	Mapping = mapgen.Mapping

	// PartialMapping covers only part of the personal schema (found in
	// non-useful clusters when Options.IncludePartials is set).
	PartialMapping = mapgen.PartialMapping

	// Report is the instrumented result of a Match run: the ranked
	// mappings plus the efficiency counters the paper's tables report.
	Report = pipeline.Report

	// ShardError records one shard's failure inside a Report marked
	// Incomplete by the partial-results fan-out.
	ShardError = pipeline.ShardError

	// Options configures a Match run; see DefaultOptions.
	Options = pipeline.Options

	// Variant selects the clustering configuration (VariantSmall /
	// VariantMedium / VariantLarge / VariantTree).
	Variant = pipeline.Variant

	// ObjectiveParams holds α (name vs path weight) and K (path
	// normalization) of the objective function.
	ObjectiveParams = objective.Params

	// ClusterConfig tunes the adapted k-means clusterer.
	ClusterConfig = cluster.Config

	// SyntheticConfig controls synthetic repository generation.
	SyntheticConfig = repogen.Config

	// ElementMatcher scores the similarity of two schema elements from
	// local properties; see NameMatcher, SynonymMatcher and TypeMatcher
	// in this package's constructors.
	ElementMatcher = matcher.Matcher

	// CostModel predicts clustered-matching cost from calibrated unit
	// costs (the paper's future-work cost model).
	CostModel = cost.Model

	// CostProblem describes a matching problem's size parameters for the
	// cost model.
	CostProblem = cost.Problem

	// Service is a long-lived concurrent matching service over one
	// indexed repository: bounded worker pool, in-flight request
	// deduplication, LRU report cache; see NewService.
	Service = serve.Service

	// ShardedService fans match requests out across repository shards (one
	// Service per partition) and merges the per-shard ranked lists into one
	// global report; see NewShardedService.
	ShardedService = serve.Router

	// ServiceBackend is the serving surface shared by Service and
	// ShardedService, letting embedders treat single-shard and sharded
	// deployments interchangeably.
	ServiceBackend = serve.Backend

	// ServiceConfig sizes a Service (workers, queue depth, cache size,
	// schema-size guard, default timeout).
	ServiceConfig = serve.Config

	// PartitionStrategy selects how NewShardedService distributes
	// repository trees across shards (PartitionBalanced /
	// PartitionClustered).
	PartitionStrategy = serve.PartitionStrategy

	// ServiceStats is a snapshot of a Service's instrumentation: cache
	// hits, in-flight dedupe, queue depth and the latency histogram.
	ServiceStats = serve.Stats

	// MatchRequest is one entry of Service.MatchBatch.
	MatchRequest = serve.Request

	// MatchResult pairs a MatchBatch entry's report with its error.
	MatchResult = serve.Result

	// ShardBackend is the narrow per-shard serving surface a
	// ShardedService fans out over — implemented by Service (in-process
	// shards) and by the remote shard client behind NewDistributedService.
	ShardBackend = serve.ShardBackend

	// ShardHost hosts one shard of a deterministically partitioned
	// repository for remote serving: its HandleMatch / HandleStats methods
	// are the /v1/shard/match and /v1/shard/stats endpoints of
	// bellflower-server's -shard-of mode. See NewShardHost.
	ShardHost = shardrpc.ShardServer

	// RequestTrace is one request's span collection; see StartRequestTrace.
	RequestTrace = trace.Trace

	// TraceSpan is one timed operation inside a RequestTrace.
	TraceSpan = trace.Span

	// TraceNode is one node of a rendered span tree (TraceSummary.Tree).
	TraceNode = trace.Node

	// TraceSummary is a finished trace rendered for transport: trace ID,
	// total duration and the span tree.
	TraceSummary = trace.Summary

	// TraceRecorder is a bounded in-memory ring of recent (and slow)
	// trace summaries; see NewTraceRecorder.
	TraceRecorder = trace.Recorder
)

// Service sentinel errors, for errors.Is.
var (
	// ErrServiceClosed is returned by Service.Match after Close.
	ErrServiceClosed = serve.ErrClosed

	// ErrSchemaTooLarge is wrapped in errors for personal schemas larger
	// than ServiceConfig.MaxSchemaNodes.
	ErrSchemaTooLarge = serve.ErrSchemaTooLarge
)

// Shard partition strategies for NewShardedService.
const (
	// PartitionBalanced distributes trees by node count alone: near-equal
	// shard loads, but vocabularies scatter across shards.
	PartitionBalanced = serve.PartitionBalanced
	// PartitionClustered (the default) co-locates trees with overlapping
	// label vocabularies, shrinking per-shard candidate sets; load balance
	// is bounded by a 2× average-load cap.
	PartitionClustered = serve.PartitionClustered
)

// ParsePartitionStrategy converts "balanced" or "clustered" to a
// PartitionStrategy, for flag wiring.
func ParsePartitionStrategy(s string) (PartitionStrategy, error) {
	return serve.ParsePartitionStrategy(s)
}

// Clustering variants (Sec. 5 of the paper).
const (
	// VariantTree is the non-clustered baseline: each repository tree is
	// one cluster.
	VariantTree = pipeline.VariantTree
	// VariantSmall joins clusters whose medoids are within distance 2.
	VariantSmall = pipeline.VariantSmall
	// VariantMedium joins within distance 3 (the paper's default).
	VariantMedium = pipeline.VariantMedium
	// VariantLarge joins within distance 4.
	VariantLarge = pipeline.VariantLarge
)

// NewRepository returns an empty schema repository.
func NewRepository() *Repository { return schema.NewRepository() }

// ParseSchema builds a tree from the compact spec syntax, e.g.
// "book(title,author(first,last),isbn@)". A trailing '@' marks attributes
// and ':type' declares datatypes.
func ParseSchema(spec string) (*Tree, error) { return schema.ParseSpec(spec) }

// MustParseSchema is ParseSchema but panics on error.
func MustParseSchema(spec string) *Tree { return schema.MustParseSpec(spec) }

// ParseXSD reads an XML Schema document and returns its trees, one per
// top-level element declaration.
func ParseXSD(r io.Reader) ([]*Tree, error) { return xsd.Parse(r) }

// ParseDTD reads a DTD document and returns its trees, one per root
// element.
func ParseDTD(r io.Reader) ([]*Tree, error) { return dtd.Parse(r) }

// InferSchema infers a schema tree from an XML instance document, merging
// repeated sibling elements into single declarations.
func InferSchema(r io.Reader) (*Tree, error) { return xmldoc.Infer(r) }

// WriteXSD serializes schema trees as one XML Schema document — the
// inverse of ParseXSD for the supported subset (attributes sort before
// element children on round trip).
func WriteXSD(w io.Writer, trees ...*Tree) error { return xsd.Write(w, trees...) }

// SaveRepository serializes a repository in a compact line-oriented text
// format that loads much faster than re-parsing schema files.
func SaveRepository(w io.Writer, r *Repository) error { return schema.WriteRepository(w, r) }

// LoadRepository reads a repository written by SaveRepository.
func LoadRepository(r io.Reader) (*Repository, error) { return schema.ReadRepository(r) }

// NewStructureMatcher returns a structural context matcher for two-phase
// matching (Options.StructureMatcher): kind is "path" (root-path context),
// "child" (immediate child names) or "leaf" (subtree leaf names).
func NewStructureMatcher(kind string) (ElementMatcher, error) {
	switch kind {
	case "path":
		return matcher.PathContextMatcher{}, nil
	case "child":
		return matcher.ChildContextMatcher{}, nil
	case "leaf":
		return matcher.LeafContextMatcher{}, nil
	default:
		return nil, fmt.Errorf("bellflower: unknown structure matcher %q (want path|child|leaf)", kind)
	}
}

// CalibrateCostModel fits the cost model's unit costs from a measured run:
// typically a Report's ClusterTime/GenTime with the problem's clustering
// op count and partial-mapping counter.
func CalibrateCostModel(clusterSeconds, clusterOps, genSeconds, partials float64) (CostModel, error) {
	return cost.Calibrate(clusterSeconds, clusterOps, genSeconds, partials)
}

// Synthetic generates a reproducible synthetic repository; see
// DefaultSyntheticConfig for the paper's experimental scale.
func Synthetic(cfg SyntheticConfig) (*Repository, error) { return repogen.Generate(cfg) }

// DefaultSyntheticConfig mirrors the paper's reference repository: 9759
// nodes over a few hundred trees with realistic vocabulary overlap and
// naming noise.
func DefaultSyntheticConfig() SyntheticConfig { return repogen.DefaultConfig() }

// DefaultOptions mirrors the paper's reference experiment: δ = 0.75,
// α = 0.5, K = 4, medium clusters.
func DefaultOptions() Options { return pipeline.DefaultOptions() }

// NewNameMatcher returns the paper-faithful fuzzy name matcher
// (CompareStringFuzzy); tokenAware additionally credits reordered compound
// names.
func NewNameMatcher(tokenAware bool) ElementMatcher {
	return matcher.NameMatcher{TokenAware: tokenAware}
}

// NewSynonymMatcher returns a dictionary matcher over the given synonym
// groups plus a built-in general-purpose dictionary.
func NewSynonymMatcher(groups ...[]string) ElementMatcher {
	m := matcher.DefaultSynonyms()
	for _, g := range groups {
		m.AddGroup(g...)
	}
	return m
}

// NewTypeMatcher returns a datatype-compatibility matcher.
func NewTypeMatcher() ElementMatcher { return matcher.TypeMatcher{} }

// NewCombinedMatcher merges matchers with the given weights (weighted
// average), the combining technique of COMA/LSD.
func NewCombinedMatcher(matchers []ElementMatcher, weights []float64) (ElementMatcher, error) {
	if len(matchers) != len(weights) || len(matchers) == 0 {
		return nil, fmt.Errorf("bellflower: %d matchers, %d weights", len(matchers), len(weights))
	}
	parts := make([]matcher.Weighted, len(matchers))
	for i := range matchers {
		if weights[i] < 0 {
			return nil, fmt.Errorf("bellflower: negative weight %v", weights[i])
		}
		parts[i] = matcher.Weighted{Matcher: matchers[i], Weight: weights[i]}
	}
	return matcher.NewCombined(parts...), nil
}

// NewService indexes the repository and starts a concurrent matching
// service around it; see the Serving section of the package documentation.
// Release it with Service.Close.
func NewService(repo *Repository, cfg ServiceConfig) *Service {
	return serve.NewFromRepository(repo, cfg)
}

// NewShardedService partitions the repository into up to shards partitions
// with the default vocabulary-clustered strategy and returns a router that
// fans every match request out across the shards concurrently, merging the
// ranked lists into one global top-N report — exactly the unsharded result
// for every clustering variant (see the serve.Router documentation).
// Shards are lightweight VIEWS over one shared labelling index — the
// repository is indexed exactly once regardless of the shard count; a
// shard is a set of member trees plus an ID translation, not a cloned
// sub-repository (candidate matching is per-tree and clusters never span
// trees, so partitioning loses no candidate mappings). With
// cfg.Workers == 0 the per-shard worker pools split GOMAXPROCS between
// them, keeping the default total worker budget equal to an unsharded
// NewService.
//
// The router runs a shared pre-pass: the cold-path element matching and
// clustering execute once against the full repository per request shape
// and are projected onto each shard, so shards run only mapping
// generation. Cache memory — every shard's report cache plus the pre-pass
// cache — is governed by one byte budget (ServiceConfig.CacheBytes) with
// an optional TTL (ServiceConfig.CacheTTL), and
// ServiceConfig.PartialResults opts into merging partially failed
// fan-outs as Incomplete reports instead of failing them.
//
// shards values below 1 (and above the tree count) are clamped; a one-shard
// router behaves exactly like a plain Service. Release it with Close.
func NewShardedService(repo *Repository, shards int, cfg ServiceConfig) *ShardedService {
	return serve.NewRouterFromRepository(repo, shards, cfg)
}

// NewShardedServicePartitioned is NewShardedService with an explicit shard
// partition strategy (PartitionBalanced or PartitionClustered).
func NewShardedServicePartitioned(repo *Repository, shards int, cfg ServiceConfig, strategy PartitionStrategy) *ShardedService {
	return serve.NewRouterWithPartition(repo, shards, cfg, strategy)
}

// NewShardHost builds the serving side of one DISTRIBUTED shard: the
// repository is partitioned deterministically into shards views with the
// given strategy — exactly as the router process partitions its own copy —
// and shard (0-based) is hosted by a view-backed Service behind the shard
// wire protocol. Mount the host's HandleMatch and HandleStats handlers (or
// run bellflower-server -shard-of SHARD/SHARDS) and point
// NewDistributedService at the address. Release with ShardHost.Close.
//
// The shard's worker pool is sized by cfg alone (default GOMAXPROCS): a
// shard host is assumed to own its process, unlike in-process shards that
// split one budget.
func NewShardHost(repo *Repository, shard, shards int, cfg ServiceConfig, strategy PartitionStrategy) (*ShardHost, error) {
	if shards < 1 {
		return nil, fmt.Errorf("bellflower: shard count %d must be at least 1", shards)
	}
	ix := labeling.NewIndex(repo)
	views := serve.PartitionRepositoryViews(ix, shards, strategy)
	if len(views) != shards {
		return nil, fmt.Errorf("bellflower: repository has %d trees, too few for %d shards (at most one shard per tree)", repo.NumTrees(), shards)
	}
	if shard < 0 || shard >= len(views) {
		return nil, fmt.Errorf("bellflower: shard index %d outside [0,%d)", shard, len(views))
	}
	v := views[shard]
	// The host process holds the full repository anyway (views are windows
	// over it), so it builds the full name-similarity index once; the view
	// runner's vocabulary is grouped from the shard's own node universe.
	svc := serve.New(pipeline.NewViewRunnerWithNameIndex(v, matcher.NewNameIndex(repo)), cfg)
	return shardrpc.NewShardServer(svc, v, shardrpc.ViewDescriptor(v, shard, len(views), strategy)), nil
}

// NewDistributedService builds a sharded service whose shards live in
// OTHER processes: the repository (the same file or synthetic seed the
// shard servers loaded) is partitioned into len(shardAddrs) views, shard i
// is served by the bellflower-server -shard-of i/n process(es) at
// shardAddrs[i], and every match request runs the shared pre-pass locally
// — element matching and clustering once against the full repository —
// then ships each shard its candidate projection and clusters over the
// wire (view-local node IDs). Merged reports are byte-identical to an
// unsharded run, exactly like the in-process NewShardedService.
//
// Each shardAddrs entry may name several REPLICAS of that shard separated
// by '|' ("hostA:8081|hostB:8081"): identical -shard-of i/n processes the
// router load-balances across (round-robin over the healthy ones) and
// fails over between mid-request on transport errors — one replica dying
// yields a complete report, not an Incomplete one. Every replica carries
// a background health monitor (cfg.HealthInterval probes with
// cfg.HealthFailures consecutive-failure mark-down; recovery is
// re-admitted only after a probe re-verifies the descriptor handshake),
// and under cfg.PartialResults a shard whose replicas are ALL unhealthy
// is skipped without paying a per-request timeout.
//
// Every shard is health-checked at construction: a replica answering with
// a DIFFERENT descriptor (wrong -shard-of index, different partition
// strategy or repository) always fails — that topology would return wrong
// mappings. A shard with NO reachable replica fails under strict routing,
// but with cfg.PartialResults it is tolerated: requests are served from
// the live shards as Incomplete reports until a replica returns (replicas
// unreachable at construction start marked unhealthy). Per-request, shard
// failures feed the same partial-results machinery (Report.Incomplete,
// ShardErrors, per-shard metrics).
//
// cfg.DefaultTimeout doubles as the per-replica request attempt timeout.
// Release with Close — which stops the monitors and releases the clients,
// never the remote servers.
func NewDistributedService(repo *Repository, shardAddrs []string, cfg ServiceConfig, strategy PartitionStrategy) (*ShardedService, error) {
	if len(shardAddrs) == 0 {
		return nil, errors.New("bellflower: NewDistributedService needs at least one shard address")
	}
	switch cfg.WireCodec {
	case "", shardrpc.CodecAuto, shardrpc.CodecJSON, shardrpc.CodecBinary:
	default:
		return nil, fmt.Errorf("bellflower: unknown wire codec %q (want auto, json or binary)", cfg.WireCodec)
	}
	ix := labeling.NewIndex(repo)
	views := serve.PartitionRepositoryViews(ix, len(shardAddrs), strategy)
	if len(views) != len(shardAddrs) {
		return nil, fmt.Errorf("bellflower: %d shard servers for a repository of %d trees (at most one shard per tree)", len(shardAddrs), repo.NumTrees())
	}
	hcfg := serve.HealthConfig{
		Interval:         cfg.HealthInterval,
		FailureThreshold: cfg.HealthFailures,
	}
	backends := make([]serve.ShardBackend, len(views))
	groups := make([]*shardrpc.ReplicaSet, len(views))
	descs := shardrpc.ViewDescriptors(views, strategy)
	for i, v := range views {
		addrs := strings.Split(shardAddrs[i], "|")
		replicas := make([]*shardrpc.RemoteShard, 0, len(addrs))
		for _, addr := range addrs {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				return nil, fmt.Errorf("bellflower: shard %d: empty replica address in %q", i, shardAddrs[i])
			}
			replicas = append(replicas, shardrpc.NewRemoteShard(addr, v, descs[i],
				shardrpc.RemoteShardConfig{Timeout: cfg.DefaultTimeout, Codec: cfg.WireCodec}))
		}
		groups[i] = shardrpc.NewReplicaSet(replicas, hcfg)
		backends[i] = groups[i]
	}
	// Health-check every shard CONCURRENTLY under one deadline: a shard
	// that hangs must not eat the others' budget — a reachable but
	// misconfigured shard has the full window to answer, so a descriptor
	// mismatch is never misread as mere unreachability. The window follows
	// the operator's request timeout when that is the longer of the two
	// (a shard slow to come up deserves the same patience as a request).
	window := 5 * time.Second
	if cfg.DefaultTimeout > window {
		window = cfg.DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	checkErrs := make([]error, len(groups))
	var wg sync.WaitGroup
	wg.Add(len(groups))
	for i, g := range groups {
		go func(i int, g *shardrpc.ReplicaSet) {
			defer wg.Done()
			checkErrs[i] = g.Check(ctx)
		}(i, g)
	}
	wg.Wait()
	for _, err := range checkErrs {
		if err == nil {
			continue
		}
		if errors.Is(err, shardrpc.ErrDescriptorMismatch) || !cfg.PartialResults {
			return nil, err
		}
		// Unreachable but tolerated: partial-results mode serves Incomplete
		// reports from the healthy shards until a replica returns.
	}
	if cfg.HealthInterval >= 0 {
		for _, g := range groups {
			g.StartHealth()
		}
	}
	return serve.NewRouterWithShardBackends(ix, views, backends, cfg), nil
}

// Matcher runs clustered schema matching against a fixed repository. It
// precomputes the node-labelling index once; Match calls reuse it.
//
// A Matcher is safe for concurrent use: any number of goroutines may call
// Match, MatchContext and RewriteQuery at once.
type Matcher struct {
	runner *pipeline.Runner
}

// NewMatcher indexes the repository and returns a Matcher.
func NewMatcher(repo *Repository) *Matcher {
	return &Matcher{runner: pipeline.NewRunner(repo)}
}

// Repository returns the matcher's repository.
func (m *Matcher) Repository() *Repository { return m.runner.Repository() }

// Match runs the full pipeline — element matching, clustering, per-cluster
// Branch & Bound mapping generation — and returns the instrumented report
// with the ranked mappings.
func (m *Matcher) Match(personal *Tree, opts Options) (*Report, error) {
	return m.runner.Run(personal, opts)
}

// MatchContext is Match bounded by a context: the run honours ctx's
// deadline and cancellation, stopping early between pipeline stages and
// clusters.
func (m *Matcher) MatchContext(ctx context.Context, personal *Tree, opts Options) (*Report, error) {
	return m.runner.RunContext(ctx, personal, opts)
}

// Serve starts a concurrent matching service sharing this Matcher's
// repository index (no re-indexing); see NewService.
func (m *Matcher) Serve(cfg ServiceConfig) *Service {
	return serve.New(m.runner, cfg)
}

// RewriteQuery translates an XPath query over the personal schema (e.g.
// /book[title="Iliad"]/author) into a query over the repository schema,
// using a mapping discovered by Match.
func (m *Matcher) RewriteQuery(q string, personal *Tree, mp Mapping) (string, error) {
	parsed, err := query.Parse(q)
	if err != nil {
		return "", err
	}
	return query.Rewrite(parsed, personal, mp, m.runner.Index())
}

// StartRequestTrace opens a new request trace: the returned context carries
// the trace and its root span, so every pipeline and serving stage
// downstream records spans into it (a context without a trace records
// nothing, at no cost). End the root span before summarizing.
func StartRequestTrace(ctx context.Context, name string) (context.Context, *RequestTrace, *TraceSpan) {
	return trace.New(ctx, name)
}

// StartTraceSpan opens one child span on the context's trace; the returned
// span is nil-safe — if ctx carries no trace, End and SetAttr are no-ops.
func StartTraceSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	return trace.StartSpan(ctx, name)
}

// TraceFromContext returns the context's request trace, or nil.
func TraceFromContext(ctx context.Context) *RequestTrace { return trace.FromContext(ctx) }

// SetTracingEnabled turns request-trace creation on or off process-wide
// (on by default): an operational kill switch, and the benchmark
// harness's no-trace baseline. Disabling stops NEW traces; requests
// already carrying one finish normally, and the always-on instrumentation
// downstream degrades to its nil fast path.
func SetTracingEnabled(v bool) { trace.SetEnabled(v) }

// NewTraceRecorder builds a bounded ring of recent trace summaries plus a
// separate ring for traces at least slowThreshold long (0 disables slow
// capture). Non-positive caps select the defaults (64 recent, 32 slow).
// The recorder backs bellflower-server's /v1/traces endpoint.
func NewTraceRecorder(recentCap, slowCap int, slowThreshold time.Duration) *TraceRecorder {
	return trace.NewRecorder(recentCap, slowCap, slowThreshold)
}

// MergeServiceStats rolls per-shard stats snapshots into one: counters,
// capacities and histogram buckets are summed and the latency mean
// recomputed. A fanned-out request counts once per shard in the rollup.
func MergeServiceStats(ss ...ServiceStats) ServiceStats { return serve.MergeStats(ss...) }

// WritePrometheusMetrics renders a serving backend's stats snapshot in the
// Prometheus text exposition format — the payload behind the
// bellflower-server /metrics endpoint: the rolled-up metrics, plus
// per-shard series labelled {shard="N"} when the backend fans out. The
// metric names are documented in the project README.
func WritePrometheusMetrics(w io.Writer, b ServiceBackend) error {
	total, shards := b.Snapshot()
	return serve.WritePrometheusSnapshot(w, total, shards)
}

// FormatMapping renders a mapping as "personal ↦ repository" pairs with the
// similarity index, e.g.:
//
//	Δ=0.93  book→/lib/book  title→/lib/book/data/title  author→/lib/book/authorName
func FormatMapping(personal *Tree, m Mapping) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Δ=%.3f ", m.Score.Delta)
	for i, n := range personal.Nodes() {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s→%s", n.Name, m.Images[i].PathString())
	}
	return b.String()
}

// FormatSchema renders a tree as an indented outline for inspection.
func FormatSchema(t *Tree) string { return schema.FormatIndented(t) }
