package bellflower

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Sec. 5), plus ablation benchmarks for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The per-variant benchmarks report the paper's machine-independent
// efficiency indicators (search-space size, partial mappings, mappings
// found) as custom metrics alongside wall-clock time, so the table shapes
// are visible straight from the benchmark output.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/experiments"

	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

// env lazily builds the paper-scale environment (9759-node repository)
// shared by all benchmarks.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		e, err := experiments.NewEnv(experiments.DefaultSetup())
		if err != nil {
			panic(err)
		}
		benchEnv = e
	})
	return benchEnv
}

func benchOptions(e *experiments.Env, v pipeline.Variant) pipeline.Options {
	return pipeline.Options{
		Objective: objective.Params{Alpha: e.Setup.Alpha, K: e.Setup.K},
		Threshold: e.Setup.Threshold,
		MinSim:    e.Setup.MinSim,
		Variant:   v,
	}
}

// BenchmarkTable1 regenerates both halves of Table 1: for every clustering
// variant it runs the full pipeline and reports search space, partial
// mappings and mappings found as custom metrics.
func BenchmarkTable1(b *testing.B) {
	e := env(b)
	for _, v := range pipeline.Variants() {
		b.Run(v.String(), func(b *testing.B) {
			var rep *pipeline.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = e.Runner.Run(e.Personal, benchOptions(e, v))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Counters.SearchSpace, "searchspace")
			b.ReportMetric(float64(rep.Counters.PartialMappings), "partials")
			b.ReportMetric(float64(len(rep.Mappings)), "mappings")
			b.ReportMetric(float64(rep.UsefulClusters), "useful-clusters")
		})
	}
}

// BenchmarkFig4Reclustering regenerates Fig. 4: the k-means run under each
// reclustering strategy, reporting the resulting cluster count.
func BenchmarkFig4Reclustering(b *testing.B) {
	e := env(b)
	cands := matcher.FindCandidates(e.Personal, e.Repo, matcher.NameMatcher{},
		matcher.Config{MinSim: e.Setup.MinSim})
	ix := e.Runner.Index()
	cfgs := []struct {
		name string
		cfg  cluster.Config
	}{
		{"none", func() cluster.Config {
			c := cluster.DefaultConfig()
			c.JoinThreshold, c.RemoveBelow, c.SplitAbove = 0, 0, 0
			return c
		}()},
		{"join", func() cluster.Config {
			c := cluster.DefaultConfig()
			c.RemoveBelow, c.SplitAbove = 0, 0
			return c
		}()},
		{"join-remove", func() cluster.Config {
			c := cluster.DefaultConfig()
			c.SplitAbove = 0
			return c
		}()},
	}
	for _, tc := range cfgs {
		b.Run(tc.name, func(b *testing.B) {
			var res *cluster.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cluster.KMeans(ix, cands, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Clusters)), "clusters")
			b.ReportMetric(float64(res.Iterations), "iterations")
		})
	}
}

// BenchmarkFig5Preservation regenerates Fig. 5: preservation of mappings
// per variant against the tree baseline at δ = 0.75 and δ = 0.9.
func BenchmarkFig5Preservation(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for vi, label := range res.Labels {
				curve := res.Curves[vi]
				b.ReportMetric(curve[0].Preserved, label+"-preserved@0.75")
			}
		}
	}
}

// BenchmarkFig6Alpha regenerates Fig. 6: preservation under the three
// objective-function variants.
func BenchmarkFig6Alpha(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(e)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for ai, alpha := range res.Alphas {
				name := "preserved@0.75-alpha"
				switch alpha {
				case 0.25:
					name += "025"
				case 0.5:
					name += "050"
				default:
					name += "075"
				}
				b.ReportMetric(res.Curves[ai][0].Preserved, name)
			}
		}
	}
}

// BenchmarkEndToEnd measures the paper's bottom-line comparison: total
// matching time, non-clustered vs medium clusters.
func BenchmarkEndToEnd(b *testing.B) {
	e := env(b)
	for _, v := range []pipeline.Variant{pipeline.VariantTree, pipeline.VariantMedium} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Runner.Run(e.Personal, benchOptions(e, v)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md §6) ---

// BenchmarkAblationBnB compares Branch & Bound against exhaustive
// enumeration on the tree baseline — the paper's "30 times less partial
// mappings" observation.
func BenchmarkAblationBnB(b *testing.B) {
	e := env(b)
	for _, alg := range []mapgen.Algorithm{mapgen.BranchAndBound, mapgen.Exhaustive} {
		b.Run(alg.String(), func(b *testing.B) {
			var rep *pipeline.Report
			for i := 0; i < b.N; i++ {
				opts := benchOptions(e, pipeline.VariantTree)
				opts.Algorithm = alg
				var err error
				rep, err = e.Runner.Run(e.Personal, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Counters.PartialMappings), "partials")
		})
	}
}

// BenchmarkAblationSeeding compares MEmin seeding against uniform seeding
// with a similar centroid count.
func BenchmarkAblationSeeding(b *testing.B) {
	e := env(b)
	cands := matcher.FindCandidates(e.Personal, e.Repo, matcher.NameMatcher{},
		matcher.Config{MinSim: e.Setup.MinSim})
	ix := e.Runner.Index()
	n := e.Personal.Len()
	minSet := cands.MinSet()
	stride := 1
	if minSet >= 0 && len(cands.Sets[minSet].Elems) > 0 {
		stride = benchMax(1, cands.TotalMappingElements()/len(cands.Sets[minSet].Elems))
	}
	cfgs := []struct {
		name string
		cfg  cluster.Config
	}{
		{"memin", cluster.DefaultConfig()},
		{"uniform", func() cluster.Config {
			c := cluster.DefaultConfig()
			c.Seeding = cluster.SeedEveryKth
			c.SeedStride = stride
			return c
		}()},
	}
	for _, tc := range cfgs {
		b.Run(tc.name, func(b *testing.B) {
			var useful int
			for i := 0; i < b.N; i++ {
				res, err := cluster.KMeans(ix, cands, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				useful = len(res.UsefulClusters(n))
			}
			b.ReportMetric(float64(useful), "useful-clusters")
		})
	}
}

// BenchmarkAblationDistance compares the O(1) labelling-based tree distance
// against naive parent walking, the hot operation of k-means assignment.
func BenchmarkAblationDistance(b *testing.B) {
	e := env(b)
	ix := e.Runner.Index()
	// Collect same-tree query pairs.
	type pair struct{ a, b *schema.Node }
	var pairs []pair
	for _, t := range e.Repo.Trees() {
		ns := t.Nodes()
		for i := 0; i < len(ns) && len(pairs) < 4096; i += 7 {
			pairs = append(pairs, pair{ns[i], ns[(i*3+1)%len(ns)]})
		}
	}
	b.Run("labeled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			ix.Distance(p.a, p.b)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			p.a.Tree().Distance(p.a, p.b)
		}
	})
}

// BenchmarkAblationClusterer compares the adapted k-means against
// single-linkage agglomerative clustering on the full pipeline.
func BenchmarkAblationClusterer(b *testing.B) {
	e := env(b)
	for _, agg := range []bool{false, true} {
		name := "kmeans"
		if agg {
			name = "agglomerative"
		}
		b.Run(name, func(b *testing.B) {
			var rep *pipeline.Report
			for i := 0; i < b.N; i++ {
				opts := benchOptions(e, pipeline.VariantMedium)
				opts.Agglomerative = agg
				var err error
				rep, err = e.Runner.Run(e.Personal, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Clusters), "clusters")
			b.ReportMetric(float64(len(rep.Mappings)), "mappings")
			b.ReportMetric(rep.Counters.SearchSpace, "searchspace")
		})
	}
}

// BenchmarkAblationParallelism measures the parallel per-cluster
// generation extension.
func BenchmarkAblationParallelism(b *testing.B) {
	e := env(b)
	names := map[int]string{1: "sequential", 4: "parallel4"}
	for _, workers := range []int{1, 4} {
		b.Run(names[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := benchOptions(e, pipeline.VariantMedium)
				opts.Parallelism = workers
				if _, err := e.Runner.Run(e.Personal, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkElementMatching isolates step ② — the quadratic candidate
// search — at paper scale.
func BenchmarkElementMatching(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		matcher.FindCandidates(e.Personal, e.Repo, matcher.NameMatcher{},
			matcher.Config{MinSim: e.Setup.MinSim})
	}
}

// BenchmarkServiceThroughput measures served matches/sec through the
// concurrent matching service at paper scale, the baseline for future
// serving-path optimisations. "warm" repeats one request (cache-hit path);
// "cold" gives every request a unique signature (full pipeline run per
// request). The sharded variants fan every request out across 4 repository
// shards and merge the ranked lists — the same top-N report via
// shard-parallel matching. "sharded4-cold" exercises the router's shared
// candidate pre-pass (element matching once per candidate signature,
// projected per shard); "sharded4-cold-noprepass" is the pre-PR-3 baseline
// — the same shard services wrapped without a full-repository view, so
// every shard re-runs element matching against its partition on every cold
// request. Requests issue from parallel clients, as a daemon would see.
//
// Memory footprint is part of the measurement: every variant reports
// allocations (ReportAllocs) and an "index-bytes" gauge — the resident
// labelling-index memory, deduplicated by index identity. The sharded
// variants built from the repository run view-backed shards over ONE
// shared index, so their index-bytes equal the unsharded figure; the
// clone-based noprepass baseline shows what per-shard indexes cost.
func BenchmarkServiceThroughput(b *testing.B) {
	e := env(b)
	for _, tc := range []struct {
		name      string
		shards    int
		cold      bool
		noPrepass bool
	}{
		{name: "warm", shards: 1},
		{name: "cold", shards: 1, cold: true},
		{name: "sharded4-warm", shards: 4},
		{name: "sharded4-cold", shards: 4, cold: true},
		{name: "sharded4-cold-noprepass", shards: 4, cold: true, noPrepass: true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var backend serve.Backend
			switch {
			case tc.shards > 1 && tc.noPrepass:
				// Identical partitioning and worker split, but the shards
				// are wrapped via NewRouter, which has no full repository
				// to pre-match against.
				cfg := serve.Config{Workers: benchMax(1, runtime.GOMAXPROCS(0)/tc.shards)}
				parts := serve.PartitionRepositoryClustered(e.Repo, tc.shards)
				shards := make([]*serve.Service, len(parts))
				for i, p := range parts {
					shards[i] = serve.NewFromRepository(p, cfg)
				}
				backend = serve.NewRouter(shards)
			case tc.shards > 1:
				backend = serve.NewRouterFromRepository(e.Repo, tc.shards, serve.Config{})
			default:
				backend = serve.New(e.Runner, serve.Config{})
			}
			defer backend.Close()
			var uniq atomic.Int64
			b.ReportAllocs()
			start := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					opts := benchOptions(e, pipeline.VariantMedium)
					if tc.cold {
						// A unique huge TopN changes the request signature
						// (busting cache and dedupe) without changing the
						// work: the ranked list is never that long.
						opts.TopN = int(1e9 + uniq.Add(1))
					}
					if _, err := backend.Match(context.Background(), e.Personal, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "matches/sec")
			}
			st := backend.Stats()
			b.ReportMetric(float64(st.CacheHits), "cache-hits")
			b.ReportMetric(float64(st.PipelineRuns), "pipeline-runs")
			b.ReportMetric(float64(st.CandidatePrePass), "prepass-runs")
			// Resident labelling-index bytes (distinct indexes counted
			// once): the shared-index shard variants must sit at the
			// unsharded figure, the clone-based baseline above it.
			b.ReportMetric(float64(st.IndexBytes), "index-bytes")
			b.ReportMetric(float64(st.CacheBytes), "cache-bytes")
		})
	}
}

// BenchmarkServiceBatch measures MatchBatch with a mixed batch: one
// duplicate pair (dedupe/cache) and distinct entries.
func BenchmarkServiceBatch(b *testing.B) {
	e := env(b)
	svc := serve.New(e.Runner, serve.Config{})
	defer svc.Close()
	personals := []*schema.Tree{
		e.Personal,
		schema.MustParseSpec("customer(name,email,address)"),
		e.Personal, // duplicate of entry 0
		schema.MustParseSpec("order(id,item(name,price))"),
	}
	reqs := make([]serve.Request, len(personals))
	for i, p := range personals {
		reqs[i] = serve.Request{Personal: p, Opts: benchOptions(e, pipeline.VariantMedium)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, res := range svc.MatchBatch(context.Background(), reqs) {
			if res.Err != nil {
				b.Fatalf("entry %d: %v", j, res.Err)
			}
		}
	}
}

func benchMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}
