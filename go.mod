module bellflower

go 1.22
