// Xsdimport shows repository ingestion from schema files on disk: it writes
// a handful of .xsd and .dtd files to a temporary directory, loads them all
// into one repository, and matches a personal schema against it — the
// workflow for building a repository from harvested web schemas.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bellflower"
)

var files = map[string]string{
	"orders.xsd": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:complexType name="AddressType">
	    <xs:sequence>
	      <xs:element name="street" type="xs:string"/>
	      <xs:element name="city" type="xs:string"/>
	      <xs:element name="zip" type="xs:token"/>
	    </xs:sequence>
	  </xs:complexType>
	  <xs:element name="order">
	    <xs:complexType><xs:sequence>
	      <xs:element name="customer">
	        <xs:complexType><xs:sequence>
	          <xs:element name="name" type="xs:string"/>
	          <xs:element name="email" type="xs:string"/>
	          <xs:element name="address" type="AddressType"/>
	        </xs:sequence></xs:complexType>
	      </xs:element>
	      <xs:element name="total" type="xs:decimal"/>
	    </xs:sequence></xs:complexType>
	  </xs:element>
	</xs:schema>`,
	"contacts.dtd": `
	<!ELEMENT contacts (person*)>
	<!ELEMENT person (fullName, emailAddr, addr)>
	<!ELEMENT fullName (#PCDATA)>
	<!ELEMENT emailAddr (#PCDATA)>
	<!ELEMENT addr (street, city)>
	<!ELEMENT street (#PCDATA)>
	<!ELEMENT city (#PCDATA)>
	<!ATTLIST person id ID #REQUIRED>`,
	"staff.xsd": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="staff">
	    <xs:complexType><xs:sequence>
	      <xs:element name="employee">
	        <xs:complexType><xs:sequence>
	          <xs:element name="nome" type="xs:string"/>
	          <xs:element name="mail" type="xs:string"/>
	        </xs:sequence></xs:complexType>
	      </xs:element>
	    </xs:sequence></xs:complexType>
	  </xs:element>
	</xs:schema>`,
}

func main() {
	dir, err := os.MkdirTemp("", "bellflower-import")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o600); err != nil {
			log.Fatal(err)
		}
	}

	// Load every schema file in the directory.
	repo := bellflower.NewRepository()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		var trees []*bellflower.Tree
		if strings.HasSuffix(name, ".xsd") {
			trees, err = bellflower.ParseXSD(f)
		} else {
			trees, err = bellflower.ParseDTD(f)
		}
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for _, t := range trees {
			fmt.Printf("loaded %s -> %s\n", name, t)
			repo.MustAdd(t)
		}
	}

	personal := bellflower.MustParseSchema("person(name,email)")
	opts := bellflower.DefaultOptions()
	opts.Variant = bellflower.VariantTree
	opts.Threshold = 0.45
	opts.MinSim = 0.3
	opts.TopN = 5

	m := bellflower.NewMatcher(repo)
	report, err := m.Match(personal, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmatches for %s:\n", personal)
	for i, mp := range report.Mappings {
		fmt.Printf("%d. %s\n", i+1, bellflower.FormatMapping(personal, mp))
	}
}
