// Personalquery demonstrates the full personal-schema-querying workflow the
// paper's introduction motivates: the user writes a personal schema and an
// XPath query against it; the system matches the schema against the
// repository and rewrites the query over the best mappings, ready for
// evaluation against the real data sources.
package main

import (
	"fmt"
	"log"
	"strings"

	"bellflower"
)

// Repository schemas as they might be harvested from the web — note none of
// them matches the personal schema exactly.
var librarySchemas = []string{
	`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="library">
	    <xs:complexType><xs:sequence>
	      <xs:element name="address" type="xs:string"/>
	      <xs:element name="book">
	        <xs:complexType><xs:sequence>
	          <xs:element name="authorName" type="xs:string"/>
	          <xs:element name="data">
	            <xs:complexType><xs:sequence>
	              <xs:element name="title" type="xs:string"/>
	            </xs:sequence></xs:complexType>
	          </xs:element>
	          <xs:element name="shelf" type="xs:token"/>
	        </xs:sequence></xs:complexType>
	      </xs:element>
	    </xs:sequence></xs:complexType>
	  </xs:element>
	</xs:schema>`,
	`<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	  <xs:element name="bookstore">
	    <xs:complexType><xs:sequence>
	      <xs:element name="book">
	        <xs:complexType><xs:sequence>
	          <xs:element name="titel" type="xs:string"/>
	          <xs:element name="autor" type="xs:string"/>
	          <xs:element name="price" type="xs:decimal"/>
	        </xs:sequence></xs:complexType>
	      </xs:element>
	    </xs:sequence></xs:complexType>
	  </xs:element>
	</xs:schema>`,
}

const libraryDTD = `
<!ELEMENT publications (publication*)>
<!ELEMENT publication (title, author, year)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
`

func main() {
	repo := bellflower.NewRepository()
	for _, src := range librarySchemas {
		trees, err := bellflower.ParseXSD(strings.NewReader(src))
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range trees {
			repo.MustAdd(t)
		}
	}
	dtdTrees, err := bellflower.ParseDTD(strings.NewReader(libraryDTD))
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range dtdTrees {
		repo.MustAdd(t)
	}

	// The user's virtual view of the data, and a query in its terms.
	personal := bellflower.MustParseSchema("book(title,author)")
	userQuery := `/book[title="Iliad"]/author`

	opts := bellflower.DefaultOptions()
	opts.Variant = bellflower.VariantTree
	opts.Threshold = 0.55
	opts.MinSim = 0.4
	opts.TopN = 3

	m := bellflower.NewMatcher(repo)
	report, err := m.Match(personal, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("user query over the personal schema: %s\n\n", userQuery)
	fmt.Println("ranked mapping choices and their query rewrites:")
	for i, mp := range report.Mappings {
		rewritten, err := m.RewriteQuery(userQuery, personal, mp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d. %s\n   -> %s\n", i+1, bellflower.FormatMapping(personal, mp), rewritten)
	}
}
