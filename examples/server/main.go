// Command server demonstrates the bellflower-server HTTP API from the
// client side: match a personal schema, repeat the request to show the
// report cache, rewrite a query over the best mapping, and read the
// service stats.
//
// Start a daemon first, then run the client:
//
//	go run ./cmd/bellflower-server -synthetic 2500 -addr :8077
//	go run ./examples/server -addr http://127.0.0.1:8077
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8077", "bellflower-server base URL")
	personal := flag.String("personal", "book(title,author)", "personal schema spec")
	flag.Parse()
	if err := run(*addr, *personal); err != nil {
		fmt.Fprintln(os.Stderr, "server example:", err)
		fmt.Fprintln(os.Stderr, "hint: start the daemon with: go run ./cmd/bellflower-server -synthetic 2500")
		os.Exit(1)
	}
}

func run(addr, personal string) error {
	client := &http.Client{Timeout: 30 * time.Second}

	var health struct {
		Status string `json:"status"`
	}
	if err := getJSON(client, addr+"/healthz", &health); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", addr, err)
	}
	fmt.Printf("daemon healthy: %s\n", health.Status)

	var repo struct {
		Source string `json:"source"`
		Trees  int    `json:"trees"`
		Nodes  int    `json:"nodes"`
		Shards int    `json:"shards"`
	}
	if err := getJSON(client, addr+"/v1/repository", &repo); err != nil {
		return err
	}
	fmt.Printf("repository %s: %d trees, %d nodes, %d shard(s)\n", repo.Source, repo.Trees, repo.Nodes, repo.Shards)

	// Match twice: the second identical request is served from the cache.
	matchReq := map[string]any{
		"personal": personal,
		"options":  map[string]any{"delta": 0.5, "top_n": 5, "timeout_ms": 10000},
	}
	var match struct {
		Mappings []struct {
			Delta float64 `json:"delta"`
			Pairs []struct {
				Personal   string `json:"personal"`
				Repository string `json:"repository"`
			} `json:"pairs"`
		} `json:"mappings"`
		Pipeline struct {
			Clusters       int     `json:"clusters"`
			UsefulClusters int     `json:"useful_clusters"`
			MatchMS        float64 `json:"match_ms"`
			GenMS          float64 `json:"gen_ms"`
		} `json:"pipeline"`
	}
	for i := 1; i <= 2; i++ {
		start := time.Now()
		if err := postJSON(client, addr+"/v1/match", matchReq, &match); err != nil {
			return err
		}
		fmt.Printf("match #%d: %d mappings in %v (%d clusters, %d useful)\n",
			i, len(match.Mappings), time.Since(start).Round(time.Microsecond),
			match.Pipeline.Clusters, match.Pipeline.UsefulClusters)
	}
	for i, m := range match.Mappings {
		fmt.Printf("  %d. Δ=%.3f", i+1, m.Delta)
		for _, p := range m.Pairs {
			fmt.Printf("  %s→%s", p.Personal, p.Repository)
		}
		fmt.Println()
	}

	if len(match.Mappings) > 0 {
		var rewrite struct {
			Rewritten string  `json:"rewritten"`
			Delta     float64 `json:"delta"`
		}
		q := "/" + firstName(personal) + "/title"
		err := postJSON(client, addr+"/v1/rewrite", map[string]any{
			"personal": personal,
			"query":    q,
			"options":  map[string]any{"delta": 0.5},
		}, &rewrite)
		if err == nil {
			fmt.Printf("query rewrite (Δ=%.3f): %s -> %s\n", rewrite.Delta, q, rewrite.Rewritten)
		}
	}

	// Single-shard servers return the flat stats object; sharded servers
	// wrap the rollup as {"total":...,"shards":[...]}. Decode either.
	var raw struct {
		statsJSON             // flat shape
		Total     *statsJSON  `json:"total"`
		Shards    []statsJSON `json:"shards"`
	}
	if err := getJSON(client, addr+"/v1/stats", &raw); err != nil {
		return err
	}
	stats := raw.statsJSON
	if raw.Total != nil {
		stats = *raw.Total
	}
	fmt.Printf("stats: %d requests, %d cache hits, %d pipeline runs, mean latency %.2fms",
		stats.Requests, stats.CacheHits, stats.PipelineRuns, stats.Latency.MeanMS)
	if n := len(raw.Shards); n > 0 {
		fmt.Printf(" (rolled up across %d shards)", n)
	}
	fmt.Println()
	return nil
}

// statsJSON mirrors the service stats fields the walkthrough prints.
type statsJSON struct {
	Requests     int64 `json:"requests"`
	CacheHits    int64 `json:"cache_hits"`
	PipelineRuns int64 `json:"pipeline_runs"`
	Latency      struct {
		Count  int64   `json:"count"`
		MeanMS float64 `json:"mean_ms"`
	} `json:"latency"`
}

// firstName extracts the root element name of a spec like "book(title,...)".
func firstName(spec string) string {
	for i := 0; i < len(spec); i++ {
		if spec[i] == '(' {
			return spec[:i]
		}
	}
	return spec
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeJSON(resp, out)
}

func postJSON(client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeJSON(resp, out)
}

func decodeJSON(resp *http.Response, out any) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}
