// Quickstart: match a small personal schema against a hand-built repository
// and print the ranked schema mappings — the paper's Fig. 1 scenario.
package main

import (
	"fmt"
	"log"

	"bellflower"
)

func main() {
	// The repository fragment of the paper's Fig. 1, plus two more trees
	// for competition.
	repo := bellflower.NewRepository()
	for _, spec := range []string{
		"lib(address,book(authorName,data(title),shelf))",
		"store(books(book(title,author(name))))",
		"zoo(animal(species,cage))",
	} {
		tree, err := bellflower.ParseSchema(spec)
		if err != nil {
			log.Fatal(err)
		}
		repo.MustAdd(tree)
	}

	// The user's personal schema: a book with a title and an author.
	personal := bellflower.MustParseSchema("book(title,author)")

	// Match with the non-clustered baseline (the repository is tiny;
	// clustering pays off on large repositories — see examples/largescale).
	opts := bellflower.DefaultOptions()
	opts.Variant = bellflower.VariantTree
	opts.Threshold = 0.5
	opts.MinSim = 0.4
	opts.TopN = 5

	m := bellflower.NewMatcher(repo)
	report, err := m.Match(personal, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("personal schema:\n%s\n", bellflower.FormatSchema(personal))
	fmt.Printf("top mappings (of %d found):\n", len(report.Mappings))
	for i, mp := range report.Mappings {
		fmt.Printf("%2d. %s\n", i+1, bellflower.FormatMapping(personal, mp))
	}
}
