// Twophase demonstrates the paper's extensions implemented in this
// library: two-phase matching (localized matchers before clustering,
// structure matchers per cluster — Sec. 2.3's alternative technique),
// agglomerative clustering as an alternative to k-means, and the
// calibrated cost model (Sec. 7 future work) predicting the break-even
// cluster count.
package main

import (
	"fmt"
	"log"
	"time"

	"bellflower"
)

func main() {
	cfg := bellflower.DefaultSyntheticConfig()
	cfg.TargetNodes = 5000
	repo, err := bellflower.Synthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := bellflower.NewMatcher(repo)
	personal := bellflower.MustParseSchema("address(name,email)")

	base := bellflower.DefaultOptions()
	base.MinSim = 0.3

	// 1. Plain medium clustering (k-means).
	plain, err := m.Match(personal, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means medium:      %4d clusters, %5d mappings, %v\n",
		plain.Clusters, len(plain.Mappings), plain.TotalTime().Round(time.Millisecond))

	// 2. Agglomerative clustering instead of k-means.
	agg := base
	agg.Agglomerative = true
	aggRep, err := m.Match(personal, agg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agglomerative:       %4d clusters, %5d mappings, %v\n",
		aggRep.Clusters, len(aggRep.Mappings), aggRep.TotalTime().Round(time.Millisecond))

	// 3. Two-phase: structural rescoring inside each cluster.
	sm, err := bellflower.NewStructureMatcher("path")
	if err != nil {
		log.Fatal(err)
	}
	two := base
	two.StructureMatcher = sm
	two.StructureWeight = 0.4
	twoRep, err := m.Match(personal, two)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-phase (path):    %4d clusters, %5d mappings, %v\n",
		twoRep.Clusters, len(twoRep.Mappings), twoRep.TotalTime().Round(time.Millisecond))

	// 4. Parallel per-cluster generation.
	par := base
	par.Parallelism = 4
	parRep, err := m.Match(personal, par)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel (4 workers):%4d clusters, %5d mappings, %v\n",
		parRep.Clusters, len(parRep.Mappings), parRep.TotalTime().Round(time.Millisecond))

	// 5. Cost model: calibrate on the plain run, predict the break-even
	// cluster count for this problem shape.
	model, err := bellflower.CalibrateCostModel(
		plain.ClusterTime.Seconds(),
		float64(plain.Clusters*max(plain.Iterations, 1)*plain.MappingElements),
		plain.GenTime.Seconds(),
		float64(plain.Counters.PartialMappings),
	)
	if err != nil {
		log.Fatal(err)
	}
	perNode := float64(plain.MappingElements) / float64(personal.Len())
	problem := bellflower.CostProblem{
		CandidatesPerNode: []float64{perNode, perNode, perNode},
		Clusters:          float64(plain.Clusters),
		Iterations:        float64(max(plain.Iterations, 1)),
		BnBFraction:       0.1,
	}
	bestC, bestEst, err := model.OptimalClusters(problem, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncost model: predicted optimal cluster count ≈ %.0f (total %.3fs)\n",
		bestC, bestEst.Total())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
