// Largescale sweeps repository sizes (the paper's 2500–10200 element range)
// and clustering variants, printing the efficiency/effectiveness trade-off
// that motivates clustered schema matching: the clustered search space and
// generation time shrink dramatically while the highly ranked mappings
// survive.
package main

import (
	"fmt"
	"log"
	"time"

	"bellflower"
)

func main() {
	personal := bellflower.MustParseSchema("address(name,email)")

	fmt.Println("nodes\tvariant\tclusters\tuseful\tspace\t\tmappings\tt_cluster\tt_gen")
	for _, nodes := range []int{2500, 5000, 10200} {
		cfg := bellflower.DefaultSyntheticConfig()
		cfg.TargetNodes = nodes
		repo, err := bellflower.Synthetic(cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := bellflower.NewMatcher(repo)

		for _, v := range []bellflower.Variant{
			bellflower.VariantSmall,
			bellflower.VariantMedium,
			bellflower.VariantLarge,
			bellflower.VariantTree,
		} {
			opts := bellflower.DefaultOptions()
			opts.MinSim = 0.25
			opts.Variant = v
			rep, err := m.Match(personal, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%d\t%s\t%d\t%d\t%12.0f\t%d\t%v\t%v\n",
				nodes, v, rep.Clusters, rep.UsefulClusters,
				rep.Counters.SearchSpace, len(rep.Mappings),
				rep.ClusterTime.Round(time.Millisecond),
				rep.GenTime.Round(time.Millisecond))
		}
		fmt.Println()
	}
}
