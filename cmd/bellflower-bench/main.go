// Command bellflower-bench measures the serving stack end to end and
// writes a machine-readable BENCH_<label>.json: per-variant ns/op, bytes
// and allocations per request, cache hit rates and per-stage latency
// medians over a fixed workload mix, the warm-path overhead of request
// tracing (traced vs untraced service throughput), and a head-to-head of
// the shard wire codecs (encoded body bytes and encode ns/op for JSON,
// binary and the slim projection-reference shape). Distributed variants
// additionally record the actual on-the-wire bytes per request broken
// down by codec, from the shard servers' transport counters.
//
//	bellflower-bench                       # full run, writes BENCH_10.json
//	bellflower-bench -quick -out /tmp/b.json
//	bellflower-bench -check BENCH_10.json  # validate an existing file (CI)
//	bellflower-bench -compare BENCH_9.json BENCH_10.json  # regression diff
//
// Variants cover the repository/topology grid the serving layers care
// about: a small and a large synthetic repository unsharded, the large
// repository sharded 4 ways in process, the large repository split across
// 2 distributed shard servers (hosted in process over HTTP, the closest
// single-binary approximation of -shard-of processes), and the same
// distributed split with 2 replicas per shard — the control-plane
// topology, pricing the replica indirection on the happy path. The
// workload cycles a fixed set of personal schemas, so each variant sees
// both cold pipeline runs and warm cache hits. Two distribution-shaped
// variants stress the matching kernel specifically: a skewed-vocabulary
// repository (near-zero name noise, so few distinct keys cover many
// nodes — vocabulary dedup's best case) and a hot-key request mix (90% of
// requests hit one signature, the cache-dominated worst case for kernel
// wins to matter). A match-kernel micro-section prices the keyed kernel
// head to head against the naive reference loop and pins the warm
// similarity call's ns and allocations. A gen-kernel micro-section prices
// the mapping-generation engine the same way: exhaustive
// generate-then-truncate against the adaptive shared-bound top-N search,
// sequential and parallel, on the workload mix and on a deeper clustered
// shape, plus a warm-search allocation probe.
//
// -quick shrinks repositories and iteration counts for CI smoke runs; the
// JSON shape is identical. -check parses a bench file and exits non-zero
// if it is malformed or incomplete, so CI can gate on the artifact.
// -compare diffs two bench files variant by variant and exits non-zero
// when a variant common to both regressed by more than -compare-threshold
// percent on ns/op or bytes/req — the recorded-artifact regression gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"bellflower"
	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/pipeline"
	"bellflower/internal/serve"
	"bellflower/internal/shardrpc"
	"bellflower/internal/strsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bellflower-bench:", err)
		os.Exit(1)
	}
}

type variantResult struct {
	Name           string             `json:"name"`
	RepoNodes      int                `json:"repo_nodes"`
	Shards         int                `json:"shards"`
	Distributed    bool               `json:"distributed,omitempty"`
	Requests       int64              `json:"requests"`
	NsPerOp        float64            `json:"ns_per_op"`
	BytesPerReq    float64            `json:"bytes_per_req"`
	AllocsPerReq   float64            `json:"allocs_per_req"`
	CacheHitRate   float64            `json:"cache_hit_rate"`
	StageMediansMS map[string]float64 `json:"stage_medians_ms"`

	// WireBytesPerReq (distributed variants only) is the actual traffic
	// that crossed the shard wire per served request, broken down by
	// codec (request and response bodies both directions, from the shard
	// servers' transport counters).
	WireBytesPerReq map[string]float64 `json:"wire_bytes_per_req,omitempty"`
}

// wireCodecResult prices one shard wire codec on a realistic staged
// request (projected candidates for a mid-size personal schema against
// the large repository): encoded body size and encode ns/op, plus — for
// the binary codec — the slim projection-reference body a client sends
// once the shard has the projection cached.
type wireCodecResult struct {
	Codec            string  `json:"codec"`
	FullRequestBytes int     `json:"full_request_bytes"`
	SlimRequestBytes int     `json:"slim_request_bytes,omitempty"`
	EncodeNsPerOp    float64 `json:"encode_ns_per_op"`
}

// overheadResult is the warm-path (pure cache hits, the
// BenchmarkServiceThroughput/warm steady state) cost of the tracing
// subsystem, in three arms:
//
//   - no_trace_ns_per_op: tracing globally disabled (SetTracingEnabled
//     false) — the no-trace baseline, instrumentation short-circuited.
//   - instrumented_ns_per_op: tracing enabled but no trace attached to
//     the request — the always-on instrumentation cost every library
//     caller pays; OverheadPct compares THIS to the baseline and is the
//     number the ≤3% budget governs.
//   - full_trace_ns_per_op: a request trace attached per call (what the
//     daemon does) — informational; buys a complete span tree per
//     request, and costs a few allocations.
type overheadResult struct {
	Benchmark           string  `json:"benchmark"`
	Iterations          int     `json:"iterations"`
	NoTraceNsPerOp      float64 `json:"no_trace_ns_per_op"`
	InstrumentedNsPerOp float64 `json:"instrumented_ns_per_op"`
	FullTraceNsPerOp    float64 `json:"full_trace_ns_per_op"`
	OverheadPct         float64 `json:"overhead_pct"`
}

// matchKernelResult prices the element-matching kernel in isolation: the
// full workload mix matched against the large repository through the naive
// reference loop versus the vocabulary-deduplicated keyed kernel, plus the
// warm prepared-similarity call's cost (the kernel's innermost operation,
// which must stay allocation-free).
type matchKernelResult struct {
	RepoNodes          int     `json:"repo_nodes"`
	VocabKeys          int     `json:"vocab_keys"`
	DistinctVocabRatio float64 `json:"distinct_vocab_ratio"`
	NaiveNsPerOp       float64 `json:"naive_ns_per_op"`
	KeyedNsPerOp       float64 `json:"keyed_ns_per_op"`
	Speedup            float64 `json:"speedup"`
	SimNsPerCall       float64 `json:"sim_ns_per_call"`
	SimAllocsPerCall   float64 `json:"sim_allocs_per_call"`
}

// genKernelShape prices the mapping-generation engine on one workload
// shape: exhaustive generate-then-truncate (what a non-adaptive top-N
// request pays) against the adaptive shared-bound branch-and-bound,
// sequential and fanned out over workers sharing one Δ floor. All three
// arms return bit-identical mappings — the property tests pin that — so
// the ns/op spread is pure search-efficiency.
type genKernelShape struct {
	Name               string  `json:"name"`
	Schemas            int     `json:"schemas"`
	TopN               int     `json:"top_n"`
	Parallelism        int     `json:"parallelism"`
	UsefulClusters     int     `json:"useful_clusters"`
	SearchSpace        float64 `json:"search_space"`
	TruncateNsPerOp    float64 `json:"truncate_ns_per_op"`
	AdaptiveSeqNsPerOp float64 `json:"adaptive_seq_ns_per_op"`
	AdaptiveParNsPerOp float64 `json:"adaptive_par_ns_per_op"`
	SeqSpeedup         float64 `json:"seq_speedup_vs_truncate"`
	ParSpeedup         float64 `json:"par_speedup_vs_truncate"`
}

// genKernelResult is the generation-engine micro-section: the per-shape
// head-to-head plus the warm-search allocation probe — a near-miss schema
// searched at δ=0.999 finds nothing, so a warm pooled search must not
// allocate at all (the AllocsPerRun regression tests pin the same
// property per entry point).
type genKernelResult struct {
	Shapes                []genKernelShape `json:"shapes"`
	WarmSearchAllocsPerOp float64          `json:"warm_search_allocs_per_op"`
}

type benchFile struct {
	Label         string             `json:"label"`
	GoVersion     string             `json:"go_version"`
	Quick         bool               `json:"quick"`
	Variants      []variantResult    `json:"variants"`
	WireCodecs    []wireCodecResult  `json:"wire_codecs,omitempty"`
	MatchKernel   *matchKernelResult `json:"match_kernel,omitempty"`
	GenKernel     *genKernelResult   `json:"gen_kernel,omitempty"`
	TraceOverhead overheadResult     `json:"trace_overhead"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("bellflower-bench", flag.ContinueOnError)
	var (
		label      = fs.String("label", "10", "bench label; the default output file is BENCH_<label>.json")
		out        = fs.String("out", "", "output path (default BENCH_<label>.json in the working directory)")
		quick      = fs.Bool("quick", false, "CI smoke mode: smaller repositories and fewer iterations, same JSON shape")
		check      = fs.String("check", "", "validate an existing bench JSON file and exit (no benchmarks run)")
		compare    = fs.String("compare", "", "regression-diff mode: compare this baseline bench JSON against the file named by the positional argument and exit (no benchmarks run)")
		compareTol = fs.Float64("compare-threshold", 25, "max tolerated regression, in percent, on ns/op and bytes/req per variant in -compare mode")
		seed       = fs.Int64("seed", 1, "synthetic repository seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check != "" {
		return checkFile(*check)
	}
	if *compare != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("-compare OLD.json needs exactly one positional argument (the new bench file), got %d", fs.NArg())
		}
		return compareFiles(*compare, fs.Arg(0), *compareTol)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *label)
	}

	smallNodes, largeNodes, iters := 600, 3000, 400
	if *quick {
		smallNodes, largeNodes, iters = 300, 900, 60
	}
	small, err := synthRepo(smallNodes, *seed)
	if err != nil {
		return err
	}
	large, err := synthRepo(largeNodes, *seed)
	if err != nil {
		return err
	}

	bf := benchFile{Label: *label, GoVersion: runtime.Version(), Quick: *quick}

	fmt.Fprintf(os.Stderr, "bellflower-bench: small=%d large=%d nodes, %d iterations per variant\n",
		smallNodes, largeNodes, iters)

	// Variant 1: small repository, unsharded.
	svc := bellflower.NewService(small, bellflower.ServiceConfig{})
	bf.Variants = append(bf.Variants, runVariant("small-unsharded", smallNodes, svc, iters))
	svc.Close()

	// Variant 2: large repository, unsharded.
	svc = bellflower.NewService(large, bellflower.ServiceConfig{})
	bf.Variants = append(bf.Variants, runVariant("large-unsharded", largeNodes, svc, iters))
	svc.Close()

	// Variant 3: large repository, 4 in-process shards.
	sharded := bellflower.NewShardedService(large, 4, bellflower.ServiceConfig{})
	v := runVariant("large-sharded4", largeNodes, sharded, iters)
	sharded.Close()
	bf.Variants = append(bf.Variants, v)

	// Variant 4: large repository across 2 distributed shard servers.
	dist, stop, err := distributedBackend(largeNodes, *seed, 2, 1)
	if err != nil {
		return err
	}
	v = runVariant("large-distributed2", largeNodes, dist, iters)
	v.Distributed = true
	dist.Close()
	stop()
	bf.Variants = append(bf.Variants, v)

	// Variant 5: the same distributed split with 2 replicas per shard —
	// every request pays the replica-group indirection (attempt ordering,
	// health bookkeeping) with all replicas healthy, pricing the control
	// plane's happy path against variant 4.
	dist, stop, err = distributedBackend(largeNodes, *seed, 2, 2)
	if err != nil {
		return err
	}
	v = runVariant("large-replicated2x2", largeNodes, dist, iters)
	v.Distributed = true
	dist.Close()
	stop()
	bf.Variants = append(bf.Variants, v)

	// Variant 6: skewed vocabulary — the same node count generated with
	// near-zero name noise, so a handful of distinct (name, datatype) keys
	// covers the whole repository. This is vocabulary dedup's best case;
	// the cold match stage should collapse relative to large-unsharded.
	skewed, err := skewedRepo(largeNodes, *seed)
	if err != nil {
		return err
	}
	svc = bellflower.NewService(skewed, bellflower.ServiceConfig{})
	bf.Variants = append(bf.Variants, runVariant("large-skewed-vocab", largeNodes, svc, iters))
	svc.Close()

	// Variant 7: hot-key request distribution — 90% of requests hit one
	// signature, the rest cycle the mix. The cache-dominated steady state
	// where kernel improvements must not regress the warm path.
	svc = bellflower.NewService(large, bellflower.ServiceConfig{})
	bf.Variants = append(bf.Variants, runVariantPick("large-hotkey", largeNodes, svc, iters, func(i, n int) int {
		if i%10 != 0 {
			return 0 // the hot key
		}
		return (i / 10) % n
	}))
	svc.Close()

	// Match-kernel head-to-head on the large repository.
	mkIters := 30
	if *quick {
		mkIters = 5
	}
	mk := matchKernelBench(large, mkIters)
	bf.MatchKernel = &mk

	// Generation-engine head-to-head on the large repository.
	gkIters := 30
	if *quick {
		gkIters = 5
	}
	if bf.GenKernel, err = genKernelBench(large, gkIters); err != nil {
		return err
	}

	// Wire-codec head-to-head on the large repository.
	wcIters := 300
	if *quick {
		wcIters = 50
	}
	if bf.WireCodecs, err = wireCodecBench(large, wcIters); err != nil {
		return err
	}

	// Warm-path tracing overhead on the small service. The arms differ by
	// tens of nanoseconds at most, so they need far longer runs than the
	// throughput variants to separate signal from scheduler noise.
	overheadIters := 25000
	if *quick {
		overheadIters = 8000
	}
	svc = bellflower.NewService(small, bellflower.ServiceConfig{})
	bf.TraceOverhead = traceOverhead(svc, overheadIters)
	svc.Close()

	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bellflower-bench: wrote %s (%d variants, trace overhead %.2f%%)\n",
		path, len(bf.Variants), bf.TraceOverhead.OverheadPct)
	return nil
}

func synthRepo(nodes int, seed int64) (*bellflower.Repository, error) {
	cfg := bellflower.DefaultSyntheticConfig()
	cfg.TargetNodes = nodes
	cfg.Seed = seed
	return bellflower.Synthetic(cfg)
}

// skewedRepo generates a repository with near-zero name noise: names come
// almost verbatim from the concept vocabulary, so the distinct
// (name, datatype) key count stays tiny relative to the node count.
func skewedRepo(nodes int, seed int64) (*bellflower.Repository, error) {
	cfg := bellflower.DefaultSyntheticConfig()
	cfg.TargetNodes = nodes
	cfg.Seed = seed
	cfg.NoiseRate = 0.02
	return bellflower.Synthetic(cfg)
}

// workload is the fixed personal-schema mix every variant cycles through:
// small and mid-size schemas with vocabulary the synthetic generator
// actually emits, so candidate sets are non-trivial. Cycling repeats each
// signature many times per run, exercising the warm cache path alongside
// the cold pipeline runs.
var workload = []string{
	"book(title,author)",
	"address(name,email)",
	"order(id,customer(name))",
	"book(title,author(first,last),isbn@)",
	"catalog(item(name,price))",
	"person(name,address(street,city))",
}

func parseWorkload() []*bellflower.Tree {
	trees := make([]*bellflower.Tree, len(workload))
	for i, spec := range workload {
		trees[i] = bellflower.MustParseSchema(spec)
	}
	return trees
}

func runVariant(name string, nodes int, backend bellflower.ServiceBackend, iters int) variantResult {
	return runVariantPick(name, nodes, backend, iters, func(i, n int) int { return i % n })
}

// runVariantPick is runVariant with an explicit request distribution:
// pick(i, n) maps iteration i to one of the n workload schemas. The round
// robin default exercises every signature evenly; the hot-key variant
// concentrates on one.
func runVariantPick(name string, nodes int, backend bellflower.ServiceBackend, iters int, pick func(i, n int) int) variantResult {
	ctx := context.Background()
	opts := bellflower.DefaultOptions()
	trees := parseWorkload()

	// Cold pass: every distinct signature runs the pipeline once.
	for _, tr := range trees {
		if _, err := backend.Match(ctx, tr, opts); err != nil {
			fmt.Fprintf(os.Stderr, "bellflower-bench: %s cold %v\n", name, err)
		}
	}

	// Best of 3 measured passes: ns/op at the warm-path microsecond scale
	// is dominated by where GC pauses and scheduler stalls happen to land,
	// so a single pass can read 40% high on an otherwise idle machine.
	// Taking each pass's own memstats window and keeping the minimum per
	// metric converges on the true cost, which is what a recorded artifact
	// gating -compare regressions must hold.
	var nsPerOp, bytesPerReq, allocsPerReq float64
	for pass := 0; pass < 3; pass++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := backend.Match(ctx, trees[pick(i, len(trees))], opts); err != nil {
				fmt.Fprintf(os.Stderr, "bellflower-bench: %s iter %d: %v\n", name, i, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		ns := float64(elapsed.Nanoseconds()) / float64(iters)
		by := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters)
		al := float64(m1.Mallocs-m0.Mallocs) / float64(iters)
		if pass == 0 || ns < nsPerOp {
			nsPerOp = ns
		}
		if pass == 0 || by < bytesPerReq {
			bytesPerReq = by
		}
		if pass == 0 || al < allocsPerReq {
			allocsPerReq = al
		}
	}

	st := backend.Stats()
	res := variantResult{
		Name:           name,
		RepoNodes:      nodes,
		Shards:         backend.NumShards(),
		Requests:       st.Requests,
		NsPerOp:        nsPerOp,
		BytesPerReq:    bytesPerReq,
		AllocsPerReq:   allocsPerReq,
		StageMediansMS: map[string]float64{},
	}
	if st.Requests > 0 {
		res.CacheHitRate = float64(st.CacheHits) / float64(st.Requests)
	}
	for stage, ls := range st.Stages {
		res.StageMediansMS[stage] = ls.P50MS
	}
	if wb := st.WireBytes; st.Requests > 0 && wb.InJSON+wb.InBinary+wb.OutJSON+wb.OutBinary > 0 {
		res.WireBytesPerReq = map[string]float64{
			"json":   float64(wb.InJSON+wb.OutJSON) / float64(st.Requests),
			"binary": float64(wb.InBinary+wb.OutBinary) / float64(st.Requests),
		}
	}
	return res
}

// matchKernelBench prices the element-matching kernel in isolation, away
// from caches and fan-out: the full workload mix against repo through the
// naive reference loop (FindCandidatesAmong over every node) versus the
// keyed kernel (vocabulary dedup + pruning + parallel outer loop), best of
// 3 passes each, one op being the whole six-schema mix. The warm
// similarity call is timed and alloc-counted separately — it must stay at
// zero allocations, the property the strsim regression tests pin.
func matchKernelBench(repo *bellflower.Repository, iters int) matchKernelResult {
	opts := bellflower.DefaultOptions()
	cfg := matcher.Config{MinSim: opts.MinSim}
	m := matcher.NameMatcher{}
	trees := parseWorkload()

	ni := matcher.NewNameIndex(repo)
	vocab := ni.Vocabulary(repo.Nodes())

	best := func(run func()) float64 {
		var bestNs float64
		for pass := 0; pass < 3; pass++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				run()
			}
			if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); pass == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	naiveNs := best(func() {
		for _, tr := range trees {
			matcher.FindCandidates(tr, repo, m, cfg)
		}
	})
	keyedNs := best(func() {
		for _, tr := range trees {
			vocab.FindCandidates(tr, m, cfg)
		}
	})

	// Warm prepared-similarity call: ns and allocations per call.
	var sc strsim.Scorer
	pa, pb := strsim.Prepare("authorName"), strsim.Prepare("name_of_the_author")
	sc.Fuzzy(&pa, &pb) // warm the scratch rows
	const simCalls = 200000
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < simCalls; i++ {
		sc.Fuzzy(&pa, &pb)
	}
	simNs := float64(time.Since(start).Nanoseconds()) / simCalls
	runtime.ReadMemStats(&m1)

	res := matchKernelResult{
		RepoNodes:          repo.Len(),
		VocabKeys:          ni.Keys(),
		DistinctVocabRatio: ni.DistinctRatio(),
		NaiveNsPerOp:       naiveNs,
		KeyedNsPerOp:       keyedNs,
		SimNsPerCall:       simNs,
		SimAllocsPerCall:   float64(m1.Mallocs-m0.Mallocs) / simCalls,
	}
	if keyedNs > 0 {
		res.Speedup = naiveNs / keyedNs
	}
	return res
}

// genSink keeps the generation arms' results live so the compiler cannot
// hollow out a measured loop.
var genSink int

// genKernelBench prices the mapping-generation engine in isolation, away
// from caches and the serving stack. Two shapes: the standard workload mix
// over tree clusters (the per-tree baseline every variant pays), and a
// deeper/fatter configuration — nested schemas, lower MinSim, k-means
// medium clustering — where candidate sets multiply into large search
// spaces and the shared bound plus best-first scheduling have room to
// work. Per shape, best of 3 passes each: exhaustive generate-then-
// truncate, adaptive top-N sequential, adaptive top-N over 4 workers. A
// final probe measures warm-search allocations on a near-miss schema at
// δ=0.999 (full searches, nothing found, so the pooled state must make
// the op allocation-free).
func genKernelBench(repo *bellflower.Repository, iters int) (*genKernelResult, error) {
	opts := pipeline.DefaultOptions()
	ix := labeling.NewIndex(repo)

	type prepared struct {
		gen    *mapgen.Generator
		useful []*cluster.Cluster
	}
	prep := func(specs []string, minSim float64, variant pipeline.Variant) ([]prepared, int, float64, error) {
		var ps []prepared
		usefulTotal, space := 0, 0.0
		for _, spec := range specs {
			personal := bellflower.MustParseSchema(spec)
			cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: minSim})
			copts := opts
			copts.Variant = variant
			clusters, _, err := pipeline.ComputeClusters(ix, cands, copts)
			if err != nil {
				return nil, 0, 0, err
			}
			full := uint64(1)<<uint(personal.Len()) - 1
			var useful []*cluster.Cluster
			for _, cl := range clusters {
				if cl.Useful(full) {
					useful = append(useful, cl)
				}
			}
			ev := objective.NewEvaluator(opts.Objective, ix, personal)
			gen := mapgen.New(mapgen.Config{Threshold: opts.Threshold}, ix, ev, cands)
			_, ctr := gen.GenerateTopN(useful, 1) // exact, schedule-independent counters
			usefulTotal += int(ctr.UsefulClusters)
			space += ctr.SearchSpace
			ps = append(ps, prepared{gen: gen, useful: useful})
		}
		return ps, usefulTotal, space, nil
	}

	best := func(run func()) float64 {
		var bestNs float64
		for pass := 0; pass < 3; pass++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				run()
			}
			if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); pass == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}

	const par = 4
	shapes := []struct {
		name    string
		specs   []string
		minSim  float64
		variant pipeline.Variant
		topN    int
	}{
		{"workload-mix", workload, opts.MinSim, pipeline.VariantTree, 5},
		{"deep-clustered", []string{
			"book(title,author(first,last),isbn@)",
			"person(name,address(street,city))",
		}, 0.35, pipeline.VariantMedium, 3},
	}
	res := &genKernelResult{}
	for _, sh := range shapes {
		ps, useful, space, err := prep(sh.specs, sh.minSim, sh.variant)
		if err != nil {
			return nil, err
		}
		topN := sh.topN
		truncateNs := best(func() {
			for _, p := range ps {
				ms, _ := p.gen.Generate(p.useful)
				if len(ms) > topN {
					ms = ms[:topN]
				}
				genSink = len(ms)
			}
		})
		seqNs := best(func() {
			for _, p := range ps {
				ms, _ := p.gen.GenerateTopNParallel(p.useful, topN, 1, nil)
				genSink = len(ms)
			}
		})
		parNs := best(func() {
			for _, p := range ps {
				ms, _ := p.gen.GenerateTopNParallel(p.useful, topN, par, nil)
				genSink = len(ms)
			}
		})
		s := genKernelShape{
			Name:               sh.name,
			Schemas:            len(sh.specs),
			TopN:               topN,
			Parallelism:        par,
			UsefulClusters:     useful,
			SearchSpace:        space,
			TruncateNsPerOp:    truncateNs,
			AdaptiveSeqNsPerOp: seqNs,
			AdaptiveParNsPerOp: parNs,
		}
		if seqNs > 0 {
			s.SeqSpeedup = truncateNs / seqNs
		}
		if parNs > 0 {
			s.ParSpeedup = truncateNs / parNs
		}
		res.Shapes = append(res.Shapes, s)
	}

	// Warm-search allocation probe: misspelled vocabulary keeps element
	// similarities below 1, and δ=0.999 then rejects every complete
	// mapping — the searches run to their leaves but produce no output, so
	// a warm op must allocate nothing.
	probe := bellflower.MustParseSchema("bok(titel,autor,prce)")
	probeCands := matcher.FindCandidates(probe, repo, matcher.NameMatcher{}, matcher.Config{MinSim: 0.3})
	probeClusters, _, err := pipeline.ComputeClusters(ix, probeCands, opts)
	if err != nil {
		return nil, err
	}
	full := uint64(1)<<uint(probe.Len()) - 1
	var probeUseful []*cluster.Cluster
	for _, cl := range probeClusters {
		if cl.Useful(full) {
			probeUseful = append(probeUseful, cl)
		}
	}
	probeGen := mapgen.New(mapgen.Config{Threshold: 0.999},
		ix, objective.NewEvaluator(opts.Objective, ix, probe), probeCands)
	runtime.GC() // empties the state pool; the warm-up op below refills it
	probeGen.GenerateTopNParallel(probeUseful, 3, 1, nil)
	const probeOps = 200
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < probeOps; i++ {
		ms, _ := probeGen.GenerateTopNParallel(probeUseful, 3, 1, nil)
		genSink = len(ms)
	}
	runtime.ReadMemStats(&m1)
	res.WarmSearchAllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / probeOps
	return res, nil
}

// distributedBackend builds n in-process shard servers over HTTP (each
// shard served by `replicas` identical hosts) and a distributed router
// fanning out to them — one binary standing in for n*replicas+1
// bellflower-server processes, with the real wire protocol (and trace
// stitching) between them.
func distributedBackend(nodes int, seed int64, n, replicas int) (bellflower.ServiceBackend, func(), error) {
	var servers []*httptest.Server
	var hosts []*bellflower.ShardHost
	var addrs []string
	stop := func() {
		for _, s := range servers {
			s.Close()
		}
		for _, h := range hosts {
			h.Close()
		}
	}
	for i := 0; i < n; i++ {
		var group []string
		for r := 0; r < replicas; r++ {
			repo, err := synthRepo(nodes, seed) // each process loads its own copy
			if err != nil {
				stop()
				return nil, nil, err
			}
			host, err := bellflower.NewShardHost(repo, i, n, bellflower.ServiceConfig{}, bellflower.PartitionClustered)
			if err != nil {
				stop()
				return nil, nil, err
			}
			hosts = append(hosts, host)
			mux := http.NewServeMux()
			mux.HandleFunc("/v1/shard/match", host.HandleMatch)
			mux.HandleFunc("/v1/shard/stats", host.HandleStats)
			srv := httptest.NewServer(mux)
			servers = append(servers, srv)
			group = append(group, srv.URL)
		}
		addrs = append(addrs, strings.Join(group, "|"))
	}
	routerRepo, err := synthRepo(nodes, seed)
	if err != nil {
		stop()
		return nil, nil, err
	}
	backend, err := bellflower.NewDistributedService(routerRepo, addrs, bellflower.ServiceConfig{}, bellflower.PartitionClustered)
	if err != nil {
		stop()
		return nil, nil, err
	}
	return backend, stop, nil
}

// wireCodecBench prices the shard wire codecs head to head on one
// realistic staged request: projected candidates for a mid-size personal
// schema against repo, the payload a distributed router ships per shard
// on every cold request. Reported per codec: encoded body size, encode
// ns/op (best of 3 passes), and for binary also the slim
// projection-reference body that replaces the full payload once the
// shard has the projection cached.
func wireCodecBench(repo *bellflower.Repository, iters int) ([]wireCodecResult, error) {
	ix := labeling.NewIndex(repo)
	view := serve.PartitionRepositoryViews(ix, 1, serve.PartitionClustered)[0]
	personal := bellflower.MustParseSchema(workload[3])
	opts := pipeline.DefaultOptions()
	cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: opts.MinSim}).
		Restrict(view.Contains)
	wopts, err := shardrpc.EncodeOptions(opts)
	if err != nil {
		return nil, err
	}
	wcands, err := shardrpc.EncodeCandidates(view, cands)
	if err != nil {
		return nil, err
	}
	req := shardrpc.MatchRequest{
		Descriptor:    shardrpc.ViewDescriptor(view, 0, 1, serve.PartitionClustered),
		Personal:      shardrpc.EncodeTree(personal),
		Signature:     serve.Signature(personal, opts),
		Options:       wopts,
		HasCandidates: true,
		Candidates:    wcands,
	}
	req.ProjectionHash = shardrpc.ProjectionDigest(&req)
	slim := req
	slim.ProjectionRef = true
	slim.HasCandidates, slim.Candidates = false, nil
	// The legacy JSON surface ships no projection-cache fields.
	jreq := req
	jreq.ProjectionHash = ""

	encNs := func(encode func()) float64 {
		var best float64
		for pass := 0; pass < 3; pass++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				encode()
			}
			if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); pass == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	jsonBody, err := json.Marshal(jreq)
	if err != nil {
		return nil, err
	}
	return []wireCodecResult{
		{
			Codec:            "json",
			FullRequestBytes: len(jsonBody),
			EncodeNsPerOp:    encNs(func() { _, _ = json.Marshal(jreq) }),
		},
		{
			Codec:            "binary",
			FullRequestBytes: len(shardrpc.EncodeBinaryMatchRequest(&req)),
			SlimRequestBytes: len(shardrpc.EncodeBinaryMatchRequest(&slim)),
			EncodeNsPerOp:    encNs(func() { shardrpc.EncodeBinaryMatchRequest(&req) }),
		},
	}, nil
}

// traceOverhead measures the warm path — pure cache hits on one signature,
// the BenchmarkServiceThroughput/warm steady state — in three arms (see
// overheadResult). Arms are interleaved round-robin and each takes the
// best of five runs, so scheduler noise inflates no single side.
func traceOverhead(svc *bellflower.Service, iters int) overheadResult {
	ctx := context.Background()
	opts := bellflower.DefaultOptions()
	personal := bellflower.MustParseSchema(workload[0])
	if _, err := svc.Match(ctx, personal, opts); err != nil {
		fmt.Fprintf(os.Stderr, "bellflower-bench: overhead warmup: %v\n", err)
	}

	const (
		armNoTrace = iota
		armInstrumented
		armFullTrace
		numArms
	)
	loop := func(arm int) float64 {
		bellflower.SetTracingEnabled(arm != armNoTrace)
		defer bellflower.SetTracingEnabled(true)
		runtime.GC() // don't bill one arm for another arm's garbage
		start := time.Now()
		for i := 0; i < iters; i++ {
			c := ctx
			var root *bellflower.TraceSpan
			if arm == armFullTrace {
				c, _, root = bellflower.StartRequestTrace(ctx, "bench")
			}
			if _, err := svc.Match(c, personal, opts); err != nil {
				fmt.Fprintf(os.Stderr, "bellflower-bench: overhead iter: %v\n", err)
			}
			root.End()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}

	// Throwaway pass per arm, then 5 interleaved rounds keeping each arm's
	// best.
	best := [numArms]float64{}
	for arm := 0; arm < numArms; arm++ {
		loop(arm)
	}
	for round := 0; round < 5; round++ {
		for arm := 0; arm < numArms; arm++ {
			v := loop(arm)
			if best[arm] == 0 || v < best[arm] {
				best[arm] = v
			}
		}
	}
	pct := (best[armInstrumented] - best[armNoTrace]) / best[armNoTrace] * 100
	if pct < 0 {
		pct = 0
	}
	return overheadResult{
		Benchmark:           "ServiceThroughputWarm",
		Iterations:          iters,
		NoTraceNsPerOp:      best[armNoTrace],
		InstrumentedNsPerOp: best[armInstrumented],
		FullTraceNsPerOp:    best[armFullTrace],
		OverheadPct:         pct,
	}
}

// checkFile validates a bench artifact: parseable JSON of the expected
// shape, at least four variants each with a positive ns/op and non-empty
// stage medians, and a measured trace overhead. CI gates on this instead
// of eyeballing the artifact.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("%s: malformed JSON: %w", path, err)
	}
	if len(bf.Variants) < 4 {
		return fmt.Errorf("%s: %d variants, want at least 4", path, len(bf.Variants))
	}
	for _, v := range bf.Variants {
		if v.Name == "" || v.NsPerOp <= 0 {
			return fmt.Errorf("%s: variant %q has no ns/op", path, v.Name)
		}
		if len(v.StageMediansMS) == 0 {
			return fmt.Errorf("%s: variant %q has no stage medians", path, v.Name)
		}
	}
	for _, wc := range bf.WireCodecs {
		if wc.Codec == "" || wc.FullRequestBytes <= 0 || wc.EncodeNsPerOp <= 0 {
			return fmt.Errorf("%s: wire codec %q measurement incomplete", path, wc.Codec)
		}
		if wc.SlimRequestBytes > 0 && wc.SlimRequestBytes >= wc.FullRequestBytes {
			return fmt.Errorf("%s: codec %q slim body (%d bytes) not smaller than the full body (%d bytes)",
				path, wc.Codec, wc.SlimRequestBytes, wc.FullRequestBytes)
		}
	}
	if mk := bf.MatchKernel; mk != nil {
		if mk.NaiveNsPerOp <= 0 || mk.KeyedNsPerOp <= 0 || mk.VocabKeys <= 0 {
			return fmt.Errorf("%s: match-kernel measurement incomplete", path)
		}
		if mk.Speedup < 1 {
			return fmt.Errorf("%s: keyed matching kernel slower than the naive loop (speedup %.2fx)", path, mk.Speedup)
		}
		if mk.SimAllocsPerCall > 0.01 {
			return fmt.Errorf("%s: warm similarity call allocates (%.3f allocs/call, want 0)", path, mk.SimAllocsPerCall)
		}
	}
	if gk := bf.GenKernel; gk != nil {
		if len(gk.Shapes) < 2 {
			return fmt.Errorf("%s: gen-kernel section has %d shapes, want at least 2", path, len(gk.Shapes))
		}
		for _, s := range gk.Shapes {
			if s.Name == "" || s.TruncateNsPerOp <= 0 || s.AdaptiveSeqNsPerOp <= 0 ||
				s.AdaptiveParNsPerOp <= 0 || s.UsefulClusters <= 0 {
				return fmt.Errorf("%s: gen-kernel shape %q measurement incomplete", path, s.Name)
			}
			// Quick runs shrink the repository until per-op work is small
			// enough that worker spawn can dominate, so the head-to-head
			// win is only gated on recorded full runs.
			if !bf.Quick && s.ParSpeedup < 1 {
				return fmt.Errorf("%s: parallel adaptive top-N slower than generate-then-truncate on %q (%.2fx)",
					path, s.Name, s.ParSpeedup)
			}
		}
		if gk.WarmSearchAllocsPerOp > 0.5 {
			return fmt.Errorf("%s: warm adaptive search allocates (%.3f allocs/op, want 0)", path, gk.WarmSearchAllocsPerOp)
		}
		// The generation-stage budget the engine work buys: a recorded
		// full run must hold the hot-key variant's cold generate median at
		// half its pre-engine (BENCH_9) level.
		if !bf.Quick {
			for _, v := range bf.Variants {
				if v.Name == "large-hotkey" {
					if g := v.StageMediansMS["generate"]; g > 0.75 {
						return fmt.Errorf("%s: large-hotkey generate median %.2fms, budget is 0.75ms", path, g)
					}
				}
			}
		}
	}
	if bf.TraceOverhead.NoTraceNsPerOp <= 0 || bf.TraceOverhead.InstrumentedNsPerOp <= 0 {
		return fmt.Errorf("%s: missing trace overhead measurement", path)
	}
	fmt.Printf("%s: ok (%d variants, trace overhead %.2f%%)\n", path, len(bf.Variants), bf.TraceOverhead.OverheadPct)
	return nil
}

// loadFile parses and shape-checks a bench artifact for comparison.
func loadFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: malformed JSON: %w", path, err)
	}
	return &bf, nil
}

// compareFiles is the regression gate over two recorded artifacts: every
// variant present in BOTH files is diffed on ns/op and bytes/req, and any
// regression beyond tolPct percent fails the comparison. Variants present
// on only one side are reported but never fail — new topologies may be
// added (and obsolete ones retired) without invalidating old baselines —
// but at least one variant must be common, or the comparison would
// trivially pass while measuring nothing.
func compareFiles(oldPath, newPath string, tolPct float64) error {
	oldBF, err := loadFile(oldPath)
	if err != nil {
		return err
	}
	newBF, err := loadFile(newPath)
	if err != nil {
		return err
	}
	if oldBF.Quick != newBF.Quick {
		fmt.Fprintf(os.Stderr, "bellflower-bench: warning: comparing quick=%v against quick=%v artifacts\n", oldBF.Quick, newBF.Quick)
	}
	oldByName := make(map[string]variantResult, len(oldBF.Variants))
	for _, v := range oldBF.Variants {
		oldByName[v.Name] = v
	}

	pct := func(oldV, newV float64) float64 {
		if oldV <= 0 {
			return 0
		}
		return (newV - oldV) / oldV * 100
	}
	var regressions []string
	common := 0
	for _, nv := range newBF.Variants {
		ov, ok := oldByName[nv.Name]
		if !ok {
			fmt.Printf("%-22s new variant, no baseline\n", nv.Name)
			continue
		}
		common++
		delete(oldByName, nv.Name)
		nsPct, bytesPct := pct(ov.NsPerOp, nv.NsPerOp), pct(ov.BytesPerReq, nv.BytesPerReq)
		fmt.Printf("%-22s ns/op %12.0f -> %12.0f (%+6.1f%%)   bytes/req %12.0f -> %12.0f (%+6.1f%%)\n",
			nv.Name, ov.NsPerOp, nv.NsPerOp, nsPct, ov.BytesPerReq, nv.BytesPerReq, bytesPct)
		if nsPct > tolPct {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op regressed %.1f%% (> %.1f%%)", nv.Name, nsPct, tolPct))
		}
		if bytesPct > tolPct {
			regressions = append(regressions, fmt.Sprintf("%s: bytes/req regressed %.1f%% (> %.1f%%)", nv.Name, bytesPct, tolPct))
		}
	}
	for name := range oldByName {
		fmt.Printf("%-22s retired variant, only in %s\n", name, oldPath)
	}
	if common == 0 {
		return fmt.Errorf("%s and %s share no variants; nothing was compared", oldPath, newPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s) beyond %.1f%%:\n  %s", len(regressions), tolPct, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("%s -> %s: ok (%d variants compared, tolerance %.1f%%)\n", oldPath, newPath, common, tolPct)
	return nil
}
