// Command bellflower matches a personal schema against a repository of XML
// schemas and prints the ranked mappings, optionally rewriting an XPath
// query over the best mapping.
//
// The repository is either loaded from a directory of .xsd/.dtd files or
// generated synthetically at a chosen scale:
//
//	bellflower -personal 'book(title,author)' -repo ./schemas -topn 5
//	bellflower -personal 'address(name,email)' -synthetic 9759 -variant medium
//	bellflower -personal 'book(title,author)' -repo ./schemas \
//	    -query '/book[title="Iliad"]/author'
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"bellflower"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bellflower:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bellflower", flag.ContinueOnError)
	var (
		personalSpec = fs.String("personal", "", "personal schema spec, e.g. 'book(title,author)'")
		personalFile = fs.String("personal-file", "", "personal schema from an .xsd or .dtd file (first tree)")
		repoDir      = fs.String("repo", "", "directory of .xsd/.dtd files to load as the repository")
		synthetic    = fs.Int("synthetic", 0, "generate a synthetic repository with this many nodes")
		seed         = fs.Int64("seed", 1, "seed for the synthetic repository")
		variant      = fs.String("variant", "medium", "clustering variant: small|medium|large|tree")
		delta        = fs.Float64("delta", 0.75, "objective function threshold δ")
		alpha        = fs.Float64("alpha", 0.5, "objective weight α (name vs path similarity)")
		kconst       = fs.Float64("k", 4, "path-length normalization constant K")
		minSim       = fs.Float64("minsim", 0.45, "element matcher candidate threshold")
		topN         = fs.Int("topn", 10, "print at most N mappings (0 = all)")
		queryStr     = fs.String("query", "", "XPath query over the personal schema to rewrite with the best mapping")
		partials     = fs.Bool("partials", false, "also report partial mappings from non-useful clusters")
		showStats    = fs.Bool("stats", false, "print efficiency counters")
		repoFile     = fs.String("repo-file", "", "load a repository saved with -save-repo")
		saveRepo     = fs.String("save-repo", "", "save the loaded/generated repository to this file and exit")
		agg          = fs.Bool("agglomerative", false, "use agglomerative clustering instead of k-means")
		structure    = fs.String("structure", "", "two-phase structure matcher: path|child|leaf")
		structWeight = fs.Float64("structure-weight", 0.5, "blend weight of the structure matcher")
		parallel     = fs.Int("parallel", 0, "generate mappings over clusters with N goroutines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	repo, err := loadRepository(*repoDir, *repoFile, *synthetic, *seed)
	if err != nil {
		return err
	}
	if *saveRepo != "" {
		f, err := os.Create(*saveRepo)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bellflower.SaveRepository(f, repo); err != nil {
			return err
		}
		fmt.Printf("saved %d trees (%d nodes) to %s\n", repo.NumTrees(), repo.Len(), *saveRepo)
		return nil
	}
	personal, err := loadPersonal(*personalSpec, *personalFile)
	if err != nil {
		return err
	}
	st := repo.Stats()
	fmt.Printf("repository: %d trees, %d nodes\n", st.Trees, st.Nodes)

	opts := bellflower.DefaultOptions()
	opts.Threshold = *delta
	opts.Objective.Alpha = *alpha
	opts.Objective.K = *kconst
	opts.MinSim = *minSim
	opts.TopN = *topN
	opts.IncludePartials = *partials
	opts.Agglomerative = *agg
	opts.Parallelism = *parallel
	if *structure != "" {
		sm, err := bellflower.NewStructureMatcher(*structure)
		if err != nil {
			return err
		}
		opts.StructureMatcher = sm
		opts.StructureWeight = *structWeight
	}
	switch *variant {
	case "small":
		opts.Variant = bellflower.VariantSmall
	case "medium":
		opts.Variant = bellflower.VariantMedium
	case "large":
		opts.Variant = bellflower.VariantLarge
	case "tree":
		opts.Variant = bellflower.VariantTree
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}

	m := bellflower.NewMatcher(repo)
	rep, err := m.Match(personal, opts)
	if err != nil {
		return err
	}
	fmt.Printf("found %d mappings with Δ >= %.2f (%v total)\n",
		len(rep.Mappings), *delta, rep.TotalTime().Round(time.Millisecond))
	for i, mp := range rep.Mappings {
		fmt.Printf("%3d. %s\n", i+1, bellflower.FormatMapping(personal, mp))
	}
	if *partials && len(rep.Partials) > 0 {
		fmt.Printf("partial mappings: %d (best Δ=%.3f, covering %d/%d nodes)\n",
			len(rep.Partials), rep.Partials[0].Score.Delta,
			rep.Partials[0].Covered, personal.Len())
	}
	if *showStats {
		fmt.Printf("mapping elements: %d\nclusters: %d (useful %d, avg %.1f elements)\n",
			rep.MappingElements, rep.Clusters, rep.UsefulClusters, rep.AvgElementsPerUsefulCluster)
		fmt.Printf("search space: %.0f, partial mappings generated: %d\n",
			rep.Counters.SearchSpace, rep.Counters.PartialMappings)
		fmt.Printf("times: match %v, cluster %v, generate %v\n",
			rep.MatchTime.Round(time.Millisecond),
			rep.ClusterTime.Round(time.Millisecond),
			rep.GenTime.Round(time.Millisecond))
	}
	if *queryStr != "" {
		if len(rep.Mappings) == 0 {
			return fmt.Errorf("no mapping available to rewrite the query")
		}
		out, err := m.RewriteQuery(*queryStr, personal, rep.Mappings[0])
		if err != nil {
			return err
		}
		fmt.Printf("query rewrite (best mapping):\n  %s\n  -> %s\n", *queryStr, out)
	}
	return nil
}

func loadPersonal(spec, file string) (*bellflower.Tree, error) {
	switch {
	case spec != "" && file != "":
		return nil, fmt.Errorf("use either -personal or -personal-file, not both")
	case spec != "":
		return bellflower.ParseSchema(spec)
	case file != "":
		trees, err := loadSchemaFile(file)
		if err != nil {
			return nil, err
		}
		return trees[0], nil
	default:
		return nil, fmt.Errorf("a personal schema is required (-personal or -personal-file)")
	}
}

func loadRepository(dir, file string, synthetic int, seed int64) (*bellflower.Repository, error) {
	sources := 0
	for _, set := range []bool{dir != "", file != "", synthetic > 0} {
		if set {
			sources++
		}
	}
	switch {
	case sources > 1:
		return nil, fmt.Errorf("use exactly one of -repo, -repo-file, -synthetic")
	case synthetic > 0:
		cfg := bellflower.DefaultSyntheticConfig()
		cfg.TargetNodes = synthetic
		cfg.Seed = seed
		return bellflower.Synthetic(cfg)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bellflower.LoadRepository(f)
	case dir != "":
		return loadDir(dir)
	default:
		return nil, fmt.Errorf("a repository is required (-repo DIR, -repo-file FILE or -synthetic N)")
	}
}

func loadDir(dir string) (*bellflower.Repository, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(e.Name())) {
		case ".xsd", ".dtd", ".xml":
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .xsd or .dtd files in %s", dir)
	}
	repo := bellflower.NewRepository()
	for _, name := range names {
		trees, err := loadSchemaFile(filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bellflower: skipping %s: %v\n", name, err)
			continue
		}
		for _, t := range trees {
			if err := repo.Add(t); err != nil {
				return nil, err
			}
		}
	}
	if repo.Len() == 0 {
		return nil, fmt.Errorf("no usable schemas in %s", dir)
	}
	return repo, nil
}

func loadSchemaFile(path string) ([]*bellflower.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".xsd":
		return bellflower.ParseXSD(f)
	case ".dtd":
		return bellflower.ParseDTD(f)
	case ".xml":
		t, err := bellflower.InferSchema(f)
		if err != nil {
			return nil, err
		}
		return []*bellflower.Tree{t}, nil
	default:
		return nil, fmt.Errorf("unsupported schema file %s (want .xsd, .dtd or .xml)", path)
	}
}
