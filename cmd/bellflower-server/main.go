// Command bellflower-server is a long-lived HTTP matching daemon: it
// indexes one schema repository and serves concurrent match requests from
// many clients through the bellflower concurrent matching service
// (bounded worker pool, in-flight deduplication, LRU report cache).
//
//	bellflower-server -synthetic 9759 -addr :8077
//	bellflower-server -repo-file ./repo.txt -workers 8 -timeout 5s
//	bellflower-server -synthetic 9759 -shards 4
//
// With -shards N the repository is partitioned into N shards (vocabulary
// co-locating by default; -partition balanced splits by node count), each
// served by its own worker pool; every match request fans out across all
// shards concurrently and the per-shard ranked lists are merged into one
// global top-N report. Shards are views over one shared labelling index —
// the repository is indexed once regardless of N — and cold-path element
// matching and clustering run once per request shape in a shared pre-pass
// projected onto the shards, which run only mapping generation. Cache
// memory across all shards answers to one byte budget (-cache-bytes) with
// an optional TTL (-cache-ttl); -partial serves partially failed fan-outs
// as incomplete reports instead of errors.
//
// The same fan-out also runs ACROSS PROCESSES. Every process loads the
// same repository (same -repo-file or the same -synthetic/-seed pair) and
// partitions it identically; shard servers host one shard each and the
// router ships per-request candidate projections over HTTP:
//
//	bellflower-server -synthetic 9759 -shard-of 0/2 -addr :8081
//	bellflower-server -synthetic 9759 -shard-of 1/2 -addr :8082
//	bellflower-server -synthetic 9759 -remote-shards :8081,:8082 -addr :8077
//
// A -shard-of process serves only the shard wire protocol
// (/v1/shard/match, /v1/shard/stats) plus /healthz and /metrics; the
// -remote-shards router serves the full public API and merges remote
// reports byte-identically to an unsharded run. With -partial, a dead
// shard server degrades requests to incomplete reports instead of errors.
//
// Each -remote-shards entry may name several REPLICAS of one shard
// separated by '|' (-remote-shards ":8081|:8083,:8082|:8084"): identical
// -shard-of processes the router load-balances across and fails over
// between mid-request, so one replica dying still yields a complete
// report. A background health loop (-health-interval, -health-failures)
// probes every replica, marks it unhealthy after consecutive failures —
// under -partial an all-replicas-down shard is then skipped without
// paying a per-request timeout — and re-admits it only after a probe
// re-verifies the shard descriptor. Health state is visible per shard in
// /v1/stats ("replicas") and as bellflower_shard_healthy in /metrics.
//
// Endpoints (JSON unless noted):
//
//	POST /v1/match        {"personal":"book(title,author)","options":{"delta":0.75,"timeout_ms":2000}}
//	                      append ?trace=1 for the request's span tree inline in the response
//	POST /v1/match/batch  {"requests":[{...},{...}]}
//	POST /v1/rewrite      {"personal":"...","query":"/book/title","mapping_rank":0}
//	GET  /v1/repository   repository source, size and shard count
//	POST /v1/repository   {"action":"synthetic","nodes":9759} | {"action":"load","path":...} | {"action":"save","path":...}
//	                      mutation requires the -data-dir opt-in; load/save paths are relative to it;
//	                      the previous repository drains (in-flight requests finish) before it is released
//	GET  /v1/stats        cache hits, in-flight dedupe, queue depth, latency histograms with
//	                      per-stage breakdowns and p50/p95/p99, uptime and build provenance
//	                      (sharded servers report {"total":...,"shards":[...]})
//	GET  /v1/traces       bounded ring of recent request traces, plus the slow ring (-slow-ms)
//	GET  /metrics         the same counters in Prometheus text format
//	GET  /healthz         liveness probe
//
// Every /v1/match request runs under a request-scoped trace: each serving
// and pipeline stage records a span, a distributed fan-out stitches the
// shards' spans into the router's tree over the X-Bellflower-Trace header,
// and requests at least -slow-ms long are logged with their full span
// breakdown. Logs are structured JSON on stderr (log/slog). -debug-addr
// starts a SEPARATE listener with net/http/pprof profiles and expvar at
// /debug/vars — keep it private; it is never mounted on the public
// listener.
//
// Per-request deadlines come from options.timeout_ms (or the -timeout
// default); an expired deadline cancels the underlying pipeline run and
// returns 504.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bellflower"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bellflower-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bellflower-server", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8077", "listen address")
		repoFile     = fs.String("repo-file", "", "load a repository saved with bellflower -save-repo")
		synthetic    = fs.Int("synthetic", 0, "generate a synthetic repository with this many nodes")
		seed         = fs.Int64("seed", 1, "seed for the synthetic repository")
		workers      = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "request queue depth (0 = 4x workers)")
		cacheSize    = fs.Int("cache", 0, "report cache capacity in entries per shard (0 = 256, negative = disabled)")
		cacheBytes   = fs.Int64("cache-bytes", 0, "byte budget for the unified cache (all shards' reports + pre-pass results; 0 = unbounded)")
		cacheTTL     = fs.Duration("cache-ttl", 0, "age cached entries out after this long (0 = never expire)")
		maxNodes     = fs.Int("max-schema-nodes", 0, "reject personal schemas above this node count (0 = 64, negative = unlimited)")
		timeout      = fs.Duration("timeout", 30*time.Second, "default per-request deadline (0 = none)")
		shards       = fs.Int("shards", 1, "partition the repository into this many shards and fan match requests out across them")
		partition    = fs.String("partition", "clustered", "shard partition strategy: clustered (co-locate trees with overlapping vocabulary) or balanced (by node count)")
		partial      = fs.Bool("partial", false, "serve partially failed fan-outs as incomplete reports (merge the shards that succeeded) instead of failing the request")
		shardOf      = fs.String("shard-of", "", "host one shard of the partitioned repository for a distributed router: INDEX/COUNT (e.g. 0/4); serves /v1/shard/match and /v1/shard/stats instead of the public API")
		remoteShards = fs.String("remote-shards", "", "comma-separated shard-server addresses (host:port,...); '|' groups replicas of one shard (a1|a2,b); fan match requests out to those processes instead of in-process shards")
		healthIntvl  = fs.Duration("health-interval", 0, "base period of the background health probes against remote shard replicas, jittered +/-20% (0 = 5s default, negative = probing disabled)")
		healthFails  = fs.Int("health-failures", 0, "consecutive probe/transport failures before a remote replica is marked unhealthy (0 = 3)")
		dataDir      = fs.String("data-dir", "", "directory for /v1/repository load/save files; also enables repository mutation (empty = POST /v1/repository disabled)")
		slowMS       = fs.Int("slow-ms", 0, "log a full span breakdown for requests at least this many milliseconds long, and capture them in the /v1/traces slow ring (0 = disabled)")
		debugAddr    = fs.String("debug-addr", "", "listen address for the debug listener (net/http/pprof profiles + expvar at /debug/vars); empty = disabled")
		maxBodyBytes = fs.Int64("max-body-bytes", 0, "cap on public-API request bodies in bytes; oversized bodies are rejected with 413 (0 = 1 MiB; the shard wire endpoint keeps its own 64 MiB projection cap)")
		wireCodec    = fs.String("wire-codec", "auto", "shard wire codec: auto (negotiate binary per shard via the stats handshake), json (legacy surface: full JSON payloads, no projection references) or binary (force binary); as -shard-of, json serves the legacy protocol only")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shardOf != "" && *remoteShards != "" {
		return errors.New("-shard-of and -remote-shards are different roles; pick one")
	}
	if (*shardOf != "" || *remoteShards != "") && *shards != 1 {
		return errors.New("-shards applies only to in-process sharding; distributed roles take their fan-out from -shard-of / -remote-shards")
	}
	if (*shardOf != "" || *remoteShards != "") && *dataDir != "" {
		return errors.New("-data-dir (repository mutation) is not supported in distributed roles: every process must keep the same repository")
	}
	switch *wireCodec {
	case "auto", "json", "binary":
	default:
		return fmt.Errorf("-wire-codec %q: want auto, json or binary", *wireCodec)
	}
	if *maxBodyBytes < 0 {
		return fmt.Errorf("-max-body-bytes %d must not be negative", *maxBodyBytes)
	}

	repo, desc, err := buildRepository(*repoFile, *synthetic, *seed)
	if err != nil {
		return err
	}
	strategy, err := bellflower.ParsePartitionStrategy(*partition)
	if err != nil {
		return err
	}
	svcCfg := bellflower.ServiceConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		CacheBytes:     *cacheBytes,
		CacheTTL:       *cacheTTL,
		MaxSchemaNodes: *maxNodes,
		DefaultTimeout: *timeout,
		PartialResults: *partial,
		HealthInterval: *healthIntvl,
		HealthFailures: *healthFails,
		WireCodec:      *wireCodec,
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	st := repo.Stats()
	slowThreshold := time.Duration(*slowMS) * time.Millisecond
	rec := bellflower.NewTraceRecorder(0, 0, slowThreshold)

	var handler http.Handler
	var closeNow func()
	switch {
	case *shardOf != "":
		idx, n, err := parseShardOf(*shardOf)
		if err != nil {
			return err
		}
		host, err := bellflower.NewShardHost(repo, idx, n, svcCfg, strategy)
		if err != nil {
			return err
		}
		host.SetTraceRecorder(rec)
		if *wireCodec == "json" {
			host.SetJSONOnly()
		}
		hostStats := host.Service().RepositoryStats()
		logger.Info("hosting shard",
			"shard", idx, "shards", n, "repository", desc, "partition", strategy.String(),
			"trees", hostStats.Trees, "repo_trees", st.Trees,
			"nodes", hostStats.Nodes, "repo_nodes", st.Nodes, "addr", *addr)
		handler = shardRoutes(host, rec, logger)
		closeNow = host.Close
	case *remoteShards != "":
		addrs, err := splitShardAddrs(*remoteShards)
		if err != nil {
			return err
		}
		backend, err := bellflower.NewDistributedService(repo, addrs, svcCfg, strategy)
		if err != nil {
			return err
		}
		srv := newRemoteServer(backend, repo, desc, logger)
		srv.setTracing(rec, slowThreshold)
		srv.setMaxBody(*maxBodyBytes)
		logger.Info("serving",
			"repository", desc, "trees", st.Trees, "nodes", st.Nodes,
			"remote_shards", backend.NumShards(), "shard_addrs", *remoteShards, "addr", *addr)
		handler = srv.routes()
		closeNow = srv.closeNow
	default:
		srv := newServer(repo, desc, svcCfg, *shards, strategy, *dataDir, logger)
		srv.setTracing(rec, slowThreshold)
		srv.setMaxBody(*maxBodyBytes)
		// Log the backend's actual shard count: -shards clamps to the number
		// of repository trees.
		logger.Info("serving",
			"repository", desc, "trees", st.Trees, "nodes", st.Nodes,
			"shards", srv.numShards(), "addr", *addr)
		handler = srv.routes()
		closeNow = srv.closeNow
	}
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           debugRoutes(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
		defer dbg.Close()
		logger.Info("debug listener", "addr", *debugAddr)
	}
	// Full connection timeouts, not just the header one: without a
	// ReadTimeout a client can trickle a request body forever, and without
	// an IdleTimeout abandoned keep-alive connections pin file descriptors
	// for the process lifetime. The write timeout caps the whole response
	// and so must exceed the request deadline — it tracks -timeout with
	// headroom, and an unbounded -timeout (0) leaves it unbounded too
	// rather than cutting legitimate long matches off mid-response.
	writeTimeout := time.Duration(0)
	if *timeout > 0 {
		writeTimeout = *timeout + 30*time.Second
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Info("shutting down")
		// Force-close the backend first: in-flight matches (which may hold
		// their handlers for up to the default timeout) fail fast with
		// 503, letting Shutdown drain within its budget instead of
		// timing out behind a slow pipeline run.
		closeNow()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// parseShardOf parses the -shard-of INDEX/COUNT argument. Both sides must
// be clean integers — trailing junk ("1/2/4", "0/2x") is a typo the
// operator needs to hear about, not a prefix to silently accept.
func parseShardOf(s string) (idx, n int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard-of %q: want INDEX/COUNT, e.g. 0/4", s)
	}
	idx, errIdx := strconv.Atoi(a)
	n, errN := strconv.Atoi(b)
	if errIdx != nil || errN != nil {
		return 0, 0, fmt.Errorf("-shard-of %q: want INDEX/COUNT, e.g. 0/4", s)
	}
	if n < 1 || idx < 0 || idx >= n {
		return 0, 0, fmt.Errorf("-shard-of %q: index must be in [0,%d)", s, n)
	}
	return idx, n, nil
}

// splitShardAddrs parses the -remote-shards list — comma-separated shards,
// each optionally a '|'-separated replica group ("a1|a2,b") — trimming
// whitespace and rejecting empty shards and empty replica entries: a
// trailing comma (or a "a1|") would otherwise materialize as a permanently
// dead shard or replica that -partial then quietly tolerates.
func splitShardAddrs(s string) ([]string, error) {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("-remote-shards %q: empty address entry", s)
		}
		replicas := strings.Split(p, "|")
		for i, rep := range replicas {
			rep = strings.TrimSpace(rep)
			if rep == "" {
				return nil, fmt.Errorf("-remote-shards %q: empty replica address in %q", s, p)
			}
			replicas[i] = rep
		}
		out = append(out, strings.Join(replicas, "|"))
	}
	return out, nil
}

func buildRepository(repoFile string, synthetic int, seed int64) (*bellflower.Repository, string, error) {
	switch {
	case repoFile != "" && synthetic > 0:
		return nil, "", fmt.Errorf("use either -repo-file or -synthetic, not both")
	case repoFile != "":
		f, err := os.Open(repoFile)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		repo, err := bellflower.LoadRepository(f)
		if err != nil {
			return nil, "", err
		}
		return repo, repoFile, nil
	case synthetic > 0:
		cfg := bellflower.DefaultSyntheticConfig()
		cfg.TargetNodes = synthetic
		cfg.Seed = seed
		repo, err := bellflower.Synthetic(cfg)
		if err != nil {
			return nil, "", err
		}
		return repo, fmt.Sprintf("synthetic(%d,seed=%d)", synthetic, seed), nil
	default:
		return nil, "", fmt.Errorf("a repository is required (-repo-file FILE or -synthetic N)")
	}
}
