package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bellflower"
)

func newQuietLogger() *slog.Logger { return slog.New(slog.NewJSONHandler(io.Discard, nil)) }

func testRepo3() *bellflower.Repository {
	repo := bellflower.NewRepository()
	for _, spec := range []string{
		"lib(address,book(authorName,data(title),shelf))",
		"store(book(title,author,isbn@),order(id,customer(name,email)))",
		"catalog(item(name,price),publisher(name,address))",
	} {
		repo.MustAdd(bellflower.MustParseSchema(spec))
	}
	return repo
}

func testService(t *testing.T, cfg bellflower.ServiceConfig) (*server, *httptest.Server) {
	return testShardedService(t, cfg, 1)
}

func testShardedService(t *testing.T, cfg bellflower.ServiceConfig, shards int) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(testRepo3(), "test", cfg, shards, bellflower.PartitionClustered, t.TempDir(), newQuietLogger())
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		ts.Close()
		srv.closeNow()
	})
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHandleMatchTable(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{MaxSchemaNodes: 8})

	tests := []struct {
		name       string
		body       string
		wantStatus int
		wantInBody string
	}{
		{
			name:       "valid match",
			body:       `{"personal":"book(title,author)","options":{"delta":0.5}}`,
			wantStatus: http.StatusOK,
			wantInBody: `"mappings"`,
		},
		{
			name:       "bad json",
			body:       `{"personal":`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "bad request body",
		},
		{
			name:       "unknown field",
			body:       `{"personal":"a(b)","nonsense":1}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "bad request body",
		},
		{
			name:       "bad spec",
			body:       `{"personal":"book(title,"}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "error",
		},
		{
			name:       "oversized schema",
			body:       `{"personal":"a(b,c,d,e,f,g,h,i,j,k,l)"}`,
			wantStatus: http.StatusRequestEntityTooLarge,
			wantInBody: "too large",
		},
		{
			name:       "bad variant",
			body:       `{"personal":"a(b)","options":{"variant":"gigantic"}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown variant",
		},
		{
			name:       "bad matcher",
			body:       `{"personal":"a(b)","options":{"matcher":"psychic"}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown matcher",
		},
		{
			name:       "bad threshold",
			body:       `{"personal":"a(b)","options":{"delta":1.5}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "threshold",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/match", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d (body: %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if !strings.Contains(string(body), tc.wantInBody) {
				t.Errorf("body %q does not contain %q", body, tc.wantInBody)
			}
		})
	}

	t.Run("get rejected", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/match")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET status = %d, want 405", resp.StatusCode)
		}
	})
}

func TestHandleMatchBadOptionsSurfaceAs400(t *testing.T) {
	// Validation errors from deep in the pipeline must not become 500s.
	_, ts := testService(t, bellflower.ServiceConfig{})
	resp, body := postJSON(t, ts.URL+"/v1/match", `{"personal":"a(b)","options":{"alpha":7}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400 (body: %s)", resp.StatusCode, body)
	}
}

func TestDeadlineExceededReturns504(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a paper-scale repository")
	}
	cfg := bellflower.DefaultSyntheticConfig()
	cfg.TargetNodes = 5000
	repo, err := bellflower.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svcCfg := bellflower.ServiceConfig{}
	srv := newServer(repo, "synthetic", svcCfg, 1, bellflower.PartitionClustered, "", newQuietLogger())
	ts := httptest.NewServer(srv.routes())
	defer func() {
		ts.Close()
		srv.closeNow()
	}()

	resp, body := postJSON(t, ts.URL+"/v1/match",
		`{"personal":"book(title,author,publisher(name,address),isbn)","options":{"timeout_ms":1}}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body: %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("body %q should mention the deadline", body)
	}
}

func TestCacheHitPathAndStats(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})

	const body = `{"personal":"book(title,author)","options":{"delta":0.5}}`
	var first []byte
	for i := 0; i < 3; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/match", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, data)
		}
		if i == 0 {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Errorf("request %d: cached response differs from first", i)
		}
	}

	resp, data := postJSON(t, ts.URL+"/v1/stats", "")
	_ = resp
	var stats bellflower.ServiceStats
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("stats decode: %v (%s)", err, data)
	}
	if stats.CacheHits < 2 {
		t.Errorf("cache hits = %d, want >= 2 after repeated identical requests", stats.CacheHits)
	}
	if stats.PipelineRuns != 1 {
		t.Errorf("pipeline runs = %d, want 1", stats.PipelineRuns)
	}
	if stats.Latency.Count < 3 {
		t.Errorf("latency observations = %d, want >= 3", stats.Latency.Count)
	}
}

func TestConcurrentMatches(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{Workers: 4})

	specs := []string{
		"book(title,author)",
		"customer(name,email)",
		"item(name,price)",
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				body := fmt.Sprintf(`{"personal":%q,"options":{"delta":0.5}}`, specs[(g+i)%len(specs)])
				resp, err := http.Post(ts.URL+"/v1/match", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestHandleMatchBatch(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})

	body := `{"requests":[
		{"personal":"book(title,author)","options":{"delta":0.5}},
		{"personal":"not a spec ((","options":{}},
		{"personal":"customer(name,email)","options":{"delta":0.5}}
	]}`
	resp, data := postJSON(t, ts.URL+"/v1/match/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, data)
	}
	var out struct {
		Results []struct {
			Result *matchResponseJSON `json:"result"`
			Error  string             `json:"error"`
			Status int                `json:"status"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Status != http.StatusOK || out.Results[0].Result == nil {
		t.Errorf("entry 0: status %d, result %v", out.Results[0].Status, out.Results[0].Result)
	}
	if out.Results[1].Status != http.StatusBadRequest || out.Results[1].Error == "" {
		t.Errorf("entry 1 should fail parse: status %d", out.Results[1].Status)
	}
	if out.Results[2].Status != http.StatusOK {
		t.Errorf("entry 2: status %d", out.Results[2].Status)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/match/batch", `{"requests":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}

	var entries []string
	for i := 0; i < 257; i++ {
		entries = append(entries, `{"personal":"a(b)"}`)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/match/batch", `{"requests":[`+strings.Join(entries, ",")+`]}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("257-entry batch: status %d, want 413", resp.StatusCode)
	}
}

func TestHandleRewrite(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})

	body := `{"personal":"book(title,author)","query":"/book/title","options":{"delta":0.5}}`
	resp, data := postJSON(t, ts.URL+"/v1/rewrite", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, data)
	}
	var out struct {
		Rewritten string  `json:"rewritten"`
		Delta     float64 `json:"delta"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Rewritten == "" || out.Rewritten[0] != '/' {
		t.Errorf("rewritten = %q, want a repository XPath", out.Rewritten)
	}
	if out.Delta <= 0 {
		t.Errorf("delta = %v, want > 0", out.Delta)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/rewrite",
		`{"personal":"book(title,author)","query":"/book/title","mapping_rank":999,"options":{"delta":0.5}}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("out-of-range rank: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/rewrite", `{"personal":"book(title,author)"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query: status %d, want 400", resp.StatusCode)
	}
}

func TestHandleRepository(t *testing.T) {
	srv, ts := testService(t, bellflower.ServiceConfig{})

	resp, data := postJSON(t, ts.URL+"/v1/match", `{"personal":"book(title,author)","options":{"delta":0.5}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup match: %d (%s)", resp.StatusCode, data)
	}

	resp, err := http.Get(ts.URL + "/v1/repository")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Source string `json:"source"`
		Trees  int    `json:"trees"`
		Nodes  int    `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Trees != 3 || info.Nodes == 0 || info.Source != "test" {
		t.Errorf("repository info = %+v", info)
	}

	// Save the current repository, swap to a synthetic one, then load the
	// save back: a full round trip through all three actions. Paths are
	// relative to the server's data directory.
	resp, data = postJSON(t, ts.URL+"/v1/repository", `{"action":"save","path":"repo.txt"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("save: %d (%s)", resp.StatusCode, data)
	}
	if _, err := os.Stat(filepath.Join(srv.dataDir, "repo.txt")); err != nil {
		t.Fatalf("saved file: %v", err)
	}

	resp, data = postJSON(t, ts.URL+"/v1/repository", `{"action":"synthetic","nodes":300,"seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthetic: %d (%s)", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.Nodes < 200 || info.Trees == 3 {
		t.Errorf("synthetic swap not visible: %+v", info)
	}
	// The new service starts with fresh stats.
	waitFor(t, func() bool {
		_, data := postJSON(t, ts.URL+"/v1/stats", "")
		var stats bellflower.ServiceStats
		return json.Unmarshal(data, &stats) == nil && stats.PipelineRuns == 0
	})

	resp, data = postJSON(t, ts.URL+"/v1/repository", `{"action":"load","path":"repo.txt"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d (%s)", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.Trees != 3 {
		t.Errorf("loaded repository has %d trees, want 3", info.Trees)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/repository", `{"action":"explode"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown action: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/repository", `{"action":"load"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("load without path: status %d, want 400", resp.StatusCode)
	}
}

func TestRepositoryPathSandbox(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})

	// Absolute and escaping paths must be refused before touching the
	// filesystem.
	for _, path := range []string{"/etc/passwd", "../outside.txt", "a/../../outside.txt"} {
		resp, body := postJSON(t, ts.URL+"/v1/repository", fmt.Sprintf(`{"action":"load","path":%q}`, path))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("load %q: status %d, want 400 (%s)", path, resp.StatusCode, body)
		}
		resp, _ = postJSON(t, ts.URL+"/v1/repository", fmt.Sprintf(`{"action":"save","path":%q}`, path))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("save %q: status %d, want 400", path, resp.StatusCode)
		}
	}

	// Absurd synthetic sizes are refused before generation.
	resp, body := postJSON(t, ts.URL+"/v1/repository", `{"action":"synthetic","nodes":1000000000}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized synthetic: status %d, want 400 (%s)", resp.StatusCode, body)
	}

	// With no data directory configured, every mutating action is off.
	srv2 := newServer(testRepo3(), "test", bellflower.ServiceConfig{}, 1, bellflower.PartitionClustered, "", newQuietLogger())
	ts2 := httptest.NewServer(srv2.routes())
	defer func() {
		ts2.Close()
		srv2.closeNow()
	}()
	for _, action := range []string{`{"action":"save","path":"repo.txt"}`, `{"action":"synthetic","nodes":300}`} {
		resp, body := postJSON(t, ts2.URL+"/v1/repository", action)
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s without -data-dir: status %d, want 403 (%s)", action, resp.StatusCode, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
}

func TestBodySizeLimit(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})
	huge := `{"personal":"` + strings.Repeat("x", defaultMaxBody) + `"}`
	resp, body := postJSON(t, ts.URL+"/v1/match", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
	if !strings.Contains(string(body), "limit") {
		t.Errorf("413 body %q does not name the limit", body)
	}

	// -max-body-bytes re-sizes the cap; under it, requests still serve.
	srv2, ts2 := testService(t, bellflower.ServiceConfig{})
	srv2.setMaxBody(256)
	resp, _ = postJSON(t, ts2.URL+"/v1/match", `{"personal":"`+strings.Repeat("x", 300)+`"}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("300-byte body over a 256-byte cap: status %d, want 413", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts2.URL+"/v1/match", `{"personal":"book(title,author)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("small body under the shrunk cap: status %d, want 200", resp.StatusCode)
	}
	if srv2.setMaxBody(0); srv2.maxBody != 256 {
		t.Error("setMaxBody(0) must keep the previous cap")
	}
}

// TestHotReloadDrainsInFlight pins down the drain guarantee of POST
// /v1/repository: requests in flight against the old repository finish
// against it (zero cancellations), the old backend closes only after its
// last request releases it, and requests arriving after the swap serve the
// new repository. Run with -race in CI, this also exercises the
// generation hand-off for data races.
func TestHotReloadDrainsInFlight(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := bellflower.DefaultSyntheticConfig()
			cfg.TargetNodes = 1200
			repo, err := bellflower.Synthetic(cfg)
			if err != nil {
				t.Fatal(err)
			}
			srv := newServer(repo, "synthetic", bellflower.ServiceConfig{}, shards, bellflower.PartitionClustered, t.TempDir(), newQuietLogger())
			ts := httptest.NewServer(srv.routes())
			defer func() {
				ts.Close()
				srv.closeNow()
			}()
			gen0 := srv.cur // the generation about to be retired

			const goroutines, perG = 6, 4
			var wg sync.WaitGroup
			var failures atomic.Int64
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						// Unique schemas bypass cache and dedupe so every
						// request runs the pipeline and holds its
						// generation open for real work.
						body := fmt.Sprintf(`{"personal":"press%d(title,author,year)","options":{"delta":0.5}}`, g*perG+i)
						resp, err := http.Post(ts.URL+"/v1/match", "application/json", strings.NewReader(body))
						if err != nil {
							failures.Add(1)
							t.Errorf("goroutine %d: %v", g, err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							failures.Add(1)
							t.Errorf("goroutine %d request %d: status %d — an in-flight request was cancelled by the reload", g, i, resp.StatusCode)
						}
					}
				}(g)
			}

			// Swap once requests are provably in flight against gen0 (the
			// server's own reference plus at least one handler's).
			waitFor(t, func() bool { return gen0.refs.Load() > 1 })
			resp, data := postJSON(t, ts.URL+"/v1/repository", `{"action":"synthetic","nodes":300,"seed":9}`)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("swap: %d (%s)", resp.StatusCode, data)
			}
			wg.Wait()
			if failures.Load() > 0 {
				t.Fatalf("%d of %d requests failed across the reload; drain must cancel none", failures.Load(), goroutines*perG)
			}

			// The old generation closes exactly when its last request lets
			// go — never before, never leaked.
			waitFor(t, func() bool { return gen0.refs.Load() == 0 })
			_, err = gen0.backend.Match(context.Background(), bellflower.MustParseSchema("book(title)"), bellflower.DefaultOptions())
			if !errors.Is(err, bellflower.ErrServiceClosed) {
				t.Errorf("retired backend err = %v, want ErrServiceClosed (drain must still close it)", err)
			}

			// Post-swap traffic serves the new repository.
			var info struct {
				Nodes  int `json:"nodes"`
				Shards int `json:"shards"`
			}
			getJSON(t, ts.URL+"/v1/repository", &info)
			if info.Nodes >= 1000 || info.Shards != shards {
				t.Errorf("post-swap repository info = %+v", info)
			}
		})
	}
}

// TestCloseNowReachesDrainingGenerations pins down the shutdown path: a
// generation swapped out but still held by an in-flight request must be
// force-closed by closeNow, or a slow request could hold Shutdown hostage
// past its budget.
func TestCloseNowReachesDrainingGenerations(t *testing.T) {
	srv := newServer(testRepo3(), "gen0", bellflower.ServiceConfig{}, 1, bellflower.PartitionClustered, "", newQuietLogger())
	gen0 := srv.cur
	hold := srv.acquire() // simulate a request still running against gen0
	srv.swap(testRepo3(), "gen1")
	gen1 := srv.cur

	// gen0 is draining, not closed: the held request can still match.
	if _, err := gen0.backend.Match(context.Background(), bellflower.MustParseSchema("book(title)"), bellflower.DefaultOptions()); err != nil {
		t.Fatalf("draining generation rejected a request before shutdown: %v", err)
	}

	srv.closeNow()
	for name, gen := range map[string]*backendRef{"retired": gen0, "current": gen1} {
		_, err := gen.backend.Match(context.Background(), bellflower.MustParseSchema("book(title)"), bellflower.DefaultOptions())
		if !errors.Is(err, bellflower.ErrServiceClosed) {
			t.Errorf("%s generation err = %v, want ErrServiceClosed after closeNow", name, err)
		}
	}
	hold.release() // late release of an already-closed generation must be a no-op
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestShardedStatsRollupAndEquivalence(t *testing.T) {
	_, sharded := testShardedService(t, bellflower.ServiceConfig{}, 2)
	_, plain := testService(t, bellflower.ServiceConfig{})

	const body = `{"personal":"book(title,author)","options":{"delta":0.5}}`
	mappingSet := func(ts *httptest.Server) []string {
		resp, data := postJSON(t, ts.URL+"/v1/match", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("match: %d (%s)", resp.StatusCode, data)
		}
		var out struct {
			Mappings []struct {
				Delta float64 `json:"delta"`
				Pairs []struct {
					Personal   string `json:"personal"`
					Repository string `json:"repository"`
				} `json:"pairs"`
			} `json:"mappings"`
		}
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(out.Mappings))
		for i, m := range out.Mappings {
			keys[i] = fmt.Sprintf("%.9f|%v", m.Delta, m.Pairs)
		}
		sort.Strings(keys)
		return keys
	}
	got, want := mappingSet(sharded), mappingSet(plain)
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("sharded server found %d mappings, unsharded %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("mapping %d differs:\n  sharded   %s\n  unsharded %s", i, got[i], want[i])
		}
	}

	// Repeat the request so the rollup shows per-shard cache hits.
	if resp, _ := postJSON(t, sharded.URL+"/v1/match", body); resp.StatusCode != http.StatusOK {
		t.Fatal("repeat match failed")
	}
	var stats struct {
		Total  bellflower.ServiceStats   `json:"total"`
		Shards []bellflower.ServiceStats `json:"shards"`
	}
	getJSON(t, sharded.URL+"/v1/stats", &stats)
	if len(stats.Shards) != 2 {
		t.Fatalf("stats lists %d shards, want 2", len(stats.Shards))
	}
	if stats.Total.Requests != 4 {
		t.Errorf("rolled-up requests = %d, want 4 (2 requests × 2 shards)", stats.Total.Requests)
	}
	if stats.Total.CacheHits < 2 {
		t.Errorf("rolled-up cache hits = %d, want ≥ 2", stats.Total.CacheHits)
	}
	var repoInfo struct {
		Trees  int `json:"trees"`
		Shards int `json:"shards"`
	}
	getJSON(t, sharded.URL+"/v1/repository", &repoInfo)
	if repoInfo.Trees != 3 || repoInfo.Shards != 2 {
		t.Errorf("repository info = %+v", repoInfo)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testShardedService(t, bellflower.ServiceConfig{}, 2)
	if resp, _ := postJSON(t, ts.URL+"/v1/match", `{"personal":"book(title,author)","options":{"delta":0.5}}`); resp.StatusCode != http.StatusOK {
		t.Fatal("warmup match failed")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, metric := range []string{
		"bellflower_requests_total 2", // one request × two shards
		"bellflower_shards 2",
		"bellflower_pipeline_runs_total",
		"bellflower_request_latency_seconds_bucket{le=\"+Inf\"}",
		"bellflower_request_latency_seconds_count",
	} {
		if !strings.Contains(string(data), metric) {
			t.Errorf("metrics output missing %q", metric)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHotReloadColdPrePassRace is the candidate pre-pass race stress: cold
// matches (cache- and dedupe-busting top_n, several candidate signatures)
// hammer a sharded router while the repository is hot-swapped repeatedly.
// Every request must complete with 200 — the pre-pass belongs to one
// backend generation and a draining generation finishes its in-flight
// requests before closing, so no request may ever observe a closed
// generation. Run with -race, where a pre-pass touching a closed
// generation's state would also surface as a data race.
func TestHotReloadColdPrePassRace(t *testing.T) {
	cfg := bellflower.DefaultSyntheticConfig()
	cfg.TargetNodes = 900
	repo, err := bellflower.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(repo, "synthetic", bellflower.ServiceConfig{}, 3, bellflower.PartitionClustered, t.TempDir(), newQuietLogger())
	ts := httptest.NewServer(srv.routes())
	defer func() {
		ts.Close()
		srv.closeNow()
	}()

	const goroutines, perG = 8, 6
	var uniq atomic.Int64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Unique top_n busts the report cache (cold path); three
				// distinct personal schemas rotate the candidate signature
				// so pre-pass sharing and pre-pass execution both happen
				// concurrently with the swaps.
				body := fmt.Sprintf(
					`{"personal":"press%d(title,author,year)","options":{"delta":0.5,"top_n":%d}}`,
					g%3, 1000000+uniq.Add(1))
				resp, err := http.Post(ts.URL+"/v1/match", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d request %d: status %d — a cold pre-pass request failed across the reload", g, i, resp.StatusCode)
				}
			}
		}(g)
	}

	// Swap the repository several times while the cold traffic runs.
	for swap := 0; swap < 3; swap++ {
		body := fmt.Sprintf(`{"action":"synthetic","nodes":700,"seed":%d}`, swap+2)
		resp, data := postJSON(t, ts.URL+"/v1/repository", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: %d (%s)", swap, resp.StatusCode, data)
		}
	}
	wg.Wait()

	// The current generation's rollup exposes the pre-pass counter; cold
	// requests against a 3-shard router must have executed at least one.
	var stats struct {
		Total struct {
			CandidatePrePass int64 `json:"candidate_pre_pass"`
			Requests         int64 `json:"requests"`
		} `json:"total"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Total.Requests > 0 && stats.Total.CandidatePrePass < 1 {
		t.Errorf("stats = %+v: sharded cold traffic reported no candidate pre-pass", stats.Total)
	}
}

// TestStatsReportCandidatePrePass pins the /v1/stats and /metrics wiring
// of the pre-pass counter: cold requests that share one candidate
// signature run the full-repository matching exactly once, per-shard
// snapshots never carry the router-level counter, and both JSON and
// Prometheus surfaces agree.
func TestStatsReportCandidatePrePass(t *testing.T) {
	_, ts := testShardedService(t, bellflower.ServiceConfig{}, 2)

	for i := 0; i < 3; i++ {
		// Same schema and matcher, unique top_n: three cold reports, one
		// candidate signature.
		body := fmt.Sprintf(`{"personal":"book(title,author)","options":{"delta":0.5,"top_n":%d}}`, 100+i)
		if resp, data := postJSON(t, ts.URL+"/v1/match", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("match %d: %d (%s)", i, resp.StatusCode, data)
		}
	}

	var stats struct {
		Total  bellflower.ServiceStats   `json:"total"`
		Shards []bellflower.ServiceStats `json:"shards"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Total.CandidatePrePass != 1 {
		t.Errorf("total candidate_pre_pass = %d, want 1 (three cold requests, one signature)", stats.Total.CandidatePrePass)
	}
	if stats.Total.PipelineRuns != 6 {
		t.Errorf("pipeline runs = %d, want 6 (three cold requests × two shards)", stats.Total.PipelineRuns)
	}
	for i, ss := range stats.Shards {
		if ss.CandidatePrePass != 0 {
			t.Errorf("shard %d candidate_pre_pass = %d, want 0 (pre-pass work happens above the shards)", i, ss.CandidatePrePass)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "bellflower_candidate_prepass_total 1") {
		t.Errorf("metrics missing bellflower_candidate_prepass_total 1:\n%s", data)
	}

	// A single-shard server has no pre-pass; the flat stats shape reports 0.
	_, plain := testService(t, bellflower.ServiceConfig{})
	if resp, _ := postJSON(t, plain.URL+"/v1/match", `{"personal":"book(title,author)","options":{"delta":0.5}}`); resp.StatusCode != http.StatusOK {
		t.Fatal("plain match failed")
	}
	var flat bellflower.ServiceStats
	getJSON(t, plain.URL+"/v1/stats", &flat)
	if flat.CandidatePrePass != 0 {
		t.Errorf("single-shard candidate_pre_pass = %d, want 0", flat.CandidatePrePass)
	}
}

// TestPartialResultsEndpoint: with -partial, a fan-out missing a shard
// returns 200 with incomplete=true and per-shard errors on the wire, and
// /v1/stats counts the partial merge; without it the same failure is an
// error status.
func TestPartialResultsEndpoint(t *testing.T) {
	srv, ts := testShardedService(t, bellflower.ServiceConfig{PartialResults: true}, 3)
	router, ok := srv.cur.backend.(*bellflower.ShardedService)
	if !ok {
		t.Fatalf("backend is %T, want *bellflower.ShardedService", srv.cur.backend)
	}
	router.Shard(1).Close()

	resp, data := postJSON(t, ts.URL+"/v1/match", `{"personal":"book(title,author)","options":{"delta":0.5}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial match status = %d (%s)", resp.StatusCode, data)
	}
	var out struct {
		Incomplete  bool `json:"incomplete"`
		ShardErrors []struct {
			Shard int    `json:"shard"`
			Error string `json:"error"`
		} `json:"shard_errors"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Incomplete {
		t.Error("response not marked incomplete")
	}
	if len(out.ShardErrors) != 1 || out.ShardErrors[0].Shard != 1 || out.ShardErrors[0].Error == "" {
		t.Errorf("shard_errors = %+v, want exactly shard 1 with a message", out.ShardErrors)
	}
	var stats struct {
		Total bellflower.ServiceStats `json:"total"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Total.PartialResults != 1 {
		t.Errorf("partial_results = %d, want 1", stats.Total.PartialResults)
	}

	// Strict server: same dead shard, hard failure.
	strictSrv, strictTS := testShardedService(t, bellflower.ServiceConfig{}, 3)
	strictSrv.cur.backend.(*bellflower.ShardedService).Shard(1).Close()
	resp, _ = postJSON(t, strictTS.URL+"/v1/match", `{"personal":"book(title,author)","options":{"delta":0.5}}`)
	if resp.StatusCode == http.StatusOK {
		t.Errorf("strict server served a partially failed fan-out with 200")
	}
}

// TestMetricsShardLabelsAndMemoryGauges: the scrape exposes per-shard
// labelled series plus the unified-cache and shared-index gauges.
func TestMetricsShardLabelsAndMemoryGauges(t *testing.T) {
	_, ts := testShardedService(t, bellflower.ServiceConfig{CacheBytes: 1 << 20}, 2)
	if resp, _ := postJSON(t, ts.URL+"/v1/match", `{"personal":"book(title,author)","options":{"delta":0.5}}`); resp.StatusCode != http.StatusOK {
		t.Fatal("warmup match failed")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		`bellflower_shard_requests_total{shard="0"} 1`,
		`bellflower_shard_requests_total{shard="1"} 1`,
		`bellflower_shard_pipeline_runs_total{shard="0"}`,
		"bellflower_index_bytes ",
		"bellflower_cache_bytes ",
		"bellflower_cache_byte_budget 1048576",
	} {
		if !strings.Contains(string(data), metric) {
			t.Errorf("metrics output missing %q", metric)
		}
	}
	// /v1/stats carries the same memory figures in JSON.
	var stats struct {
		Total bellflower.ServiceStats `json:"total"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Total.IndexBytes <= 0 || stats.Total.CacheByteBudget != 1<<20 {
		t.Errorf("stats memory figures = index:%d budget:%d", stats.Total.IndexBytes, stats.Total.CacheByteBudget)
	}
}

// TestTraceInlineAndRing: ?trace=1 returns the request's span tree inline,
// and /v1/traces serves the bounded recent ring afterwards.
func TestTraceInlineAndRing(t *testing.T) {
	srv, ts := testShardedService(t, bellflower.ServiceConfig{}, 2)
	srv.setTracing(bellflower.NewTraceRecorder(4, 2, time.Nanosecond), 0)

	resp, body := postJSON(t, ts.URL+"/v1/match?trace=1", `{"personal":"book(title,author)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d %s", resp.StatusCode, body)
	}
	var mr struct {
		Trace *bellflower.TraceSummary `json:"trace"`
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Trace == nil || mr.Trace.Tree == nil {
		t.Fatalf("no inline trace in %s", body)
	}
	if mr.Trace.Root != "serve.match" || mr.Trace.TraceID == "" {
		t.Errorf("trace root/id = %q/%q", mr.Trace.Root, mr.Trace.TraceID)
	}
	// The sharded cold path must show the router stages under the root.
	names := map[string]bool{}
	var walk func(n *bellflower.TraceNode)
	walk = func(n *bellflower.TraceNode) {
		names[n.Name] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(mr.Trace.Tree)
	for _, want := range []string{"prepass", "fanout", "shard", "merge"} {
		if !names[want] {
			t.Errorf("inline tree missing span %q (got %v)", want, names)
		}
	}

	// Without ?trace=1 the response carries no trace.
	_, plain := postJSON(t, ts.URL+"/v1/match", `{"personal":"book(title,author)"}`)
	if strings.Contains(string(plain), `"trace"`) {
		t.Error("untraced response contains a trace field")
	}

	// Both requests entered the ring; every entry crossed the 1ns slow bar.
	resp2, tbody := getBody(t, ts.URL+"/v1/traces")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("traces: %d %s", resp2.StatusCode, tbody)
	}
	var tr struct {
		Recent []bellflower.TraceSummary `json:"recent"`
		Slow   []bellflower.TraceSummary `json:"slow"`
	}
	if err := json.Unmarshal(tbody, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Recent) != 2 || len(tr.Slow) != 2 {
		t.Errorf("ring sizes recent=%d slow=%d, want 2/2", len(tr.Recent), len(tr.Slow))
	}
	if len(tr.Recent) > 0 && tr.Recent[0].Root != "serve.match" {
		t.Errorf("ring root = %q", tr.Recent[0].Root)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestSlowRequestLogging: a request slower than -slow-ms writes a span
// breakdown to the structured log.
func TestSlowRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	srv := newServer(testRepo3(), "test", bellflower.ServiceConfig{}, 1, bellflower.PartitionClustered, "", logger)
	defer srv.closeNow()
	srv.setTracing(bellflower.NewTraceRecorder(4, 2, time.Nanosecond), time.Nanosecond)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	if resp, body := postJSON(t, ts.URL+"/v1/match", `{"personal":"book(title)"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d %s", resp.StatusCode, body)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, `"msg":"slow request"`) || !strings.Contains(out, `"trace_id"`) {
		t.Errorf("log missing slow-request breakdown:\n%s", out)
	}
	if !strings.Contains(out, `"tree"`) {
		t.Errorf("slow log carries no span tree:\n%s", out)
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestStatsUptimeAndBuild: /v1/stats reports uptime and build provenance in
// both the flat single-shard shape and the sharded envelope.
func TestStatsUptimeAndBuild(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})
	resp, body := getBody(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var flat struct {
		Requests      *int64   `json:"requests"` // flat shape: service fields at top level
		UptimeSeconds *float64 `json:"uptime_seconds"`
		Build         *struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
	}
	if err := json.Unmarshal(body, &flat); err != nil {
		t.Fatal(err)
	}
	if flat.Requests == nil || flat.UptimeSeconds == nil || *flat.UptimeSeconds < 0 {
		t.Errorf("flat stats missing requests/uptime: %s", body)
	}
	if flat.Build == nil || flat.Build.GoVersion == "" {
		t.Errorf("flat stats missing build block: %s", body)
	}

	_, ts2 := testShardedService(t, bellflower.ServiceConfig{}, 2)
	_, body2 := getBody(t, ts2.URL+"/v1/stats")
	var sharded struct {
		Total         *json.RawMessage `json:"total"`
		UptimeSeconds *float64         `json:"uptime_seconds"`
		Build         *json.RawMessage `json:"build"`
	}
	if err := json.Unmarshal(body2, &sharded); err != nil {
		t.Fatal(err)
	}
	if sharded.Total == nil || sharded.UptimeSeconds == nil || sharded.Build == nil {
		t.Errorf("sharded stats missing total/uptime/build: %s", body2)
	}
}

// TestDebugRoutes: the -debug-addr surface serves pprof and expvar, and
// none of it leaks onto the public listener.
func TestDebugRoutes(t *testing.T) {
	dbg := httptest.NewServer(debugRoutes())
	defer dbg.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
	}

	_, ts := testService(t, bellflower.ServiceConfig{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("public listener serves /debug/pprof/ (%d); it must not", resp.StatusCode)
	}
}
