package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bellflower"
)

func newQuietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func testService(t *testing.T, cfg bellflower.ServiceConfig) (*server, *httptest.Server) {
	t.Helper()
	repo := bellflower.NewRepository()
	for _, spec := range []string{
		"lib(address,book(authorName,data(title),shelf))",
		"store(book(title,author,isbn@),order(id,customer(name,email)))",
		"catalog(item(name,price),publisher(name,address))",
	} {
		repo.MustAdd(bellflower.MustParseSchema(spec))
	}
	logger := newQuietLogger()
	srv := newServer(bellflower.NewService(repo, cfg), "test", cfg, t.TempDir(), logger)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		ts.Close()
		srv.service().Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHandleMatchTable(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{MaxSchemaNodes: 8})

	tests := []struct {
		name       string
		body       string
		wantStatus int
		wantInBody string
	}{
		{
			name:       "valid match",
			body:       `{"personal":"book(title,author)","options":{"delta":0.5}}`,
			wantStatus: http.StatusOK,
			wantInBody: `"mappings"`,
		},
		{
			name:       "bad json",
			body:       `{"personal":`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "bad request body",
		},
		{
			name:       "unknown field",
			body:       `{"personal":"a(b)","nonsense":1}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "bad request body",
		},
		{
			name:       "bad spec",
			body:       `{"personal":"book(title,"}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "error",
		},
		{
			name:       "oversized schema",
			body:       `{"personal":"a(b,c,d,e,f,g,h,i,j,k,l)"}`,
			wantStatus: http.StatusRequestEntityTooLarge,
			wantInBody: "too large",
		},
		{
			name:       "bad variant",
			body:       `{"personal":"a(b)","options":{"variant":"gigantic"}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown variant",
		},
		{
			name:       "bad matcher",
			body:       `{"personal":"a(b)","options":{"matcher":"psychic"}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "unknown matcher",
		},
		{
			name:       "bad threshold",
			body:       `{"personal":"a(b)","options":{"delta":1.5}}`,
			wantStatus: http.StatusBadRequest,
			wantInBody: "threshold",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/match", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d (body: %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if !strings.Contains(string(body), tc.wantInBody) {
				t.Errorf("body %q does not contain %q", body, tc.wantInBody)
			}
		})
	}

	t.Run("get rejected", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/match")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET status = %d, want 405", resp.StatusCode)
		}
	})
}

func TestHandleMatchBadOptionsSurfaceAs400(t *testing.T) {
	// Validation errors from deep in the pipeline must not become 500s.
	_, ts := testService(t, bellflower.ServiceConfig{})
	resp, body := postJSON(t, ts.URL+"/v1/match", `{"personal":"a(b)","options":{"alpha":7}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400 (body: %s)", resp.StatusCode, body)
	}
}

func TestDeadlineExceededReturns504(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a paper-scale repository")
	}
	cfg := bellflower.DefaultSyntheticConfig()
	cfg.TargetNodes = 5000
	repo, err := bellflower.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svcCfg := bellflower.ServiceConfig{}
	srv := newServer(bellflower.NewService(repo, svcCfg), "synthetic", svcCfg, "", newQuietLogger())
	ts := httptest.NewServer(srv.routes())
	defer func() {
		ts.Close()
		srv.service().Close()
	}()

	resp, body := postJSON(t, ts.URL+"/v1/match",
		`{"personal":"book(title,author,publisher(name,address),isbn)","options":{"timeout_ms":1}}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body: %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("body %q should mention the deadline", body)
	}
}

func TestCacheHitPathAndStats(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})

	const body = `{"personal":"book(title,author)","options":{"delta":0.5}}`
	var first []byte
	for i := 0; i < 3; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/match", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, data)
		}
		if i == 0 {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Errorf("request %d: cached response differs from first", i)
		}
	}

	resp, data := postJSON(t, ts.URL+"/v1/stats", "")
	_ = resp
	var stats bellflower.ServiceStats
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("stats decode: %v (%s)", err, data)
	}
	if stats.CacheHits < 2 {
		t.Errorf("cache hits = %d, want >= 2 after repeated identical requests", stats.CacheHits)
	}
	if stats.PipelineRuns != 1 {
		t.Errorf("pipeline runs = %d, want 1", stats.PipelineRuns)
	}
	if stats.Latency.Count < 3 {
		t.Errorf("latency observations = %d, want >= 3", stats.Latency.Count)
	}
}

func TestConcurrentMatches(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{Workers: 4})

	specs := []string{
		"book(title,author)",
		"customer(name,email)",
		"item(name,price)",
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				body := fmt.Sprintf(`{"personal":%q,"options":{"delta":0.5}}`, specs[(g+i)%len(specs)])
				resp, err := http.Post(ts.URL+"/v1/match", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestHandleMatchBatch(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})

	body := `{"requests":[
		{"personal":"book(title,author)","options":{"delta":0.5}},
		{"personal":"not a spec ((","options":{}},
		{"personal":"customer(name,email)","options":{"delta":0.5}}
	]}`
	resp, data := postJSON(t, ts.URL+"/v1/match/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, data)
	}
	var out struct {
		Results []struct {
			Result *matchResponseJSON `json:"result"`
			Error  string             `json:"error"`
			Status int                `json:"status"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Status != http.StatusOK || out.Results[0].Result == nil {
		t.Errorf("entry 0: status %d, result %v", out.Results[0].Status, out.Results[0].Result)
	}
	if out.Results[1].Status != http.StatusBadRequest || out.Results[1].Error == "" {
		t.Errorf("entry 1 should fail parse: status %d", out.Results[1].Status)
	}
	if out.Results[2].Status != http.StatusOK {
		t.Errorf("entry 2: status %d", out.Results[2].Status)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/match/batch", `{"requests":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}

	var entries []string
	for i := 0; i < 257; i++ {
		entries = append(entries, `{"personal":"a(b)"}`)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/match/batch", `{"requests":[`+strings.Join(entries, ",")+`]}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("257-entry batch: status %d, want 413", resp.StatusCode)
	}
}

func TestHandleRewrite(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})

	body := `{"personal":"book(title,author)","query":"/book/title","options":{"delta":0.5}}`
	resp, data := postJSON(t, ts.URL+"/v1/rewrite", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, data)
	}
	var out struct {
		Rewritten string  `json:"rewritten"`
		Delta     float64 `json:"delta"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Rewritten == "" || out.Rewritten[0] != '/' {
		t.Errorf("rewritten = %q, want a repository XPath", out.Rewritten)
	}
	if out.Delta <= 0 {
		t.Errorf("delta = %v, want > 0", out.Delta)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/rewrite",
		`{"personal":"book(title,author)","query":"/book/title","mapping_rank":999,"options":{"delta":0.5}}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("out-of-range rank: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/rewrite", `{"personal":"book(title,author)"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing query: status %d, want 400", resp.StatusCode)
	}
}

func TestHandleRepository(t *testing.T) {
	srv, ts := testService(t, bellflower.ServiceConfig{})

	resp, data := postJSON(t, ts.URL+"/v1/match", `{"personal":"book(title,author)","options":{"delta":0.5}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup match: %d (%s)", resp.StatusCode, data)
	}

	resp, err := http.Get(ts.URL + "/v1/repository")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Source string `json:"source"`
		Trees  int    `json:"trees"`
		Nodes  int    `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Trees != 3 || info.Nodes == 0 || info.Source != "test" {
		t.Errorf("repository info = %+v", info)
	}

	// Save the current repository, swap to a synthetic one, then load the
	// save back: a full round trip through all three actions. Paths are
	// relative to the server's data directory.
	resp, data = postJSON(t, ts.URL+"/v1/repository", `{"action":"save","path":"repo.txt"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("save: %d (%s)", resp.StatusCode, data)
	}
	if _, err := os.Stat(filepath.Join(srv.dataDir, "repo.txt")); err != nil {
		t.Fatalf("saved file: %v", err)
	}

	resp, data = postJSON(t, ts.URL+"/v1/repository", `{"action":"synthetic","nodes":300,"seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthetic: %d (%s)", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.Nodes < 200 || info.Trees == 3 {
		t.Errorf("synthetic swap not visible: %+v", info)
	}
	// The new service starts with fresh stats.
	waitFor(t, func() bool {
		_, data := postJSON(t, ts.URL+"/v1/stats", "")
		var stats bellflower.ServiceStats
		return json.Unmarshal(data, &stats) == nil && stats.PipelineRuns == 0
	})

	resp, data = postJSON(t, ts.URL+"/v1/repository", `{"action":"load","path":"repo.txt"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: %d (%s)", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if info.Trees != 3 {
		t.Errorf("loaded repository has %d trees, want 3", info.Trees)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/repository", `{"action":"explode"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown action: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/repository", `{"action":"load"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("load without path: status %d, want 400", resp.StatusCode)
	}
}

func TestRepositoryPathSandbox(t *testing.T) {
	srv, ts := testService(t, bellflower.ServiceConfig{})

	// Absolute and escaping paths must be refused before touching the
	// filesystem.
	for _, path := range []string{"/etc/passwd", "../outside.txt", "a/../../outside.txt"} {
		resp, body := postJSON(t, ts.URL+"/v1/repository", fmt.Sprintf(`{"action":"load","path":%q}`, path))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("load %q: status %d, want 400 (%s)", path, resp.StatusCode, body)
		}
		resp, _ = postJSON(t, ts.URL+"/v1/repository", fmt.Sprintf(`{"action":"save","path":%q}`, path))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("save %q: status %d, want 400", path, resp.StatusCode)
		}
	}

	// Absurd synthetic sizes are refused before generation.
	resp, body := postJSON(t, ts.URL+"/v1/repository", `{"action":"synthetic","nodes":1000000000}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized synthetic: status %d, want 400 (%s)", resp.StatusCode, body)
	}

	// With no data directory configured, every mutating action is off.
	srv2 := newServer(bellflower.NewService(srv.service().Repository(), bellflower.ServiceConfig{}), "test", bellflower.ServiceConfig{}, "", newQuietLogger())
	ts2 := httptest.NewServer(srv2.routes())
	defer func() {
		ts2.Close()
		srv2.service().Close()
	}()
	for _, action := range []string{`{"action":"save","path":"repo.txt"}`, `{"action":"synthetic","nodes":300}`} {
		resp, body := postJSON(t, ts2.URL+"/v1/repository", action)
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s without -data-dir: status %d, want 403 (%s)", action, resp.StatusCode, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
}

func TestBodySizeLimit(t *testing.T) {
	_, ts := testService(t, bellflower.ServiceConfig{})
	huge := `{"personal":"` + strings.Repeat("x", defaultMaxBody) + `"}`
	resp, _ := postJSON(t, ts.URL+"/v1/match", huge)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", resp.StatusCode)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
