package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bellflower"
)

// backendRef is one generation of the served backend (a Service or a
// ShardedService) with the repository it was built from. The reference
// count holds the backend open across the requests still using it: the
// server owns one reference for as long as the generation is current, and
// every in-flight request holds one more. The backend is closed by
// whichever release drops the count to zero, so a repository swap drains
// gracefully — requests that grabbed the old generation finish against it
// and only then are its workers shut down.
type backendRef struct {
	backend bellflower.ServiceBackend
	repo    *bellflower.Repository // original (unpartitioned) repository, for save
	desc    string
	refs    atomic.Int64
}

// release drops one reference, closing the backend when the last holder is
// gone.
func (ref *backendRef) release() {
	if ref.refs.Add(-1) == 0 {
		ref.backend.Close()
	}
}

// server routes HTTP traffic onto a bellflower serving backend. The current
// generation is swapped atomically by POST /v1/repository; see backendRef
// for the drain semantics.
type server struct {
	mu      sync.Mutex
	cur     *backendRef
	retired []*backendRef // swapped-out generations that may still be draining

	svcCfg    bellflower.ServiceConfig
	shards    int
	partition bellflower.PartitionStrategy
	dataDir   string // sandbox for repository load/save; "" disables those actions
	maxBody   int64
	logger    *slog.Logger

	// Observability: every /v1/match request runs under a RequestTrace;
	// finished traces feed the recorder (the /v1/traces ring) and, past the
	// slow threshold, a full span breakdown goes to the structured log.
	rec   *bellflower.TraceRecorder
	slow  time.Duration // 0 disables slow-request logging
	start time.Time     // process start, for /v1/stats uptime
}

const defaultMaxBody = 1 << 20 // 1 MiB of JSON is far beyond any sane schema spec

// buildBackend starts the serving backend for a repository: a plain
// Service, or a ShardedService (with the requested partition strategy)
// when more than one shard is requested.
func buildBackend(repo *bellflower.Repository, cfg bellflower.ServiceConfig, shards int, partition bellflower.PartitionStrategy) bellflower.ServiceBackend {
	if shards > 1 {
		return bellflower.NewShardedServicePartitioned(repo, shards, cfg, partition)
	}
	return bellflower.NewService(repo, cfg)
}

func newServer(repo *bellflower.Repository, repoDesc string, svcCfg bellflower.ServiceConfig, shards int, partition bellflower.PartitionStrategy, dataDir string, logger *slog.Logger) *server {
	if logger == nil {
		logger = defaultLogger()
	}
	if shards < 1 {
		shards = 1
	}
	ref := &backendRef{backend: buildBackend(repo, svcCfg, shards, partition), repo: repo, desc: repoDesc}
	ref.refs.Store(1) // the server's own reference
	return &server{
		cur:       ref,
		svcCfg:    svcCfg,
		shards:    shards,
		partition: partition,
		dataDir:   dataDir,
		maxBody:   defaultMaxBody,
		logger:    logger,
		rec:       bellflower.NewTraceRecorder(0, 0, 0),
		start:     time.Now(),
	}
}

// defaultLogger is the daemon's structured JSON log on stderr.
func defaultLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(os.Stderr, nil))
}

// newRemoteServer wraps a prebuilt distributed backend
// (bellflower.NewDistributedService). Repository mutation stays disabled
// (dataDir empty → POST /v1/repository is 403): the shard servers hold
// their own repository copies, and swapping only the router's copy would
// desynchronize the partition descriptors.
func newRemoteServer(backend bellflower.ServiceBackend, repo *bellflower.Repository, desc string, logger *slog.Logger) *server {
	if logger == nil {
		logger = defaultLogger()
	}
	ref := &backendRef{backend: backend, repo: repo, desc: desc}
	ref.refs.Store(1)
	return &server{
		cur: ref, maxBody: defaultMaxBody, logger: logger,
		rec: bellflower.NewTraceRecorder(0, 0, 0), start: time.Now(),
	}
}

// setTracing overrides the default trace ring and slow-log threshold (flag
// wiring; not safe once traffic is flowing).
func (s *server) setTracing(rec *bellflower.TraceRecorder, slow time.Duration) {
	if rec != nil {
		s.rec = rec
	}
	s.slow = slow
}

// setMaxBody overrides the request-body cap (-max-body-bytes flag wiring;
// 0 keeps the default; not safe once traffic is flowing).
func (s *server) setMaxBody(n int64) {
	if n > 0 {
		s.maxBody = n
	}
}

// acquire returns the current generation with one reference added; callers
// must release it when the request is done.
func (s *server) acquire() *backendRef {
	s.mu.Lock()
	ref := s.cur
	ref.refs.Add(1)
	s.mu.Unlock()
	return ref
}

// swap installs a new generation and surrenders the server's reference to
// the old one: the old backend drains — it closes when its last in-flight
// request releases it, cancelling nothing. The old generation is tracked
// until it has drained so closeNow can still reach it.
func (s *server) swap(repo *bellflower.Repository, desc string) {
	ref := &backendRef{backend: buildBackend(repo, s.svcCfg, s.shards, s.partition), repo: repo, desc: desc}
	ref.refs.Store(1)
	s.mu.Lock()
	old := s.cur
	s.cur = ref
	kept := s.retired[:0]
	for _, r := range s.retired {
		if r.refs.Load() > 0 { // prune generations that finished draining
			kept = append(kept, r)
		}
	}
	s.retired = append(kept, old)
	s.mu.Unlock()
	old.release()
}

// closeNow force-closes the current backend and any swapped-out
// generations still draining, cancelling their in-flight requests — the
// process-shutdown path, where failing fast beats draining slowly.
func (s *server) closeNow() {
	s.mu.Lock()
	refs := append([]*backendRef{s.cur}, s.retired...)
	s.mu.Unlock()
	for _, r := range refs {
		r.backend.Close() // idempotent; drained generations are no-ops
	}
}

// numShards reports the actual (clamped) shard count of the current
// backend.
func (s *server) numShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.backend.NumShards()
}

// resolveDataPath confines a client-supplied repository path to the data
// directory: clients never touch the filesystem outside it, and the
// actions are off entirely unless the operator opted in with -data-dir.
func (s *server) resolveDataPath(p string) (string, int, error) {
	if s.dataDir == "" {
		return "", http.StatusForbidden, errors.New("repository load/save disabled; start the server with -data-dir")
	}
	if p == "" || !filepath.IsLocal(p) {
		return "", http.StatusBadRequest, fmt.Errorf("path %q must be relative and stay inside the data directory", p)
	}
	return filepath.Join(s.dataDir, p), 0, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/match", s.handleMatch)
	mux.HandleFunc("/v1/match/batch", s.handleMatchBatch)
	mux.HandleFunc("/v1/rewrite", s.handleRewrite)
	mux.HandleFunc("/v1/repository", s.handleRepository)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/traces", s.handleTraces)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return logRequests(s.logger, mux)
}

// shardRoutes is the -shard-of mode's surface: the shard wire protocol
// (match + stats), liveness, and the shard service's own Prometheus
// metrics. The public matching endpoints are deliberately absent — a shard
// server answers its router, not end clients — but the shard keeps its own
// /v1/traces ring (rec; nil disables it) so a slow shard can be inspected
// directly.
func shardRoutes(host *bellflower.ShardHost, rec *bellflower.TraceRecorder, logger *slog.Logger) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "mode": "shard"})
	})
	mux.HandleFunc("/v1/shard/match", host.HandleMatch)
	mux.HandleFunc("/v1/shard/stats", host.HandleStats)
	mux.HandleFunc("/v1/traces", func(w http.ResponseWriter, r *http.Request) {
		writeTraces(w, r, rec)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The host's own snapshot, not the bare service's: the wire-byte and
		// projection-cache counters live on the shard server.
		if err := host.WritePrometheus(w); err != nil {
			logger.Error("metrics write failed", "error", err)
		}
	})
	return logRequests(logger, mux)
}

// debugRoutes is the -debug-addr listener's surface: the net/http/pprof
// profiling handlers plus expvar at /debug/vars, on a mux of their own so
// the public listener never exposes them.
func debugRoutes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", float64(time.Since(start))/float64(time.Millisecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// --- JSON wire types ---

// matchOptionsJSON selects pipeline options over the wire; absent fields
// keep the library defaults (DefaultOptions).
type matchOptionsJSON struct {
	Delta           *float64 `json:"delta,omitempty"`
	Alpha           *float64 `json:"alpha,omitempty"`
	K               *float64 `json:"k,omitempty"`
	MinSim          *float64 `json:"min_sim,omitempty"`
	TopN            int      `json:"top_n,omitempty"`
	Variant         string   `json:"variant,omitempty"` // small|medium|large|tree
	Matcher         string   `json:"matcher,omitempty"` // name|token|synonym|type
	Structure       string   `json:"structure,omitempty"`
	StructureWeight float64  `json:"structure_weight,omitempty"`
	Parallelism     int      `json:"parallelism,omitempty"`
	Agglomerative   bool     `json:"agglomerative,omitempty"`
	AdaptiveTopN    bool     `json:"adaptive_top_n,omitempty"`
	OrderClusters   bool     `json:"order_clusters,omitempty"`
	IncludePartials bool     `json:"include_partials,omitempty"`
	TimeoutMS       int      `json:"timeout_ms,omitempty"`
}

func (o *matchOptionsJSON) build() (bellflower.Options, error) {
	opts := bellflower.DefaultOptions()
	if o == nil {
		return opts, nil
	}
	if o.Delta != nil {
		opts.Threshold = *o.Delta
	}
	if o.Alpha != nil {
		opts.Objective.Alpha = *o.Alpha
	}
	if o.K != nil {
		opts.Objective.K = *o.K
	}
	if o.MinSim != nil {
		opts.MinSim = *o.MinSim
	}
	opts.TopN = o.TopN
	opts.Parallelism = o.Parallelism
	opts.Agglomerative = o.Agglomerative
	opts.AdaptiveTopN = o.AdaptiveTopN
	opts.OrderClusters = o.OrderClusters
	opts.IncludePartials = o.IncludePartials
	switch o.Variant {
	case "", "medium":
		opts.Variant = bellflower.VariantMedium
	case "small":
		opts.Variant = bellflower.VariantSmall
	case "large":
		opts.Variant = bellflower.VariantLarge
	case "tree":
		opts.Variant = bellflower.VariantTree
	default:
		return opts, fmt.Errorf("unknown variant %q (want small|medium|large|tree)", o.Variant)
	}
	switch o.Matcher {
	case "", "name":
	case "token":
		opts.Matcher = bellflower.NewNameMatcher(true)
	case "synonym":
		opts.Matcher = bellflower.NewSynonymMatcher()
	case "type":
		opts.Matcher = bellflower.NewTypeMatcher()
	default:
		return opts, fmt.Errorf("unknown matcher %q (want name|token|synonym|type)", o.Matcher)
	}
	if o.Structure != "" {
		sm, err := bellflower.NewStructureMatcher(o.Structure)
		if err != nil {
			return opts, err
		}
		opts.StructureMatcher = sm
		opts.StructureWeight = o.StructureWeight
	}
	// Validate here so malformed parameters are 400s, not pipeline 500s.
	if err := opts.Objective.Validate(); err != nil {
		return opts, err
	}
	if opts.Threshold < 0 || opts.Threshold > 1 {
		return opts, fmt.Errorf("threshold (delta) %v outside [0,1]", opts.Threshold)
	}
	if opts.MinSim < 0 || opts.MinSim > 1 {
		return opts, fmt.Errorf("min_sim %v outside [0,1]", opts.MinSim)
	}
	return opts, nil
}

// timeout returns the per-request deadline, 0 when unset.
func (o *matchOptionsJSON) timeout() time.Duration {
	if o == nil || o.TimeoutMS <= 0 {
		return 0
	}
	return time.Duration(o.TimeoutMS) * time.Millisecond
}

type matchRequestJSON struct {
	Personal string            `json:"personal"`
	Options  *matchOptionsJSON `json:"options,omitempty"`
}

type pairJSON struct {
	Personal   string `json:"personal"`
	Repository string `json:"repository"`
}

type mappingJSON struct {
	Delta   float64    `json:"delta"`
	Sim     float64    `json:"sim"`
	Path    float64    `json:"path"`
	Cluster int        `json:"cluster"`
	Pairs   []pairJSON `json:"pairs"`
}

type pipelineStatsJSON struct {
	Variant         string  `json:"variant"`
	MappingElements int     `json:"mapping_elements"`
	Clusters        int     `json:"clusters"`
	UsefulClusters  int     `json:"useful_clusters"`
	SearchSpace     float64 `json:"search_space"`
	PartialMappings int64   `json:"partial_mappings_generated"`
	MatchMS         float64 `json:"match_ms"`
	ClusterMS       float64 `json:"cluster_ms"`
	GenMS           float64 `json:"gen_ms"`
}

type matchResponseJSON struct {
	Mappings []mappingJSON     `json:"mappings"`
	Partials int               `json:"partials,omitempty"`
	Pipeline pipelineStatsJSON `json:"pipeline"`

	// Incomplete marks a partial-results merge (-partial): one or more
	// shards failed and the mappings cover only the shards that
	// succeeded; ShardErrors says which failed and why. The element type
	// carries its own wire tags ({"shard":N,"error":"..."}).
	Incomplete  bool                    `json:"incomplete,omitempty"`
	ShardErrors []bellflower.ShardError `json:"shard_errors,omitempty"`

	// Trace is the request's span tree, present only under ?trace=1. A
	// distributed fan-out returns ONE stitched tree: the router's
	// prepass/fanout/merge spans with each shard's decode/match/encode
	// spans grafted beneath the RPC round trips.
	Trace *bellflower.TraceSummary `json:"trace,omitempty"`
}

func renderReport(personal *bellflower.Tree, rep *bellflower.Report) matchResponseJSON {
	resp := matchResponseJSON{
		Mappings:   make([]mappingJSON, 0, len(rep.Mappings)),
		Partials:   len(rep.Partials),
		Incomplete: rep.Incomplete,
		Pipeline: pipelineStatsJSON{
			Variant:         rep.Variant.String(),
			MappingElements: rep.MappingElements,
			Clusters:        rep.Clusters,
			UsefulClusters:  rep.UsefulClusters,
			SearchSpace:     rep.Counters.SearchSpace,
			PartialMappings: rep.Counters.PartialMappings,
			MatchMS:         float64(rep.MatchTime) / float64(time.Millisecond),
			ClusterMS:       float64(rep.ClusterTime) / float64(time.Millisecond),
			GenMS:           float64(rep.GenTime) / float64(time.Millisecond),
		},
	}
	resp.ShardErrors = rep.ShardErrors
	nodes := personal.Nodes()
	for _, m := range rep.Mappings {
		mj := mappingJSON{
			Delta:   m.Score.Delta,
			Sim:     m.Score.Sim,
			Path:    m.Score.Path,
			Cluster: m.ClusterID,
			Pairs:   make([]pairJSON, 0, len(m.Images)),
		}
		for i, img := range m.Images {
			mj.Pairs = append(mj.Pairs, pairJSON{
				Personal:   nodes[i].PathString(),
				Repository: img.PathString(),
			})
		}
		resp.Mappings = append(resp.Mappings, mj)
	}
	return resp
}

type errorJSON struct {
	Error string `json:"error"`
}

// --- handlers ---

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		// An oversized body is the client exceeding -max-body-bytes, not a
		// malformed one: answer 413 so the client can tell the difference.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorJSON{Error: fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// matchStatus maps a service error to an HTTP status. The shard wire
// protocol keeps an equivalent mapping (internal/shardrpc: matchStatus +
// RemoteShard.statusError); a new error class added here should be
// mirrored there so it survives the router→shard hop instead of
// degrading to a generic 500.
func matchStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout // 504: the per-request deadline expired
	case errors.Is(err, bellflower.ErrSchemaTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, bellflower.ErrServiceClosed), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// runMatch parses one wire request and serves it through svc. Handlers
// acquire the current generation once per request and pass its backend
// down, so a concurrent repository swap cannot mix state from two
// generations within one request.
func (s *server) runMatch(ctx context.Context, svc bellflower.ServiceBackend, req matchRequestJSON) (*bellflower.Tree, *bellflower.Report, int, error) {
	personal, err := bellflower.ParseSchema(req.Personal)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	opts, err := req.Options.build()
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	if d := req.Options.timeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	rep, err := svc.Match(ctx, personal, opts)
	if err != nil {
		return nil, nil, matchStatus(err), err
	}
	return personal, rep, http.StatusOK, nil
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "POST required"})
		return
	}
	var req matchRequestJSON
	if !s.decode(w, r, &req) {
		return
	}
	ref := s.acquire()
	defer ref.release()
	ctx, tr, root := bellflower.StartRequestTrace(r.Context(), "serve.match")
	personal, rep, status, err := s.runMatch(ctx, ref.backend, req)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	sum := s.finishTrace(tr, root)
	if err != nil {
		writeJSON(w, status, errorJSON{Error: err.Error()})
		return
	}
	resp := renderReport(personal, rep)
	if wantTrace(r) && sum.Tree != nil {
		resp.Trace = &sum
	}
	writeJSON(w, status, resp)
}

// wantTrace reports whether the client asked for the inline span tree.
func wantTrace(r *http.Request) bool { return r.URL.Query().Get("trace") == "1" }

// finishTrace ends the request's root span, feeds the trace ring, and logs
// a full span breakdown when the request crossed the -slow-ms threshold.
func (s *server) finishTrace(tr *bellflower.RequestTrace, root *bellflower.TraceSpan) bellflower.TraceSummary {
	root.End()
	sum := s.rec.Observe(tr)
	if s.slow > 0 && sum.DurationMS >= float64(s.slow)/float64(time.Millisecond) {
		s.logger.Warn("slow request",
			"trace_id", sum.TraceID,
			"root", sum.Root,
			"dur_ms", sum.DurationMS,
			"spans", sum.Spans,
			"tree", sum.Tree)
	}
	return sum
}

type batchRequestJSON struct {
	Requests []matchRequestJSON `json:"requests"`
}

type batchEntryJSON struct {
	Result *matchResponseJSON `json:"result,omitempty"`
	Error  string             `json:"error,omitempty"`
	Status int                `json:"status"`
}

func (s *server) handleMatchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "POST required"})
		return
	}
	var req batchRequestJSON
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "empty batch"})
		return
	}
	// Cap the per-request fan-out: the body limit alone still admits tens
	// of thousands of tiny entries, each pinning a goroutine and a parsed
	// schema behind the bounded worker pool.
	const maxBatchEntries = 256
	if len(req.Requests) > maxBatchEntries {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorJSON{Error: fmt.Sprintf("batch of %d entries exceeds limit %d", len(req.Requests), maxBatchEntries)})
		return
	}
	// Entries run concurrently through the service, which bounds actual
	// pipeline concurrency by its worker pool and deduplicates identical
	// entries; per-entry failures don't fail the batch.
	entries := make([]batchEntryJSON, len(req.Requests))
	ref := s.acquire() // one generation for the whole batch
	defer ref.release()
	svc := ref.backend
	// One trace spans the whole batch: every entry's spans record into it
	// concurrently, so the tree shows the fan-out's real overlap.
	ctx, tr, root := bellflower.StartRequestTrace(r.Context(), "serve.batch")
	var wg sync.WaitGroup
	wg.Add(len(req.Requests))
	for i, mr := range req.Requests {
		go func(i int, mr matchRequestJSON) {
			defer wg.Done()
			ectx, esp := bellflower.StartTraceSpan(ctx, "batch.entry")
			personal, rep, status, err := s.runMatch(ectx, svc, mr)
			entries[i].Status = status
			if err != nil {
				esp.SetAttr("error", err.Error())
			}
			esp.End()
			if err != nil {
				entries[i].Error = err.Error()
				return
			}
			resp := renderReport(personal, rep)
			entries[i].Result = &resp
		}(i, mr)
	}
	wg.Wait()
	sum := s.finishTrace(tr, root)
	out := map[string]any{"results": entries}
	if wantTrace(r) {
		out["trace"] = sum
	}
	writeJSON(w, http.StatusOK, out)
}

type rewriteRequestJSON struct {
	Personal    string            `json:"personal"`
	Query       string            `json:"query"`
	MappingRank int               `json:"mapping_rank,omitempty"` // 0 = best mapping
	Options     *matchOptionsJSON `json:"options,omitempty"`
}

func (s *server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "POST required"})
		return
	}
	var req rewriteRequestJSON
	if !s.decode(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "query is required"})
		return
	}
	// The mapping's nodes must be rewritten by the same generation's index.
	ref := s.acquire()
	defer ref.release()
	svc := ref.backend
	personal, rep, status, err := s.runMatch(r.Context(), svc, matchRequestJSON{Personal: req.Personal, Options: req.Options})
	if err != nil {
		writeJSON(w, status, errorJSON{Error: err.Error()})
		return
	}
	if req.MappingRank < 0 || req.MappingRank >= len(rep.Mappings) {
		writeJSON(w, http.StatusNotFound, errorJSON{
			Error: fmt.Sprintf("mapping rank %d not available (%d mappings found)", req.MappingRank, len(rep.Mappings)),
		})
		return
	}
	mp := rep.Mappings[req.MappingRank]
	rewritten, err := svc.RewriteQuery(req.Query, personal, mp)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":        req.Query,
		"rewritten":    rewritten,
		"mapping_rank": req.MappingRank,
		"delta":        mp.Score.Delta,
	})
}

type repositoryRequestJSON struct {
	Action string `json:"action"` // synthetic|load|save
	Nodes  int    `json:"nodes,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Path   string `json:"path,omitempty"`
}

func (s *server) repositoryInfo() map[string]any {
	ref := s.acquire()
	defer ref.release()
	st := ref.backend.RepositoryStats()
	return map[string]any{
		"source": ref.desc,
		"trees":  st.Trees,
		"nodes":  st.Nodes,
		"shards": ref.backend.NumShards(),
	}
}

func (s *server) handleRepository(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.repositoryInfo())
	case http.MethodPost:
		// Every mutating action needs the -data-dir opt-in: without it,
		// any client could silently replace the served repository (or
		// force an enormous index build) with one unauthenticated POST.
		if s.dataDir == "" {
			writeJSON(w, http.StatusForbidden, errorJSON{Error: "repository mutation disabled; start the server with -data-dir"})
			return
		}
		var req repositoryRequestJSON
		if !s.decode(w, r, &req) {
			return
		}
		switch req.Action {
		case "synthetic":
			const maxSyntheticNodes = 1_000_000
			if req.Nodes < 0 || req.Nodes > maxSyntheticNodes {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("nodes %d outside [0,%d]", req.Nodes, maxSyntheticNodes)})
				return
			}
			cfg := bellflower.DefaultSyntheticConfig()
			if req.Nodes > 0 {
				cfg.TargetNodes = req.Nodes
			}
			cfg.Seed = req.Seed
			repo, err := bellflower.Synthetic(cfg)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
				return
			}
			s.swap(repo, fmt.Sprintf("synthetic(%d,seed=%d)", cfg.TargetNodes, cfg.Seed))
		case "load":
			path, status, err := s.resolveDataPath(req.Path)
			if err != nil {
				writeJSON(w, status, errorJSON{Error: err.Error()})
				return
			}
			f, err := os.Open(path)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
				return
			}
			repo, err := bellflower.LoadRepository(f)
			f.Close()
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
				return
			}
			s.swap(repo, req.Path)
		case "save":
			path, status, err := s.resolveDataPath(req.Path)
			if err != nil {
				writeJSON(w, status, errorJSON{Error: err.Error()})
				return
			}
			f, err := os.Create(path)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
				return
			}
			// Save the original repository the backend was built from — shard
			// repositories hold clones in partition order, not the input.
			ref := s.acquire()
			err = bellflower.SaveRepository(f, ref.repo)
			ref.release()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
				return
			}
		default:
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("unknown action %q (want synthetic|load|save)", req.Action)})
			return
		}
		writeJSON(w, http.StatusOK, s.repositoryInfo())
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "GET or POST required"})
	}
}

// buildInfoJSON is the /v1/stats build block: enough provenance to tell
// WHICH binary produced a stats snapshot.
type buildInfoJSON struct {
	GoVersion   string `json:"go_version"`
	Path        string `json:"path,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// readBuildInfo extracts the build block once; the result never changes
// over the process lifetime.
var readBuildInfo = sync.OnceValue(func() buildInfoJSON {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return buildInfoJSON{}
	}
	out := buildInfoJSON{
		GoVersion: bi.GoVersion,
		Path:      bi.Main.Path,
		Version:   bi.Main.Version,
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			out.VCSRevision = kv.Value
		case "vcs.time":
			out.VCSTime = kv.Value
		case "vcs.modified":
			out.VCSModified = kv.Value == "true"
		}
	}
	return out
})

func (s *server) uptimeSeconds() float64 {
	if s.start.IsZero() {
		return 0
	}
	return time.Since(s.start).Seconds()
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	ref := s.acquire()
	defer ref.release()
	// Single-shard servers keep the flat historical shape (plus the uptime
	// and build keys); sharded servers report the rollup plus the per-shard
	// breakdown. Snapshot takes both together, so the shard-derived fields
	// of total always equal the sum of the shards; router-level work — the
	// candidate pre-pass and above-the-shards rejections — appears only in
	// the total.
	total, shards := ref.backend.Snapshot()
	if ref.backend.NumShards() == 1 {
		writeJSON(w, http.StatusOK, struct {
			bellflower.ServiceStats
			UptimeSeconds float64       `json:"uptime_seconds"`
			Build         buildInfoJSON `json:"build"`
		}{total, s.uptimeSeconds(), readBuildInfo()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":          total,
		"shards":         shards,
		"uptime_seconds": s.uptimeSeconds(),
		"build":          readBuildInfo(),
	})
}

// handleTraces serves GET /v1/traces: the bounded ring of recent trace
// summaries plus the separate slow ring (requests at or above -slow-ms).
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeTraces(w, r, s.rec)
}

func writeTraces(w http.ResponseWriter, r *http.Request, rec *bellflower.TraceRecorder) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "GET required"})
		return
	}
	if rec == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"recent": []bellflower.TraceSummary{},
			"slow":   []bellflower.TraceSummary{},
		})
		return
	}
	recent, slow := rec.Recent(), rec.Slow()
	if recent == nil {
		recent = []bellflower.TraceSummary{}
	}
	if slow == nil {
		slow = []bellflower.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"slow_threshold_ms": float64(rec.Threshold()) / float64(time.Millisecond),
		"recent":            recent,
		"slow":              slow,
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ref := s.acquire()
	defer ref.release()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := bellflower.WritePrometheusMetrics(w, ref.backend); err != nil {
		s.logger.Error("metrics write failed", "error", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
