package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bellflower"
)

// server routes HTTP traffic onto a bellflower.Service. The service is
// held behind a read-write lock so POST /v1/repository can swap in a
// freshly indexed repository while match traffic continues; requests that
// already grabbed the old service finish against it (its workers are shut
// down in the background once the swap happens, which may cancel their
// in-flight runs — callers see 503 and retry against the new repository).
type server struct {
	mu       sync.RWMutex
	svc      *bellflower.Service
	repoDesc string

	svcCfg  bellflower.ServiceConfig
	dataDir string // sandbox for repository load/save; "" disables those actions
	maxBody int64
	logger  *log.Logger
}

const defaultMaxBody = 1 << 20 // 1 MiB of JSON is far beyond any sane schema spec

func newServer(svc *bellflower.Service, repoDesc string, svcCfg bellflower.ServiceConfig, dataDir string, logger *log.Logger) *server {
	if logger == nil {
		logger = log.New(os.Stderr, "bellflower-server: ", log.LstdFlags)
	}
	return &server{
		svc:      svc,
		repoDesc: repoDesc,
		svcCfg:   svcCfg,
		dataDir:  dataDir,
		maxBody:  defaultMaxBody,
		logger:   logger,
	}
}

// resolveDataPath confines a client-supplied repository path to the data
// directory: clients never touch the filesystem outside it, and the
// actions are off entirely unless the operator opted in with -data-dir.
func (s *server) resolveDataPath(p string) (string, int, error) {
	if s.dataDir == "" {
		return "", http.StatusForbidden, errors.New("repository load/save disabled; start the server with -data-dir")
	}
	if p == "" || !filepath.IsLocal(p) {
		return "", http.StatusBadRequest, fmt.Errorf("path %q must be relative and stay inside the data directory", p)
	}
	return filepath.Join(s.dataDir, p), 0, nil
}

func (s *server) service() *bellflower.Service {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.svc
}

// swap installs a new service and retires the old one in the background.
func (s *server) swap(svc *bellflower.Service, desc string) {
	s.mu.Lock()
	old := s.svc
	s.svc, s.repoDesc = svc, desc
	s.mu.Unlock()
	go old.Close()
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/match", s.handleMatch)
	mux.HandleFunc("/v1/match/batch", s.handleMatchBatch)
	mux.HandleFunc("/v1/rewrite", s.handleRewrite)
	mux.HandleFunc("/v1/repository", s.handleRepository)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return s.logRequests(mux)
}

func (s *server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.logger.Printf("%s %s %d %v", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// --- JSON wire types ---

// matchOptionsJSON selects pipeline options over the wire; absent fields
// keep the library defaults (DefaultOptions).
type matchOptionsJSON struct {
	Delta           *float64 `json:"delta,omitempty"`
	Alpha           *float64 `json:"alpha,omitempty"`
	K               *float64 `json:"k,omitempty"`
	MinSim          *float64 `json:"min_sim,omitempty"`
	TopN            int      `json:"top_n,omitempty"`
	Variant         string   `json:"variant,omitempty"` // small|medium|large|tree
	Matcher         string   `json:"matcher,omitempty"` // name|token|synonym|type
	Structure       string   `json:"structure,omitempty"`
	StructureWeight float64  `json:"structure_weight,omitempty"`
	Parallelism     int      `json:"parallelism,omitempty"`
	Agglomerative   bool     `json:"agglomerative,omitempty"`
	AdaptiveTopN    bool     `json:"adaptive_top_n,omitempty"`
	OrderClusters   bool     `json:"order_clusters,omitempty"`
	IncludePartials bool     `json:"include_partials,omitempty"`
	TimeoutMS       int      `json:"timeout_ms,omitempty"`
}

func (o *matchOptionsJSON) build() (bellflower.Options, error) {
	opts := bellflower.DefaultOptions()
	if o == nil {
		return opts, nil
	}
	if o.Delta != nil {
		opts.Threshold = *o.Delta
	}
	if o.Alpha != nil {
		opts.Objective.Alpha = *o.Alpha
	}
	if o.K != nil {
		opts.Objective.K = *o.K
	}
	if o.MinSim != nil {
		opts.MinSim = *o.MinSim
	}
	opts.TopN = o.TopN
	opts.Parallelism = o.Parallelism
	opts.Agglomerative = o.Agglomerative
	opts.AdaptiveTopN = o.AdaptiveTopN
	opts.OrderClusters = o.OrderClusters
	opts.IncludePartials = o.IncludePartials
	switch o.Variant {
	case "", "medium":
		opts.Variant = bellflower.VariantMedium
	case "small":
		opts.Variant = bellflower.VariantSmall
	case "large":
		opts.Variant = bellflower.VariantLarge
	case "tree":
		opts.Variant = bellflower.VariantTree
	default:
		return opts, fmt.Errorf("unknown variant %q (want small|medium|large|tree)", o.Variant)
	}
	switch o.Matcher {
	case "", "name":
	case "token":
		opts.Matcher = bellflower.NewNameMatcher(true)
	case "synonym":
		opts.Matcher = bellflower.NewSynonymMatcher()
	case "type":
		opts.Matcher = bellflower.NewTypeMatcher()
	default:
		return opts, fmt.Errorf("unknown matcher %q (want name|token|synonym|type)", o.Matcher)
	}
	if o.Structure != "" {
		sm, err := bellflower.NewStructureMatcher(o.Structure)
		if err != nil {
			return opts, err
		}
		opts.StructureMatcher = sm
		opts.StructureWeight = o.StructureWeight
	}
	// Validate here so malformed parameters are 400s, not pipeline 500s.
	if err := opts.Objective.Validate(); err != nil {
		return opts, err
	}
	if opts.Threshold < 0 || opts.Threshold > 1 {
		return opts, fmt.Errorf("threshold (delta) %v outside [0,1]", opts.Threshold)
	}
	if opts.MinSim < 0 || opts.MinSim > 1 {
		return opts, fmt.Errorf("min_sim %v outside [0,1]", opts.MinSim)
	}
	return opts, nil
}

// timeout returns the per-request deadline, 0 when unset.
func (o *matchOptionsJSON) timeout() time.Duration {
	if o == nil || o.TimeoutMS <= 0 {
		return 0
	}
	return time.Duration(o.TimeoutMS) * time.Millisecond
}

type matchRequestJSON struct {
	Personal string            `json:"personal"`
	Options  *matchOptionsJSON `json:"options,omitempty"`
}

type pairJSON struct {
	Personal   string `json:"personal"`
	Repository string `json:"repository"`
}

type mappingJSON struct {
	Delta   float64    `json:"delta"`
	Sim     float64    `json:"sim"`
	Path    float64    `json:"path"`
	Cluster int        `json:"cluster"`
	Pairs   []pairJSON `json:"pairs"`
}

type pipelineStatsJSON struct {
	Variant         string  `json:"variant"`
	MappingElements int     `json:"mapping_elements"`
	Clusters        int     `json:"clusters"`
	UsefulClusters  int     `json:"useful_clusters"`
	SearchSpace     float64 `json:"search_space"`
	PartialMappings int64   `json:"partial_mappings_generated"`
	MatchMS         float64 `json:"match_ms"`
	ClusterMS       float64 `json:"cluster_ms"`
	GenMS           float64 `json:"gen_ms"`
}

type matchResponseJSON struct {
	Mappings []mappingJSON     `json:"mappings"`
	Partials int               `json:"partials,omitempty"`
	Pipeline pipelineStatsJSON `json:"pipeline"`
}

func renderReport(personal *bellflower.Tree, rep *bellflower.Report) matchResponseJSON {
	resp := matchResponseJSON{
		Mappings: make([]mappingJSON, 0, len(rep.Mappings)),
		Partials: len(rep.Partials),
		Pipeline: pipelineStatsJSON{
			Variant:         rep.Variant.String(),
			MappingElements: rep.MappingElements,
			Clusters:        rep.Clusters,
			UsefulClusters:  rep.UsefulClusters,
			SearchSpace:     rep.Counters.SearchSpace,
			PartialMappings: rep.Counters.PartialMappings,
			MatchMS:         float64(rep.MatchTime) / float64(time.Millisecond),
			ClusterMS:       float64(rep.ClusterTime) / float64(time.Millisecond),
			GenMS:           float64(rep.GenTime) / float64(time.Millisecond),
		},
	}
	nodes := personal.Nodes()
	for _, m := range rep.Mappings {
		mj := mappingJSON{
			Delta:   m.Score.Delta,
			Sim:     m.Score.Sim,
			Path:    m.Score.Path,
			Cluster: m.ClusterID,
			Pairs:   make([]pairJSON, 0, len(m.Images)),
		}
		for i, img := range m.Images {
			mj.Pairs = append(mj.Pairs, pairJSON{
				Personal:   nodes[i].PathString(),
				Repository: img.PathString(),
			})
		}
		resp.Mappings = append(resp.Mappings, mj)
	}
	return resp
}

type errorJSON struct {
	Error string `json:"error"`
}

// --- handlers ---

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// matchStatus maps a service error to an HTTP status.
func matchStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout // 504: the per-request deadline expired
	case errors.Is(err, bellflower.ErrSchemaTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, bellflower.ErrServiceClosed), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// runMatch parses one wire request and serves it through svc. Handlers
// resolve the service once per request (s.service()) and pass it down, so
// a concurrent repository swap cannot mix state from two services within
// one request.
func (s *server) runMatch(ctx context.Context, svc *bellflower.Service, req matchRequestJSON) (*bellflower.Tree, *bellflower.Report, int, error) {
	personal, err := bellflower.ParseSchema(req.Personal)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	opts, err := req.Options.build()
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	if d := req.Options.timeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	rep, err := svc.Match(ctx, personal, opts)
	if err != nil {
		return nil, nil, matchStatus(err), err
	}
	return personal, rep, http.StatusOK, nil
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "POST required"})
		return
	}
	var req matchRequestJSON
	if !s.decode(w, r, &req) {
		return
	}
	personal, rep, status, err := s.runMatch(r.Context(), s.service(), req)
	if err != nil {
		writeJSON(w, status, errorJSON{Error: err.Error()})
		return
	}
	writeJSON(w, status, renderReport(personal, rep))
}

type batchRequestJSON struct {
	Requests []matchRequestJSON `json:"requests"`
}

type batchEntryJSON struct {
	Result *matchResponseJSON `json:"result,omitempty"`
	Error  string             `json:"error,omitempty"`
	Status int                `json:"status"`
}

func (s *server) handleMatchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "POST required"})
		return
	}
	var req batchRequestJSON
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "empty batch"})
		return
	}
	// Cap the per-request fan-out: the body limit alone still admits tens
	// of thousands of tiny entries, each pinning a goroutine and a parsed
	// schema behind the bounded worker pool.
	const maxBatchEntries = 256
	if len(req.Requests) > maxBatchEntries {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorJSON{Error: fmt.Sprintf("batch of %d entries exceeds limit %d", len(req.Requests), maxBatchEntries)})
		return
	}
	// Entries run concurrently through the service, which bounds actual
	// pipeline concurrency by its worker pool and deduplicates identical
	// entries; per-entry failures don't fail the batch.
	entries := make([]batchEntryJSON, len(req.Requests))
	svc := s.service() // one service for the whole batch
	var wg sync.WaitGroup
	wg.Add(len(req.Requests))
	for i, mr := range req.Requests {
		go func(i int, mr matchRequestJSON) {
			defer wg.Done()
			personal, rep, status, err := s.runMatch(r.Context(), svc, mr)
			entries[i].Status = status
			if err != nil {
				entries[i].Error = err.Error()
				return
			}
			resp := renderReport(personal, rep)
			entries[i].Result = &resp
		}(i, mr)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{"results": entries})
}

type rewriteRequestJSON struct {
	Personal    string            `json:"personal"`
	Query       string            `json:"query"`
	MappingRank int               `json:"mapping_rank,omitempty"` // 0 = best mapping
	Options     *matchOptionsJSON `json:"options,omitempty"`
}

func (s *server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "POST required"})
		return
	}
	var req rewriteRequestJSON
	if !s.decode(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "query is required"})
		return
	}
	svc := s.service() // the mapping's nodes must be rewritten by the same service's index
	personal, rep, status, err := s.runMatch(r.Context(), svc, matchRequestJSON{Personal: req.Personal, Options: req.Options})
	if err != nil {
		writeJSON(w, status, errorJSON{Error: err.Error()})
		return
	}
	if req.MappingRank < 0 || req.MappingRank >= len(rep.Mappings) {
		writeJSON(w, http.StatusNotFound, errorJSON{
			Error: fmt.Sprintf("mapping rank %d not available (%d mappings found)", req.MappingRank, len(rep.Mappings)),
		})
		return
	}
	mp := rep.Mappings[req.MappingRank]
	rewritten, err := svc.RewriteQuery(req.Query, personal, mp)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":        req.Query,
		"rewritten":    rewritten,
		"mapping_rank": req.MappingRank,
		"delta":        mp.Score.Delta,
	})
}

type repositoryRequestJSON struct {
	Action string `json:"action"` // synthetic|load|save
	Nodes  int    `json:"nodes,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Path   string `json:"path,omitempty"`
}

func (s *server) repositoryInfo() map[string]any {
	s.mu.RLock()
	svc, desc := s.svc, s.repoDesc
	s.mu.RUnlock()
	st := svc.Repository().Stats()
	return map[string]any{
		"source": desc,
		"trees":  st.Trees,
		"nodes":  st.Nodes,
	}
}

func (s *server) handleRepository(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.repositoryInfo())
	case http.MethodPost:
		// Every mutating action needs the -data-dir opt-in: without it,
		// any client could silently replace the served repository (or
		// force an enormous index build) with one unauthenticated POST.
		if s.dataDir == "" {
			writeJSON(w, http.StatusForbidden, errorJSON{Error: "repository mutation disabled; start the server with -data-dir"})
			return
		}
		var req repositoryRequestJSON
		if !s.decode(w, r, &req) {
			return
		}
		switch req.Action {
		case "synthetic":
			const maxSyntheticNodes = 1_000_000
			if req.Nodes < 0 || req.Nodes > maxSyntheticNodes {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("nodes %d outside [0,%d]", req.Nodes, maxSyntheticNodes)})
				return
			}
			cfg := bellflower.DefaultSyntheticConfig()
			if req.Nodes > 0 {
				cfg.TargetNodes = req.Nodes
			}
			cfg.Seed = req.Seed
			repo, err := bellflower.Synthetic(cfg)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
				return
			}
			s.swap(bellflower.NewService(repo, s.svcCfg), fmt.Sprintf("synthetic(%d,seed=%d)", cfg.TargetNodes, cfg.Seed))
		case "load":
			path, status, err := s.resolveDataPath(req.Path)
			if err != nil {
				writeJSON(w, status, errorJSON{Error: err.Error()})
				return
			}
			f, err := os.Open(path)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
				return
			}
			repo, err := bellflower.LoadRepository(f)
			f.Close()
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
				return
			}
			s.swap(bellflower.NewService(repo, s.svcCfg), req.Path)
		case "save":
			path, status, err := s.resolveDataPath(req.Path)
			if err != nil {
				writeJSON(w, status, errorJSON{Error: err.Error()})
				return
			}
			f, err := os.Create(path)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
				return
			}
			err = bellflower.SaveRepository(f, s.service().Repository())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
				return
			}
		default:
			writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("unknown action %q (want synthetic|load|save)", req.Action)})
			return
		}
		writeJSON(w, http.StatusOK, s.repositoryInfo())
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorJSON{Error: "GET or POST required"})
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.service().Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
