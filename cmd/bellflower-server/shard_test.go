package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bellflower"
)

func TestParseShardOf(t *testing.T) {
	if idx, n, err := parseShardOf("2/5"); err != nil || idx != 2 || n != 5 {
		t.Errorf("parseShardOf(2/5) = %d,%d,%v", idx, n, err)
	}
	for _, bad := range []string{"", "x", "3", "5/2", "2/2", "-1/2", "1/0", "1/2/4", "0/2x", "x0/2", "0 /2"} {
		if _, _, err := parseShardOf(bad); err == nil {
			t.Errorf("parseShardOf(%q) accepted", bad)
		}
	}
}

func TestSplitShardAddrs(t *testing.T) {
	got, err := splitShardAddrs("a:1, b:2 ,c:3")
	if err != nil || len(got) != 3 || got[1] != "b:2" {
		t.Errorf("splitShardAddrs = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a:1,", ",a:1", "a:1,,b:2", " , "} {
		if _, err := splitShardAddrs(bad); err == nil {
			t.Errorf("splitShardAddrs(%q) accepted an empty entry", bad)
		}
	}
}

// TestShardModeRoutes: the -shard-of surface serves the wire protocol,
// liveness and metrics — and does NOT serve the public matching API.
func TestShardModeRoutes(t *testing.T) {
	repo, err := bellflower.Synthetic(syntheticCfg(600, 3))
	if err != nil {
		t.Fatal(err)
	}
	host, err := bellflower.NewShardHost(repo, 0, 2, bellflower.ServiceConfig{Workers: 1}, bellflower.PartitionClustered)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	srv := httptest.NewServer(shardRoutes(host, nil, slog.New(slog.NewJSONHandler(io.Discard, nil))))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	var hz map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil || hz["mode"] != "shard" {
		t.Errorf("healthz body = %v (%v), want mode=shard", hz, err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/v1/shard/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("shard stats: %v %v", resp, err)
	}
	var st struct {
		Descriptor struct {
			Shard     int `json:"shard"`
			NumShards int `json:"num_shards"`
		} `json:"descriptor"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || st.Descriptor.NumShards != 2 {
		t.Errorf("shard stats descriptor = %+v (%v), want 0/2", st, err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v %v", resp, err)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), "bellflower_requests_total") {
		t.Error("shard /metrics carries no bellflower series")
	}

	// The public API must be absent in shard mode.
	resp, err = http.Post(srv.URL+"/v1/match", "application/json", strings.NewReader(`{"personal":"a(b)"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("public /v1/match in shard mode: %d, want 404", resp.StatusCode)
	}
}

// TestRunFlagValidation: the distributed-role flag combinations that can
// only be misconfigurations are rejected before any listener starts.
func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-synthetic", "100", "-shard-of", "0/2", "-remote-shards", "x:1"},
		{"-synthetic", "100", "-shard-of", "0/2", "-shards", "3"},
		{"-synthetic", "100", "-remote-shards", "x:1", "-shards", "2"},
		{"-synthetic", "100", "-shard-of", "0/2", "-data-dir", t.TempDir()},
		{"-synthetic", "100", "-remote-shards", "x:1", "-data-dir", t.TempDir()},
		{"-synthetic", "100", "-shard-of", "9/2"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted an invalid flag combination", args)
		}
	}
}

func syntheticCfg(nodes int, seed int64) bellflower.SyntheticConfig {
	cfg := bellflower.DefaultSyntheticConfig()
	cfg.TargetNodes = nodes
	cfg.Seed = seed
	return cfg
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
