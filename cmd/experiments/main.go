// Command experiments reproduces the paper's evaluation (Sec. 5): Table 1a
// and 1b, Figure 4, Figure 5 and Figure 6, plus the end-to-end efficiency
// comparison, on a synthetic repository at the paper's scale.
//
//	experiments all
//	experiments table1 -nodes 9759 -seed 1
//	experiments fig5 -delta 0.75
package main

import (
	"flag"
	"fmt"
	"os"

	"bellflower/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		nodes  = fs.Int("nodes", 9759, "synthetic repository size (the paper uses 9759)")
		seed   = fs.Int64("seed", 1, "repository generation seed")
		minSim = fs.Float64("minsim", 0.25, "element matcher candidate threshold")
		delta  = fs.Float64("delta", 0.75, "objective function threshold δ")
		alpha  = fs.Float64("alpha", 0.5, "objective weight α")
		spec   = fs.String("personal", "address(name,email)", "personal schema spec")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: experiments [flags] table1|fig4|fig5|fig6|endtoend|scale|convergence|all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	what := fs.Arg(0)
	if what == "" {
		what = "all"
	}

	setup := experiments.DefaultSetup()
	setup.RepoConfig.TargetNodes = *nodes
	setup.RepoConfig.Seed = *seed
	setup.MinSim = *minSim
	setup.Threshold = *delta
	setup.Alpha = *alpha
	setup.PersonalSpec = *spec

	env, err := experiments.NewEnv(setup)
	if err != nil {
		return err
	}
	st := env.Repo.Stats()
	fmt.Printf("repository: %d trees, %d nodes (seed %d); personal schema: %s; δ=%.2f α=%.2f\n\n",
		st.Trees, st.Nodes, *seed, *spec, *delta, *alpha)

	runOne := func(name string) error {
		switch name {
		case "table1":
			res, err := experiments.RunTable1(env)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig4":
			res, err := experiments.RunFig4(env)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig5":
			res, err := experiments.RunFig5(env)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig6":
			res, err := experiments.RunFig6(env)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "endtoend":
			res, err := experiments.RunEndToEnd(env)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "scale":
			res, err := experiments.RunScale(setup, nil)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "convergence":
			res, err := experiments.RunConvergence(env, nil)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "ordering":
			res, err := experiments.RunOrdering(env)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		default:
			return fmt.Errorf("unknown experiment %q (want table1|fig4|fig5|fig6|endtoend|scale|convergence|all)", name)
		}
		return nil
	}

	if what == "all" {
		for _, name := range []string{"table1", "fig4", "fig5", "fig6", "endtoend", "scale", "convergence", "ordering"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(what)
}
