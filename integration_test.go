package bellflower

// Integration tests exercising full cross-module workflows through the
// public API: ingest (XSD/DTD/instance) → persist → load → match →
// rewrite, plus consistency checks between the clustering variants and
// the search algorithms at a realistic scale.

import (
	"bytes"
	"strings"
	"testing"

	"bellflower/internal/mapgen"
)

// TestFullWorkflow walks the complete personal-schema-querying pipeline:
// a repository assembled from all three ingestion paths is saved, loaded
// back, matched, and the user query is rewritten over the best mapping.
func TestFullWorkflow(t *testing.T) {
	repo := NewRepository()

	xsdTrees, err := ParseXSD(strings.NewReader(`
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="library">
    <xs:complexType><xs:sequence>
      <xs:element name="book">
        <xs:complexType><xs:sequence>
          <xs:element name="authorName" type="xs:string"/>
          <xs:element name="data">
            <xs:complexType><xs:sequence>
              <xs:element name="title" type="xs:string"/>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>`))
	if err != nil {
		t.Fatalf("ParseXSD: %v", err)
	}
	dtdTrees, err := ParseDTD(strings.NewReader(`
<!ELEMENT bookstore (book*)>
<!ELEMENT book (titel, autor)>
<!ELEMENT titel (#PCDATA)>
<!ELEMENT autor (#PCDATA)>`))
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	inferred, err := InferSchema(strings.NewReader(
		`<shop><item><name>Iliad</name><writer>Homer</writer></item></shop>`))
	if err != nil {
		t.Fatalf("InferSchema: %v", err)
	}
	for _, tr := range xsdTrees {
		repo.MustAdd(tr)
	}
	for _, tr := range dtdTrees {
		repo.MustAdd(tr)
	}
	repo.MustAdd(inferred)

	// Persist and reload.
	var buf bytes.Buffer
	if err := SaveRepository(&buf, repo); err != nil {
		t.Fatalf("SaveRepository: %v", err)
	}
	loaded, err := LoadRepository(&buf)
	if err != nil {
		t.Fatalf("LoadRepository: %v", err)
	}
	if loaded.Len() != repo.Len() {
		t.Fatalf("reload lost nodes: %d vs %d", loaded.Len(), repo.Len())
	}

	// Match and rewrite.
	personal := MustParseSchema("book(title,author)")
	opts := DefaultOptions()
	opts.Variant = VariantTree
	opts.Threshold = 0.55
	opts.MinSim = 0.4
	m := NewMatcher(loaded)
	rep, err := m.Match(personal, opts)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	if len(rep.Mappings) < 2 {
		t.Fatalf("want mappings from several trees, got %d", len(rep.Mappings))
	}
	sources := map[int]bool{}
	for _, mp := range rep.Mappings {
		sources[mp.Images[0].Tree().ID] = true
	}
	if len(sources) < 2 {
		t.Errorf("mappings all come from one tree: %v", sources)
	}
	q, err := m.RewriteQuery(`/book[title="Iliad"]/author`, personal, rep.Mappings[0])
	if err != nil {
		t.Fatalf("RewriteQuery: %v", err)
	}
	if !strings.HasPrefix(q, "/") || !strings.Contains(q, "Iliad") {
		t.Errorf("rewritten query = %q", q)
	}
}

// TestVariantConsistencyAtScale cross-checks, at a realistic repository
// size, that every clustering variant returns a subset of the baseline's
// mappings with identical scores, whichever algorithm generated them.
func TestVariantConsistencyAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	cfg := DefaultSyntheticConfig()
	cfg.TargetNodes = 4000
	cfg.Seed = 11
	repo, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(repo)
	personal := MustParseSchema("address(name,email)")

	key := func(mp Mapping) string {
		var b strings.Builder
		for _, img := range mp.Images {
			b.WriteString(img.String())
			b.WriteString("|")
		}
		return b.String()
	}
	base := DefaultOptions()
	base.MinSim = 0.3
	base.Variant = VariantTree
	baseRep, err := m.Match(personal, base)
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[string]float64{}
	for _, mp := range baseRep.Mappings {
		baseline[key(mp)] = mp.Score.Delta
	}

	for _, v := range []Variant{VariantSmall, VariantMedium, VariantLarge} {
		opts := base
		opts.Variant = v
		rep, err := m.Match(personal, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, mp := range rep.Mappings {
			d, ok := baseline[key(mp)]
			if !ok {
				t.Fatalf("%v: mapping not in baseline: %s", v, key(mp))
			}
			if d != mp.Score.Delta {
				t.Fatalf("%v: score drift: %v vs %v", v, mp.Score.Delta, d)
			}
		}
	}

	// Exhaustive agrees with B&B on the baseline.
	ex := base
	ex.Algorithm = mapgen.Exhaustive
	exRep, err := m.Match(personal, ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(exRep.Mappings) != len(baseRep.Mappings) {
		t.Fatalf("exhaustive found %d, B&B %d", len(exRep.Mappings), len(baseRep.Mappings))
	}
}

// TestXSDCorpusRoundTrip exports a synthetic repository as one XSD corpus,
// re-ingests it, and verifies matching is preserved — the full
// export/import cycle a user migrating repositories would run.
func TestXSDCorpusRoundTrip(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.TargetNodes = 800
	cfg.AttributeRate = 0 // XSD reorders attributes before elements; keep structural identity exact
	repo, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One XSD document per schema, as in a harvested corpus of files
	// (several synthetic trees share root names, and XML Schema forbids
	// duplicate top-level elements within one document).
	back := NewRepository()
	for _, src := range repo.Trees() {
		var buf bytes.Buffer
		if err := WriteXSD(&buf, src); err != nil {
			t.Fatalf("WriteXSD: %v", err)
		}
		trees, err := ParseXSD(&buf)
		if err != nil {
			t.Fatalf("ParseXSD(%s): %v", src.Name, err)
		}
		for _, tr := range trees {
			back.MustAdd(tr)
		}
	}
	if back.Len() != repo.Len() {
		t.Fatalf("corpus round trip lost nodes: %d vs %d", back.Len(), repo.Len())
	}
	personal := MustParseSchema("address(name,email)")
	opts := DefaultOptions()
	opts.MinSim = 0.3
	a, err := NewMatcher(repo).Match(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMatcher(back).Match(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Mappings) != len(b.Mappings) {
		t.Fatalf("mappings differ after XSD round trip: %d vs %d",
			len(a.Mappings), len(b.Mappings))
	}
}

// TestRepositoryPersistenceAtScale round-trips a paper-scale synthetic
// repository through the text format and verifies matching equivalence.
func TestRepositoryPersistenceAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	cfg := DefaultSyntheticConfig()
	cfg.TargetNodes = 3000
	repo, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveRepository(&buf, repo); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	personal := MustParseSchema("address(name,email)")
	opts := DefaultOptions()
	opts.MinSim = 0.3
	a, err := NewMatcher(repo).Match(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMatcher(loaded).Match(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Mappings) != len(b.Mappings) {
		t.Fatalf("mapping count differs after persistence: %d vs %d",
			len(a.Mappings), len(b.Mappings))
	}
	for i := range a.Mappings {
		if a.Mappings[i].Score.Delta != b.Mappings[i].Score.Delta {
			t.Fatalf("rank %d score differs", i)
		}
	}
}
