package xmldoc

import (
	"strings"
	"testing"
)

func TestInferSimple(t *testing.T) {
	tr, err := InferString(`
<lib>
  <address>Main St</address>
  <book isbn="1"><title>Iliad</title><author>Homer</author></book>
  <book isbn="2"><title>Odyssey</title><author>Homer</author><year>800</year></book>
</lib>`)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Repeated <book> siblings merge; the second occurrence contributes
	// the extra <year> child.
	if got := tr.String(); got != "lib(address,book(isbn@,title,author,year))" {
		t.Errorf("tree = %q", got)
	}
}

func TestInferAttributesMergedOnce(t *testing.T) {
	tr, err := InferString(`<r><e a="1" b="2"/><e a="3" c="4"/></r>`)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if got := tr.String(); got != "r(e(a@,b@,c@))" {
		t.Errorf("tree = %q", got)
	}
}

func TestInferNamespaceDeclarationsSkipped(t *testing.T) {
	tr, err := InferString(`<r xmlns="http://x" xmlns:p="http://y"><p:e p:a="1"/></r>`)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if got := tr.String(); got != "r(e(a@))" {
		t.Errorf("tree = %q", got)
	}
}

func TestInferDeepMerge(t *testing.T) {
	tr, err := InferString(`
<orders>
  <order><item><sku>a</sku></item></order>
  <order><item><sku>b</sku><qty>2</qty></item><total>9</total></order>
</orders>`)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if got := tr.String(); got != "orders(order(item(sku,qty),total))" {
		t.Errorf("tree = %q", got)
	}
}

func TestInferErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      ``,
		"no element": `<!-- only a comment -->`,
		"malformed":  `<a><b></a>`,
		"two roots":  `<a/><b/>`,
	}
	for name, src := range cases {
		if _, err := InferString(src); err == nil {
			t.Errorf("%s: error expected", name)
		}
	}
}

func TestInferDepthBound(t *testing.T) {
	var b strings.Builder
	for i := 0; i < MaxDepth+2; i++ {
		b.WriteString("<e>")
	}
	for i := 0; i < MaxDepth+2; i++ {
		b.WriteString("</e>")
	}
	if _, err := InferString(b.String()); err == nil {
		t.Errorf("over-deep document accepted")
	}
}

func TestInferredTreeIsMatchable(t *testing.T) {
	// End-to-end sanity: an inferred tree should slot into a repository.
	tr, err := InferString(`<contact><name>x</name><email>y</email></contact>`)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if tr.Len() != 3 || tr.Root().Name != "contact" {
		t.Errorf("tree = %q", tr.String())
	}
	if tr.Name != "inferred:contact" {
		t.Errorf("tree label = %q", tr.Name)
	}
}
