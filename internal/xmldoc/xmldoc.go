// Package xmldoc infers a schema tree from an XML instance document.
//
// Schema matching systems exploit "external data sources such as data
// instances" (Sec. 1 of the paper); for repositories harvested from the
// web, many sources publish documents but no schema. Inference merges
// repeated sibling elements by name — <book/><book/> under <lib/> becomes
// one book child — so the result is a schema tree (element declarations),
// not a document tree.
package xmldoc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"bellflower/internal/schema"
)

// MaxDepth bounds the inferred tree depth; documents nesting deeper are
// rejected (schema trees are non-recursive, and a document this deep is
// almost certainly exercising a recursive schema).
const MaxDepth = 64

// Infer reads one XML document and returns the inferred schema tree.
func Infer(r io.Reader) (*schema.Tree, error) {
	dec := xml.NewDecoder(r)
	var root *inferred
	var stack []*inferred
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) >= MaxDepth {
				return nil, fmt.Errorf("xmldoc: document deeper than %d", MaxDepth)
			}
			name := t.Name.Local
			var node *inferred
			if len(stack) == 0 {
				if root == nil {
					root = newInferred(name)
				} else if root.name != name {
					return nil, fmt.Errorf("xmldoc: multiple document roots %q and %q", root.name, name)
				}
				node = root
			} else {
				node = stack[len(stack)-1].child(name)
			}
			for _, a := range t.Attr {
				if strings.HasPrefix(a.Name.Space, "xmlns") || a.Name.Local == "xmlns" || a.Name.Space == "xmlns" {
					continue // namespace declarations are not schema attributes
				}
				node.addAttr(a.Name.Local)
			}
			stack = append(stack, node)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldoc: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmldoc: document has no elements")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmldoc: unclosed elements at EOF")
	}
	b := schema.NewBuilder("inferred:" + root.name)
	build(b, nil, root)
	return b.Tree()
}

// InferString is Infer over a string, for tests and fixtures.
func InferString(s string) (*schema.Tree, error) {
	return Infer(strings.NewReader(s))
}

// inferred is a merged element declaration under construction.
type inferred struct {
	name      string
	attrs     []string
	attrSet   map[string]bool
	children  []*inferred
	childByNm map[string]*inferred
}

func newInferred(name string) *inferred {
	return &inferred{
		name:      name,
		attrSet:   map[string]bool{},
		childByNm: map[string]*inferred{},
	}
}

// child returns the merged child declaration with the given name,
// creating it on first sight.
func (n *inferred) child(name string) *inferred {
	if c, ok := n.childByNm[name]; ok {
		return c
	}
	c := newInferred(name)
	n.childByNm[name] = c
	n.children = append(n.children, c)
	return c
}

func (n *inferred) addAttr(name string) {
	if n.attrSet[name] {
		return
	}
	n.attrSet[name] = true
	n.attrs = append(n.attrs, name)
}

func build(b *schema.Builder, parent *schema.Node, in *inferred) {
	var node *schema.Node
	if parent == nil {
		node = b.Root(in.name)
	} else {
		node = b.Element(parent, in.name)
	}
	for _, a := range in.attrs {
		b.Attribute(node, a)
	}
	for _, c := range in.children {
		build(b, node, c)
	}
}
