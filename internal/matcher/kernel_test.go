package matcher

import (
	"fmt"
	"math/rand"
	"testing"

	"bellflower/internal/schema"
	"bellflower/internal/strsim"
)

var kernelVocab = []string{
	"author", "authorName", "name_of_author", "writer", "title", "bookTitle",
	"isbn", "ISBN_13", "price", "priceAmount", "year", "publicationYear",
	"publisher", "address", "zip.code", "e-mail", "phone", "café", "Título",
	"person", "contact", "XMLName", "shelf", "label", "x", "",
}

var kernelTypes = []string{"", "string", "int", "integer", "decimal", "date", "boolean", "token", "weird"}

// randomKernelRepo builds a repository with a duplication-heavy vocabulary:
// names and types repeat across trees, exactly the shape vocabulary dedup
// exploits.
func randomKernelRepo(rng *rand.Rand, trees, meanSize int) *schema.Repository {
	repo := schema.NewRepository()
	pick := func() string { return kernelVocab[rng.Intn(len(kernelVocab))] }
	pickType := func() string { return kernelTypes[rng.Intn(len(kernelTypes))] }
	for t := 0; t < trees; t++ {
		b := schema.NewBuilder(fmt.Sprintf("tree-%d", t))
		root := b.Root("root" + pick())
		nodes := []*schema.Node{root}
		size := 1 + rng.Intn(2*meanSize)
		for i := 0; i < size; i++ {
			parent := nodes[rng.Intn(len(nodes))]
			if rng.Intn(4) == 0 {
				b.TypedAttribute(parent, pick(), pickType())
			} else {
				// Only elements may parent further nodes.
				nodes = append(nodes, b.TypedElement(parent, pick(), pickType()))
			}
		}
		repo.MustAdd(b.MustTree())
	}
	return repo
}

func randomKernelPersonal(rng *rand.Rand, size int) *schema.Tree {
	b := schema.NewBuilder("personal")
	root := b.Root(kernelVocab[rng.Intn(len(kernelVocab))] + "Root")
	nodes := []*schema.Node{root}
	for i := 1; i < size; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		n := b.TypedElement(parent, kernelVocab[rng.Intn(len(kernelVocab))], kernelTypes[rng.Intn(len(kernelTypes))])
		nodes = append(nodes, n)
	}
	return b.MustTree()
}

// kernelMatchers returns the matcher configurations the equivalence property
// runs over: every built-in metric, token awareness, synonym, datatype and
// weighted combinations.
func kernelMatchers() map[string]Matcher {
	return map[string]Matcher{
		"fuzzy":       NameMatcher{},
		"token-aware": NameMatcher{TokenAware: true},
		"jaro":        NameMatcher{Metric: strsim.MetricJaroWinkler},
		"trigram":     NameMatcher{Metric: strsim.MetricTrigramJaccard},
		"bigram":      NameMatcher{Metric: strsim.MetricBigramCosine},
		"synonym":     DefaultSynonyms(),
		"datatype":    TypeMatcher{},
		"combined": NewCombined(
			Weighted{Matcher: NameMatcher{TokenAware: true}, Weight: 0.6},
			Weighted{Matcher: DefaultSynonyms(), Weight: 0.25},
			Weighted{Matcher: TypeMatcher{}, Weight: 0.15},
		),
	}
}

// assertSameCandidates requires got to be bit-identical to want: same
// personal nodes, same candidate nodes in the same order, and bitwise-equal
// similarity scores.
func assertSameCandidates(t *testing.T, label string, got, want *Candidates) {
	t.Helper()
	if len(got.Sets) != len(want.Sets) {
		t.Fatalf("%s: %d sets, want %d", label, len(got.Sets), len(want.Sets))
	}
	for i := range want.Sets {
		g, w := &got.Sets[i], &want.Sets[i]
		if g.Personal != w.Personal {
			t.Fatalf("%s: set %d bound to wrong personal node", label, i)
		}
		if len(g.Elems) != len(w.Elems) {
			t.Fatalf("%s: set %d has %d candidates, want %d", label, i, len(g.Elems), len(w.Elems))
		}
		for j := range w.Elems {
			if g.Elems[j].Node != w.Elems[j].Node {
				t.Fatalf("%s: set %d elem %d is node %d, want node %d",
					label, i, j, g.Elems[j].Node.ID, w.Elems[j].Node.ID)
			}
			if g.Elems[j].Sim != w.Elems[j].Sim {
				t.Fatalf("%s: set %d elem %d sim %v, want %v (node %d)",
					label, i, j, g.Elems[j].Sim, w.Elems[j].Sim, w.Elems[j].Node.ID)
			}
		}
	}
}

// TestKernelEquivalenceProperty pins the keyed kernel score- and
// order-identical to the naive reference across randomized repositories,
// every matcher family, and the MinSim × MaxPerNode grid.
func TestKernelEquivalenceProperty(t *testing.T) {
	matchers := kernelMatchers()
	minSims := []float64{0, 0.3, 0.45, 0.7}
	maxPerNode := []int{0, 1, 3, 17}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		repo := randomKernelRepo(rng, 2+rng.Intn(6), 12)
		ni := NewNameIndex(repo)
		vocab := ni.Vocabulary(repo.Nodes())
		personal := randomKernelPersonal(rng, 2+rng.Intn(10))
		for name, m := range matchers {
			for _, ms := range minSims {
				for _, k := range maxPerNode {
					cfg := Config{MinSim: ms, MaxPerNode: k}
					want := FindCandidatesAmong(personal, repo.Nodes(), m, cfg)
					got := vocab.FindCandidates(personal, m, cfg)
					label := fmt.Sprintf("seed %d %s minSim=%v maxPerNode=%d", seed, name, ms, k)
					assertSameCandidates(t, label, got, want)
				}
			}
		}
	}
}

// TestKernelEquivalenceParallel forces the parallel worker path (personal ×
// vocab above the threshold) and checks it stays identical to the naive
// kernel.
func TestKernelEquivalenceParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Unique names defeat dedup, so |vocab| is large enough that
	// personal × vocab crosses the parallel threshold.
	repo := schema.NewRepository()
	for tr := 0; tr < 4; tr++ {
		b := schema.NewBuilder(fmt.Sprintf("tree-%d", tr))
		root := b.Root(fmt.Sprintf("root%d", tr))
		for i := 0; i < 150; i++ {
			b.TypedElement(root, fmt.Sprintf("%s%dq%d", kernelVocab[rng.Intn(len(kernelVocab))], tr, i),
				kernelTypes[rng.Intn(len(kernelTypes))])
		}
		repo.MustAdd(b.MustTree())
	}
	ni := NewNameIndex(repo)
	vocab := ni.Vocabulary(repo.Nodes())
	if ni.Keys() < 500 {
		t.Fatalf("expected a large vocabulary, got %d keys", ni.Keys())
	}
	personal := randomKernelPersonal(rng, 16)
	if personal.Len()*vocab.Keys() < parallelThreshold {
		t.Fatalf("test repo too small to exercise the parallel path")
	}
	for _, m := range []Matcher{NameMatcher{}, NameMatcher{TokenAware: true}} {
		cfg := Config{MinSim: 0.45}
		want := FindCandidatesAmong(personal, repo.Nodes(), m, cfg)
		got := vocab.FindCandidates(personal, m, cfg)
		assertSameCandidates(t, "parallel "+m.Name(), got, want)
	}
}

// TestKernelFallbacks checks that non-local matchers and foreign universes
// take the naive path and are counted.
func TestKernelFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	repo := randomKernelRepo(rng, 3, 10)
	ni := NewNameIndex(repo)
	vocab := ni.Vocabulary(repo.Nodes())
	personal := randomKernelPersonal(rng, 4)
	cfg := Config{MinSim: 0.45}

	// Structure matchers read tree context: must fall back, results equal.
	sm := &PathContextMatcher{}
	want := FindCandidatesAmong(personal, repo.Nodes(), sm, cfg)
	got := vocab.FindCandidates(personal, sm, cfg)
	assertSameCandidates(t, "structure fallback", got, want)
	if ni.KernelStats().NaiveFallbacks == 0 {
		t.Fatalf("structure matcher fallback not counted")
	}

	// A universe from a different repository must be naive-only.
	other := randomKernelRepo(rng, 2, 8)
	foreign := ni.Vocabulary(other.Nodes())
	if foreign.Index() != nil {
		t.Fatalf("foreign universe should yield a naive-only vocabulary")
	}
	want = FindCandidatesAmong(personal, other.Nodes(), NameMatcher{}, cfg)
	got = foreign.FindCandidates(personal, NameMatcher{}, cfg)
	assertSameCandidates(t, "foreign universe", got, want)
}

// markedLocal is an external matcher that opts into dedup via the
// PropertyLocal marker.
type markedLocal struct{}

func (markedLocal) Name() string { return "marked" }
func (markedLocal) Similarity(p, r *schema.Node) float64 {
	if len(p.Name) == len(r.Name) {
		return 0.9
	}
	return 0.1
}
func (markedLocal) PropertyLocal() bool { return true }

func TestKernelPropertyLocalMarker(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	repo := randomKernelRepo(rng, 3, 10)
	ni := NewNameIndex(repo)
	vocab := ni.Vocabulary(repo.Nodes())
	personal := randomKernelPersonal(rng, 5)
	cfg := Config{MinSim: 0.45}
	before := ni.KernelStats()
	want := FindCandidatesAmong(personal, repo.Nodes(), markedLocal{}, cfg)
	got := vocab.FindCandidates(personal, markedLocal{}, cfg)
	assertSameCandidates(t, "marked local", got, want)
	after := ni.KernelStats()
	if after.NaiveFallbacks != before.NaiveFallbacks {
		t.Fatalf("marked-local matcher should not fall back")
	}
	if after.SimCalls == before.SimCalls {
		t.Fatalf("marked-local matcher should go through the keyed loop")
	}
}

// TestKernelStatsCounters sanity-checks the effectiveness counters: dedup
// savings and prune hits accumulate, and the distinct ratio reflects the
// vocabulary.
func TestKernelStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	repo := randomKernelRepo(rng, 6, 20)
	ni := NewNameIndex(repo)
	vocab := ni.Vocabulary(repo.Nodes())
	if ni.Keys() >= ni.Nodes() {
		t.Fatalf("duplication-heavy repo should have fewer keys (%d) than nodes (%d)", ni.Keys(), ni.Nodes())
	}
	if r := ni.DistinctRatio(); r <= 0 || r >= 1 {
		t.Fatalf("distinct ratio %v outside (0,1)", r)
	}
	if vocab.DistinctRatio() != ni.DistinctRatio() {
		t.Fatalf("full-universe vocabulary ratio %v != index ratio %v", vocab.DistinctRatio(), ni.DistinctRatio())
	}
	personal := randomKernelPersonal(rng, 8)
	vocab.FindCandidates(personal, NameMatcher{}, Config{MinSim: 0.45})
	st := ni.KernelStats()
	if st.SavedCalls == 0 {
		t.Fatalf("vocabulary dedup saved no calls on a duplication-heavy repo")
	}
	if st.PruneHits == 0 {
		t.Fatalf("length-bound pruning never fired at MinSim 0.45")
	}
	if st.SimCalls == 0 {
		t.Fatalf("no similarity calls recorded")
	}
	if ni.MemoryBytes() <= 0 {
		t.Fatalf("MemoryBytes() = %d, want > 0", ni.MemoryBytes())
	}
}

// TestKernelWarmAllocs pins the per-similarity-call allocation count of the
// warm keyed loop: scoring one personal node against the whole vocabulary
// must not allocate per key (the per-node budget covers preparing the
// personal name and the result slice).
func TestKernelWarmAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	repo := randomKernelRepo(rng, 6, 20)
	ni := NewNameIndex(repo)
	vocab := ni.Vocabulary(repo.Nodes())
	ps := &personalScratch{node: repo.Node(0)}
	ps.prep = strsim.Prepare("authorName")
	ps.synFold = fold("authorName")
	ps.typFold = fold("string")
	for name, m := range kernelMatchers() {
		score := compileScore(m)
		// Warm the scorer scratch.
		for _, ki := range vocab.keys {
			score(ps, &ni.keys[ki])
		}
		n := testing.AllocsPerRun(50, func() {
			for _, ki := range vocab.keys {
				score(ps, &ni.keys[ki])
			}
		})
		if n != 0 {
			t.Errorf("%s: warm keyed scoring allocates %v times per vocabulary sweep, want 0", name, n)
		}
	}
}

// FuzzKernelEquivalence builds a tiny repository and personal schema from
// fuzz-provided names and checks keyed == naive for the default and
// token-aware matchers.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add("author;title;isbn", "authorName;price", uint8(45))
	f.Add("a;b;c;a;b", "a", uint8(0))
	f.Add("café;cafe;CAFE", "café", uint8(70))
	f.Fuzz(func(t *testing.T, repoNames, personalNames string, minPct uint8) {
		split := func(s string) []string {
			var out []string
			start := 0
			for i := 0; i <= len(s); i++ {
				if i == len(s) || s[i] == ';' {
					if i > start {
						out = append(out, s[start:i])
					}
					start = i + 1
				}
			}
			return out
		}
		rn, pn := split(repoNames), split(personalNames)
		if len(rn) == 0 || len(pn) == 0 || len(rn) > 24 || len(pn) > 8 {
			return
		}
		for _, n := range append(append([]string{}, rn...), pn...) {
			if len(n) > 32 {
				return
			}
		}
		repo := schema.NewRepository()
		b := schema.NewBuilder("t")
		root := b.Root("root")
		for _, n := range rn {
			b.Element(root, n)
		}
		repo.MustAdd(b.MustTree())
		pb := schema.NewBuilder("p")
		proot := pb.Root("proot")
		for _, n := range pn {
			pb.Element(proot, n)
		}
		personal := pb.MustTree()

		ni := NewNameIndex(repo)
		vocab := ni.Vocabulary(repo.Nodes())
		cfg := Config{MinSim: float64(minPct%101) / 100}
		for _, m := range []Matcher{NameMatcher{}, NameMatcher{TokenAware: true}} {
			want := FindCandidatesAmong(personal, repo.Nodes(), m, cfg)
			got := vocab.FindCandidates(personal, m, cfg)
			assertSameCandidates(t, m.Name(), got, want)
		}
	})
}
