package matcher

import (
	"fmt"
	"sort"
	"strings"

	"bellflower/internal/schema"
	"bellflower/internal/strsim"
)

// Matcher computes a similarity index in [0, 1] for a pair of elements from
// local properties.
type Matcher interface {
	// Name identifies the matcher in reports.
	Name() string
	// Similarity compares a personal-schema node with a repository node.
	Similarity(p, r *schema.Node) float64
}

// NameMatcher compares element names with a string similarity metric — the
// single matcher the paper's Bellflower system uses. The zero value is the
// paper-faithful configuration (CompareStringFuzzy).
type NameMatcher struct {
	// TokenAware additionally credits reordered compound names
	// ("authorName" vs "name_of_author"). The paper's matcher is pure
	// CompareStringFuzzy; token awareness is an extension, off by default.
	TokenAware bool

	// Metric selects the underlying string similarity; the zero value is
	// the paper's fuzzy edit-distance measure. See strsim.Metric for the
	// alternatives (Jaro–Winkler, trigram Jaccard, bigram cosine).
	Metric strsim.Metric
}

// Name implements Matcher.
func (m NameMatcher) Name() string { return "name(" + m.Metric.String() + ")" }

// Similarity implements Matcher.
func (m NameMatcher) Similarity(p, r *schema.Node) float64 {
	s := m.Metric.Similarity(p.Name, r.Name)
	if m.TokenAware {
		if t := strsim.TokenSimilarity(p.Name, r.Name); t > s {
			s = t
		}
	}
	return s
}

// SynonymMatcher scores 1.0 for names listed as synonyms in a dictionary
// (COMA-style), otherwise 0. Combine it with a NameMatcher.
type SynonymMatcher struct {
	dict map[string]map[string]bool
}

// NewSynonymMatcher builds a matcher from synonym groups; each group is a
// set of mutually synonymous (case-insensitive) names.
func NewSynonymMatcher(groups ...[]string) *SynonymMatcher {
	m := &SynonymMatcher{dict: make(map[string]map[string]bool)}
	for _, g := range groups {
		m.AddGroup(g...)
	}
	return m
}

// AddGroup records that all the given names are synonyms of each other.
func (m *SynonymMatcher) AddGroup(names ...string) {
	folded := make([]string, len(names))
	for i, n := range names {
		folded[i] = fold(n)
	}
	for _, a := range folded {
		set := m.dict[a]
		if set == nil {
			set = make(map[string]bool)
			m.dict[a] = set
		}
		for _, b := range folded {
			if a != b {
				set[b] = true
			}
		}
	}
}

func fold(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}

// Name implements Matcher.
func (*SynonymMatcher) Name() string { return "synonym" }

// Similarity implements Matcher.
func (m *SynonymMatcher) Similarity(p, r *schema.Node) float64 {
	a, b := fold(p.Name), fold(r.Name)
	if a == b {
		return 1
	}
	if m.dict[a][b] {
		return 1
	}
	return 0
}

// DefaultSynonyms returns a small built-in synonym dictionary covering the
// vocabularies used by the experiments and examples.
func DefaultSynonyms() *SynonymMatcher {
	return NewSynonymMatcher(
		[]string{"author", "writer", "creator"},
		[]string{"name", "title", "label"},
		[]string{"email", "e-mail", "mail"},
		[]string{"phone", "telephone", "tel"},
		[]string{"address", "addr", "location"},
		[]string{"zip", "zipcode", "postcode", "postalcode"},
		[]string{"price", "cost", "amount"},
		[]string{"book", "publication", "volume"},
		[]string{"person", "individual", "contact"},
		[]string{"company", "organization", "organisation", "firm"},
	)
}

// TypeMatcher scores datatype compatibility: 1 for identical declared types,
// a configurable partial credit for compatible families (all numerics, all
// string-likes), 0.5 when either type is unknown (no evidence either way).
type TypeMatcher struct{}

// Name implements Matcher.
func (TypeMatcher) Name() string { return "datatype" }

var typeFamily = map[string]string{
	"string": "text", "token": "text", "normalizedstring": "text", "id": "text",
	"anyuri": "text", "ncname": "text", "text": "text",
	"integer": "number", "int": "number", "long": "number", "short": "number",
	"decimal": "number", "float": "number", "double": "number",
	"nonnegativeinteger": "number", "positiveinteger": "number",
	"date": "time", "datetime": "time", "time": "time", "gyear": "time",
	"boolean": "bool",
}

// Similarity implements Matcher.
func (TypeMatcher) Similarity(p, r *schema.Node) float64 {
	a, b := fold(p.Type), fold(r.Type)
	if a == "" || b == "" {
		return 0.5
	}
	if a == b {
		return 1
	}
	fa, fb := typeFamily[a], typeFamily[b]
	if fa != "" && fa == fb {
		return 0.75
	}
	return 0
}

// Weighted is a (matcher, weight) pair for Combined.
type Weighted struct {
	Matcher Matcher
	Weight  float64
}

// Combined merges several matchers with a weighted average, the combining
// technique the paper attributes to COMA/LSD.
type Combined struct {
	parts []Weighted
	total float64
}

// NewCombined returns a combined matcher. It panics if no matcher has a
// positive weight.
func NewCombined(parts ...Weighted) *Combined {
	c := &Combined{parts: parts}
	for _, p := range parts {
		if p.Weight < 0 {
			panic(fmt.Sprintf("matcher: negative weight %v for %s", p.Weight, p.Matcher.Name()))
		}
		c.total += p.Weight
	}
	if c.total == 0 {
		panic("matcher: combined matcher has zero total weight")
	}
	return c
}

// Describe returns a canonical, address-free description of a matcher's
// configuration, suitable for request cache keys: equal descriptions imply
// identical scoring behaviour. Known matcher types render their full
// configuration (recursing into Combined, whose parts hold interface
// values that fmt would otherwise print as pointer addresses); unknown
// implementations fall back to %T%+v, which is canonical for plain value
// types.
func Describe(m Matcher) string {
	switch mm := m.(type) {
	case nil:
		return ""
	case *Combined:
		var b strings.Builder
		b.WriteString("combined(")
		for i, p := range mm.parts {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g*%s", p.Weight, Describe(p.Matcher))
		}
		b.WriteByte(')')
		return b.String()
	case *SynonymMatcher:
		// fmt sorts map keys, so the dictionary renders deterministically.
		return fmt.Sprintf("synonym%+v", mm.dict)
	default:
		return fmt.Sprintf("%T%+v", m, m)
	}
}

// Name implements Matcher.
func (c *Combined) Name() string {
	out := "combined("
	for i, p := range c.parts {
		if i > 0 {
			out += "+"
		}
		out += p.Matcher.Name()
	}
	return out + ")"
}

// Similarity implements Matcher.
func (c *Combined) Similarity(p, r *schema.Node) float64 {
	sum := 0.0
	for _, part := range c.parts {
		sum += part.Weight * part.Matcher.Similarity(p, r)
	}
	return sum / c.total
}

// Candidate is one mapping element: a repository node paired with its
// similarity to a specific personal-schema node.
type Candidate struct {
	Node *schema.Node
	Sim  float64
}

// CandidateSet is MEn — all mapping elements for one personal-schema node,
// sorted by descending similarity (ties broken by node ID for determinism).
type CandidateSet struct {
	Personal *schema.Node
	Elems    []Candidate
}

// Candidates holds the element-matching result for a whole personal schema:
// one CandidateSet per personal node, indexed by the node's preorder rank.
type Candidates struct {
	Personal *schema.Tree
	Sets     []CandidateSet
}

// Set returns the candidate set of the given personal node.
func (c *Candidates) Set(p *schema.Node) *CandidateSet { return &c.Sets[p.Pre] }

// TotalMappingElements returns the number of (personal node, repository
// node) candidate pairs — the paper's "mapping elements" count (4520 in the
// reference experiment).
func (c *Candidates) TotalMappingElements() int {
	n := 0
	for i := range c.Sets {
		n += len(c.Sets[i].Elems)
	}
	return n
}

// MinSet returns the index of the smallest non-empty candidate set (MEmin in
// the paper), used to seed the k-means centroids. Returns -1 if every set is
// empty.
func (c *Candidates) MinSet() int {
	best := -1
	for i := range c.Sets {
		n := len(c.Sets[i].Elems)
		if n == 0 {
			continue
		}
		if best == -1 || n < len(c.Sets[best].Elems) {
			best = i
		}
	}
	return best
}

// Sim returns the similarity recorded for (personal node, repository node),
// or 0 if the repository node is not a candidate for that personal node.
func (c *Candidates) Sim(p, r *schema.Node) float64 {
	for _, cand := range c.Sets[p.Pre].Elems {
		if cand.Node == r {
			return cand.Sim
		}
	}
	return 0
}

// Config controls candidate generation.
type Config struct {
	// MinSim is the similarity threshold below which a pair is not recorded
	// as a mapping element. The paper keeps all non-zero pairs; a small
	// positive threshold bounds noise on large repositories.
	MinSim float64

	// MaxPerNode truncates each MEn to its best MaxPerNode candidates
	// (0 = unlimited). An efficiency guard, off in paper-faithful runs.
	MaxPerNode int
}

// FindCandidates cross-compares every personal node with every repository
// node using m — the quadratic element-matching step ② — and returns the
// per-node candidate sets.
func FindCandidates(personal *schema.Tree, repo *schema.Repository, m Matcher, cfg Config) *Candidates {
	return FindCandidatesAmong(personal, repo.Nodes(), m, cfg)
}

// FindCandidatesAmong is FindCandidates over an explicit node universe —
// typically a shard view's member nodes (labeling.View.Nodes) instead of a
// whole repository. Candidate ordering is (sim desc, node ID asc)
// regardless of the order of nodes, so restricting a repository to a
// subset of its trees produces exactly the full-repository result filtered
// to those trees (see Candidates.Restrict).
//
// This is the naive reference kernel: it scores every (personal node,
// repository node) pair directly. The serving path uses the
// vocabulary-deduplicated Vocabulary.FindCandidates, which is pinned
// bit-identical to this loop by the kernel equivalence property tests and
// falls back to it for matchers that are not property-local.
func FindCandidatesAmong(personal *schema.Tree, nodes []*schema.Node, m Matcher, cfg Config) *Candidates {
	out := &Candidates{
		Personal: personal,
		Sets:     make([]CandidateSet, personal.Len()),
	}
	for i, p := range personal.Nodes() {
		out.Sets[i].Personal = p
		var elems []Candidate
		for _, r := range nodes {
			s := m.Similarity(p, r)
			if s > cfg.MinSim {
				elems = append(elems, Candidate{Node: r, Sim: s})
			}
		}
		sort.Slice(elems, func(a, b int) bool {
			if elems[a].Sim != elems[b].Sim {
				return elems[a].Sim > elems[b].Sim
			}
			return elems[a].Node.ID < elems[b].Node.ID
		})
		if cfg.MaxPerNode > 0 && len(elems) > cfg.MaxPerNode {
			elems = elems[:cfg.MaxPerNode]
		}
		out.Sets[i].Elems = elems
	}
	return out
}

// Rebind returns the candidates with the personal schema replaced by
// another, structurally identical tree (same shape and names — e.g. two
// parses of one spec): per-set personal nodes are swapped by preorder rank
// and the candidate slices are shared, so the call is O(|personal|). The
// caller is responsible for the structural identity; the serving layer
// guarantees it by keying its pre-pass cache on the schema's canonical
// signature. Returns c itself when the tree is already the bound one.
func (c *Candidates) Rebind(personal *schema.Tree) *Candidates {
	if c.Personal == personal {
		return c
	}
	out := &Candidates{
		Personal: personal,
		Sets:     make([]CandidateSet, len(c.Sets)),
	}
	for i := range c.Sets {
		out.Sets[i] = CandidateSet{Personal: personal.NodeAt(i), Elems: c.Sets[i].Elems}
	}
	return out
}

// Restrict filters the candidates to the repository nodes for which keep
// returns true — in the shared-index shard model, membership in one
// shard's labeling.View. Unlike Project there is no clone-time remapping:
// the surviving candidates keep their original node objects and their
// (sim desc, node ID asc) order, so the result is byte-for-byte what
// FindCandidatesAmong would have produced against the kept universe with
// the same matcher and threshold. The per-set slices are freshly
// allocated; the nodes are shared.
func (c *Candidates) Restrict(keep func(*schema.Node) bool) *Candidates {
	out := &Candidates{
		Personal: c.Personal,
		Sets:     make([]CandidateSet, len(c.Sets)),
	}
	for i := range c.Sets {
		src := &c.Sets[i]
		dst := &out.Sets[i]
		dst.Personal = src.Personal
		for _, cand := range src.Elems {
			if keep(cand.Node) {
				dst.Elems = append(dst.Elems, cand)
			}
		}
	}
	return out
}

// Project restricts the candidates to one shard of a partitioned
// repository. cloneOf maps an original repository tree to its clone inside
// the shard repository (the partitioner clones trees because a tree belongs
// to exactly one repository); candidates living in trees outside the map
// are dropped, the rest are translated to the clone's node with the same
// preorder rank. Similarities are tree-local, so the result is exactly what
// FindCandidates would have produced against the shard repository with the
// same matcher and threshold — including the (sim desc, node ID asc) order,
// which is re-established under the shard-local IDs.
func (c *Candidates) Project(cloneOf map[*schema.Tree]*schema.Tree) *Candidates {
	out := &Candidates{
		Personal: c.Personal,
		Sets:     make([]CandidateSet, len(c.Sets)),
	}
	for i := range c.Sets {
		src := &c.Sets[i]
		dst := &out.Sets[i]
		dst.Personal = src.Personal
		var elems []Candidate
		for _, cand := range src.Elems {
			clone, ok := cloneOf[cand.Node.Tree()]
			if !ok {
				continue
			}
			elems = append(elems, Candidate{Node: clone.NodeAt(cand.Node.Pre), Sim: cand.Sim})
		}
		// Equal-sim runs may interleave trees whose relative ID order
		// changed across repositories; the sim ordering itself is intact.
		sort.Slice(elems, func(a, b int) bool {
			if elems[a].Sim != elems[b].Sim {
				return elems[a].Sim > elems[b].Sim
			}
			return elems[a].Node.ID < elems[b].Node.ID
		})
		dst.Elems = elems
	}
	return out
}

// MappingElementNodes returns the deduplicated repository nodes that are a
// candidate for at least one personal node, together with a bitmask (one bit
// per personal node, by preorder rank) of which personal nodes they serve.
// This is the element universe the clusterer partitions.
func (c *Candidates) MappingElementNodes() ([]*schema.Node, []uint64) {
	if c.Personal.Len() > 64 {
		panic("matcher: personal schemas with more than 64 nodes not supported by bitmask")
	}
	byID := make(map[int]int) // node ID -> index in out
	var nodes []*schema.Node
	var masks []uint64
	for i := range c.Sets {
		for _, cand := range c.Sets[i].Elems {
			j, ok := byID[cand.Node.ID]
			if !ok {
				j = len(nodes)
				byID[cand.Node.ID] = j
				nodes = append(nodes, cand.Node)
				masks = append(masks, 0)
			}
			masks[j] |= 1 << uint(i)
		}
	}
	return nodes, masks
}
