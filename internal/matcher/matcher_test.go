package matcher

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bellflower/internal/schema"
)

func node(name, typ string) *schema.Node {
	b := schema.NewBuilder("t")
	r := b.Root("root")
	n := b.TypedElement(r, name, typ)
	b.MustTree()
	return n
}

func TestNameMatcher(t *testing.T) {
	m := NameMatcher{}
	if got := m.Similarity(node("book", ""), node("book", "")); got != 1 {
		t.Errorf("identical names = %v", got)
	}
	if got := m.Similarity(node("book", ""), node("Book", "")); got != 1 {
		t.Errorf("case-folded names = %v", got)
	}
	exact := m.Similarity(node("author", ""), node("author", ""))
	near := m.Similarity(node("author", ""), node("authors", ""))
	far := m.Similarity(node("author", ""), node("zzzzz", ""))
	if !(exact > near && near > far) {
		t.Errorf("ordering wrong: %v %v %v", exact, near, far)
	}

	ta := NameMatcher{TokenAware: true}
	plain := m.Similarity(node("authorName", ""), node("name_author", ""))
	token := ta.Similarity(node("authorName", ""), node("name_author", ""))
	if token <= plain {
		t.Errorf("token-aware should beat plain on reordered compounds: %v <= %v", token, plain)
	}
}

func TestSynonymMatcher(t *testing.T) {
	m := DefaultSynonyms()
	cases := []struct {
		a, b string
		want float64
	}{
		{"author", "writer", 1},
		{"Writer", "CREATOR", 1},
		{"email", "e-mail", 1},
		{"book", "author", 0},
		{"same", "same", 1}, // identical always 1
	}
	for _, tc := range cases {
		if got := m.Similarity(node(tc.a, ""), node(tc.b, "")); got != tc.want {
			t.Errorf("synonym(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSynonymMatcherAddGroup(t *testing.T) {
	m := NewSynonymMatcher()
	m.AddGroup("isbn", "identifier")
	if got := m.Similarity(node("ISBN", ""), node("Identifier", "")); got != 1 {
		t.Errorf("added group not matched: %v", got)
	}
	// symmetry
	if got := m.Similarity(node("identifier", ""), node("isbn", "")); got != 1 {
		t.Errorf("synonym not symmetric: %v", got)
	}
}

func TestTypeMatcher(t *testing.T) {
	m := TypeMatcher{}
	cases := []struct {
		a, b string
		want float64
	}{
		{"string", "string", 1},
		{"string", "token", 0.75},  // same family
		{"int", "decimal", 0.75},   // numeric family
		{"string", "integer", 0},   // different families
		{"", "string", 0.5},        // unknown
		{"string", "", 0.5},        // unknown
		{"date", "dateTime", 0.75}, // time family
	}
	for _, tc := range cases {
		if got := m.Similarity(node("x", tc.a), node("y", tc.b)); got != tc.want {
			t.Errorf("type(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCombined(t *testing.T) {
	c := NewCombined(
		Weighted{NameMatcher{}, 2},
		Weighted{TypeMatcher{}, 1},
	)
	// name sim 1, type sim 1 -> 1
	if got := c.Similarity(node("a", "string"), node("a", "string")); got != 1 {
		t.Errorf("combined identical = %v", got)
	}
	// name sim 0 (totally different), type 0 -> 0
	if got := c.Similarity(node("aaaa", "string"), node("zzzz", "integer")); got != 0 {
		t.Errorf("combined disjoint = %v", got)
	}
	// weighted: name=1 (w2), type=0 (w1) -> 2/3
	got := c.Similarity(node("a", "string"), node("a", "integer"))
	if got < 0.66 || got > 0.67 {
		t.Errorf("combined weighting = %v, want 2/3", got)
	}
	if c.Name() != "combined(name(fuzzy)+datatype)" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestCombinedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("zero-weight combined should panic")
		}
	}()
	NewCombined()
}

func buildRepo(specs ...string) *schema.Repository {
	r := schema.NewRepository()
	for _, s := range specs {
		r.MustAdd(schema.MustParseSpec(s))
	}
	return r
}

func TestFindCandidates(t *testing.T) {
	personal := schema.MustParseSpec("book(title,author)")
	repo := buildRepo(
		"lib(address,book(authorName,data(title),shelf))",
		"store(books(book(title,author)))",
		"zoo(animal(cage))",
	)
	cands := FindCandidates(personal, repo, NameMatcher{}, Config{MinSim: 0.55})
	if len(cands.Sets) != 3 {
		t.Fatalf("want 3 candidate sets, got %d", len(cands.Sets))
	}
	bookSet := cands.Set(personal.Find("book"))
	if len(bookSet.Elems) < 2 {
		t.Fatalf("book should match at least the two 'book' nodes, got %d", len(bookSet.Elems))
	}
	// exact matches first
	if bookSet.Elems[0].Sim != 1 {
		t.Errorf("best book candidate sim = %v", bookSet.Elems[0].Sim)
	}
	// sorted descending
	for i := 1; i < len(bookSet.Elems); i++ {
		if bookSet.Elems[i].Sim > bookSet.Elems[i-1].Sim {
			t.Errorf("candidates not sorted at %d", i)
		}
	}
	// author set should include authorName and author
	authorSet := cands.Set(personal.Find("author"))
	foundAuthor, foundAuthorName := false, false
	for _, c := range authorSet.Elems {
		switch c.Node.Name {
		case "author":
			foundAuthor = true
		case "authorName":
			foundAuthorName = true
		}
	}
	if !foundAuthor {
		t.Errorf("author candidate missing exact match")
	}
	if !foundAuthorName {
		t.Errorf("author candidate missing authorName (fuzzy)")
	}
	if cands.TotalMappingElements() == 0 {
		t.Errorf("no mapping elements found")
	}
}

func TestCandidatesMinSet(t *testing.T) {
	personal := schema.MustParseSpec("book(title,qqqqzw)")
	repo := buildRepo("lib(book(title),book(title))")
	cands := FindCandidates(personal, repo, NameMatcher{}, Config{MinSim: 0.5})
	// qqqqzw matches nothing; MinSet must skip empty sets.
	min := cands.MinSet()
	if min == -1 {
		t.Fatalf("MinSet = -1, want a non-empty set")
	}
	if len(cands.Sets[min].Elems) == 0 {
		t.Errorf("MinSet returned an empty set")
	}

	// All-empty case.
	p2 := schema.MustParseSpec("qqqq(wwww)")
	c2 := FindCandidates(p2, repo, NameMatcher{}, Config{MinSim: 0.9})
	if got := c2.MinSet(); got != -1 {
		t.Errorf("MinSet on empty candidates = %d, want -1", got)
	}
}

func TestMaxPerNode(t *testing.T) {
	personal := schema.MustParseSpec("book")
	repo := buildRepo("lib(book,book,book,book,book)")
	cands := FindCandidates(personal, repo, NameMatcher{}, Config{MinSim: 0.1, MaxPerNode: 2})
	if got := len(cands.Set(personal.Root()).Elems); got != 2 {
		t.Errorf("MaxPerNode not applied: %d", got)
	}
}

func TestMappingElementNodes(t *testing.T) {
	personal := schema.MustParseSpec("book(title)")
	repo := buildRepo("lib(book(title),title)")
	cands := FindCandidates(personal, repo, NameMatcher{}, Config{MinSim: 0.9})
	nodes, masks := cands.MappingElementNodes()
	if len(nodes) != len(masks) {
		t.Fatalf("nodes/masks length mismatch")
	}
	// repo has one 'book' (candidate for personal book = bit 0) and two
	// 'title' nodes (bit 1).
	var bookMask, titleMask uint64
	for i, n := range nodes {
		switch n.Name {
		case "book":
			bookMask |= masks[i]
		case "title":
			titleMask |= masks[i]
		}
	}
	if bookMask != 1 {
		t.Errorf("book mask = %b, want 1", bookMask)
	}
	if titleMask != 2 {
		t.Errorf("title mask = %b, want 10", titleMask)
	}
}

func TestSimLookup(t *testing.T) {
	personal := schema.MustParseSpec("book")
	repo := buildRepo("lib(book,zebra)")
	cands := FindCandidates(personal, repo, NameMatcher{}, Config{MinSim: 0.5})
	p := personal.Root()
	book := repo.Tree(0).Find("book")
	zebra := repo.Tree(0).Find("zebra")
	if got := cands.Sim(p, book); got != 1 {
		t.Errorf("Sim(book,book) = %v", got)
	}
	if got := cands.Sim(p, zebra); got != 0 {
		t.Errorf("Sim(book,zebra) = %v, want 0 (not a candidate)", got)
	}
}

// Property: every candidate respects the MinSim threshold and sets are
// sorted descending; the similarity stored equals the matcher's output.
func TestFindCandidatesProperty(t *testing.T) {
	m := NameMatcher{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		words := []string{"book", "title", "author", "bok", "autor", "name", "addr", "zzz"}
		pick := func() string { return words[rng.Intn(len(words))] }
		personal := schema.MustParseSpec(pick() + "(" + pick() + "," + pick() + ")")
		repo := buildRepo(
			pick()+"("+pick()+","+pick()+"("+pick()+"))",
			pick()+"("+pick()+")",
		)
		minSim := float64(rng.Intn(10)) / 10
		cands := FindCandidates(personal, repo, m, Config{MinSim: minSim})
		for i := range cands.Sets {
			set := &cands.Sets[i]
			for j, c := range set.Elems {
				if c.Sim <= minSim {
					return false
				}
				if j > 0 && set.Elems[j-1].Sim < c.Sim {
					return false
				}
				if m.Similarity(set.Personal, c.Node) != c.Sim {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestProjectMatchesShardLocalFindCandidates is the core exactness claim
// of the serving layer's candidate pre-pass: projecting a full-repository
// candidate set onto a shard yields byte-for-byte the candidates the shard
// would have computed itself.
func TestProjectMatchesShardLocalFindCandidates(t *testing.T) {
	full := schema.NewRepository()
	specs := []string{
		"lib(address,book(authorName,data(title),shelf))",
		"store(book(title,author,isbn@),order(id,customer(name,email)))",
		"catalog(item(name,price),publisher(name,address))",
	}
	for _, s := range specs {
		full.MustAdd(schema.MustParseSpec(s))
	}
	personal := schema.MustParseSpec("book(title,author)")
	cfg := Config{MinSim: 0.3}
	cands := FindCandidates(personal, full, NameMatcher{}, cfg)

	// Shard: trees 0 and 2, added in the opposite order so shard-local IDs
	// disagree with the full repository's.
	shard := schema.NewRepository()
	c2 := full.Tree(2).Clone()
	c0 := full.Tree(0).Clone()
	shard.MustAdd(c2)
	shard.MustAdd(c0)
	cloneOf := map[*schema.Tree]*schema.Tree{
		full.Tree(2): c2,
		full.Tree(0): c0,
	}

	got := cands.Project(cloneOf)
	want := FindCandidates(personal, shard, NameMatcher{}, cfg)
	if got.Personal != personal {
		t.Fatal("projection lost the personal schema")
	}
	if len(got.Sets) != len(want.Sets) {
		t.Fatalf("projection has %d sets, want %d", len(got.Sets), len(want.Sets))
	}
	for i := range want.Sets {
		g, w := got.Sets[i].Elems, want.Sets[i].Elems
		if len(g) != len(w) {
			t.Fatalf("set %d: %d candidates, want %d", i, len(g), len(w))
		}
		for j := range w {
			if g[j].Node != w[j].Node || g[j].Sim != w[j].Sim {
				t.Errorf("set %d rank %d: (%v, %v), want (%v, %v)",
					i, j, g[j].Node, g[j].Sim, w[j].Node, w[j].Sim)
			}
		}
	}

	// An empty clone map projects to all-empty candidate sets.
	none := cands.Project(map[*schema.Tree]*schema.Tree{})
	if n := none.TotalMappingElements(); n != 0 {
		t.Errorf("empty projection kept %d mapping elements", n)
	}
}

// TestProjectPartitionCovers checks that projecting through a disjoint
// partition of the repository's trees splits the candidate multiset
// without losing or duplicating a pair.
func TestProjectPartitionCovers(t *testing.T) {
	full := schema.NewRepository()
	for _, s := range []string{
		"a(name,title)", "b(name(title),email)", "c(title,author(name))",
	} {
		full.MustAdd(schema.MustParseSpec(s))
	}
	personal := schema.MustParseSpec("book(title,name)")
	cands := FindCandidates(personal, full, NameMatcher{}, Config{MinSim: 0.2})

	shardTrees := [][]int{{0, 2}, {1}}
	total := 0
	for _, ids := range shardTrees {
		cloneOf := make(map[*schema.Tree]*schema.Tree)
		for _, id := range ids {
			cloneOf[full.Tree(id)] = full.Tree(id).Clone()
		}
		total += cands.Project(cloneOf).TotalMappingElements()
	}
	if total != cands.TotalMappingElements() {
		t.Errorf("projections cover %d mapping elements, want %d", total, cands.TotalMappingElements())
	}
}

func TestRebind(t *testing.T) {
	repo := schema.NewRepository()
	repo.MustAdd(schema.MustParseSpec("lib(book(title,author))"))
	p1 := schema.MustParseSpec("book(title,author)")
	p2 := schema.MustParseSpec("book(title,author)") // same shape, new instance
	cands := FindCandidates(p1, repo, NameMatcher{}, Config{MinSim: 0.3})

	if cands.Rebind(p1) != cands {
		t.Error("rebinding to the bound tree should return the receiver")
	}
	re := cands.Rebind(p2)
	if re.Personal != p2 {
		t.Error("rebind kept the old personal tree")
	}
	for i := range re.Sets {
		if re.Sets[i].Personal != p2.NodeAt(i) {
			t.Errorf("set %d bound to a node outside the new tree", i)
		}
		if len(re.Sets[i].Elems) != len(cands.Sets[i].Elems) {
			t.Errorf("set %d lost candidates in rebind", i)
		}
	}
}

// TestRestrictEqualsFindCandidatesAmong: restricting a full-repository
// candidate set to one shard's trees is byte-for-byte what element
// matching against only those trees' nodes would have produced — the
// exactness the shared-index shard projection relies on, with no clone
// remapping and no re-sort.
func TestRestrictEqualsFindCandidatesAmong(t *testing.T) {
	repo := schema.NewRepository()
	for _, spec := range []string{
		"lib(book(title,author),shelf)",
		"store(book(title,isbn),clerk(name))",
		"archive(tome(title,writer))",
	} {
		repo.MustAdd(schema.MustParseSpec(spec))
	}
	personal := schema.MustParseSpec("book(title,author)")
	cfg := Config{MinSim: 0.3}
	full := FindCandidates(personal, repo, NameMatcher{}, cfg)

	// "Shard" = trees 0 and 2.
	member := map[*schema.Tree]bool{repo.Tree(0): true, repo.Tree(2): true}
	keep := func(n *schema.Node) bool { return member[n.Tree()] }
	var shardNodes []*schema.Node
	for _, tr := range []*schema.Tree{repo.Tree(0), repo.Tree(2)} {
		shardNodes = append(shardNodes, tr.Nodes()...)
	}

	got := full.Restrict(keep)
	want := FindCandidatesAmong(personal, shardNodes, NameMatcher{}, cfg)
	if got.Personal != personal || len(got.Sets) != len(want.Sets) {
		t.Fatalf("shape mismatch: %d sets vs %d", len(got.Sets), len(want.Sets))
	}
	for i := range want.Sets {
		g, w := got.Sets[i].Elems, want.Sets[i].Elems
		if len(g) != len(w) {
			t.Fatalf("set %d: %d candidates, want %d", i, len(g), len(w))
		}
		for j := range w {
			if g[j].Node != w[j].Node || g[j].Sim != w[j].Sim {
				t.Fatalf("set %d candidate %d: got (%v,%v), want (%v,%v)",
					i, j, g[j].Node, g[j].Sim, w[j].Node, w[j].Sim)
			}
		}
		for _, c := range g {
			if !keep(c.Node) {
				t.Fatalf("set %d kept non-member node %v", i, c.Node)
			}
		}
	}
	// The restriction shares node objects with the original (no clones).
	for i := range got.Sets {
		for _, c := range got.Sets[i].Elems {
			if repo.Node(c.Node.ID) != c.Node {
				t.Fatalf("restricted candidate %v is not the repository's own node", c.Node)
			}
		}
	}
}
