package matcher

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"bellflower/internal/schema"
	"bellflower/internal/strsim"
)

// PropertyLocal is an opt-in marker for matcher implementations outside this
// package: returning true promises that Similarity depends only on the two
// nodes' Name and Type fields (never on tree position, children or other
// context), which lets the keyed kernel score each distinct (name, datatype)
// key once and fan the score out to every node sharing it. The built-in
// name, synonym, datatype and combined matchers are recognized without the
// marker; structure matchers are context-dependent and must not implement
// it.
type PropertyLocal interface {
	PropertyLocal() bool
}

// isPropertyLocal reports whether m's similarity is a pure function of
// (Name, Type) pairs, making vocabulary dedup exact.
func isPropertyLocal(m Matcher) bool {
	switch mm := m.(type) {
	case NameMatcher, TypeMatcher:
		return true
	case *SynonymMatcher:
		return true
	case *Combined:
		for _, p := range mm.parts {
			if !isPropertyLocal(p.Matcher) {
				return false
			}
		}
		return true
	}
	if pl, ok := m.(PropertyLocal); ok {
		return pl.PropertyLocal()
	}
	return false
}

// personalScratch is one worker's per-personal-node state: the node, its
// prepared name and the ASCII folds the synonym and datatype matchers need,
// plus the worker's reusable string-similarity scratch.
type personalScratch struct {
	sc      strsim.Scorer
	node    *schema.Node
	prep    strsim.Prepared
	synFold string
	typFold string
}

// scoreFunc scores one (personal node, interned key) pair. Implementations
// must be bit-identical to the matcher's Similarity on any node carrying the
// key — the equivalence property tests pin this.
type scoreFunc func(ps *personalScratch, key *nameKey) float64

// compileScore builds the fast scoring function for a property-local
// matcher. Matchers recognized only via the PropertyLocal marker fall back
// to calling Similarity against the key's representative node — still
// deduplicated, just not allocation-free.
func compileScore(m Matcher) scoreFunc {
	switch mm := m.(type) {
	case NameMatcher:
		metric, tokenAware := mm.Metric, mm.TokenAware
		return func(ps *personalScratch, key *nameKey) float64 {
			s := ps.sc.Similarity(metric, &ps.prep, &key.prep)
			if tokenAware {
				if t := ps.sc.TokenSimilarity(&ps.prep, &key.prep); t > s {
					s = t
				}
			}
			return s
		}
	case *SynonymMatcher:
		return func(ps *personalScratch, key *nameKey) float64 {
			if ps.synFold == key.synFold {
				return 1
			}
			if mm.dict[ps.synFold][key.synFold] {
				return 1
			}
			return 0
		}
	case TypeMatcher:
		return func(ps *personalScratch, key *nameKey) float64 {
			a, b := ps.typFold, key.typFold
			if a == "" || b == "" {
				return 0.5
			}
			if a == b {
				return 1
			}
			fa, fb := typeFamily[a], typeFamily[b]
			if fa != "" && fa == fb {
				return 0.75
			}
			return 0
		}
	case *Combined:
		parts := make([]scoreFunc, len(mm.parts))
		for i, p := range mm.parts {
			parts[i] = compileScore(p.Matcher)
		}
		weights, total := mm.parts, mm.total
		return func(ps *personalScratch, key *nameKey) float64 {
			sum := 0.0
			for i, sub := range parts {
				sum += weights[i].Weight * sub(ps, key)
			}
			return sum / total
		}
	default:
		return func(ps *personalScratch, key *nameKey) float64 {
			return m.Similarity(ps.node, key.rep)
		}
	}
}

// pruneEligible reports whether the length-difference bound applies: only
// the pure fuzzy name matcher's score is capped by 1 − |la−lb|/max(la,lb).
// Token awareness and the other metrics can exceed it.
func pruneEligible(m Matcher) bool {
	nm, ok := m.(NameMatcher)
	return ok && !nm.TokenAware && nm.Metric == strsim.MetricFuzzy
}

// parallelThreshold is the (personal × vocab) pair count below which the
// keyed kernel stays on one goroutine — tiny requests finish before worker
// spin-up pays for itself.
const parallelThreshold = 1 << 12

// FindCandidates is the vocabulary-deduplicated element-matching kernel:
// FindCandidatesAmong over the vocabulary's universe, scoring each distinct
// (personal-name, repo-key) pair once and fanning the score out to every
// node sharing the key — O(|personal| × |vocab|) similarity calls instead of
// O(|personal| × |nodes|). The per-personal-node outer loop runs on a
// bounded worker set, each worker scoring with reusable zero-allocation
// scratch, and the pure fuzzy matcher additionally skips OSA passes its
// length-difference bound proves cannot clear cfg.MinSim.
//
// The result is bit-identical — scores and order — to the naive reference
// kernel FindCandidatesAmong(personal, v.Nodes(), m, cfg): dedup only reuses
// scores across equal (Name, Type) keys, pruning only skips pairs the MinSim
// filter would drop, and the (sim desc, node ID asc) candidate order is a
// total order independent of evaluation schedule. Matchers that are not
// property-local (structure matchers, unknown implementations) fall back to
// the naive kernel.
func (v *Vocabulary) FindCandidates(personal *schema.Tree, m Matcher, cfg Config) *Candidates {
	if v.ni == nil || !isPropertyLocal(m) {
		if v.ni != nil {
			v.ni.fallbacks.Add(1)
		}
		return FindCandidatesAmong(personal, v.nodes, m, cfg)
	}
	out := &Candidates{
		Personal: personal,
		Sets:     make([]CandidateSet, personal.Len()),
	}
	pnodes := personal.Nodes()
	if len(pnodes) == 0 {
		return out
	}
	score := compileScore(m)
	prune := pruneEligible(m)

	var simCalls, saved, prunes atomic.Int64
	process := func(ps *personalScratch, i int) {
		p := pnodes[i]
		ps.node = p
		ps.prep = strsim.Prepare(p.Name)
		ps.synFold = fold(p.Name)
		ps.typFold = fold(p.Type)
		var nPrunes int64
		var elems []Candidate
		var topK *candidateHeap
		if cfg.MaxPerNode > 0 {
			topK = newCandidateHeap(cfg.MaxPerNode)
		}
		for gi, ki := range v.keys {
			key := &v.ni.keys[ki]
			var s float64
			if prune {
				var pruned bool
				s, pruned = ps.sc.FuzzyBounded(&ps.prep, &key.prep, cfg.MinSim)
				if pruned {
					nPrunes++
					continue
				}
			} else {
				s = score(ps, key)
			}
			if s > cfg.MinSim {
				for _, rn := range v.groups[gi] {
					if topK != nil {
						topK.offer(Candidate{Node: rn, Sim: s})
					} else {
						elems = append(elems, Candidate{Node: rn, Sim: s})
					}
				}
			}
		}
		if topK != nil {
			elems = topK.sorted()
		} else {
			sort.Slice(elems, func(a, b int) bool { return candidateBefore(elems[a], elems[b]) })
		}
		out.Sets[i].Personal = p
		out.Sets[i].Elems = elems
		simCalls.Add(int64(len(v.keys)) - nPrunes)
		saved.Add(int64(len(v.nodes) - len(v.keys)))
		prunes.Add(nPrunes)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(pnodes) {
		workers = len(pnodes)
	}
	if len(pnodes)*len(v.keys) < parallelThreshold {
		workers = 1
	}
	if workers <= 1 {
		var ps personalScratch
		for i := range pnodes {
			process(&ps, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var ps personalScratch
				for {
					i := int(next.Add(1)) - 1
					if i >= len(pnodes) {
						return
					}
					process(&ps, i)
				}
			}()
		}
		wg.Wait()
	}
	v.ni.simCalls.Add(simCalls.Load())
	v.ni.savedCalls.Add(saved.Load())
	v.ni.pruneHits.Add(prunes.Load())
	return out
}

// candidateBefore is the kernel's total candidate order: descending
// similarity, ties broken by ascending node ID. Node IDs are unique, so the
// order is strict and any correct selection algorithm yields the same
// sequence.
func candidateBefore(a, b Candidate) bool {
	if a.Sim != b.Sim {
		return a.Sim > b.Sim
	}
	return a.Node.ID < b.Node.ID
}

// candidateHeap keeps the best k candidates seen so far as a min-heap under
// candidateBefore (the root is the worst retained candidate), replacing the
// naive kernel's collect-everything-then-sort when MaxPerNode bounds the
// result.
type candidateHeap struct {
	k     int
	elems []Candidate
}

func newCandidateHeap(k int) *candidateHeap {
	return &candidateHeap{k: k, elems: make([]Candidate, 0, k)}
}

func (h *candidateHeap) offer(c Candidate) {
	if len(h.elems) < h.k {
		h.elems = append(h.elems, c)
		// Sift up: parents rank after (are worse than) their children.
		i := len(h.elems) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !candidateBefore(h.elems[parent], h.elems[i]) {
				break
			}
			h.elems[parent], h.elems[i] = h.elems[i], h.elems[parent]
			i = parent
		}
		return
	}
	if !candidateBefore(c, h.elems[0]) {
		return // not better than the worst retained candidate
	}
	h.elems[0] = c
	// Sift down.
	i := 0
	for {
		worst := i
		if l := 2*i + 1; l < len(h.elems) && candidateBefore(h.elems[worst], h.elems[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h.elems) && candidateBefore(h.elems[worst], h.elems[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.elems[i], h.elems[worst] = h.elems[worst], h.elems[i]
		i = worst
	}
}

func (h *candidateHeap) sorted() []Candidate {
	if len(h.elems) == 0 {
		return nil // the naive kernel leaves empty sets nil
	}
	sort.Slice(h.elems, func(a, b int) bool { return candidateBefore(h.elems[a], h.elems[b]) })
	return h.elems
}
