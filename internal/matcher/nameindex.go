package matcher

import (
	"sync/atomic"

	"bellflower/internal/schema"
	"bellflower/internal/strsim"
)

// NameIndex interns every distinct (name, datatype) key of a repository and
// caches the key's prepared similarity inputs (folded form, token list,
// trigram set, bigram vector) plus the ASCII folds the synonym and datatype
// matchers use. It is computed once per repository generation — alongside
// labeling.Index — and shared by every runner, view and shard over that
// repository, so shards pay no extra memory for it.
//
// Repository vocabularies are tiny relative to node counts (the same element
// names recur across trees), which is what makes the keyed kernel's
// vocabulary dedup pay: scoring one personal node costs O(|vocab|)
// similarity calls instead of O(|nodes|).
type NameIndex struct {
	repo  *schema.Repository
	keyOf []int32 // node ID -> index into keys
	keys  []nameKey
	bytes int64

	// Kernel effectiveness counters, accumulated by Vocabulary.FindCandidates.
	simCalls   atomic.Int64
	savedCalls atomic.Int64
	pruneHits  atomic.Int64
	fallbacks  atomic.Int64
}

// nameKey is one interned (name, datatype) key with its precomputed scoring
// inputs.
type nameKey struct {
	name    string
	typ     string
	prep    strsim.Prepared
	synFold string       // ASCII fold of name (SynonymMatcher's fold)
	typFold string       // ASCII fold of typ (TypeMatcher's fold)
	rep     *schema.Node // first node carrying this key; representative for opaque local matchers
}

// NewNameIndex interns the repository's (name, datatype) vocabulary.
func NewNameIndex(repo *schema.Repository) *NameIndex {
	n := repo.Len()
	ni := &NameIndex{repo: repo, keyOf: make([]int32, n)}
	type pair struct{ name, typ string }
	seen := make(map[pair]int32, n/2)
	for id := 0; id < n; id++ {
		node := repo.Node(id)
		k := pair{node.Name, node.Type}
		ki, ok := seen[k]
		if !ok {
			ki = int32(len(ni.keys))
			seen[k] = ki
			ni.keys = append(ni.keys, nameKey{
				name:    node.Name,
				typ:     node.Type,
				prep:    strsim.Prepare(node.Name),
				synFold: fold(node.Name),
				typFold: fold(node.Type),
				rep:     node,
			})
		}
		ni.keyOf[id] = ki
	}
	b := int64(4 * len(ni.keyOf))
	for i := range ni.keys {
		k := &ni.keys[i]
		b += 120 + int64(len(k.name)+len(k.typ)+len(k.synFold)+len(k.typFold)) + k.prep.MemoryBytes()
	}
	ni.bytes = b
	return ni
}

// Repository returns the repository the index was built from.
func (ni *NameIndex) Repository() *schema.Repository { return ni.repo }

// Keys returns the number of distinct (name, datatype) keys.
func (ni *NameIndex) Keys() int { return len(ni.keys) }

// Nodes returns the number of repository nodes the index covers.
func (ni *NameIndex) Nodes() int { return len(ni.keyOf) }

// DistinctRatio returns Keys/Nodes — the fraction of the node universe that
// is distinct vocabulary. The keyed kernel's dedup win is its inverse.
func (ni *NameIndex) DistinctRatio() float64 {
	if len(ni.keyOf) == 0 {
		return 0
	}
	return float64(len(ni.keys)) / float64(len(ni.keyOf))
}

// MemoryBytes estimates the resident size of the index.
func (ni *NameIndex) MemoryBytes() int64 { return ni.bytes }

// KernelStats is a snapshot of the keyed kernel's effectiveness counters.
type KernelStats struct {
	// SimCalls is the number of similarity evaluations the keyed kernel
	// performed.
	SimCalls int64
	// SavedCalls is the number of evaluations vocabulary dedup avoided
	// relative to the naive kernel (|nodes| − |vocab| per personal node).
	SavedCalls int64
	// PruneHits is the number of OSA evaluations the length-difference
	// bound skipped.
	PruneHits int64
	// NaiveFallbacks is the number of kernel invocations that fell back to
	// the naive reference loop (non-local matcher or foreign universe).
	NaiveFallbacks int64
}

// KernelStats returns a snapshot of the kernel counters.
func (ni *NameIndex) KernelStats() KernelStats {
	return KernelStats{
		SimCalls:       ni.simCalls.Load(),
		SavedCalls:     ni.savedCalls.Load(),
		PruneHits:      ni.pruneHits.Load(),
		NaiveFallbacks: ni.fallbacks.Load(),
	}
}

// Vocabulary is one node universe (a whole repository or a shard view's
// member nodes) grouped by interned key. Building it is a single pass over
// the universe; the grouping is immutable afterwards and safe for concurrent
// use by the kernel.
type Vocabulary struct {
	ni     *NameIndex
	nodes  []*schema.Node   // the universe, in its original order
	keys   []int32          // distinct key indexes present, in first-appearance order
	groups [][]*schema.Node // nodes per key, parallel to keys
}

// Vocabulary groups a node universe by the index's interned keys. Every node
// must belong to the index's repository; a universe containing foreign nodes
// yields a vocabulary that always takes the naive path (the kernel cannot
// vouch for its dedup there).
func (ni *NameIndex) Vocabulary(nodes []*schema.Node) *Vocabulary {
	v := &Vocabulary{ni: ni, nodes: nodes}
	slot := make(map[int32]int, 64)
	for _, n := range nodes {
		if n.ID < 0 || n.ID >= len(ni.keyOf) || ni.repo.Node(n.ID) != n {
			return &Vocabulary{nodes: nodes} // foreign universe: naive only
		}
		ki := ni.keyOf[n.ID]
		gi, ok := slot[ki]
		if !ok {
			gi = len(v.keys)
			slot[ki] = gi
			v.keys = append(v.keys, ki)
			v.groups = append(v.groups, nil)
		}
		v.groups[gi] = append(v.groups[gi], n)
	}
	return v
}

// Index returns the name index the vocabulary was grouped under, or nil for
// a naive-only vocabulary.
func (v *Vocabulary) Index() *NameIndex { return v.ni }

// Nodes returns the vocabulary's node universe.
func (v *Vocabulary) Nodes() []*schema.Node { return v.nodes }

// Keys returns the number of distinct keys present in the universe.
func (v *Vocabulary) Keys() int { return len(v.keys) }

// DistinctRatio returns Keys/len(Nodes) for this universe.
func (v *Vocabulary) DistinctRatio() float64 {
	if len(v.nodes) == 0 {
		return 0
	}
	return float64(len(v.keys)) / float64(len(v.nodes))
}
