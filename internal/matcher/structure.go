package matcher

import (
	"bellflower/internal/schema"
	"bellflower/internal/strsim"
)

// Structure matchers (the paper's second matcher group, Sec. 2.2) compute
// similarity from the structural context of elements rather than their
// local properties: ancestor paths, child sets and leaf sets, in the
// spirit of Cupid's TreeMatch. In the paper's alternative clustered
// technique (Sec. 2.3), localized matchers run before clustering and
// structure matchers run after it, per cluster — implemented by
// pipeline.Options.StructureMatcher.

// PathContextMatcher compares the root-to-node name paths of the two
// elements: each ancestor name of the shorter path is greedily matched to
// its most similar counterpart. Elements living under similar containers
// score high even when their own names differ.
type PathContextMatcher struct{}

// Name implements Matcher.
func (PathContextMatcher) Name() string { return "path-context" }

// Similarity implements Matcher.
func (PathContextMatcher) Similarity(p, r *schema.Node) float64 {
	return nameListSimilarity(p.Path(), r.Path())
}

// ChildContextMatcher compares the immediate child name sets of the two
// elements. Leaves score by both being leaves (1) or not (0.5 — no
// structural evidence either way against an inner node).
type ChildContextMatcher struct{}

// Name implements Matcher.
func (ChildContextMatcher) Name() string { return "child-context" }

// Similarity implements Matcher.
func (ChildContextMatcher) Similarity(p, r *schema.Node) float64 {
	pc, rc := childNames(p), childNames(r)
	switch {
	case len(pc) == 0 && len(rc) == 0:
		return 1
	case len(pc) == 0 || len(rc) == 0:
		return 0.5
	}
	return nameListSimilarity(pc, rc)
}

// LeafContextMatcher compares the leaf name sets of the subtrees rooted at
// the two elements — the leaf-oriented core of Cupid's TreeMatch: two
// containers are similar when the data they ultimately hold is similar.
type LeafContextMatcher struct{}

// Name implements Matcher.
func (LeafContextMatcher) Name() string { return "leaf-context" }

// Similarity implements Matcher.
func (LeafContextMatcher) Similarity(p, r *schema.Node) float64 {
	return nameListSimilarity(leafNames(p), leafNames(r))
}

func childNames(n *schema.Node) []string {
	kids := n.Children()
	out := make([]string, len(kids))
	for i, c := range kids {
		out[i] = c.Name
	}
	return out
}

func leafNames(n *schema.Node) []string {
	var out []string
	var rec func(m *schema.Node)
	rec = func(m *schema.Node) {
		if m.IsLeaf() {
			out = append(out, m.Name)
			return
		}
		for _, c := range m.Children() {
			rec(c)
		}
	}
	rec(n)
	return out
}

// nameListSimilarity greedily pairs each name of the shorter list with its
// most similar unused counterpart in the longer one and averages the pair
// scores over the longer list, so unmatched names dilute the score.
func nameListSimilarity(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	used := make([]bool, len(b))
	total := 0.0
	for _, x := range a {
		best, bestJ := 0.0, -1
		for j, y := range b {
			if used[j] {
				continue
			}
			if s := strsim.CompareStringFuzzy(x, y); s > best {
				best, bestJ = s, j
			}
		}
		if bestJ >= 0 {
			used[bestJ] = true
		}
		total += best
	}
	return total / float64(len(b))
}

// Rescore returns a copy of the candidates where each pair's similarity is
// blended with a structure matcher's score:
//
//	sim' = (1−w)·sim + w·structure(p, r)
//
// Used by the two-phase clustered matching technique: cheap localized
// matchers produce the preliminary candidates, clustering partitions them,
// and the expensive structure matcher refines only the candidates inside
// each cluster. keep drops rescored pairs whose node is not accepted
// (pass nil to keep all).
func Rescore(c *Candidates, structure Matcher, weight float64, keep func(*schema.Node) bool) *Candidates {
	if weight < 0 || weight > 1 {
		panic("matcher: Rescore weight outside [0,1]")
	}
	out := &Candidates{Personal: c.Personal, Sets: make([]CandidateSet, len(c.Sets))}
	for i := range c.Sets {
		src := &c.Sets[i]
		dst := &out.Sets[i]
		dst.Personal = src.Personal
		for _, cand := range src.Elems {
			if keep != nil && !keep(cand.Node) {
				continue
			}
			s := (1-weight)*cand.Sim + weight*structure.Similarity(src.Personal, cand.Node)
			dst.Elems = append(dst.Elems, Candidate{Node: cand.Node, Sim: s})
		}
		sortCandidates(dst.Elems)
	}
	return out
}

func sortCandidates(elems []Candidate) {
	// insertion sort: rescored lists are mostly ordered already and small
	for i := 1; i < len(elems); i++ {
		for j := i; j > 0; j-- {
			a, b := &elems[j-1], &elems[j]
			if b.Sim > a.Sim || (b.Sim == a.Sim && b.Node.ID < a.Node.ID) {
				*a, *b = *b, *a
			} else {
				break
			}
		}
	}
}
