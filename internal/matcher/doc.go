// Package matcher implements step ② of the common schema-matching
// architecture (Fig. 2 of the paper): element matchers that cross-compare
// every personal-schema element with every repository element and emit the
// sets of mapping elements MEn (step ③).
//
// Matchers are divided, as in the paper, into localized matchers (name,
// synonym, datatype — local node properties only) and structure matchers
// (path, child and leaf context), which the pipeline applies in the
// two-phase configuration to rescore candidates inside each cluster.
// Scores from several matchers are combined with a weighted average
// (Combined), the combining technique of COMA/LSD.
//
// # Concurrency
//
// Every matcher in this package is immutable after construction (the
// SynonymMatcher's dictionary is mutable only through AddGroup, which
// callers invoke during setup) and safe for concurrent Similarity calls —
// FindCandidates may be running on many goroutines against one matcher at
// once. Candidates values returned by FindCandidates are read-only
// snapshots; Rescore builds a new Candidates rather than mutating its
// input. Custom Matcher implementations supplied through
// pipeline.Options.Matcher must offer the same guarantee when used with
// the serve package, whose worker pools share one Options value.
package matcher
