package matcher

import (
	"testing"

	"bellflower/internal/schema"
)

func tree(spec string) *schema.Tree { return schema.MustParseSpec(spec) }

func TestPathContextMatcher(t *testing.T) {
	m := PathContextMatcher{}
	a := tree("lib(book(title))")
	b := tree("library(book(title))")
	c := tree("zoo(animal(cage))")

	same := m.Similarity(a.Find("title"), b.Find("title"))
	diff := m.Similarity(a.Find("title"), c.Find("cage"))
	if same <= diff {
		t.Errorf("path context ordering: same=%v diff=%v", same, diff)
	}
	if got := m.Similarity(a.Find("title"), a.Find("title")); got != 1 {
		t.Errorf("identical path similarity = %v", got)
	}
	// Different depths: title under lib/book vs top-level title.
	d := tree("title")
	partial := m.Similarity(a.Find("title"), d.Root())
	if partial <= 0 || partial >= 1 {
		t.Errorf("partial path similarity = %v, want strictly between 0 and 1", partial)
	}
}

func TestChildContextMatcher(t *testing.T) {
	m := ChildContextMatcher{}
	a := tree("book(title,author,isbn)")
	b := tree("publication(title,author,year)")
	c := tree("animal(species,cage)")

	close := m.Similarity(a.Root(), b.Root())
	far := m.Similarity(a.Root(), c.Root())
	if close <= far {
		t.Errorf("child context ordering: close=%v far=%v", close, far)
	}
	// two leaves
	if got := m.Similarity(a.Find("title"), b.Find("title")); got != 1 {
		t.Errorf("leaf-leaf = %v, want 1", got)
	}
	// leaf vs container: neutral
	if got := m.Similarity(a.Find("title"), b.Root()); got != 0.5 {
		t.Errorf("leaf-container = %v, want 0.5", got)
	}
}

func TestLeafContextMatcher(t *testing.T) {
	m := LeafContextMatcher{}
	a := tree("book(info(title,author),isbn)")
	b := tree("volume(title,author,isbn)") // same leaves, different shape
	c := tree("zoo(animal(species),cage)")

	same := m.Similarity(a.Root(), b.Root())
	diff := m.Similarity(a.Root(), c.Root())
	if same < 0.9 {
		t.Errorf("same-leaves similarity = %v, want ~1", same)
	}
	if diff >= same {
		t.Errorf("leaf context ordering: same=%v diff=%v", same, diff)
	}
}

func TestNameListSimilarity(t *testing.T) {
	cases := []struct {
		a, b []string
		lo   float64
		hi   float64
	}{
		{nil, nil, 1, 1},
		{[]string{"x"}, nil, 0, 0},
		{[]string{"a", "b"}, []string{"a", "b"}, 1, 1},
		{[]string{"a", "b"}, []string{"b", "a"}, 1, 1},             // order-free
		{[]string{"title"}, []string{"title", "author"}, 0.5, 0.6}, // dilution
	}
	for _, tc := range cases {
		got := nameListSimilarity(tc.a, tc.b)
		if got < tc.lo-1e-9 || got > tc.hi+1e-9 {
			t.Errorf("nameListSimilarity(%v,%v) = %v, want in [%v,%v]", tc.a, tc.b, got, tc.lo, tc.hi)
		}
		// symmetry
		if rev := nameListSimilarity(tc.b, tc.a); rev != got {
			t.Errorf("nameListSimilarity not symmetric for %v,%v", tc.a, tc.b)
		}
	}
}

func TestRescore(t *testing.T) {
	personal := tree("book(title)")
	repo := schema.NewRepository()
	repo.MustAdd(tree("lib(book(title),title)"))
	cands := FindCandidates(personal, repo, NameMatcher{}, Config{MinSim: 0.5})

	// weight 0: identity
	same := Rescore(cands, PathContextMatcher{}, 0, nil)
	for i := range cands.Sets {
		if len(same.Sets[i].Elems) != len(cands.Sets[i].Elems) {
			t.Fatalf("weight-0 rescore changed set %d size", i)
		}
		for j, c := range cands.Sets[i].Elems {
			if same.Sets[i].Elems[j].Sim != c.Sim {
				t.Errorf("weight-0 rescore changed sim")
			}
		}
	}

	// weight 1: pure structure — the nested title (under book, like the
	// personal schema's) must outrank the stray top-level title.
	structural := Rescore(cands, PathContextMatcher{}, 1, nil)
	titleSet := structural.Set(personal.Find("title"))
	if len(titleSet.Elems) < 2 {
		t.Fatalf("title candidates = %d", len(titleSet.Elems))
	}
	best := titleSet.Elems[0].Node
	if best.Parent() == nil || best.Parent().Name != "book" {
		t.Errorf("structure rescoring should prefer the nested title, got %v", best.PathString())
	}
	// sorted descending
	for j := 1; j < len(titleSet.Elems); j++ {
		if titleSet.Elems[j].Sim > titleSet.Elems[j-1].Sim {
			t.Errorf("rescored candidates not sorted")
		}
	}

	// keep filter drops nodes
	none := Rescore(cands, PathContextMatcher{}, 0.5, func(*schema.Node) bool { return false })
	for i := range none.Sets {
		if len(none.Sets[i].Elems) != 0 {
			t.Errorf("keep=false left candidates in set %d", i)
		}
	}
}

func TestRescorePanicsOnBadWeight(t *testing.T) {
	personal := tree("a")
	repo := schema.NewRepository()
	repo.MustAdd(tree("a"))
	cands := FindCandidates(personal, repo, NameMatcher{}, Config{})
	defer func() {
		if recover() == nil {
			t.Errorf("bad weight should panic")
		}
	}()
	Rescore(cands, PathContextMatcher{}, 2, nil)
}
