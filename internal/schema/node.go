// Package schema defines the schema-graph data model from Def. 1 of the
// paper: labelled trees whose nodes carry (property, value) pairs such as
// element names and datatypes. A personal schema is a single Tree; a
// repository is a forest of Trees.
//
// The package also provides construction (Builder, ParseSpec), traversal,
// validation and serialization utilities that the rest of the system builds
// on. All structures are immutable after Tree.freeze; concurrent readers
// need no locking.
package schema

import "fmt"

// NodeKind distinguishes XML element nodes from attribute nodes. Attributes
// are modelled as leaf children of their owning element, mirroring how the
// paper counts "element (attribute) nodes".
type NodeKind uint8

const (
	// KindElement is an XML element declaration.
	KindElement NodeKind = iota
	// KindAttribute is an XML attribute declaration.
	KindAttribute
)

// String returns "element" or "attribute".
func (k NodeKind) String() string {
	switch k {
	case KindElement:
		return "element"
	case KindAttribute:
		return "attribute"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Node is a single schema element or attribute. Nodes are created through a
// Builder and are owned by exactly one Tree. The exported index fields are
// assigned when the tree is frozen and are stable for the lifetime of the
// tree.
type Node struct {
	// ID is the node's position in Repository.Nodes once the tree has been
	// added to a repository, or -1 before that. It uniquely identifies the
	// node within a repository.
	ID int

	// Name is the element or attribute name (the paper's name property).
	Name string

	// Kind says whether the node is an element or an attribute.
	Kind NodeKind

	// Type is the declared datatype ("string", "integer", ...); empty when
	// unknown. Only used by the optional datatype matcher.
	Type string

	// Pre is the node's preorder rank within its tree (root = 0).
	Pre int

	// Post is the node's postorder rank within its tree.
	Post int

	// Depth is the number of edges from the tree root (root = 0).
	Depth int

	parent   *Node
	children []*Node
	tree     *Tree
	sub      int // subtree size (including the node itself); set at freeze
}

// Parent returns the node's parent, or nil for a tree root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the node's children in document order. The returned slice
// must not be modified.
func (n *Node) Children() []*Node { return n.children }

// Tree returns the tree that owns the node.
func (n *Node) Tree() *Tree { return n.tree }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// IsRoot reports whether the node is the root of its tree.
func (n *Node) IsRoot() bool { return n.parent == nil }

// NumDescendants returns the number of proper descendants of the node.
func (n *Node) NumDescendants() int { return n.sub - 1 }

// SubtreeSize returns the number of nodes in the subtree rooted at n,
// including n itself. The subtree occupies the preorder interval
// [Pre, Pre+SubtreeSize()) within its tree.
func (n *Node) SubtreeSize() int { return n.sub }

// IsAncestorOf reports whether n is a proper ancestor of m. Both nodes must
// belong to the same tree; nodes of different trees are never related.
func (n *Node) IsAncestorOf(m *Node) bool {
	if n.tree != m.tree || n == m {
		return false
	}
	return n.Pre < m.Pre && n.Post > m.Post
}

// Ancestors returns the chain of ancestors from the node's parent up to the
// tree root.
func (n *Node) Ancestors() []*Node {
	var out []*Node
	for p := n.parent; p != nil; p = p.parent {
		out = append(out, p)
	}
	return out
}

// Path returns the node names from the tree root down to the node, e.g.
// ["lib", "book", "title"].
func (n *Node) Path() []string {
	var rev []string
	for m := n; m != nil; m = m.parent {
		rev = append(rev, m.Name)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathString returns the slash-separated root-to-node name path, e.g.
// "/lib/book/title".
func (n *Node) PathString() string {
	parts := n.Path()
	out := ""
	for _, p := range parts {
		out += "/" + p
	}
	return out
}

// String renders the node as name#id for diagnostics.
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s#%d", n.Name, n.ID)
}
