package schema

import (
	"math/rand"
	"strings"
	"testing"
)

// Robustness: the parsers must return errors, never panic, on arbitrary
// malformed input. These are fuzz-style smoke tests over random byte
// strings and mutated valid inputs.

func randBytes(rng *rand.Rand, alphabet string, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}

func TestParseSpecNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := "ab,()@: \t\\\"'1-_."
	for i := 0; i < 2000; i++ {
		src := randBytes(rng, alphabet, rng.Intn(40))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseSpec(%q) panicked: %v", src, r)
				}
			}()
			tree, err := ParseSpec(src)
			if err == nil {
				if vErr := tree.Validate(); vErr != nil {
					t.Fatalf("ParseSpec(%q) returned invalid tree: %v", src, vErr)
				}
			}
		}()
	}
}

func TestReadRepositoryNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Mutate a valid serialization: truncations, byte flips, junk lines.
	r := NewRepository()
	r.MustAdd(MustParseSpec("lib(book(title,author),member(name))"))
	var base strings.Builder
	if err := WriteRepository(&base, r); err != nil {
		t.Fatal(err)
	}
	valid := base.String()
	for i := 0; i < 1500; i++ {
		src := valid
		switch rng.Intn(3) {
		case 0: // truncate
			src = src[:rng.Intn(len(src)+1)]
		case 1: // flip a byte
			if len(src) > 0 {
				pos := rng.Intn(len(src))
				src = src[:pos] + string(rune('!'+rng.Intn(90))) + src[pos+1:]
			}
		case 2: // inject a junk line
			lines := strings.Split(src, "\n")
			pos := rng.Intn(len(lines))
			lines[pos] = randBytes(rng, "0123456789 ea\"\\tree", rng.Intn(20))
			src = strings.Join(lines, "\n")
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadRepository panicked on %q: %v", src, r)
				}
			}()
			repo, err := ReadRepository(strings.NewReader(src))
			if err == nil {
				if vErr := repo.Validate(); vErr != nil {
					t.Fatalf("ReadRepository accepted invalid repo: %v", vErr)
				}
			}
		}()
	}
}
