package schema

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Tree is a rooted, ordered, labelled schema tree (the paper's schema graph
// restricted to trees, Sec. 2.1). Trees are built with a Builder and are
// immutable afterwards.
type Tree struct {
	// ID is the tree's index within its repository, or -1 if the tree has
	// not been added to a repository (e.g. a personal schema).
	ID int

	// Name is an optional label for the tree (file name, generator tag...).
	Name string

	root  *Node
	nodes []*Node // preorder
}

// Root returns the tree root.
func (t *Tree) Root() *Node { return t.root }

// Nodes returns all nodes of the tree in preorder. The returned slice must
// not be modified.
func (t *Tree) Nodes() []*Node { return t.nodes }

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int { return len(t.nodes) }

// NumEdges returns the number of edges of the tree (Len()-1 for non-empty
// trees).
func (t *Tree) NumEdges() int {
	if len(t.nodes) == 0 {
		return 0
	}
	return len(t.nodes) - 1
}

// NodeAt returns the node with the given preorder rank.
func (t *Tree) NodeAt(pre int) *Node { return t.nodes[pre] }

// MaxDepth returns the maximum node depth in the tree (0 for a single-node
// tree).
func (t *Tree) MaxDepth() int {
	max := 0
	for _, n := range t.nodes {
		if n.Depth > max {
			max = n.Depth
		}
	}
	return max
}

// FindAll returns all nodes in the tree whose name equals name.
func (t *Tree) FindAll(name string) []*Node {
	var out []*Node
	for _, n := range t.nodes {
		if n.Name == name {
			out = append(out, n)
		}
	}
	return out
}

// Find returns the first (preorder) node whose name equals name, or nil.
func (t *Tree) Find(name string) *Node {
	for _, n := range t.nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Distance returns the number of edges on the unique path between a and b,
// both of which must belong to the tree. It walks parent pointers; callers
// that need many distance computations should use the labeling package
// instead.
func (t *Tree) Distance(a, b *Node) int {
	if a.tree != t || b.tree != t {
		panic("schema: Distance called with foreign node")
	}
	d := 0
	for a.Depth > b.Depth {
		a = a.parent
		d++
	}
	for b.Depth > a.Depth {
		b = b.parent
		d++
	}
	for a != b {
		a, b = a.parent, b.parent
		d += 2
	}
	return d
}

// PathBetween returns the nodes on the unique path from a to b inclusive.
func (t *Tree) PathBetween(a, b *Node) []*Node {
	if a.tree != t || b.tree != t {
		panic("schema: PathBetween called with foreign node")
	}
	var up, down []*Node
	x, y := a, b
	for x.Depth > y.Depth {
		up = append(up, x)
		x = x.parent
	}
	for y.Depth > x.Depth {
		down = append(down, y)
		y = y.parent
	}
	for x != y {
		up = append(up, x)
		down = append(down, y)
		x, y = x.parent, y.parent
	}
	up = append(up, x)
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// String renders the tree in compact spec syntax (see ParseSpec).
func (t *Tree) String() string {
	if t.root == nil {
		return "()"
	}
	var b strings.Builder
	writeSpec(&b, t.root)
	return b.String()
}

func writeSpec(b *strings.Builder, n *Node) {
	b.WriteString(n.Name)
	if n.Kind == KindAttribute {
		b.WriteString("@")
	}
	if len(n.children) == 0 {
		return
	}
	b.WriteString("(")
	for i, c := range n.children {
		if i > 0 {
			b.WriteString(",")
		}
		writeSpec(b, c)
	}
	b.WriteString(")")
}

// Validate checks the structural invariants of the tree: exactly one root,
// consistent parent/child links, correct pre/post/depth/subtree labels and
// node ownership. It returns nil when the tree is well formed. It exists so
// that tests (including property-based tests) can assert internal
// consistency after every construction path.
func (t *Tree) Validate() error {
	if t.root == nil {
		return errors.New("schema: tree has no root")
	}
	if t.root.parent != nil {
		return errors.New("schema: root has a parent")
	}
	if len(t.nodes) == 0 || t.nodes[0] != t.root {
		return errors.New("schema: nodes[0] is not the root")
	}
	seen := make(map[*Node]bool, len(t.nodes))
	for pre, n := range t.nodes {
		if n.tree != t {
			return fmt.Errorf("schema: node %v owned by foreign tree", n)
		}
		if seen[n] {
			return fmt.Errorf("schema: node %v listed twice", n)
		}
		seen[n] = true
		if n.Pre != pre {
			return fmt.Errorf("schema: node %v has Pre=%d, want %d", n, n.Pre, pre)
		}
		if n.parent != nil {
			if n.parent.tree != t {
				return fmt.Errorf("schema: parent of %v in foreign tree", n)
			}
			if n.Depth != n.parent.Depth+1 {
				return fmt.Errorf("schema: node %v depth %d, parent depth %d", n, n.Depth, n.parent.Depth)
			}
			found := false
			for _, c := range n.parent.children {
				if c == n {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("schema: node %v missing from parent's children", n)
			}
		} else if n != t.root {
			return fmt.Errorf("schema: non-root node %v has no parent", n)
		}
		size := 1
		for _, c := range n.children {
			if c.parent != n {
				return fmt.Errorf("schema: child %v of %v has wrong parent", c, n)
			}
			size += c.sub
		}
		if n.sub != size {
			return fmt.Errorf("schema: node %v subtree size %d, want %d", n, n.sub, size)
		}
	}
	// Postorder ranks must be a permutation consistent with ancestry.
	post := make([]int, len(t.nodes))
	for _, n := range t.nodes {
		if n.Post < 0 || n.Post >= len(t.nodes) {
			return fmt.Errorf("schema: node %v post rank %d out of range", n, n.Post)
		}
		post[n.Post]++
	}
	for i, c := range post {
		if c != 1 {
			return fmt.Errorf("schema: post rank %d used %d times", i, c)
		}
	}
	return nil
}

// Clone returns a deep copy of the tree that belongs to no repository.
func (t *Tree) Clone() *Tree {
	if t.root == nil {
		return &Tree{ID: -1, Name: t.Name}
	}
	b := NewBuilder(t.Name)
	var rec func(src *Node, dstParent *Node)
	rec = func(src *Node, dstParent *Node) {
		dst := b.add(dstParent, src.Name, src.Kind, src.Type)
		for _, c := range src.children {
			rec(c, dst)
		}
	}
	rec(t.root, nil)
	out, err := b.Tree()
	if err != nil {
		// A valid tree always clones into a valid tree.
		panic("schema: Clone produced invalid tree: " + err.Error())
	}
	return out
}

// Names returns the sorted set of distinct node names in the tree.
func (t *Tree) Names() []string {
	set := make(map[string]bool)
	for _, n := range t.nodes {
		set[n.Name] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
