package schema

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRepositoryRoundTrip(t *testing.T) {
	r := NewRepository()
	r.MustAdd(MustParseSpec("lib(address,book(authorName,data(title),shelf))"))
	r.MustAdd(MustParseSpec("person(name:string,age:integer,id@:token)"))
	r.MustAdd(MustParseSpec("solo"))

	var buf bytes.Buffer
	if err := WriteRepository(&buf, r); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := ReadRepository(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if back.NumTrees() != r.NumTrees() || back.Len() != r.Len() {
		t.Fatalf("size mismatch: %d/%d trees, %d/%d nodes",
			back.NumTrees(), r.NumTrees(), back.Len(), r.Len())
	}
	for i := range r.Nodes() {
		a, b := r.Node(i), back.Node(i)
		if a.Name != b.Name || a.Kind != b.Kind || a.Type != b.Type || a.Depth != b.Depth {
			t.Errorf("node %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i, tr := range r.Trees() {
		if back.Tree(i).Name != tr.Name {
			t.Errorf("tree %d name %q != %q", i, back.Tree(i).Name, tr.Name)
		}
		if back.Tree(i).String() != tr.String() {
			t.Errorf("tree %d structure differs", i)
		}
	}
}

func TestRepositoryRoundTripSpecialCharacters(t *testing.T) {
	r := NewRepository()
	b := NewBuilder(`tricky "name" with spaces`)
	root := b.Root(`we"ird`)
	b.TypedElement(root, "tab\there", `ty"pe`)
	r.MustAdd(b.MustTree())

	var buf bytes.Buffer
	if err := WriteRepository(&buf, r); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := ReadRepository(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if back.Tree(0).Name != `tricky "name" with spaces` {
		t.Errorf("tree name = %q", back.Tree(0).Name)
	}
	if back.Node(0).Name != `we"ird` || back.Node(1).Name != "tab\there" {
		t.Errorf("node names = %q, %q", back.Node(0).Name, back.Node(1).Name)
	}
	if back.Node(1).Type != `ty"pe` {
		t.Errorf("node type = %q", back.Node(1).Type)
	}
}

func TestReadRepositoryErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "not-a-repo\n",
		"node first":    "bellflower-repository 1\n0 e \"a\"\n",
		"bad depth":     "bellflower-repository 1\ntree \"t\"\nx e \"a\"\n",
		"bad kind":      "bellflower-repository 1\ntree \"t\"\n0 q \"a\"\n",
		"skip depth":    "bellflower-repository 1\ntree \"t\"\n0 e \"a\"\n2 e \"b\"\n",
		"attr root":     "bellflower-repository 1\ntree \"t\"\n0 a \"a\"\n",
		"unquoted":      "bellflower-repository 1\ntree \"t\"\n0 e a\n",
		"no trees":      "bellflower-repository 1\n",
		"second root":   "bellflower-repository 1\ntree \"t\"\n0 e \"a\"\n0 e \"b\"\n",
		"bad tree name": "bellflower-repository 1\ntree noquotes\n",
		"trailing junk": "bellflower-repository 1\ntree \"t\"\n0 e \"a\" \"ty\" extra\n",
	}
	for name, src := range cases {
		if _, err := ReadRepository(strings.NewReader(src)); err == nil {
			t.Errorf("%s: error expected", name)
		}
	}
}

// Property: write→read is the identity on structure for random forests.
func TestRepositoryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRepository()
		for i := 0; i < 1+rng.Intn(4); i++ {
			r.MustAdd(randomTree(rng, 1+rng.Intn(40)))
		}
		var buf bytes.Buffer
		if err := WriteRepository(&buf, r); err != nil {
			return false
		}
		back, err := ReadRepository(&buf)
		if err != nil || back.Validate() != nil {
			return false
		}
		if back.Len() != r.Len() || back.NumTrees() != r.NumTrees() {
			return false
		}
		for i, tr := range r.Trees() {
			if back.Tree(i).String() != tr.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
