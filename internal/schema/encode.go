package schema

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The repository text format is line-oriented and diff-friendly:
//
//	bellflower-repository 1
//	tree <name>
//	<depth> <kind> <name> [<type>]
//	...
//
// Node lines appear in preorder; depth is the node's depth (root = 0),
// kind is "e" (element) or "a" (attribute). Names and types are quoted
// with strconv so arbitrary characters round-trip.

const encodeHeader = "bellflower-repository 1"

// WriteRepository serializes the repository to w in the line-oriented text
// format. Large repositories load orders of magnitude faster from this
// format than by re-parsing the original XSD/DTD files.
func WriteRepository(w io.Writer, r *Repository) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, encodeHeader)
	for _, t := range r.Trees() {
		fmt.Fprintf(bw, "tree %s\n", strconv.Quote(t.Name))
		for _, n := range t.Nodes() {
			kind := "e"
			if n.Kind == KindAttribute {
				kind = "a"
			}
			if n.Type != "" {
				fmt.Fprintf(bw, "%d %s %s %s\n", n.Depth, kind, strconv.Quote(n.Name), strconv.Quote(n.Type))
			} else {
				fmt.Fprintf(bw, "%d %s %s\n", n.Depth, kind, strconv.Quote(n.Name))
			}
		}
	}
	return bw.Flush()
}

// ReadRepository parses the text format written by WriteRepository.
func ReadRepository(r io.Reader) (*Repository, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, errors.New("schema: empty repository stream")
	}
	if sc.Text() != encodeHeader {
		return nil, fmt.Errorf("schema: bad repository header %q", sc.Text())
	}
	repo := NewRepository()
	var (
		b     *Builder
		stack []*Node // stack[d] = last node at depth d
		line  = 1
	)
	flush := func() error {
		if b == nil {
			return nil
		}
		t, err := b.Tree()
		if err != nil {
			return err
		}
		b = nil
		stack = stack[:0]
		return repo.Add(t)
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(text, "tree "); ok {
			if err := flush(); err != nil {
				return nil, err
			}
			name, err := strconv.Unquote(strings.TrimSpace(rest))
			if err != nil {
				return nil, fmt.Errorf("schema: line %d: bad tree name: %v", line, err)
			}
			b = NewBuilder(name)
			continue
		}
		if b == nil {
			return nil, fmt.Errorf("schema: line %d: node before any tree header", line)
		}
		depth, kind, name, typ, err := parseNodeLine(text)
		if err != nil {
			return nil, fmt.Errorf("schema: line %d: %v", line, err)
		}
		if depth > len(stack) || (depth == 0 && len(stack) > 0) {
			return nil, fmt.Errorf("schema: line %d: depth %d does not follow preorder", line, depth)
		}
		var n *Node
		switch {
		case depth == 0:
			if kind == KindAttribute {
				return nil, fmt.Errorf("schema: line %d: root cannot be an attribute", line)
			}
			n = b.Root(name)
			n.Type = typ
		case kind == KindAttribute:
			n = b.TypedAttribute(stack[depth-1], name, typ)
		default:
			n = b.TypedElement(stack[depth-1], name, typ)
		}
		stack = append(stack[:depth], n)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if repo.NumTrees() == 0 {
		return nil, errors.New("schema: repository stream contains no trees")
	}
	return repo, nil
}

func parseNodeLine(text string) (depth int, kind NodeKind, name, typ string, err error) {
	sp := strings.IndexByte(text, ' ')
	if sp < 0 {
		return 0, 0, "", "", fmt.Errorf("malformed node line %q", text)
	}
	depth, err = strconv.Atoi(text[:sp])
	if err != nil || depth < 0 {
		return 0, 0, "", "", fmt.Errorf("bad depth in %q", text)
	}
	rest := strings.TrimSpace(text[sp+1:])
	switch {
	case strings.HasPrefix(rest, "e "):
		kind = KindElement
	case strings.HasPrefix(rest, "a "):
		kind = KindAttribute
	default:
		return 0, 0, "", "", fmt.Errorf("bad node kind in %q", text)
	}
	rest = strings.TrimSpace(rest[2:])
	name, rest, err = unquoteToken(rest)
	if err != nil {
		return 0, 0, "", "", fmt.Errorf("bad name in %q: %v", text, err)
	}
	rest = strings.TrimSpace(rest)
	if rest != "" {
		typ, rest, err = unquoteToken(rest)
		if err != nil || strings.TrimSpace(rest) != "" {
			return 0, 0, "", "", fmt.Errorf("bad type in %q", text)
		}
	}
	return depth, kind, name, typ, nil
}

// unquoteToken consumes one leading Go-quoted string from s.
func unquoteToken(s string) (val, rest string, err error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", errors.New("expected quoted token")
	}
	// Find the closing quote, honouring backslash escapes.
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			val, err = strconv.Unquote(s[:i+1])
			return val, s[i+1:], err
		}
	}
	return "", "", errors.New("unterminated quoted token")
}
