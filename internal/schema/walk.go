package schema

// Walk visits every node of the tree in preorder, calling fn. If fn returns
// false the node's subtree is skipped (the walk continues with the next
// sibling).
func Walk(t *Tree, fn func(n *Node) bool) {
	if t.root == nil {
		return
	}
	walkNode(t.root, fn)
}

func walkNode(n *Node, fn func(n *Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.children {
		walkNode(c, fn)
	}
}

// WalkRepository visits every node of every tree in the forest in ID order.
func WalkRepository(r *Repository, fn func(n *Node) bool) {
	for _, t := range r.trees {
		Walk(t, fn)
	}
}

// Leaves returns the leaves of the tree in preorder.
func Leaves(t *Tree) []*Node {
	var out []*Node
	Walk(t, func(n *Node) bool {
		if n.IsLeaf() {
			out = append(out, n)
		}
		return true
	})
	return out
}

// LCA returns the lowest common ancestor of a and b by walking parent
// pointers. Both must belong to the same tree. The labeling package offers
// an O(1) alternative for hot paths.
func LCA(a, b *Node) *Node {
	if a.tree != b.tree {
		panic("schema: LCA of nodes in different trees")
	}
	for a.Depth > b.Depth {
		a = a.parent
	}
	for b.Depth > a.Depth {
		b = b.parent
	}
	for a != b {
		a, b = a.parent, b.parent
	}
	return a
}
