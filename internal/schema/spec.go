package schema

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseSpec builds a tree from a compact textual specification:
//
//	book(title,author(first,last),isbn@)
//
// Parentheses nest children; a trailing '@' marks an attribute; an optional
// ':type' suffix declares a datatype, e.g. "price:decimal". Whitespace
// between tokens is ignored. The syntax round-trips with Tree.String (minus
// types).
func ParseSpec(spec string) (*Tree, error) {
	p := &specParser{src: spec}
	b := NewBuilder(spec)
	if err := p.parseNode(b, nil); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("schema: trailing input at offset %d in %q", p.pos, spec)
	}
	return b.Tree()
}

// MustParseSpec is ParseSpec but panics on error; for tests and fixtures.
func MustParseSpec(spec string) *Tree {
	t, err := ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	return t
}

type specParser struct {
	src string
	pos int
}

func (p *specParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *specParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *specParser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("schema: expected name at offset %d in %q", p.pos, p.src)
	}
	return p.src[start:p.pos], nil
}

// parseNode parses name[@][:type][(child,...)] and attaches it under parent
// (nil parent = root).
func (p *specParser) parseNode(b *Builder, parent *Node) error {
	name, err := p.name()
	if err != nil {
		return err
	}
	kind := KindElement
	if p.peek() == '@' {
		kind = KindAttribute
		p.pos++
	}
	typ := ""
	if p.peek() == ':' {
		p.pos++
		typ, err = p.name()
		if err != nil {
			return err
		}
	}
	var n *Node
	switch kind {
	case KindAttribute:
		if parent == nil {
			return fmt.Errorf("schema: root cannot be an attribute in %q", p.src)
		}
		n = b.TypedAttribute(parent, name, typ)
	default:
		if parent == nil {
			n = b.Root(name)
			n.Type = typ
		} else {
			n = b.TypedElement(parent, name, typ)
		}
	}
	p.skipSpace()
	if p.peek() != '(' {
		return nil
	}
	if kind == KindAttribute {
		return fmt.Errorf("schema: attribute %q cannot have children", name)
	}
	p.pos++ // consume '('
	for {
		if err := p.parseNode(b, n); err != nil {
			return err
		}
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return nil
		default:
			return fmt.Errorf("schema: expected ',' or ')' at offset %d in %q", p.pos, p.src)
		}
	}
}

// FormatIndented renders the tree as an indented outline, one node per line,
// for human inspection:
//
//	book
//	  title
//	  author
//	    first
//	    last
func FormatIndented(t *Tree) string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if n.Kind == KindAttribute {
			b.WriteString("@")
		}
		b.WriteString(n.Name)
		if n.Type != "" {
			b.WriteString(":")
			b.WriteString(n.Type)
		}
		b.WriteString("\n")
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	if t.Root() != nil {
		rec(t.Root(), 0)
	}
	return b.String()
}
