package schema

import (
	"errors"
	"fmt"
)

// Repository is a forest of schema trees — the paper's large schema
// repository R. Node IDs are assigned densely across the whole forest when a
// tree is added, so per-node auxiliary arrays (labels, candidate marks,
// cluster assignments) can be indexed by Node.ID.
type Repository struct {
	trees []*Tree
	nodes []*Node
}

// NewRepository returns an empty repository.
func NewRepository() *Repository { return &Repository{} }

// Add inserts a tree into the repository, assigning the tree ID and dense
// node IDs. A tree can belong to at most one repository; adding it twice or
// adding it to two repositories is an error.
func (r *Repository) Add(t *Tree) error {
	if t == nil || t.root == nil {
		return errors.New("schema: cannot add empty tree")
	}
	if t.ID >= 0 {
		return fmt.Errorf("schema: tree %q already belongs to a repository", t.Name)
	}
	t.ID = len(r.trees)
	r.trees = append(r.trees, t)
	for _, n := range t.nodes {
		n.ID = len(r.nodes)
		r.nodes = append(r.nodes, n)
	}
	return nil
}

// MustAdd is Add but panics on error.
func (r *Repository) MustAdd(t *Tree) {
	if err := r.Add(t); err != nil {
		panic(err)
	}
}

// Trees returns the repository's trees in insertion order. The returned
// slice must not be modified.
func (r *Repository) Trees() []*Tree { return r.trees }

// Tree returns the tree with the given ID.
func (r *Repository) Tree(id int) *Tree { return r.trees[id] }

// NumTrees returns the number of trees in the repository.
func (r *Repository) NumTrees() int { return len(r.trees) }

// Nodes returns every node of the forest; Nodes()[id].ID == id. The returned
// slice must not be modified.
func (r *Repository) Nodes() []*Node { return r.nodes }

// Node returns the node with the given repository-wide ID.
func (r *Repository) Node(id int) *Node { return r.nodes[id] }

// Len returns the total number of nodes across all trees.
func (r *Repository) Len() int { return len(r.nodes) }

// Validate checks every tree and the dense ID assignment.
func (r *Repository) Validate() error {
	want := 0
	for i, t := range r.trees {
		if t.ID != i {
			return fmt.Errorf("schema: tree %q has ID %d, want %d", t.Name, t.ID, i)
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("schema: tree %d: %w", i, err)
		}
		for _, n := range t.nodes {
			if n.ID != want {
				return fmt.Errorf("schema: node %v has ID %d, want %d", n, n.ID, want)
			}
			if r.nodes[n.ID] != n {
				return fmt.Errorf("schema: nodes[%d] mismatch", n.ID)
			}
			want++
		}
	}
	if want != len(r.nodes) {
		return fmt.Errorf("schema: repository has %d nodes, trees account for %d", len(r.nodes), want)
	}
	return nil
}

// Stats summarizes a repository for reporting.
type Stats struct {
	Trees    int // number of trees
	Nodes    int // total element+attribute nodes
	MaxDepth int // deepest node across all trees
	MaxTree  int // size of the largest tree
	MinTree  int // size of the smallest tree
}

// Stats computes summary statistics over the forest.
func (r *Repository) Stats() Stats {
	s := Stats{Trees: len(r.trees), Nodes: len(r.nodes)}
	for i, t := range r.trees {
		if d := t.MaxDepth(); d > s.MaxDepth {
			s.MaxDepth = d
		}
		if l := t.Len(); l > s.MaxTree {
			s.MaxTree = l
		}
		if l := t.Len(); i == 0 || l < s.MinTree {
			s.MinTree = l
		}
	}
	return s
}
