package schema

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("books")
	book := b.Root("book")
	title := b.Element(book, "title")
	author := b.Element(book, "author")
	first := b.Element(author, "first")
	id := b.Attribute(author, "id")
	tr, err := b.Tree()
	if err != nil {
		t.Fatalf("Tree: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Len() != 5 {
		t.Errorf("Len = %d, want 5", tr.Len())
	}
	if tr.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", tr.NumEdges())
	}
	if tr.Root() != book {
		t.Errorf("Root = %v, want book", tr.Root())
	}
	if book.Pre != 0 || book.Depth != 0 {
		t.Errorf("book labels Pre=%d Depth=%d, want 0,0", book.Pre, book.Depth)
	}
	if title.Depth != 1 || first.Depth != 2 {
		t.Errorf("depths title=%d first=%d, want 1,2", title.Depth, first.Depth)
	}
	if id.Kind != KindAttribute || !id.IsLeaf() {
		t.Errorf("id should be a leaf attribute")
	}
	if author.SubtreeSize() != 3 {
		t.Errorf("author subtree size = %d, want 3", author.SubtreeSize())
	}
	if !book.IsAncestorOf(first) || first.IsAncestorOf(book) {
		t.Errorf("ancestry wrong for book/first")
	}
	if book.IsAncestorOf(book) {
		t.Errorf("node must not be its own ancestor")
	}
	if got := first.PathString(); got != "/book/author/first" {
		t.Errorf("PathString = %q", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("x")
	if _, err := b.Tree(); err == nil {
		t.Errorf("Tree on empty builder should fail")
	}

	b2 := NewBuilder("y")
	b2.Root("r")
	if _, err := b2.Tree(); err != nil {
		t.Fatalf("Tree: %v", err)
	}
	if _, err := b2.Tree(); err == nil {
		t.Errorf("second Tree call should fail")
	}

	mustPanic(t, "double root", func() {
		b := NewBuilder("z")
		b.Root("a")
		b.Root("b")
	})
	mustPanic(t, "child of attribute", func() {
		b := NewBuilder("z")
		r := b.Root("a")
		at := b.Attribute(r, "x")
		b.Element(at, "y")
	})
	mustPanic(t, "use after Tree", func() {
		b := NewBuilder("z")
		r := b.Root("a")
		b.MustTree()
		b.Element(r, "y")
	})
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestParseSpec(t *testing.T) {
	tests := []struct {
		spec  string
		nodes int
		str   string // expected round-trip (empty = same as spec)
	}{
		{"book", 1, ""},
		{"book(title,author)", 3, ""},
		{"book(title,author(first,last),isbn@)", 6, ""},
		{"a(b(c(d(e))))", 5, ""},
		{" a ( b , c ) ", 3, "a(b,c)"},
		{"person(name:string,age:integer)", 3, "person(name,age)"},
	}
	for _, tc := range tests {
		tr, err := ParseSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("ParseSpec(%q).Validate: %v", tc.spec, err)
		}
		if tr.Len() != tc.nodes {
			t.Errorf("ParseSpec(%q).Len = %d, want %d", tc.spec, tr.Len(), tc.nodes)
		}
		want := tc.str
		if want == "" {
			want = tc.spec
		}
		if got := tr.String(); got != want {
			t.Errorf("ParseSpec(%q).String = %q, want %q", tc.spec, got, want)
		}
	}
}

func TestParseSpecTypes(t *testing.T) {
	tr := MustParseSpec("person(name:string,age:integer,id@:token)")
	if got := tr.Find("name").Type; got != "string" {
		t.Errorf("name type = %q", got)
	}
	if got := tr.Find("age").Type; got != "integer" {
		t.Errorf("age type = %q", got)
	}
	id := tr.Find("id")
	if id.Kind != KindAttribute || id.Type != "token" {
		t.Errorf("id = %v kind=%v type=%q", id, id.Kind, id.Type)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"", "(", "a(", "a(b", "a(b,,c)", "a)b", "a(b)c", "a@(b)", "@", "a(b@(c))",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): expected error", spec)
		}
	}
}

func TestRepositoryAdd(t *testing.T) {
	r := NewRepository()
	t1 := MustParseSpec("a(b,c)")
	t2 := MustParseSpec("x(y(z))")
	r.MustAdd(t1)
	r.MustAdd(t2)
	if r.NumTrees() != 2 || r.Len() != 6 {
		t.Fatalf("trees=%d nodes=%d, want 2,6", r.NumTrees(), r.Len())
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i, n := range r.Nodes() {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
	if err := r.Add(t1); err == nil {
		t.Errorf("adding a tree twice should fail")
	}
	if err := r.Add(nil); err == nil {
		t.Errorf("adding nil should fail")
	}
	st := r.Stats()
	if st.Trees != 2 || st.Nodes != 6 || st.MaxDepth != 2 || st.MaxTree != 3 || st.MinTree != 3 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestDistanceAndPath(t *testing.T) {
	tr := MustParseSpec("lib(address,book(authorName,data(title),shelf))")
	lib := tr.Find("lib")
	addr := tr.Find("address")
	title := tr.Find("title")
	shelf := tr.Find("shelf")
	an := tr.Find("authorName")

	tests := []struct {
		a, b *Node
		d    int
	}{
		{lib, lib, 0},
		{lib, addr, 1},
		{lib, title, 3},
		{addr, title, 4},
		{title, shelf, 3},
		{an, title, 3},
		{title, an, 3},
	}
	for _, tc := range tests {
		if got := tr.Distance(tc.a, tc.b); got != tc.d {
			t.Errorf("Distance(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.d)
		}
		path := tr.PathBetween(tc.a, tc.b)
		if len(path) != tc.d+1 {
			t.Errorf("PathBetween(%v,%v) has %d nodes, want %d", tc.a, tc.b, len(path), tc.d+1)
		}
		if path[0] != tc.a || path[len(path)-1] != tc.b {
			t.Errorf("PathBetween(%v,%v) endpoints wrong: %v", tc.a, tc.b, path)
		}
		// consecutive path nodes must be adjacent (parent/child)
		for i := 1; i < len(path); i++ {
			u, v := path[i-1], path[i]
			if u.Parent() != v && v.Parent() != u {
				t.Errorf("PathBetween(%v,%v): %v and %v not adjacent", tc.a, tc.b, u, v)
			}
		}
	}
}

func TestLCA(t *testing.T) {
	tr := MustParseSpec("r(a(x,y(q)),b(z))")
	get := func(name string) *Node { return tr.Find(name) }
	tests := []struct{ a, b, want string }{
		{"x", "q", "a"},
		{"x", "y", "a"},
		{"q", "z", "r"},
		{"a", "x", "a"},
		{"r", "z", "r"},
		{"q", "q", "q"},
	}
	for _, tc := range tests {
		if got := LCA(get(tc.a), get(tc.b)); got.Name != tc.want {
			t.Errorf("LCA(%s,%s) = %v, want %s", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestWalkSkipsSubtree(t *testing.T) {
	tr := MustParseSpec("r(a(x,y),b(z))")
	var visited []string
	Walk(tr, func(n *Node) bool {
		visited = append(visited, n.Name)
		return n.Name != "a" // skip a's children
	})
	want := "r a b z"
	if got := strings.Join(visited, " "); got != want {
		t.Errorf("Walk order = %q, want %q", got, want)
	}
}

func TestLeaves(t *testing.T) {
	tr := MustParseSpec("r(a(x,y),b(z),c)")
	var names []string
	for _, n := range Leaves(tr) {
		names = append(names, n.Name)
	}
	if got := strings.Join(names, " "); got != "x y z c" {
		t.Errorf("Leaves = %q", got)
	}
}

func TestClone(t *testing.T) {
	orig := MustParseSpec("book(title,author(first,last),isbn@)")
	cp := orig.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if cp.String() != orig.String() {
		t.Errorf("clone = %q, want %q", cp.String(), orig.String())
	}
	if cp.ID != -1 {
		t.Errorf("clone ID = %d, want -1", cp.ID)
	}
	// Clones must not share nodes.
	if cp.Root() == orig.Root() {
		t.Errorf("clone shares root with original")
	}
	if cp.Find("isbn").Kind != KindAttribute {
		t.Errorf("clone lost attribute kind")
	}
}

func TestNames(t *testing.T) {
	tr := MustParseSpec("b(a,c(a),b)")
	got := tr.Names()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Names = %v", got)
	}
}

// randomTree builds a random tree with n nodes for property tests.
func randomTree(rng *rand.Rand, n int) *Tree {
	if n < 1 {
		n = 1
	}
	b := NewBuilder("rand")
	nodes := []*Node{b.Root("n0")}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		var child *Node
		if rng.Intn(8) == 0 {
			// retry until parent is an element (attributes are leaves)
			for parent.Kind == KindAttribute {
				parent = nodes[rng.Intn(len(nodes))]
			}
			child = b.Attribute(parent, "a"+string(rune('a'+rng.Intn(26))))
		} else {
			for parent.Kind == KindAttribute {
				parent = nodes[rng.Intn(len(nodes))]
			}
			child = b.Element(parent, "e"+string(rune('a'+rng.Intn(26))))
		}
		nodes = append(nodes, child)
	}
	return b.MustTree()
}

func TestRandomTreesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		tr := randomTree(rng, 1+rng.Intn(60))
		if err := tr.Validate(); err != nil {
			t.Fatalf("random tree %d invalid: %v\n%s", i, err, FormatIndented(tr))
		}
	}
}

// Property: Distance is a metric on tree nodes (symmetric, zero iff equal,
// triangle inequality) and agrees with depth arithmetic through the LCA.
func TestDistanceMetricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 1+int(size)%50)
		ns := tr.Nodes()
		for trial := 0; trial < 10; trial++ {
			a := ns[rng.Intn(len(ns))]
			b := ns[rng.Intn(len(ns))]
			c := ns[rng.Intn(len(ns))]
			dab, dba := tr.Distance(a, b), tr.Distance(b, a)
			if dab != dba {
				return false
			}
			if (dab == 0) != (a == b) {
				return false
			}
			if dab > tr.Distance(a, c)+tr.Distance(c, b) {
				return false
			}
			l := LCA(a, b)
			if dab != a.Depth+b.Depth-2*l.Depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: spec rendering round-trips through ParseSpec.
func TestSpecRoundTripProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 1+int(size)%40)
		spec := tr.String()
		back, err := ParseSpec(spec)
		if err != nil {
			return false
		}
		return back.String() == spec && back.Len() == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: subtree sizes computed at freeze match a recount, and preorder
// intervals nest properly.
func TestSubtreeIntervalProperty(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 1+int(size)%50)
		for _, n := range tr.Nodes() {
			count := 0
			Walk(tr, func(m *Node) bool {
				if m == n || n.IsAncestorOf(m) {
					count++
				}
				return true
			})
			if count != n.SubtreeSize() {
				return false
			}
			// every descendant's Pre must fall in [n.Pre, n.Pre+size)
			for _, m := range tr.Nodes() {
				in := m.Pre >= n.Pre && m.Pre < n.Pre+n.SubtreeSize()
				if in != (m == n || n.IsAncestorOf(m)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
