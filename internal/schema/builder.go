package schema

import (
	"errors"
	"fmt"
)

// Builder constructs a Tree incrementally. The zero value is not usable; use
// NewBuilder. Builders are not safe for concurrent use.
//
//	b := schema.NewBuilder("books")
//	book := b.Root("book")
//	b.Element(book, "title")
//	author := b.Element(book, "author")
//	b.Attribute(author, "id")
//	t, err := b.Tree()
type Builder struct {
	name  string
	root  *Node
	count int
	done  bool
}

// NewBuilder returns a Builder for a tree with the given label.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// Root creates the root element. It panics if a root already exists.
func (b *Builder) Root(name string) *Node {
	if b.root != nil {
		panic("schema: Builder.Root called twice")
	}
	return b.add(nil, name, KindElement, "")
}

// Element appends an element child to parent and returns it.
func (b *Builder) Element(parent *Node, name string) *Node {
	return b.add(parent, name, KindElement, "")
}

// TypedElement appends an element child with a declared datatype.
func (b *Builder) TypedElement(parent *Node, name, typ string) *Node {
	return b.add(parent, name, KindElement, typ)
}

// Attribute appends an attribute child to parent and returns it. Attributes
// are always leaves; adding children to an attribute panics.
func (b *Builder) Attribute(parent *Node, name string) *Node {
	return b.add(parent, name, KindAttribute, "")
}

// TypedAttribute appends an attribute child with a declared datatype.
func (b *Builder) TypedAttribute(parent *Node, name, typ string) *Node {
	return b.add(parent, name, KindAttribute, typ)
}

func (b *Builder) add(parent *Node, name string, kind NodeKind, typ string) *Node {
	if b.done {
		panic("schema: Builder used after Tree()")
	}
	if parent == nil && b.root != nil {
		panic("schema: second root added")
	}
	if parent != nil && parent.Kind == KindAttribute {
		panic("schema: attribute node cannot have children")
	}
	n := &Node{ID: -1, Name: name, Kind: kind, Type: typ, parent: parent}
	if parent == nil {
		b.root = n
	} else {
		parent.children = append(parent.children, n)
	}
	b.count++
	return n
}

// Size returns the number of nodes added so far.
func (b *Builder) Size() int { return b.count }

// Tree finalizes the builder: it assigns preorder/postorder/depth/subtree
// labels and returns the immutable tree. The builder cannot be used
// afterwards.
func (b *Builder) Tree() (*Tree, error) {
	if b.done {
		return nil, errors.New("schema: Builder.Tree called twice")
	}
	if b.root == nil {
		return nil, errors.New("schema: tree has no root")
	}
	b.done = true
	t := &Tree{ID: -1, Name: b.name, root: b.root, nodes: make([]*Node, 0, b.count)}
	pre, post := 0, 0
	var rec func(n *Node, depth int) int
	rec = func(n *Node, depth int) int {
		n.tree = t
		n.Depth = depth
		n.Pre = pre
		pre++
		t.nodes = append(t.nodes, n)
		size := 1
		for _, c := range n.children {
			size += rec(c, depth+1)
		}
		n.sub = size
		n.Post = post
		post++
		return size
	}
	rec(b.root, 0)
	if len(t.nodes) != b.count {
		return nil, fmt.Errorf("schema: built %d nodes, labelled %d", b.count, len(t.nodes))
	}
	return t, nil
}

// MustTree is like Tree but panics on error; intended for tests and
// hand-written fixtures.
func (b *Builder) MustTree() *Tree {
	t, err := b.Tree()
	if err != nil {
		panic(err)
	}
	return t
}
