package objective

import (
	"math/rand"
	"testing"

	"bellflower/internal/labeling"
	"bellflower/internal/schema"
)

// randomTreeIndex builds a random single-tree repository and returns its
// index plus the node list.
func randomTreeIndex(rng *rand.Rand, size int) (*labeling.Index, []*schema.Node) {
	b := schema.NewBuilder("t")
	nodes := []*schema.Node{b.Root("root")}
	for i := 1; i < size; i++ {
		p := nodes[rng.Intn(len(nodes))]
		nodes = append(nodes, b.Element(p, "n"))
	}
	repo := schema.NewRepository()
	repo.MustAdd(b.MustTree())
	return labeling.NewIndex(repo), nodes
}

// Property: DenseEdgeUnion tracks exactly the same |Et| as the map-based
// EdgeUnion under a random DFS-shaped push/pop workload.
func TestDenseEdgeUnionMatchesEdgeUnion(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ix, nodes := randomTreeIndex(rng, 3+rng.Intn(40))
		dense := NewDenseEdgeUnion(ix)
		ref := NewEdgeUnion(ix)

		type frame struct {
			mark    int
			touched []int
		}
		var stack []frame
		for op := 0; op < 400; op++ {
			push := rng.Intn(3) != 0 // bias toward pushing, like a DFS descent
			if len(stack) == 0 || (push && len(stack) < 25) {
				a, b := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
				stack = append(stack, frame{dense.Push(a, b), ref.Push(a, b)})
			} else {
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				dense.Pop(f.mark)
				ref.Pop(f.touched)
			}
			if dense.Size() != ref.Size() {
				t.Fatalf("seed %d op %d: dense |Et| = %d, map |Et| = %d",
					seed, op, dense.Size(), ref.Size())
			}
		}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			dense.Pop(f.mark)
			ref.Pop(f.touched)
		}
		if dense.Size() != 0 {
			t.Fatalf("seed %d: drained union has size %d", seed, dense.Size())
		}
	}
}

func TestDenseEdgeUnionRetarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ix1, nodes1 := randomTreeIndex(rng, 10)
	ix2, nodes2 := randomTreeIndex(rng, 50)

	u := NewDenseEdgeUnion(ix1)
	mark := u.Push(nodes1[0], nodes1[len(nodes1)-1])
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Retarget on a non-empty union did not panic")
			}
		}()
		u.Retarget(ix2)
	}()
	u.Pop(mark)

	u.Retarget(ix2) // empty: allowed, grows to the larger repository
	m2 := u.Push(nodes2[0], nodes2[len(nodes2)-1])
	u.Pop(m2)
	if u.Size() != 0 {
		t.Errorf("size %d after retargeted push/pop", u.Size())
	}
}

func TestDenseEdgeUnionForeignMark(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ix, _ := randomTreeIndex(rng, 5)
	u := NewDenseEdgeUnion(ix)
	defer func() {
		if recover() == nil {
			t.Error("Pop with an out-of-range mark did not panic")
		}
	}()
	u.Pop(1)
}
