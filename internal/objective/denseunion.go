package objective

import (
	"bellflower/internal/labeling"
	"bellflower/internal/schema"
)

// DenseEdgeUnion is the allocation-free counterpart of EdgeUnion: the
// per-edge refcounts live in a dense int32 array indexed by node ID (an
// edge is identified by its child endpoint) and the undo information is an
// internal LIFO stack of touched IDs, addressed by integer marks instead
// of per-Push token slices. A warm Push/Pop cycle therefore allocates
// nothing — the property the pooled mapping-generation search state is
// built on.
//
// The push/pop discipline is strictly stack-like: Pop restores the union
// to the state at the mark a Push returned, and marks must be popped in
// reverse order of acquisition (exactly the depth-first search pattern).
// A DenseEdgeUnion is not safe for concurrent use; each search owns one.
type DenseEdgeUnion struct {
	ix    *labeling.Index
	count []int32
	stack []int32
	size  int
}

// NewDenseEdgeUnion returns an empty union sized for the index's
// repository.
func NewDenseEdgeUnion(ix *labeling.Index) *DenseEdgeUnion {
	u := &DenseEdgeUnion{}
	u.Retarget(ix)
	return u
}

// Retarget points an empty union at a (possibly different) index, growing
// the refcount array to that index's repository. The union must be empty —
// pooled search states call this when they are reused across repositories.
// It panics on a non-empty union, where silently rebinding would corrupt
// refcounts.
func (u *DenseEdgeUnion) Retarget(ix *labeling.Index) {
	if u.size != 0 || len(u.stack) != 0 {
		panic("objective: DenseEdgeUnion.Retarget on a non-empty union")
	}
	u.ix = ix
	if n := ix.Repository().Len(); n > len(u.count) {
		if n <= cap(u.count) {
			u.count = u.count[:n]
		} else {
			grown := make([]int32, n)
			copy(grown, u.count)
			u.count = grown
		}
	}
}

// Size returns the current |Et|.
func (u *DenseEdgeUnion) Size() int { return u.size }

// Push adds the path between a and b (same tree) and returns the mark to
// Pop back to.
func (u *DenseEdgeUnion) Push(a, b *schema.Node) int {
	mark := len(u.stack)
	l := u.ix.LCA(a, b)
	for n := a; n != l; n = n.Parent() {
		u.push(n.ID)
	}
	for n := b; n != l; n = n.Parent() {
		u.push(n.ID)
	}
	return mark
}

func (u *DenseEdgeUnion) push(id int) {
	u.stack = append(u.stack, int32(id))
	u.count[id]++
	if u.count[id] == 1 {
		u.size++
	}
}

// Pop restores the union to the state at mark, undoing every Push made
// since. It panics when mark does not address a prefix of the stack.
func (u *DenseEdgeUnion) Pop(mark int) {
	if mark < 0 || mark > len(u.stack) {
		panic("objective: DenseEdgeUnion.Pop with a foreign mark")
	}
	for i := len(u.stack) - 1; i >= mark; i-- {
		id := u.stack[i]
		u.count[id]--
		if u.count[id] == 0 {
			u.size--
		}
	}
	u.stack = u.stack[:mark]
}
