package objective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bellflower/internal/labeling"
	"bellflower/internal/schema"
)

func setup(personalSpec string, repoSpecs ...string) (*schema.Tree, *schema.Repository, *labeling.Index) {
	personal := schema.MustParseSpec(personalSpec)
	repo := schema.NewRepository()
	for _, s := range repoSpecs {
		repo.MustAdd(schema.MustParseSpec(s))
	}
	return personal, repo, labeling.NewIndex(repo)
}

func TestParamsValidate(t *testing.T) {
	good := []Params{{0, 1}, {1, 1}, {0.5, 4}, DefaultParams()}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", p, err)
		}
	}
	bad := []Params{{-0.1, 1}, {1.1, 1}, {0.5, 0}, {0.5, -1}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", p)
		}
	}
}

// Paper's Fig. 1: s = book(title,author) mapped into the gray subtree t of
// lib(address, book(authorName, data(title), shelf)).
func TestScorePaperFigure1(t *testing.T) {
	personal, repo, ix := setup("book(title,author)",
		"lib(address,book(authorName,data(title),shelf))")
	ev := NewEvaluator(Params{Alpha: 0.5, K: 4}, ix, personal)

	tr := repo.Tree(0)
	book := tr.Find("book")
	title := tr.Find("title")
	authorName := tr.Find("authorName")

	// images indexed by preorder rank of the personal nodes: book, title, author
	images := []*schema.Node{book, title, authorName}
	sims := []float64{1.0, 1.0, 0.6} // sim(author, authorName) ≈ 0.6

	sc := ev.Score(images, sims)
	// Δsim = (1+1+0.6)/3
	wantSim := (1 + 1 + 0.6) / 3
	if math.Abs(sc.Sim-wantSim) > 1e-12 {
		t.Errorf("Sim = %v, want %v", sc.Sim, wantSim)
	}
	// book->title via data = 2 edges; book->authorName = 1 edge; union = 3
	if sc.Et != 3 {
		t.Errorf("Et = %d, want 3", sc.Et)
	}
	// Δpath = 1 - (3-2)/(2*4) = 0.875
	if math.Abs(sc.Path-0.875) > 1e-12 {
		t.Errorf("Path = %v, want 0.875", sc.Path)
	}
	want := 0.5*wantSim + 0.5*0.875
	if math.Abs(sc.Delta-want) > 1e-12 {
		t.Errorf("Delta = %v, want %v", sc.Delta, want)
	}
}

func TestScorePerfectMapping(t *testing.T) {
	personal, repo, ix := setup("book(title,author)", "book(title,author)")
	ev := NewEvaluator(DefaultParams(), ix, personal)
	tr := repo.Tree(0)
	images := []*schema.Node{tr.Find("book"), tr.Find("title"), tr.Find("author")}
	sc := ev.Score(images, []float64{1, 1, 1})
	if sc.Delta != 1 || sc.Sim != 1 || sc.Path != 1 || sc.Et != 2 {
		t.Errorf("perfect mapping score = %+v", sc)
	}
}

func TestSingleNodePersonal(t *testing.T) {
	personal, repo, ix := setup("book", "lib(book)")
	ev := NewEvaluator(DefaultParams(), ix, personal)
	sc := ev.Score([]*schema.Node{repo.Tree(0).Find("book")}, []float64{1})
	if sc.Delta != 1 || sc.Path != 1 || sc.Et != 0 {
		t.Errorf("single-node score = %+v", sc)
	}
}

func TestDeltaPathClamping(t *testing.T) {
	personal, _, ix := setup("a(b)", "r(x(y(z(w(v)))))")
	ev := NewEvaluator(Params{Alpha: 0.5, K: 2}, ix, personal)
	// |Es| = 1, K = 2: Δpath = 1 - (et-1)/2
	cases := []struct {
		et   int
		want float64
	}{
		{1, 1},
		{2, 0.5},
		{3, 0},
		{4, 0}, // clamped at 0
	}
	for _, tc := range cases {
		if got := ev.DeltaPath(tc.et); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("DeltaPath(%d) = %v, want %v", tc.et, got, tc.want)
		}
	}
}

func TestAlphaExtremes(t *testing.T) {
	personal, repo, ix := setup("a(b)", "a(x(b))")
	tr := repo.Tree(0)
	images := []*schema.Node{tr.Find("a"), tr.Find("b")}
	sims := []float64{1, 0.5}

	// α=1: only Δsim matters.
	ev1 := NewEvaluator(Params{Alpha: 1, K: 4}, ix, personal)
	if got := ev1.Score(images, sims).Delta; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("alpha=1 Delta = %v, want 0.75", got)
	}
	// α=0: only Δpath matters. et=2, es=1: 1 - 1/4 = 0.75
	ev0 := NewEvaluator(Params{Alpha: 0, K: 4}, ix, personal)
	if got := ev0.Score(images, sims).Delta; math.Abs(got-0.75) > 1e-12 {
		t.Errorf("alpha=0 Delta = %v, want 0.75", got)
	}
}

func TestEvaluatorPanics(t *testing.T) {
	personal, _, ix := setup("a(b)", "a(b)")
	defer func() {
		if recover() == nil {
			t.Errorf("bad params should panic")
		}
	}()
	NewEvaluator(Params{Alpha: 2, K: 1}, ix, personal)
}

func TestScoreLengthMismatchPanics(t *testing.T) {
	personal, repo, ix := setup("a(b)", "a(b)")
	ev := NewEvaluator(DefaultParams(), ix, personal)
	defer func() {
		if recover() == nil {
			t.Errorf("length mismatch should panic")
		}
	}()
	ev.Score([]*schema.Node{repo.Tree(0).Root()}, []float64{1})
}

func TestEdgeUnion(t *testing.T) {
	_, repo, ix := setup("x", "r(a(b(c)),d)")
	tr := repo.Tree(0)
	r := tr.Find("r")
	b := tr.Find("b")
	c := tr.Find("c")
	d := tr.Find("d")

	u := NewEdgeUnion(ix)
	if u.Size() != 0 {
		t.Fatalf("empty union size = %d", u.Size())
	}
	t1 := u.Push(r, b) // r-a-b: 2 edges
	if u.Size() != 2 {
		t.Errorf("after r-b: size = %d, want 2", u.Size())
	}
	t2 := u.Push(r, c) // r-a-b-c: shares 2, adds 1
	if u.Size() != 3 {
		t.Errorf("after r-c: size = %d, want 3", u.Size())
	}
	t3 := u.Push(b, d) // b-a-r-d: shares 2, adds 1
	if u.Size() != 4 {
		t.Errorf("after b-d: size = %d, want 4", u.Size())
	}
	u.Pop(t3)
	if u.Size() != 3 {
		t.Errorf("after pop b-d: size = %d, want 3", u.Size())
	}
	u.Pop(t2)
	if u.Size() != 2 {
		t.Errorf("after pop r-c: size = %d, want 2", u.Size())
	}
	u.Pop(t1)
	if u.Size() != 0 {
		t.Errorf("after pop all: size = %d, want 0", u.Size())
	}
}

func TestEdgeUnionPopUnbalancedPanics(t *testing.T) {
	_, repo, ix := setup("x", "r(a)")
	tr := repo.Tree(0)
	u := NewEdgeUnion(ix)
	tok := u.Push(tr.Find("r"), tr.Find("a"))
	u.Pop(tok)
	defer func() {
		if recover() == nil {
			t.Errorf("double Pop should panic")
		}
	}()
	u.Pop(tok)
}

// Property: EdgeUnion size after pushing a set of pairs equals
// labeling.PathLengthSum over the same pairs, and popping everything in any
// order restores size 0.
func TestEdgeUnionMatchesPathLengthSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := schema.NewBuilder("t")
		nodes := []*schema.Node{b.Root("n")}
		n := 2 + rng.Intn(40)
		for i := 1; i < n; i++ {
			nodes = append(nodes, b.Element(nodes[rng.Intn(len(nodes))], "n"))
		}
		repo := schema.NewRepository()
		repo.MustAdd(b.MustTree())
		ix := labeling.NewIndex(repo)
		all := repo.Nodes()

		u := NewEdgeUnion(ix)
		var pairs [][2]*schema.Node
		var tokens [][]int
		for k := 0; k < 1+rng.Intn(6); k++ {
			a := all[rng.Intn(len(all))]
			c := all[rng.Intn(len(all))]
			pairs = append(pairs, [2]*schema.Node{a, c})
			tokens = append(tokens, u.Push(a, c))
		}
		if u.Size() != ix.PathLengthSum(pairs) {
			return false
		}
		rng.Shuffle(len(tokens), func(i, j int) { tokens[i], tokens[j] = tokens[j], tokens[i] })
		for _, tok := range tokens {
			u.Pop(tok)
		}
		return u.Size() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: Δ is monotone in sims — raising any one element similarity never
// lowers the score — and Δpath is non-increasing in |Et|.
func TestScoreMonotonicity(t *testing.T) {
	personal, repo, ix := setup("a(b,c)", "a(b,x(c))")
	ev := NewEvaluator(Params{Alpha: 0.6, K: 3}, ix, personal)
	tr := repo.Tree(0)
	images := []*schema.Node{tr.Find("a"), tr.Find("b"), tr.Find("c")}
	f := func(s1, s2, s3, bump uint8) bool {
		sims := []float64{float64(s1%101) / 100, float64(s2%101) / 100, float64(s3%101) / 100}
		base := ev.Score(images, sims).Delta
		up := make([]float64, 3)
		copy(up, sims)
		i := int(bump) % 3
		up[i] = math.Min(1, up[i]+0.1)
		if ev.Score(images, up).Delta < base-1e-12 {
			return false
		}
		return ev.DeltaPath(3) <= ev.DeltaPath(2) && ev.DeltaPath(10) <= ev.DeltaPath(3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
