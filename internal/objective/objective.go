// Package objective implements Bellflower's objective function Δ(s,t)
// (Sec. 3 of the paper):
//
//	Δsim(s,t)  = (1/|Ns|) Σ_{n∈Ns} sim(n, n′)                      (Eq. 1)
//	Δpath(s,t) = 1 − (|Et| − |Es|) / (|Es|·K)                       (Eq. 2)
//	Δ(s,t)     = α·Δsim(s,t) + (1−α)·Δpath(s,t)                     (Eq. 3)
//
// Δsim simulates localized heuristics (name similarity) and Δpath simulates
// structural heuristics; α trades them off. |Et| is the number of edges of
// the mapping subtree t — the union of the tree paths that the personal
// schema's edges map to (Def. 2). K is the path-length normalization
// constant, determined by the maximum path length the system tolerates.
package objective

import (
	"fmt"

	"bellflower/internal/labeling"
	"bellflower/internal/schema"
)

// Params are the tunables of the objective function.
type Params struct {
	// Alpha weighs name similarity (Δsim) against path-length similarity
	// (Δpath); Fig. 6 of the paper varies it over {0.25, 0.50, 0.75}.
	Alpha float64

	// K is the normalization constant of Eq. 2: the average number of extra
	// path edges per personal edge at which Δpath reaches 0.
	K float64
}

// DefaultParams mirror the paper's default experiment configuration
// (α = 0.5; K chosen from the maximum tolerated path stretch).
func DefaultParams() Params { return Params{Alpha: 0.5, K: 4} }

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("objective: alpha %v outside [0,1]", p.Alpha)
	}
	if p.K <= 0 {
		return fmt.Errorf("objective: K %v must be positive", p.K)
	}
	return nil
}

// Score is the decomposed value of the objective function for one mapping.
type Score struct {
	Delta float64 // combined similarity index Δ(s,t)
	Sim   float64 // Δsim component
	Path  float64 // Δpath component
	Et    int     // |Et|: edges of the mapping subtree t
}

// Evaluator scores complete schema mappings for a fixed personal schema.
type Evaluator struct {
	params   Params
	ix       *labeling.Index
	personal *schema.Tree
	es       int // |Es|
}

// NewEvaluator returns an evaluator; it panics on invalid params so
// configuration errors surface at construction time.
func NewEvaluator(params Params, ix *labeling.Index, personal *schema.Tree) *Evaluator {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Evaluator{params: params, ix: ix, personal: personal, es: personal.NumEdges()}
}

// Params returns the evaluator's parameters.
func (e *Evaluator) Params() Params { return e.params }

// Personal returns the personal schema the evaluator was built for.
func (e *Evaluator) Personal() *schema.Tree { return e.personal }

// Score evaluates a complete mapping. images[i] is the repository image of
// the personal node with preorder rank i; sims[i] is its element similarity
// sim(n, n′). All images must lie in one repository tree.
func (e *Evaluator) Score(images []*schema.Node, sims []float64) Score {
	if len(images) != e.personal.Len() || len(sims) != len(images) {
		panic("objective: assignment length mismatch")
	}
	simSum := 0.0
	for _, s := range sims {
		simSum += s
	}
	dsim := simSum / float64(len(sims))

	et := 0
	if e.es > 0 {
		pairs := make([][2]*schema.Node, 0, e.es)
		for _, n := range e.personal.Nodes() {
			if p := n.Parent(); p != nil {
				pairs = append(pairs, [2]*schema.Node{images[p.Pre], images[n.Pre]})
			}
		}
		et = e.ix.PathLengthSum(pairs)
	}
	dpath := e.DeltaPath(et)
	return Score{
		Delta: e.Combine(dsim, dpath),
		Sim:   dsim,
		Path:  dpath,
		Et:    et,
	}
}

// DeltaPath computes Eq. 2 for a given |Et|, clamped to [0,1]. (For trees
// |Et| ≥ |Es| always holds — the mapping subtree is a connected subtree
// containing |Ns| distinct nodes — so the clamp only guards the upper side
// for degenerate single-node schemas.)
func (e *Evaluator) DeltaPath(et int) float64 {
	if e.es == 0 {
		// A single-node personal schema has no paths to compare.
		return 1
	}
	d := 1 - float64(et-e.es)/(float64(e.es)*e.params.K)
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// Combine applies Eq. 3 to precomputed components.
func (e *Evaluator) Combine(dsim, dpath float64) float64 {
	return e.params.Alpha*dsim + (1-e.params.Alpha)*dpath
}

// NumEdges returns |Es| of the personal schema.
func (e *Evaluator) NumEdges() int { return e.es }

// EdgeUnion incrementally maintains |Et| — the size of the union of the
// mapped paths — as the Branch & Bound generator assigns and retracts
// personal nodes. Paths may share edges; the union counts each edge once.
// An edge is identified by its child endpoint's node ID.
//
// Push returns an undo token; Pop with that token restores the previous
// state, enabling depth-first backtracking.
type EdgeUnion struct {
	ix    *labeling.Index
	count map[int]int
	size  int
}

// NewEdgeUnion returns an empty union over the given index.
func NewEdgeUnion(ix *labeling.Index) *EdgeUnion {
	return &EdgeUnion{ix: ix, count: make(map[int]int)}
}

// Size returns the current |Et|.
func (u *EdgeUnion) Size() int { return u.size }

// Push adds the path between a and b (same tree) and returns the edge IDs
// whose refcount it incremented, for use with Pop.
func (u *EdgeUnion) Push(a, b *schema.Node) []int {
	l := u.ix.LCA(a, b)
	var touched []int
	for n := a; n != l; n = n.Parent() {
		touched = append(touched, n.ID)
	}
	for n := b; n != l; n = n.Parent() {
		touched = append(touched, n.ID)
	}
	for _, id := range touched {
		u.count[id]++
		if u.count[id] == 1 {
			u.size++
		}
	}
	return touched
}

// Pop undoes a Push.
func (u *EdgeUnion) Pop(touched []int) {
	for _, id := range touched {
		u.count[id]--
		switch u.count[id] {
		case 0:
			u.size--
			delete(u.count, id)
		default:
			if u.count[id] < 0 {
				panic("objective: EdgeUnion.Pop without matching Push")
			}
		}
	}
}
