// Package stats provides the small statistical utilities the experiment
// harness reports with: power-of-two histograms (the bucket scheme of the
// paper's Fig. 4), summary statistics, and preserved-mapping curves
// (Figs. 5 and 6).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts values into power-of-two buckets [1,1], [2,3], [4,7],
// [8,15], ... exactly as the paper's Fig. 4 groups cluster sizes. Values
// below 1 are counted in an underflow bucket.
type Histogram struct {
	counts    []int
	underflow int
	total     int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe adds a value.
func (h *Histogram) Observe(v int) {
	h.total++
	if v < 1 {
		h.underflow++
		return
	}
	b := 0
	for x := v; x > 1; x >>= 1 {
		b++
	}
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
}

// Total returns the number of observed values.
func (h *Histogram) Total() int { return h.total }

// Bucket describes one histogram bucket.
type Bucket struct {
	Lo, Hi int // inclusive value range [Lo, Hi]
	Count  int
}

// Buckets returns the non-empty prefix of buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	for b, c := range h.counts {
		out = append(out, Bucket{Lo: 1 << b, Hi: 1<<(b+1) - 1, Count: c})
	}
	return out
}

// Count returns the count of the bucket containing v.
func (h *Histogram) Count(v int) int {
	if v < 1 {
		return h.underflow
	}
	b := 0
	for x := v; x > 1; x >>= 1 {
		b++
	}
	if b >= len(h.counts) {
		return 0
	}
	return h.counts[b]
}

// Render draws the histogram as rows of "[lo,hi] count ####" bars scaled to
// width characters, mirroring Fig. 4's presentation.
func (h *Histogram) Render(width int) string {
	bs := h.Buckets()
	max := 0
	for _, b := range bs {
		if b.Count > max {
			max = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range bs {
		bar := 0
		if max > 0 {
			bar = b.Count * width / max
		}
		fmt.Fprintf(&sb, "[%d,%d]\t%d\t%s\n", b.Lo, b.Hi, b.Count, strings.Repeat("#", bar))
	}
	return sb.String()
}

// Summary holds the usual descriptive statistics.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
}

// Summarize computes descriptive statistics of vs. An empty input yields a
// zero Summary.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vs), Min: vs[0], Max: vs[0]}
	sum := 0.0
	for _, v := range vs {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vs))
	varSum := 0.0
	for _, v := range vs {
		d := v - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(vs)))
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CurvePoint is one (threshold, fraction-preserved) sample of a
// preserved-mapping curve.
type CurvePoint struct {
	Threshold float64
	Preserved float64 // in [0,1]; 1 when the baseline preserves everything
}

// PreservationCurve computes, for each threshold δ in thresholds, the
// fraction |{v ∈ variant : v ≥ δ}| / |{b ∈ baseline : b ≥ δ}| — the
// percentage of preserved mappings of Figs. 5 and 6. A threshold at which
// the baseline finds no mappings yields Preserved = 1 (nothing to lose).
//
// The inputs are the similarity indexes (Δ values) of the mappings found by
// the exhaustive baseline and by the clustered variant.
func PreservationCurve(baseline, variant []float64, thresholds []float64) []CurvePoint {
	bs := append([]float64(nil), baseline...)
	vs := append([]float64(nil), variant...)
	sort.Float64s(bs)
	sort.Float64s(vs)
	out := make([]CurvePoint, 0, len(thresholds))
	for _, th := range thresholds {
		nb := countAtLeast(bs, th)
		nv := countAtLeast(vs, th)
		p := 1.0
		if nb > 0 {
			p = float64(nv) / float64(nb)
		}
		out = append(out, CurvePoint{Threshold: th, Preserved: p})
	}
	return out
}

// countAtLeast returns the number of sorted values >= th.
func countAtLeast(sorted []float64, th float64) int {
	i := sort.SearchFloat64s(sorted, th)
	return len(sorted) - i
}

// Thresholds returns n+1 evenly spaced values from lo to hi inclusive —
// the δ axis of Figs. 5 and 6 (0.75 … 1.0).
func Thresholds(lo, hi float64, n int) []float64 {
	if n < 1 {
		return []float64{lo}
	}
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return out
}

// RenderCurves renders one or more labelled curves sampled at the same
// thresholds as an aligned text table (one row per threshold).
func RenderCurves(labels []string, curves [][]CurvePoint) string {
	if len(labels) != len(curves) {
		panic("stats: labels/curves length mismatch")
	}
	var sb strings.Builder
	sb.WriteString("delta")
	for _, l := range labels {
		fmt.Fprintf(&sb, "\t%s", l)
	}
	sb.WriteString("\n")
	if len(curves) == 0 || len(curves[0]) == 0 {
		return sb.String()
	}
	for i := range curves[0] {
		fmt.Fprintf(&sb, "%.3f", curves[0][i].Threshold)
		for _, c := range curves {
			fmt.Fprintf(&sb, "\t%.3f", c[i].Preserved)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
