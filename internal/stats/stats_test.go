package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 3, 4, 7, 8, 15, 16, 100, 255} {
		h.Observe(v)
	}
	cases := []struct {
		v, want int
	}{
		{1, 1},   // [1,1]
		{2, 2},   // [2,3]: 2,3
		{4, 2},   // [4,7]: 4,7
		{8, 2},   // [8,15]: 8,15
		{16, 1},  // [16,31]: 16
		{100, 1}, // [64,127]: 100
		{255, 1}, // [128,255]: 255
		{32, 0},  // empty bucket
	}
	for _, tc := range cases {
		if got := h.Count(tc.v); got != tc.want {
			t.Errorf("Count(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	if h.Total() != 10 {
		t.Errorf("Total = %d", h.Total())
	}
	bs := h.Buckets()
	if bs[0].Lo != 1 || bs[0].Hi != 1 || bs[1].Lo != 2 || bs[1].Hi != 3 {
		t.Errorf("bucket bounds wrong: %+v", bs[:2])
	}
}

func TestHistogramUnderflow(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)
	if got := h.Count(0); got != 2 {
		t.Errorf("underflow count = %d", got)
	}
	if h.Total() != 2 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram()
	h.Observe(1)
	h.Observe(2)
	h.Observe(2)
	out := h.Render(10)
	if !strings.Contains(out, "[1,1]\t1") || !strings.Contains(out, "[2,3]\t2") {
		t.Errorf("Render output:\n%s", out)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Errorf("Summary = %+v", s)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Errorf("odd median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{5})
	if one.StdDev != 0 || one.Median != 5 {
		t.Errorf("single summary = %+v", one)
	}
}

func TestPreservationCurve(t *testing.T) {
	baseline := []float64{0.75, 0.8, 0.85, 0.9, 0.95}
	variant := []float64{0.9, 0.95}
	ths := []float64{0.75, 0.9, 0.99}
	c := PreservationCurve(baseline, variant, ths)
	if len(c) != 3 {
		t.Fatalf("curve len = %d", len(c))
	}
	if math.Abs(c[0].Preserved-2.0/5.0) > 1e-12 {
		t.Errorf("preserved@0.75 = %v, want 0.4", c[0].Preserved)
	}
	if math.Abs(c[1].Preserved-1) > 1e-12 {
		t.Errorf("preserved@0.9 = %v, want 1", c[1].Preserved)
	}
	// baseline empty above 0.95 -> convention: preserved = 1
	if c[2].Preserved != 1 {
		t.Errorf("preserved@0.99 = %v, want 1", c[2].Preserved)
	}
}

func TestThresholds(t *testing.T) {
	ths := Thresholds(0.75, 1.0, 5)
	if len(ths) != 6 || ths[0] != 0.75 || ths[5] != 1.0 {
		t.Errorf("Thresholds = %v", ths)
	}
	if math.Abs(ths[1]-0.8) > 1e-12 {
		t.Errorf("ths[1] = %v", ths[1])
	}
	if got := Thresholds(0.5, 1, 0); len(got) != 1 || got[0] != 0.5 {
		t.Errorf("degenerate thresholds = %v", got)
	}
}

func TestRenderCurves(t *testing.T) {
	ths := Thresholds(0.8, 1.0, 2)
	c1 := PreservationCurve([]float64{0.8, 0.9, 1.0}, []float64{0.9}, ths)
	c2 := PreservationCurve([]float64{0.8, 0.9, 1.0}, []float64{0.8, 0.9, 1.0}, ths)
	out := RenderCurves([]string{"small", "tree"}, [][]CurvePoint{c1, c2})
	if !strings.HasPrefix(out, "delta\tsmall\ttree") {
		t.Errorf("header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}

// Property: histogram total equals observations; every value lands in the
// bucket whose range contains it.
func TestHistogramProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			h.Observe(1 + rng.Intn(1000))
		}
		if h.Total() != n {
			return false
		}
		sum := 0
		for _, b := range h.Buckets() {
			if b.Lo > b.Hi {
				return false
			}
			sum += b.Count
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: preservation is in [0,1] whenever variant ⊆ baseline, and the
// curve for variant == baseline is constantly 1.
func TestPreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		baseline := make([]float64, n)
		for i := range baseline {
			baseline[i] = 0.75 + 0.25*rng.Float64()
		}
		var variant []float64
		for _, v := range baseline {
			if rng.Intn(2) == 0 {
				variant = append(variant, v)
			}
		}
		ths := Thresholds(0.75, 1.0, 10)
		for _, p := range PreservationCurve(baseline, variant, ths) {
			if p.Preserved < 0 || p.Preserved > 1 {
				return false
			}
		}
		for _, p := range PreservationCurve(baseline, baseline, ths) {
			if p.Preserved != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
