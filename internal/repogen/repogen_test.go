package repogen

import (
	"strings"
	"testing"

	"bellflower/internal/matcher"
	"bellflower/internal/schema"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{TargetNodes: 0, MeanTreeSize: 10, MaxDepth: 5},
		{TargetNodes: 100, MeanTreeSize: 1, MaxDepth: 5},
		{TargetNodes: 100, MeanTreeSize: 10, MaxDepth: 0},
		{TargetNodes: 100, MeanTreeSize: 10, MaxDepth: 5, NoiseRate: 2},
		{TargetNodes: 100, MeanTreeSize: 10, MaxDepth: 5, AttributeRate: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestGenerateScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetNodes = 2500
	repo := MustGenerate(cfg)
	if err := repo.Validate(); err != nil {
		t.Fatalf("generated repository invalid: %v", err)
	}
	st := repo.Stats()
	if st.Nodes < cfg.TargetNodes || st.Nodes > cfg.TargetNodes+cfg.MeanTreeSize*4 {
		t.Errorf("node count %d not near target %d", st.Nodes, cfg.TargetNodes)
	}
	if st.Trees < 10 {
		t.Errorf("too few trees: %d", st.Trees)
	}
	if st.MaxDepth > cfg.MaxDepth+1 {
		t.Errorf("depth %d exceeds bound %d", st.MaxDepth, cfg.MaxDepth)
	}
	// Average tree size should be in the right ballpark.
	avg := float64(st.Nodes) / float64(st.Trees)
	if avg < float64(cfg.MeanTreeSize)/3 || avg > float64(cfg.MeanTreeSize)*3 {
		t.Errorf("average tree size %.1f far from mean %d", avg, cfg.MeanTreeSize)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetNodes = 800
	r1 := MustGenerate(cfg)
	r2 := MustGenerate(cfg)
	if r1.Len() != r2.Len() || r1.NumTrees() != r2.NumTrees() {
		t.Fatalf("sizes differ: %d/%d nodes, %d/%d trees",
			r1.Len(), r2.Len(), r1.NumTrees(), r2.NumTrees())
	}
	for i := range r1.Nodes() {
		a, b := r1.Node(i), r2.Node(i)
		if a.Name != b.Name || a.Kind != b.Kind || a.Type != b.Type {
			t.Fatalf("node %d differs: %v vs %v", i, a, b)
		}
	}

	cfg2 := cfg
	cfg2.Seed = 99
	r3 := MustGenerate(cfg2)
	same := r3.Len() == r1.Len()
	if same {
		diff := false
		for i := range r1.Nodes() {
			if r1.Node(i).Name != r3.Node(i).Name {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Errorf("different seeds produced identical repositories")
	}
}

func TestGenerateVocabularyDensity(t *testing.T) {
	// The canonical experiment needs dense candidate sets for
	// name/address/email: verify the generator reuses that vocabulary.
	cfg := DefaultConfig()
	cfg.TargetNodes = 3000
	repo := MustGenerate(cfg)
	personal := schema.MustParseSpec("address(name,email)")
	cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: 0.5})
	for i, set := range cands.Sets {
		if len(set.Elems) < 20 {
			t.Errorf("candidate set %d (%s) has only %d elements — vocabulary too sparse",
				i, set.Personal.Name, len(set.Elems))
		}
	}
}

func TestGenerateNoiseProducesVariants(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetNodes = 3000
	cfg.NoiseRate = 0.5
	repo := MustGenerate(cfg)
	variants := map[string]bool{}
	for _, n := range repo.Nodes() {
		variants[n.Name] = true
	}
	// Noise must create names beyond the clean concept list.
	clean := map[string]bool{}
	for _, c := range Concepts() {
		clean[c] = true
	}
	noisy := 0
	for v := range variants {
		if !clean[v] {
			noisy++
		}
	}
	if noisy < 10 {
		t.Errorf("only %d noisy name variants; noise not effective", noisy)
	}
}

func TestGenerateZeroNoise(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetNodes = 500
	cfg.NoiseRate = 0
	repo := MustGenerate(cfg)
	clean := map[string]bool{}
	for _, c := range Concepts() {
		clean[c] = true
	}
	for _, n := range repo.Nodes() {
		if !clean[n.Name] {
			t.Fatalf("unexpected noisy name %q with NoiseRate=0", n.Name)
		}
	}
}

func TestGenerateAttributes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetNodes = 2000
	cfg.AttributeRate = 0.3
	repo := MustGenerate(cfg)
	attrs := 0
	for _, n := range repo.Nodes() {
		if n.Kind == schema.KindAttribute {
			attrs++
			if !n.IsLeaf() {
				t.Fatalf("attribute %v has children", n)
			}
		}
	}
	if attrs == 0 {
		t.Errorf("no attributes generated at rate 0.3")
	}
}

func TestGenerateTypes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetNodes = 1000
	cfg.NoiseRate = 0
	repo := MustGenerate(cfg)
	typed := 0
	for _, n := range repo.Nodes() {
		if n.Type != "" {
			typed++
		}
	}
	if typed == 0 {
		t.Errorf("no datatypes assigned")
	}
}

func TestTreeNames(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetNodes = 300
	repo := MustGenerate(cfg)
	for _, tr := range repo.Trees() {
		if !strings.HasPrefix(tr.Name, "synthetic-") {
			t.Errorf("tree name %q missing generator tag", tr.Name)
		}
	}
}

func TestConcepts(t *testing.T) {
	cs := Concepts()
	if len(cs) < 30 {
		t.Errorf("vocabulary too small: %d concepts", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Errorf("concepts not sorted/deduped at %d", i)
		}
	}
	// Canonical experiment vocabulary must be present.
	want := []string{"name", "address", "email", "book", "title", "author"}
	set := map[string]bool{}
	for _, c := range cs {
		set[c] = true
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("concept %q missing", w)
		}
	}
}
