// Package repogen generates synthetic XML schema repositories.
//
// The paper's repository was harvested from the Internet: 1700 non-recursive
// DTDs and XML schemas with 178 252 element/attribute nodes over 3889 trees,
// from which experiment repositories of 2500–10 200 elements were sampled.
// That collection is not available, so this package is the documented
// substitution (DESIGN.md §3): a seeded generator that produces forests with
// the properties the experiments depend on — realistic element vocabularies
// with heavy name reuse across trees (so the element matcher yields dense
// mapping-element sets), misspellings and naming-convention noise (so fuzzy
// matching matters), and tree shapes comparable to real-world schemas.
//
// Trees are grown from domain production rules (library, commerce, contacts,
// education, publishing, ...) whose concepts intentionally share vocabulary
// (name, address, email, title appear in many domains), mirroring how
// harvested web schemas overlap.
package repogen

import (
	"fmt"
	"math/rand"
	"sort"

	"bellflower/internal/schema"
)

// Config controls repository generation. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// Seed makes generation reproducible.
	Seed int64

	// TargetNodes is the approximate total node count of the forest; the
	// paper's reference experiment uses 9759.
	TargetNodes int

	// MeanTreeSize is the average tree size; the reference experiment has
	// 9759/262 ≈ 37 nodes per tree.
	MeanTreeSize int

	// MaxDepth bounds tree depth (root = depth 0).
	MaxDepth int

	// NoiseRate is the probability that a generated name is perturbed
	// (typo, naming-convention change, abbreviation, pluralization).
	NoiseRate float64

	// AttributeRate is the probability that a generated leaf becomes an
	// attribute instead of an element.
	AttributeRate float64
}

// DefaultConfig mirrors the paper's reference repository scale.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		TargetNodes:   9759,
		MeanTreeSize:  37,
		MaxDepth:      14,
		NoiseRate:     0.25,
		AttributeRate: 0.12,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TargetNodes < 1 {
		return fmt.Errorf("repogen: TargetNodes %d < 1", c.TargetNodes)
	}
	if c.MeanTreeSize < 2 {
		return fmt.Errorf("repogen: MeanTreeSize %d < 2", c.MeanTreeSize)
	}
	if c.MaxDepth < 1 {
		return fmt.Errorf("repogen: MaxDepth %d < 1", c.MaxDepth)
	}
	if c.NoiseRate < 0 || c.NoiseRate > 1 {
		return fmt.Errorf("repogen: NoiseRate %v outside [0,1]", c.NoiseRate)
	}
	if c.AttributeRate < 0 || c.AttributeRate > 1 {
		return fmt.Errorf("repogen: AttributeRate %v outside [0,1]", c.AttributeRate)
	}
	return nil
}

// productions maps a concept to the child concepts it may expand into.
// Concepts without productions are leaves. The vocabulary deliberately
// reuses generic concepts (name, address, email, title, price) across
// domains, as harvested web schemas do.
var productions = map[string][]string{
	// library domain
	"library":    {"address", "book", "member", "shelf", "catalog", "branch", "name"},
	"branch":     {"name", "address", "section", "member"},
	"section":    {"name", "book", "subsection", "shelf"},
	"subsection": {"name", "book"},
	"book":       {"title", "author", "isbn", "publisher", "year", "price", "data", "chapter"},
	"author":     {"name", "firstName", "lastName", "email", "bio"},
	"member":     {"name", "address", "email", "phone", "memberId"},
	"shelf":      {"code", "book"},
	"catalog":    {"book", "cd", "product", "section", "name"},
	"chapter":    {"title", "page"},
	"data":       {"title", "value", "date"},

	// commerce domain
	"store":    {"name", "address", "catalog", "order", "branch", "phone"},
	"order":    {"orderId", "customer", "item", "total", "date", "shipTo"},
	"customer": {"name", "email", "phone", "address", "company"},
	"item":     {"product", "quantity", "price", "sku"},
	"product":  {"name", "description", "price", "category", "manufacturer"},
	"shipTo":   {"name", "street", "city", "zip", "country"},
	"invoice":  {"orderId", "customer", "total", "date", "item"},

	// organizations & contacts domain
	"contacts":     {"person", "company", "group"},
	"person":       {"name", "address", "email", "phone", "birthDate"},
	"company":      {"name", "address", "phone", "website", "division"},
	"division":     {"name", "department", "address"},
	"employee":     {"name", "email", "title", "address"},
	"group":        {"name", "person", "group2"},
	"group2":       {"name", "person"},
	"address":      {"street", "city", "zip", "country", "state"},
	"manufacturer": {"name", "address", "website"},

	// education domain
	"university": {"name", "department", "student", "course", "address"},
	"student":    {"name", "email", "studentId", "address"},
	"course":     {"title", "credits", "instructor"},
	"instructor": {"name", "email", "office"},
	"department": {"name", "course", "instructor", "team", "address"},
	"team":       {"name", "employee"},

	// publishing domain
	"publication": {"title", "author", "journal", "year", "abstract"},
	"journal":     {"name", "issn", "publisher"},
	"publisher":   {"name", "address", "website"},
	"proceedings": {"title", "publication", "year", "publisher"},

	// media domain
	"cd":     {"title", "artist", "tracks", "price"},
	"artist": {"name", "country"},
	"tracks": {"track"},
	"track":  {"title", "duration"},
}

// roots are concepts a tree may start from.
var roots = []string{
	"library", "store", "contacts", "university", "order", "catalog",
	"publication", "person", "company", "invoice", "proceedings", "cd",
}

// leafType assigns datatypes to leaf concepts.
var leafType = map[string]string{
	"title": "string", "name": "string", "firstName": "string",
	"lastName": "string", "email": "string", "phone": "string",
	"street": "string", "city": "string", "zip": "token",
	"country": "string", "state": "string", "isbn": "token",
	"issn": "token", "sku": "token", "code": "token",
	"orderId": "token", "memberId": "token", "studentId": "token",
	"price": "decimal", "total": "decimal", "quantity": "integer",
	"credits": "integer", "page": "integer", "year": "gYear",
	"date": "date", "birthDate": "date", "duration": "integer",
	"value": "string", "description": "string", "bio": "string",
	"abstract": "string", "website": "anyURI", "office": "string",
	"category": "string",
}

// abbreviations for naming-convention noise.
var abbreviations = map[string]string{
	"address": "addr", "telephone": "tel", "phone": "tel",
	"quantity": "qty", "number": "num", "description": "desc",
	"organization": "org", "department": "dept", "manufacturer": "mfr",
}

// Generate builds a repository per the configuration. Generation is
// deterministic in the seed.
func Generate(cfg Config) (*schema.Repository, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, rng: rng}
	repo := schema.NewRepository()
	for repo.Len() < cfg.TargetNodes {
		size := g.treeSize()
		if rem := cfg.TargetNodes - repo.Len(); size > rem {
			size = rem
		}
		if size < 2 {
			size = 2
		}
		repo.MustAdd(g.tree(size))
	}
	return repo, nil
}

// MustGenerate is Generate but panics on error; for tests and examples.
func MustGenerate(cfg Config) *schema.Repository {
	r, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

type generator struct {
	cfg   Config
	rng   *rand.Rand
	ntree int
}

// treeSize samples a heavy-tailed size with mean ≈ MeanTreeSize. Harvested
// web-schema collections are dominated by small schemas with a long tail of
// very large ones; the tail is what makes the non-clustered search space
// explode (and what clustering then cuts into regions). Buckets (for the
// default mean 37): 80% small [5,30], 15% medium [30,100], 5% large
// [100,600]; expected value ≈ 41.
func (g *generator) treeSize() int {
	m := g.cfg.MeanTreeSize
	lo := m / 7
	if lo < 3 {
		lo = 3
	}
	var s int
	switch r := g.rng.Float64(); {
	case r < 0.80:
		s = lo + g.rng.Intn(maxInt(1, m*4/5-lo))
	case r < 0.95:
		s = m * 4 / 5
		s += g.rng.Intn(maxInt(1, m*27/10-s))
	default:
		s = m * 27 / 10
		s += g.rng.Intn(maxInt(1, m*16-s))
	}
	if s < 3 {
		s = 3
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// tree grows one schema tree of approximately the given size.
func (g *generator) tree(size int) *schema.Tree {
	g.ntree++
	rootConcept := roots[g.rng.Intn(len(roots))]
	b := schema.NewBuilder(fmt.Sprintf("synthetic-%04d-%s", g.ntree, rootConcept))
	root := b.Root(g.name(rootConcept))
	budget := size - 1

	// frontier of expandable (node, concept, depth) entries
	type entry struct {
		node    *schema.Node
		concept string
		depth   int
	}
	frontier := []entry{{root, rootConcept, 0}}
	for budget > 0 && len(frontier) > 0 {
		// Pop depth-first with high probability: real large schemas are
		// deep (nested type hierarchies), and depth is what separates
		// repository regions so that clustering has something to cut.
		// The occasional random pop keeps shapes varied.
		i := len(frontier) - 1
		if g.rng.Float64() < 0.3 {
			i = g.rng.Intn(len(frontier))
		}
		e := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		prods := productions[e.concept]
		if len(prods) == 0 || e.depth >= g.cfg.MaxDepth {
			continue
		}
		// Sample children with replacement: container concepts repeat
		// (a library holds several book subtrees, an order several items),
		// which is what lets trees reach realistic sizes. Leaf concepts
		// are deduplicated per parent (one title per book). Containers are
		// returned to the frontier so they can keep growing while budget
		// remains — otherwise trees starve far below the target size.
		k := 2 + g.rng.Intn(len(prods)+2)
		if k > budget {
			k = budget
		}
		if g.rng.Float64() < 0.5 {
			frontier = append(frontier, e)
		}
		seenLeaf := map[string]bool{}
		for c := 0; c < k; c++ {
			child := prods[g.rng.Intn(len(prods))]
			isLeaf := len(productions[child]) == 0
			if isLeaf && seenLeaf[child] {
				continue
			}
			if isLeaf {
				seenLeaf[child] = true
			}
			name := g.name(child)
			var n *schema.Node
			if isLeaf && g.rng.Float64() < g.cfg.AttributeRate {
				n = b.TypedAttribute(e.node, name, leafType[child])
			} else if isLeaf {
				n = b.TypedElement(e.node, name, leafType[child])
			} else {
				n = b.Element(e.node, name)
			}
			budget--
			if !isLeaf {
				frontier = append(frontier, entry{n, child, e.depth + 1})
			}
			if budget == 0 {
				break
			}
		}
	}
	return b.MustTree()
}

// name renders a concept as an element name, optionally perturbed.
func (g *generator) name(concept string) string {
	name := concept
	if g.rng.Float64() >= g.cfg.NoiseRate {
		return name
	}
	switch g.rng.Intn(6) {
	case 0: // typo: swap two adjacent letters
		if len(name) >= 3 {
			i := g.rng.Intn(len(name) - 1)
			bs := []byte(name)
			bs[i], bs[i+1] = bs[i+1], bs[i]
			name = string(bs)
		}
	case 1: // typo: drop a letter
		if len(name) >= 4 {
			i := g.rng.Intn(len(name))
			name = name[:i] + name[i+1:]
		}
	case 2: // snake_case suffix convention: fooInfo -> foo_info
		suffixes := []string{"Info", "Data", "Element", "Type"}
		name = name + suffixes[g.rng.Intn(len(suffixes))]
	case 3: // abbreviation
		if abbr, ok := abbreviations[name]; ok {
			name = abbr
		}
	case 4: // pluralization
		name = name + "s"
	case 5: // uppercase first letter (different casing convention)
		if len(name) > 0 {
			name = string(name[0]-'a'+'A') + name[1:]
		}
	}
	return name
}

// Concepts returns the sorted concept vocabulary (for documentation and
// tests).
func Concepts() []string {
	set := map[string]bool{}
	for c, kids := range productions {
		set[c] = true
		for _, k := range kids {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
