package serve

import (
	"sync/atomic"

	"bellflower/internal/cluster"
	"bellflower/internal/matcher"
)

// Projection is one decoded pre-pass payload as a shard server receives
// it: the projected candidate sets (bound to SOME structurally identical
// personal tree — callers rebind via matcher.Candidates.Rebind before
// use) plus the translated clusters and the clustering iteration count.
// HasCandidates/HasClusters mirror the wire request's flags, so a cached
// projection reproduces the exact staged-call shape of the request that
// populated it.
type Projection struct {
	HasCandidates bool
	Candidates    *matcher.Candidates
	HasClusters   bool
	Clusters      []*cluster.Cluster
	Iterations    int
}

// projectionBytes estimates a cached projection's resident size.
func projectionBytes(p Projection) int64 {
	b := int64(structSlack)
	if p.Candidates != nil {
		b += candidatesBytes(p.Candidates)
	}
	return b + clustersBytes(p.Clusters)
}

// ProjectionCache is a shard server's content-addressed projection store:
// entries are keyed by the projection digest the wire protocol computes
// (shardrpc.ProjectionDigest) and charged, size-estimated, into the
// service's memory governor — so cached projections compete for the same
// -cache-bytes budget as reports and age out under the same TTL. A repeat
// request shape then ships a 32-byte hash instead of the full projection.
//
// Get and Put are safe for concurrent use. Hits/misses are surfaced in
// the service's Stats (ProjectionCacheHits/Misses) and exported as
// bellflower_projection_cache_{hits,misses}_total.
type ProjectionCache struct {
	sp           *cacheSpace
	hits, misses atomic.Int64
}

// projectionCacheSize caps the projection cache's entry count; the byte
// budget is the governor's. Request shapes are few (the router's pre-pass
// cache holds 64), so a matching cap loses nothing.
const projectionCacheSize = 64

// NewProjectionCache registers a projection cache with the service: its
// entries charge the service's memory governor, and its hit/miss counters
// appear in the service's Stats. Meant to be called once, by the shard
// server that owns the service, before serving begins.
func (s *Service) NewProjectionCache() *ProjectionCache {
	pc := &ProjectionCache{sp: s.gov.space(projectionCacheSize)}
	s.projc.Store(pc)
	return pc
}

// Get returns the projection cached under the digest, counting the
// lookup as a hit or miss.
func (p *ProjectionCache) Get(digest string) (Projection, bool) {
	v, ok := p.sp.get(digest)
	if !ok {
		p.misses.Add(1)
		return Projection{}, false
	}
	p.hits.Add(1)
	return v.(Projection), true
}

// Put caches the projection under its digest.
func (p *ProjectionCache) Put(digest string, proj Projection) {
	p.sp.put(digest, proj, projectionBytes(proj))
}

// Len returns the resident entry count.
func (p *ProjectionCache) Len() int { return p.sp.len() }
