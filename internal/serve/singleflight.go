package serve

import (
	"context"
	"sync"

	"bellflower/internal/pipeline"
)

// flightGroup deduplicates identical in-flight requests: the first caller
// of a key becomes the leader and triggers one underlying pipeline run;
// callers that arrive with the same key while it is still running join as
// followers and share the leader's result. (The pattern of
// golang.org/x/sync/singleflight, reimplemented here because the module
// has no external dependencies, with one addition: the shared run carries
// a cancellable context that is torn down when every waiter has gone.)
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*call
}

// call is one shared in-flight run.
type call struct {
	// runCtx governs the underlying pipeline run; cancel releases it.
	runCtx context.Context
	cancel context.CancelFunc

	// done is closed by finish after rep/err are set.
	done chan struct{}
	rep  *pipeline.Report
	err  error

	// waiters counts callers currently waiting on done (guarded by the
	// group mutex). When the last waiter abandons the call, the run is
	// cancelled: nobody is left to consume the result.
	waiters int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*call)}
}

// join returns the call for key, creating it (leader == true) when no run
// is in flight. A new call's run context derives from base, which should
// be the service's lifetime context — per-request deadlines must not bound
// the shared run directly, they act through leave instead.
func (g *flightGroup) join(key string, base context.Context) (c *call, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		return c, false
	}
	runCtx, cancel := context.WithCancel(base)
	c = &call{runCtx: runCtx, cancel: cancel, done: make(chan struct{}), waiters: 1}
	g.calls[key] = c
	return c, true
}

// leave records that one waiter abandoned c (its own context expired or
// the caller gave up). When the last waiter leaves an unfinished call, the
// shared run is cancelled and the key freed so a later identical request
// starts a fresh run instead of joining a dying one.
func (g *flightGroup) leave(key string, c *call) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c.waiters--
	if c.waiters <= 0 {
		select {
		case <-c.done: // already finished; nothing to tear down
		default:
			c.cancel()
			if g.calls[key] == c {
				delete(g.calls, key)
			}
		}
	}
}

// finish publishes the result, wakes every waiter and frees the key.
func (g *flightGroup) finish(key string, c *call, rep *pipeline.Report, err error) {
	g.mu.Lock()
	if g.calls[key] == c {
		delete(g.calls, key)
	}
	g.mu.Unlock()
	c.rep, c.err = rep, err
	close(c.done)
	c.cancel()
}

// inFlight reports the number of distinct runs currently in flight.
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
