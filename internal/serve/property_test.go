package serve

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
)

// randomPersonal builds a random personal schema whose names are sampled
// from the repository's own vocabulary, so candidate sets are non-trivial.
// Deterministic for a given rng state.
func randomPersonal(rng *rand.Rand, repo *schema.Repository, extraNodes int) *schema.Tree {
	nodes := repo.Nodes()
	name := func() string { return nodes[rng.Intn(len(nodes))].Name }
	b := schema.NewBuilder("personal")
	root := b.Root(name())
	parents := []*schema.Node{root}
	for i := 0; i < extraNodes; i++ {
		p := parents[rng.Intn(len(parents))]
		parents = append(parents, b.Element(p, name()))
	}
	return b.MustTree()
}

// canonicalReport serializes a ranked report into a shard-independent
// canonical form: one key per mapping (Δ, repository tree name, image
// paths) in rank order, with runs of equal-Δ mappings sorted within the
// run. Rank order within a tie is the one place sharded and unsharded runs
// may legitimately differ (ID-based tie-breaking is shard-local), so the
// canonical form is byte-identical exactly when the reports agree
// everywhere else.
func canonicalReport(rep *pipeline.Report) string {
	keys := reportKeys(rep)
	i := 0
	for i < len(keys) {
		j := i + 1
		for j < len(keys) && rep.Mappings[j].Score.Delta == rep.Mappings[i].Score.Delta {
			j++
		}
		sort.Strings(keys[i:j])
		i = j
	}
	return strings.Join(keys, "\n")
}

// TestShardedEquivalenceProperty is the randomized equivalence harness:
// for seeded random repositories and personal schemas, the sharded report
// — served by view-backed shards sharing ONE labelling index — must be
// byte-identical (canonical form) to the unsharded one for BOTH partition
// strategies across shard counts 1–8, with partial-results mode both off
// and on (alternating by shard count; a healthy fan-out must be identical
// and never marked Incomplete either way), and truncated (top-N) reports
// must carry the byte-identical Δ sequence with every mapping drawn from
// the unsharded result. (Within an equal-Δ group straddling the
// top-N cut the tie member chosen is shard-order-dependent by documented
// design — the same latitude ID-based tie-breaking already has — so exact
// byte identity is asserted on the untruncated report.) Both tree
// clustering and the k-means medium variant are covered: the router's
// pre-pass clusters globally, so even the k-means variants are exact.
func TestShardedEquivalenceProperty(t *testing.T) {
	cases := []struct {
		seed       int64
		nodes      int
		extraNodes int
		topN       int
		variant    pipeline.Variant
	}{
		{seed: 1, nodes: 300, extraNodes: 2, topN: 4, variant: pipeline.VariantTree},
		{seed: 2, nodes: 450, extraNodes: 3, topN: 1, variant: pipeline.VariantMedium},
		{seed: 3, nodes: 600, extraNodes: 2, topN: 7, variant: pipeline.VariantTree},
		{seed: 4, nodes: 350, extraNodes: 4, topN: 3, variant: pipeline.VariantMedium},
	}
	for _, tc := range cases {
		repo := syntheticRepo(t, tc.nodes, tc.seed)
		rng := rand.New(rand.NewSource(tc.seed * 7919))
		personal := randomPersonal(rng, repo, tc.extraNodes)

		opts := pipeline.DefaultOptions()
		opts.Variant = tc.variant
		opts.MinSim = 0.4
		opts.Threshold = 0.6

		direct, err := pipeline.NewRunner(repo).Run(personal, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		want := canonicalReport(direct)
		fullKeys := make(map[string]int)
		for _, k := range reportKeys(direct) {
			fullKeys[k]++
		}
		truncated := opts
		truncated.TopN = tc.topN
		directTopN, err := pipeline.NewRunner(repo).Run(personal, truncated)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		if len(direct.Mappings) == 0 {
			t.Logf("seed %d: unsharded run found no mappings (personal %s); equivalence still checked", tc.seed, personal)
		}

		for _, strategy := range []PartitionStrategy{PartitionBalanced, PartitionClustered} {
			for shards := 1; shards <= 8; shards++ {
				// Both routing modes must agree byte-for-byte on healthy
				// fan-outs: partial results only changes what happens when
				// shards FAIL, never what a successful merge contains.
				partial := shards%2 == 0
				r := NewRouterWithPartition(repo, shards, Config{Workers: 2, PartialResults: partial}, strategy)
				// Shards are views over ONE shared index: that is the
				// memory model the equivalence is now proving exact.
				for i := 0; i < r.NumShards(); i++ {
					if r.Shard(i).Index() != r.fullRunner.Index() {
						t.Fatalf("seed %d %v shards=%d: shard %d owns a private index", tc.seed, strategy, shards, i)
					}
					if r.Shard(i).Runner().NameIndex() != r.fullRunner.NameIndex() {
						t.Fatalf("seed %d %v shards=%d: shard %d owns a private name index", tc.seed, strategy, shards, i)
					}
					if r.Shard(i).Runner().View() == nil {
						t.Fatalf("seed %d %v shards=%d: shard %d is not view-backed", tc.seed, strategy, shards, i)
					}
				}
				rep, err := r.Match(context.Background(), personal, opts)
				if err != nil {
					r.Close()
					t.Fatalf("seed %d %v shards=%d: %v", tc.seed, strategy, shards, err)
				}
				if rep.Incomplete || len(rep.ShardErrors) != 0 {
					t.Errorf("seed %d %v shards=%d: healthy fan-out marked incomplete (partial=%v)",
						tc.seed, strategy, shards, partial)
				}
				if got := canonicalReport(rep); got != want {
					t.Errorf("seed %d %v shards=%d: sharded report differs from unsharded (partial=%v)\n--- unsharded\n%s\n--- sharded\n%s",
						tc.seed, strategy, shards, partial, want, got)
				}
				// Stage-1 instrumentation must agree too: the pre-pass
				// projections cover exactly the unsharded candidate set.
				if rep.MappingElements != direct.MappingElements {
					t.Errorf("seed %d %v shards=%d: mapping elements %d, want %d",
						tc.seed, strategy, shards, rep.MappingElements, direct.MappingElements)
				}
				// The byte-identical report above must have come THROUGH the
				// keyed kernel, not around it: the default name matcher is
				// property-local, so the shared name index's counters advance
				// and the naive fallback never fires. The rollup's memory
				// gauge equals the single shared index — shards add none.
				ks := r.fullRunner.NameIndex().KernelStats()
				if ks.SimCalls == 0 {
					t.Errorf("seed %d %v shards=%d: keyed kernel performed no similarity calls", tc.seed, strategy, shards)
				}
				if ks.NaiveFallbacks != 0 {
					t.Errorf("seed %d %v shards=%d: keyed kernel fell back to the naive loop %d times",
						tc.seed, strategy, shards, ks.NaiveFallbacks)
				}
				if st := r.Stats(); st.NameIndexBytes != r.fullRunner.NameIndex().MemoryBytes() {
					t.Errorf("seed %d %v shards=%d: rollup NameIndexBytes %d, want the shared index's %d",
						tc.seed, strategy, shards, st.NameIndexBytes, r.fullRunner.NameIndex().MemoryBytes())
				}

				// Truncated report: identical Δ sequence, every mapping a
				// member of the unsharded full result.
				repTopN, err := r.Match(context.Background(), personal, truncated)
				if err != nil {
					r.Close()
					t.Fatalf("seed %d %v shards=%d topN: %v", tc.seed, strategy, shards, err)
				}
				dd, sd := directTopN.Deltas(), repTopN.Deltas()
				if len(dd) != len(sd) {
					t.Fatalf("seed %d %v shards=%d: topN found %d mappings, want %d",
						tc.seed, strategy, shards, len(sd), len(dd))
				}
				for i := range dd {
					if dd[i] != sd[i] {
						t.Errorf("seed %d %v shards=%d: topN rank %d Δ=%v, want %v",
							tc.seed, strategy, shards, i, sd[i], dd[i])
					}
				}
				seen := make(map[string]int)
				for _, k := range reportKeys(repTopN) {
					seen[k]++
					if seen[k] > fullKeys[k] {
						t.Errorf("seed %d %v shards=%d: topN mapping %s not in (or over-counted vs) the unsharded result",
							tc.seed, strategy, shards, k)
					}
				}

				// The adaptive parallel top-N engine must be invisible in the
				// results: same Δ sequence as plain truncation, every mapping
				// from the unsharded full result, for any worker count.
				adaptive := truncated
				adaptive.AdaptiveTopN = true
				adaptive.Parallelism = 1 + shards%4
				repAdaptive, err := r.Match(context.Background(), personal, adaptive)
				if err != nil {
					r.Close()
					t.Fatalf("seed %d %v shards=%d adaptive: %v", tc.seed, strategy, shards, err)
				}
				ad := repAdaptive.Deltas()
				if len(ad) != len(dd) {
					t.Fatalf("seed %d %v shards=%d: adaptive topN found %d mappings, want %d",
						tc.seed, strategy, shards, len(ad), len(dd))
				}
				for i := range dd {
					if dd[i] != ad[i] {
						t.Errorf("seed %d %v shards=%d: adaptive topN rank %d Δ=%v, want %v",
							tc.seed, strategy, shards, i, ad[i], dd[i])
					}
				}
				seenAd := make(map[string]int)
				for _, k := range reportKeys(repAdaptive) {
					seenAd[k]++
					if seenAd[k] > fullKeys[k] {
						t.Errorf("seed %d %v shards=%d: adaptive topN mapping %s not in the unsharded result",
							tc.seed, strategy, shards, k)
					}
				}
				r.Close()
			}
		}
	}
}

// TestShardedEquivalenceTopNDeltas pins the truncated-ranking guarantee on
// its own: for every shard count and both strategies the top-N Δ sequence
// is byte-identical to the unsharded one (mapping identity inside an
// equal-Δ group straddling the cut is tie-arbitrary by documented design).
func TestShardedEquivalenceTopNDeltas(t *testing.T) {
	repo := syntheticRepo(t, 500, 11)
	rng := rand.New(rand.NewSource(11))
	personal := randomPersonal(rng, repo, 3)

	opts := pipeline.DefaultOptions()
	opts.Variant = pipeline.VariantTree
	opts.MinSim = 0.4
	opts.Threshold = 0.55

	for _, topN := range []int{1, 2, 5, 10} {
		o := opts
		o.TopN = topN
		direct, err := pipeline.NewRunner(repo).Run(personal, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, strategy := range []PartitionStrategy{PartitionBalanced, PartitionClustered} {
			for _, shards := range []int{2, 5, 8} {
				// Plain truncation and the adaptive parallel engine must
				// produce the same Δ sequence through the sharded path.
				for _, adaptive := range []bool{false, true} {
					ro := o
					if adaptive {
						ro.AdaptiveTopN = true
						ro.Parallelism = 4
					}
					r := NewRouterWithPartition(repo, shards, Config{Workers: 2}, strategy)
					rep, err := r.Match(context.Background(), personal, ro)
					if err != nil {
						r.Close()
						t.Fatal(err)
					}
					dd, sd := direct.Deltas(), rep.Deltas()
					if len(dd) != len(sd) {
						t.Fatalf("topN=%d %v shards=%d adaptive=%v: %d mappings, want %d",
							topN, strategy, shards, adaptive, len(sd), len(dd))
					}
					for i := range dd {
						if dd[i] != sd[i] {
							t.Errorf("topN=%d %v shards=%d adaptive=%v rank %d: Δ=%v, want %v",
								topN, strategy, shards, adaptive, i, sd[i], dd[i])
						}
					}
					r.Close()
				}
			}
		}
	}
}
