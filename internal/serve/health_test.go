package serve

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bellflower/internal/labeling"
)

// flakyCheck is a probe target whose verdict tests flip atomically.
type flakyCheck struct{ fail atomic.Bool }

func (f *flakyCheck) check(ctx context.Context) error {
	if f.fail.Load() {
		return errors.New("injected probe failure")
	}
	return nil
}

// TestHealthMonitorStateMachine drives the consecutive-failure machine by
// hand: threshold mark-down, probe-gated re-admission, and the rule that
// live-traffic successes never re-admit an unhealthy target.
func TestHealthMonitorStateMachine(t *testing.T) {
	var f flakyCheck
	m := NewHealthMonitor("shard-a", f.check, HealthConfig{FailureThreshold: 3})
	defer m.Stop()

	if !m.Healthy() {
		t.Fatal("fresh monitor not healthy")
	}

	// Two failures: still healthy (threshold 3), streak visible.
	f.fail.Store(true)
	m.Probe()
	m.ReportFailure(errors.New("transport: connection refused"))
	if !m.Healthy() {
		t.Fatal("marked unhealthy below the failure threshold")
	}
	if s := m.Snapshot(); s.ConsecutiveFailures != 2 {
		t.Fatalf("ConsecutiveFailures = %d, want 2", s.ConsecutiveFailures)
	}

	// A live-traffic success while HEALTHY clears the streak.
	m.ReportSuccess()
	if s := m.Snapshot(); s.ConsecutiveFailures != 0 || s.LastError != "" {
		t.Fatalf("healthy ReportSuccess did not clear the streak: %+v", s)
	}

	// Third-in-a-row marks down; probes and traffic failures count alike.
	m.ReportFailure(errors.New("one"))
	m.Probe()
	m.ReportFailure(errors.New("three"))
	if m.Healthy() {
		t.Fatal("not marked unhealthy at the failure threshold")
	}
	s := m.Snapshot()
	if s.Transitions != 1 {
		t.Fatalf("Transitions = %d, want 1", s.Transitions)
	}
	if s.LastError != "three" {
		t.Fatalf("LastError = %q, want the most recent failure", s.LastError)
	}
	if !strings.Contains(m.String(), "unhealthy") {
		t.Fatalf("String() = %q, want the unhealthy rendering", m.String())
	}

	// Live-traffic success must NOT re-admit: only a probe (descriptor
	// re-verification) can.
	m.ReportSuccess()
	if m.Healthy() {
		t.Fatal("live-traffic success re-admitted an unhealthy target")
	}

	// A failing probe keeps it down; a clean probe re-admits.
	m.Probe()
	if m.Healthy() {
		t.Fatal("failing probe re-admitted the target")
	}
	f.fail.Store(false)
	if !m.Probe() {
		t.Fatal("clean probe did not re-admit the target")
	}
	s = m.Snapshot()
	if !s.Healthy || s.Transitions != 2 || s.ConsecutiveFailures != 0 || s.LastError != "" {
		t.Fatalf("re-admitted snapshot wrong: %+v", s)
	}
}

// TestHealthMonitorSuccessThreshold: with SuccessThreshold 2 one clean
// probe is not enough to re-admit; and an interleaved failure resets the
// recovery streak.
func TestHealthMonitorSuccessThreshold(t *testing.T) {
	var f flakyCheck
	m := NewHealthMonitor("shard-b", f.check, HealthConfig{FailureThreshold: 1, SuccessThreshold: 2})
	defer m.Stop()

	f.fail.Store(true)
	m.Probe()
	if m.Healthy() {
		t.Fatal("threshold 1 did not mark down on the first failure")
	}
	f.fail.Store(false)
	m.Probe()
	if m.Healthy() {
		t.Fatal("re-admitted after 1 clean probe, want 2")
	}
	f.fail.Store(true)
	m.Probe() // resets the recovery streak
	f.fail.Store(false)
	m.Probe()
	if m.Healthy() {
		t.Fatal("recovery streak survived an interleaved failure")
	}
	m.Probe()
	if !m.Healthy() {
		t.Fatal("2 consecutive clean probes did not re-admit")
	}
}

// TestHealthMonitorMarkUnhealthy: the construction-time seed flips
// immediately and still needs a probe to recover.
func TestHealthMonitorMarkUnhealthy(t *testing.T) {
	var f flakyCheck
	m := NewHealthMonitor("shard-c", f.check, HealthConfig{})
	defer m.Stop()
	m.MarkUnhealthy(errors.New("unreachable at construction"))
	if m.Healthy() {
		t.Fatal("MarkUnhealthy left the target healthy")
	}
	s := m.Snapshot()
	if s.Transitions != 1 || s.LastError == "" {
		t.Fatalf("seeded snapshot wrong: %+v", s)
	}
	m.ReportSuccess()
	if m.Healthy() {
		t.Fatal("traffic success re-admitted a seeded-down target")
	}
	if !m.Probe() {
		t.Fatal("clean probe did not re-admit a seeded-down target")
	}
}

// TestHealthMonitorLoop: Start runs background probes on the jittered
// interval and Stop terminates the loop (idempotently, and safely on a
// monitor that never started).
func TestHealthMonitorLoop(t *testing.T) {
	var f flakyCheck
	m := NewHealthMonitor("shard-d", f.check, HealthConfig{Interval: 2 * time.Millisecond})
	m.Start()
	m.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for m.Snapshot().Probes < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("background loop ran %d probes, want >= 3", m.Snapshot().Probes)
		}
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	n := m.Snapshot().Probes
	time.Sleep(20 * time.Millisecond)
	if got := m.Snapshot().Probes; got != n {
		t.Fatalf("probes kept running after Stop: %d -> %d", n, got)
	}

	// Never-started monitor: Stop must not hang.
	NewHealthMonitor("idle", f.check, HealthConfig{}).Stop()
}

// healthStub is a stubShard with a controllable HealthReporter verdict.
type healthStub struct {
	stubShard
	healthy atomic.Bool
}

func (h *healthStub) Healthy() bool { return h.healthy.Load() }

// TestRouterSkipsUnhealthyShard: the partial-results fan-out must skip a
// shard whose backend reports unhealthy WITHOUT calling it (the
// zero-per-request-tax guarantee), serve the rest as Incomplete, count
// the skip, and un-skip the moment the backend recovers; strict routing
// must keep attempting the shard regardless.
func TestRouterSkipsUnhealthyShard(t *testing.T) {
	repo := testRepo(t)
	ix := labeling.NewIndex(repo)
	views := PartitionRepositoryViews(ix, 2, PartitionClustered)
	down := &healthStub{stubShard: stubShard{rep: stubReport(0.9)}}
	up := &healthStub{stubShard: stubShard{rep: stubReport(0.8)}}
	up.healthy.Store(true)
	r := NewRouterWithShardBackends(ix, views, []ShardBackend{down, up}, Config{PartialResults: true})
	defer r.Close()

	rep, err := r.Match(context.Background(), personal(), testOpts())
	if err != nil {
		t.Fatalf("fan-out with one unhealthy shard failed outright: %v", err)
	}
	if !rep.Incomplete || len(rep.ShardErrors) != 1 || rep.ShardErrors[0].Shard != 0 {
		t.Fatalf("incomplete=%v errors=%+v, want incomplete with shard 0 skipped", rep.Incomplete, rep.ShardErrors)
	}
	if !strings.Contains(rep.ShardErrors[0].Err, ErrShardUnhealthy.Error()) {
		t.Fatalf("skip error %q does not carry ErrShardUnhealthy", rep.ShardErrors[0].Err)
	}
	if n := down.matchCalls.Load() + down.stagedCalls.Load(); n != 0 {
		t.Fatalf("unhealthy shard was called %d times; the skip must cost nothing", n)
	}
	if got := r.Stats().HealthSkips; got != 1 {
		t.Fatalf("HealthSkips = %d, want 1", got)
	}

	// Every shard unhealthy: nothing to merge, the request errors.
	up.healthy.Store(false)
	if _, err := r.Match(context.Background(), personal(), testOpts()); !errors.Is(err, ErrShardUnhealthy) {
		t.Fatalf("all-unhealthy fan-out: err = %v, want ErrShardUnhealthy", err)
	}

	// Recovery: flip both healthy, the fan-out reaches them again.
	down.healthy.Store(true)
	up.healthy.Store(true)
	rep, err = r.Match(context.Background(), personal(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete {
		t.Fatal("recovered fan-out still marked Incomplete")
	}
	if down.stagedCalls.Load() == 0 {
		t.Fatal("recovered shard never reached")
	}

	// Strict routing ignores the health verdict: the shard is attempted.
	down.healthy.Store(false)
	r.SetPartialResults(false)
	before := down.stagedCalls.Load()
	if _, err := r.Match(context.Background(), personal(), testOpts()); err != nil {
		t.Fatal(err)
	}
	if down.stagedCalls.Load() != before+1 {
		t.Fatal("strict fan-out skipped an unhealthy shard; only partial mode may skip")
	}
}

// TestStatsHealthFields: rollup semantics of the control-plane fields —
// Failovers and HealthSkips sum, per-replica snapshots never survive into
// a rollup (their shard identity would be lost).
func TestStatsHealthFields(t *testing.T) {
	a := Stats{Failovers: 2, HealthSkips: 1, Replicas: []ReplicaHealth{{Addr: "a", Healthy: true}}}
	b := Stats{Failovers: 3, HealthSkips: 4}
	m := MergeStats(a, b)
	if m.Failovers != 5 || m.HealthSkips != 5 {
		t.Fatalf("merged Failovers=%d HealthSkips=%d, want 5 and 5", m.Failovers, m.HealthSkips)
	}
	if m.Replicas != nil {
		t.Fatalf("rollup carries replica snapshots: %+v", m.Replicas)
	}
}

// TestPrometheusReplicaHealth: the bellflower_shard_healthy gauge is
// emitted per {shard,replica} with 1/0 values — including for a
// single-shard snapshot, where the other per-shard families are elided —
// and the rollup carries the failover/skip counters.
func TestPrometheusReplicaHealth(t *testing.T) {
	total := Stats{Failovers: 7, HealthSkips: 3}
	shards := []Stats{{
		Failovers: 7,
		Replicas: []ReplicaHealth{
			{Addr: "http://a:1", Healthy: true},
			{Addr: "http://b:2", Healthy: false},
		},
	}}
	var sb strings.Builder
	if err := WritePrometheusSnapshot(&sb, total, shards); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"bellflower_failovers_total 7",
		"bellflower_health_skips_total 3",
		`bellflower_shard_healthy{shard="0",replica="http://a:1"} 1`,
		`bellflower_shard_healthy{shard="0",replica="http://b:2"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Single-shard snapshot: the duplicate per-shard counter families stay
	// elided even though replica health is present.
	if strings.Contains(out, "bellflower_shard_requests_total") {
		t.Error("single-shard snapshot emitted duplicate per-shard counter families")
	}

	// Two-shard snapshot with replicas: per-shard families AND health.
	sb.Reset()
	if err := WritePrometheusSnapshot(&sb, total, append(shards, Stats{})); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if !strings.Contains(out, `bellflower_shard_failovers_total{shard="0"} 7`) {
		t.Error("two-shard snapshot missing per-shard failover counter")
	}
	if !strings.Contains(out, `bellflower_shard_healthy{shard="0",replica="http://a:1"} 1`) {
		t.Error("two-shard snapshot missing replica health gauge")
	}
}
