package serve

import (
	"fmt"
	"testing"
	"unsafe"

	"bellflower/internal/cluster"
	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
)

// The governor's size estimators are heuristics: dominant slice-growth
// terms plus flat overhead, with pointer-shared repository nodes
// deliberately excluded. This file calibrates them against an
// unsafe.Sizeof sweep of the real structures — the measured resident bytes
// of exactly what the estimator claims to cover — so silent drift (a new
// heavy Report field, a grown Candidate struct) fails loudly instead of
// quietly skewing every cache-byte account.

// calibrationBand is the accepted estimate/measured ratio. The estimators
// round structure overheads to flat constants, so they are not exact; a
// [1/3, 3] band catches order-of-magnitude drift while tolerating the
// documented flatness.
const (
	calibrationLo = 1.0 / 3
	calibrationHi = 3.0
)

func checkBand(t *testing.T, what string, estimate, measured int64) {
	t.Helper()
	if measured <= 0 {
		t.Fatalf("%s: measured %d bytes", what, measured)
	}
	ratio := float64(estimate) / float64(measured)
	if ratio < calibrationLo || ratio > calibrationHi {
		t.Errorf("%s: estimate %d vs measured %d (ratio %.2f outside [%.2f, %.2f]) — recalibrate the estimator in governor.go",
			what, estimate, measured, ratio, calibrationLo, calibrationHi)
	}
}

// measuredReportBytes sweeps the report's resident memory with
// unsafe.Sizeof: struct sizes plus every owned slice's backing array.
// Shared *schema.Node targets are excluded, mirroring the estimator's
// contract (the repository is not governed memory).
func measuredReportBytes(rep *pipeline.Report) int64 {
	b := int64(unsafe.Sizeof(*rep))
	b += int64(cap(rep.ClusterSizes)) * int64(unsafe.Sizeof(int(0)))
	b += int64(cap(rep.Mappings)) * int64(unsafe.Sizeof(mapgen.Mapping{}))
	for i := range rep.Mappings {
		b += int64(cap(rep.Mappings[i].Images)) * ptrSize
		b += int64(cap(rep.Mappings[i].Sims)) * 8
	}
	b += int64(cap(rep.Partials)) * int64(unsafe.Sizeof(mapgen.PartialMapping{}))
	for i := range rep.Partials {
		b += int64(cap(rep.Partials[i].Images)) * ptrSize
		b += int64(cap(rep.Partials[i].Sims)) * 8
	}
	b += int64(cap(rep.ShardErrors)) * int64(unsafe.Sizeof(pipeline.ShardError{}))
	for i := range rep.ShardErrors {
		b += int64(len(rep.ShardErrors[i].Err))
	}
	return b
}

func measuredCandidatesBytes(c *matcher.Candidates) int64 {
	b := int64(unsafe.Sizeof(*c))
	b += int64(cap(c.Sets)) * int64(unsafe.Sizeof(matcher.CandidateSet{}))
	for i := range c.Sets {
		b += int64(cap(c.Sets[i].Elems)) * int64(unsafe.Sizeof(matcher.Candidate{}))
	}
	return b
}

func measuredClustersBytes(cls []*cluster.Cluster) int64 {
	b := int64(cap(cls)) * ptrSize
	for _, cl := range cls {
		b += int64(unsafe.Sizeof(*cl))
		b += int64(cap(cl.Elements)) * int64(unsafe.Sizeof(cluster.Element{}))
	}
	return b
}

const ptrSize = int64(unsafe.Sizeof((*schema.Node)(nil)))

// TestGovernorEstimatorCalibration sweeps synthetic shapes — mapping
// counts × widths, candidate-set fans, cluster populations — and real
// pipeline output, asserting every estimator stays within the calibration
// band of its unsafe.Sizeof measurement.
func TestGovernorEstimatorCalibration(t *testing.T) {
	// Reports: synthetic sweep over the dominant growth axes.
	for _, nMappings := range []int{0, 1, 16, 256} {
		for _, width := range []int{1, 3, 8} {
			rep := &pipeline.Report{ClusterSizes: make([]int, nMappings/4)}
			for i := 0; i < nMappings; i++ {
				rep.Mappings = append(rep.Mappings, mappingOfWidth(width))
			}
			if nMappings > 0 {
				rep.ShardErrors = []pipeline.ShardError{{Shard: 1, Err: "shard 1 unreachable"}}
			}
			checkBand(t, fmt.Sprintf("reportBytes(mappings=%d,width=%d)", nMappings, width),
				reportBytes(rep), measuredReportBytes(rep))
		}
	}

	// Candidates and clusters: real cold-path output at several scales,
	// so the sweep covers realistic fan shapes, not just synthetic ones.
	for _, nodes := range []int{200, 600} {
		repo := syntheticRepo(t, nodes, int64(nodes))
		p := schema.MustParseSpec("address(name,email)")
		cands := matcher.FindCandidates(p, repo, matcher.NameMatcher{}, matcher.Config{MinSim: 0.3})
		if cands.TotalMappingElements() == 0 {
			t.Fatalf("nodes=%d: empty candidate sweep is vacuous", nodes)
		}
		checkBand(t, fmt.Sprintf("candidatesBytes(nodes=%d)", nodes),
			candidatesBytes(cands), measuredCandidatesBytes(cands))

		runner := pipeline.NewRunner(repo)
		opts := pipeline.DefaultOptions()
		opts.MinSim = 0.3
		opts.Threshold = 0.5
		clusters, _, err := pipeline.ComputeClusters(runner.Index(), cands, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(clusters) == 0 {
			t.Fatalf("nodes=%d: empty cluster sweep is vacuous", nodes)
		}
		checkBand(t, fmt.Sprintf("clustersBytes(nodes=%d)", nodes),
			clustersBytes(clusters), measuredClustersBytes(clusters))

		// Pre-pass entries combine both.
		e := &prepassEntry{cands: cands, clusters: clusters}
		checkBand(t, fmt.Sprintf("prepassEntryBytes(nodes=%d)", nodes),
			prepassEntryBytes(e),
			int64(unsafe.Sizeof(*e))+measuredCandidatesBytes(cands)+measuredClustersBytes(clusters))

		// And a real report end to end.
		rep, err := runner.Run(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkBand(t, fmt.Sprintf("reportBytes(real,nodes=%d)", nodes),
			reportBytes(rep), measuredReportBytes(rep))
	}
}

// TestGovernorEstimatorMarginalCost pins the per-entry growth slope: the
// marginal estimate of one more mapping must track the measured marginal
// cost, so a budget sized in MiB admits roughly the right entry COUNT even
// when flat overheads cancel out.
func TestGovernorEstimatorMarginalCost(t *testing.T) {
	small := &pipeline.Report{}
	big := &pipeline.Report{}
	const n, width = 128, 4
	for i := 0; i < n; i++ {
		big.Mappings = append(big.Mappings, mappingOfWidth(width))
	}
	estMarginal := float64(reportBytes(big)-reportBytes(small)) / n
	measMarginal := float64(measuredReportBytes(big)-measuredReportBytes(small)) / n
	ratio := estMarginal / measMarginal
	if ratio < calibrationLo || ratio > calibrationHi {
		t.Errorf("marginal mapping cost: estimate %.1f vs measured %.1f B/mapping (ratio %.2f)",
			estMarginal, measMarginal, ratio)
	}
}
