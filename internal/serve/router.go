package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/query"
	"bellflower/internal/schema"
	"bellflower/internal/trace"
)

// Backend is the serving surface shared by Service (one shard) and Router
// (a shard fan-out). The HTTP daemon and other embedders program against
// this interface so single-shard and sharded deployments are
// interchangeable. All methods are safe for concurrent use.
type Backend interface {
	// Match serves one match request; see Service.Match.
	Match(ctx context.Context, personal *schema.Tree, opts pipeline.Options) (*pipeline.Report, error)

	// MatchBatch serves a batch concurrently, results in request order.
	MatchBatch(ctx context.Context, reqs []Request) []Result

	// RewriteQuery translates a personal-schema XPath query through a
	// mapping discovered by Match on this backend.
	RewriteQuery(q string, personal *schema.Tree, mp mapgen.Mapping) (string, error)

	// Stats returns a snapshot of the backend's instrumentation, rolled up
	// across shards. In a rolled-up snapshot per-shard quantities are
	// summed, so one fanned-out request counts once per shard.
	Stats() Stats

	// ShardStats returns one snapshot per shard (length NumShards).
	ShardStats() []Stats

	// Snapshot returns the rollup and the per-shard snapshots it was
	// computed from, taken together: total's shard-derived fields always
	// equal the sum of the shards (plus any router-level counters), which
	// separate Stats and ShardStats calls cannot promise under traffic.
	Snapshot() (total Stats, shards []Stats)

	// RepositoryStats summarizes the repository across all shards.
	RepositoryStats() schema.Stats

	// NumShards reports the fan-out width (1 for a plain Service).
	NumShards() int

	// Close releases the backend; Match calls after Close return ErrClosed.
	Close()
}

var (
	_ Backend = (*Service)(nil)
	_ Backend = (*Router)(nil)
)

// ShardBackend is the narrow surface the Router demands of one shard: the
// three match entry points (full pipeline, generation after a projected
// candidate set, generation after projected candidates AND clusters), a
// stats snapshot and teardown. A shard is ANY implementation — an
// in-process view-backed Service, or a client for a shard hosted in
// another process (internal/shardrpc.RemoteShard speaks the wire protocol
// behind bellflower-server's -shard-of mode). The router reaches shards
// only through this interface, so local and remote topologies are
// interchangeable; everything shard-internal (report caches, worker pools,
// indexes) stays behind it.
//
// Implementations must be safe for concurrent use. The candidate sets and
// clusters handed to the staged entry points are projections onto the
// shard's tree set (see labeling.View); implementations must treat them as
// read-only.
type ShardBackend interface {
	// Match serves one request through the shard's full pipeline; see
	// Service.Match.
	Match(ctx context.Context, personal *schema.Tree, opts pipeline.Options) (*pipeline.Report, error)

	// MatchWithCandidates is Match with element matching precomputed; see
	// Service.MatchWithCandidates.
	MatchWithCandidates(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates) (*pipeline.Report, error)

	// MatchWithClusters is Match with matching AND clustering precomputed;
	// see Service.MatchWithClusters.
	MatchWithClusters(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates, clusters []*cluster.Cluster, iterations int) (*pipeline.Report, error)

	// Stats returns a snapshot of the shard's instrumentation.
	Stats() Stats

	// Close releases the shard; matches after Close fail with an error.
	Close()
}

var _ ShardBackend = (*Service)(nil)

// ErrShardMismatch marks a shard error that is a topology
// MISCONFIGURATION — the shard serves a different partition, strategy or
// repository than the router expects (wrapped by
// shardrpc.ErrDescriptorMismatch). Unlike a crash or timeout it cannot
// heal by itself and the shard's answers would be wrong, so the
// partial-results fan-out refuses to degrade around it: a fan-out
// containing a mismatch error fails even with partial results enabled.
var ErrShardMismatch = errors.New("serve: shard topology mismatch")

// defaultShardCapacityHint sizes batch fan-outs for shards that do not
// advertise a capacity (CapacityHint); see Router.MatchBatch.
const defaultShardCapacityHint = 8

// Router fans match requests out across repository shards — one Service per
// repository partition — and merges the per-shard ranked mapping lists into
// a single global report. Candidate matching is per-tree and clusters never
// span repository trees (cross-tree distance is infinite), so partitioning
// at tree granularity loses no candidate mappings, and a pre-pass router
// (below) reproduces the unsharded report exactly — for every clustering
// variant — up to the ordering of equal-Δ ties (golden- and
// property-tested). Without the pre-pass (NewRouter over pre-existing
// services), tree clustering remains exact but the k-means variants
// cluster per shard — centroid seeding uses the repository-wide MEmin and
// termination is a global stability criterion when unsharded — so they
// may keep or drop a different set of low-ranked mappings: the same class
// of controlled approximation the clustering step itself introduces.
//
// Routers built from a whole repository (NewRouterFromRepository,
// NewRouterWithPartition) index the repository exactly ONCE and run their
// shards as labeling.Views over that shared index — a shard is a set of
// member trees plus an ID translation, not a cloned sub-repository, so
// resident index memory does not grow with the shard count. They
// additionally run a shared pre-pass: element matching — the
// O(|personal| × |repo|) cold-path stage — and clustering execute once
// against the full repository per pre-pass signature (personal schema +
// matcher + MinSim + clustering options; see CandidateSignature), are
// cached under the unified memory governor, and the results are projected
// onto each shard by pure filtering (matcher.Candidates.Restrict for the
// candidates; clusters never span trees, so each global cluster is handed
// wholesale to its owning shard). Shard services then run only mapping
// generation, via Service.MatchWithClusters. The projection is exact, and
// because clustering is global the k-means variants produce the SAME
// clusters as an unsharded run — pre-pass routers drop the per-shard
// clustering approximation described above. Routers wrapped around
// pre-existing shard services (NewRouter) have no full-repository view and
// fall back to the per-shard pipeline.
//
// Create with NewRouter or NewRouterFromRepository and release with Close.
// A Router is safe for use from many goroutines.
type Router struct {
	shards  []ShardBackend
	locals  []*Service           // locals[i] is shards[i] when it lives in-process, nil for remote backends
	shardOf map[*schema.Tree]int // routes mappings back to their shard
	once    sync.Once
	closed  atomic.Bool
	partial atomic.Bool // opt-in partial-results fan-out

	// Pre-pass state; fullRunner == nil disables the pre-pass.
	fullRunner     *pipeline.Runner // shares the one index with the shard views
	views          []*labeling.View // per shard: the view its service runs on
	gov            *memGovernor     // unified cache governor shared with the shards
	prepass        *prepassCache
	prepassSem     chan struct{} // bounds concurrent pre-pass executions to the shard worker budget
	maxSchemaNodes int           // mirror of the shard services' guard

	// Router-level instrumentation: work and rejections that happen above
	// the shards on the pre-pass path and would otherwise be invisible in
	// every per-shard snapshot. Folded into Stats().
	prepassRuns      atomic.Int64 // full-repository pre-pass executions
	rejected         atomic.Int64 // requests refused before reaching any shard
	errored          atomic.Int64 // requests failed during the pre-pass (ctx expiry)
	partialMerges    atomic.Int64 // fan-outs served as Incomplete merges
	prepassFallbacks atomic.Int64 // pre-pass failures degraded to full per-shard pipelines
	healthSkips      atomic.Int64 // shards skipped by the fan-out as unhealthy (no request sent)

	// Router-level stage histograms (folded into Stats().Stages):
	// pre-pass executions, fan-out wall time, merge time.
	stPrepass histogram
	stFanout  histogram
	stMerge   histogram
}

// NewRouter wraps existing shard services in a router, taking ownership of
// them (Router.Close closes every shard). The services' served trees
// (Service.Trees) must be disjoint. It panics on an empty shard list.
func NewRouter(shards []*Service) *Router {
	if len(shards) == 0 {
		panic("serve: NewRouter needs at least one shard")
	}
	r := &Router{
		shards:  make([]ShardBackend, len(shards)),
		locals:  append([]*Service(nil), shards...),
		shardOf: make(map[*schema.Tree]int),
	}
	for i, s := range r.locals {
		r.shards[i] = s
		for _, t := range s.Trees() {
			r.shardOf[t] = i
		}
	}
	return r
}

// NewRouterFromRepository partitions the repository into up to n shards
// with the DefaultPartitionStrategy, indexes each partition and starts one
// Service per shard; it is NewRouterWithPartition with the default
// strategy.
func NewRouterFromRepository(repo *schema.Repository, n int, cfg Config) *Router {
	return NewRouterWithPartition(repo, n, cfg, DefaultPartitionStrategy)
}

// NewRouterWithPartition partitions the repository with the given strategy
// (see PartitionStrategy) into shard VIEWS over one shared labelling index
// — the repository is indexed exactly once, and each shard service runs on
// a lightweight labeling.View (member trees plus ID translation) instead
// of a cloned sub-repository with an index of its own. It starts one
// Service per shard and enables the shared candidate pre-pass, which runs
// against the same index. When cfg.Workers is 0 each shard gets GOMAXPROCS
// divided by the shard count (at least 1), so the default total worker
// budget matches an unsharded Service instead of multiplying by n.
//
// The router also owns the unified memory governor: every shard's report
// cache and the pre-pass cache charge into one byte budget
// (cfg.CacheBytes) with a shared TTL (cfg.CacheTTL). cfg.PartialResults
// opts into the partial-results fan-out (see SetPartialResults).
func NewRouterWithPartition(repo *schema.Repository, n int, cfg Config, strategy PartitionStrategy) *Router {
	ix := labeling.NewIndex(repo)
	ni := matcher.NewNameIndex(repo)
	views := PartitionRepositoryViews(ix, n, strategy)
	if cfg.Workers == 0 && len(views) > 1 {
		cfg.Workers = runtime.GOMAXPROCS(0) / len(views)
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	gov := newGovernor(cfg.CacheBytes, cfg.CacheTTL)
	shardCfg := cfg
	shardCfg.gov = gov
	shards := make([]*Service, len(views))
	for i, v := range views {
		shards[i] = New(pipeline.NewViewRunnerWithNameIndex(v, ni), shardCfg)
	}
	r := NewRouter(shards)
	// The pre-pass runs on request goroutines (it must complete even when
	// its leader's own shard work would be queued); bound its concurrency
	// to the summed shard worker budget so a burst of distinct cold
	// requests cannot run more CPU-bound matching than the operator sized
	// the service for.
	r.enablePrepass(ix, ni, views, gov, cfg, cfg.withDefaults().Workers*len(views))
	return r
}

// NewRouterWithShardBackends assembles a router over externally built shard
// backends — typically shardrpc.RemoteShard clients for shards hosted in
// other processes, though any ShardBackend mix works. ix must be the
// labelling index of the full repository and views[i] the shard view
// backend i serves (the router routes clusters and rewrites by view
// membership, and the views' tree descriptors are the backends' wire ID
// space). The router takes ownership of the backends (Close closes them),
// runs the shared pre-pass against ix exactly like NewRouterWithPartition,
// and — because remote shards burn no local CPU — bounds pre-pass
// concurrency to one local worker budget instead of the summed per-shard
// budgets. It panics when views and backends disagree in length or are
// empty.
func NewRouterWithShardBackends(ix *labeling.Index, views []*labeling.View, backends []ShardBackend, cfg Config) *Router {
	if len(backends) == 0 || len(views) != len(backends) {
		panic(fmt.Sprintf("serve: NewRouterWithShardBackends: %d views for %d backends", len(views), len(backends)))
	}
	r := &Router{
		shards:  append([]ShardBackend(nil), backends...),
		locals:  make([]*Service, len(backends)),
		shardOf: make(map[*schema.Tree]int),
	}
	for i, b := range backends {
		r.locals[i], _ = b.(*Service)
		for _, t := range views[i].Trees() {
			r.shardOf[t] = i
		}
	}
	r.enablePrepass(ix, matcher.NewNameIndex(ix.Repository()), views, newGovernor(cfg.CacheBytes, cfg.CacheTTL), cfg, cfg.withDefaults().Workers)
	return r
}

// enablePrepass switches the router onto the shared pre-pass path: one
// full-repository runner over ix and ni, per-shard views for projection,
// and the pre-pass cache under gov. prepassConc bounds concurrent pre-pass
// executions.
func (r *Router) enablePrepass(ix *labeling.Index, ni *matcher.NameIndex, views []*labeling.View, gov *memGovernor, cfg Config, prepassConc int) {
	r.fullRunner = pipeline.NewRunnerFromIndexes(ix, ni)
	// One EngineStats across the pre-pass runner and every local shard
	// runner, so generation counters accumulate into a single figure per
	// repository generation (the NameIndex kernel-counter discipline).
	gs := r.fullRunner.GenStats()
	for _, s := range r.locals {
		if s != nil {
			s.runner.ShareGenStats(gs)
		}
	}
	r.views = views
	r.gov = gov
	r.partial.Store(cfg.PartialResults)
	r.prepassSem = make(chan struct{}, prepassConc)
	r.prepass = newPrepassCache(gov, prepassCacheSize)
	r.maxSchemaNodes = cfg.withDefaults().MaxSchemaNodes
}

// SetPartialResults switches the partial-results fan-out on or off at
// runtime (Config.PartialResults sets the initial state): when enabled, a
// fanned-out request whose shards PARTIALLY fail returns a merged report
// built from the successful shards, marked Incomplete with per-shard
// errors, instead of failing outright. Requests that fail on every shard
// — or during the pre-pass, before any shard ran — still return an error.
// Safe to call concurrently with Match.
func (r *Router) SetPartialResults(on bool) { r.partial.Store(on) }

// PartialResults reports whether the partial-results fan-out is enabled.
func (r *Router) PartialResults() bool { return r.partial.Load() }

// Match fans the request out to every shard concurrently and merges the
// per-shard reports into one global report: mappings rank-merged (stable,
// ties across shards resolved by shard index) and truncated to opts.TopN,
// counters summed, stage times reported as the slowest shard's (the shards
// run concurrently). ctx bounds the whole fan-out; each shard honours it
// exactly as Service.Match does.
//
// If any shard fails — its deadline expired, the service closed, the
// request was rejected — Match returns that shard's error rather than a
// silently incomplete merge: a report missing one shard's mappings would
// present a wrong top-N as authoritative. Shards that already completed
// contribute their reports to their own caches, so a retry is cheap.
// With partial results enabled (Config.PartialResults /
// SetPartialResults) a partially failed fan-out instead returns the
// successful shards' merge marked Incomplete with per-shard errors —
// unless ctx itself has expired, every shard failed, or a shard reported
// a topology mismatch (ErrShardMismatch), which still error. A FAILED
// PRE-PASS also degrades under partial results: the request falls back to
// full per-shard pipelines (counted by Stats.PrePassFallbacks) instead of
// failing, unless the failure is the caller's own context expiring.
func (r *Router) Match(ctx context.Context, personal *schema.Tree, opts pipeline.Options) (*pipeline.Report, error) {
	if r.closed.Load() {
		return nil, ErrClosed
	}
	if len(r.shards) == 1 {
		return r.shards[0].Match(ctx, personal, opts)
	}
	if r.fullRunner == nil {
		return r.fanOut(ctx, personal, opts, nil)
	}

	// Pre-pass: validate cheaply (the rejections the shard services would
	// issue anyway — matching and clustering an invalid request would burn
	// the cold-path stages for nothing), run element matching + clustering
	// once against the full repository, project both per shard.
	if personal == nil || personal.Root() == nil {
		r.rejected.Add(1)
		return nil, errors.New("serve: nil personal schema")
	}
	if r.maxSchemaNodes > 0 && personal.Len() > r.maxSchemaNodes {
		r.rejected.Add(1)
		return nil, fmt.Errorf("serve: %w: %d nodes > limit %d", ErrSchemaTooLarge, personal.Len(), r.maxSchemaNodes)
	}
	if err := opts.Validate(); err != nil {
		r.rejected.Add(1)
		return nil, err
	}
	_, psp := trace.StartSpan(ctx, "prepass")
	e, err := r.runPrepass(ctx, personal, opts)
	if psp != nil {
		if err != nil {
			psp.SetAttr("error", err.Error())
		}
		psp.End()
	}
	if err != nil {
		// Pre-pass-failure degradation: with partial results enabled, a
		// failed pre-pass falls back to full per-shard pipelines instead of
		// failing the request — the shards can still match and cluster
		// their own slices (for the k-means variants that is the documented
		// per-shard approximation, the same one no-pre-pass NewRouter
		// topologies serve). The caller's own expiry still errors: a dead
		// request must not be answered with a degraded success.
		if r.partial.Load() && ctx.Err() == nil && !ctxError(err) {
			r.prepassFallbacks.Add(1)
			return r.fanOut(ctx, personal, opts, nil)
		}
		r.errored.Add(1)
		return nil, err
	}
	// A cache hit may carry an earlier request's personal-tree instance;
	// equal pre-pass signatures guarantee structural identity, so rebind
	// to this request's tree before restricting per shard.
	cands := e.cands.Rebind(personal)
	staged := make([]stagedShard, len(r.shards))
	for i := range r.shards {
		// Shards are views of the same repository the pre-pass matched
		// against, so projection is pure filtering — candidates keep their
		// original node objects and order; no clone-time ID remapping.
		staged[i].cands = cands.Restrict(r.views[i].Contains)
		staged[i].clusters = []*cluster.Cluster{} // non-nil: a shard may legitimately get zero clusters
		staged[i].iterations = e.iterations
	}
	for _, cl := range e.clusters {
		if cl.Len() == 0 {
			continue
		}
		i, ok := r.shardOf[cl.Elements[0].Node.Tree()]
		if !ok {
			continue // defensive: a cluster outside the partition cannot be served
		}
		// Clusters never span trees, so a global cluster belongs wholesale
		// to one shard and is handed over as-is (shared, read-only) — the
		// preorder-rank translation the clone model needed is gone.
		staged[i].clusters = append(staged[i].clusters, cl)
	}
	rep, err := r.fanOut(ctx, personal, opts, staged)
	if err != nil {
		return nil, err
	}
	// Shard reports carry zero match/cluster times (those stages ran
	// here); account the pre-pass as the merged report's stage durations.
	// A cache hit reports the original run's durations, mirroring how
	// cached reports keep their timings.
	if e.matchDur > rep.MatchTime {
		rep.MatchTime = e.matchDur
	}
	if e.clusterDur > rep.ClusterTime {
		rep.ClusterTime = e.clusterDur
	}
	return rep, nil
}

// stagedShard is one shard's slice of the pre-pass result.
type stagedShard struct {
	cands      *matcher.Candidates
	clusters   []*cluster.Cluster
	iterations int
}

// runPrepass returns the full-repository matching + clustering result for
// the request, sharing and caching the computation per pre-pass signature.
// Execution is CPU-bound and runs on the caller's goroutine, so leaders
// first acquire a slot from prepassSem — sized to the shard worker budget
// — honouring their context while they wait; a leader that gives up
// records the context error, drops the cache entry and releases its
// followers. Followers whose own context expires return ctx.Err() without
// abandoning the shared computation; followers that inherit a leader's
// context error retry with their own live context, like the flight group's
// follower-retry in Service.Match.
func (r *Router) runPrepass(ctx context.Context, personal *schema.Tree, opts pipeline.Options) (*prepassEntry, error) {
	key := prepassSignature(personal, opts)
	for {
		e, leader := r.prepass.join(key)
		if leader {
			// Check the context before the select: with a free slot AND an
			// expired context both ready, select would choose arbitrarily,
			// and an already-dead request must never start the computation.
			err := ctx.Err()
			if err == nil {
				select {
				case r.prepassSem <- struct{}{}:
				case <-ctx.Done():
					err = ctx.Err()
				}
			}
			if err != nil {
				e.err = err
				r.prepass.drop(key, e)
				close(e.done)
				return nil, err
			}
			m := opts.Matcher
			if m == nil {
				m = matcher.NameMatcher{}
			}
			t0 := time.Now()
			e.cands = r.fullRunner.MatchCandidates(personal, m, matcher.Config{MinSim: opts.MinSim})
			e.matchDur = time.Since(t0)
			t1 := time.Now()
			e.clusters, e.iterations, e.err = pipeline.ComputeClusters(r.fullRunner.Index(), e.cands, opts)
			e.clusterDur = time.Since(t1)
			<-r.prepassSem
			r.prepassRuns.Add(1)
			r.stPrepass.observe(e.matchDur + e.clusterDur)
			// Charge the completed entry's actual size to the unified
			// governor (it entered the cache at zero bytes).
			r.prepass.settle(key, e)
			close(e.done)
		} else {
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err != nil && ctxError(e.err) && ctx.Err() == nil {
				continue // inherited another caller's expiry; retry fresh
			}
		}
		if e.err != nil {
			return nil, e.err
		}
		return e, nil
	}
}

// fanOut sends the request to every shard concurrently — with the i-th
// pre-staged slice when the pre-pass ran, through plain Match when staged
// is nil — and merges the per-shard reports. Under strict routing (the
// default) any shard error fails the request; with partial results
// enabled, a partially failed fan-out merges the shards that succeeded
// and marks the report Incomplete with the per-shard errors.
func (r *Router) fanOut(ctx context.Context, personal *schema.Tree, opts pipeline.Options, staged []stagedShard) (*pipeline.Report, error) {
	fanStart := time.Now()
	fctx, fsp := trace.StartSpan(ctx, "fanout")
	defer fsp.End()
	reps := make([]*pipeline.Report, len(r.shards))
	errs := make([]error, len(r.shards))
	partial := r.partial.Load()
	var wg sync.WaitGroup
	for i, s := range r.shards {
		// Control-plane skip: under partial results a shard whose backend
		// reports itself unhealthy (every replica down, per its background
		// monitors) is skipped WITHOUT sending a request — the fan-out pays
		// nothing instead of a doomed per-shard timeout. Strict routing
		// still attempts it: the request must fail anyway if the shard is
		// truly down, and a just-recovered shard deserves the attempt.
		if partial {
			if hr, ok := s.(HealthReporter); ok && !hr.Healthy() {
				errs[i] = fmt.Errorf("serve: shard %d skipped: %w", i, ErrShardUnhealthy)
				r.healthSkips.Add(1)
				continue
			}
		}
		wg.Add(1)
		go func(i int, s ShardBackend) {
			defer wg.Done()
			sctx, ssp := trace.StartSpan(fctx, "shard")
			ssp.SetAttrInt("shard", int64(i))
			if staged != nil {
				reps[i], errs[i] = s.MatchWithClusters(sctx, personal, opts,
					staged[i].cands, staged[i].clusters, staged[i].iterations)
			} else {
				reps[i], errs[i] = s.Match(sctx, personal, opts)
			}
			if errs[i] != nil {
				ssp.SetAttr("error", errs[i].Error())
			}
			ssp.End()
		}(i, s)
	}
	wg.Wait()
	r.stFanout.observe(time.Since(fanStart))
	var ok []*pipeline.Report // successful reports, in shard order
	var failed []pipeline.ShardError
	var firstErr error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, pipeline.ShardError{Shard: i, Err: err.Error()})
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok = append(ok, reps[i])
	}
	if firstErr != nil {
		// A degraded merge is for SHARD failures. When the request's own
		// context has expired, the caller asked to stop — answering 200
		// Incomplete would convert every client timeout or disconnect
		// into a degraded success. A topology mismatch is not a failure
		// but a misconfiguration whose answers would be wrong: never
		// degrade around it.
		for _, err := range errs {
			if err != nil && errors.Is(err, ErrShardMismatch) {
				return nil, err
			}
		}
		if !partial || len(ok) == 0 || ctx.Err() != nil {
			return nil, firstErr
		}
		rep := r.merge(fctx, ok, opts.TopN)
		rep.Incomplete = true
		rep.ShardErrors = failed
		r.partialMerges.Add(1)
		return rep, nil
	}
	return r.merge(fctx, reps, opts.TopN), nil
}

// merge wraps mergeReports with the router's merge-stage instrumentation.
func (r *Router) merge(ctx context.Context, reps []*pipeline.Report, topN int) *pipeline.Report {
	t0 := time.Now()
	_, msp := trace.StartSpan(ctx, "merge")
	rep := mergeReports(reps, topN)
	msp.End()
	r.stMerge.observe(time.Since(t0))
	return rep
}

// mergeReports combines per-shard reports of one fanned-out request.
func mergeReports(reps []*pipeline.Report, topN int) *pipeline.Report {
	merged := &pipeline.Report{Variant: reps[0].Variant}
	lists := make([][]mapgen.Mapping, len(reps))
	weightedAvg := 0.0
	for i, rep := range reps {
		lists[i] = rep.Mappings
		merged.MappingElements += rep.MappingElements
		merged.Clusters += rep.Clusters
		merged.UsefulClusters += rep.UsefulClusters
		weightedAvg += rep.AvgElementsPerUsefulCluster * float64(rep.UsefulClusters)
		merged.ClusterSizes = append(merged.ClusterSizes, rep.ClusterSizes...)
		if rep.Iterations > merged.Iterations {
			merged.Iterations = rep.Iterations
		}
		merged.Counters.Add(rep.Counters)
		merged.Partials = append(merged.Partials, rep.Partials...)
		if rep.MatchTime > merged.MatchTime {
			merged.MatchTime = rep.MatchTime
		}
		if rep.ClusterTime > merged.ClusterTime {
			merged.ClusterTime = rep.ClusterTime
		}
		if rep.GenTime > merged.GenTime {
			merged.GenTime = rep.GenTime
		}
		if rep.FirstGoodAfter > 0 &&
			(merged.FirstGoodAfter == 0 || rep.FirstGoodAfter < merged.FirstGoodAfter) {
			merged.FirstGoodAfter = rep.FirstGoodAfter
		}
	}
	if merged.UsefulClusters > 0 {
		merged.AvgElementsPerUsefulCluster = weightedAvg / float64(merged.UsefulClusters)
	}
	merged.Mappings = mapgen.MergeRanked(lists, topN)
	sort.SliceStable(merged.Partials, func(i, j int) bool {
		return merged.Partials[i].Score.Delta > merged.Partials[j].Score.Delta
	})
	return merged
}

// MatchBatch serves a batch of requests concurrently through the router,
// results in request order. The goroutine fan-out is bounded by the summed
// capacity of the shards: shards advertising CapacityHint (Service,
// shardrpc.RemoteShard) are sized exactly, others at a flat default.
func (r *Router) MatchBatch(ctx context.Context, reqs []Request) []Result {
	fanout := 0
	for _, s := range r.shards {
		if h, ok := s.(interface{ CapacityHint() int }); ok {
			fanout += h.CapacityHint()
		} else {
			fanout += defaultShardCapacityHint
		}
	}
	return matchBatch(ctx, reqs, fanout, r.Match)
}

// RewriteQuery translates a personal-schema query through a mapping
// discovered by Match. Routers with a full-repository index (every
// pre-pass router, including remote-shard topologies) rewrite locally —
// the mapping's image nodes are the router's own repository nodes, so no
// shard round-trip is needed. Clone-based NewRouter topologies have no
// shared index and route to the owning shard's service instead.
func (r *Router) RewriteQuery(q string, personal *schema.Tree, mp mapgen.Mapping) (string, error) {
	if len(mp.Images) == 0 {
		return "", errors.New("serve: empty mapping")
	}
	i, ok := r.shardOf[mp.Images[0].Tree()]
	if !ok {
		return "", errors.New("serve: mapping does not belong to this router's shards")
	}
	if r.fullRunner != nil {
		parsed, err := query.Parse(q)
		if err != nil {
			return "", err
		}
		return query.Rewrite(parsed, personal, mp, r.fullRunner.Index())
	}
	if s := r.locals[i]; s != nil {
		return s.RewriteQuery(q, personal, mp)
	}
	return "", errors.New("serve: cannot rewrite through a remote shard without a shared index")
}

// Stats returns the per-shard snapshots rolled up into one (see MergeStats
// for the summing semantics), plus the router-level counters — pre-pass
// executions, and the requests rejected or failed above the shards on the
// pre-pass path — which appear only in the rollup, never in ShardStats.
func (r *Router) Stats() Stats {
	total, _ := r.Snapshot()
	return total
}

// Snapshot implements Backend: the rollup and the per-shard snapshots it
// was computed from, taken once — shard-derived fields of total always
// equal the per-shard sums, with the router-level counters added on top.
// Resident-memory gauges are refined here with knowledge MergeStats lacks:
// IndexBytes counts each distinct labelling index once (view-backed shards
// all share the router's single index, so a sharded rollup equals the
// unsharded figure; clone-based NewRouter shards sum their separate
// indexes), and CacheBytes covers the unified governor's whole account —
// every shard's reports plus the pre-pass cache.
func (r *Router) Snapshot() (Stats, []Stats) {
	shards := r.ShardStats()
	total := MergeStats(shards...)
	total.CandidatePrePass += r.prepassRuns.Load()
	rejected, errored := r.rejected.Load(), r.errored.Load()
	total.Requests += rejected + errored
	total.Rejected += rejected
	total.Errors += errored
	total.PartialResults += r.partialMerges.Load()
	total.PrePassFallbacks += r.prepassFallbacks.Load()
	total.HealthSkips += r.healthSkips.Load()
	total.Stages = mergeStages(total.Stages, r.routerStages())
	total.IndexBytes = r.indexBytes()
	total.NameIndexBytes, total.DistinctVocabRatio, total.SimCallsSaved, total.MatchPrunes = r.nameIndexStats()
	total.PartialMappings, total.ClustersSkippedByBound, total.FloorTightenings, total.GenPoolReuses = r.genStats()
	total.CacheBytes, total.CacheByteBudget, total.CacheEvictions, total.CacheExpired = r.governorStats()
	// Remote shards' caches and indexes are resident in THEIR processes;
	// their snapshots carry the figures, so the rollup adds them on top of
	// the local dedup — the total then reflects fleet-wide residency.
	for i, st := range shards {
		if r.locals[i] != nil {
			continue
		}
		total.CacheBytes += st.CacheBytes
		total.CacheByteBudget += st.CacheByteBudget
		total.CacheEvictions += st.CacheEvictions
		total.CacheExpired += st.CacheExpired
		total.IndexBytes += st.IndexBytes
		total.NameIndexBytes += st.NameIndexBytes
		total.SimCallsSaved += st.SimCallsSaved
		total.MatchPrunes += st.MatchPrunes
		total.PartialMappings += st.PartialMappings
		total.ClustersSkippedByBound += st.ClustersSkippedByBound
		total.FloorTightenings += st.FloorTightenings
		total.GenPoolReuses += st.GenPoolReuses
		if st.DistinctVocabRatio > total.DistinctVocabRatio {
			total.DistinctVocabRatio = st.DistinctVocabRatio
		}
	}
	return total, shards
}

// routerStages snapshots the router-level stage histograms (stages that
// never ran are absent, mirroring counters.snapshotStages).
func (r *Router) routerStages() map[string]LatencyStats {
	m := make(map[string]LatencyStats, 3)
	addStage(m, StagePrePass, &r.stPrepass)
	addStage(m, StageFanout, &r.stFanout)
	addStage(m, StageMerge, &r.stMerge)
	return m
}

// governorStats sums the cache-governor figures across the router,
// counting each distinct governor exactly once: a view-backed router's
// shards all share its one governor (so the figures ARE that governor's,
// pre-pass included), while clone-based NewRouter shards each own one and
// their accounts add up. Remote shards keep their caches in their own
// process; their cache figures arrive through their Stats snapshots, not
// through a local governor.
func (r *Router) governorStats() (used, budget, evictions, expired int64) {
	seen := make(map[*memGovernor]bool, len(r.locals)+1)
	add := func(g *memGovernor) {
		if g == nil || seen[g] {
			return
		}
		seen[g] = true
		u, b, e, x := g.snapshot()
		used += u
		budget += b
		evictions += e
		expired += x
	}
	add(r.gov)
	for _, s := range r.locals {
		if s != nil {
			add(s.gov)
		}
	}
	return used, budget, evictions, expired
}

// indexBytes sums the resident labelling-index memory across the router,
// counting each distinct LOCAL index exactly once (remote shards' resident
// indexes live in their own processes and are not this process's memory).
func (r *Router) indexBytes() int64 {
	seen := make(map[*labeling.Index]bool, len(r.locals)+1)
	var b int64
	if r.fullRunner != nil {
		ix := r.fullRunner.Index()
		seen[ix] = true
		b += ix.MemoryBytes()
	}
	for _, s := range r.locals {
		if s == nil {
			continue
		}
		if ix := s.Index(); !seen[ix] {
			seen[ix] = true
			b += ix.MemoryBytes()
		}
	}
	return b
}

// nameIndexStats rolls the keyed matching kernel's figures up across the
// router, counting each distinct LOCAL name index exactly once — view-backed
// shards and the pre-pass runner all share the router's single index, so the
// sharded figures equal the unsharded ones (the memory gauge proves no
// per-shard duplication, and the shared counters are not multiplied by the
// shard count). The distinct-vocabulary ratio reports the largest universe's
// ratio rather than a sum, matching MergeStats' shared-gauge semantics.
func (r *Router) nameIndexStats() (bytes int64, ratio float64, saved, prunes int64) {
	seen := make(map[*matcher.NameIndex]bool, len(r.locals)+1)
	add := func(ni *matcher.NameIndex) {
		if ni == nil || seen[ni] {
			return
		}
		seen[ni] = true
		bytes += ni.MemoryBytes()
		if dr := ni.DistinctRatio(); dr > ratio {
			ratio = dr
		}
		ks := ni.KernelStats()
		saved += ks.SavedCalls
		prunes += ks.PruneHits
	}
	if r.fullRunner != nil {
		add(r.fullRunner.NameIndex())
	}
	for _, s := range r.locals {
		if s != nil {
			add(s.runner.NameIndex())
		}
	}
	return bytes, ratio, saved, prunes
}

// genStats rolls the generation-engine counters up across the router,
// counting each distinct LOCAL EngineStats exactly once — the pre-pass
// runner and every view-backed shard runner share one (wired in
// enablePrepass), so the sharded figures equal the unsharded ones. Remote
// shards' figures arrive through their Stats snapshots and are added on
// top by Snapshot, like the other resident-process counters.
func (r *Router) genStats() (partials, skipped, tightenings, reuses int64) {
	seen := make(map[*mapgen.EngineStats]bool, len(r.locals)+1)
	add := func(gs *mapgen.EngineStats) {
		if gs == nil || seen[gs] {
			return
		}
		seen[gs] = true
		snap := gs.Snapshot()
		partials += snap.PartialMappings
		skipped += snap.ClustersSkippedByBound
		tightenings += snap.FloorTightenings
		reuses += snap.PoolReuses
	}
	if r.fullRunner != nil {
		add(r.fullRunner.GenStats())
	}
	for _, s := range r.locals {
		if s != nil {
			add(s.runner.GenStats())
		}
	}
	return partials, skipped, tightenings, reuses
}

// ShardStats returns one snapshot per shard, in shard order. Snapshots
// are taken concurrently: a remote shard's Stats is a network fetch with
// its own timeout, and a scrape of a fleet with several dead shards must
// pay that timeout once, not once per dead shard.
func (r *Router) ShardStats() []Stats {
	out := make([]Stats, len(r.shards))
	var wg sync.WaitGroup
	wg.Add(len(r.shards))
	for i, s := range r.shards {
		go func(i int, s ShardBackend) {
			defer wg.Done()
			out[i] = s.Stats()
		}(i, s)
	}
	wg.Wait()
	return out
}

// RepositoryStats aggregates the per-shard served-tree statistics: tree
// and node counts summed, extrema taken across shards. Pre-pass routers
// (views non-nil) read the views directly — shard backends, remote ones
// included, never need to answer repository questions; clone-based
// NewRouter topologies ask their local services.
func (r *Router) RepositoryStats() schema.Stats {
	var out schema.Stats
	add := func(i int, st schema.Stats) {
		out.Trees += st.Trees
		out.Nodes += st.Nodes
		if st.MaxDepth > out.MaxDepth {
			out.MaxDepth = st.MaxDepth
		}
		if st.MaxTree > out.MaxTree {
			out.MaxTree = st.MaxTree
		}
		if i == 0 || st.MinTree < out.MinTree {
			out.MinTree = st.MinTree
		}
	}
	if r.views != nil {
		for i, v := range r.views {
			add(i, v.Stats())
		}
		return out
	}
	for i, s := range r.locals {
		add(i, s.RepositoryStats())
	}
	return out
}

// NumShards reports the fan-out width.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard returns the i-th shard's in-process service (for inspection; the
// router retains ownership), or nil when that shard is a remote backend.
func (r *Router) Shard(i int) *Service { return r.locals[i] }

// ShardBackendAt returns the i-th shard backend — always non-nil, remote
// or local. The router retains ownership.
func (r *Router) ShardBackendAt(i int) ShardBackend { return r.shards[i] }

// Close closes every shard concurrently and blocks until all have drained.
// It is idempotent; Match calls after Close return ErrClosed.
func (r *Router) Close() {
	r.once.Do(func() {
		// Mark closed before draining the shards so Match rejects new
		// requests up front instead of burning a candidate pre-pass whose
		// fan-out is doomed to ErrClosed.
		r.closed.Store(true)
		var wg sync.WaitGroup
		wg.Add(len(r.shards))
		for _, s := range r.shards {
			go func(s ShardBackend) {
				defer wg.Done()
				s.Close()
			}(s)
		}
		wg.Wait()
	})
}
