package serve

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"

	"bellflower/internal/mapgen"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
)

// Backend is the serving surface shared by Service (one shard) and Router
// (a shard fan-out). The HTTP daemon and other embedders program against
// this interface so single-shard and sharded deployments are
// interchangeable. All methods are safe for concurrent use.
type Backend interface {
	// Match serves one match request; see Service.Match.
	Match(ctx context.Context, personal *schema.Tree, opts pipeline.Options) (*pipeline.Report, error)

	// MatchBatch serves a batch concurrently, results in request order.
	MatchBatch(ctx context.Context, reqs []Request) []Result

	// RewriteQuery translates a personal-schema XPath query through a
	// mapping discovered by Match on this backend.
	RewriteQuery(q string, personal *schema.Tree, mp mapgen.Mapping) (string, error)

	// Stats returns a snapshot of the backend's instrumentation, rolled up
	// across shards. In a rolled-up snapshot per-shard quantities are
	// summed, so one fanned-out request counts once per shard.
	Stats() Stats

	// ShardStats returns one snapshot per shard (length NumShards).
	ShardStats() []Stats

	// RepositoryStats summarizes the repository across all shards.
	RepositoryStats() schema.Stats

	// NumShards reports the fan-out width (1 for a plain Service).
	NumShards() int

	// Close releases the backend; Match calls after Close return ErrClosed.
	Close()
}

var (
	_ Backend = (*Service)(nil)
	_ Backend = (*Router)(nil)
)

// Router fans match requests out across repository shards — one Service per
// repository partition — and merges the per-shard ranked mapping lists into
// a single global report. Candidate matching is per-tree and clusters never
// span repository trees (cross-tree distance is infinite), so partitioning
// at tree granularity loses no candidate mappings. For tree clustering
// (pipeline.VariantTree) the merged report is exactly the unsharded result
// up to the ordering of equal-Δ ties (golden-tested). For the k-means
// variants, cluster formation is global — centroid seeding uses the
// repository-wide MEmin and termination is a global stability criterion —
// so per-shard clustering may legitimately form different clusters than an
// unsharded run and keep or drop a different set of low-ranked mappings:
// the same class of controlled approximation the clustering step itself
// introduces.
//
// Create with NewRouter or NewRouterFromRepository and release with Close.
// A Router is safe for use from many goroutines.
type Router struct {
	shards  []*Service
	shardOf map[*schema.Tree]int // routes mappings back to their shard
	once    sync.Once
}

// NewRouter wraps existing shard services in a router, taking ownership of
// them (Router.Close closes every shard). It panics on an empty shard list.
func NewRouter(shards []*Service) *Router {
	if len(shards) == 0 {
		panic("serve: NewRouter needs at least one shard")
	}
	r := &Router{
		shards:  append([]*Service(nil), shards...),
		shardOf: make(map[*schema.Tree]int),
	}
	for i, s := range r.shards {
		for _, t := range s.Repository().Trees() {
			r.shardOf[t] = i
		}
	}
	return r
}

// NewRouterFromRepository partitions the repository into up to n shards
// (see PartitionRepository), indexes each partition and starts one Service
// per shard. When cfg.Workers is 0 each shard gets GOMAXPROCS divided by
// the shard count (at least 1), so the default total worker budget matches
// an unsharded Service instead of multiplying by n.
func NewRouterFromRepository(repo *schema.Repository, n int, cfg Config) *Router {
	parts := PartitionRepository(repo, n)
	if cfg.Workers == 0 && len(parts) > 1 {
		cfg.Workers = runtime.GOMAXPROCS(0) / len(parts)
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	shards := make([]*Service, len(parts))
	for i, part := range parts {
		shards[i] = NewFromRepository(part, cfg)
	}
	return NewRouter(shards)
}

// PartitionRepository splits a repository into up to n disjoint shard
// repositories. Trees are cloned (a tree belongs to exactly one repository)
// and distributed with a greedy balance: largest tree first, each into the
// currently lightest shard by node count, ties to the lowest shard index —
// deterministic for a given repository. n is clamped to [1, number of
// trees], so no shard is ever empty (an empty repository yields one empty
// shard).
func PartitionRepository(repo *schema.Repository, n int) []*schema.Repository {
	trees := repo.Trees()
	if n > len(trees) {
		n = len(trees)
	}
	if n < 1 {
		n = 1
	}
	order := make([]*schema.Tree, len(trees))
	copy(order, trees)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Len() > order[j].Len() })

	parts := make([]*schema.Repository, n)
	load := make([]int, n)
	for i := range parts {
		parts[i] = schema.NewRepository()
	}
	for _, t := range order {
		lightest := 0
		for i := 1; i < n; i++ {
			if load[i] < load[lightest] {
				lightest = i
			}
		}
		parts[lightest].MustAdd(t.Clone())
		load[lightest] += t.Len()
	}
	return parts
}

// Match fans the request out to every shard concurrently and merges the
// per-shard reports into one global report: mappings rank-merged (stable,
// ties across shards resolved by shard index) and truncated to opts.TopN,
// counters summed, stage times reported as the slowest shard's (the shards
// run concurrently). ctx bounds the whole fan-out; each shard honours it
// exactly as Service.Match does.
//
// If any shard fails — its deadline expired, the service closed, the
// request was rejected — Match returns that shard's error rather than a
// silently incomplete merge: a report missing one shard's mappings would
// present a wrong top-N as authoritative. Shards that already completed
// contribute their reports to their own caches, so a retry is cheap.
func (r *Router) Match(ctx context.Context, personal *schema.Tree, opts pipeline.Options) (*pipeline.Report, error) {
	if len(r.shards) == 1 {
		return r.shards[0].Match(ctx, personal, opts)
	}
	reps := make([]*pipeline.Report, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	wg.Add(len(r.shards))
	for i, s := range r.shards {
		go func(i int, s *Service) {
			defer wg.Done()
			reps[i], errs[i] = s.Match(ctx, personal, opts)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeReports(reps, opts.TopN), nil
}

// mergeReports combines per-shard reports of one fanned-out request.
func mergeReports(reps []*pipeline.Report, topN int) *pipeline.Report {
	merged := &pipeline.Report{Variant: reps[0].Variant}
	lists := make([][]mapgen.Mapping, len(reps))
	weightedAvg := 0.0
	for i, rep := range reps {
		lists[i] = rep.Mappings
		merged.MappingElements += rep.MappingElements
		merged.Clusters += rep.Clusters
		merged.UsefulClusters += rep.UsefulClusters
		weightedAvg += rep.AvgElementsPerUsefulCluster * float64(rep.UsefulClusters)
		merged.ClusterSizes = append(merged.ClusterSizes, rep.ClusterSizes...)
		if rep.Iterations > merged.Iterations {
			merged.Iterations = rep.Iterations
		}
		merged.Counters.Add(rep.Counters)
		merged.Partials = append(merged.Partials, rep.Partials...)
		if rep.MatchTime > merged.MatchTime {
			merged.MatchTime = rep.MatchTime
		}
		if rep.ClusterTime > merged.ClusterTime {
			merged.ClusterTime = rep.ClusterTime
		}
		if rep.GenTime > merged.GenTime {
			merged.GenTime = rep.GenTime
		}
		if rep.FirstGoodAfter > 0 &&
			(merged.FirstGoodAfter == 0 || rep.FirstGoodAfter < merged.FirstGoodAfter) {
			merged.FirstGoodAfter = rep.FirstGoodAfter
		}
	}
	if merged.UsefulClusters > 0 {
		merged.AvgElementsPerUsefulCluster = weightedAvg / float64(merged.UsefulClusters)
	}
	merged.Mappings = mapgen.MergeRanked(lists, topN)
	sort.SliceStable(merged.Partials, func(i, j int) bool {
		return merged.Partials[i].Score.Delta > merged.Partials[j].Score.Delta
	})
	return merged
}

// MatchBatch serves a batch of requests concurrently through the router,
// results in request order. The goroutine fan-out is bounded by the summed
// capacity of the shards.
func (r *Router) MatchBatch(ctx context.Context, reqs []Request) []Result {
	fanout := 0
	for _, s := range r.shards {
		fanout += s.capacityHint()
	}
	return matchBatch(ctx, reqs, fanout, r.Match)
}

// RewriteQuery routes the rewrite to the shard the mapping was discovered
// in: node identities and the labelling index are shard-local, so the
// mapping's images identify their owning shard through their tree.
func (r *Router) RewriteQuery(q string, personal *schema.Tree, mp mapgen.Mapping) (string, error) {
	if len(mp.Images) == 0 {
		return "", errors.New("serve: empty mapping")
	}
	i, ok := r.shardOf[mp.Images[0].Tree()]
	if !ok {
		return "", errors.New("serve: mapping does not belong to this router's shards")
	}
	return r.shards[i].RewriteQuery(q, personal, mp)
}

// Stats returns the per-shard snapshots rolled up into one (see MergeStats
// for the summing semantics).
func (r *Router) Stats() Stats {
	return MergeStats(r.ShardStats()...)
}

// ShardStats returns one snapshot per shard, in shard order.
func (r *Router) ShardStats() []Stats {
	out := make([]Stats, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.Stats()
	}
	return out
}

// RepositoryStats aggregates the shard repositories' statistics: tree and
// node counts summed, extrema taken across shards.
func (r *Router) RepositoryStats() schema.Stats {
	var out schema.Stats
	for i, s := range r.shards {
		st := s.Repository().Stats()
		out.Trees += st.Trees
		out.Nodes += st.Nodes
		if st.MaxDepth > out.MaxDepth {
			out.MaxDepth = st.MaxDepth
		}
		if st.MaxTree > out.MaxTree {
			out.MaxTree = st.MaxTree
		}
		if i == 0 || st.MinTree < out.MinTree {
			out.MinTree = st.MinTree
		}
	}
	return out
}

// NumShards reports the fan-out width.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard returns the i-th shard service (for inspection; the router retains
// ownership).
func (r *Router) Shard(i int) *Service { return r.shards[i] }

// Close closes every shard concurrently and blocks until all have drained.
// It is idempotent; Match calls after Close return ErrClosed.
func (r *Router) Close() {
	r.once.Do(func() {
		var wg sync.WaitGroup
		wg.Add(len(r.shards))
		for _, s := range r.shards {
			go func(s *Service) {
				defer wg.Done()
				s.Close()
			}(s)
		}
		wg.Wait()
	})
}
