package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
)

func TestCandidateSignature(t *testing.T) {
	p := personal()
	a := testOpts()
	b := testOpts()

	// Options outside the element-matching stage must not split the
	// pre-pass key: TopN, threshold, variant, parallelism...
	b.TopN = 99
	b.Threshold = 0.9
	b.Variant = pipeline.VariantTree
	b.Parallelism = 4
	if CandidateSignature(p, a) != CandidateSignature(p, b) {
		t.Error("candidate signature depends on options that cannot change the candidates")
	}

	// Matching-relevant inputs must split it.
	c := testOpts()
	c.MinSim = a.MinSim + 0.1
	if CandidateSignature(p, a) == CandidateSignature(p, c) {
		t.Error("MinSim change not reflected in candidate signature")
	}
	d := testOpts()
	d.Matcher = matcher.NameMatcher{TokenAware: true}
	if CandidateSignature(p, a) == CandidateSignature(p, d) {
		t.Error("matcher change not reflected in candidate signature")
	}
	if CandidateSignature(p, a) == CandidateSignature(schema.MustParseSpec("order(id)"), a) {
		t.Error("schema change not reflected in candidate signature")
	}
}

// TestRouterPrePassRunsOncePerSignature: requests that differ only in
// report-shaping options share one full-repository matching run, and the
// CandidatePrePass counter surfaces exactly the executions.
func TestRouterPrePassRunsOncePerSignature(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 2, Config{})
	defer r.Close()

	for i := 0; i < 3; i++ {
		opts := testOpts()
		opts.TopN = 100 + i // unique report signature, same candidate signature
		if _, err := r.Match(context.Background(), personal(), opts); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.CandidatePrePass != 1 {
		t.Errorf("CandidatePrePass = %d, want 1 (three requests, one candidate signature)", st.CandidatePrePass)
	}
	// Per-shard snapshots never carry the router-level counter.
	for i, ss := range r.ShardStats() {
		if ss.CandidatePrePass != 0 {
			t.Errorf("shard %d reports CandidatePrePass %d, want 0", i, ss.CandidatePrePass)
		}
	}

	// A different MinSim is a new candidate signature.
	opts := testOpts()
	opts.MinSim = 0.2
	if _, err := r.Match(context.Background(), personal(), opts); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().CandidatePrePass; got != 2 {
		t.Errorf("CandidatePrePass = %d, want 2 after a new candidate signature", got)
	}
}

// TestRouterPrePassConcurrentSharing: concurrent cold requests with one
// candidate signature elect a single pre-pass leader.
func TestRouterPrePassConcurrentSharing(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 2, Config{})
	defer r.Close()

	const goroutines = 16
	var wg sync.WaitGroup
	wg.Add(goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			opts := testOpts()
			opts.TopN = 1000 + g // cache-busting per request, like a cold client
			_, errs[g] = r.Match(context.Background(), personal(), opts)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if got := r.Stats().CandidatePrePass; got < 1 || got > 2 {
		// Exactly 1 in practice; allow 2 for an unlucky eviction race, but
		// never one per request.
		t.Errorf("CandidatePrePass = %d for %d concurrent identical-signature requests", got, goroutines)
	}
}

// TestRouterPrePassMatchesNoPrePassRouter: the same shard services behind
// a pre-pass router and a plain NewRouter wrap (no full-repository view)
// must produce identical reports — the pre-pass is a pure speedup.
func TestRouterPrePassMatchesNoPrePassRouter(t *testing.T) {
	repo := testRepo(t)
	withPre := NewRouterFromRepository(repo, 2, Config{})
	defer withPre.Close()
	// Identical partitioning, but wrapped without the full repository.
	parts := PartitionRepositoryClustered(repo, 2)
	shards := make([]*Service, len(parts))
	for i, p := range parts {
		shards[i] = NewFromRepository(p, Config{})
	}
	without := NewRouter(shards)
	defer without.Close()
	if without.fullRunner != nil {
		t.Fatal("NewRouter unexpectedly enabled the pre-pass")
	}

	opts := testOpts()
	a, err := withPre.Match(context.Background(), personal(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := without.Match(context.Background(), personal(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if withPre.Stats().CandidatePrePass != 1 || without.Stats().CandidatePrePass != 0 {
		t.Errorf("prepass counters = %d / %d, want 1 / 0",
			withPre.Stats().CandidatePrePass, without.Stats().CandidatePrePass)
	}
	ka, kb := reportKeys(a), reportKeys(b)
	if len(ka) == 0 {
		t.Fatal("no mappings found; comparison is vacuous")
	}
	if fmt.Sprint(ka) != fmt.Sprint(kb) {
		t.Errorf("pre-pass changed the report:\n  with    %v\n  without %v", ka, kb)
	}
	if a.MappingElements != b.MappingElements {
		t.Errorf("mapping elements %d, want %d", a.MappingElements, b.MappingElements)
	}
}

// TestRouterPrePassRejections: router-level validation mirrors the shard
// services' without burning a pre-pass.
func TestRouterPrePassRejections(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 2, Config{MaxSchemaNodes: 4})
	defer r.Close()

	if _, err := r.Match(context.Background(), nil, testOpts()); err == nil {
		t.Error("nil personal schema accepted")
	}
	if _, err := r.Match(context.Background(), schema.MustParseSpec("a(b,c,d,e)"), testOpts()); !errors.Is(err, ErrSchemaTooLarge) {
		t.Error("oversized schema not rejected with ErrSchemaTooLarge")
	}
	bad := testOpts()
	bad.Threshold = 2
	if _, err := r.Match(context.Background(), personal(), bad); err == nil {
		t.Error("invalid threshold accepted")
	}
	if got := r.Stats().CandidatePrePass; got != 0 {
		t.Errorf("rejected requests executed %d pre-passes", got)
	}

	r.Close()
	if _, err := r.Match(context.Background(), personal(), testOpts()); !errors.Is(err, ErrClosed) {
		t.Errorf("err after Close = %v, want ErrClosed", err)
	}
}

// TestRouterLevelStatsCounters: rejections and pre-pass failures that
// never reach a shard still surface in the rollup (they were invisible in
// per-shard counters when the pre-pass path short-circuits).
func TestRouterLevelStatsCounters(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 2, Config{MaxSchemaNodes: 4})
	defer r.Close()

	_, _ = r.Match(context.Background(), nil, testOpts())                                // rejected
	_, _ = r.Match(context.Background(), schema.MustParseSpec("a(b,c,d,e)"), testOpts()) // rejected
	if _, err := r.Match(context.Background(), personal(), testOpts()); err != nil {     // served
		t.Fatal(err)
	}
	total, shards := r.Snapshot()
	if total.Rejected != 2 {
		t.Errorf("rollup rejected = %d, want 2", total.Rejected)
	}
	// 2 router-level rejections + 1 served request counted once per shard.
	if want := int64(2 + 2); total.Requests != want {
		t.Errorf("rollup requests = %d, want %d", total.Requests, want)
	}
	sum := int64(0)
	for _, s := range shards {
		sum += s.Rejected
	}
	if sum != 0 {
		t.Errorf("per-shard rejected sum = %d, want 0 (rejection happened above the shards)", sum)
	}

	// An already-expired context fails during the pre-pass and counts as a
	// router-level error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := testOpts()
	opts.MinSim = 0.11 // fresh pre-pass signature so the follower path isn't cached
	if _, err := r.Match(ctx, personal(), opts); err == nil {
		t.Fatal("expired context served")
	}
	if got := r.Stats().Errors; got < 1 {
		t.Errorf("rollup errors = %d, want >= 1 after a pre-pass context expiry", got)
	}
	// The dropped entry must not poison the key: a live retry succeeds and
	// runs a fresh pre-pass.
	before := r.Stats().CandidatePrePass
	if _, err := r.Match(context.Background(), personal(), opts); err != nil {
		t.Fatalf("retry after dropped pre-pass entry: %v", err)
	}
	if got := r.Stats().CandidatePrePass; got != before+1 {
		t.Errorf("pre-pass runs = %d, want %d (dropped entry must be recomputed)", got, before+1)
	}
}
