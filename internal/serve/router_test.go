package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"bellflower/internal/mapgen"
	"bellflower/internal/pipeline"
	"bellflower/internal/repogen"
	"bellflower/internal/schema"
)

func syntheticRepo(t testing.TB, nodes int, seed int64) *schema.Repository {
	t.Helper()
	cfg := repogen.DefaultConfig()
	cfg.TargetNodes = nodes
	cfg.Seed = seed
	repo, err := repogen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestPartitionRepository(t *testing.T) {
	repo := syntheticRepo(t, 600, 3)
	parts := PartitionRepository(repo, 4)
	if len(parts) != 4 {
		t.Fatalf("got %d parts, want 4", len(parts))
	}
	trees, nodes := 0, 0
	for i, p := range parts {
		if p.NumTrees() == 0 {
			t.Errorf("shard %d is empty", i)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("shard %d invalid: %v", i, err)
		}
		trees += p.NumTrees()
		nodes += p.Len()
	}
	if trees != repo.NumTrees() || nodes != repo.Len() {
		t.Errorf("partition covers %d trees / %d nodes, want %d / %d",
			trees, nodes, repo.NumTrees(), repo.Len())
	}
	// Every input tree lands in exactly one shard, and the split is
	// deterministic.
	seen := make(map[string]int)
	for _, p := range parts {
		for _, tr := range p.Trees() {
			seen[tr.String()]++
		}
	}
	for _, tr := range repo.Trees() {
		if seen[tr.String()] < 1 {
			t.Errorf("tree %q missing from every shard", tr.Name)
		}
	}
	again := PartitionRepository(repo, 4)
	for i := range parts {
		if parts[i].NumTrees() != again[i].NumTrees() || parts[i].Len() != again[i].Len() {
			t.Errorf("shard %d not deterministic: %d/%d trees, %d/%d nodes",
				i, parts[i].NumTrees(), again[i].NumTrees(), parts[i].Len(), again[i].Len())
		}
	}
	// Balance: no shard should carry more than half the forest when four
	// shards split a many-tree repository.
	for i, p := range parts {
		if p.Len() > repo.Len()/2 {
			t.Errorf("shard %d holds %d of %d nodes; partition is unbalanced", i, p.Len(), repo.Len())
		}
	}

	// Clamping: more shards than trees, and degenerate n.
	small := testRepo(t) // 3 trees
	if got := len(PartitionRepository(small, 10)); got != 3 {
		t.Errorf("10 shards over 3 trees produced %d parts, want 3", got)
	}
	if got := len(PartitionRepository(small, 0)); got != 1 {
		t.Errorf("0 shards produced %d parts, want 1", got)
	}
}

// reportKeys renders each mapping shard-independently: the score plus the
// repository tree name and image paths. Node and cluster IDs are
// shard-local and excluded on purpose.
func reportKeys(rep *pipeline.Report) []string {
	keys := make([]string, len(rep.Mappings))
	for i, m := range rep.Mappings {
		var b strings.Builder
		fmt.Fprintf(&b, "%.12f", m.Score.Delta)
		for _, img := range m.Images {
			b.WriteString("|")
			b.WriteString(img.Tree().Name)
			b.WriteString(img.PathString())
		}
		keys[i] = b.String()
	}
	return keys
}

func TestRouterGoldenVsUnsharded(t *testing.T) {
	repo := syntheticRepo(t, 900, 7)
	personal := schema.MustParseSpec("address(name,email)")
	opts := pipeline.DefaultOptions()
	opts.Variant = pipeline.VariantTree
	opts.MinSim = 0.3
	opts.Threshold = 0.6

	direct, err := pipeline.NewRunner(repo).Run(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Mappings) == 0 {
		t.Fatal("unsharded run found no mappings; golden comparison is vacuous")
	}

	r := NewRouterFromRepository(repo, 4, Config{})
	defer r.Close()
	if r.NumShards() != 4 {
		t.Fatalf("router has %d shards, want 4", r.NumShards())
	}
	sharded, err := r.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatal(err)
	}

	// The full δ-mode result must be identical as a multiset of
	// (Δ, image paths); ordering may legitimately differ within equal-Δ
	// ties because ID-based tie-breaking is shard-local.
	want, got := reportKeys(direct), reportKeys(sharded)
	sort.Strings(want)
	sort.Strings(got)
	if len(want) != len(got) {
		t.Fatalf("sharded found %d mappings, unsharded %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("mapping multiset differs at %d:\n  unsharded %s\n  sharded   %s", i, want[i], got[i])
		}
	}

	// Rolled-up instrumentation must agree with the unsharded run for the
	// tree-cluster variant: the same clusters are searched, just elsewhere.
	if sharded.Counters.SearchSpace != direct.Counters.SearchSpace {
		t.Errorf("search space %v, want %v", sharded.Counters.SearchSpace, direct.Counters.SearchSpace)
	}
	if sharded.UsefulClusters != direct.UsefulClusters {
		t.Errorf("useful clusters %d, want %d", sharded.UsefulClusters, direct.UsefulClusters)
	}
	if sharded.MappingElements != direct.MappingElements {
		t.Errorf("mapping elements %d, want %d", sharded.MappingElements, direct.MappingElements)
	}

	// Top-N truncation: the global top-N scores must match exactly.
	for _, topN := range []int{1, 3, 10} {
		o := opts
		o.TopN = topN
		d, err := pipeline.NewRunner(repo).Run(personal, o)
		if err != nil {
			t.Fatal(err)
		}
		s, err := r.Match(context.Background(), personal, o)
		if err != nil {
			t.Fatal(err)
		}
		dd, sd := d.Deltas(), s.Deltas()
		if len(dd) != len(sd) {
			t.Fatalf("topN=%d: sharded %d mappings, unsharded %d", topN, len(sd), len(dd))
		}
		for i := range dd {
			if dd[i] != sd[i] {
				t.Errorf("topN=%d rank %d: Δ %v, want %v", topN, i, sd[i], dd[i])
			}
		}
	}
}

// TestRouterClusteredVariantExactWithPrePass: a pre-pass router clusters
// once globally, so even the k-means variants — historically a per-shard
// approximation — now reproduce the unsharded result exactly (as a
// multiset; equal-Δ tie order is shard-local). A NewRouter wrap without
// the full-repository view still clusters per shard, where only
// well-formedness is promised.
func TestRouterClusteredVariantExactWithPrePass(t *testing.T) {
	repo := syntheticRepo(t, 900, 7)
	personal := schema.MustParseSpec("address(name,email)")
	opts := pipeline.DefaultOptions()
	opts.Variant = pipeline.VariantMedium
	opts.MinSim = 0.3
	opts.Threshold = 0.6

	direct, err := pipeline.NewRunner(repo).Run(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Mappings) == 0 {
		t.Fatal("unsharded medium clustering found no mappings; comparison is vacuous")
	}
	r := NewRouterFromRepository(repo, 4, Config{})
	defer r.Close()
	sharded, err := r.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, got := reportKeys(direct), reportKeys(sharded)
	sort.Strings(want)
	sort.Strings(got)
	if len(want) != len(got) {
		t.Fatalf("sharded found %d mappings, unsharded %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("k-means mapping multiset differs at %d:\n  unsharded %s\n  sharded   %s", i, want[i], got[i])
		}
	}
	if sharded.Clusters != direct.Clusters || sharded.UsefulClusters != direct.UsefulClusters {
		t.Errorf("clusters %d/%d, want %d/%d (global clustering must project exactly)",
			sharded.Clusters, sharded.UsefulClusters, direct.Clusters, direct.UsefulClusters)
	}
	if sharded.Iterations != direct.Iterations {
		t.Errorf("iterations %d, want %d", sharded.Iterations, direct.Iterations)
	}

	// Per-shard clustering (no pre-pass): well-formed, but no exactness
	// claim.
	parts := PartitionRepositoryClustered(repo, 4)
	shards := make([]*Service, len(parts))
	for i, p := range parts {
		shards[i] = NewFromRepository(p, Config{})
	}
	noPre := NewRouter(shards)
	defer noPre.Close()
	perShard, err := noPre.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(perShard.Mappings) == 0 {
		t.Errorf("per-shard medium clustering found no mappings")
	}
	for i, m := range perShard.Mappings {
		if m.Score.Delta < opts.Threshold {
			t.Errorf("mapping %d below threshold: Δ=%v", i, m.Score.Delta)
		}
		if i > 0 && m.Score.Delta > perShard.Mappings[i-1].Score.Delta {
			t.Errorf("merged list not ranked at %d", i)
		}
	}
}

// slowMatcher sleeps whenever it scores a repository node with the trigger
// name, letting tests make exactly one shard slow.
type slowMatcher struct {
	trigger string
	delay   time.Duration
}

func (m slowMatcher) Name() string { return "slow" }
func (m slowMatcher) Similarity(p, r *schema.Node) float64 {
	if r.Name == m.trigger {
		time.Sleep(m.delay)
	}
	return 0.9
}

func TestRouterDeadlineOnOneShard(t *testing.T) {
	fast := schema.NewRepository()
	fast.MustAdd(schema.MustParseSpec("store(book(title,author))"))
	slow := schema.NewRepository()
	slow.MustAdd(schema.MustParseSpec("archive(tome(slowpoke,author))"))

	r := NewRouter([]*Service{
		NewFromRepository(fast, Config{Workers: 1}),
		NewFromRepository(slow, Config{Workers: 1}),
	})
	defer r.Close()

	opts := testOpts()
	opts.Matcher = slowMatcher{trigger: "slowpoke", delay: 300 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.Match(ctx, personal(), opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded: a merge missing one shard must not be presented as complete", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("router released the caller after %v", elapsed)
	}
	// The fast shard completed its run and cached the result for a retry.
	waitUntil(t, func() bool { return r.Shard(0).Stats().PipelineRuns == 1 })
	if errs := r.Shard(1).Stats().Errors; errs == 0 {
		t.Error("slow shard recorded no error for the expired request")
	}
}

func TestRouterRewriteRoutesToOwningShard(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 3, Config{})
	defer r.Close()

	rep, err := r.Match(context.Background(), personal(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mappings) < 2 {
		t.Fatalf("need mappings from more than one shard, got %d", len(rep.Mappings))
	}
	for i, m := range rep.Mappings {
		got, err := r.RewriteQuery("/book/title", personal(), m)
		if err != nil {
			t.Fatalf("mapping %d (shard-local cluster %d): %v", i, m.ClusterID, err)
		}
		if len(got) == 0 || got[0] != '/' {
			t.Errorf("mapping %d rewrote to %q", i, got)
		}
	}

	// A mapping from a different repository (the unpartitioned original)
	// must be rejected, not silently rewritten against the wrong index.
	direct, err := pipeline.NewRunner(testRepo(t)).Run(personal(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RewriteQuery("/book/title", personal(), direct.Mappings[0]); err == nil {
		t.Error("foreign mapping accepted")
	}
	if _, err := r.RewriteQuery("/book/title", personal(), mapgen.Mapping{}); err == nil {
		t.Error("empty mapping accepted")
	}
}

func TestRouterStatsRollup(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 2, Config{})
	defer r.Close()

	for i := 0; i < 2; i++ {
		if _, err := r.Match(context.Background(), personal(), testOpts()); err != nil {
			t.Fatal(err)
		}
	}
	per := r.ShardStats()
	if len(per) != 2 {
		t.Fatalf("ShardStats returned %d entries, want 2", len(per))
	}
	st := r.Stats()
	// Each router-level request counts once per shard in the rollup.
	if st.Requests != 4 {
		t.Errorf("rolled-up requests = %d, want 4 (2 requests × 2 shards)", st.Requests)
	}
	if st.CacheHits < 2 {
		t.Errorf("rolled-up cache hits = %d, want ≥ 2 (second request hits every shard)", st.CacheHits)
	}
	if st.Latency.Count != per[0].Latency.Count+per[1].Latency.Count {
		t.Errorf("latency counts don't roll up: %d vs %d+%d",
			st.Latency.Count, per[0].Latency.Count, per[1].Latency.Count)
	}

	repoStats := r.RepositoryStats()
	orig := testRepo(t).Stats()
	if repoStats.Trees != orig.Trees || repoStats.Nodes != orig.Nodes {
		t.Errorf("repository rollup = %+v, want %d trees / %d nodes", repoStats, orig.Trees, orig.Nodes)
	}
}

func TestRouterMatchBatchAndClose(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 2, Config{})

	reqs := []Request{
		{Personal: personal(), Opts: testOpts()},
		{Personal: nil, Opts: testOpts()},
		{Personal: personal(), Opts: testOpts()},
	}
	results := r.MatchBatch(context.Background(), reqs)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("valid entries failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("nil personal schema accepted")
	}

	r.Close()
	r.Close() // idempotent
	if _, err := r.Match(context.Background(), personal(), testOpts()); !errors.Is(err, ErrClosed) {
		t.Errorf("err after Close = %v, want ErrClosed", err)
	}
}
