package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
)

// TestRouterPartialResultsFanOut: with partial results enabled, a fan-out
// in which some shards fail returns the merge of the shards that
// succeeded, marked Incomplete with the per-shard errors; with the
// default strict routing the same failure fails the request.
func TestRouterPartialResultsFanOut(t *testing.T) {
	repo := testRepo(t)

	// Strict (default): killing one shard fails every fanned-out request.
	strict := NewRouterFromRepository(repo, 3, Config{Workers: 1})
	defer strict.Close()
	strict.Shard(1).Close()
	if _, err := strict.Match(context.Background(), personal(), testOpts()); !errors.Is(err, ErrClosed) {
		t.Fatalf("strict router err = %v, want ErrClosed", err)
	}

	// Partial: the same topology merges the two healthy shards.
	r := NewRouterFromRepository(repo, 3, Config{Workers: 1, PartialResults: true})
	defer r.Close()
	if !r.PartialResults() {
		t.Fatal("Config.PartialResults did not enable the option")
	}
	whole, err := r.Match(context.Background(), personal(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if whole.Incomplete || len(whole.ShardErrors) != 0 {
		t.Fatalf("fully successful fan-out marked incomplete: %+v", whole.ShardErrors)
	}

	r.Shard(1).Close()
	opts := testOpts()
	opts.TopN = 77 // fresh signature: the healthy shards must recompute, not serve caches
	rep, err := r.Match(context.Background(), personal(), opts)
	if err != nil {
		t.Fatalf("partial router failed outright: %v", err)
	}
	if !rep.Incomplete {
		t.Error("partially failed merge not marked Incomplete")
	}
	if len(rep.ShardErrors) != 1 || rep.ShardErrors[0].Shard != 1 {
		t.Fatalf("ShardErrors = %+v, want exactly shard 1", rep.ShardErrors)
	}
	if rep.ShardErrors[0].Err == "" {
		t.Error("shard error carries no message")
	}
	// The merge covers exactly the healthy shards' trees: every returned
	// mapping lives outside the dead shard.
	for i, m := range rep.Mappings {
		if len(m.Images) == 0 {
			continue
		}
		if shard, ok := r.shardOf[m.Images[0].Tree()]; !ok || shard == 1 {
			t.Errorf("mapping %d drawn from the failed shard", i)
		}
	}
	if got := r.Stats().PartialResults; got != 1 {
		t.Errorf("PartialResults counter = %d, want 1", got)
	}

	// All shards failing still fails the request, Incomplete or not.
	r.Shard(0).Close()
	r.Shard(2).Close()
	opts.TopN = 78
	if _, err := r.Match(context.Background(), personal(), opts); !errors.Is(err, ErrClosed) {
		t.Fatalf("all-shards-failed err = %v, want ErrClosed", err)
	}
}

// TestRouterSetPartialResultsRuntimeToggle: the option can be flipped on a
// live router, including one wrapped around pre-existing services.
func TestRouterSetPartialResultsRuntimeToggle(t *testing.T) {
	parts := PartitionRepositoryClustered(testRepo(t), 2)
	shards := make([]*Service, len(parts))
	for i, p := range parts {
		shards[i] = NewFromRepository(p, Config{Workers: 1})
	}
	r := NewRouter(shards)
	defer r.Close()
	if r.PartialResults() {
		t.Fatal("NewRouter enabled partial results by default")
	}
	r.Shard(0).Close()
	if _, err := r.Match(context.Background(), personal(), testOpts()); err == nil {
		t.Fatal("strict wrap served a partially failed fan-out")
	}
	r.SetPartialResults(true)
	rep, err := r.Match(context.Background(), personal(), testOpts())
	if err != nil {
		t.Fatalf("partial wrap failed: %v", err)
	}
	if !rep.Incomplete || len(rep.ShardErrors) != 1 || rep.ShardErrors[0].Shard != 0 {
		t.Fatalf("report = incomplete:%v errors:%+v, want incomplete with shard 0", rep.Incomplete, rep.ShardErrors)
	}
	r.SetPartialResults(false)
	if _, err := r.Match(context.Background(), personal(), mutateTopN(testOpts(), 91)); err == nil {
		t.Fatal("disabling partial results did not restore strict routing")
	}
}

func mutateTopN(o pipeline.Options, n int) pipeline.Options {
	o.TopN = n
	return o
}

// TestPartialResultsDoNotMaskCallerExpiry: when the REQUEST's own context
// expires, partial mode must still error even though some shards
// succeeded — a client timeout or disconnect must never come back as a
// 200 Incomplete merge.
func TestPartialResultsDoNotMaskCallerExpiry(t *testing.T) {
	// A no-pre-pass wrap so matching runs per shard: the fast shard
	// completes, the slow shard outlives the request deadline — a mixed
	// outcome at fan-out merge time, with the caller's context expired.
	fast := schema.NewRepository()
	fast.MustAdd(schema.MustParseSpec("store(book(title,author))"))
	slow := schema.NewRepository()
	slow.MustAdd(schema.MustParseSpec("archive(tome(slowpoke,author))"))
	r := NewRouter([]*Service{
		NewFromRepository(fast, Config{Workers: 1}),
		NewFromRepository(slow, Config{Workers: 1}),
	})
	defer r.Close()
	r.SetPartialResults(true)

	opts := testOpts()
	opts.Matcher = slowMatcher{trigger: "slowpoke", delay: 300 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := r.Match(ctx, personal(), opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v (report %v), want DeadlineExceeded — partial mode must not absorb the caller's own expiry", err, rep)
	}
	if got := r.Stats().PartialResults; got != 0 {
		t.Errorf("PartialResults counter = %d after a caller expiry, want 0", got)
	}
}
