package serve

import (
	"context"
	"strings"
	"testing"

	"bellflower/internal/pipeline"
)

// adaptiveOpts is testOpts with the adaptive parallel top-N engine on, so
// generation-engine counters (partials, pool reuses, floor tightenings)
// actually move.
func adaptiveOpts() pipeline.Options {
	opts := testOpts()
	opts.TopN = 3
	opts.AdaptiveTopN = true
	opts.Parallelism = 2
	return opts
}

// The generation-engine counters follow the kernel-counter sharing
// discipline: one EngineStats per repository generation, shared by the
// pre-pass runner and every view-backed shard runner, identity-deduped in
// the router rollup — never multiplied by the shard count.
func TestRouterGenStatsSharedAndDeduped(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 3, Config{})
	defer r.Close()

	shared := r.fullRunner.GenStats()
	for i := 0; i < r.NumShards(); i++ {
		if r.Shard(i).Runner().GenStats() != shared {
			t.Fatalf("shard %d owns private generation counters", i)
		}
	}

	// Two requests with distinct options so the second is not a pure cache
	// hit; both drive the adaptive engine.
	if _, err := r.Match(context.Background(), personal(), adaptiveOpts()); err != nil {
		t.Fatal(err)
	}
	second := adaptiveOpts()
	second.TopN = 2
	if _, err := r.Match(context.Background(), personal(), second); err != nil {
		t.Fatal(err)
	}

	snap := shared.Snapshot()
	if snap.PartialMappings == 0 {
		t.Fatal("adaptive requests advanced no partial-mapping counter")
	}
	if snap.PoolReuses == 0 {
		t.Error("second request acquired no pooled search state")
	}

	st := r.Stats()
	if st.PartialMappings != snap.PartialMappings {
		t.Errorf("rollup partial_mappings = %d, want the shared engine's %d (identity dedup, not ×shards)",
			st.PartialMappings, snap.PartialMappings)
	}
	if st.ClustersSkippedByBound != snap.ClustersSkippedByBound ||
		st.FloorTightenings != snap.FloorTightenings ||
		st.GenPoolReuses != snap.PoolReuses {
		t.Errorf("rollup gen counters %+v diverge from the shared engine's %+v", st, snap)
	}
}

// A plain Service surfaces the four generation-engine counters in its
// stats snapshot and the Prometheus exporter emits their families.
func TestServiceGenStatsAndPrometheus(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{})
	defer s.Close()
	if _, err := s.Match(context.Background(), personal(), adaptiveOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Match(context.Background(), personal(), testOpts()); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.PartialMappings == 0 {
		t.Error("stats carry no partial mappings after matches")
	}
	if got := s.runner.GenStats().Snapshot().PartialMappings; st.PartialMappings != got {
		t.Errorf("stats partial_mappings = %d, runner says %d", st.PartialMappings, got)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, st, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{
		"bellflower_partial_mappings_total",
		"bellflower_clusters_skipped_by_bound_total",
		"bellflower_floor_tightenings_total",
		"bellflower_gen_pool_reuses_total",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exporter output missing %s", fam)
		}
	}
}

// MergeStats treats the generation counters as shared-object figures:
// identical shard snapshots merge to one copy (max), not a sum.
func TestMergeStatsGenCountersMax(t *testing.T) {
	a := Stats{PartialMappings: 10, ClustersSkippedByBound: 4, FloorTightenings: 7, GenPoolReuses: 2}
	b := Stats{PartialMappings: 10, ClustersSkippedByBound: 4, FloorTightenings: 7, GenPoolReuses: 2}
	out := MergeStats(a, b)
	if out.PartialMappings != 10 || out.ClustersSkippedByBound != 4 ||
		out.FloorTightenings != 7 || out.GenPoolReuses != 2 {
		t.Errorf("shared gen counters were summed, not maxed: %+v", out)
	}
}
