package serve

import (
	"context"
	"sync/atomic"
	"testing"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
)

// stubShard is a ShardBackend that records which entry point served each
// request — the router must reach shards ONLY through the interface, so a
// stub is a complete shard.
type stubShard struct {
	rep         *pipeline.Report
	matchCalls  atomic.Int64 // full-pipeline requests
	stagedCalls atomic.Int64 // pre-pass (candidates/clusters) requests
	closed      atomic.Bool
}

func (s *stubShard) Match(ctx context.Context, personal *schema.Tree, opts pipeline.Options) (*pipeline.Report, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.matchCalls.Add(1)
	return s.rep, nil
}

func (s *stubShard) MatchWithCandidates(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates) (*pipeline.Report, error) {
	s.stagedCalls.Add(1)
	return s.rep, nil
}

func (s *stubShard) MatchWithClusters(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates, clusters []*cluster.Cluster, iterations int) (*pipeline.Report, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.stagedCalls.Add(1)
	return s.rep, nil
}

func (s *stubShard) Stats() Stats { return Stats{} }
func (s *stubShard) Close()       { s.closed.Store(true) }

func stubReport(delta float64) *pipeline.Report {
	return &pipeline.Report{
		Variant:  pipeline.VariantMedium,
		Mappings: []mapgen.Mapping{{Score: objective.Score{Delta: delta}}},
	}
}

func backendRouter(t *testing.T, cfg Config) (*Router, []*stubShard) {
	t.Helper()
	repo := testRepo(t)
	ix := labeling.NewIndex(repo)
	views := PartitionRepositoryViews(ix, 2, PartitionClustered)
	stubs := []*stubShard{{rep: stubReport(0.9)}, {rep: stubReport(0.8)}}
	backends := make([]ShardBackend, len(stubs))
	for i := range stubs {
		backends[i] = stubs[i]
	}
	r := NewRouterWithShardBackends(ix, views, backends, cfg)
	t.Cleanup(r.Close)
	return r, stubs
}

// TestPrePassFailureDegradation: when the shared pre-pass fails for a
// non-context reason, a partial-results router falls back to full
// per-shard pipelines (ShardBackend.Match) instead of failing the request,
// counts the fallback, and a strict router still errors.
func TestPrePassFailureDegradation(t *testing.T) {
	// An invalid cluster-config override passes Options.Validate but fails
	// ComputeClusters inside the pre-pass — a deterministic pre-pass
	// failure the stub shards are immune to.
	badOpts := testOpts()
	badOpts.Variant = pipeline.VariantMedium
	badOpts.ClusterConfig = &cluster.Config{} // MaxIterations 0 → invalid

	strict, strictStubs := backendRouter(t, Config{})
	if _, err := strict.Match(context.Background(), personal(), badOpts); err == nil {
		t.Fatal("strict router served a request whose pre-pass failed")
	}
	if got := strict.Stats().PrePassFallbacks; got != 0 {
		t.Errorf("strict PrePassFallbacks = %d, want 0", got)
	}
	if n := strictStubs[0].matchCalls.Load() + strictStubs[1].matchCalls.Load(); n != 0 {
		t.Errorf("strict router reached shards %d times after a pre-pass failure", n)
	}

	r, stubs := backendRouter(t, Config{PartialResults: true})
	rep, err := r.Match(context.Background(), personal(), badOpts)
	if err != nil {
		t.Fatalf("partial-results router did not degrade: %v", err)
	}
	if rep.Incomplete {
		t.Error("fully successful degraded fan-out marked Incomplete")
	}
	if len(rep.Mappings) != 2 {
		t.Fatalf("degraded merge has %d mappings, want 2", len(rep.Mappings))
	}
	if rep.Mappings[0].Score.Delta != 0.9 || rep.Mappings[1].Score.Delta != 0.8 {
		t.Errorf("degraded merge not rank-merged: %+v", rep.Mappings)
	}
	for i, s := range stubs {
		if s.matchCalls.Load() != 1 || s.stagedCalls.Load() != 0 {
			t.Errorf("shard %d: match=%d staged=%d, want the full-pipeline path exactly once",
				i, s.matchCalls.Load(), s.stagedCalls.Load())
		}
	}
	st := r.Stats()
	if st.PrePassFallbacks != 1 {
		t.Errorf("PrePassFallbacks = %d, want 1", st.PrePassFallbacks)
	}
	if st.Errors != 0 {
		t.Errorf("degraded request counted as an error (%d)", st.Errors)
	}

	// The caller's own expiry must NOT degrade: a dead request errors.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Match(ctx, personal(), badOpts); err == nil {
		t.Error("cancelled request served a degraded merge")
	}
	if got := r.Stats().PrePassFallbacks; got != 1 {
		t.Errorf("PrePassFallbacks after cancelled request = %d, want still 1", got)
	}
}

// TestRouterWithShardBackendsPrepassPath: healthy requests through a
// backend-assembled router take the staged pre-pass path — matching and
// clustering run ONCE in the router, shards see only MatchWithClusters.
func TestRouterWithShardBackendsPrepassPath(t *testing.T) {
	r, stubs := backendRouter(t, Config{})
	rep, err := r.Match(context.Background(), personal(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mappings) != 2 {
		t.Fatalf("merged %d mappings, want 2", len(rep.Mappings))
	}
	for i, s := range stubs {
		if s.stagedCalls.Load() != 1 || s.matchCalls.Load() != 0 {
			t.Errorf("shard %d: staged=%d match=%d, want the pre-pass path exactly once",
				i, s.stagedCalls.Load(), s.matchCalls.Load())
		}
	}
	st := r.Stats()
	if st.CandidatePrePass != 1 {
		t.Errorf("CandidatePrePass = %d, want 1", st.CandidatePrePass)
	}

	// Partial-results fan-out over the interface: close one stub, the
	// other's report survives as an Incomplete merge.
	r.SetPartialResults(true)
	stubs[1].Close()
	opts := testOpts()
	opts.TopN = 55 // fresh pre-pass signature not needed, but fresh request shape
	rep, err = r.Match(context.Background(), personal(), opts)
	if err != nil {
		t.Fatalf("partial fan-out over backends failed: %v", err)
	}
	if !rep.Incomplete || len(rep.ShardErrors) != 1 || rep.ShardErrors[0].Shard != 1 {
		t.Fatalf("incomplete=%v errors=%+v, want incomplete with shard 1", rep.Incomplete, rep.ShardErrors)
	}
}
