package serve

import (
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/matcher"
)

// prepassCacheSize bounds the router's candidate pre-pass cache by entry
// count (a secondary limit under the unified byte budget). Candidate sets
// and clusters are small relative to the repository (post-threshold pairs
// only), and unlike reports they are kept per pre-pass signature — schema
// + matcher + MinSim + clustering options — so a handful of active
// personal schemas covers most traffic.
const prepassCacheSize = 64

// prepassEntry is one full-repository pre-pass result — the candidate set
// and the clusters built from it — inserted into the cache before it is
// computed: done closes when the fields are set, so concurrent requests
// for the same signature share one matching+clustering run (the leader)
// instead of each paying the cold-path cost.
type prepassEntry struct {
	done       chan struct{}
	cands      *matcher.Candidates
	clusters   []*cluster.Cluster
	iterations int
	matchDur   time.Duration
	clusterDur time.Duration
	// err is set for failed entries: deterministic clustering
	// configuration errors stay cached (same signature → same error),
	// while a leader whose context expired records the context error and
	// drops the entry so the next request retries fresh.
	err error
}

// prepassCache stores pre-pass entries keyed by the pre-pass signature
// (prepassSignature: schema + matcher + MinSim + clustering options), with
// built-in in-flight sharing, as a member space of the unified memory
// governor: completed entries are byte-accounted (settle) and compete with
// the report caches for the shared budget. Entries evicted — or dropped —
// while still computing stay valid for the waiters holding them; every
// entry eventually has its done channel closed.
type prepassCache struct {
	space *cacheSpace
}

func newPrepassCache(gov *memGovernor, capacity int) *prepassCache {
	return &prepassCache{space: gov.space(capacity)}
}

// join returns the entry for key, creating it when absent. leader is true
// for the caller that must compute the entry, settle (or drop) it, and
// close done.
func (c *prepassCache) join(key string) (e *prepassEntry, leader bool) {
	v, created := c.space.getOrCreate(key, func() any {
		return &prepassEntry{done: make(chan struct{})}
	})
	return v.(*prepassEntry), created
}

// settle charges a completed entry's actual size to the governor (entries
// enter the cache at zero bytes because their size is unknown until the
// leader finishes).
func (c *prepassCache) settle(key string, e *prepassEntry) {
	c.space.resize(key, e, prepassEntryBytes(e))
}

// drop removes the entry from the cache if it is still the one stored
// under key, so a later identical request starts a fresh computation
// instead of inheriting a transient failure.
func (c *prepassCache) drop(key string, e *prepassEntry) {
	c.space.drop(key, e)
}
