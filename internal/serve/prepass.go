package serve

import (
	"container/list"
	"sync"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/matcher"
)

// prepassCacheSize bounds the router's candidate pre-pass LRU. Candidate
// sets and clusters are small relative to the repository (post-threshold
// pairs only), and unlike reports they are kept per pre-pass signature —
// schema + matcher + MinSim + clustering options — so a handful of active
// personal schemas covers most traffic.
const prepassCacheSize = 64

// prepassEntry is one full-repository pre-pass result — the candidate set
// and the clusters built from it — inserted into the cache before it is
// computed: done closes when the fields are set, so concurrent requests
// for the same signature share one matching+clustering run (the leader)
// instead of each paying the cold-path cost.
type prepassEntry struct {
	done       chan struct{}
	cands      *matcher.Candidates
	clusters   []*cluster.Cluster
	iterations int
	matchDur   time.Duration
	clusterDur time.Duration
	// err is set for failed entries: deterministic clustering
	// configuration errors stay cached (same signature → same error),
	// while a leader whose context expired records the context error and
	// drops the entry so the next request retries fresh.
	err error
}

// prepassCache is a mutex-guarded LRU of pre-pass entries keyed by the
// pre-pass signature (prepassSignature: schema + matcher + MinSim +
// clustering options), with built-in in-flight sharing. Entries evicted —
// or dropped — while still computing stay valid for the waiters holding
// them; every entry eventually has its done channel closed.
type prepassCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *prepassItem
	byKey map[string]*list.Element
}

type prepassItem struct {
	key   string
	entry *prepassEntry
}

func newPrepassCache(capacity int) *prepassCache {
	return &prepassCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// join returns the entry for key, creating it when absent. leader is true
// for the caller that must compute the entry and close done.
func (c *prepassCache) join(key string) (e *prepassEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*prepassItem).entry, false
	}
	e = &prepassEntry{done: make(chan struct{})}
	c.byKey[key] = c.order.PushFront(&prepassItem{key: key, entry: e})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*prepassItem).key)
	}
	return e, true
}

// drop removes the entry from the cache if it is still the one stored
// under key, so a later identical request starts a fresh computation
// instead of inheriting a transient failure.
func (c *prepassCache) drop(key string, e *prepassEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok && el.Value.(*prepassItem).entry == e {
		c.order.Remove(el)
		delete(c.byKey, key)
	}
}
