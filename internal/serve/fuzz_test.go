package serve

import (
	"math/rand"
	"testing"

	"bellflower/internal/schema"
)

// fuzzRepo builds a random repository from a seeded rng: up to maxTrees
// trees of 1–12 nodes with names drawn from a small pool, so vocabularies
// overlap the way the clustered partitioner cares about.
func fuzzRepo(rng *rand.Rand, maxTrees int) *schema.Repository {
	pool := []string{
		"book", "title", "author", "name", "email", "address", "price",
		"order", "item", "dose", "chart", "ward", "patient", "isbn",
	}
	repo := schema.NewRepository()
	for i := 0; i < maxTrees; i++ {
		b := schema.NewBuilder("t")
		nodes := []*schema.Node{b.Root(pool[rng.Intn(len(pool))])}
		extra := rng.Intn(12)
		for j := 0; j < extra; j++ {
			parent := nodes[rng.Intn(len(nodes))]
			nodes = append(nodes, b.Element(parent, pool[rng.Intn(len(pool))]))
		}
		repo.MustAdd(b.MustTree())
	}
	return repo
}

// FuzzPartitionRepository checks the partition invariants both strategies
// promise, for arbitrary repositories and shard counts: shard repositories
// are structurally valid, no shard is empty, no tree is lost or
// duplicated, node totals are preserved, and trees are never split — the
// clustering distance between nodes of different trees is infinite, so
// intact trees are exactly what "clusters never span shards" requires.
func FuzzPartitionRepository(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(4), false)
	f.Add(int64(2), uint8(1), uint8(8), true)
	f.Add(int64(3), uint8(12), uint8(0), true)
	f.Add(int64(4), uint8(0), uint8(3), false)
	f.Fuzz(func(t *testing.T, seed int64, numTrees uint8, n uint8, clustered bool) {
		rng := rand.New(rand.NewSource(seed))
		repo := fuzzRepo(rng, int(numTrees)%16)
		strategy := PartitionBalanced
		if clustered {
			strategy = PartitionClustered
		}
		parts, cloneOf := partitionRepository(repo, int(n), strategy)
		if len(parts) != len(cloneOf) {
			t.Fatalf("%d parts but %d clone maps", len(parts), len(cloneOf))
		}
		wantShards := int(n)
		if wantShards > repo.NumTrees() {
			wantShards = repo.NumTrees()
		}
		if wantShards < 1 {
			wantShards = 1
		}
		if len(parts) != wantShards {
			t.Fatalf("%d shards, want %d (n=%d over %d trees)", len(parts), wantShards, n, repo.NumTrees())
		}

		trees, nodes := 0, 0
		assignedShard := make(map[*schema.Tree]int) // original tree -> shard
		for i, p := range parts {
			if repo.NumTrees() > 0 && p.NumTrees() == 0 {
				t.Errorf("shard %d is empty", i)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("shard %d invalid: %v", i, err)
			}
			trees += p.NumTrees()
			nodes += p.Len()
			if len(cloneOf[i]) != p.NumTrees() {
				t.Errorf("shard %d: %d clone entries for %d trees", i, len(cloneOf[i]), p.NumTrees())
			}
			for orig, clone := range cloneOf[i] {
				if prev, dup := assignedShard[orig]; dup {
					t.Errorf("tree %q assigned to shards %d and %d", orig.Name, prev, i)
				}
				assignedShard[orig] = i
				if orig.String() != clone.String() || orig.Len() != clone.Len() {
					t.Errorf("shard %d: clone of %q differs structurally", i, orig.Name)
				}
			}
		}
		if trees != repo.NumTrees() || nodes != repo.Len() {
			t.Errorf("partition covers %d trees / %d nodes, want %d / %d",
				trees, nodes, repo.NumTrees(), repo.Len())
		}
		for _, orig := range repo.Trees() {
			if _, ok := assignedShard[orig]; !ok {
				t.Errorf("tree %q lost by the partition", orig.Name)
			}
		}
	})
}
