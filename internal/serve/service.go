package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/query"
	"bellflower/internal/schema"
	"bellflower/internal/trace"
)

// ErrClosed is returned by Match after Close.
var ErrClosed = errors.New("serve: service closed")

// ErrSchemaTooLarge is wrapped in the error returned when a personal
// schema exceeds Config.MaxSchemaNodes; match with errors.Is.
var ErrSchemaTooLarge = errors.New("personal schema too large")

// Config sizes the service. The zero value picks sensible defaults; use a
// negative CacheSize or MaxSchemaNodes to disable that limit outright.
type Config struct {
	// Workers is the worker-pool size — the maximum number of pipeline
	// runs executing at once. Default: GOMAXPROCS.
	Workers int

	// QueueDepth bounds the run queue. A full queue applies backpressure:
	// leaders block (respecting their context) instead of piling up
	// unbounded work. Default: 4 × Workers.
	QueueDepth int

	// CacheSize is the report cache capacity in reports. Default 256;
	// negative disables caching.
	CacheSize int

	// CacheBytes bounds the unified cache memory in bytes: completed
	// reports and (for a sharded router) pre-pass results are
	// size-estimated and charged to one memory governor, which evicts the
	// globally least-recently-used entry when the budget is exceeded.
	// 0 or negative = no byte bound (entry-count caps still apply).
	CacheBytes int64

	// CacheTTL ages cache entries out: an entry older than the TTL is
	// dropped on access instead of served, so stale reports do not
	// outlive repository swaps indefinitely. 0 or negative = no expiry.
	CacheTTL time.Duration

	// PartialResults opts a sharded Router into partial-results fan-out:
	// when some (not all) shards fail, the merged report is built from
	// the shards that succeeded and marked Incomplete with per-shard
	// errors, instead of the whole request failing. Ignored by a plain
	// Service. See Router.SetPartialResults.
	PartialResults bool

	// gov, when set by a Router, makes this service charge its report
	// cache into the router's shared memory governor instead of owning
	// one; CacheBytes/CacheTTL are then the router's to interpret.
	gov *memGovernor

	// HealthInterval is the base period of the background health probes a
	// distributed router runs against each remote replica (jittered ±20%;
	// see HealthConfig). 0 picks the 5s default; negative disables
	// background probing entirely — replica health then moves only on
	// live-traffic transport errors and construction-time checks, so a
	// marked-down replica stays down for the process lifetime. Ignored by
	// in-process topologies.
	HealthInterval time.Duration

	// HealthFailures is the consecutive-failure threshold after which a
	// remote replica is marked unhealthy (probes and live-traffic
	// transport errors count alike). 0 picks the default (3). Ignored by
	// in-process topologies.
	HealthFailures int

	// WireCodec selects the shard-RPC request codec a DISTRIBUTED router
	// speaks to its remote shards: "auto" (or empty, the default)
	// negotiates per shard through the stats handshake — binary payloads
	// and projection references with shards that advertise the binary
	// codec, plain JSON with the ones that don't; "json" pins the legacy
	// JSON surface (what a pre-codec router sends); "binary" forces the
	// binary codec without waiting for a handshake. Ignored by in-process
	// topologies.
	WireCodec string

	// MaxSchemaNodes rejects personal schemas with more nodes than this
	// before any work happens (the search space grows exponentially with
	// personal-schema size, so this is the service's overload guard).
	// Default 64; negative disables the check.
	MaxSchemaNodes int

	// DefaultTimeout bounds requests whose context carries no deadline.
	// 0 means no default bound.
	DefaultTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = 256
	case c.CacheSize < 0:
		c.CacheSize = 0
	}
	switch {
	case c.MaxSchemaNodes == 0:
		c.MaxSchemaNodes = 64
	case c.MaxSchemaNodes < 0:
		c.MaxSchemaNodes = 0
	}
	return c
}

// task is one scheduled pipeline run. cands, when non-nil, is a
// precomputed (projected) candidate set: the run skips element matching
// via Runner.RunWithCandidates; when clusters is additionally non-nil the
// run skips clustering too, via Runner.RunWithClusters.
type task struct {
	key        string
	c          *call
	personal   *schema.Tree
	opts       pipeline.Options
	cands      *matcher.Candidates
	clusters   []*cluster.Cluster
	iterations int

	// tctx carries the scheduling leader's trace position (and nothing
	// else): the worker adopts it onto the detached run context so
	// pipeline spans land in the request trace that started the run,
	// without inheriting the request's cancellation.
	tctx context.Context
}

// Service is a concurrent matching service over one indexed repository.
// It is safe for use from many goroutines; create with New and release
// with Close.
type Service struct {
	runner *pipeline.Runner
	cfg    Config

	queue  chan *task
	flight *flightGroup
	gov    *memGovernor
	cache  *reportCache
	ct     counters

	// projc is the shard server's content-addressed projection cache,
	// registered via NewProjectionCache; nil on every other topology.
	projc atomic.Pointer[ProjectionCache]

	root   context.Context // service lifetime; parent of every run context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
}

// New starts a service around an existing runner (sharing its index).
func New(runner *pipeline.Runner, cfg Config) *Service {
	cfg = cfg.withDefaults()
	gov := cfg.gov
	if gov == nil {
		gov = newGovernor(cfg.CacheBytes, cfg.CacheTTL)
	}
	root, cancel := context.WithCancel(context.Background())
	s := &Service{
		runner: runner,
		cfg:    cfg,
		queue:  make(chan *task, cfg.QueueDepth),
		flight: newFlightGroup(),
		gov:    gov,
		cache:  newReportCache(gov, cfg.CacheSize),
		root:   root,
		cancel: cancel,
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// NewFromRepository indexes the repository and starts a service.
func NewFromRepository(repo *schema.Repository, cfg Config) *Service {
	return New(pipeline.NewRunner(repo), cfg)
}

// Runner returns the underlying pipeline runner.
func (s *Service) Runner() *pipeline.Runner { return s.runner }

// Repository returns the repository being served. For a view-backed shard
// this is the FULL shared repository (views do not clone trees); use Trees
// for the shard's own member trees.
func (s *Service) Repository() *schema.Repository { return s.runner.Repository() }

// Trees returns the trees this service actually serves: the shard view's
// member trees for a view-backed shard, the whole repository otherwise.
func (s *Service) Trees() []*schema.Tree {
	if v := s.runner.View(); v != nil {
		return v.Trees()
	}
	return s.runner.Repository().Trees()
}

// Index returns the runner's labelling index (used for query rewriting).
// View-backed shards of one router all return the same shared index.
func (s *Service) Index() *labeling.Index { return s.runner.Index() }

// Close stops the workers, cancels in-flight runs and fails queued
// requests with ErrClosed. It blocks until the workers have exited.
// Match calls after Close return ErrClosed.
func (s *Service) Close() {
	s.once.Do(func() {
		s.cancel()
		s.wg.Wait()
		// Fail whatever was still queued; no worker will take it now.
		for {
			select {
			case t := <-s.queue:
				s.flight.finish(t.key, t.c, nil, ErrClosed)
			default:
				return
			}
		}
	})
}

// worker drains the run queue until the service closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.root.Done():
			return
		case t := <-s.queue:
			runCtx := t.c.runCtx
			if t.tctx != nil {
				runCtx = trace.Adopt(runCtx, t.tctx)
			}
			runCtx, rsp := trace.StartSpan(runCtx, "pipeline.run")
			var rep *pipeline.Report
			var err error
			switch {
			case t.clusters != nil:
				rep, err = s.runner.RunWithClusters(runCtx, t.personal, t.cands, t.clusters, t.iterations, t.opts)
			case t.cands != nil:
				rep, err = s.runner.RunWithCandidates(runCtx, t.personal, t.cands, t.opts)
			default:
				rep, err = s.runner.RunContext(runCtx, t.personal, t.opts)
			}
			if err != nil {
				rsp.SetAttr("error", err.Error())
			}
			rsp.End()
			s.ct.runs.Add(1)
			if err == nil {
				s.cache.Put(t.key, rep)
				s.ct.observeStages(rep.MatchTime, rep.ClusterTime, rep.GenTime)
			}
			s.flight.finish(t.key, t.c, rep, err)
		}
	}
}

// Match serves one match request. Identical concurrent requests share one
// pipeline run; identical repeated requests are served from the report
// cache. The returned Report may be shared with other callers and must be
// treated as read-only.
//
// ctx bounds the request: if it expires while the request is queued or
// running, Match returns ctx.Err() immediately, and the underlying run is
// cancelled as soon as no other caller is waiting on it. Requests without
// a deadline get Config.DefaultTimeout when one is configured.
func (s *Service) Match(ctx context.Context, personal *schema.Tree, opts pipeline.Options) (*pipeline.Report, error) {
	return s.match(ctx, personal, opts, nil, nil, 0)
}

// MatchWithCandidates is Match with a precomputed element-matching result:
// the pipeline run skips FindCandidates and proceeds straight to
// clustering (Runner.RunWithCandidates). cands must be the candidate set
// this service's repository would produce for (personal, opts) — in the
// sharded setup, the router's full-repository pre-pass projected onto this
// shard — so the report, and therefore the cache entry under the shared
// request signature, is identical to a from-scratch Match. Cache,
// deduplication and instrumentation behave exactly as in Match.
func (s *Service) MatchWithCandidates(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates) (*pipeline.Report, error) {
	if cands == nil {
		return nil, errors.New("serve: MatchWithCandidates needs a candidate set")
	}
	return s.match(ctx, personal, opts, cands, nil, 0)
}

// MatchWithClusters goes one stage deeper than MatchWithCandidates: the
// clusters come precomputed too, and the pipeline run is generation only
// (Runner.RunWithClusters). The sharded router's pre-pass uses it to run
// matching and clustering once globally. clusters must be non-nil (an
// empty, non-nil slice is a valid projection: a shard may hold none of the
// query's clusters) and must have been built from cands under the same
// options against this service's repository.
func (s *Service) MatchWithClusters(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates, clusters []*cluster.Cluster, iterations int) (*pipeline.Report, error) {
	if cands == nil {
		return nil, errors.New("serve: MatchWithClusters needs a candidate set")
	}
	if clusters == nil {
		return nil, errors.New("serve: MatchWithClusters needs a cluster slice (possibly empty, never nil)")
	}
	return s.match(ctx, personal, opts, cands, clusters, iterations)
}

// match is the shared body of Match, MatchWithCandidates and
// MatchWithClusters.
func (s *Service) match(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates, clusters []*cluster.Cluster, iterations int) (*pipeline.Report, error) {
	s.ct.requests.Add(1)
	if err := s.root.Err(); err != nil {
		s.ct.rejected.Add(1)
		return nil, ErrClosed
	}
	if personal == nil || personal.Root() == nil {
		s.ct.rejected.Add(1)
		return nil, errors.New("serve: nil personal schema")
	}
	if max := s.cfg.MaxSchemaNodes; max > 0 && personal.Len() > max {
		s.ct.rejected.Add(1)
		return nil, fmt.Errorf("serve: %w: %d nodes > limit %d", ErrSchemaTooLarge, personal.Len(), max)
	}
	if s.cfg.DefaultTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}

	start := time.Now()
	key := Signature(personal, opts)
	for attempt := 0; ; attempt++ {
		_, csp := trace.StartSpan(ctx, "cache.lookup")
		rep, ok := s.cache.Get(key)
		if csp != nil {
			csp.SetAttr("hit", strconv.FormatBool(ok))
			csp.End()
		}
		if ok {
			if attempt == 0 {
				s.ct.cacheHits.Add(1)
			}
			s.ct.observe(time.Since(start))
			return rep, nil
		}
		if attempt == 0 {
			s.ct.cacheMisses.Add(1)
		}

		c, leader := s.flight.join(key, s.root)
		if leader {
			t := &task{key: key, c: c, personal: personal, opts: opts,
				cands: cands, clusters: clusters, iterations: iterations}
			if trace.FromContext(ctx) != nil {
				t.tctx = ctx
			}
			select {
			case s.queue <- t:
			case <-ctx.Done():
				// The run never got scheduled; unblock any followers with
				// the leader's error (follower retry below shields the
				// ones whose own contexts are still live).
				s.flight.finish(key, c, nil, ctx.Err())
				s.ct.errors.Add(1)
				return nil, ctx.Err()
			case <-s.root.Done():
				s.flight.finish(key, c, nil, ErrClosed)
				s.ct.errors.Add(1)
				return nil, ErrClosed
			}
		} else if attempt == 0 {
			s.ct.deduped.Add(1)
		}

		_, wsp := trace.StartSpan(ctx, "flight.wait")
		if wsp != nil {
			wsp.SetAttr("leader", strconv.FormatBool(leader))
		}
		select {
		case <-c.done:
			wsp.End()
			if c.err != nil {
				// A follower may inherit a context error that belonged to
				// another caller (the shared run's leader expired or every
				// waiter of a previous round left). If our own context is
				// still live, retry: the next round either finds the
				// cache populated or elects us leader of a fresh run.
				if !leader && ctxError(c.err) && ctx.Err() == nil {
					continue
				}
				s.ct.errors.Add(1)
				return nil, c.err
			}
			s.ct.observe(time.Since(start))
			return c.rep, nil
		case <-ctx.Done():
			wsp.End()
			s.flight.leave(key, c)
			s.ct.errors.Add(1)
			return nil, ctx.Err()
		case <-s.root.Done():
			wsp.End()
			// Service closed while waiting; Close fails queued tasks, but
			// a task enqueued concurrently with shutdown could slip past
			// the drain, so don't rely on c.done.
			s.flight.leave(key, c)
			s.ct.errors.Add(1)
			return nil, ErrClosed
		}
	}
}

// ctxError reports whether err is a context cancellation or deadline
// expiry — the error classes a shared run can inherit from a caller other
// than the one inspecting it.
func ctxError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Request is one entry of a MatchBatch call.
type Request struct {
	Personal *schema.Tree
	Opts     pipeline.Options
}

// Result pairs a batch entry's report with its error; exactly one of the
// two is set.
type Result struct {
	Report *pipeline.Report
	Err    error
}

// MatchBatch serves a batch of requests concurrently and returns results
// in request order. Identical entries within one batch are deduplicated
// like any other concurrent requests. Goroutine fan-out is bounded (a
// huge batch must not pin one goroutine per entry behind the worker
// pool); pipeline concurrency stays bounded by the pool itself.
func (s *Service) MatchBatch(ctx context.Context, reqs []Request) []Result {
	return matchBatch(ctx, reqs, s.CapacityHint(), s.Match)
}

// CapacityHint is the number of requests the service can hold (running or
// queued); batch fan-outs — the Router's included — size themselves by it.
func (s *Service) CapacityHint() int { return s.cfg.Workers + s.cfg.QueueDepth }

// matchBatch fans reqs out over at most fanout goroutines against match,
// collecting results in request order.
func matchBatch(ctx context.Context, reqs []Request, fanout int,
	match func(context.Context, *schema.Tree, pipeline.Options) (*pipeline.Report, error)) []Result {
	results := make([]Result, len(reqs))
	if fanout > len(reqs) {
		fanout = len(reqs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(fanout)
	for g := 0; g < fanout; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				rep, err := match(ctx, reqs[i].Personal, reqs[i].Opts)
				results[i] = Result{Report: rep, Err: err}
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// RewriteQuery translates an XPath query over the personal schema into a
// query over the repository schema using a mapping discovered by Match.
// It reads only the immutable index, so it is safe concurrently with
// Match traffic.
func (s *Service) RewriteQuery(q string, personal *schema.Tree, mp mapgen.Mapping) (string, error) {
	parsed, err := query.Parse(q)
	if err != nil {
		return "", err
	}
	return query.Rewrite(parsed, personal, mp, s.runner.Index())
}

// ShardStats implements Backend: a plain service is its own single shard.
func (s *Service) ShardStats() []Stats { return []Stats{s.Stats()} }

// Snapshot implements Backend: one snapshot serves as both rollup and the
// single shard's entry.
func (s *Service) Snapshot() (Stats, []Stats) {
	st := s.Stats()
	return st, []Stats{st}
}

// RepositoryStats implements Backend: the served slice of the forest —
// the view's member trees for a view-backed shard (so a router's rollup
// sums to the whole repository exactly once), the whole repository
// otherwise.
func (s *Service) RepositoryStats() schema.Stats {
	if v := s.runner.View(); v != nil {
		return v.Stats()
	}
	return s.Repository().Stats()
}

// NumShards implements Backend; a plain service is one shard.
func (s *Service) NumShards() int { return 1 }

// Stats returns a point-in-time snapshot of the service's counters.
func (s *Service) Stats() Stats {
	_, budget, evictions, expired := s.gov.snapshot()
	st := Stats{
		CacheBytes:      s.cache.Bytes(),
		CacheByteBudget: budget,
		CacheEvictions:  evictions,
		CacheExpired:    expired,
		IndexBytes:      s.runner.Index().MemoryBytes(),
		Requests:        s.ct.requests.Load(),
		CacheHits:       s.ct.cacheHits.Load(),
		CacheMisses:     s.ct.cacheMisses.Load(),
		DedupedInFlight: s.ct.deduped.Load(),
		PipelineRuns:    s.ct.runs.Load(),
		Errors:          s.ct.errors.Load(),
		Rejected:        s.ct.rejected.Load(),
		QueueDepth:      len(s.queue),
		QueueCapacity:   cap(s.queue),
		InFlight:        s.flight.inFlight(),
		Workers:         s.cfg.Workers,
		CacheLen:        s.cache.Len(),
		CacheCap:        s.cache.Cap(),
		Latency:         s.ct.lat.snapshot(),
		Stages:          s.ct.snapshotStages(),
	}
	if ni := s.runner.NameIndex(); ni != nil {
		st.NameIndexBytes = ni.MemoryBytes()
		st.DistinctVocabRatio = ni.DistinctRatio()
		ks := ni.KernelStats()
		st.SimCallsSaved = ks.SavedCalls
		st.MatchPrunes = ks.PruneHits
	}
	gs := s.runner.GenStats().Snapshot()
	st.PartialMappings = gs.PartialMappings
	st.ClustersSkippedByBound = gs.ClustersSkippedByBound
	st.FloorTightenings = gs.FloorTightenings
	st.GenPoolReuses = gs.PoolReuses
	if pc := s.projc.Load(); pc != nil {
		st.ProjectionCacheHits = pc.hits.Load()
		st.ProjectionCacheMisses = pc.misses.Load()
		st.CacheBytes += pc.sp.residentBytes()
	}
	return st
}
