package serve

import (
	"bufio"
	"context"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{})
	defer s.Close()
	for i := 0; i < 3; i++ {
		if _, err := s.Match(context.Background(), personal(), testOpts()); err != nil {
			t.Fatal(err)
		}
	}

	var b strings.Builder
	if err := WritePrometheus(&b, s.Stats(), 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, name := range []string{
		"bellflower_requests_total 3",
		"bellflower_cache_hits_total 2",
		"bellflower_pipeline_runs_total 1",
		"bellflower_shards 1",
		"bellflower_request_latency_seconds_count 3",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("output missing %q:\n%s", name, out)
		}
	}

	// Histogram buckets must be cumulative and end at the total count, and
	// every sample line needs HELP/TYPE metadata.
	var last int64 = -1
	sc := bufio.NewScanner(strings.NewReader(out))
	buckets := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "bellflower_request_latency_seconds_bucket") {
			continue
		}
		buckets++
		v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = v
	}
	if buckets != numLatencyBuckets {
		t.Errorf("%d bucket lines, want %d (including +Inf)", buckets, numLatencyBuckets)
	}
	if last != 3 {
		t.Errorf("+Inf bucket = %d, want 3", last)
	}
	if strings.Count(out, "# TYPE") == 0 || strings.Count(out, "# HELP") != strings.Count(out, "# TYPE") {
		t.Error("HELP/TYPE metadata out of balance")
	}
}

func TestMergeStats(t *testing.T) {
	a := Stats{
		Requests: 5, CacheHits: 2, PipelineRuns: 3, Workers: 4, QueueCapacity: 16,
		Latency: LatencyStats{
			Count: 2, SumMS: 10,
			BucketsMS: []float64{1, 5},
			Counts:    []int64{1, 1, 0},
		},
	}
	b := Stats{
		Requests: 7, CacheHits: 1, PipelineRuns: 6, Workers: 4, QueueCapacity: 16,
		Latency: LatencyStats{
			Count: 3, SumMS: 20,
			BucketsMS: []float64{1, 5},
			Counts:    []int64{0, 2, 1},
		},
	}
	got := MergeStats(a, b)
	if got.Requests != 12 || got.CacheHits != 3 || got.PipelineRuns != 9 {
		t.Errorf("counters = %+v", got)
	}
	if got.Workers != 8 || got.QueueCapacity != 32 {
		t.Errorf("capacities = %+v", got)
	}
	if got.Latency.Count != 5 || got.Latency.SumMS != 30 || got.Latency.MeanMS != 6 {
		t.Errorf("latency rollup = %+v", got.Latency)
	}
	if want := []int64{1, 3, 1}; len(got.Latency.Counts) != 3 ||
		got.Latency.Counts[0] != want[0] || got.Latency.Counts[1] != want[1] || got.Latency.Counts[2] != want[2] {
		t.Errorf("bucket counts = %v, want %v", got.Latency.Counts, want)
	}
	// Merging nothing yields a zero snapshot, not a panic.
	if z := MergeStats(); z.Requests != 0 || z.Latency.Count != 0 {
		t.Errorf("empty merge = %+v", z)
	}
}

// TestWritePrometheusCandidatePrePass: a sharded router's rollup exports
// the pre-pass counter in the scrape payload.
func TestWritePrometheusCandidatePrePass(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 2, Config{})
	defer r.Close()
	for i := 0; i < 2; i++ {
		opts := testOpts()
		opts.TopN = 50 + i // cold, one candidate signature
		if _, err := r.Match(context.Background(), personal(), opts); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r.Stats(), r.NumShards()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "bellflower_candidate_prepass_total 1") {
		t.Errorf("scrape missing bellflower_candidate_prepass_total 1:\n%s", b.String())
	}
}

// TestWritePrometheusShardLabels: WritePrometheusSnapshot adds per-shard
// labelled series next to the unlabelled rollup, and the labelled
// families sum to the rollup for pure per-shard counters.
func TestWritePrometheusShardLabels(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 3, Config{})
	defer r.Close()
	for i := 0; i < 2; i++ {
		if _, err := r.Match(context.Background(), personal(), testOpts()); err != nil {
			t.Fatal(err)
		}
	}
	total, shards := r.Snapshot()
	var b strings.Builder
	if err := WritePrometheusSnapshot(&b, total, shards); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// The rollup names are unchanged...
	if !strings.Contains(out, "bellflower_requests_total ") {
		t.Error("rollup series missing from labelled scrape")
	}
	// ...and every shard appears in the labelled families.
	sum := int64(0)
	for i, st := range shards {
		line := "bellflower_shard_requests_total{shard=\"" + strconv.Itoa(i) + "\"} " + strconv.FormatInt(st.Requests, 10)
		if !strings.Contains(out, line) {
			t.Errorf("scrape missing %q:\n%s", line, out)
		}
		sum += st.Requests
	}
	if sum != total.Requests {
		t.Errorf("labelled shard requests sum to %d, rollup says %d", sum, total.Requests)
	}
	for _, name := range []string{
		"bellflower_shard_cache_hits_total{shard=\"0\"}",
		"bellflower_shard_pipeline_runs_total{shard=\"2\"}",
		"bellflower_shard_cache_bytes{shard=\"1\"}",
		"bellflower_index_bytes ",
		"bellflower_cache_bytes ",
		"bellflower_partial_results_total 0",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("scrape missing %q", name)
		}
	}
	if strings.Count(out, "# HELP") != strings.Count(out, "# TYPE") {
		t.Error("HELP/TYPE metadata out of balance in labelled scrape")
	}

	// A single-shard backend emits no labelled families.
	s := NewFromRepository(testRepo(t), Config{})
	defer s.Close()
	st, ss := s.Snapshot()
	var single strings.Builder
	if err := WritePrometheusSnapshot(&single, st, ss); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(single.String(), "{shard=") {
		t.Error("single-shard scrape contains shard labels")
	}
}

// TestWritePrometheusStageFamilies: after traffic, the scrape carries a
// bellflower_stage_duration_ms histogram family with one labelled series
// set per stage, cumulative within each stage, and matching _sum/_count
// lines. A fresh snapshot with no stages emits no stage family at all.
func TestWritePrometheusStageFamilies(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 2, Config{})
	defer r.Close()
	for i := 0; i < 2; i++ {
		if _, err := r.Match(context.Background(), personal(), testOpts()); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r.Stats(), r.NumShards()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	const fam = "bellflower_stage_duration_ms"
	for _, stage := range []string{StageGenerate, StagePrePass, StageFanout, StageMerge} {
		if !strings.Contains(out, fam+`_count{stage="`+stage+`"}`) {
			t.Errorf("scrape missing stage %q count:\n%s", stage, out)
		}
		if !strings.Contains(out, fam+`_bucket{stage="`+stage+`",le="+Inf"}`) {
			t.Errorf("scrape missing stage %q +Inf bucket", stage)
		}
		// Per-stage buckets are cumulative and end at that stage's count.
		var last, count int64 = -1, -1
		sc := bufio.NewScanner(strings.NewReader(out))
		buckets := 0
		for sc.Scan() {
			line := sc.Text()
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if strings.HasPrefix(line, fam+`_bucket{stage="`+stage+`",`) {
				if err != nil {
					t.Fatalf("bucket line %q: %v", line, err)
				}
				if v < last {
					t.Errorf("stage %q buckets not cumulative: %q after %d", stage, line, last)
				}
				last = v
				buckets++
			} else if strings.HasPrefix(line, fam+`_count{stage="`+stage+`"}`) {
				if err != nil {
					t.Fatalf("count line %q: %v", line, err)
				}
				count = v
			}
		}
		if buckets != numLatencyBuckets {
			t.Errorf("stage %q: %d bucket lines, want %d", stage, buckets, numLatencyBuckets)
		}
		if count < 1 || last != count {
			t.Errorf("stage %q: +Inf bucket %d, _count %d; want equal and >= 1", stage, last, count)
		}
	}
	// One HELP/TYPE pair covers the whole labelled family.
	if n := strings.Count(out, "# TYPE "+fam+" histogram"); n != 1 {
		t.Errorf("%d TYPE lines for %s, want 1", n, fam)
	}
	if strings.Count(out, "# HELP") != strings.Count(out, "# TYPE") {
		t.Error("HELP/TYPE metadata out of balance")
	}

	// No traffic -> no stage family.
	var empty strings.Builder
	if err := WritePrometheus(&empty, Stats{}, 1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty.String(), fam) {
		t.Error("empty snapshot emitted a stage family")
	}
}

// TestLatencyQuantiles: quantile interpolation on a hand-built histogram,
// overflow clamping, and the snapshot/merge paths filling P50/P95/P99.
func TestLatencyQuantiles(t *testing.T) {
	// All 10 observations fell in the (1, 2] bucket: quantiles interpolate
	// linearly across that bucket.
	ls := LatencyStats{
		Count:     10,
		BucketsMS: []float64{1, 2, 5},
		Counts:    []int64{0, 10, 0, 0},
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 1.5}, {0.95, 1.95}, {0.99, 1.99}, {1.0, 2.0},
	} {
		if got := ls.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}

	// Observations in the +Inf overflow clamp to the last finite bound.
	over := LatencyStats{Count: 4, BucketsMS: []float64{1, 2, 5}, Counts: []int64{0, 0, 0, 4}}
	if got := over.Quantile(0.99); got != 5 {
		t.Errorf("overflow Quantile(0.99) = %g, want clamp to 5", got)
	}

	// Empty histograms yield zero, not NaN or a panic.
	if got := (LatencyStats{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}

	// The live snapshot path fills the exported fields.
	var h histogram
	for i := 0; i < 100; i++ {
		h.observe(3 * time.Millisecond) // (2, 5] bucket
	}
	snap := h.snapshot()
	if snap.P50MS <= 2 || snap.P50MS > 5 || snap.P95MS <= 2 || snap.P95MS > 5 {
		t.Errorf("snapshot quantiles outside the observed bucket: p50=%g p95=%g", snap.P50MS, snap.P95MS)
	}
	if snap.P99MS < snap.P50MS {
		t.Errorf("p99 %g < p50 %g", snap.P99MS, snap.P50MS)
	}

	// MergeStats recomputes quantiles from the summed buckets.
	a := Stats{Latency: LatencyStats{Count: 1, SumMS: 1, BucketsMS: []float64{1, 2}, Counts: []int64{1, 0, 0}}}
	b := Stats{Latency: LatencyStats{Count: 99, SumMS: 198, BucketsMS: []float64{1, 2}, Counts: []int64{0, 99, 0}}}
	m := MergeStats(a, b)
	if m.Latency.P50MS <= 1 || m.Latency.P50MS > 2 {
		t.Errorf("merged p50 = %g, want in (1, 2]", m.Latency.P50MS)
	}
	if m.Latency.P50MS != m.Latency.Quantile(0.5) {
		t.Errorf("merged P50MS %g != recomputed %g", m.Latency.P50MS, m.Latency.Quantile(0.5))
	}
}
