package serve

import (
	"container/list"
	"sync"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
)

// memGovernor is the unified memory governor behind every cache the
// serving layer keeps: the per-shard report caches and the router's
// candidate pre-pass cache all charge their entries, size-estimated in
// bytes, into one governor. Eviction is size-aware and global — when the
// byte budget is exceeded, the least-recently-used entry across ALL
// member caches goes, whatever kind it is — so an operator bounds total
// cache memory with a single knob (Config.CacheBytes / -cache-bytes)
// instead of sizing N shard caches and a pre-pass LRU independently.
// Per-cache entry-count caps (Config.CacheSize, prepassCacheSize) are
// still enforced as secondary limits, and an optional TTL
// (Config.CacheTTL / -cache-ttl) ages entries out of every member cache
// so stale reports cannot outlive backend swaps indefinitely.
//
// A governor is safe for concurrent use. All state is guarded by one
// mutex; member caches (cacheSpace) share the governor's LRU list and
// byte account but keep their own key maps, so identical request
// signatures in different shards never collide.
type memGovernor struct {
	mu       sync.Mutex
	maxBytes int64         // 0 = no byte bound
	ttl      time.Duration // 0 = entries never expire
	now      func() time.Time

	used      int64
	order     *list.List // *govEntry; front = most recently used
	evictions int64      // entries evicted for space (bytes or count)
	expired   int64      // entries dropped because their TTL passed
}

// govEntry is one resident cache entry, owned by a cacheSpace and
// accounted by the governor.
type govEntry struct {
	space  *cacheSpace
	key    string
	val    any
	bytes  int64
	expire time.Time // zero: never expires
}

// cacheSpace is one member cache of a governor: its own key namespace and
// entry-count cap over the shared LRU order and byte budget.
type cacheSpace struct {
	gov   *memGovernor
	cap   int // max entries; <= 0 disables the space entirely
	byKey map[string]*list.Element
	bytes int64 // resident bytes of this space's entries
}

func newGovernor(maxBytes int64, ttl time.Duration) *memGovernor {
	if maxBytes < 0 {
		maxBytes = 0
	}
	if ttl < 0 {
		ttl = 0
	}
	return &memGovernor{maxBytes: maxBytes, ttl: ttl, now: time.Now, order: list.New()}
}

// space registers a member cache holding up to capacity entries; a
// non-positive capacity disables the space (every get misses, puts are
// dropped), preserving the historical CacheSize < 0 semantics.
func (g *memGovernor) space(capacity int) *cacheSpace {
	return &cacheSpace{gov: g, cap: capacity, byKey: make(map[string]*list.Element)}
}

// snapshot returns the governor-level gauges and counters.
func (g *memGovernor) snapshot() (used, budget, evictions, expired int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used, g.maxBytes, g.evictions, g.expired
}

// expiry computes a new entry's expiration time under the governor's TTL.
func (g *memGovernor) expiry() time.Time {
	if g.ttl <= 0 {
		return time.Time{}
	}
	return g.now().Add(g.ttl)
}

// remove unlinks an entry and returns its bytes to the account. Callers
// hold g.mu.
func (g *memGovernor) remove(el *list.Element) {
	e := el.Value.(*govEntry)
	g.order.Remove(el)
	delete(e.space.byKey, e.key)
	g.used -= e.bytes
	e.space.bytes -= e.bytes
}

// enforce evicts until the space's entry cap and the governor's byte
// budget both hold. Count-cap eviction removes the space's own oldest
// entry; byte eviction removes the globally oldest entry regardless of
// which space owns it. Callers hold g.mu.
func (g *memGovernor) enforce(s *cacheSpace) {
	for s.cap > 0 && len(s.byKey) > s.cap {
		for el := g.order.Back(); el != nil; el = el.Prev() {
			if el.Value.(*govEntry).space == s {
				g.remove(el)
				g.evictions++
				break
			}
		}
	}
	for g.maxBytes > 0 && g.used > g.maxBytes {
		el := g.order.Back()
		if el == nil {
			return
		}
		g.remove(el)
		g.evictions++
	}
}

// get returns the live entry for key, expiring it lazily when its TTL has
// passed.
func (s *cacheSpace) get(key string) (any, bool) {
	if s.cap <= 0 {
		return nil, false
	}
	g := s.gov
	g.mu.Lock()
	defer g.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*govEntry)
	if !e.expire.IsZero() && g.now().After(e.expire) {
		g.remove(el)
		g.expired++
		return nil, false
	}
	g.order.MoveToFront(el)
	return e.val, true
}

// put inserts or replaces the entry for key, charging bytes to the
// governor and evicting as needed. An entry larger than the whole byte
// budget is evicted immediately — oversized values simply don't cache.
func (s *cacheSpace) put(key string, val any, bytes int64) {
	if s.cap <= 0 {
		return
	}
	g := s.gov
	g.mu.Lock()
	defer g.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*govEntry)
		g.used += bytes - e.bytes
		s.bytes += bytes - e.bytes
		e.val, e.bytes = val, bytes
		e.expire = g.expiry()
		g.order.MoveToFront(el)
	} else {
		e := &govEntry{space: s, key: key, val: val, bytes: bytes, expire: g.expiry()}
		s.byKey[key] = g.order.PushFront(e)
		g.used += bytes
		s.bytes += bytes
	}
	g.enforce(s)
}

// getOrCreate returns the live entry for key, or inserts the value built
// by create (charged at zero bytes — callers report the real size with
// resize once it is known) and reports created = true. The check and
// insert are one atomic step, which is what in-flight sharing needs.
func (s *cacheSpace) getOrCreate(key string, create func() any) (val any, created bool) {
	g := s.gov
	g.mu.Lock()
	defer g.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*govEntry)
		if e.expire.IsZero() || !g.now().After(e.expire) {
			g.order.MoveToFront(el)
			return e.val, false
		}
		g.remove(el)
		g.expired++
	}
	v := create()
	e := &govEntry{space: s, key: key, val: v, expire: g.expiry()}
	s.byKey[key] = g.order.PushFront(e)
	g.enforce(s)
	return v, true
}

// resize re-accounts the entry under key with its now-known byte size, if
// it is still resident and still holds val.
func (s *cacheSpace) resize(key string, val any, bytes int64) {
	g := s.gov
	g.mu.Lock()
	defer g.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		return
	}
	e := el.Value.(*govEntry)
	if e.val != val {
		return
	}
	g.used += bytes - e.bytes
	s.bytes += bytes - e.bytes
	e.bytes = bytes
	g.enforce(s)
}

// drop removes the entry under key if it still holds val, so a transient
// failure is not served to later identical requests.
func (s *cacheSpace) drop(key string, val any) {
	g := s.gov
	g.mu.Lock()
	defer g.mu.Unlock()
	if el, ok := s.byKey[key]; ok && el.Value.(*govEntry).val == val {
		g.remove(el)
	}
}

// len returns the space's resident entry count.
func (s *cacheSpace) len() int {
	s.gov.mu.Lock()
	defer s.gov.mu.Unlock()
	return len(s.byKey)
}

// residentBytes returns the space's accounted bytes.
func (s *cacheSpace) residentBytes() int64 {
	s.gov.mu.Lock()
	defer s.gov.mu.Unlock()
	return s.bytes
}

// --- size estimators ---
//
// The estimates cover the dominant growth terms (slices of mappings,
// candidates, cluster elements) plus a flat struct overhead; pointer-shared
// schema nodes are NOT charged — they belong to the repository, which the
// governor does not manage. What matters for governance is that the
// accounting is internally consistent: the governor's used figure always
// equals the sum of its resident entries' charges (asserted by tests).

const (
	wordBytes   = 8
	structSlack = 128 // flat per-entry overhead: struct fields + map/list bookkeeping
)

// mappingBytes estimates one ranked mapping's resident size.
func mappingBytes(images, sims int) int64 {
	return int64(images)*wordBytes + int64(sims)*wordBytes + 64
}

// reportBytes estimates a completed report's resident size.
func reportBytes(rep *pipeline.Report) int64 {
	b := int64(structSlack)
	b += int64(len(rep.ClusterSizes)) * wordBytes
	for i := range rep.Mappings {
		b += mappingBytes(len(rep.Mappings[i].Images), len(rep.Mappings[i].Sims))
	}
	for i := range rep.Partials {
		b += mappingBytes(len(rep.Partials[i].Images), len(rep.Partials[i].Sims))
	}
	for i := range rep.ShardErrors {
		b += int64(len(rep.ShardErrors[i].Err)) + 24
	}
	return b
}

// candidatesBytes estimates an element-matching result's resident size.
func candidatesBytes(c *matcher.Candidates) int64 {
	b := int64(len(c.Sets)) * 40 // CandidateSet headers
	for i := range c.Sets {
		b += int64(len(c.Sets[i].Elems)) * 16 // Candidate{*Node, float64}
	}
	return b
}

// clustersBytes estimates a clustering result's resident size.
func clustersBytes(cls []*cluster.Cluster) int64 {
	b := int64(len(cls)) * wordBytes
	for _, cl := range cls {
		b += 64 + int64(len(cl.Elements))*24 // Element{*Node, uint64, float64}
	}
	return b
}

// prepassEntryBytes estimates a completed pre-pass entry's resident size.
func prepassEntryBytes(e *prepassEntry) int64 {
	b := int64(structSlack)
	if e.cands != nil {
		b += candidatesBytes(e.cands)
	}
	return b + clustersBytes(e.clusters)
}
