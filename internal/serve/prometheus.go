package serve

import (
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders a stats snapshot in the Prometheus text
// exposition format (version 0.0.4): the service counters as counters, the
// occupancy figures as gauges, and the request latency histogram with
// cumulative buckets in seconds. shards is the backend's fan-out width
// (Backend.NumShards); pass a rolled-up snapshot (Backend.Stats) so the
// scrape covers every shard.
//
// The metric names emitted here are part of the server's public interface
// and documented in the README; change them only with a migration note.
func WritePrometheus(w io.Writer, st Stats, shards int) error {
	ew := &errWriter{w: w}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("bellflower_requests_total", "Match requests received (batch entries count individually; a sharded request counts once per shard).", st.Requests)
	counter("bellflower_cache_hits_total", "Requests served from the report cache.", st.CacheHits)
	counter("bellflower_cache_misses_total", "Requests that consulted the flight group.", st.CacheMisses)
	counter("bellflower_deduped_in_flight_total", "Requests that joined an identical in-flight run.", st.DedupedInFlight)
	counter("bellflower_pipeline_runs_total", "Matching pipeline executions completed.", st.PipelineRuns)
	counter("bellflower_candidate_prepass_total", "Full-repository candidate pre-pass executions (router-level element matching, shared across shards).", st.CandidatePrePass)
	counter("bellflower_partial_results_total", "Fanned-out requests served as Incomplete merges under the partial-results option.", st.PartialResults)
	counter("bellflower_prepass_fallback_total", "Requests degraded to full per-shard pipelines after a pre-pass failure (partial-results option).", st.PrePassFallbacks)
	counter("bellflower_failovers_total", "Match attempts retried on a different replica after a transport error.", st.Failovers)
	counter("bellflower_health_skips_total", "Shards skipped by the partial-results fan-out because every replica was unhealthy (no request sent).", st.HealthSkips)
	counter("bellflower_errors_total", "Requests that finished with an error, including cancellations and deadline expiries.", st.Errors)
	counter("bellflower_rejected_total", "Requests refused before running (closed service, oversized or nil schema).", st.Rejected)
	counter("bellflower_cache_evictions_total", "Cache entries evicted for space (byte budget or entry-count cap).", st.CacheEvictions)
	counter("bellflower_cache_expired_total", "Cache entries dropped because their TTL passed.", st.CacheExpired)
	counter("bellflower_projection_cache_hits_total", "Shard-server projection references resolved from the content-addressed projection cache (the projection never crossed the wire).", st.ProjectionCacheHits)
	counter("bellflower_projection_cache_misses_total", "Shard-server projection references answered 428 projection-needed (the client retried with the full payload).", st.ProjectionCacheMisses)
	counter("bellflower_sim_calls_saved_total", "Similarity evaluations avoided by the matching kernel's vocabulary dedup (distinct keys scored once, fanned out to nodes).", st.SimCallsSaved)
	counter("bellflower_match_prunes_total", "Edit-distance passes skipped by the matching kernel's length-difference pruning bound.", st.MatchPrunes)

	const wb = "bellflower_wire_bytes_total"
	fmt.Fprintf(ew, "# HELP %s Shard-RPC body bytes by direction and codec, counted at the shard server (in = request bodies received, out = response bodies sent).\n# TYPE %s counter\n", wb, wb)
	fmt.Fprintf(ew, "%s{dir=\"in\",codec=\"json\"} %d\n", wb, st.WireBytes.InJSON)
	fmt.Fprintf(ew, "%s{dir=\"in\",codec=\"binary\"} %d\n", wb, st.WireBytes.InBinary)
	fmt.Fprintf(ew, "%s{dir=\"out\",codec=\"json\"} %d\n", wb, st.WireBytes.OutJSON)
	fmt.Fprintf(ew, "%s{dir=\"out\",codec=\"binary\"} %d\n", wb, st.WireBytes.OutBinary)

	gauge("bellflower_shards", "Repository shards served by this process.", int64(shards))
	gauge("bellflower_workers", "Pipeline worker goroutines across all shards.", int64(st.Workers))
	gauge("bellflower_queue_depth", "Runs waiting for a worker right now.", int64(st.QueueDepth))
	gauge("bellflower_queue_capacity", "Bounded run-queue capacity.", int64(st.QueueCapacity))
	gauge("bellflower_in_flight", "Distinct deduplicated runs executing or queued.", int64(st.InFlight))
	gauge("bellflower_report_cache_entries", "Reports currently cached.", int64(st.CacheLen))
	gauge("bellflower_report_cache_capacity", "Report cache capacity.", int64(st.CacheCap))
	gauge("bellflower_cache_bytes", "Resident size-estimated bytes across the unified cache (reports + pre-pass).", st.CacheBytes)
	gauge("bellflower_cache_byte_budget", "Unified cache byte budget (0 = unbounded).", st.CacheByteBudget)
	gauge("bellflower_index_bytes", "Resident labelling-index bytes (distinct indexes counted once; view-backed shards share one).", st.IndexBytes)
	gauge("bellflower_name_index_bytes", "Resident name-similarity-index bytes of the matching kernel (distinct indexes counted once; view-backed shards share one).", st.NameIndexBytes)
	gaugeF("bellflower_distinct_vocab_ratio", "Distinct (name, datatype) keys over repository nodes; its inverse is the matching kernel's vocabulary-dedup factor.", st.DistinctVocabRatio)

	const hist = "bellflower_request_latency_seconds"
	fmt.Fprintf(ew, "# HELP %s End-to-end request latency.\n# TYPE %s histogram\n", hist, hist)
	cum := int64(0)
	for i, ub := range st.Latency.BucketsMS {
		if i < len(st.Latency.Counts) {
			cum += st.Latency.Counts[i]
		}
		fmt.Fprintf(ew, "%s_bucket{le=\"%g\"} %d\n", hist, ub/1000, cum)
	}
	fmt.Fprintf(ew, "%s_bucket{le=\"+Inf\"} %d\n", hist, st.Latency.Count)
	fmt.Fprintf(ew, "%s_sum %g\n", hist, st.Latency.SumMS/1000)
	fmt.Fprintf(ew, "%s_count %d\n", hist, st.Latency.Count)

	if len(st.Stages) > 0 {
		const stageHist = "bellflower_stage_duration_ms"
		fmt.Fprintf(ew, "# HELP %s Per-stage latency by pipeline/serving stage, in milliseconds.\n# TYPE %s histogram\n", stageHist, stageHist)
		names := make([]string, 0, len(st.Stages))
		for name := range st.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ls := st.Stages[name]
			cum := int64(0)
			for i, ub := range ls.BucketsMS {
				if i < len(ls.Counts) {
					cum += ls.Counts[i]
				}
				fmt.Fprintf(ew, "%s_bucket{stage=%q,le=\"%g\"} %d\n", stageHist, name, ub, cum)
			}
			fmt.Fprintf(ew, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", stageHist, name, ls.Count)
			fmt.Fprintf(ew, "%s_sum{stage=%q} %g\n", stageHist, name, ls.SumMS)
			fmt.Fprintf(ew, "%s_count{stage=%q} %d\n", stageHist, name, ls.Count)
		}
	}
	return ew.err
}

// shardSeries is the per-shard metric family written by
// WritePrometheusSnapshot: one labelled series per shard alongside the
// unlabelled rollup.
var shardSeries = []struct {
	name, typ, help string
	value           func(Stats) int64
}{
	{"bellflower_shard_requests_total", "counter", "Match requests received by the shard.", func(s Stats) int64 { return s.Requests }},
	{"bellflower_shard_cache_hits_total", "counter", "Shard requests served from its report cache.", func(s Stats) int64 { return s.CacheHits }},
	{"bellflower_shard_cache_misses_total", "counter", "Shard requests that consulted the flight group.", func(s Stats) int64 { return s.CacheMisses }},
	{"bellflower_shard_deduped_in_flight_total", "counter", "Shard requests that joined an identical in-flight run.", func(s Stats) int64 { return s.DedupedInFlight }},
	{"bellflower_shard_pipeline_runs_total", "counter", "Pipeline executions completed by the shard.", func(s Stats) int64 { return s.PipelineRuns }},
	{"bellflower_shard_errors_total", "counter", "Shard requests that finished with an error.", func(s Stats) int64 { return s.Errors }},
	{"bellflower_shard_rejected_total", "counter", "Shard requests refused before running.", func(s Stats) int64 { return s.Rejected }},
	{"bellflower_shard_queue_depth", "gauge", "Runs waiting for one of the shard's workers right now.", func(s Stats) int64 { return int64(s.QueueDepth) }},
	{"bellflower_shard_in_flight", "gauge", "Distinct deduplicated runs executing or queued on the shard.", func(s Stats) int64 { return int64(s.InFlight) }},
	{"bellflower_shard_report_cache_entries", "gauge", "Reports currently cached by the shard.", func(s Stats) int64 { return int64(s.CacheLen) }},
	{"bellflower_shard_cache_bytes", "gauge", "Resident size-estimated bytes of the shard's report cache.", func(s Stats) int64 { return s.CacheBytes }},
	{"bellflower_shard_failovers_total", "counter", "Shard match attempts retried on a different replica after a transport error.", func(s Stats) int64 { return s.Failovers }},
}

// WritePrometheusSnapshot renders a backend's coherent snapshot
// (Backend.Snapshot): the rolled-up metrics of WritePrometheus, followed —
// when the backend actually fans out (len(shards) > 1) — by per-shard
// series labelled {shard="N"}, N being the shard's index in the router's
// shard order. The rollup names stay exactly those of WritePrometheus, so
// existing dashboards keep working; the labelled families add the
// per-shard breakdown under distinct bellflower_shard_* names. Shards
// backed by replica groups additionally emit one
// bellflower_shard_healthy{shard,replica} gauge per replica (1 healthy,
// 0 marked down) — even for a single-shard fan-out, where the other
// per-shard series would duplicate the rollup but replica health exists
// nowhere else.
func WritePrometheusSnapshot(w io.Writer, total Stats, shards []Stats) error {
	if err := WritePrometheus(w, total, len(shards)); err != nil {
		return err
	}
	ew := &errWriter{w: w}
	if len(shards) > 1 {
		for _, m := range shardSeries {
			fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
			for i, st := range shards {
				fmt.Fprintf(ew, "%s{shard=\"%d\"} %d\n", m.name, i, m.value(st))
			}
		}
	}
	wroteHealthHeader := false
	for i, st := range shards {
		for _, rh := range st.Replicas {
			if !wroteHealthHeader {
				const name = "bellflower_shard_healthy"
				fmt.Fprintf(ew, "# HELP %s Replica health per shard: 1 healthy, 0 marked unhealthy by the control plane.\n# TYPE %s gauge\n", name, name)
				wroteHealthHeader = true
			}
			v := 0
			if rh.Healthy {
				v = 1
			}
			fmt.Fprintf(ew, "bellflower_shard_healthy{shard=\"%d\",replica=%q} %d\n", i, rh.Addr, v)
		}
	}
	return ew.err
}

// errWriter latches the first write error so WritePrometheus needs no error
// check per line.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
