package serve

import (
	"fmt"
	"io"
)

// WritePrometheus renders a stats snapshot in the Prometheus text
// exposition format (version 0.0.4): the service counters as counters, the
// occupancy figures as gauges, and the request latency histogram with
// cumulative buckets in seconds. shards is the backend's fan-out width
// (Backend.NumShards); pass a rolled-up snapshot (Backend.Stats) so the
// scrape covers every shard.
//
// The metric names emitted here are part of the server's public interface
// and documented in the README; change them only with a migration note.
func WritePrometheus(w io.Writer, st Stats, shards int) error {
	ew := &errWriter{w: w}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(ew, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("bellflower_requests_total", "Match requests received (batch entries count individually; a sharded request counts once per shard).", st.Requests)
	counter("bellflower_cache_hits_total", "Requests served from the report cache.", st.CacheHits)
	counter("bellflower_cache_misses_total", "Requests that consulted the flight group.", st.CacheMisses)
	counter("bellflower_deduped_in_flight_total", "Requests that joined an identical in-flight run.", st.DedupedInFlight)
	counter("bellflower_pipeline_runs_total", "Matching pipeline executions completed.", st.PipelineRuns)
	counter("bellflower_candidate_prepass_total", "Full-repository candidate pre-pass executions (router-level element matching, shared across shards).", st.CandidatePrePass)
	counter("bellflower_errors_total", "Requests that finished with an error, including cancellations and deadline expiries.", st.Errors)
	counter("bellflower_rejected_total", "Requests refused before running (closed service, oversized or nil schema).", st.Rejected)

	gauge("bellflower_shards", "Repository shards served by this process.", int64(shards))
	gauge("bellflower_workers", "Pipeline worker goroutines across all shards.", int64(st.Workers))
	gauge("bellflower_queue_depth", "Runs waiting for a worker right now.", int64(st.QueueDepth))
	gauge("bellflower_queue_capacity", "Bounded run-queue capacity.", int64(st.QueueCapacity))
	gauge("bellflower_in_flight", "Distinct deduplicated runs executing or queued.", int64(st.InFlight))
	gauge("bellflower_report_cache_entries", "Reports currently cached.", int64(st.CacheLen))
	gauge("bellflower_report_cache_capacity", "Report cache capacity.", int64(st.CacheCap))

	const hist = "bellflower_request_latency_seconds"
	fmt.Fprintf(ew, "# HELP %s End-to-end request latency.\n# TYPE %s histogram\n", hist, hist)
	cum := int64(0)
	for i, ub := range st.Latency.BucketsMS {
		if i < len(st.Latency.Counts) {
			cum += st.Latency.Counts[i]
		}
		fmt.Fprintf(ew, "%s_bucket{le=\"%g\"} %d\n", hist, ub/1000, cum)
	}
	fmt.Fprintf(ew, "%s_bucket{le=\"+Inf\"} %d\n", hist, st.Latency.Count)
	fmt.Fprintf(ew, "%s_sum %g\n", hist, st.Latency.SumMS/1000)
	fmt.Fprintf(ew, "%s_count %d\n", hist, st.Latency.Count)
	return ew.err
}

// errWriter latches the first write error so WritePrometheus needs no error
// check per line.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
