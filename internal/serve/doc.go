// Package serve implements a long-lived concurrent matching service on top
// of the pipeline: one indexed repository serving streams of match requests
// from many clients.
//
// The design follows the dataflow shape of claircore's matcher
// architecture: requests flow through a bounded queue into a fixed worker
// pool, so an arbitrary number of concurrent clients exerts only bounded
// load on the expensive resource (the matching pipeline). Two layers
// exploit request overlap before any work is scheduled:
//
//   - a singleflight group deduplicates identical in-flight requests — N
//     concurrent clients asking the same question trigger one pipeline run
//     and share its report;
//   - an LRU cache keyed by a canonical request signature serves repeated
//     questions without running the pipeline at all.
//
// Per-request deadlines and cancellation are honoured end to end: a
// request context expiring while queued or running releases the caller
// immediately, and when the last waiter of a shared run has gone the run
// itself is cancelled via pipeline.Runner.RunContext.
//
// # Sharding: one index, shard views
//
// A Router scales the same service horizontally: the repository splits
// into per-shard tree subsets (candidate matching is per-tree and clusters
// never span trees, so partitioning loses no candidate mappings), one
// Service runs per shard, and Router.Match fans each request out across
// every shard concurrently, merging the per-shard ranked lists into one
// global top-N report with mapgen.MergeRanked. Two partition strategies
// exist: PartitionBalanced spreads trees by node count alone, while
// PartitionClustered (the default) co-locates trees with overlapping label
// vocabularies under a 2× average-load cap, so a query's candidates
// concentrate in the shards that speak its vocabulary. Service and Router
// both implement Backend, the surface the HTTP daemon serves.
//
// Shards built by the Router constructors are VIEWS, not copies: the
// router indexes the repository exactly once and each shard service runs
// on a labeling.View — a set of member trees plus a dense global↔local
// node-ID translation — over that single shared labeling.Index
// (PartitionRepositoryViews). Structural queries, mapping generation and
// query rewriting all read the one immutable index, so resident index
// memory is independent of the shard count (Stats.IndexBytes, which
// counts distinct indexes once, pins this; it used to be ~2× the index
// for a sharded deployment). The clone-based PartitionRepository helpers
// remain for topologies that need genuinely separate repositories, e.g.
// Services wrapped by NewRouter.
//
// # Transport-agnostic shards
//
// The Router reaches its shards only through the narrow ShardBackend
// interface — the three match entry points plus stats and close — so a
// shard need not live in this process at all. NewRouterWithShardBackends
// assembles a router over externally built backends;
// internal/shardrpc.RemoteShard implements ShardBackend as an HTTP client
// for a shard hosted by another process (bellflower-server -shard-of),
// with the shard view's dense local-ID space as the wire ID space.
// Remote-shard failures flow through the same partial-results machinery
// as local ones: per-shard errors, Report.Incomplete, per-shard metric
// series.
//
// # Candidate pre-pass
//
// Routers built from a whole repository run the cold-path stages once per
// request shape instead of once per shard: element matching and clustering
// execute against the full repository, keyed by a pre-pass signature
// (personal schema + matcher + MinSim + clustering options) with in-flight
// sharing, and the results are projected onto each shard. Because shards
// are views of the same repository, projection is pure filtering —
// matcher.Candidates.Restrict keeps each shard's member-tree candidates
// with their original node objects and order, and each global cluster
// (clusters never span trees) is handed wholesale to its owning shard.
// Shards then run only mapping generation (Service.MatchWithClusters →
// pipeline.Runner.RunWithClusters). The projection is exact, so reports
// are identical to per-shard computation — and because clustering is
// global, even the k-means variants reproduce the unsharded result
// exactly, which per-shard clustering only approximates. The pre-pass
// executions are counted by Stats.CandidatePrePass, surfaced in /v1/stats
// and as bellflower_candidate_prepass_total in the Prometheus scrape.
//
// # Memory governance
//
// All serving caches answer to one byte-budget memory governor: every
// shard's report cache and the router's pre-pass cache charge their
// entries — size-estimated in bytes — into a single account
// (Config.CacheBytes). When the budget is exceeded the governor evicts
// the globally least-recently-used entry across every member cache,
// whichever kind it is; per-cache entry-count caps (Config.CacheSize, the
// pre-pass's 64) remain as secondary limits, and an optional TTL
// (Config.CacheTTL) ages entries out so stale reports die between
// repository swaps. Stats exposes the account (CacheBytes,
// CacheByteBudget, CacheEvictions, CacheExpired) alongside IndexBytes.
//
// # Partial-results fan-out
//
// Router fan-out is strict by default: any shard error fails the whole
// request, because a merge missing one shard's mappings would present a
// wrong top-N as authoritative. Config.PartialResults (or
// Router.SetPartialResults) opts availability-over-completeness callers
// into merging the shards that succeeded when others fail: the report is
// marked Incomplete and carries per-shard errors
// (pipeline.Report.ShardErrors); requests that fail on every shard still
// error. A failed PRE-PASS also degrades under partial results: the
// request falls back to full per-shard pipelines instead of failing
// (counted by Stats.PrePassFallbacks; the k-means variants then cluster
// per shard, the documented no-pre-pass approximation), unless the
// caller's own context has expired. Stats.PartialResults counts the
// degraded merges.
//
// # Concurrency
//
// Every exported type is safe for use from many goroutines. A Service's
// repository, pipeline runner and labelling index are immutable after New;
// mutable state (queue, flight group, cache, counters) is synchronized
// internally. Reports returned by Match may be shared between callers and
// with the cache, and must be treated as read-only. Close is idempotent,
// may be called concurrently with Match, and unblocks queued waiters with
// ErrClosed.
package serve
