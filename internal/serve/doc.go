// Package serve implements a long-lived concurrent matching service on top
// of the pipeline: one indexed repository serving streams of match requests
// from many clients.
//
// The design follows the dataflow shape of claircore's matcher
// architecture: requests flow through a bounded queue into a fixed worker
// pool, so an arbitrary number of concurrent clients exerts only bounded
// load on the expensive resource (the matching pipeline). Two layers
// exploit request overlap before any work is scheduled:
//
//   - a singleflight group deduplicates identical in-flight requests — N
//     concurrent clients asking the same question trigger one pipeline run
//     and share its report;
//   - an LRU cache keyed by a canonical request signature serves repeated
//     questions without running the pipeline at all.
//
// Per-request deadlines and cancellation are honoured end to end: a
// request context expiring while queued or running releases the caller
// immediately, and when the last waiter of a shared run has gone the run
// itself is cancelled via pipeline.Runner.RunContext.
//
// # Sharding
//
// A Router scales the same service horizontally: the repository splits
// into per-shard tree subsets (candidate matching is per-tree and clusters
// never span trees, so partitioning loses no candidate mappings), one
// Service runs per shard, and Router.Match fans each request out across
// every shard concurrently, merging the per-shard ranked lists into one
// global top-N report with mapgen.MergeRanked. Two partition strategies
// exist: PartitionBalanced spreads trees by node count alone, while
// PartitionClustered (the default) co-locates trees with overlapping label
// vocabularies under a 2× average-load cap, so a query's candidates
// concentrate in the shards that speak its vocabulary. Service and Router
// both implement Backend, the surface the HTTP daemon serves.
//
// # Candidate pre-pass
//
// Routers built from a whole repository run the cold-path stages once per
// request shape instead of once per shard: element matching and clustering
// execute against the full repository, keyed by a pre-pass signature
// (personal schema + matcher + MinSim + clustering options) in a small LRU
// with in-flight sharing, and the results are projected onto each shard —
// matcher.Candidates.Project for the candidates, a preorder-rank
// translation for the clusters, which never span trees. Shards then run
// only mapping generation (Service.MatchWithClusters →
// pipeline.Runner.RunWithClusters). The projection is exact, so reports
// are identical to per-shard computation — and because clustering is
// global, even the k-means variants reproduce the unsharded result
// exactly, which per-shard clustering only approximates. The pre-pass
// executions are counted by Stats.CandidatePrePass, surfaced in /v1/stats
// and as bellflower_candidate_prepass_total in the Prometheus scrape.
//
// # Concurrency
//
// Every exported type is safe for use from many goroutines. A Service's
// repository, pipeline runner and labelling index are immutable after New;
// mutable state (queue, flight group, cache, counters) is synchronized
// internally. Reports returned by Match may be shared between callers and
// with the cache, and must be treated as read-only. Close is idempotent,
// may be called concurrently with Match, and unblocks queued waiters with
// ErrClosed.
package serve
