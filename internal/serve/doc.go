// Package serve implements a long-lived concurrent matching service on top
// of the pipeline: one indexed repository serving streams of match requests
// from many clients.
//
// The design follows the dataflow shape of claircore's matcher
// architecture: requests flow through a bounded queue into a fixed worker
// pool, so an arbitrary number of concurrent clients exerts only bounded
// load on the expensive resource (the matching pipeline). Two layers
// exploit request overlap before any work is scheduled:
//
//   - a singleflight group deduplicates identical in-flight requests — N
//     concurrent clients asking the same question trigger one pipeline run
//     and share its report;
//   - an LRU cache keyed by a canonical request signature serves repeated
//     questions without running the pipeline at all.
//
// Per-request deadlines and cancellation are honoured end to end: a
// request context expiring while queued or running releases the caller
// immediately, and when the last waiter of a shared run has gone the run
// itself is cancelled via pipeline.Runner.RunContext.
//
// # Sharding
//
// A Router scales the same service horizontally: PartitionRepository splits
// a repository into per-shard tree subsets (candidate matching is per-tree
// and clusters never span trees, so partitioning loses no candidate
// mappings), one Service runs per shard, and Router.Match fans each
// request out across every shard concurrently, merging the per-shard
// ranked lists into one global top-N report with mapgen.MergeRanked. With
// tree clustering the merged report equals the unsharded one exactly; the
// k-means variants cluster per shard, which may differ from a global
// clustering run — see Router. Service and Router both implement Backend,
// the surface the HTTP daemon serves.
//
// # Concurrency
//
// Every exported type is safe for use from many goroutines. A Service's
// repository, pipeline runner and labelling index are immutable after New;
// mutable state (queue, flight group, cache, counters) is synchronized
// internally. Reports returned by Match may be shared between callers and
// with the cache, and must be treated as read-only. Close is idempotent,
// may be called concurrently with Match, and unblocks queued waiters with
// ErrClosed.
package serve
