package serve

import (
	"fmt"
	"sort"
	"strings"

	"bellflower/internal/labeling"
	"bellflower/internal/schema"
)

// PartitionStrategy selects how PartitionRepository-style helpers and the
// Router constructors distribute repository trees across shards.
type PartitionStrategy int

const (
	// PartitionBalanced distributes trees greedily by node count: largest
	// tree first, each into the currently lightest shard. Shard loads end
	// up near-equal, but trees with overlapping vocabulary scatter, so
	// every shard's candidate projection tends to contain a slice of every
	// personal-schema query.
	PartitionBalanced PartitionStrategy = iota

	// PartitionClustered co-locates trees whose label vocabularies overlap:
	// each tree goes to the shard whose accumulated vocabulary it shares
	// the most names with, subject to a load cap of twice the average shard
	// size. Per-shard candidate projections shrink — a query's candidates
	// concentrate in the shards that speak its vocabulary — so clustering
	// and structure-matcher rescoring do less work per shard.
	PartitionClustered
)

// DefaultPartitionStrategy is the strategy Router constructors use when the
// caller does not pick one.
const DefaultPartitionStrategy = PartitionClustered

// String returns the flag-friendly name of the strategy.
func (s PartitionStrategy) String() string {
	switch s {
	case PartitionBalanced:
		return "balanced"
	case PartitionClustered:
		return "clustered"
	default:
		return fmt.Sprintf("PartitionStrategy(%d)", int(s))
	}
}

// ParsePartitionStrategy is the inverse of String, for flag and API wiring.
func ParsePartitionStrategy(s string) (PartitionStrategy, error) {
	switch s {
	case "balanced":
		return PartitionBalanced, nil
	case "clustered":
		return PartitionClustered, nil
	default:
		return 0, fmt.Errorf("serve: unknown partition strategy %q (want balanced|clustered)", s)
	}
}

// PartitionRepositoryViews splits the index's repository into up to n
// disjoint shard VIEWS: each shard is a labeling.View over the one shared
// index — a set of member trees plus a global↔local ID translation —
// instead of a cloned sub-repository with an index of its own. This is the
// partitioner the Router constructors use; it keeps every distribution
// guarantee of the clone-based helpers (each tree in exactly one shard, no
// shard empty, deterministic split, n clamped to [1, number of trees])
// while the resident index memory stays one full-repository copy
// regardless of n. The tree-ID descriptors inside the views are also the
// natural wire payload for a future out-of-process shard client.
func PartitionRepositoryViews(ix *labeling.Index, n int, strategy PartitionStrategy) []*labeling.View {
	assigned := assignTrees(ix.Repository().Trees(), n, strategy)
	views := make([]*labeling.View, len(assigned))
	for i, trees := range assigned {
		views[i] = labeling.NewView(ix, trees)
	}
	return views
}

// PartitionRepository splits a repository into up to n disjoint shard
// repositories with the balanced strategy. Trees are cloned (a tree belongs
// to exactly one repository) and distributed largest first, each into the
// currently lightest shard by node count, ties to the lowest shard index —
// deterministic for a given repository. n is clamped to [1, number of
// trees], so no shard is ever empty (an empty repository yields one empty
// shard).
//
// The clone-based partitioners exist for deployments that need genuinely
// independent repositories (separate processes, or Services wrapped by
// NewRouter); in-process sharding uses PartitionRepositoryViews, which
// shares one index across the shards instead of cloning.
func PartitionRepository(repo *schema.Repository, n int) []*schema.Repository {
	parts, _ := partitionRepository(repo, n, PartitionBalanced)
	return parts
}

// PartitionRepositoryClustered splits a repository into up to n disjoint
// shard repositories with the vocabulary-aware clustered strategy (see
// PartitionClustered). It keeps every guarantee of PartitionRepository —
// each tree lands in exactly one shard, no shard is empty, the split is
// deterministic — but trades exact node-count balance (bounded by a 2×
// average-load cap) for vocabulary co-location.
func PartitionRepositoryClustered(repo *schema.Repository, n int) []*schema.Repository {
	parts, _ := partitionRepository(repo, n, PartitionClustered)
	return parts
}

// partitionRepository builds the shard repositories and, for each shard,
// the original-tree → clone map the candidate pre-pass projects through.
func partitionRepository(repo *schema.Repository, n int, strategy PartitionStrategy) ([]*schema.Repository, []map[*schema.Tree]*schema.Tree) {
	assigned := assignTrees(repo.Trees(), n, strategy)
	parts := make([]*schema.Repository, len(assigned))
	cloneOf := make([]map[*schema.Tree]*schema.Tree, len(assigned))
	for i, trees := range assigned {
		parts[i] = schema.NewRepository()
		cloneOf[i] = make(map[*schema.Tree]*schema.Tree, len(trees))
		for _, t := range trees {
			c := t.Clone()
			parts[i].MustAdd(c)
			cloneOf[i][t] = c
		}
	}
	return parts, cloneOf
}

// assignTrees distributes the original trees over up to n shards according
// to the strategy. Every tree is assigned to exactly one shard and, for a
// non-empty tree list, no shard stays empty. n is clamped to
// [1, len(trees)] (1 when there are no trees).
func assignTrees(trees []*schema.Tree, n int, strategy PartitionStrategy) [][]*schema.Tree {
	if n > len(trees) {
		n = len(trees)
	}
	if n < 1 {
		n = 1
	}
	order := make([]*schema.Tree, len(trees))
	copy(order, trees)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Len() > order[j].Len() })
	if strategy == PartitionClustered {
		return assignClustered(order, n)
	}
	return assignBalanced(order, n)
}

// assignBalanced is the greedy node-count balancer: each tree (largest
// first) goes to the lightest shard, ties to the lowest index.
func assignBalanced(order []*schema.Tree, n int) [][]*schema.Tree {
	assigned := make([][]*schema.Tree, n)
	load := make([]int, n)
	for _, t := range order {
		lightest := 0
		for i := 1; i < n; i++ {
			if load[i] < load[lightest] {
				lightest = i
			}
		}
		assigned[lightest] = append(assigned[lightest], t)
		load[lightest] += t.Len()
	}
	return assigned
}

// assignClustered is the vocabulary-aware greedy: each tree (largest first)
// goes to the shard whose accumulated vocabulary shares the most distinct
// folded names with the tree's own, among shards still under the load cap
// (twice the average shard size — the loads sum to the total, so at least
// one shard is always under it). Ties go to the lighter shard, then the
// lower index; an empty shard scores overlap 0 and load 0, so trees with
// no affinity anywhere seed fresh shards first. When the trees left to
// place are exactly as many as the still-empty shards, each must seed one,
// keeping the no-empty-shard guarantee.
func assignClustered(order []*schema.Tree, n int) [][]*schema.Tree {
	total := 0
	for _, t := range order {
		total += t.Len()
	}
	capacity := 2 * ((total + n - 1) / n)

	assigned := make([][]*schema.Tree, n)
	load := make([]int, n)
	shardVocab := make([]map[string]bool, n)
	for i := range shardVocab {
		shardVocab[i] = make(map[string]bool)
	}
	empty := n
	for idx, t := range order {
		vocab := treeVocabulary(t)
		mustSeed := len(order)-idx <= empty
		best, bestOverlap := -1, -1
		for i := 0; i < n; i++ {
			isEmpty := len(assigned[i]) == 0
			if mustSeed && !isEmpty {
				continue
			}
			if !isEmpty && load[i] >= capacity {
				continue
			}
			overlap := 0
			for _, name := range vocab {
				if shardVocab[i][name] {
					overlap++
				}
			}
			if overlap > bestOverlap ||
				(overlap == bestOverlap && load[i] < load[best]) {
				best, bestOverlap = i, overlap
			}
		}
		if len(assigned[best]) == 0 {
			empty--
		}
		assigned[best] = append(assigned[best], t)
		load[best] += t.Len()
		for _, name := range vocab {
			shardVocab[best][name] = true
		}
	}
	return assigned
}

// treeVocabulary returns the sorted distinct case-folded node names of a
// tree. Sorted slices keep the greedy deterministic (overlap counting never
// iterates a map).
func treeVocabulary(t *schema.Tree) []string {
	set := make(map[string]bool, t.Len())
	for _, n := range t.Nodes() {
		set[strings.ToLower(n.Name)] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
