package serve

import (
	"sort"
	"strings"
	"testing"

	"bellflower/internal/schema"
)

// checkPartitionInvariants asserts the guarantees both strategies share:
// valid shard repositories, no empty shard, every input tree in exactly
// one shard, node totals preserved.
func checkPartitionInvariants(t *testing.T, repo *schema.Repository, parts []*schema.Repository) {
	t.Helper()
	trees, nodes := 0, 0
	seen := make(map[string]int)
	for i, p := range parts {
		if repo.NumTrees() > 0 && p.NumTrees() == 0 {
			t.Errorf("shard %d is empty", i)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("shard %d invalid: %v", i, err)
		}
		trees += p.NumTrees()
		nodes += p.Len()
		for _, tr := range p.Trees() {
			seen[tr.Name+"|"+tr.String()]++
		}
	}
	if trees != repo.NumTrees() || nodes != repo.Len() {
		t.Errorf("partition covers %d trees / %d nodes, want %d / %d",
			trees, nodes, repo.NumTrees(), repo.Len())
	}
	for _, tr := range repo.Trees() {
		if seen[tr.Name+"|"+tr.String()] < 1 {
			t.Errorf("tree %q missing from every shard", tr.Name)
		}
	}
}

func TestPartitionRepositoryClustered(t *testing.T) {
	repo := syntheticRepo(t, 600, 3)
	for _, n := range []int{1, 2, 4, 7} {
		parts := PartitionRepositoryClustered(repo, n)
		if len(parts) != n {
			t.Fatalf("n=%d: got %d parts", n, len(parts))
		}
		checkPartitionInvariants(t, repo, parts)

		// Load cap: no shard may exceed twice the ceiling average.
		capacity := 2 * ((repo.Len() + n - 1) / n)
		for i, p := range parts {
			// The last tree assigned may push a shard past the cap by at
			// most one tree's size; the eligibility check uses the load
			// before assignment.
			if p.Len() > capacity+repo.Stats().MaxTree {
				t.Errorf("n=%d shard %d holds %d nodes, cap %d", n, i, p.Len(), capacity)
			}
		}

		// Determinism.
		again := PartitionRepositoryClustered(repo, n)
		for i := range parts {
			if parts[i].NumTrees() != again[i].NumTrees() || parts[i].Len() != again[i].Len() {
				t.Errorf("n=%d shard %d not deterministic", n, i)
			}
		}
	}

	// Clamping mirrors the balanced partitioner.
	small := testRepo(t)
	if got := len(PartitionRepositoryClustered(small, 10)); got != 3 {
		t.Errorf("10 shards over 3 trees produced %d parts, want 3", got)
	}
	if got := len(PartitionRepositoryClustered(small, 0)); got != 1 {
		t.Errorf("0 shards produced %d parts, want 1", got)
	}
	empty := schema.NewRepository()
	if got := len(PartitionRepositoryClustered(empty, 4)); got != 1 {
		t.Errorf("empty repository produced %d parts, want 1", got)
	}
}

// TestPartitionClusteredColocatesVocabulary: trees sharing a vocabulary
// must land together while unrelated vocabularies separate — the whole
// point of the clustered strategy.
func TestPartitionClusteredColocatesVocabulary(t *testing.T) {
	repo := schema.NewRepository()
	// Two vocabulary families of four trees each, same sizes so the
	// balanced strategy would interleave them.
	for i := 0; i < 4; i++ {
		repo.MustAdd(schema.MustParseSpec("library(book(title,author),shelf)"))
		repo.MustAdd(schema.MustParseSpec("clinic(patient(dose,chart),ward)"))
	}
	parts := PartitionRepositoryClustered(repo, 2)
	if len(parts) != 2 {
		t.Fatalf("got %d parts", len(parts))
	}
	for i, p := range parts {
		vocab := make(map[string]bool)
		for _, tr := range p.Trees() {
			for _, name := range tr.Names() {
				vocab[strings.ToLower(name)] = true
			}
		}
		if vocab["book"] && vocab["patient"] {
			t.Errorf("shard %d mixes both vocabulary families: %v", i, sortedKeys(vocab))
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestPartitionStrategyString(t *testing.T) {
	for _, tc := range []struct {
		s    PartitionStrategy
		want string
	}{
		{PartitionBalanced, "balanced"},
		{PartitionClustered, "clustered"},
	} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int(tc.s), got, tc.want)
		}
		parsed, err := ParsePartitionStrategy(tc.want)
		if err != nil || parsed != tc.s {
			t.Errorf("ParsePartitionStrategy(%q) = %v, %v", tc.want, parsed, err)
		}
	}
	if _, err := ParsePartitionStrategy("psychic"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if got := PartitionStrategy(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown strategy renders as %q", got)
	}
}
