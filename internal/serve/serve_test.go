package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
)

func testRepo(t testing.TB) *schema.Repository {
	t.Helper()
	repo := schema.NewRepository()
	for _, spec := range []string{
		"lib(address,book(authorName,data(title),shelf))",
		"store(book(title,author,isbn@),order(id,customer(name,email)))",
		"catalog(item(name,price),publisher(name,address))",
	} {
		repo.MustAdd(schema.MustParseSpec(spec))
	}
	return repo
}

func testOpts() pipeline.Options {
	opts := pipeline.DefaultOptions()
	opts.Threshold = 0.5
	return opts
}

func personal() *schema.Tree { return schema.MustParseSpec("book(title,author)") }

func TestMatchAgreesWithDirectRun(t *testing.T) {
	repo := testRepo(t)
	s := NewFromRepository(repo, Config{})
	defer s.Close()

	rep, err := s.Match(context.Background(), personal(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := pipeline.NewRunner(repo).Run(personal(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mappings) == 0 || len(rep.Mappings) != len(direct.Mappings) {
		t.Fatalf("service found %d mappings, direct run %d", len(rep.Mappings), len(direct.Mappings))
	}
	for i := range rep.Mappings {
		if rep.Mappings[i].Score.Delta != direct.Mappings[i].Score.Delta {
			t.Fatalf("mapping %d: Δ %v != %v", i, rep.Mappings[i].Score.Delta, direct.Mappings[i].Score.Delta)
		}
	}
}

func TestCacheHit(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{})
	defer s.Close()

	r1, err := s.Match(context.Background(), personal(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Match(context.Background(), personal(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical repeated requests should share the cached report")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.PipelineRuns != 1 {
		t.Errorf("stats = hits %d, runs %d; want 1, 1", st.CacheHits, st.PipelineRuns)
	}

	// A different schema or different options must miss.
	if _, err := s.Match(context.Background(), schema.MustParseSpec("order(id,customer)"), testOpts()); err != nil {
		t.Fatal(err)
	}
	other := testOpts()
	other.TopN = 3
	if _, err := s.Match(context.Background(), personal(), other); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PipelineRuns != 3 {
		t.Errorf("pipeline runs = %d, want 3", st.PipelineRuns)
	}
}

// gateMatcher blocks every similarity computation until released, so tests
// can hold a pipeline run open deterministically.
type gateMatcher struct {
	started chan struct{} // signalled once, on first use
	release chan struct{} // computations proceed after this closes
	once    *sync.Once
}

func newGateMatcher() gateMatcher {
	return gateMatcher{
		started: make(chan struct{}),
		release: make(chan struct{}),
		once:    new(sync.Once),
	}
}

func (g gateMatcher) Name() string { return "gate" }

func (g gateMatcher) Similarity(p, r *schema.Node) float64 {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return matcher.NameMatcher{}.Similarity(p, r)
}

func TestSingleflightDedupe(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{Workers: 4})
	defer s.Close()

	gate := newGateMatcher()
	opts := testOpts()
	opts.Matcher = gate

	const n = 8
	var wg sync.WaitGroup
	reports := make([]*pipeline.Report, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = s.Match(context.Background(), personal(), opts)
		}(i)
	}

	// Wait for the leader's run to start, then for every follower to have
	// joined it, before letting the run proceed.
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline run never started")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().DedupedInFlight < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests deduped", s.Stats().DedupedInFlight, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate.release)
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if reports[i] != reports[0] {
			t.Errorf("request %d got a different report than the shared run", i)
		}
	}
	st := s.Stats()
	if st.PipelineRuns != 1 {
		t.Errorf("pipeline runs = %d, want 1 (singleflight)", st.PipelineRuns)
	}
	if st.DedupedInFlight != n-1 {
		t.Errorf("deduped = %d, want %d", st.DedupedInFlight, n-1)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight after completion = %d, want 0", st.InFlight)
	}
}

func TestDeadlineCancelsRun(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{Workers: 1})
	defer s.Close()

	gate := newGateMatcher()
	opts := testOpts()
	opts.Matcher = gate

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Match(ctx, personal(), opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline honoured after %v; should release the caller promptly", elapsed)
	}

	// Release the worker: with no waiters left the shared run context was
	// cancelled, so the pipeline aborts and nothing is cached.
	close(gate.release)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().PipelineRuns < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never finished the abandoned run")
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.CacheLen != 0 {
		t.Errorf("abandoned run was cached (CacheLen=%d)", st.CacheLen)
	}
}

func TestDefaultTimeout(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{Workers: 1, DefaultTimeout: 30 * time.Millisecond})
	defer s.Close()

	gate := newGateMatcher()
	defer close(gate.release)
	opts := testOpts()
	opts.Matcher = gate

	_, err := s.Match(context.Background(), personal(), opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded via DefaultTimeout", err)
	}
}

func TestRejections(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{MaxSchemaNodes: 3})
	if _, err := s.Match(context.Background(), nil, testOpts()); err == nil {
		t.Error("nil schema accepted")
	}
	_, err := s.Match(context.Background(), personal(), testOpts()) // 3 nodes: ok
	if err != nil {
		t.Errorf("3-node schema rejected under limit 3: %v", err)
	}
	_, err = s.Match(context.Background(), schema.MustParseSpec("a(b,c,d)"), testOpts())
	if !errors.Is(err, ErrSchemaTooLarge) {
		t.Errorf("err = %v, want ErrSchemaTooLarge", err)
	}
	if st := s.Stats(); st.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", st.Rejected)
	}

	s.Close()
	if _, err := s.Match(context.Background(), personal(), testOpts()); !errors.Is(err, ErrClosed) {
		t.Errorf("err after Close = %v, want ErrClosed", err)
	}
}

func TestMatchBatch(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{})
	defer s.Close()

	reqs := []Request{
		{Personal: personal(), Opts: testOpts()},
		{Personal: schema.MustParseSpec("customer(name,email)"), Opts: testOpts()},
		{Personal: nil, Opts: testOpts()},
		{Personal: personal(), Opts: testOpts()}, // duplicate of entry 0
	}
	results := s.MatchBatch(context.Background(), reqs)
	if len(results) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(results), len(reqs))
	}
	if results[0].Err != nil || results[1].Err != nil || results[3].Err != nil {
		t.Fatalf("unexpected errors: %v %v %v", results[0].Err, results[1].Err, results[3].Err)
	}
	if results[2].Err == nil {
		t.Error("nil schema entry should fail")
	}
	if results[0].Report == nil || len(results[0].Report.Mappings) == 0 {
		t.Error("entry 0 found no mappings")
	}
	// Entries 0 and 3 are identical: at most one pipeline run between them.
	if st := s.Stats(); st.PipelineRuns > 2 {
		t.Errorf("pipeline runs = %d, want <= 2 for a batch with one duplicate", st.PipelineRuns)
	}
}

func TestMatchBatchLargerThanFanout(t *testing.T) {
	// A batch far bigger than Workers+QueueDepth must complete without
	// pinning one goroutine per entry.
	s := NewFromRepository(testRepo(t), Config{Workers: 2, QueueDepth: 2})
	defer s.Close()

	reqs := make([]Request, 100)
	for i := range reqs {
		spec := []string{"book(title,author)", "customer(name,email)", "item(name,price)"}[i%3]
		reqs[i] = Request{Personal: schema.MustParseSpec(spec), Opts: testOpts()}
	}
	results := s.MatchBatch(context.Background(), reqs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("entry %d: %v", i, res.Err)
		}
		if res.Report == nil {
			t.Fatalf("entry %d: nil report", i)
		}
	}
	if st := s.Stats(); st.PipelineRuns > 3 {
		t.Errorf("pipeline runs = %d, want <= 3 (three distinct signatures)", st.PipelineRuns)
	}
}

func TestRewriteQuery(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{})
	defer s.Close()

	rep, err := s.Match(context.Background(), personal(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mappings) == 0 {
		t.Fatal("no mappings")
	}
	got, err := s.RewriteQuery(`/book/title`, personal(), rep.Mappings[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0] != '/' {
		t.Errorf("rewrite produced %q, want a repository XPath", got)
	}
}

func TestStatsLatencyHistogram(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{})
	defer s.Close()

	for i := 0; i < 5; i++ {
		if _, err := s.Match(context.Background(), personal(), testOpts()); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Latency.Count != 5 {
		t.Errorf("latency count = %d, want 5", st.Latency.Count)
	}
	if len(st.Latency.Counts) != len(st.Latency.BucketsMS)+1 {
		t.Fatalf("histogram shape: %d counts for %d buckets", len(st.Latency.Counts), len(st.Latency.BucketsMS))
	}
	var sum int64
	for _, c := range st.Latency.Counts {
		sum += c
	}
	if sum != st.Latency.Count {
		t.Errorf("bucket counts sum to %d, want %d", sum, st.Latency.Count)
	}
}

func TestReportCacheEviction(t *testing.T) {
	c := newReportCache(newGovernor(0, 0), 2)
	r := func() *pipeline.Report { return &pipeline.Report{} }
	c.Put("a", r())
	c.Put("b", r())
	c.Put("c", r()) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b missing")
	}
	c.Put("d", r()) // c is LRU now (b was just touched): evicts c
	if _, ok := c.Get("c"); ok {
		t.Error("c should have been evicted")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}

	disabled := newReportCache(newGovernor(0, 0), 0)
	disabled.Put("x", r())
	if _, ok := disabled.Get("x"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestSignature(t *testing.T) {
	base := testOpts()
	p := personal()
	sig := Signature(p, base)
	if Signature(schema.MustParseSpec("book(title,author)"), base) != sig {
		t.Error("equal requests produce different signatures")
	}
	variants := []pipeline.Options{}
	for _, mutate := range []func(*pipeline.Options){
		func(o *pipeline.Options) { o.Threshold = 0.9 },
		func(o *pipeline.Options) { o.TopN = 7 },
		func(o *pipeline.Options) { o.Variant = pipeline.VariantTree },
		func(o *pipeline.Options) { o.Matcher = matcher.NameMatcher{TokenAware: true} },
		func(o *pipeline.Options) { o.StructureMatcher = matcher.PathContextMatcher{} },
		func(o *pipeline.Options) { o.Parallelism = 4 },
		func(o *pipeline.Options) { o.Agglomerative = true },
	} {
		o := testOpts()
		mutate(&o)
		variants = append(variants, o)
	}
	seen := map[string]bool{sig: true}
	for i, o := range variants {
		s2 := Signature(p, o)
		if seen[s2] {
			t.Errorf("variant %d collides with an earlier signature", i)
		}
		seen[s2] = true
	}
	if Signature(schema.MustParseSpec("book(title,author@)"), base) == sig {
		t.Error("attribute marker not part of the signature")
	}
	if Signature(schema.MustParseSpec("book(title:string,author)"), base) == sig {
		t.Error("datatype not part of the signature")
	}

	// Composite matchers hold interface values whose fmt rendering would
	// include pointer addresses: two structurally identical instances must
	// still produce one signature, and different weights must not.
	combined := func(w float64) pipeline.Options {
		o := testOpts()
		o.Matcher = matcher.NewCombined(
			matcher.Weighted{Matcher: matcher.NameMatcher{}, Weight: w},
			matcher.Weighted{Matcher: matcher.DefaultSynonyms(), Weight: 1 - w},
		)
		return o
	}
	if Signature(p, combined(0.7)) != Signature(p, combined(0.7)) {
		t.Error("structurally identical combined matchers produce different signatures")
	}
	if Signature(p, combined(0.7)) == Signature(p, combined(0.3)) {
		t.Error("combined matchers with different weights share a signature")
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{Workers: 4, QueueDepth: 8})
	defer s.Close()

	specs := []string{
		"book(title,author)",
		"customer(name,email)",
		"item(name,price)",
		"publisher(name,address)",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				spec := specs[(g+i)%len(specs)]
				if _, err := s.Match(context.Background(), schema.MustParseSpec(spec), testOpts()); err != nil {
					t.Errorf("goroutine %d iter %d (%s): %v", g, i, spec, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Requests != 80 {
		t.Errorf("requests = %d, want 80", st.Requests)
	}
	if got := st.CacheHits + st.CacheMisses; got != 80 {
		t.Errorf("hits+misses = %d, want 80", got)
	}
	if st.PipelineRuns > st.CacheMisses {
		t.Errorf("more runs (%d) than misses (%d)", st.PipelineRuns, st.CacheMisses)
	}
}

// TestFollowerRetriesAfterLeaderDeadline pins down the singleflight edge
// where a leader blocked on a full queue dies of its own deadline: the
// follower whose context is still live must not inherit the leader's
// context error — it retries and becomes leader of a fresh attempt.
func TestFollowerRetriesAfterLeaderDeadline(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	gate := newGateMatcher()
	gated := testOpts()
	gated.Matcher = gate

	// Occupy the single worker and fill the single queue slot.
	runningErr := make(chan error, 1)
	go func() {
		_, err := s.Match(context.Background(), schema.MustParseSpec("item(name,price)"), gated)
		runningErr <- err
	}()
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("occupying run never started")
	}
	queuedErr := make(chan error, 1)
	go func() {
		_, err := s.Match(context.Background(), schema.MustParseSpec("customer(name,email)"), gated)
		queuedErr <- err
	}()
	waitUntil(t, func() bool { return s.Stats().QueueDepth == 1 })

	// Leader C (key K) blocks enqueueing and will die of its deadline;
	// follower D (same key, live context) joins it.
	leaderErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		_, err := s.Match(ctx, personal(), gated)
		leaderErr <- err
	}()
	followerRes := make(chan error, 1)
	waitUntil(t, func() bool { return s.Stats().InFlight >= 1 && s.Stats().QueueDepth == 1 })
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := s.Match(ctx, personal(), gated)
		followerRes <- err
	}()
	waitUntil(t, func() bool { return s.Stats().DedupedInFlight >= 1 })

	select {
	case err := <-leaderErr:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("leader err = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader never timed out")
	}
	close(gate.release) // drain: occupier, queued, then the follower's retry
	for name, ch := range map[string]chan error{"occupier": runningErr, "queued": queuedErr, "follower": followerRes} {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("%s: %v, want success", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s never finished", name)
		}
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{Workers: 1})

	gate := newGateMatcher()
	defer close(gate.release)
	opts := testOpts()
	opts.Matcher = gate

	errc := make(chan error, 1)
	go func() {
		_, err := s.Match(context.Background(), personal(), opts)
		errc <- err
	}()
	select {
	case <-gate.started:
	case <-time.After(5 * time.Second):
		t.Fatal("run never started")
	}
	go s.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) && !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want ErrClosed or Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Match did not unblock on Close")
	}
}

func ExampleService() {
	repo := schema.NewRepository()
	repo.MustAdd(schema.MustParseSpec("lib(address,book(authorName,data(title),shelf))"))
	s := NewFromRepository(repo, Config{Workers: 2})
	defer s.Close()

	opts := pipeline.DefaultOptions()
	opts.Threshold = 0.5
	rep, err := s.Match(context.Background(), schema.MustParseSpec("book(title,author)"), opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("found mappings:", len(rep.Mappings) > 0)
	// Output: found mappings: true
}
