package serve

import (
	"container/list"
	"sync"

	"bellflower/internal/pipeline"
)

// reportCache is a mutex-guarded LRU of completed reports keyed by request
// signature. Cached *pipeline.Report values are shared between callers and
// must be treated as immutable.
type reportCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	rep *pipeline.Report
}

// newReportCache returns an LRU holding up to capacity reports; a
// non-positive capacity disables caching (every Get misses).
func newReportCache(capacity int) *reportCache {
	return &reportCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element),
	}
}

func (c *reportCache) Get(key string) (*pipeline.Report, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

func (c *reportCache) Put(key string, rep *pipeline.Report) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).rep = rep
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, rep: rep})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *reportCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *reportCache) Cap() int { return c.cap }
