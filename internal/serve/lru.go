package serve

import (
	"bellflower/internal/pipeline"
)

// reportCache is one service's completed-report cache, keyed by request
// signature: a member space of the unified memory governor, so its entries
// compete for the shared byte budget (and age under the shared TTL)
// alongside every other shard's reports and the router's pre-pass results.
// Cached *pipeline.Report values are shared between callers and must be
// treated as immutable.
type reportCache struct {
	space *cacheSpace
}

// newReportCache registers a report space holding up to capacity entries
// with the governor; a non-positive capacity disables caching (every Get
// misses).
func newReportCache(gov *memGovernor, capacity int) *reportCache {
	return &reportCache{space: gov.space(capacity)}
}

func (c *reportCache) Get(key string) (*pipeline.Report, bool) {
	v, ok := c.space.get(key)
	if !ok {
		return nil, false
	}
	return v.(*pipeline.Report), true
}

func (c *reportCache) Put(key string, rep *pipeline.Report) {
	c.space.put(key, rep, reportBytes(rep))
}

func (c *reportCache) Len() int { return c.space.len() }

func (c *reportCache) Cap() int { return c.space.cap }

// Bytes returns the cache's resident accounted bytes.
func (c *reportCache) Bytes() int64 { return c.space.residentBytes() }
