package serve

import (
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the histogram upper bounds in milliseconds; an extra
// implicit +Inf bucket catches everything slower.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// numLatencyBuckets is len(latencyBucketsMS) plus the +Inf overflow bucket.
const numLatencyBuckets = 13

func init() {
	if numLatencyBuckets != len(latencyBucketsMS)+1 {
		panic("serve: numLatencyBuckets out of sync with latencyBucketsMS")
	}
}

// counters is the service's hot-path instrumentation; every field is
// updated atomically.
type counters struct {
	requests    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	deduped     atomic.Int64
	runs        atomic.Int64
	errors      atomic.Int64
	rejected    atomic.Int64

	latCount atomic.Int64
	latSumUS atomic.Int64 // microseconds, to keep atomics integral
	latBkt   [numLatencyBuckets]atomic.Int64
}

// observe records one served request's end-to-end latency.
func (c *counters) observe(d time.Duration) {
	c.latCount.Add(1)
	c.latSumUS.Add(d.Microseconds())
	ms := float64(d) / float64(time.Millisecond)
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			c.latBkt[i].Add(1)
			return
		}
	}
	c.latBkt[len(latencyBucketsMS)].Add(1)
}

// Stats is a point-in-time snapshot of the service's instrumentation.
type Stats struct {
	// Requests counts Match calls (batch entries count individually).
	Requests int64 `json:"requests"`

	// CacheHits counts requests served straight from the report cache.
	CacheHits int64 `json:"cache_hits"`

	// CacheMisses counts requests that had to consult the flight group.
	CacheMisses int64 `json:"cache_misses"`

	// DedupedInFlight counts requests that joined an already-running
	// identical request instead of starting their own pipeline run.
	DedupedInFlight int64 `json:"deduped_in_flight"`

	// PipelineRuns counts underlying pipeline executions completed.
	PipelineRuns int64 `json:"pipeline_runs"`

	// CandidatePrePass counts full-repository element-matching executions
	// performed by a sharded router's candidate pre-pass. The pre-pass runs
	// above the shards — without this counter a sharded snapshot
	// under-reports cold-path work, because the per-shard pipeline runs no
	// longer include the quadratic matching stage. Always 0 for a plain
	// Service and in per-shard snapshots; present only in router rollups.
	CandidatePrePass int64 `json:"candidate_pre_pass"`

	// Errors counts requests that finished with an error (including
	// cancellations and deadline expiries).
	Errors int64 `json:"errors"`

	// Rejected counts requests refused before running (service closed,
	// oversized schema, nil schema).
	Rejected int64 `json:"rejected"`

	// QueueDepth is the number of runs waiting for a worker right now.
	QueueDepth int `json:"queue_depth"`

	// QueueCapacity is the bounded queue's size.
	QueueCapacity int `json:"queue_capacity"`

	// InFlight is the number of distinct runs currently executing or
	// queued (after dedupe).
	InFlight int `json:"in_flight"`

	// Workers is the worker-pool size.
	Workers int `json:"workers"`

	// CacheLen and CacheCap describe the report cache.
	CacheLen int `json:"cache_len"`
	CacheCap int `json:"cache_cap"`

	// CacheBytes is the resident size-estimated bytes of this backend's
	// cached entries. For a Service it covers its report cache; a Router's
	// rollup covers every shard's reports plus the pre-pass cache —
	// everything the unified memory governor accounts.
	CacheBytes int64 `json:"cache_bytes"`

	// CacheByteBudget is the governor's byte budget (Config.CacheBytes);
	// 0 means unbounded. Shards of one router share a single governor, so
	// the rollup reports the shared budget once (max, not sum).
	CacheByteBudget int64 `json:"cache_byte_budget"`

	// CacheEvictions counts entries evicted for space — byte budget or
	// entry-count cap — and CacheExpired counts entries dropped by the
	// TTL. Governor-level: shards sharing a governor report the same
	// figures, and the rollup carries them once (max, not sum).
	CacheEvictions int64 `json:"cache_evictions"`
	CacheExpired   int64 `json:"cache_expired"`

	// IndexBytes is the resident labelling-index memory serving this
	// backend. View-backed shards share one full-repository index, so a
	// sharded rollup equals the unsharded figure — the gauge that proves
	// the per-shard index duplication is gone. Backends compute it
	// deduplicating by index identity (see Router.Snapshot).
	IndexBytes int64 `json:"index_bytes"`

	// PartialResults counts fanned-out requests served as Incomplete
	// merges under the partial-results option (router-level; always 0
	// for a plain Service and in per-shard snapshots).
	PartialResults int64 `json:"partial_results"`

	// PrePassFallbacks counts requests whose shared pre-pass FAILED and
	// that were degraded — under the partial-results option — to full
	// per-shard pipelines instead of failing (router-level; always 0 for
	// a plain Service and in per-shard snapshots).
	PrePassFallbacks int64 `json:"prepass_fallbacks"`

	// Latency is the end-to-end request latency histogram.
	Latency LatencyStats `json:"latency"`
}

// LatencyStats is a fixed-bucket latency histogram.
type LatencyStats struct {
	// Count, SumMS and MeanMS summarize all observations.
	Count  int64   `json:"count"`
	SumMS  float64 `json:"sum_ms"`
	MeanMS float64 `json:"mean_ms"`

	// BucketsMS holds the bucket upper bounds in milliseconds; Counts has
	// one extra final entry for observations above the last bound.
	BucketsMS []float64 `json:"buckets_ms"`
	Counts    []int64   `json:"counts"`
}

func (c *counters) snapshotLatency() LatencyStats {
	ls := LatencyStats{
		Count:     c.latCount.Load(),
		SumMS:     float64(c.latSumUS.Load()) / 1000,
		BucketsMS: append([]float64(nil), latencyBucketsMS...),
		Counts:    make([]int64, len(latencyBucketsMS)+1),
	}
	if ls.Count > 0 {
		ls.MeanMS = ls.SumMS / float64(ls.Count)
	}
	for i := range ls.Counts {
		ls.Counts[i] = c.latBkt[i].Load()
	}
	return ls
}

// MergeStats rolls several snapshots (typically one per shard) into one:
// counters, capacities and histogram buckets are summed and the latency
// mean recomputed from the summed totals. Because a Router fans each
// request out to every shard, a rolled-up snapshot counts one fanned-out
// request once per shard; shard-relative ratios (hit rates, dedupe rates)
// remain meaningful.
//
// Gauges of possibly-shared resources — IndexBytes, CacheByteBudget,
// CacheEvictions, CacheExpired — merge as the maximum, not the sum:
// view-backed shards of one router share a single index and a single
// memory governor, and summing would multiply one resident structure by
// the shard count. The max is only a fallback for bare snapshot merging
// (it under-reports shards that own independent governors/indexes);
// Router.Snapshot overrides all of these by deduplicating the actual
// indexes and governors by identity, which is exact for every topology —
// prefer Snapshot figures when a backend is at hand. CacheBytes sums:
// per-shard report spaces are disjoint.
func MergeStats(ss ...Stats) Stats {
	var out Stats
	for i, st := range ss {
		out.CacheBytes += st.CacheBytes
		if st.CacheByteBudget > out.CacheByteBudget {
			out.CacheByteBudget = st.CacheByteBudget
		}
		if st.CacheEvictions > out.CacheEvictions {
			out.CacheEvictions = st.CacheEvictions
		}
		if st.CacheExpired > out.CacheExpired {
			out.CacheExpired = st.CacheExpired
		}
		if st.IndexBytes > out.IndexBytes {
			out.IndexBytes = st.IndexBytes
		}
		out.PartialResults += st.PartialResults
		out.PrePassFallbacks += st.PrePassFallbacks
		out.Requests += st.Requests
		out.CacheHits += st.CacheHits
		out.CacheMisses += st.CacheMisses
		out.DedupedInFlight += st.DedupedInFlight
		out.PipelineRuns += st.PipelineRuns
		out.CandidatePrePass += st.CandidatePrePass
		out.Errors += st.Errors
		out.Rejected += st.Rejected
		out.QueueDepth += st.QueueDepth
		out.QueueCapacity += st.QueueCapacity
		out.InFlight += st.InFlight
		out.Workers += st.Workers
		out.CacheLen += st.CacheLen
		out.CacheCap += st.CacheCap
		out.Latency.Count += st.Latency.Count
		out.Latency.SumMS += st.Latency.SumMS
		if i == 0 {
			out.Latency.BucketsMS = append([]float64(nil), st.Latency.BucketsMS...)
			out.Latency.Counts = append([]int64(nil), st.Latency.Counts...)
		} else {
			for j := range st.Latency.Counts {
				if j < len(out.Latency.Counts) {
					out.Latency.Counts[j] += st.Latency.Counts[j]
				}
			}
		}
	}
	if out.Latency.Count > 0 {
		out.Latency.MeanMS = out.Latency.SumMS / float64(out.Latency.Count)
	}
	return out
}
