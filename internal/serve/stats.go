package serve

import (
	"math"
	"sync/atomic"
	"time"
)

// latencyBucketsMS are the histogram upper bounds in milliseconds; an extra
// implicit +Inf bucket catches everything slower.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// numLatencyBuckets is len(latencyBucketsMS) plus the +Inf overflow bucket.
const numLatencyBuckets = 13

func init() {
	if numLatencyBuckets != len(latencyBucketsMS)+1 {
		panic("serve: numLatencyBuckets out of sync with latencyBucketsMS")
	}
}

// histogram is a fixed-bucket duration histogram; every field is updated
// atomically, so it is safe on the hottest paths. The end-to-end request
// latency and every per-stage timer share this one shape (and therefore
// one bucket layout, which keeps the Prometheus exposition uniform).
type histogram struct {
	count atomic.Int64
	sumUS atomic.Int64 // microseconds, to keep atomics integral
	bkt   [numLatencyBuckets]atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	h.count.Add(1)
	h.sumUS.Add(d.Microseconds())
	ms := float64(d) / float64(time.Millisecond)
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			h.bkt[i].Add(1)
			return
		}
	}
	h.bkt[len(latencyBucketsMS)].Add(1)
}

func (h *histogram) snapshot() LatencyStats {
	ls := LatencyStats{
		Count:     h.count.Load(),
		SumMS:     float64(h.sumUS.Load()) / 1000,
		BucketsMS: append([]float64(nil), latencyBucketsMS...),
		Counts:    make([]int64, len(latencyBucketsMS)+1),
	}
	if ls.Count > 0 {
		ls.MeanMS = ls.SumMS / float64(ls.Count)
	}
	for i := range ls.Counts {
		ls.Counts[i] = h.bkt[i].Load()
	}
	ls.fillQuantiles()
	return ls
}

// StageTimer records one named pipeline stage's durations into a
// fixed-bucket histogram. Components outside this package (the shard RPC
// client, for one) keep StageTimers for their own stages and fold the
// snapshots into Stats.Stages.
type StageTimer struct{ h histogram }

// Observe records one stage execution.
func (t *StageTimer) Observe(d time.Duration) { t.h.observe(d) }

// Snapshot returns the timer's histogram snapshot.
func (t *StageTimer) Snapshot() LatencyStats { return t.h.snapshot() }

// counters is the service's hot-path instrumentation; every field is
// updated atomically.
type counters struct {
	requests    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	deduped     atomic.Int64
	runs        atomic.Int64
	errors      atomic.Int64
	rejected    atomic.Int64

	lat histogram

	// Per-stage histograms for the pipeline stages this service executes.
	// A staged run (candidates or clusters precomputed by a router
	// pre-pass) records only the stages it actually ran.
	stMatch    histogram
	stCluster  histogram
	stGenerate histogram
}

// observe records one served request's end-to-end latency.
func (c *counters) observe(d time.Duration) { c.lat.observe(d) }

// observeStages records the per-stage durations of one completed run.
// Zero durations mean the stage was skipped (precomputed upstream) and
// are not recorded.
func (c *counters) observeStages(match, clusterT, gen time.Duration) {
	if match > 0 {
		c.stMatch.observe(match)
	}
	if clusterT > 0 {
		c.stCluster.observe(clusterT)
	}
	if gen > 0 {
		c.stGenerate.observe(gen)
	}
}

// snapshotStages builds the Stages map for Stats; stages that never ran
// are omitted so a plain snapshot stays compact.
func (c *counters) snapshotStages() map[string]LatencyStats {
	out := make(map[string]LatencyStats, 3)
	addStage(out, StageMatch, &c.stMatch)
	addStage(out, StageCluster, &c.stCluster)
	addStage(out, StageGenerate, &c.stGenerate)
	return out
}

func addStage(m map[string]LatencyStats, name string, h *histogram) {
	if h.count.Load() > 0 {
		m[name] = h.snapshot()
	}
}

// Stage names used as Stats.Stages keys and as the Prometheus stage
// label. The pipeline stages come from the paper's three-step dataflow;
// the rest instrument the serving layers around it.
const (
	StageMatch     = "match"     // element matching (pipeline stage 1)
	StageCluster   = "cluster"   // clustering (pipeline stage 2)
	StageGenerate  = "generate"  // mapping generation (pipeline stage 3)
	StagePrePass   = "prepass"   // router's shared match+cluster pre-pass
	StageFanout    = "fanout"    // router's per-shard fan-out (incl. merge)
	StageMerge     = "merge"     // router's k-way report merge
	StageEncode    = "encode"    // shard RPC request encoding (client side)
	StageRoundtrip = "roundtrip" // shard RPC HTTP round trip
	StageDecode    = "decode"    // shard RPC response decoding (client side)
)

// Stats is a point-in-time snapshot of the service's instrumentation.
type Stats struct {
	// Requests counts Match calls (batch entries count individually).
	Requests int64 `json:"requests"`

	// CacheHits counts requests served straight from the report cache.
	CacheHits int64 `json:"cache_hits"`

	// CacheMisses counts requests that had to consult the flight group.
	CacheMisses int64 `json:"cache_misses"`

	// DedupedInFlight counts requests that joined an already-running
	// identical request instead of starting their own pipeline run.
	DedupedInFlight int64 `json:"deduped_in_flight"`

	// PipelineRuns counts underlying pipeline executions completed.
	PipelineRuns int64 `json:"pipeline_runs"`

	// CandidatePrePass counts full-repository element-matching executions
	// performed by a sharded router's candidate pre-pass. The pre-pass runs
	// above the shards — without this counter a sharded snapshot
	// under-reports cold-path work, because the per-shard pipeline runs no
	// longer include the quadratic matching stage. Always 0 for a plain
	// Service and in per-shard snapshots; present only in router rollups.
	CandidatePrePass int64 `json:"candidate_pre_pass"`

	// Errors counts requests that finished with an error (including
	// cancellations and deadline expiries).
	Errors int64 `json:"errors"`

	// Rejected counts requests refused before running (service closed,
	// oversized schema, nil schema).
	Rejected int64 `json:"rejected"`

	// QueueDepth is the number of runs waiting for a worker right now.
	QueueDepth int `json:"queue_depth"`

	// QueueCapacity is the bounded queue's size.
	QueueCapacity int `json:"queue_capacity"`

	// InFlight is the number of distinct runs currently executing or
	// queued (after dedupe).
	InFlight int `json:"in_flight"`

	// Workers is the worker-pool size.
	Workers int `json:"workers"`

	// CacheLen and CacheCap describe the report cache.
	CacheLen int `json:"cache_len"`
	CacheCap int `json:"cache_cap"`

	// CacheBytes is the resident size-estimated bytes of this backend's
	// cached entries. For a Service it covers its report cache; a Router's
	// rollup covers every shard's reports plus the pre-pass cache —
	// everything the unified memory governor accounts.
	CacheBytes int64 `json:"cache_bytes"`

	// CacheByteBudget is the governor's byte budget (Config.CacheBytes);
	// 0 means unbounded. Shards of one router share a single governor, so
	// the rollup reports the shared budget once (max, not sum).
	CacheByteBudget int64 `json:"cache_byte_budget"`

	// CacheEvictions counts entries evicted for space — byte budget or
	// entry-count cap — and CacheExpired counts entries dropped by the
	// TTL. Governor-level: shards sharing a governor report the same
	// figures, and the rollup carries them once (max, not sum).
	CacheEvictions int64 `json:"cache_evictions"`
	CacheExpired   int64 `json:"cache_expired"`

	// IndexBytes is the resident labelling-index memory serving this
	// backend. View-backed shards share one full-repository index, so a
	// sharded rollup equals the unsharded figure — the gauge that proves
	// the per-shard index duplication is gone. Backends compute it
	// deduplicating by index identity (see Router.Snapshot).
	IndexBytes int64 `json:"index_bytes"`

	// NameIndexBytes is the resident memory of the matching kernel's
	// name-similarity index (the interned (name, datatype) vocabulary with
	// precomputed scoring inputs). Like IndexBytes it is shared by every
	// view-backed shard of one router, so the sharded rollup equals the
	// unsharded figure; backends dedup by index identity (Router.Snapshot).
	NameIndexBytes int64 `json:"name_index_bytes"`

	// DistinctVocabRatio is distinct (name, datatype) keys divided by
	// repository nodes — the fraction of the matching universe that is
	// distinct vocabulary. Its inverse is the keyed kernel's dedup factor:
	// a ratio of 0.1 means ten nodes share each scored key on average.
	DistinctVocabRatio float64 `json:"distinct_vocab_ratio"`

	// SimCallsSaved counts similarity evaluations the keyed kernel's
	// vocabulary dedup avoided relative to the naive per-node loop, and
	// MatchPrunes counts edit-distance passes skipped by the
	// length-difference bound. Both live on the shared name index, so
	// shards of one router report the same totals and the rollup carries
	// them once (identity-dedup in Router.Snapshot, max in MergeStats).
	SimCallsSaved int64 `json:"sim_calls_saved"`
	MatchPrunes   int64 `json:"match_prunes"`

	// Generation-engine counters, accumulated on one EngineStats shared by
	// every runner of a repository generation (the same sharing discipline
	// as SimCallsSaved/MatchPrunes): PartialMappings is the paper's
	// machine-independent work indicator summed across requests;
	// ClustersSkippedByBound counts useful clusters the adaptive top-N
	// engine dropped before building their restricted sets;
	// FloorTightenings counts rises of the shared adaptive Δ-floor;
	// GenPoolReuses counts warm search-state acquisitions from the pool.
	PartialMappings        int64 `json:"partial_mappings"`
	ClustersSkippedByBound int64 `json:"clusters_skipped_by_bound"`
	FloorTightenings       int64 `json:"floor_tightenings"`
	GenPoolReuses          int64 `json:"gen_pool_reuses"`

	// PartialResults counts fanned-out requests served as Incomplete
	// merges under the partial-results option (router-level; always 0
	// for a plain Service and in per-shard snapshots).
	PartialResults int64 `json:"partial_results"`

	// PrePassFallbacks counts requests whose shared pre-pass FAILED and
	// that were degraded — under the partial-results option — to full
	// per-shard pipelines instead of failing (router-level; always 0 for
	// a plain Service and in per-shard snapshots).
	PrePassFallbacks int64 `json:"prepass_fallbacks"`

	// Failovers counts match attempts retried on a DIFFERENT replica after
	// a transport error (replica-group shards only; always 0 for a plain
	// Service). Present in per-shard snapshots and summed into rollups.
	Failovers int64 `json:"failovers,omitempty"`

	// HealthSkips counts shards skipped by the partial-results fan-out
	// because their control plane reported them unhealthy — no request was
	// sent, so no per-request timeout was paid (router-level; always 0 for
	// a plain Service and in per-shard snapshots).
	HealthSkips int64 `json:"health_skips,omitempty"`

	// Replicas holds the control-plane health snapshot of each replica
	// behind this shard (replica-group shards only; absent elsewhere and
	// in rollups, where per-shard identity would be lost).
	Replicas []ReplicaHealth `json:"replicas,omitempty"`

	// ProjectionCacheHits / ProjectionCacheMisses count shard-server
	// lookups of content-addressed projection references: a hit served the
	// request without the projection ever crossing the wire; a miss made
	// the shard answer 428 (projection-needed) and cost the client one
	// full-payload retry. Always 0 off the shard-hosting path.
	ProjectionCacheHits   int64 `json:"projection_cache_hits,omitempty"`
	ProjectionCacheMisses int64 `json:"projection_cache_misses,omitempty"`

	// WireBytes breaks the shard wire traffic down by direction and codec,
	// counted where the bytes enter/leave the shard server (request bodies
	// in, response bodies out). The split is what proves the binary codec's
	// win in production, not just in benchmarks.
	WireBytes WireByteStats `json:"wire_bytes"`

	// Latency is the end-to-end request latency histogram.
	Latency LatencyStats `json:"latency"`

	// Stages holds per-stage latency histograms keyed by stage name (see
	// the Stage* constants): the pipeline stages a Service ran, plus —
	// in router rollups — pre-pass/fan-out/merge, and — for remote
	// shards — the RPC encode/roundtrip/decode stages. Stages that never
	// ran are absent.
	Stages map[string]LatencyStats `json:"stages,omitempty"`
}

// WireByteStats counts shard-RPC body bytes by direction and codec, from
// the shard server's perspective: In is request bodies received, Out is
// response bodies sent. Exported to Prometheus as
// bellflower_wire_bytes_total{dir,codec}.
type WireByteStats struct {
	InJSON    int64 `json:"in_json"`
	InBinary  int64 `json:"in_binary"`
	OutJSON   int64 `json:"out_json"`
	OutBinary int64 `json:"out_binary"`
}

func (w *WireByteStats) add(o WireByteStats) {
	w.InJSON += o.InJSON
	w.InBinary += o.InBinary
	w.OutJSON += o.OutJSON
	w.OutBinary += o.OutBinary
}

// LatencyStats is a fixed-bucket latency histogram.
type LatencyStats struct {
	// Count, SumMS and MeanMS summarize all observations.
	Count  int64   `json:"count"`
	SumMS  float64 `json:"sum_ms"`
	MeanMS float64 `json:"mean_ms"`

	// P50MS, P95MS and P99MS are approximate quantiles interpolated from
	// the histogram buckets (exact only up to bucket resolution;
	// observations beyond the last finite bound clamp to it).
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`

	// BucketsMS holds the bucket upper bounds in milliseconds; Counts has
	// one extra final entry for observations above the last bound.
	BucketsMS []float64 `json:"buckets_ms"`
	Counts    []int64   `json:"counts"`
}

// Quantile estimates the q-quantile (0 < q <= 1) in milliseconds by
// linear interpolation within the histogram bucket that crosses the
// target rank — the same estimate Prometheus's histogram_quantile
// computes server-side. Observations in the +Inf overflow bucket clamp
// to the last finite bound.
func (ls LatencyStats) Quantile(q float64) float64 {
	if ls.Count <= 0 || len(ls.Counts) == 0 {
		return 0
	}
	target := q * float64(ls.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	lower := 0.0
	for i, cnt := range ls.Counts {
		if i >= len(ls.BucketsMS) {
			break // +Inf bucket: clamp below
		}
		upper := ls.BucketsMS[i]
		if cum+float64(cnt) >= target {
			if cnt == 0 {
				return upper
			}
			return lower + (upper-lower)*(target-cum)/float64(cnt)
		}
		cum += float64(cnt)
		lower = upper
	}
	if len(ls.BucketsMS) == 0 {
		return 0
	}
	return ls.BucketsMS[len(ls.BucketsMS)-1]
}

func (ls *LatencyStats) fillQuantiles() {
	ls.P50MS = ls.Quantile(0.50)
	ls.P95MS = ls.Quantile(0.95)
	ls.P99MS = ls.Quantile(0.99)
}

// mergeLatency folds b into a (summing counts, sums and buckets) and
// recomputes the derived mean and quantiles.
func mergeLatency(a *LatencyStats, b LatencyStats) {
	a.Count += b.Count
	a.SumMS += b.SumMS
	if a.BucketsMS == nil {
		a.BucketsMS = append([]float64(nil), b.BucketsMS...)
		a.Counts = append([]int64(nil), b.Counts...)
	} else {
		for j := range b.Counts {
			if j < len(a.Counts) {
				a.Counts[j] += b.Counts[j]
			}
		}
	}
	if a.Count > 0 {
		a.MeanMS = a.SumMS / float64(a.Count)
	}
	a.fillQuantiles()
	// Guard against NaN leaking into JSON from adversarial snapshots.
	if math.IsNaN(a.MeanMS) {
		a.MeanMS = 0
	}
}

// mergeStages folds src's per-stage histograms into dst, allocating dst
// on first use.
func mergeStages(dst map[string]LatencyStats, src map[string]LatencyStats) map[string]LatencyStats {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]LatencyStats, len(src))
	}
	for name, ls := range src {
		cur := dst[name]
		mergeLatency(&cur, ls)
		dst[name] = cur
	}
	return dst
}

// MergeStats rolls several snapshots (typically one per shard) into one:
// counters, capacities and histogram buckets are summed and the latency
// mean recomputed from the summed totals. Because a Router fans each
// request out to every shard, a rolled-up snapshot counts one fanned-out
// request once per shard; shard-relative ratios (hit rates, dedupe rates)
// remain meaningful.
//
// Gauges and counters of possibly-shared resources — IndexBytes,
// NameIndexBytes, DistinctVocabRatio, SimCallsSaved, MatchPrunes,
// PartialMappings, ClustersSkippedByBound, FloorTightenings,
// GenPoolReuses, CacheByteBudget, CacheEvictions, CacheExpired — merge as
// the maximum, not the sum:
// view-backed shards of one router share a single index and a single
// memory governor, and summing would multiply one resident structure by
// the shard count. The max is only a fallback for bare snapshot merging
// (it under-reports shards that own independent governors/indexes);
// Router.Snapshot overrides all of these by deduplicating the actual
// indexes and governors by identity, which is exact for every topology —
// prefer Snapshot figures when a backend is at hand. CacheBytes sums:
// per-shard report spaces are disjoint.
func MergeStats(ss ...Stats) Stats {
	var out Stats
	for _, st := range ss {
		out.CacheBytes += st.CacheBytes
		if st.CacheByteBudget > out.CacheByteBudget {
			out.CacheByteBudget = st.CacheByteBudget
		}
		if st.CacheEvictions > out.CacheEvictions {
			out.CacheEvictions = st.CacheEvictions
		}
		if st.CacheExpired > out.CacheExpired {
			out.CacheExpired = st.CacheExpired
		}
		if st.IndexBytes > out.IndexBytes {
			out.IndexBytes = st.IndexBytes
		}
		if st.NameIndexBytes > out.NameIndexBytes {
			out.NameIndexBytes = st.NameIndexBytes
		}
		if st.DistinctVocabRatio > out.DistinctVocabRatio {
			out.DistinctVocabRatio = st.DistinctVocabRatio
		}
		if st.SimCallsSaved > out.SimCallsSaved {
			out.SimCallsSaved = st.SimCallsSaved
		}
		if st.MatchPrunes > out.MatchPrunes {
			out.MatchPrunes = st.MatchPrunes
		}
		if st.PartialMappings > out.PartialMappings {
			out.PartialMappings = st.PartialMappings
		}
		if st.ClustersSkippedByBound > out.ClustersSkippedByBound {
			out.ClustersSkippedByBound = st.ClustersSkippedByBound
		}
		if st.FloorTightenings > out.FloorTightenings {
			out.FloorTightenings = st.FloorTightenings
		}
		if st.GenPoolReuses > out.GenPoolReuses {
			out.GenPoolReuses = st.GenPoolReuses
		}
		out.PartialResults += st.PartialResults
		out.PrePassFallbacks += st.PrePassFallbacks
		out.Failovers += st.Failovers
		out.HealthSkips += st.HealthSkips
		out.ProjectionCacheHits += st.ProjectionCacheHits
		out.ProjectionCacheMisses += st.ProjectionCacheMisses
		out.WireBytes.add(st.WireBytes)
		out.Requests += st.Requests
		out.CacheHits += st.CacheHits
		out.CacheMisses += st.CacheMisses
		out.DedupedInFlight += st.DedupedInFlight
		out.PipelineRuns += st.PipelineRuns
		out.CandidatePrePass += st.CandidatePrePass
		out.Errors += st.Errors
		out.Rejected += st.Rejected
		out.QueueDepth += st.QueueDepth
		out.QueueCapacity += st.QueueCapacity
		out.InFlight += st.InFlight
		out.Workers += st.Workers
		out.CacheLen += st.CacheLen
		out.CacheCap += st.CacheCap
		mergeLatency(&out.Latency, st.Latency)
		out.Stages = mergeStages(out.Stages, st.Stages)
	}
	return out
}
