package serve

import (
	"fmt"
	"strings"

	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
)

// Signature returns a canonical string identifying a (personal schema,
// Options) pair. Two requests with equal signatures are guaranteed to
// produce the same Report against a fixed repository, so the signature is
// the key for both the completed-report cache and in-flight deduplication.
//
// The schema part serializes the tree in spec syntax including datatypes
// and attribute markers (Tree.String omits datatypes, which the optional
// TypeMatcher depends on). The options part spells out every Options field;
// matchers render through matcher.Describe, whose canonical (address-free)
// output makes structurally identical matchers share cache entries.
func Signature(personal *schema.Tree, opts pipeline.Options) string {
	var b strings.Builder
	writeNodeSig(&b, personal.Root())
	b.WriteByte('|')
	writeOptionsSig(&b, opts)
	return b.String()
}

// CandidateSignature identifies the inputs of the element-matching stage
// alone: the personal schema, the element matcher and the MinSim threshold.
// Two requests with equal candidate signatures produce the same
// matcher.FindCandidates result against a fixed repository even when the
// rest of their options (TopN, variant, δ ...) differ — deliberately
// coarser than Signature.
func CandidateSignature(personal *schema.Tree, opts pipeline.Options) string {
	var b strings.Builder
	writeNodeSig(&b, personal.Root())
	fmt.Fprintf(&b, "|ms=%g", opts.MinSim)
	if opts.Matcher != nil {
		b.WriteString(";m=")
		b.WriteString(matcher.Describe(opts.Matcher))
	}
	return b.String()
}

// prepassSignature keys the router's shared pre-pass, which hoists both
// element matching and clustering: the candidate signature extended with
// every option the clustering stage consumes. Still coarser than Signature
// — requests differing only in report-shaping options (TopN, δ, ordering,
// partials, parallelism ...) share one pre-pass.
func prepassSignature(personal *schema.Tree, opts pipeline.Options) string {
	var b strings.Builder
	b.WriteString(CandidateSignature(personal, opts))
	fmt.Fprintf(&b, "|v=%d;agg=%t", int(opts.Variant), opts.Agglomerative)
	if opts.ClusterConfig != nil {
		fmt.Fprintf(&b, ";cc=%+v", *opts.ClusterConfig)
	}
	return b.String()
}

func writeNodeSig(b *strings.Builder, n *schema.Node) {
	if n == nil {
		b.WriteString("()")
		return
	}
	b.WriteString(n.Name)
	if n.Kind == schema.KindAttribute {
		b.WriteByte('@')
	}
	if n.Type != "" {
		b.WriteByte(':')
		b.WriteString(n.Type)
	}
	children := n.Children()
	if len(children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range children {
		if i > 0 {
			b.WriteByte(',')
		}
		writeNodeSig(b, c)
	}
	b.WriteByte(')')
}

func writeOptionsSig(b *strings.Builder, o pipeline.Options) {
	fmt.Fprintf(b, "a=%g;k=%g;d=%g;ms=%g;tn=%d;v=%d;alg=%d;ip=%t;oc=%t;sw=%g;p=%d;agg=%t;atn=%t",
		o.Objective.Alpha, o.Objective.K, o.Threshold, o.MinSim, o.TopN,
		int(o.Variant), int(o.Algorithm), o.IncludePartials, o.OrderClusters,
		o.StructureWeight, o.Parallelism, o.Agglomerative, o.AdaptiveTopN)
	if o.ClusterConfig != nil {
		fmt.Fprintf(b, ";cc=%+v", *o.ClusterConfig)
	}
	if o.Matcher != nil {
		b.WriteString(";m=")
		b.WriteString(matcher.Describe(o.Matcher))
	}
	if o.StructureMatcher != nil {
		b.WriteString(";sm=")
		b.WriteString(matcher.Describe(o.StructureMatcher))
	}
}
