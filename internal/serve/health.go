package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrShardUnhealthy marks a shard that was SKIPPED by the fan-out because
// its control plane reports no healthy replica — no request was sent, so
// the skip costs nothing (in particular, not the per-shard timeout a dead
// endpoint would eat). Only the partial-results fan-out skips: under
// strict routing the request must fail anyway if the shard is truly down,
// and attempting it gives a just-recovered shard a chance the (possibly
// stale) health state would deny. Match with errors.Is.
var ErrShardUnhealthy = errors.New("serve: shard unhealthy")

// HealthReporter is implemented by shard backends with a liveness opinion
// of their own (shardrpc.ReplicaSet, whose background monitors probe every
// replica). The router consults it before fanning out: under partial
// results an unhealthy shard is skipped instantly instead of paying a
// doomed network attempt. Healthy must be safe for concurrent use and
// cheap — it sits on the per-request fan-out path.
type HealthReporter interface {
	// Healthy reports whether the backend believes it can serve a match
	// request right now (for a replica group: at least one healthy
	// replica).
	Healthy() bool
}

// HealthConfig tunes one HealthMonitor. The zero value picks the
// defaults given on each field.
type HealthConfig struct {
	// Interval is the base probe period. Every wait is jittered ±20% so a
	// fleet of monitors started together does not thunder against the
	// same shard forever. Default 5s.
	Interval time.Duration

	// Timeout bounds each probe. Default: Interval capped at 2s.
	Timeout time.Duration

	// FailureThreshold is the number of CONSECUTIVE failures — background
	// probes and live-traffic transport errors count alike — after which
	// the target is marked unhealthy. Default 3.
	FailureThreshold int

	// SuccessThreshold is the number of consecutive successful probes an
	// unhealthy target needs before it is re-admitted. Only probes count:
	// a probe is a full Check (for a remote shard that verifies the
	// descriptor handshake), so recovery is always gated on topology
	// re-verification, never on a lucky request. Default 1.
	SuccessThreshold int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
		if c.Timeout > 2*time.Second {
			c.Timeout = 2 * time.Second
		}
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 1
	}
	return c
}

// ReplicaHealth is one monitored target's control-plane snapshot, surfaced
// per shard in Stats.Replicas (and as the bellflower_shard_healthy
// Prometheus gauge).
type ReplicaHealth struct {
	// Addr identifies the replica (its base URL for a remote shard).
	Addr string `json:"addr"`

	// Healthy is the monitor's current verdict.
	Healthy bool `json:"healthy"`

	// ConsecutiveFailures is the current failure streak (probes plus
	// live-traffic transport errors); FailureThreshold of these in a row
	// flip Healthy to false.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`

	// Probes counts background health probes run so far.
	Probes int64 `json:"probes"`

	// Transitions counts healthy<->unhealthy state changes.
	Transitions int64 `json:"transitions"`

	// LastError is the most recent probe or traffic failure, empty after
	// a clean probe.
	LastError string `json:"last_error,omitempty"`
}

// HealthMonitor tracks one target's liveness: a consecutive-failure
// state machine fed by background probes (Start) and by live traffic
// (ReportFailure/ReportSuccess). It is the control-plane primitive behind
// shardrpc.ReplicaSet — one monitor per replica — but is
// transport-agnostic: the probe is just a func, typically a remote
// shard's Check, which re-verifies the descriptor handshake, so
// re-admission of a recovered target never trusts a stale topology.
//
// All methods are safe for concurrent use.
type HealthMonitor struct {
	cfg   HealthConfig
	name  string
	check func(ctx context.Context) error

	mu          sync.Mutex
	healthy     bool
	failures    int // consecutive failures (probe or traffic)
	successes   int // consecutive probe successes while unhealthy
	probes      int64
	transitions int64
	lastErr     string

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewHealthMonitor builds a monitor for one target, initially healthy.
// name labels snapshots (a replica address); check runs one probe and
// must honour its context. The monitor is passive until Start.
func NewHealthMonitor(name string, check func(ctx context.Context) error, cfg HealthConfig) *HealthMonitor {
	return &HealthMonitor{
		cfg:     cfg.withDefaults(),
		name:    name,
		check:   check,
		healthy: true,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the background probe loop: every Interval (jittered
// ±20%) the check runs under Timeout and feeds the state machine. Idempotent;
// stop it with Stop.
func (m *HealthMonitor) Start() {
	m.startOnce.Do(func() { go m.loop() })
}

// Stop terminates the probe loop and waits for it to exit. Idempotent;
// safe to call on a monitor that was never started.
func (m *HealthMonitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.startOnce.Do(func() { close(m.done) }) // never started: unblock the wait
	<-m.done
}

func (m *HealthMonitor) loop() {
	defer close(m.done)
	// Each wait is independently jittered: 0.8–1.2 × Interval.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	timer := time.NewTimer(m.jitter(rng))
	defer timer.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-timer.C:
		}
		m.Probe()
		timer.Reset(m.jitter(rng))
	}
}

func (m *HealthMonitor) jitter(rng *rand.Rand) time.Duration {
	f := 0.8 + 0.4*rng.Float64()
	return time.Duration(float64(m.cfg.Interval) * f)
}

// Probe runs one health check immediately (the loop's body; exported so
// tests and eager callers can drive the state machine without waiting out
// an interval) and reports the resulting verdict.
func (m *HealthMonitor) Probe() bool {
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.Timeout)
	err := m.check(ctx)
	cancel()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.probes++
	if err != nil {
		m.recordFailureLocked(err)
		return m.healthy
	}
	m.lastErr = ""
	m.failures = 0
	if !m.healthy {
		m.successes++
		if m.successes >= m.cfg.SuccessThreshold {
			m.healthy = true
			m.transitions++
			m.successes = 0
		}
	}
	return m.healthy
}

// ReportFailure feeds a live-traffic failure (a transport error during a
// match attempt) into the state machine: outages surface at traffic
// speed, not probe speed.
func (m *HealthMonitor) ReportFailure(err error) {
	m.mu.Lock()
	m.recordFailureLocked(err)
	m.mu.Unlock()
}

func (m *HealthMonitor) recordFailureLocked(err error) {
	if err != nil {
		m.lastErr = err.Error()
	}
	m.successes = 0
	m.failures++
	if m.healthy && m.failures >= m.cfg.FailureThreshold {
		m.healthy = false
		m.transitions++
	}
}

// ReportSuccess feeds a live-traffic success. It clears a healthy
// target's failure streak; it deliberately does NOT re-admit an unhealthy
// one — only a probe can (the probe is the path that re-verifies the
// descriptor), so a lone lucky response cannot cancel a mark-down that
// probes keep confirming.
func (m *HealthMonitor) ReportSuccess() {
	m.mu.Lock()
	if m.healthy {
		m.failures = 0
		m.lastErr = ""
	}
	m.mu.Unlock()
}

// MarkUnhealthy forces the target unhealthy immediately, bypassing the
// failure threshold — the construction-time seed for a replica that was
// already unreachable at wiring time, so the first requests don't pay
// discovery all over again.
func (m *HealthMonitor) MarkUnhealthy(err error) {
	m.mu.Lock()
	if err != nil {
		m.lastErr = err.Error()
	}
	m.successes = 0
	if m.failures < m.cfg.FailureThreshold {
		m.failures = m.cfg.FailureThreshold
	}
	if m.healthy {
		m.healthy = false
		m.transitions++
	}
	m.mu.Unlock()
}

// Healthy reports the current verdict.
func (m *HealthMonitor) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.healthy
}

// Snapshot returns the monitor's control-plane state for Stats.Replicas.
func (m *HealthMonitor) Snapshot() ReplicaHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ReplicaHealth{
		Addr:                m.name,
		Healthy:             m.healthy,
		ConsecutiveFailures: m.failures,
		Probes:              m.probes,
		Transitions:         m.transitions,
		LastError:           m.lastErr,
	}
}

// String renders the monitor compactly for error messages.
func (m *HealthMonitor) String() string {
	s := m.Snapshot()
	state := "healthy"
	if !s.Healthy {
		state = fmt.Sprintf("unhealthy (%d consecutive failures, last: %s)", s.ConsecutiveFailures, s.LastError)
	}
	return fmt.Sprintf("%s: %s", s.Addr, state)
}
