package serve

import (
	"context"
	"testing"
	"time"

	"bellflower/internal/mapgen"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
)

// auditGovernor recomputes the governor's byte account from its resident
// entries; the invariant under test everywhere is used == Σ entry bytes,
// i.e. the accounting matches what eviction actually left resident.
func auditGovernor(t *testing.T, g *memGovernor) int64 {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	var sum int64
	var perSpace = map[*cacheSpace]int64{}
	count := 0
	for el := g.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*govEntry)
		sum += e.bytes
		perSpace[e.space] += e.bytes
		if e.space.byKey[e.key] != el {
			t.Fatalf("entry %q not reachable through its space", e.key)
		}
		count++
	}
	total := 0
	for s, b := range perSpace {
		if s.bytes != b {
			t.Fatalf("space accounts %d bytes, entries sum to %d", s.bytes, b)
		}
		total += len(s.byKey)
	}
	if total != count {
		t.Fatalf("%d entries in order list, %d in space maps", count, total)
	}
	if g.used != sum {
		t.Fatalf("governor accounts %d bytes, resident entries sum to %d", g.used, sum)
	}
	return sum
}

func TestGovernorByteBudgetEviction(t *testing.T) {
	g := newGovernor(100, 0)
	s := g.space(100)

	s.put("a", "A", 40)
	s.put("b", "B", 40)
	auditGovernor(t, g)
	if used, _, _, _ := g.snapshot(); used != 80 {
		t.Fatalf("used = %d, want 80", used)
	}

	// 30 more bytes exceed the budget: the LRU entry (a) must go, and the
	// account must reflect exactly the survivors.
	s.put("c", "C", 30)
	if _, ok := s.get("a"); ok {
		t.Error("a survived past the byte budget")
	}
	if _, ok := s.get("b"); !ok {
		t.Error("b evicted although evicting a sufficed")
	}
	if got := auditGovernor(t, g); got != 70 {
		t.Errorf("resident bytes = %d, want 70", got)
	}
	if _, _, evictions, _ := g.snapshot(); evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}

	// Touching b, then overflowing, must evict c (the new LRU), not b.
	s.get("b")
	s.put("d", "D", 50) // 70+50=120 > 100 → evict c (30) → 90
	if _, ok := s.get("c"); ok {
		t.Error("c survived although it was least recently used")
	}
	if _, ok := s.get("b"); !ok {
		t.Error("recently-touched b was evicted")
	}
	if got := auditGovernor(t, g); got != 90 {
		t.Errorf("resident bytes = %d, want 90", got)
	}

	// An entry larger than the whole budget never stays resident.
	s.put("huge", "H", 1000)
	if _, ok := s.get("huge"); ok {
		t.Error("oversized entry stayed cached")
	}
	if used, _, _, _ := g.snapshot(); used > 100 {
		t.Errorf("used = %d exceeds the budget", used)
	}
	auditGovernor(t, g)
}

func TestGovernorEvictsAcrossSpaces(t *testing.T) {
	g := newGovernor(100, 0)
	reports := g.space(100)
	prepass := g.space(100)

	reports.put("r1", "R", 60)
	prepass.put("p1", "P", 30)
	// The next put overflows; the globally oldest entry is r1 from the
	// OTHER space — unified governance means it goes first.
	prepass.put("p2", "P", 40)
	if _, ok := reports.get("r1"); ok {
		t.Error("byte pressure did not evict across spaces")
	}
	if _, ok := prepass.get("p1"); !ok {
		t.Error("younger entry in the charging space was evicted instead")
	}
	auditGovernor(t, g)
}

func TestGovernorCountCapPerSpace(t *testing.T) {
	g := newGovernor(0, 0) // no byte bound: count caps alone
	a := g.space(2)
	b := g.space(100)

	b.put("keep", "K", 1)
	a.put("x", 1, 1)
	a.put("y", 2, 1)
	a.put("z", 3, 1) // a over cap: evict a's own oldest (x), never b's
	if _, ok := a.get("x"); ok {
		t.Error("x survived past the space cap")
	}
	if _, ok := b.get("keep"); !ok {
		t.Error("count cap of one space evicted another space's entry")
	}
	if a.len() != 2 || b.len() != 1 {
		t.Errorf("lens = %d/%d, want 2/1", a.len(), b.len())
	}
	auditGovernor(t, g)
}

func TestGovernorTTL(t *testing.T) {
	g := newGovernor(0, time.Minute)
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }
	s := g.space(10)

	s.put("a", "A", 10)
	if _, ok := s.get("a"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(59 * time.Second)
	if _, ok := s.get("a"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	// get refreshes recency but not the TTL clock: expiry is from insert.
	now = now.Add(2 * time.Second)
	if _, ok := s.get("a"); ok {
		t.Fatal("entry served after its TTL")
	}
	if _, _, _, expired := g.snapshot(); expired != 1 {
		t.Errorf("expired = %d, want 1", expired)
	}
	if used, _, _, _ := g.snapshot(); used != 0 {
		t.Errorf("expired entry still accounted: used = %d", used)
	}
	auditGovernor(t, g)

	// getOrCreate treats an expired entry as absent and recreates it.
	s.put("b", "B", 5)
	now = now.Add(2 * time.Minute)
	v, created := s.getOrCreate("b", func() any { return "B2" })
	if !created || v != "B2" {
		t.Errorf("getOrCreate over an expired entry returned (%v, %v)", v, created)
	}
	auditGovernor(t, g)
}

func TestGovernorResizeAndDrop(t *testing.T) {
	g := newGovernor(100, 0)
	s := g.space(10)

	v, created := s.getOrCreate("k", func() any { return "V" })
	if !created {
		t.Fatal("first getOrCreate did not create")
	}
	if used, _, _, _ := g.snapshot(); used != 0 {
		t.Fatalf("in-flight entry charged %d bytes before settling", used)
	}
	s.resize("k", v, 42)
	if used, _, _, _ := g.snapshot(); used != 42 {
		t.Fatalf("settled entry accounts %d bytes, want 42", used)
	}
	// Resizing with a stale value is a no-op; dropping with the live value
	// returns the bytes.
	s.resize("k", "other", 9999)
	if used, _, _, _ := g.snapshot(); used != 42 {
		t.Error("resize with a foreign value re-accounted the entry")
	}
	s.drop("k", "other")
	if _, ok := s.get("k"); !ok {
		t.Error("drop with a foreign value removed the entry")
	}
	s.drop("k", v)
	if _, ok := s.get("k"); ok {
		t.Error("entry survived drop")
	}
	if used, _, _, _ := g.snapshot(); used != 0 {
		t.Errorf("dropped entry still accounted: used = %d", used)
	}
	auditGovernor(t, g)
}

func TestGovernorDisabledSpace(t *testing.T) {
	g := newGovernor(100, 0)
	s := g.space(0)
	s.put("a", "A", 10)
	if _, ok := s.get("a"); ok {
		t.Error("disabled space stored an entry")
	}
	if used, _, _, _ := g.snapshot(); used != 0 {
		t.Errorf("disabled space charged %d bytes", used)
	}
}

// TestServiceCacheByteAccounting drives the governor through the real
// Service surface: reports cached under a tiny byte budget must evict, the
// stats gauges must track the governor, and the accounting must equal the
// resident reports' estimates.
func TestServiceCacheByteAccounting(t *testing.T) {
	repo := testRepo(t)
	// Budget sized to hold roughly one report: the second distinct request
	// must push the first out.
	s := NewFromRepository(repo, Config{Workers: 2, CacheBytes: 600})
	defer s.Close()

	opts := testOpts()
	rep1, err := s.Match(context.Background(), personal(), opts)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheBytes != reportBytes(rep1) {
		t.Errorf("CacheBytes = %d, want the cached report's estimate %d", st.CacheBytes, reportBytes(rep1))
	}
	if st.CacheByteBudget != 600 {
		t.Errorf("CacheByteBudget = %d, want 600", st.CacheByteBudget)
	}
	if st.IndexBytes != s.Index().MemoryBytes() {
		t.Errorf("IndexBytes = %d, want %d", st.IndexBytes, s.Index().MemoryBytes())
	}

	// Distinct requests with distinct signatures churn the cache; the
	// resident bytes must never exceed the budget (unless a single report
	// alone does, in which case nothing is resident).
	for i := 0; i < 6; i++ {
		o := opts
		o.TopN = 50 + i
		if _, err := s.Match(context.Background(), personal(), o); err != nil {
			t.Fatal(err)
		}
	}
	st = s.Stats()
	if st.CacheBytes > 600 {
		t.Errorf("resident cache bytes %d exceed the 600-byte budget", st.CacheBytes)
	}
	if st.CacheEvictions == 0 {
		t.Error("no evictions recorded although the budget forced churn")
	}
	auditGovernor(t, s.gov)
}

// TestServiceCacheTTLExpiresReports: a cached report older than the TTL is
// recomputed, not served.
func TestServiceCacheTTLExpiresReports(t *testing.T) {
	s := NewFromRepository(testRepo(t), Config{Workers: 2, CacheTTL: time.Hour})
	defer s.Close()
	now := time.Unix(5000, 0)
	s.gov.mu.Lock()
	s.gov.now = func() time.Time { return now }
	s.gov.mu.Unlock()

	if _, err := s.Match(context.Background(), personal(), testOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Match(context.Background(), personal(), testOpts()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.PipelineRuns != 1 {
		t.Fatalf("warm path broken before expiry: hits=%d runs=%d", st.CacheHits, st.PipelineRuns)
	}

	now = now.Add(2 * time.Hour)
	if _, err := s.Match(context.Background(), personal(), testOpts()); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.PipelineRuns != 2 {
		t.Errorf("pipeline runs = %d, want 2 (expired report must be recomputed)", st.PipelineRuns)
	}
	if st.CacheExpired != 1 {
		t.Errorf("CacheExpired = %d, want 1", st.CacheExpired)
	}
}

// TestRouterUnifiedGovernor: the shards of one view-backed router and its
// pre-pass cache all charge one governor, and the rollup reports the
// governor's account (reports + pre-pass), a single shared budget, and a
// single shared index.
func TestRouterUnifiedGovernor(t *testing.T) {
	r := NewRouterFromRepository(testRepo(t), 3, Config{Workers: 1, CacheBytes: 1 << 20, CacheTTL: time.Hour})
	defer r.Close()

	for i := 0; i < 3; i++ {
		opts := testOpts()
		opts.TopN = 10 + i
		if _, err := r.Match(context.Background(), personal(), opts); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range r.locals {
		if s.gov != r.gov {
			t.Fatalf("shard %d owns a private governor", i)
		}
		if s.Index() != r.fullRunner.Index() {
			t.Fatalf("shard %d owns a private index", i)
		}
	}
	total, shards := r.Snapshot()
	var shardCache int64
	for _, st := range shards {
		shardCache += st.CacheBytes
	}
	prepassBytes := r.prepass.space.residentBytes()
	if prepassBytes <= 0 {
		t.Error("pre-pass entries not byte-accounted")
	}
	if total.CacheBytes != shardCache+prepassBytes {
		t.Errorf("rollup CacheBytes = %d, want shard reports %d + prepass %d",
			total.CacheBytes, shardCache, prepassBytes)
	}
	if total.CacheByteBudget != 1<<20 {
		t.Errorf("rollup budget = %d, want %d", total.CacheByteBudget, 1<<20)
	}
	if want := r.fullRunner.Index().MemoryBytes(); total.IndexBytes != want {
		t.Errorf("rollup IndexBytes = %d, want exactly one full index (%d)", total.IndexBytes, want)
	}
	auditGovernor(t, r.gov)
}

// TestRouterSharedIndexFootprint pins the tentpole claim with numbers: a
// view-backed router's resident index bytes equal an unsharded service's,
// for every shard count, while the clone-based NewRouter topology grows
// with its per-shard indexes (plus holds no full index at all).
func TestRouterSharedIndexFootprint(t *testing.T) {
	repo := syntheticRepo(t, 400, 5)
	unsharded := NewFromRepository(repo, Config{Workers: 1})
	defer unsharded.Close()
	want := unsharded.Stats().IndexBytes
	if want <= 0 {
		t.Fatal("unsharded index bytes not positive")
	}

	for shards := 1; shards <= 8; shards++ {
		r := NewRouterFromRepository(repo, shards, Config{Workers: 1})
		total, _ := r.Snapshot()
		if total.IndexBytes != want {
			t.Errorf("shards=%d: resident index bytes %d, want %d (one shared index regardless of shard count)",
				shards, total.IndexBytes, want)
		}
		r.Close()
	}

	// The legacy clone-based wrap keeps per-shard indexes: its footprint is
	// the sum of the partition indexes, which the dedup must count fully.
	parts := PartitionRepositoryClustered(repo, 4)
	cloneShards := make([]*Service, len(parts))
	var sum int64
	for i, p := range parts {
		cloneShards[i] = NewFromRepository(p, Config{Workers: 1})
		sum += cloneShards[i].Index().MemoryBytes()
	}
	nr := NewRouter(cloneShards)
	defer nr.Close()
	total, _ := nr.Snapshot()
	if total.IndexBytes != sum {
		t.Errorf("clone-based router IndexBytes = %d, want the per-shard sum %d", total.IndexBytes, sum)
	}
}

// TestReportBytesGrowsWithContent sanity-checks the size estimator the
// governor charges reports at.
func TestReportBytesGrowsWithContent(t *testing.T) {
	small := &pipeline.Report{}
	big := &pipeline.Report{ClusterSizes: make([]int, 100)}
	for i := 0; i < 50; i++ {
		big.Mappings = append(big.Mappings, mappingOfWidth(3))
	}
	if reportBytes(big) <= reportBytes(small) {
		t.Errorf("reportBytes(big)=%d <= reportBytes(small)=%d", reportBytes(big), reportBytes(small))
	}
	withErr := &pipeline.Report{ShardErrors: []pipeline.ShardError{{Shard: 1, Err: "boom"}}}
	if reportBytes(withErr) <= reportBytes(small) {
		t.Error("shard errors not accounted")
	}
}

func mappingOfWidth(w int) (m mapgen.Mapping) {
	m.Images = make([]*schema.Node, w)
	m.Sims = make([]float64, w)
	return m
}
