package trace

import (
	"sort"
	"time"
)

// Node is the JSON-renderable span-tree form of a trace: one node per
// finished span, children ordered by start time. Offsets are relative to
// the tree root's start so a stitched multi-process trace reads as one
// timeline even under modest cross-host clock skew.
type Node struct {
	Name       string            `json:"name"`
	SpanID     string            `json:"span_id"`
	OffsetUS   int64             `json:"offset_us"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Remote     bool              `json:"remote,omitempty"`
	Children   []*Node           `json:"children,omitempty"`
}

// Summary is the wire form of one finished trace: identity, timing and
// the span tree. It is what /v1/traces serves and what ?trace=1 inlines.
type Summary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Tree       *Node     `json:"tree,omitempty"`
}

// Tree builds the span tree from the finished spans. Spans whose parent
// never finished (or lives in a snapshot taken mid-flight) attach to the
// root; with no spans at all Tree returns nil.
func (t *Trace) Tree() *Node {
	root, _ := t.buildTree()
	return root
}

func (t *Trace) buildTree() (*Node, *Span) {
	spans := t.Spans()
	if len(spans) == 0 {
		return nil, nil
	}
	nodes := make(map[ID]*Node, len(spans))
	for _, s := range spans {
		n := &Node{
			Name:       s.Name,
			SpanID:     s.ID.String(),
			DurationMS: float64(s.Duration) / float64(time.Millisecond),
			Remote:     s.Remote,
		}
		if len(s.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[s.ID] = n
	}
	// The root is the earliest span whose parent is not itself a finished
	// span of this trace; Spans() is start-ordered, so the first orphan
	// wins. A fully parented set (a cycle) falls back to the first span.
	rootSpan := spans[0]
	for _, s := range spans {
		if _, ok := nodes[s.Parent]; !ok || nodes[s.Parent] == nodes[s.ID] {
			rootSpan = s
			break
		}
	}
	root := nodes[rootSpan.ID]
	for _, s := range spans {
		n := nodes[s.ID]
		n.OffsetUS = s.Start.Sub(rootSpan.Start).Microseconds()
		if n == root {
			continue
		}
		parent, ok := nodes[s.Parent]
		if !ok || parent == n {
			parent = root
		}
		parent.Children = append(parent.Children, n)
	}
	var sortKids func(n *Node)
	sortKids = func(n *Node) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].OffsetUS < n.Children[j].OffsetUS
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	sortKids(root)
	return root, rootSpan
}

// Summarize renders the trace into its wire Summary. The root span's
// timing stands in for the whole trace.
func (t *Trace) Summarize() Summary {
	root, rootSpan := t.buildTree()
	sum := Summary{TraceID: t.id.String(), Tree: root}
	if root != nil {
		sum.Root = root.Name
		sum.DurationMS = root.DurationMS
		sum.Start = rootSpan.Start
	}
	t.mu.Lock()
	sum.Spans = len(t.spans)
	t.mu.Unlock()
	return sum
}
