package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNoTraceIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatal("StartSpan without a trace must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without a trace must return the context unchanged")
	}
	sp.End()             // must not panic
	sp.SetAttr("k", "v") // must not panic
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on a bare context must be nil")
	}
	if HeaderValue(ctx) != "" {
		t.Fatal("HeaderValue on a bare context must be empty")
	}
}

func TestSpanTreeParentage(t *testing.T) {
	ctx, tr, root := New(context.Background(), "request")
	cctx, child := StartSpan(ctx, "stage")
	_, grand := StartSpan(cctx, "substage")
	grand.SetAttr("shard", "2")
	grand.End()
	child.End()
	// Sibling started from the original ctx parents to root, not stage.
	_, sib := StartSpan(ctx, "merge")
	sib.End()
	root.End()

	tree := tr.Tree()
	if tree == nil || tree.Name != "request" {
		t.Fatalf("root = %+v, want request", tree)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root has %d children, want 2 (stage, merge)", len(tree.Children))
	}
	var stage *Node
	for _, c := range tree.Children {
		if c.Name == "stage" {
			stage = c
		}
	}
	if stage == nil {
		t.Fatalf("no stage child: %+v", tree.Children)
	}
	if len(stage.Children) != 1 || stage.Children[0].Name != "substage" {
		t.Fatalf("stage children = %+v, want [substage]", stage.Children)
	}
	if stage.Children[0].Attrs["shard"] != "2" {
		t.Fatalf("substage attrs = %v", stage.Children[0].Attrs)
	}
}

func TestEndIdempotent(t *testing.T) {
	_, tr, root := New(context.Background(), "r")
	root.End()
	root.End()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	ctx, tr, root := New(context.Background(), "router")
	sctx, rpc := StartSpan(ctx, "rpc")
	hv := HeaderValue(sctx)
	traceID, parent, err := ParseHeader(hv)
	if err != nil {
		t.Fatalf("ParseHeader(%q): %v", hv, err)
	}
	if traceID != tr.ID() {
		t.Fatalf("trace id drifted over the header: %s vs %s", traceID, tr.ID())
	}
	if parent != rpc.ID {
		t.Fatalf("parent drifted over the header: %s vs %s", parent, rpc.ID)
	}
	rpc.End()
	root.End()

	for _, bad := range []string{"", "nope", "xyz-abc", "0123-", "-0123", "g016x-0000000000000001"} {
		if _, _, err := ParseHeader(bad); err == nil {
			t.Fatalf("ParseHeader(%q) accepted garbage", bad)
		}
	}
}

func TestResumeStitchesOneTrace(t *testing.T) {
	// Router side: root + rpc span, header crosses the "wire".
	ctx, rtr, rroot := New(context.Background(), "request")
	rctx, rpc := StartSpan(ctx, "rpc.send")
	hv := HeaderValue(rctx)

	// Shard side: resume from the header, do work, export spans.
	sctx, str, sroot := Resume(context.Background(), hv, "shard.serve")
	if str.ID() != rtr.ID() {
		t.Fatalf("resumed trace id %s, want %s", str.ID(), rtr.ID())
	}
	_, work := StartSpan(sctx, "match")
	work.End()
	sroot.End()
	var export []Span
	for _, s := range str.Spans() {
		export = append(export, *s)
	}

	// Router grafts the shard spans; the tree must be ONE stitched trace.
	rtr.Graft(export)
	rpc.End()
	rroot.End()

	tree := rtr.Tree()
	if tree.Name != "request" {
		t.Fatalf("root %q, want request", tree.Name)
	}
	var rpcNode *Node
	for _, c := range tree.Children {
		if c.Name == "rpc.send" {
			rpcNode = c
		}
	}
	if rpcNode == nil {
		t.Fatalf("no rpc.send under root: %+v", tree.Children)
	}
	if len(rpcNode.Children) != 1 || rpcNode.Children[0].Name != "shard.serve" {
		t.Fatalf("shard root not stitched under rpc.send: %+v", rpcNode.Children)
	}
	shard := rpcNode.Children[0]
	if !shard.Remote {
		t.Fatal("grafted shard span not marked remote")
	}
	if len(shard.Children) != 1 || shard.Children[0].Name != "match" {
		t.Fatalf("shard children = %+v, want [match]", shard.Children)
	}
}

func TestResumeBadHeaderFallsBack(t *testing.T) {
	_, tr, root := Resume(context.Background(), "garbage", "r")
	root.End()
	if tr.ID() == 0 {
		t.Fatal("fallback trace must have a fresh id")
	}
	if got := tr.Spans()[0].Parent; got != 0 {
		t.Fatalf("fallback root parent = %s, want 0", got)
	}
}

func TestAdopt(t *testing.T) {
	reqCtx, tr, root := New(context.Background(), "request")
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()

	adopted := Adopt(runCtx, reqCtx)
	_, sp := StartSpan(adopted, "pipeline.run")
	sp.End()
	root.End()
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("adopted span not recorded into the request trace: %d spans", got)
	}
	// Cancellation semantics come from base, not from the request ctx.
	if adopted.Done() == nil {
		t.Fatal("adopted ctx lost the base's cancellation")
	}
	if Adopt(runCtx, context.Background()) != runCtx {
		t.Fatal("Adopt with no trace must return base unchanged")
	}
}

func TestTraceSpanCap(t *testing.T) {
	ctx, tr, root := New(context.Background(), "r")
	for i := 0; i < maxSpans+100; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	root.End()
	if got := len(tr.Spans()); got != maxSpans {
		t.Fatalf("trace grew to %d spans, cap is %d", got, maxSpans)
	}
}

// TestRecorderEvictionBounds pins the ring-buffer contract: both rings
// stay at their configured capacity under sustained load, evicting
// oldest-first, and the slow ring only admits traces at/over threshold.
func TestRecorderEvictionBounds(t *testing.T) {
	rec := NewRecorder(8, 4, time.Nanosecond) // everything is "slow"
	for i := 0; i < 100; i++ {
		_, tr, root := New(context.Background(), fmt.Sprintf("req-%d", i))
		time.Sleep(time.Microsecond)
		root.End()
		rec.Observe(tr)
	}
	recent, slow := rec.Recent(), rec.Slow()
	if len(recent) != 8 {
		t.Fatalf("recent ring holds %d, want exactly 8", len(recent))
	}
	if len(slow) != 4 {
		t.Fatalf("slow ring holds %d, want exactly 4", len(slow))
	}
	// Oldest-first eviction: the survivors are the newest observations.
	if recent[len(recent)-1].Root != "req-99" || recent[0].Root != "req-92" {
		t.Fatalf("recent ring order wrong: first=%s last=%s", recent[0].Root, recent[len(recent)-1].Root)
	}
	if slow[len(slow)-1].Root != "req-99" || slow[0].Root != "req-96" {
		t.Fatalf("slow ring order wrong: first=%s last=%s", slow[0].Root, slow[len(slow)-1].Root)
	}
}

func TestRecorderSlowThreshold(t *testing.T) {
	rec := NewRecorder(8, 4, time.Hour) // nothing qualifies
	_, tr, root := New(context.Background(), "fast")
	root.End()
	rec.Observe(tr)
	if len(rec.Slow()) != 0 {
		t.Fatal("fast trace leaked into the slow ring")
	}
	if len(rec.Recent()) != 1 {
		t.Fatal("trace missing from the recent ring")
	}

	off := NewRecorder(8, 4, 0) // threshold 0 disables slow capture
	_, tr2, root2 := New(context.Background(), "r")
	time.Sleep(time.Microsecond)
	root2.End()
	off.Observe(tr2)
	if len(off.Slow()) != 0 {
		t.Fatal("slow capture must be off at threshold 0")
	}
}

func TestRecorderObserveNil(t *testing.T) {
	rec := NewRecorder(0, 0, 0)
	if sum := rec.Observe(nil); sum.TraceID != "" {
		t.Fatalf("nil trace produced summary %+v", sum)
	}
	if len(rec.Recent()) != 0 {
		t.Fatal("nil trace entered the ring")
	}
}

func TestConcurrentSpans(t *testing.T) {
	ctx, tr, root := New(context.Background(), "fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, sp := StartSpan(ctx, fmt.Sprintf("shard-%d", i))
			_, inner := StartSpan(sctx, "work")
			inner.End()
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 33 {
		t.Fatalf("recorded %d spans, want 33", got)
	}
	tree := tr.Tree()
	if len(tree.Children) != 16 {
		t.Fatalf("root has %d children, want 16", len(tree.Children))
	}
}

func TestIDStringParse(t *testing.T) {
	for i := 0; i < 100; i++ {
		id := newID()
		got, err := ParseID(id.String())
		if err != nil || got != id {
			t.Fatalf("ParseID(String(%s)) = %s, %v", id, got, err)
		}
	}
	if a, b := newID(), newID(); a == b {
		t.Fatal("consecutive ids collided")
	}
}
