package trace

import (
	"sync"
	"time"
)

// Recorder keeps two bounded rings of finished traces: every observed
// trace enters the recent ring, and traces whose root span exceeds the
// slow threshold also enter the slow ring. Both rings evict oldest-first
// at fixed capacity, so memory stays bounded no matter the request rate.
type Recorder struct {
	mu        sync.Mutex
	recent    []Summary
	slow      []Summary
	recentCap int
	slowCap   int
	threshold time.Duration
}

// Defaults for NewRecorder when a capacity is zero or negative.
const (
	defaultRecentCap = 64
	defaultSlowCap   = 32
)

// NewRecorder builds a recorder holding up to recentCap recent traces
// and slowCap slow traces; traces at or above threshold count as slow
// (threshold <= 0 disables slow capture). Non-positive capacities take
// the package defaults.
func NewRecorder(recentCap, slowCap int, threshold time.Duration) *Recorder {
	if recentCap <= 0 {
		recentCap = defaultRecentCap
	}
	if slowCap <= 0 {
		slowCap = defaultSlowCap
	}
	return &Recorder{recentCap: recentCap, slowCap: slowCap, threshold: threshold}
}

// Threshold returns the slow-trace capture threshold.
func (r *Recorder) Threshold() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.threshold
}

// Observe summarizes a finished trace into the rings and returns the
// summary (so callers serving ?trace=1 don't summarize twice). A nil
// trace — an untraced request — returns a zero Summary untouched.
func (r *Recorder) Observe(t *Trace) Summary {
	if t == nil {
		return Summary{}
	}
	sum := t.Summarize()
	r.mu.Lock()
	r.recent = push(r.recent, sum, r.recentCap)
	if r.threshold > 0 && sum.DurationMS >= float64(r.threshold)/float64(time.Millisecond) {
		r.slow = push(r.slow, sum, r.slowCap)
	}
	r.mu.Unlock()
	return sum
}

// push appends keeping at most cap entries, evicting oldest-first.
func push(ring []Summary, s Summary, capacity int) []Summary {
	ring = append(ring, s)
	if overflow := len(ring) - capacity; overflow > 0 {
		ring = append(ring[:0], ring[overflow:]...)
	}
	return ring
}

// Recent returns the recent ring, newest last.
func (r *Recorder) Recent() []Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Summary(nil), r.recent...)
}

// Slow returns the slow ring, newest last.
func (r *Recorder) Slow() []Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Summary(nil), r.slow...)
}
