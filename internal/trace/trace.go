// Package trace is bellflower's request-scoped tracing subsystem: cheap,
// dependency-free spans carried via context.Context through the serving
// pipeline (service → router → shard RPC → pipeline stages), stitched
// across process boundaries by the X-Bellflower-Trace header.
//
// The design center is "always on, almost free": a component calls
// StartSpan unconditionally; when the context carries no trace the call
// returns a nil *Span whose methods are no-ops and the only cost is one
// context value lookup. When a trace IS active, starting a span costs a
// couple of small allocations and two time.Now calls — cheap enough to
// instrument every stage of every traced request.
//
// Spans are appended to their Trace on End (never on Start), so a
// snapshot taken while work is still in flight sees only finished,
// immutable spans — no torn reads, no locks held across stage work.
package trace

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies a trace or a span. IDs are process-unique, not globally
// unique: a trace crossing a process boundary keeps the originator's
// trace ID, and remote span IDs are re-mapped on graft if they collide.
type ID uint64

// String renders the ID as fixed-width hex (the wire and JSON form).
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the fixed-width hex form produced by String.
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return ID(v), nil
}

// idCounter seeds process-unique IDs. Seeded from the clock once so two
// processes started together still diverge quickly (the counter strides
// by a large odd constant, mixing the bits on every allocation).
var idCounter atomic.Uint64

func init() { idCounter.Store(uint64(time.Now().UnixNano())) }

func newID() ID {
	// Weyl-sequence stride + xorshift mix: cheap, race-free, and well
	// spread even from adjacent counter values.
	x := idCounter.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	if x == 0 {
		x = 1 // 0 is the "no parent" sentinel
	}
	return ID(x)
}

// disabled is the global tracing kill switch (see SetEnabled): when set,
// New and Resume return nil traces, so every downstream StartSpan takes
// the nil fast path.
var disabled atomic.Bool

// SetEnabled turns trace creation on or off process-wide. Tracing is on
// by default; disabling it is an operational escape hatch (and the bench
// harness's no-trace baseline) — requests already in flight keep their
// traces, new requests get none. Nil-safety everywhere downstream makes
// the flip safe at any time.
func SetEnabled(v bool) { disabled.Store(!v) }

// Enabled reports whether trace creation is on.
func Enabled() bool { return !disabled.Load() }

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation inside a trace. A span is mutable only
// between StartSpan and End; once appended to its trace it is read-only.
type Span struct {
	ID       ID            `json:"id"`
	Parent   ID            `json:"parent"` // 0 = trace root
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	// Remote marks spans recorded in another process and grafted into
	// this trace from a shard RPC response.
	Remote bool `json:"remote,omitempty"`

	tr    *Trace
	ended int32 // accessed atomically; plain field keeps Span copyable
}

// SetAttr annotates the span. Safe only before End (the span's owner
// goroutine); a nil span ignores the call.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// End finishes the span and appends it to its trace. Safe on a nil span
// and idempotent, so `defer sp.End()` composes with early explicit Ends.
func (s *Span) End() {
	if s == nil || s.tr == nil || !atomic.CompareAndSwapInt32(&s.ended, 0, 1) {
		return
	}
	s.Duration = time.Since(s.Start)
	s.tr.append(s)
}

// Trace accumulates the finished spans of one request. It is safe for
// concurrent use: fan-out goroutines append spans while the root
// goroutine may snapshot.
type Trace struct {
	id ID

	mu    sync.Mutex
	spans []*Span
}

// maxSpans bounds a single trace; a runaway instrumentation loop (or a
// hostile header) degrades to dropped spans, never unbounded memory.
const maxSpans = 4096

func (t *Trace) append(s *Span) {
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// ID returns the trace's identifier.
func (t *Trace) ID() ID { return t.id }

// Spans returns a snapshot of the finished spans, ordered by start time.
func (t *Trace) Spans() []*Span {
	t.mu.Lock()
	out := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Graft adopts spans finished in another process (decoded from a shard
// response) into this trace. Callers must have arranged parentage via
// the wire context: the remote root's Parent is the local span whose ID
// crossed in the X-Bellflower-Trace header.
func (t *Trace) Graft(spans []Span) {
	t.mu.Lock()
	for i := range spans {
		if len(t.spans) >= maxSpans {
			break
		}
		s := spans[i] // copy; the grafted span is owned by the trace
		s.Remote = true
		t.spans = append(t.spans, &s)
	}
	t.mu.Unlock()
}

// ctxKey carries the active trace position through a context.
type ctxKey struct{}

type active struct {
	tr   *Trace
	span ID // current span: parent for children started from this ctx
}

// New begins a trace with a root span named name and returns the derived
// context carrying it. The caller must End the root span before reading
// the trace. When tracing is disabled (SetEnabled(false)) it returns the
// context unchanged with a nil trace and span, both safe to use.
func New(ctx context.Context, name string) (context.Context, *Trace, *Span) {
	if disabled.Load() {
		return ctx, nil, nil
	}
	return resume(ctx, name, newID(), 0)
}

// resume begins a trace with an externally assigned trace ID and root
// parent — the receiving half of cross-process propagation.
func resume(ctx context.Context, name string, traceID, parent ID) (context.Context, *Trace, *Span) {
	tr := &Trace{id: traceID}
	sp := &Span{ID: newID(), Parent: parent, Name: name, Start: time.Now(), tr: tr}
	return context.WithValue(ctx, ctxKey{}, &active{tr: tr, span: sp.ID}), tr, sp
}

// FromContext returns the context's active trace, or nil.
func FromContext(ctx context.Context) *Trace {
	if a, ok := ctx.Value(ctxKey{}).(*active); ok {
		return a.tr
	}
	return nil
}

// StartSpan begins a child of the context's current span. With no active
// trace it returns the context unchanged and a nil span (whose End and
// SetAttr are no-ops) — the universal cheap path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	a, ok := ctx.Value(ctxKey{}).(*active)
	if !ok {
		return ctx, nil
	}
	sp := &Span{ID: newID(), Parent: a.span, Name: name, Start: time.Now(), tr: a.tr}
	return context.WithValue(ctx, ctxKey{}, &active{tr: a.tr, span: sp.ID}), sp
}

// Adopt returns base carrying from's active trace position. It lets a
// worker executing on a detached run context record spans into the
// request trace that triggered the run, without inheriting the request
// context's cancellation. With no trace in from, base returns unchanged.
func Adopt(base, from context.Context) context.Context {
	a, ok := from.Value(ctxKey{}).(*active)
	if !ok {
		return base
	}
	return context.WithValue(base, ctxKey{}, a)
}

// Header is the HTTP header propagating trace context across processes.
const Header = "X-Bellflower-Trace"

// HeaderValue encodes the context's trace position as "traceID-spanID",
// or "" when no trace is active.
func HeaderValue(ctx context.Context) string {
	a, ok := ctx.Value(ctxKey{}).(*active)
	if !ok {
		return ""
	}
	return a.tr.id.String() + "-" + a.span.String()
}

// ParseHeader decodes a HeaderValue into (traceID, parentSpanID).
func ParseHeader(v string) (traceID, parent ID, err error) {
	t, p, ok := strings.Cut(v, "-")
	if !ok {
		return 0, 0, fmt.Errorf("trace: malformed header %q", v)
	}
	if traceID, err = ParseID(t); err != nil {
		return 0, 0, err
	}
	if parent, err = ParseID(p); err != nil {
		return 0, 0, err
	}
	return traceID, parent, nil
}

// Resume begins a trace continuing the position encoded in a header
// value: the new trace keeps the sender's trace ID and the root span is
// parented to the sender's span, so when the finished spans ship back
// the sender can Graft them into one stitched tree. An empty or
// malformed value starts a fresh root trace instead.
func Resume(ctx context.Context, headerValue, name string) (context.Context, *Trace, *Span) {
	if disabled.Load() {
		return ctx, nil, nil
	}
	if headerValue != "" {
		if traceID, parent, err := ParseHeader(headerValue); err == nil {
			return resume(ctx, name, traceID, parent)
		}
	}
	return New(ctx, name)
}
