package mapgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/schema"
)

type fix struct {
	personal *schema.Tree
	repo     *schema.Repository
	ix       *labeling.Index
	cands    *matcher.Candidates
	ev       *objective.Evaluator
}

func newFix(t testing.TB, params objective.Params, minSim float64, personalSpec string, repoSpecs ...string) *fix {
	t.Helper()
	personal := schema.MustParseSpec(personalSpec)
	repo := schema.NewRepository()
	for _, s := range repoSpecs {
		repo.MustAdd(schema.MustParseSpec(s))
	}
	ix := labeling.NewIndex(repo)
	cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: minSim})
	ev := objective.NewEvaluator(params, ix, personal)
	return &fix{personal, repo, ix, cands, ev}
}

func (f *fix) treeClusters() []*cluster.Cluster {
	return cluster.TreeClusters(f.ix, f.cands).Clusters
}

func (f *fix) gen(cfg Config) *Generator {
	return New(cfg, f.ix, f.ev, f.cands)
}

func TestGenerateExactMatch(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.5,
		"book(title,author)",
		"lib(book(title,author))")
	g := f.gen(Config{Threshold: 0.9})
	ms, ctr := g.Generate(f.treeClusters())
	if len(ms) == 0 {
		t.Fatalf("no mappings found; counters %+v", ctr)
	}
	best := ms[0]
	if best.Score.Delta != 1 {
		t.Errorf("best Delta = %v, want 1", best.Score.Delta)
	}
	if best.Images[0].Name != "book" || best.Images[1].Name != "title" || best.Images[2].Name != "author" {
		t.Errorf("best mapping images wrong: %v", best.Images)
	}
	if ctr.UsefulClusters != 1 {
		t.Errorf("useful clusters = %d", ctr.UsefulClusters)
	}
}

func TestGenerateRespectsThreshold(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.3,
		"book(title,author)",
		"lib(book(title,author),book(titel,autor))")
	for _, delta := range []float64{0.5, 0.75, 0.9, 0.99} {
		g := f.gen(Config{Threshold: delta})
		ms, _ := g.Generate(f.treeClusters())
		for _, m := range ms {
			if m.Score.Delta < delta {
				t.Errorf("δ=%v: mapping with Delta=%v returned", delta, m.Score.Delta)
			}
		}
	}
}

func TestGenerateRanking(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.3,
		"book(title,author)",
		"lib(book(title,author),book(titel,autor),paper(title,author))")
	g := f.gen(Config{Threshold: 0.5})
	ms, _ := g.Generate(f.treeClusters())
	if len(ms) < 2 {
		t.Fatalf("want several mappings, got %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Score.Delta > ms[i-1].Score.Delta {
			t.Errorf("ranking violated at %d: %v > %v", i, ms[i].Score.Delta, ms[i-1].Score.Delta)
		}
	}
}

func TestGenerateTopN(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.3,
		"book(title)",
		"lib(book(title),book(title),book(title))")
	all, _ := f.gen(Config{Threshold: 0.5}).Generate(f.treeClusters())
	top, _ := f.gen(Config{Threshold: 0.5, TopN: 2}).Generate(f.treeClusters())
	if len(all) <= 2 {
		t.Skipf("need >2 mappings for the test, got %d", len(all))
	}
	if len(top) != 2 {
		t.Fatalf("TopN=2 returned %d", len(top))
	}
	if top[0].Score.Delta != all[0].Score.Delta || top[1].Score.Delta != all[1].Score.Delta {
		t.Errorf("TopN did not keep the best mappings")
	}
}

func TestInjectivity(t *testing.T) {
	// Personal schema with two identical node names; repo with a single
	// matching node — the single node cannot serve both personal nodes.
	f := newFix(t, objective.Params{Alpha: 1, K: 4}, 0.5,
		"a(x,x)",
		"r(a(x))")
	g := f.gen(Config{Threshold: 0})
	ms, _ := g.Generate(f.treeClusters())
	for _, m := range ms {
		if m.Images[1] == m.Images[2] {
			t.Fatalf("mapping reuses a repository node: %v", m.Images)
		}
	}
}

func TestMappingsStayWithinCluster(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.5,
		"book(title)",
		"lib(book(title))",
		"shop(book(title))")
	clusters := f.treeClusters()
	g := f.gen(Config{Threshold: 0.5})
	for _, cl := range clusters {
		ms, _ := g.GenerateInCluster(cl)
		member := map[int]bool{}
		for _, e := range cl.Elements {
			member[e.Node.ID] = true
		}
		for _, m := range ms {
			for _, img := range m.Images {
				if !member[img.ID] {
					t.Errorf("cluster %d mapping uses foreign node %v", cl.ID, img)
				}
			}
		}
	}
}

func TestNonUsefulClusterProducesNothing(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.5,
		"book(title,zzzz)",
		"lib(book(title))")
	g := f.gen(Config{Threshold: 0})
	ms, ctr := g.Generate(f.treeClusters())
	if len(ms) != 0 || ctr.UsefulClusters != 0 {
		t.Errorf("non-useful cluster produced %d mappings, %d useful", len(ms), ctr.UsefulClusters)
	}
}

func TestScoreMatchesEvaluator(t *testing.T) {
	f := newFix(t, objective.Params{Alpha: 0.5, K: 4}, 0.4,
		"book(title,author)",
		"lib(address,book(authorName,data(title),shelf))")
	g := f.gen(Config{Threshold: 0.3})
	ms, _ := g.Generate(f.treeClusters())
	if len(ms) == 0 {
		t.Fatalf("no mappings")
	}
	for _, m := range ms {
		want := f.ev.Score(m.Images, m.Sims)
		if math.Abs(want.Delta-m.Score.Delta) > 1e-12 || want.Et != m.Score.Et {
			t.Errorf("incremental score %+v != evaluator %+v", m.Score, want)
		}
	}
}

func TestExhaustiveEqualsBranchAndBound(t *testing.T) {
	f := newFix(t, objective.Params{Alpha: 0.5, K: 4}, 0.3,
		"book(title,author)",
		"lib(book(title,author),book(titel,autor),paper(title,author))",
		"store(dept(book(title,author(name))))")
	for _, delta := range []float64{0.4, 0.6, 0.75, 0.9} {
		bb, bbCtr := f.gen(Config{Threshold: delta, Algorithm: BranchAndBound}).Generate(f.treeClusters())
		ex, exCtr := f.gen(Config{Threshold: delta, Algorithm: Exhaustive}).Generate(f.treeClusters())
		if len(bb) != len(ex) {
			t.Fatalf("δ=%v: B&B found %d, exhaustive %d", delta, len(bb), len(ex))
		}
		for i := range bb {
			if math.Abs(bb[i].Score.Delta-ex[i].Score.Delta) > 1e-12 {
				t.Errorf("δ=%v: rank %d deltas differ: %v vs %v", delta, i, bb[i].Score.Delta, ex[i].Score.Delta)
			}
		}
		if bbCtr.PartialMappings > exCtr.PartialMappings {
			t.Errorf("δ=%v: B&B generated more partials (%d) than exhaustive (%d)",
				delta, bbCtr.PartialMappings, exCtr.PartialMappings)
		}
	}
}

func TestBnBPrunesAtHighThreshold(t *testing.T) {
	f := newFix(t, objective.Params{Alpha: 0.5, K: 4}, 0.3,
		"book(title,author)",
		"lib(book(title,author),bok(titel,autor),bk(ttle,athr))")
	_, bb := f.gen(Config{Threshold: 0.95, Algorithm: BranchAndBound}).Generate(f.treeClusters())
	_, ex := f.gen(Config{Threshold: 0.95, Algorithm: Exhaustive}).Generate(f.treeClusters())
	if bb.PartialMappings >= ex.PartialMappings {
		t.Errorf("B&B should prune at δ=0.95: %d vs %d partials", bb.PartialMappings, ex.PartialMappings)
	}
}

func TestSearchSpaceCounter(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.9,
		"book(title)",
		"lib(book(title),book(title))")
	g := f.gen(Config{Threshold: 0})
	_, ctr := g.Generate(f.treeClusters())
	// 2 book candidates × 2 title candidates = 4 combinations
	if ctr.SearchSpace != 4 {
		t.Errorf("SearchSpace = %v, want 4", ctr.SearchSpace)
	}
	if ctr.CompleteMappings != 4 {
		t.Errorf("CompleteMappings = %v, want 4", ctr.CompleteMappings)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{SearchSpace: 1, PartialMappings: 2, CompleteMappings: 3, Found: 4, UsefulClusters: 5}
	b := Counters{SearchSpace: 10, PartialMappings: 20, CompleteMappings: 30, Found: 40, UsefulClusters: 50}
	a.Add(b)
	if a.SearchSpace != 11 || a.PartialMappings != 22 || a.CompleteMappings != 33 || a.Found != 44 || a.UsefulClusters != 55 {
		t.Errorf("Add result %+v", a)
	}
}

func TestGeneratePartialInCluster(t *testing.T) {
	// 'email' has no candidate anywhere: tree clusters are non-useful, but
	// name+address can still be partially mapped.
	f := newFix(t, objective.Params{Alpha: 0.5, K: 4}, 0.5,
		"person(name,address,email)",
		"contact(name,address)")
	clusters := f.treeClusters()
	if len(clusters) != 1 {
		t.Fatalf("want 1 cluster, got %d", len(clusters))
	}
	g := f.gen(Config{Threshold: 0.3})
	// Complete generation finds nothing...
	ms, _ := g.GenerateInCluster(clusters[0])
	if len(ms) != 0 {
		t.Fatalf("complete mappings from non-useful cluster: %d", len(ms))
	}
	// ...partial generation finds the 2-node mapping.
	pms, ctr := g.GeneratePartialInCluster(clusters[0])
	if len(pms) == 0 {
		t.Fatalf("no partial mappings; counters %+v", ctr)
	}
	pm := pms[0]
	if pm.Covered != 3 {
		// name, address covered; email not; root 'person' has no match
		// either (contact≁person at 0.5) so covered = 2 or 3 depending on
		// matcher — assert via mask instead.
		if pm.Covered < 2 {
			t.Errorf("covered = %d, want >= 2", pm.Covered)
		}
	}
	if pm.CoveredMask&0b110 == 0 {
		t.Errorf("mask %b should cover name and address", pm.CoveredMask)
	}
	for i, img := range pm.Images {
		bit := pm.CoveredMask&(1<<uint(i)) != 0
		if bit != (img != nil) {
			t.Errorf("image %d nil-ness inconsistent with mask", i)
		}
	}
	// Partial Δsim counts missing nodes as zero, so it can't reach 1.
	if pm.Score.Sim > float64(pm.Covered)/3+1e-9 {
		t.Errorf("partial Sim = %v too high for %d/3 coverage", pm.Score.Sim, pm.Covered)
	}
}

func TestGeneratePartialTooFewCovered(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.5,
		"person(name,email)",
		"qqq(name)") // only 'name' matches
	g := f.gen(Config{Threshold: 0})
	pms, _ := g.GeneratePartialInCluster(f.treeClusters()[0])
	if pms != nil {
		t.Errorf("partial mapping with single covered node should be suppressed")
	}
}

// Property: on random fixtures, B&B and exhaustive return identical mapping
// sets (same size, same score multiset) — i.e. the bounding function is
// admissible — and B&B never generates more partial mappings.
func TestBnBAdmissibleProperty(t *testing.T) {
	words := []string{"book", "title", "author", "name", "isbn", "data"}
	f := func(seed int64, alphaPct, deltaPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		repo := schema.NewRepository()
		for tr := 0; tr < 1+rng.Intn(3); tr++ {
			b := schema.NewBuilder("t")
			nodes := []*schema.Node{b.Root(words[rng.Intn(len(words))])}
			for i := 1; i < 3+rng.Intn(12); i++ {
				p := nodes[rng.Intn(len(nodes))]
				nodes = append(nodes, b.Element(p, words[rng.Intn(len(words))]))
			}
			repo.MustAdd(b.MustTree())
		}
		personal := schema.MustParseSpec("book(title,author)")
		ix := labeling.NewIndex(repo)
		cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: 0.4})
		alpha := float64(alphaPct%101) / 100
		delta := 0.3 + 0.6*float64(deltaPct%101)/100
		ev := objective.NewEvaluator(objective.Params{Alpha: alpha, K: 4}, ix, personal)
		clusters := cluster.TreeClusters(ix, cands).Clusters

		bbG := New(Config{Threshold: delta, Algorithm: BranchAndBound}, ix, ev, cands)
		exG := New(Config{Threshold: delta, Algorithm: Exhaustive}, ix, ev, cands)
		bb, bbCtr := bbG.Generate(clusters)
		ex, exCtr := exG.Generate(clusters)
		if len(bb) != len(ex) {
			return false
		}
		for i := range bb {
			if math.Abs(bb[i].Score.Delta-ex[i].Score.Delta) > 1e-12 {
				return false
			}
		}
		return bbCtr.PartialMappings <= exCtr.PartialMappings
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every returned mapping satisfies the mapping definition
// (Def. 2): images are in one tree, pairwise distinct, and the recomputed
// score matches.
func TestMappingWellFormedProperty(t *testing.T) {
	words := []string{"book", "title", "author", "data", "shelf"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		repo := schema.NewRepository()
		for tr := 0; tr < 1+rng.Intn(3); tr++ {
			b := schema.NewBuilder("t")
			nodes := []*schema.Node{b.Root(words[rng.Intn(len(words))])}
			for i := 1; i < 3+rng.Intn(15); i++ {
				p := nodes[rng.Intn(len(nodes))]
				nodes = append(nodes, b.Element(p, words[rng.Intn(len(words))]))
			}
			repo.MustAdd(b.MustTree())
		}
		personal := schema.MustParseSpec("book(title,author)")
		ix := labeling.NewIndex(repo)
		cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: 0.4})
		ev := objective.NewEvaluator(objective.DefaultParams(), ix, personal)
		g := New(Config{Threshold: 0.5}, ix, ev, cands)
		ms, _ := g.Generate(cluster.TreeClusters(ix, cands).Clusters)
		for _, m := range ms {
			tid := ix.TreeID(m.Images[0])
			seen := map[int]bool{}
			for _, img := range m.Images {
				if ix.TreeID(img) != tid || seen[img.ID] {
					return false
				}
				seen[img.ID] = true
			}
			if want := ev.Score(m.Images, m.Sims); math.Abs(want.Delta-m.Score.Delta) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadThreshold(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.5, "a", "a")
	defer func() {
		if recover() == nil {
			t.Errorf("bad threshold should panic")
		}
	}()
	f.gen(Config{Threshold: 1.5})
}
