//go:build race

package mapgen

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so the zero-allocation pins skip themselves.
const raceEnabled = true
