package mapgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/schema"
)

func TestGenerateTopNMatchesTruncation(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.3,
		"book(title,author)",
		"lib(book(title,author),book(titel,autor),paper(title,author))",
		"store(dept(book(title,author(name))))")
	clusters := f.treeClusters()
	for _, n := range []int{1, 3, 5, 100} {
		full, _ := f.gen(Config{Threshold: 0.5}).Generate(clusters)
		top, _ := f.gen(Config{Threshold: 0.5}).GenerateTopN(clusters, n)
		want := len(full)
		if want > n {
			want = n
		}
		if len(top) != want {
			t.Fatalf("n=%d: got %d mappings, want %d", n, len(top), want)
		}
		for i := range top {
			if math.Abs(top[i].Score.Delta-full[i].Score.Delta) > 1e-12 {
				t.Errorf("n=%d rank %d: Δ %v vs %v", n, i, top[i].Score.Delta, full[i].Score.Delta)
			}
		}
	}
}

func TestGenerateTopNPrunesMore(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.3,
		"book(title,author)",
		"lib(book(title,author),book(titel,autor),paper(title,author),bok(ttl,athr))",
		"store(dept(book(title,author(name))),book(title,author))")
	clusters := f.treeClusters()
	_, fullCtr := f.gen(Config{Threshold: 0.3}).Generate(clusters)
	_, topCtr := f.gen(Config{Threshold: 0.3}).GenerateTopN(clusters, 1)
	if topCtr.PartialMappings >= fullCtr.PartialMappings {
		t.Errorf("top-1 search should prune harder: %d vs %d partials",
			topCtr.PartialMappings, fullCtr.PartialMappings)
	}
}

func TestGenerateTopNStop(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.3,
		"book(title,author)",
		"lib(book(title,author),book(titel,autor))",
		"store(dept(book(title,author(name))))")
	clusters := f.treeClusters()

	// An immediate stop searches no cluster.
	ms, ctr := f.gen(Config{Threshold: 0.5}).GenerateTopNStop(clusters, 3, func() bool { return true })
	if len(ms) != 0 || ctr.PartialMappings != 0 {
		t.Errorf("immediate stop searched anyway: %d mappings, %d partials", len(ms), ctr.PartialMappings)
	}

	// A stop after the first cluster abandons the rest but keeps what was
	// found so far. Best-first scheduling decides which cluster goes first,
	// so identify it from the results and compare against its full search.
	calls := 0
	ms, _ = f.gen(Config{Threshold: 0.5}).GenerateTopNStop(clusters, 100, func() bool {
		calls++
		return calls > 1
	})
	if len(ms) == 0 {
		t.Fatal("stop after first cluster kept nothing")
	}
	first := ms[0].ClusterID
	for _, m := range ms {
		if m.ClusterID != first {
			t.Fatalf("stop after first cluster returned clusters %d and %d", first, m.ClusterID)
		}
	}
	for _, cl := range clusters {
		if cl.ID != first {
			continue
		}
		full, _ := f.gen(Config{Threshold: 0.5}).GenerateInCluster(cl)
		if len(ms) != len(full) {
			t.Errorf("stop after first cluster: %d mappings, want %d (cluster %d only)", len(ms), len(full), first)
		}
	}
}

func TestGenerateTopNZeroFallsBack(t *testing.T) {
	f := newFix(t, objective.DefaultParams(), 0.4,
		"book(title)", "lib(book(title))")
	clusters := f.treeClusters()
	all, _ := f.gen(Config{Threshold: 0.5}).Generate(clusters)
	zero, _ := f.gen(Config{Threshold: 0.5}).GenerateTopN(clusters, 0)
	if len(zero) != len(all) {
		t.Errorf("n=0 should return everything: %d vs %d", len(zero), len(all))
	}
}

// Property: the top-N Δ list equals the first N entries of the full ranked
// Δ list on random repositories.
func TestGenerateTopNProperty(t *testing.T) {
	words := []string{"book", "title", "author", "name", "data"}
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		repo := schema.NewRepository()
		for tr := 0; tr < 1+rng.Intn(3); tr++ {
			b := schema.NewBuilder("t")
			nodes := []*schema.Node{b.Root(words[rng.Intn(len(words))])}
			for i := 1; i < 3+rng.Intn(12); i++ {
				p := nodes[rng.Intn(len(nodes))]
				nodes = append(nodes, b.Element(p, words[rng.Intn(len(words))]))
			}
			repo.MustAdd(b.MustTree())
		}
		personal := schema.MustParseSpec("book(title,author)")
		ix := labeling.NewIndex(repo)
		cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: 0.4})
		ev := objective.NewEvaluator(objective.DefaultParams(), ix, personal)
		clusters := cluster.TreeClusters(ix, cands).Clusters
		n := 1 + int(nRaw)%8

		full, _ := New(Config{Threshold: 0.5}, ix, ev, cands).Generate(clusters)
		top, topCtr := New(Config{Threshold: 0.5}, ix, ev, cands).GenerateTopN(clusters, n)
		want := len(full)
		if want > n {
			want = n
		}
		if len(top) != want {
			return false
		}
		for i := range top {
			if math.Abs(top[i].Score.Delta-full[i].Score.Delta) > 1e-12 {
				return false
			}
		}
		_, fullCtr := New(Config{Threshold: 0.5}, ix, ev, cands).Generate(clusters)
		return topCtr.PartialMappings <= fullCtr.PartialMappings
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
