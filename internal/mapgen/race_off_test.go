//go:build !race

package mapgen

const raceEnabled = false
