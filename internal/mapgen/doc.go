// Package mapgen implements the schema mapping generator (step ④ of the
// paper's architecture): it enumerates combinations of mapping elements
// within a cluster, scores them with the objective function, and returns
// every schema mapping with Δ(s,t) ≥ δ.
//
// Two search algorithms are provided. Exhaustive enumerates the full
// search space (the O(|MEn|^|Ns|) baseline). BranchAndBound, the paper's
// choice (an adaptation of the B&B scheme of Kreher & Stinson), extends
// partial mappings in personal-schema preorder and prunes with an
// admissible bounding function, so it discovers exactly the same mappings
// while generating far fewer partial mappings. The number of partial
// mappings generated is the paper's machine-independent efficiency
// indicator (Tab. 1b). GenerateTopN adds the adaptive top-N variant whose
// pruning threshold rises to the N-th best Δ found so far.
//
// Ranked lists from independent searches — per-cluster lists within one
// repository, or per-shard lists when a repository is partitioned across
// several serve.Service instances — are combined with Rank and MergeRanked
// respectively; both orderings are deterministic.
//
// # Concurrency
//
// A Generator is immutable after New: every Generate* call keeps its search
// state (DFS stack, result heap, edge union) on its own stack, so any number
// of goroutines may search different clusters through one Generator at once
// — the pipeline's Parallelism fan-out depends on this. The package-level
// helpers Rank, MergeRanked and SearchSpaceSize are pure functions over
// their arguments (Rank sorts its argument in place).
package mapgen
