// Package mapgen implements the schema mapping generator (step ④ of the
// paper's architecture): it enumerates combinations of mapping elements
// within a cluster, scores them with the objective function, and returns
// every schema mapping with Δ(s,t) ≥ δ.
//
// Two search algorithms are provided. Exhaustive enumerates the full
// search space (the O(|MEn|^|Ns|) baseline). BranchAndBound, the paper's
// choice (an adaptation of the B&B scheme of Kreher & Stinson), extends
// partial mappings in personal-schema preorder and prunes with an
// admissible bounding function, so it discovers exactly the same mappings
// while generating far fewer partial mappings. The number of partial
// mappings generated is the paper's machine-independent efficiency
// indicator (Tab. 1b).
//
// GenerateTopN / GenerateTopNParallel add the adaptive top-N variant: the
// pruning threshold starts at δ and rises to the N-th best Δ found so far.
// The parallel engine fans clusters out to workers that share one atomic
// Δ-floor fed by a mutex-guarded global top-N heap, and dispatches
// clusters best-first by a precomputed optimistic per-cluster bound, so
// late clusters are often skipped without their restricted candidate sets
// ever being built.
//
// Ranked lists from independent searches — per-cluster lists within one
// repository, or per-shard lists when a repository is partitioned across
// several serve.Service instances — are combined with Rank and MergeRanked
// respectively; both orderings are deterministic.
//
// # Determinism
//
// GenerateTopNParallel returns results bit-identical — scores AND order —
// to the sequential adaptive search and to exhaustive generation truncated
// to N, for every worker count. Three properties carry the proof: the
// shared floor never exceeds the Δ of the N-th best mapping under the full
// Rank total order (descending Δ, then cluster ID, then image node IDs),
// pruning rejects only on strict "bound below floor", and the heap keeps
// the first N mappings under that same total order. True top-N mappings
// are therefore never pruned, never rejected and never evicted, whatever
// the schedule; the final Rank pass fixes the order. The property and fuzz
// tests in parallel_test.go pin this equivalence.
//
// The work counters are the one schedule-dependent output: under
// parallelism, PartialMappings, CompleteMappings and the EngineStats
// skip/tightening figures depend on how fast the floor rose, which depends
// on cluster interleaving. SearchSpace, UsefulClusters and the mappings
// themselves are exact and schedule-independent (they are computed in the
// deterministic planning pass, including for clusters later skipped by
// bound). With parallelism <= 1 the engine runs inline on the calling
// goroutine and every counter is deterministic.
//
// # Concurrency
//
// A Generator is immutable after New: search state (assignment arrays,
// restricted candidate sets, dense bitsets, dense edge union, result heap)
// lives in a sync.Pool, acquired per call and per worker, never on the
// Generator — so any number of goroutines may search through one Generator
// at once, and a warm acquire→search→release cycle allocates nothing (the
// AllocsPerRun pins in parallel_test.go enforce this). Clusters passed to
// the generator must be disjoint node sets, which every clustering Result
// in this codebase produces. The package-level helpers Rank, MergeRanked
// and SearchSpaceSize are pure functions over their arguments (Rank sorts
// its argument in place).
package mapgen
