package mapgen

import (
	"container/heap"

	"bellflower/internal/cluster"
	"bellflower/internal/objective"
	"bellflower/internal/schema"
)

// Top-N search: the paper notes that "schema matching systems are built to
// deliver top-N mappings, or mappings with the similarity index above
// certain numerical threshold δ". Generate implements the δ mode; this
// file implements the top-N mode with an adaptive Branch & Bound: the
// pruning threshold starts at δ and rises to the N-th best Δ found so far,
// so later clusters are searched with an ever-tighter bound. This is
// strictly more efficient than generating everything and truncating, and
// it returns exactly the same top-N list (property-tested).

// GenerateTopN searches the clusters for the n best mappings with
// Δ ≥ the configured threshold. The returned list is ranked. Counters
// reflect the adaptively pruned search.
func (g *Generator) GenerateTopN(clusters []*cluster.Cluster, n int) ([]Mapping, Counters) {
	return g.GenerateTopNStop(clusters, n, nil)
}

// GenerateTopNStop is GenerateTopN with a cooperative stop hook: stop is
// consulted between clusters, and a true return abandons the search,
// yielding whatever was found so far. A nil stop never stops. This is how
// context cancellation reaches the adaptive search without mapgen
// depending on context. n <= 0 falls back to the threshold-only search,
// still honouring stop between clusters.
func (g *Generator) GenerateTopNStop(clusters []*cluster.Cluster, n int, stop func() bool) ([]Mapping, Counters) {
	if n <= 0 {
		return g.generateStop(clusters, stop)
	}
	var total Counters
	h := &mappingHeap{}
	heap.Init(h)
	floor := g.cfg.Threshold
	for _, cl := range clusters {
		if stop != nil && stop() {
			break
		}
		sets, ok := g.restricted(cl)
		if !ok {
			continue
		}
		total.UsefulClusters++
		total.SearchSpace += SearchSpaceSize(sets)
		s := &topNSearch{
			search: search{
				g:      g,
				cl:     cl,
				sets:   sets,
				n:      g.cands.Personal.Len(),
				images: make([]*schema.Node, g.cands.Personal.Len()),
				sims:   make([]float64, g.cands.Personal.Len()),
				used:   make(map[int]bool),
				union:  objective.NewEdgeUnion(g.ix),
				ctr:    &total,
			},
			heap:  h,
			limit: n,
			floor: floor,
		}
		s.suffixBest = make([]float64, s.n+1)
		for i := s.n - 1; i >= 0; i-- {
			best := 0.0
			for _, c := range sets[i] {
				if c.Sim > best {
					best = c.Sim
				}
			}
			s.suffixBest[i] = s.suffixBest[i+1] + best
		}
		s.run(0, 0)
		floor = s.floor
	}
	out := make([]Mapping, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Mapping)
	}
	Rank(out) // heap pop order is ascending Δ; Rank fixes ties deterministically
	total.Found = int64(len(out))
	return out, total
}

// topNSearch is the adaptive-threshold DFS. It reuses the fields of search
// but maintains its own bound (floor) and result heap.
type topNSearch struct {
	search
	heap  *mappingHeap
	limit int
	floor float64
}

func (s *topNSearch) run(i int, simSum float64) {
	if i == s.n {
		s.ctr.CompleteMappings++
		dsim := simSum / float64(s.n)
		dpath := s.g.ev.DeltaPath(s.union.Size())
		delta := s.g.ev.Combine(dsim, dpath)
		if delta < s.floor {
			return
		}
		m := Mapping{
			Images:    append([]*schema.Node(nil), s.images...),
			Sims:      append([]float64(nil), s.sims...),
			ClusterID: s.cl.ID,
			Score: objective.Score{
				Delta: delta, Sim: dsim, Path: dpath, Et: s.union.Size(),
			},
		}
		heap.Push(s.heap, m)
		if s.heap.Len() > s.limit {
			heap.Pop(s.heap)
			// The heap is full: the weakest kept mapping is the new bound.
			s.floor = (*s.heap)[0].Score.Delta
		}
		return
	}
	personal := s.g.cands.Personal.NodeAt(i)
	parent := personal.Parent()
	for _, c := range s.sets[i] {
		if s.used[c.Node.ID] {
			continue
		}
		s.ctr.PartialMappings++
		var touched []int
		if parent != nil {
			touched = s.union.Push(s.images[parent.Pre], c.Node)
		}
		bound := s.g.ev.Combine(
			(simSum+c.Sim+s.suffixBest[i+1])/float64(s.n),
			s.g.ev.DeltaPath(s.union.Size()),
		)
		if bound >= s.floor {
			s.images[i] = c.Node
			s.sims[i] = c.Sim
			s.used[c.Node.ID] = true
			s.run(i+1, simSum+c.Sim)
			delete(s.used, c.Node.ID)
		}
		if parent != nil {
			s.union.Pop(touched)
		}
	}
}

// mappingHeap is a min-heap on Δ (worst mapping on top) so the N best
// survive.
type mappingHeap []Mapping

func (h mappingHeap) Len() int            { return len(h) }
func (h mappingHeap) Less(i, j int) bool  { return h[i].Score.Delta < h[j].Score.Delta }
func (h mappingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mappingHeap) Push(x interface{}) { *h = append(*h, x.(Mapping)) }
func (h *mappingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
