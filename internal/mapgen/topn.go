package mapgen

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"bellflower/internal/cluster"
	"bellflower/internal/objective"
)

// Top-N search: the paper notes that "schema matching systems are built to
// deliver top-N mappings, or mappings with the similarity index above
// certain numerical threshold δ". Generate implements the δ mode; this
// file implements the top-N mode with an adaptive Branch & Bound whose
// pruning threshold starts at δ and rises to the N-th best Δ found so far.
// This is strictly more efficient than generating everything and
// truncating, and it returns exactly the same top-N list (property- and
// fuzz-tested).
//
// The search is a shared-bound parallel engine:
//
//   - One Δ-floor, read lock-free (an atomic float64) at every prune
//     point, is fed by a mutex-guarded global top-N heap — any worker's
//     discovery tightens every worker's bound.
//   - Clusters are dispatched best-first, in descending order of an
//     optimistic per-cluster upper bound precomputed in one pass over the
//     candidate sets, so the floor rises as fast as possible; a cluster
//     whose bound has fallen below the floor by the time it is dispatched
//     is skipped without ever building its restricted sets.
//   - The heap orders mappings by the full deterministic Rank comparator
//     (not Δ alone), and the floor prunes only on strict "below", so the
//     kept N-set is the unique top-N under the total order — the result
//     is bit-identical (scores AND order) for every worker count, equal
//     to the sequential search and to exhaustive-then-truncate.
//
// Counters caveat: under parallelism PartialMappings/CompleteMappings and
// the skip/tightening stats depend on the floor's trajectory, which
// depends on scheduling — only the mappings, SearchSpace and
// UsefulClusters are schedule-independent.

// GenerateTopN searches the clusters for the n best mappings with
// Δ ≥ the configured threshold. The returned list is ranked. Counters
// reflect the adaptively pruned search.
func (g *Generator) GenerateTopN(clusters []*cluster.Cluster, n int) ([]Mapping, Counters) {
	return g.GenerateTopNParallel(clusters, n, 1, nil)
}

// GenerateTopNStop is GenerateTopN with a cooperative stop hook: stop is
// consulted between clusters, and a true return abandons the search,
// yielding whatever was found so far. A nil stop never stops. This is how
// context cancellation reaches the adaptive search without mapgen
// depending on context. n <= 0 falls back to the threshold-only search,
// still honouring stop between clusters.
func (g *Generator) GenerateTopNStop(clusters []*cluster.Cluster, n int, stop func() bool) ([]Mapping, Counters) {
	return g.GenerateTopNParallel(clusters, n, 1, stop)
}

// GenerateTopNParallel is the adaptive top-N search fanned out over up to
// parallelism workers sharing one adaptive floor. The returned list is
// bit-identical — scores and order — to the sequential search and to
// exhaustive generation truncated to n, for any parallelism (see the
// package comment above for why). stop is consulted between clusters by
// every worker; clusters must be disjoint (any clustering Result is).
// parallelism <= 1 searches inline on the calling goroutine with fully
// deterministic counters; n <= 0 falls back to the threshold-only search.
func (g *Generator) GenerateTopNParallel(clusters []*cluster.Cluster, n, parallelism int, stop func() bool) ([]Mapping, Counters) {
	if n <= 0 {
		return g.generateStop(clusters, stop)
	}
	st := acquireState(g)
	defer st.release()
	var total Counters
	plans := g.planClusters(st, clusters, &total)

	e := &st.eng
	e.g, e.limit = g, n
	e.heap = st.heap[:0]
	e.cursor.Store(0)
	e.partials.Store(0)
	e.completes.Store(0)
	e.skipped.Store(0)
	e.tightenings = 0
	e.floorBits.Store(math.Float64bits(g.cfg.Threshold))

	if parallelism > len(plans) {
		parallelism = len(plans)
	}
	if parallelism <= 1 {
		e.worker(st, plans, stop)
	} else {
		var wg sync.WaitGroup
		wg.Add(parallelism)
		for w := 0; w < parallelism; w++ {
			go func() {
				defer wg.Done()
				ws := acquireState(g)
				defer ws.release()
				e.worker(ws, plans, stop)
			}()
		}
		wg.Wait()
	}

	total.PartialMappings = e.partials.Load()
	total.CompleteMappings = e.completes.Load()
	total.Found = int64(len(e.heap))
	var out []Mapping
	if len(e.heap) > 0 {
		out = append([]Mapping(nil), e.heap...)
		Rank(out)
	}
	st.heap = e.heap[:0] // keep the backing array for the next run
	e.heap, e.g = nil, nil
	if s := g.cfg.Stats; s != nil {
		s.addPartials(total.PartialMappings)
		s.addSkipped(e.skipped.Load())
		s.addTightenings(e.tightenings)
	}
	return out, total
}

// clusterPlan is one useful cluster scheduled for the adaptive search.
type clusterPlan struct {
	cl    *cluster.Cluster
	bound float64 // optimistic upper bound on any mapping's Δ in the cluster
	space float64 // exact Π |restricted set| search-space size
	idx   int32   // original position: the deterministic tie-break
}

// planSorter orders plans by descending bound, original position breaking
// ties; it lives in the pooled state so sort.Sort sees a stable interface
// value and the warm path allocates nothing.
type planSorter struct{ p []clusterPlan }

func (s *planSorter) Len() int { return len(s.p) }
func (s *planSorter) Less(i, j int) bool {
	if s.p[i].bound != s.p[j].bound {
		return s.p[i].bound > s.p[j].bound
	}
	return s.p[i].idx < s.p[j].idx
}
func (s *planSorter) Swap(i, j int) { s.p[i], s.p[j] = s.p[j], s.p[i] }

// planClusters computes, in ONE pass over the candidate sets, every
// cluster's usefulness, exact search-space size and optimistic Δ upper
// bound (cluster-wide best-similarity mass combined with the maximal
// Δpath), using a dense node→cluster map instead of per-cluster member
// scans. UsefulClusters and SearchSpace are credited here for every
// useful cluster — including ones the engine later skips by bound — so
// those counters stay exact and schedule-independent. Non-useful clusters
// yield no plan, matching the threshold search's accounting.
func (g *Generator) planClusters(st *searchState, clusters []*cluster.Cluster, ctr *Counters) []clusterPlan {
	n := st.n
	k := len(clusters)
	st.growPlanScratch(k * n)
	co := st.clusterOf
	for ci, cl := range clusters {
		for i := range cl.Elements {
			co[cl.Elements[i].Node.ID] = int32(ci)
		}
	}
	best, cnt := st.planBest, st.planCount
	for i := 0; i < n; i++ {
		for _, c := range g.cands.Sets[i].Elems {
			ci := co[c.Node.ID]
			if ci < 0 {
				continue
			}
			p := int(ci)*n + i
			if cnt[p] == 0 {
				best[p] = c.Sim // sets are sorted by descending sim
			}
			cnt[p]++
		}
	}
	plans := st.plans[:0]
	for ci, cl := range clusters {
		space, sum := 1.0, 0.0
		ok := true
		row := ci * n
		for i := 0; i < n; i++ {
			c := cnt[row+i]
			if c == 0 {
				ok = false
				break
			}
			space *= float64(c)
			sum += best[row+i]
		}
		if !ok {
			continue
		}
		ctr.UsefulClusters++
		ctr.SearchSpace += space
		plans = append(plans, clusterPlan{
			cl:    cl,
			bound: g.ev.Combine(sum/float64(n), g.ev.DeltaPath(0)),
			space: space,
			idx:   int32(ci),
		})
	}
	// Restore the scratch invariants: clusterOf back to -1, counts to 0.
	for _, cl := range clusters {
		for i := range cl.Elements {
			co[cl.Elements[i].Node.ID] = -1
		}
	}
	for i := range cnt {
		cnt[i] = 0
	}
	st.plans = plans
	st.sorter.p = plans
	sort.Sort(&st.sorter)
	return plans
}

// engine is the shared state of one adaptive top-N run: the global heap
// of kept mappings (mutex-guarded, worst-ranked entry at the root), the
// atomic Δ-floor every worker prunes against, the dispatch cursor over
// the bound-ordered plans, and the work counters. It is embedded in the
// pooled search state, so a warm run allocates no engine either.
type engine struct {
	g     *Generator
	limit int

	mu          sync.Mutex
	heap        []Mapping
	tightenings int64 // guarded by mu

	floorBits atomic.Uint64 // math.Float64bits of the current floor
	cursor    atomic.Int64
	partials  atomic.Int64
	completes atomic.Int64
	skipped   atomic.Int64
}

// floor returns the current pruning bound; lock-free, monotone rising.
func (e *engine) floor() float64 { return math.Float64frombits(e.floorBits.Load()) }

// worker claims clusters off the shared cursor in best-first order until
// the plans run out or stop fires. Clusters whose optimistic bound has
// fallen strictly below the floor are skipped without building their
// restricted sets.
func (e *engine) worker(st *searchState, plans []clusterPlan, stop func() bool) {
	var partials, completes, skipped int64
	for {
		if stop != nil && stop() {
			break
		}
		i := int(e.cursor.Add(1) - 1)
		if i >= len(plans) {
			break
		}
		p := plans[i]
		if p.bound < e.floor() {
			skipped++
			continue
		}
		e.searchCluster(st, p.cl, &partials, &completes)
	}
	e.partials.Add(partials)
	e.completes.Add(completes)
	e.skipped.Add(skipped)
}

func (e *engine) searchCluster(st *searchState, cl *cluster.Cluster, partials, completes *int64) {
	if !e.g.restrictedInto(st, cl) {
		return // unreachable for planned clusters; cheap safety
	}
	st.fillSuffixBest()
	s := topNSearch{e: e, g: e.g, st: st, cl: cl, n: st.n}
	s.run(0, 0)
	*partials += s.partials
	*completes += s.completes
}

// offer submits a complete mapping with Δ ≥ the floor at evaluation time.
// The heap keeps the N first mappings under the full Rank order: while
// not full everything is kept; once full, a newcomer that Rank-precedes
// the current worst displaces it. Either way the floor rises to the
// worst kept Δ — the adaptive tightening every worker observes.
func (e *engine) offer(m Mapping) {
	e.mu.Lock()
	if len(e.heap) < e.limit {
		e.heap = append(e.heap, m)
		e.siftUp(len(e.heap) - 1)
		if len(e.heap) == e.limit {
			e.tighten(e.heap[0].Score.Delta)
		}
	} else if rankLess(&m, &e.heap[0]) {
		e.heap[0] = m
		e.siftDown(0)
		e.tighten(e.heap[0].Score.Delta)
	}
	e.mu.Unlock()
}

// tighten raises the shared floor to f (caller holds mu). The floor never
// falls: the heap's worst entry only ever improves.
func (e *engine) tighten(f float64) {
	if f > e.floor() {
		e.floorBits.Store(math.Float64bits(f))
		e.tightenings++
	}
}

// heapWorse reports whether heap[i] ranks strictly after heap[j] under
// the full deterministic comparator; the Rank-last element sits at the
// root. No interface boxing — the heap is a plain []Mapping.
func (e *engine) heapWorse(i, j int) bool { return rankLess(&e.heap[j], &e.heap[i]) }

func (e *engine) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.heapWorse(i, p) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

func (e *engine) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(e.heap) && e.heapWorse(l, w) {
			w = l
		}
		if r < len(e.heap) && e.heapWorse(r, w) {
			w = r
		}
		if w == i {
			break
		}
		e.heap[i], e.heap[w] = e.heap[w], e.heap[i]
		i = w
	}
}

// topNSearch is the adaptive-threshold DFS: the threshold search with the
// static δ replaced by the engine's rising floor, read lock-free at every
// prune point. Pruning is strict (bound < floor) so equal-Δ ties are
// decided by the heap's full comparator, never by the schedule.
type topNSearch struct {
	e  *engine
	g  *Generator
	st *searchState
	cl *cluster.Cluster
	n  int

	partials  int64
	completes int64
}

func (s *topNSearch) run(i int, simSum float64) {
	st := s.st
	if i == s.n {
		s.completes++
		dsim := simSum / float64(s.n)
		dpath := s.g.ev.DeltaPath(st.union.Size())
		delta := s.g.ev.Combine(dsim, dpath)
		if delta < s.e.floor() {
			return
		}
		images, sims := st.emit(st.images, st.sims)
		s.e.offer(Mapping{
			Images:    images,
			Sims:      sims,
			ClusterID: s.cl.ID,
			Score: objective.Score{
				Delta: delta, Sim: dsim, Path: dpath, Et: st.union.Size(),
			},
		})
		return
	}
	personal := s.g.cands.Personal.NodeAt(i)
	parent := personal.Parent()
	for _, c := range st.sets[i] {
		if st.used.Has(c.Node.ID) {
			continue
		}
		s.partials++
		mark := -1
		if parent != nil {
			mark = st.union.Push(st.images[parent.Pre], c.Node)
		}
		bound := s.g.ev.Combine(
			(simSum+c.Sim+st.suffixBest[i+1])/float64(s.n),
			s.g.ev.DeltaPath(st.union.Size()),
		)
		if bound >= s.e.floor() {
			st.images[i] = c.Node
			st.sims[i] = c.Sim
			st.used.Set(c.Node.ID)
			s.run(i+1, simSum+c.Sim)
			st.used.Unset(c.Node.ID)
		}
		if parent != nil {
			st.union.Pop(mark)
		}
	}
}
