package mapgen

import (
	"testing"

	"bellflower/internal/objective"
)

// tagged builds a mapping with the given Δ and a ClusterID tag so tests can
// trace which input list an output entry came from.
func tagged(delta float64, tag int) Mapping {
	return Mapping{Score: objective.Score{Delta: delta}, ClusterID: tag}
}

func deltasOf(ms []Mapping) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.Score.Delta
	}
	return out
}

func assertRanked(t *testing.T, ms []Mapping) {
	t.Helper()
	for i := 1; i < len(ms); i++ {
		if ms[i].Score.Delta > ms[i-1].Score.Delta {
			t.Fatalf("merged list not sorted at %d: %v > %v", i, ms[i].Score.Delta, ms[i-1].Score.Delta)
		}
	}
}

func TestMergeRankedOrderingAndStability(t *testing.T) {
	lists := [][]Mapping{
		{tagged(0.9, 100), tagged(0.7, 101), tagged(0.5, 102)},
		{tagged(0.8, 200), tagged(0.7, 201)},
		{tagged(0.7, 300)},
	}
	got := MergeRanked(lists, 0)
	if len(got) != 6 {
		t.Fatalf("merged %d mappings, want 6", len(got))
	}
	assertRanked(t, got)
	// Equal-Δ ties resolve by list index: 0.7 entries come out in list order.
	wantTags := []int{100, 200, 101, 201, 300, 102}
	for i, m := range got {
		if m.ClusterID != wantTags[i] {
			t.Errorf("position %d: tag %d, want %d (ties must prefer earlier lists)", i, m.ClusterID, wantTags[i])
		}
	}
}

func TestMergeRankedTopN(t *testing.T) {
	lists := [][]Mapping{
		{tagged(0.9, 0), tagged(0.6, 1)},
		{tagged(0.8, 2), tagged(0.7, 3)},
	}
	got := MergeRanked(lists, 3)
	if want := []float64{0.9, 0.8, 0.7}; len(got) != 3 ||
		got[0].Score.Delta != want[0] || got[1].Score.Delta != want[1] || got[2].Score.Delta != want[2] {
		t.Errorf("top-3 deltas = %v, want %v", deltasOf(got), want)
	}
	if got := MergeRanked(lists, 100); len(got) != 4 {
		t.Errorf("topN beyond total truncated to %d", len(got))
	}
}

func TestMergeRankedEmptyInputs(t *testing.T) {
	if got := MergeRanked(nil, 0); got != nil {
		t.Errorf("nil lists merged to %v", got)
	}
	if got := MergeRanked([][]Mapping{nil, {}, nil}, 5); got != nil {
		t.Errorf("all-empty lists merged to %v", got)
	}
	// Empty shards interleaved with live ones must just be skipped.
	got := MergeRanked([][]Mapping{nil, {tagged(0.8, 1)}, {}, {tagged(0.9, 2)}}, 0)
	if len(got) != 2 || got[0].ClusterID != 2 || got[1].ClusterID != 1 {
		t.Errorf("merge with empty shards = %v", got)
	}
}

func TestMergeRankedSingleListCopies(t *testing.T) {
	src := []Mapping{tagged(0.9, 1), tagged(0.8, 2)}
	got := MergeRanked([][]Mapping{nil, src}, 1)
	if len(got) != 1 || got[0].ClusterID != 1 {
		t.Fatalf("single-list merge = %v", got)
	}
	// The fast path must still return a fresh slice: merged reports are
	// mutated independently of the per-shard cached reports.
	got[0].ClusterID = 777
	if src[0].ClusterID != 1 {
		t.Error("merge aliased the input list")
	}
}

func TestMergeRankedDuplicatesPreserved(t *testing.T) {
	// Two shards holding copies of the same schema tree discover the same
	// mapping; both survive the merge, exactly as Rank keeps mappings of
	// duplicated trees within one repository.
	dup := tagged(0.75, 9)
	got := MergeRanked([][]Mapping{{dup}, {dup}}, 0)
	if len(got) != 2 || got[0].Score.Delta != 0.75 || got[1].Score.Delta != 0.75 {
		t.Fatalf("duplicates not preserved: %v", got)
	}
	assertRanked(t, got)
}
