package mapgen

import (
	"math/rand"
	"sort"
	"testing"

	"bellflower/internal/objective"
)

// FuzzMergeRanked drives the k-way ranked merge with randomized input
// lists (seeded, so every failure reproduces) and checks the merge
// contract the Router depends on:
//
//   - the output length is the total input size, truncated to topN;
//   - Δ is non-increasing;
//   - each input list's mappings keep their relative order (stability);
//   - within a maximal equal-Δ run, earlier lists come first;
//   - the output Δ sequence equals the combined input Δ multiset sorted
//     descending (truncated), and every output mapping is one of the
//     inputs, never duplicated or invented.
//
// Mappings are tagged through ClusterID = 1000*list + position, which the
// merge must pass through untouched.
func FuzzMergeRanked(f *testing.F) {
	f.Add(int64(1), uint8(3), int16(0))
	f.Add(int64(2), uint8(1), int16(5))
	f.Add(int64(3), uint8(6), int16(3))
	f.Add(int64(42), uint8(0), int16(-1))
	f.Fuzz(func(t *testing.T, seed int64, numLists uint8, topN int16) {
		rng := rand.New(rand.NewSource(seed))
		lists := make([][]Mapping, int(numLists)%7)
		var allDeltas []float64
		total := 0
		for li := range lists {
			n := rng.Intn(9)
			deltas := make([]float64, n)
			for i := range deltas {
				// A coarse grid forces plenty of cross-list ties.
				deltas[i] = float64(rng.Intn(5)) / 4
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(deltas)))
			for i, d := range deltas {
				lists[li] = append(lists[li], Mapping{
					Score:     objective.Score{Delta: d},
					ClusterID: 1000*li + i,
				})
			}
			allDeltas = append(allDeltas, deltas...)
			total += n
		}

		merged := MergeRanked(lists, int(topN))

		want := total
		if tn := int(topN); tn > 0 && tn < want {
			want = tn
		}
		if len(merged) != want {
			t.Fatalf("merged %d mappings, want %d (total %d, topN %d)", len(merged), want, total, topN)
		}

		sort.Sort(sort.Reverse(sort.Float64Slice(allDeltas)))
		lastPos := make(map[int]int) // list -> last seen position
		seen := make(map[int]bool)   // ClusterID tags
		for i, m := range merged {
			if m.Score.Delta != allDeltas[i] {
				t.Fatalf("rank %d: Δ=%v, want %v (not the global ranking)", i, m.Score.Delta, allDeltas[i])
			}
			li, pos := m.ClusterID/1000, m.ClusterID%1000
			if li < 0 || li >= len(lists) || pos >= len(lists[li]) ||
				lists[li][pos].Score.Delta != m.Score.Delta {
				t.Fatalf("rank %d: mapping tag %d does not identify an input", i, m.ClusterID)
			}
			if seen[m.ClusterID] {
				t.Fatalf("rank %d: mapping tag %d emitted twice", i, m.ClusterID)
			}
			seen[m.ClusterID] = true
			if last, ok := lastPos[li]; ok && pos <= last {
				t.Fatalf("rank %d: list %d position %d after %d (stability broken)", i, li, pos, last)
			}
			lastPos[li] = pos
			if i > 0 && merged[i-1].Score.Delta == m.Score.Delta {
				prevList := merged[i-1].ClusterID / 1000
				if prevList > li {
					t.Fatalf("rank %d: tie resolved to list %d after list %d", i, li, prevList)
				}
			}
		}
	})
}
