package mapgen

import "container/heap"

// MergeRanked merges mapping lists that are each already ranked (the order
// produced by Rank: descending Δ with deterministic tie-breaking) into one
// ranked list, truncated to the best topN entries when topN > 0.
//
// The merge is deterministic and stable: mappings keep their within-list
// order, and when mappings from different lists tie on Δ the one from the
// earlier list wins. Node IDs and cluster IDs are only comparable within one
// list (each shard of a sharded repository assigns its own dense IDs), so
// cross-list ties are resolved by list position rather than by the ID-based
// tie-breaking Rank applies within a list.
//
// Duplicate mappings — the same Δ and images discovered by more than one
// list, e.g. because two shards hold copies of the same schema tree — are
// preserved, exactly as Rank preserves mappings of duplicated trees within
// one repository.
func MergeRanked(lists [][]Mapping, topN int) []Mapping {
	total := 0
	nonEmpty := 0
	for _, l := range lists {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
		}
	}
	if total == 0 {
		return nil
	}
	want := total
	if topN > 0 && topN < want {
		want = topN
	}
	if nonEmpty == 1 {
		for _, l := range lists {
			if len(l) > 0 {
				return append([]Mapping(nil), l[:want]...)
			}
		}
	}

	h := make(mergeHeap, 0, nonEmpty)
	for i, l := range lists {
		if len(l) > 0 {
			h = append(h, mergeCursor{list: i, mappings: l})
		}
	}
	heap.Init(&h)
	out := make([]Mapping, 0, want)
	for len(out) < want {
		cur := &h[0]
		out = append(out, cur.mappings[cur.pos])
		cur.pos++
		if cur.pos == len(cur.mappings) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// mergeCursor is one input list's read position in the k-way merge.
type mergeCursor struct {
	list     int
	mappings []Mapping
	pos      int
}

// mergeHeap is a min-heap whose top is the next mapping of the merged order:
// highest Δ first, earlier list first on ties.
type mergeHeap []mergeCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].mappings[h[i].pos], h[j].mappings[h[j].pos]
	if a.Score.Delta != b.Score.Delta {
		return a.Score.Delta > b.Score.Delta
	}
	return h[i].list < h[j].list
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
