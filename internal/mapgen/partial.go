package mapgen

import (
	"math"

	"bellflower/internal/cluster"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/schema"
)

// PartialMapping is a schema mapping restricted to the personal nodes a
// non-useful cluster can cover (the extension sketched in Sec. 2.3 of the
// paper: "the definition of a schema mapping should be extended with a
// notion of partial schema mapping ... Such partial mappings might,
// nevertheless, be valuable to the user").
//
// Semantics: only personal nodes present in CoveredMask are mapped. The
// personal tree is contracted onto the covered nodes — each covered
// non-root node connects to its nearest covered ancestor — and Δpath is
// computed over the contracted edges. Δsim averages over all |Ns| personal
// nodes, counting missing nodes as similarity 0, so partial mappings never
// outscore a complete mapping with the same per-node similarities.
type PartialMapping struct {
	// Images[i] is the image of personal preorder rank i, or nil when the
	// node is not covered.
	Images []*schema.Node

	// Sims[i] is the element similarity of the pair (0 when uncovered).
	Sims []float64

	// CoveredMask has bit i set when personal preorder rank i is mapped.
	CoveredMask uint64

	// Covered is the number of mapped personal nodes.
	Covered int

	// Score is the decomposed objective value under the contracted-tree
	// semantics above.
	Score objective.Score

	// ClusterID identifies the source cluster.
	ClusterID int
}

// GeneratePartialInCluster searches a (typically non-useful) cluster for
// partial mappings over exactly the personal nodes that have candidates in
// the cluster. Returns nil when fewer than two personal nodes are covered
// or when the covered set does not include the personal root's nearest
// covered representative (a single mapped node is not an informative
// partial mapping). Counters are accumulated like in GenerateInCluster.
func (g *Generator) GeneratePartialInCluster(cl *cluster.Cluster) ([]PartialMapping, Counters) {
	sets, _ := g.restricted(cl)
	n := g.cands.Personal.Len()

	covered := make([]bool, n)
	numCovered := 0
	var mask uint64
	for i := 0; i < n; i++ {
		if len(sets[i]) > 0 {
			covered[i] = true
			numCovered++
			mask |= 1 << uint(i)
		}
	}
	if numCovered < 2 {
		return nil, Counters{}
	}

	// Contract the personal tree: for each covered non-"local root" node,
	// find the nearest covered proper ancestor.
	var edges []contractedEdge
	for _, node := range g.cands.Personal.Nodes() {
		if !covered[node.Pre] {
			continue
		}
		for p := node.Parent(); p != nil; p = p.Parent() {
			if covered[p.Pre] {
				edges = append(edges, contractedEdge{p.Pre, node.Pre})
				break
			}
		}
	}

	order := make([]int, 0, numCovered)
	for i := 0; i < n; i++ {
		if covered[i] {
			order = append(order, i)
		}
	}
	// Preorder over covered nodes keeps contracted parents before children.
	es := len(edges)
	ctr := Counters{}
	space := 1.0
	for _, i := range order {
		space *= float64(len(sets[i]))
	}
	ctr.SearchSpace = space

	ps := &partialSearch{
		g: g, cl: cl, sets: sets, order: order, edges: edges, es: es,
		images: make([]*schema.Node, n),
		sims:   make([]float64, n),
		used:   make(map[int]bool),
		union:  objective.NewEdgeUnion(g.ix),
		ctr:    &ctr,
		n:      n, mask: mask, numCovered: numCovered,
	}
	ps.suffixBest = make([]float64, len(order)+1)
	for k := len(order) - 1; k >= 0; k-- {
		best := 0.0
		for _, c := range sets[order[k]] {
			if c.Sim > best {
				best = c.Sim
			}
		}
		ps.suffixBest[k] = ps.suffixBest[k+1] + best
	}
	ps.run(0, 0)
	ctr.Found = int64(len(ps.out))
	return ps.out, ctr
}

// contractedEdge is an edge of the personal tree contracted onto the
// covered nodes; parent and child are personal preorder ranks.
type contractedEdge struct{ parent, child int }

type partialSearch struct {
	g          *Generator
	cl         *cluster.Cluster
	sets       [][]matcher.Candidate
	order      []int // covered preorder ranks, ascending
	edges      []contractedEdge
	es         int
	images     []*schema.Node
	sims       []float64
	used       map[int]bool
	union      *objective.EdgeUnion
	suffixBest []float64
	ctr        *Counters
	out        []PartialMapping
	n          int
	mask       uint64
	numCovered int
}

// deltaPath applies Eq. 2 over the contracted edge count.
func (ps *partialSearch) deltaPath(et int) float64 {
	if ps.es == 0 {
		return 1
	}
	d := 1 - float64(et-ps.es)/(float64(ps.es)*ps.g.ev.Params().K)
	return math.Max(0, math.Min(1, d))
}

func (ps *partialSearch) run(k int, simSum float64) {
	if k == len(ps.order) {
		ps.ctr.CompleteMappings++
		dsim := simSum / float64(ps.n) // missing nodes count as 0
		dpath := ps.deltaPath(ps.union.Size())
		delta := ps.g.ev.Combine(dsim, dpath)
		if delta >= ps.g.cfg.Threshold {
			pm := PartialMapping{
				Images:      append([]*schema.Node(nil), ps.images...),
				Sims:        append([]float64(nil), ps.sims...),
				CoveredMask: ps.mask,
				Covered:     ps.numCovered,
				ClusterID:   ps.cl.ID,
				Score: objective.Score{
					Delta: delta, Sim: dsim, Path: dpath, Et: ps.union.Size(),
				},
			}
			ps.out = append(ps.out, pm)
		}
		return
	}
	i := ps.order[k]
	// contracted parent of i, if any
	parent := -1
	for _, e := range ps.edges {
		if e.child == i {
			parent = e.parent
			break
		}
	}
	for _, c := range ps.sets[i] {
		if ps.used[c.Node.ID] {
			continue
		}
		ps.ctr.PartialMappings++
		var touched []int
		if parent >= 0 {
			touched = ps.union.Push(ps.images[parent], c.Node)
		}
		prune := false
		if ps.g.cfg.Algorithm == BranchAndBound {
			bound := ps.g.ev.Combine(
				(simSum+c.Sim+ps.suffixBest[k+1])/float64(ps.n),
				ps.deltaPath(ps.union.Size()),
			)
			prune = bound < ps.g.cfg.Threshold
		}
		if !prune {
			ps.images[i] = c.Node
			ps.sims[i] = c.Sim
			ps.used[c.Node.ID] = true
			ps.run(k+1, simSum+c.Sim)
			delete(ps.used, c.Node.ID)
			ps.images[i] = nil
			ps.sims[i] = 0
		}
		if parent >= 0 {
			ps.union.Pop(touched)
		}
	}
}
