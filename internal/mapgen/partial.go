package mapgen

import (
	"math"

	"bellflower/internal/cluster"
	"bellflower/internal/objective"
	"bellflower/internal/schema"
)

// PartialMapping is a schema mapping restricted to the personal nodes a
// non-useful cluster can cover (the extension sketched in Sec. 2.3 of the
// paper: "the definition of a schema mapping should be extended with a
// notion of partial schema mapping ... Such partial mappings might,
// nevertheless, be valuable to the user").
//
// Semantics: only personal nodes present in CoveredMask are mapped. The
// personal tree is contracted onto the covered nodes — each covered
// non-root node connects to its nearest covered ancestor — and Δpath is
// computed over the contracted edges. Δsim averages over all |Ns| personal
// nodes, counting missing nodes as similarity 0, so partial mappings never
// outscore a complete mapping with the same per-node similarities.
type PartialMapping struct {
	// Images[i] is the image of personal preorder rank i, or nil when the
	// node is not covered.
	Images []*schema.Node

	// Sims[i] is the element similarity of the pair (0 when uncovered).
	Sims []float64

	// CoveredMask has bit i set when personal preorder rank i is mapped.
	CoveredMask uint64

	// Covered is the number of mapped personal nodes.
	Covered int

	// Score is the decomposed objective value under the contracted-tree
	// semantics above.
	Score objective.Score

	// ClusterID identifies the source cluster.
	ClusterID int
}

// GeneratePartialInCluster searches a (typically non-useful) cluster for
// partial mappings over exactly the personal nodes that have candidates in
// the cluster. Returns nil when fewer than two personal nodes are covered
// (a single mapped node is not an informative partial mapping). Counters
// are accumulated like in GenerateInCluster. The DFS runs on the same
// pooled search state as the complete-mapping searches — dense bitset for
// the 1-to-1 check, dense edge union, pooled suffixBest.
func (g *Generator) GeneratePartialInCluster(cl *cluster.Cluster) ([]PartialMapping, Counters) {
	st := acquireState(g)
	defer st.release()
	g.restrictedInto(st, cl) // fills every set; coverage decided below
	n := st.n

	var mask uint64
	numCovered := 0
	for i := 0; i < n; i++ {
		st.images[i] = nil
		st.sims[i] = 0
		if len(st.sets[i]) > 0 {
			numCovered++
			mask |= 1 << uint(i)
		}
	}
	if numCovered < 2 {
		return nil, Counters{}
	}

	// Contract the personal tree: for each covered non-"local root" node,
	// find the nearest covered proper ancestor.
	var edges []contractedEdge
	for _, node := range g.cands.Personal.Nodes() {
		if mask&(1<<uint(node.Pre)) == 0 {
			continue
		}
		for p := node.Parent(); p != nil; p = p.Parent() {
			if mask&(1<<uint(p.Pre)) != 0 {
				edges = append(edges, contractedEdge{p.Pre, node.Pre})
				break
			}
		}
	}

	// Preorder over covered nodes keeps contracted parents before children.
	order := make([]int, 0, numCovered)
	for i := 0; i < n; i++ {
		if mask&(1<<uint(i)) != 0 {
			order = append(order, i)
		}
	}
	ctr := Counters{}
	space := 1.0
	for _, i := range order {
		space *= float64(len(st.sets[i]))
	}
	ctr.SearchSpace = space

	ps := &partialSearch{
		g: g, st: st, cl: cl, order: order, edges: edges, es: len(edges),
		ctr: &ctr, n: n, mask: mask, numCovered: numCovered,
	}
	sb := st.suffixBest[:len(order)+1]
	sb[len(order)] = 0
	for k := len(order) - 1; k >= 0; k-- {
		best := 0.0
		if s := st.sets[order[k]]; len(s) > 0 {
			best = s[0].Sim // restricted sets keep descending-sim order
		}
		sb[k] = sb[k+1] + best
	}
	ps.run(0, 0)
	ctr.Found = int64(len(ps.out))
	g.cfg.Stats.addPartials(ctr.PartialMappings)
	return ps.out, ctr
}

// contractedEdge is an edge of the personal tree contracted onto the
// covered nodes; parent and child are personal preorder ranks.
type contractedEdge struct{ parent, child int }

type partialSearch struct {
	g          *Generator
	st         *searchState
	cl         *cluster.Cluster
	order      []int // covered preorder ranks, ascending
	edges      []contractedEdge
	es         int
	ctr        *Counters
	out        []PartialMapping
	n          int
	mask       uint64
	numCovered int
}

// deltaPath applies Eq. 2 over the contracted edge count.
func (ps *partialSearch) deltaPath(et int) float64 {
	if ps.es == 0 {
		return 1
	}
	d := 1 - float64(et-ps.es)/(float64(ps.es)*ps.g.ev.Params().K)
	return math.Max(0, math.Min(1, d))
}

func (ps *partialSearch) run(k int, simSum float64) {
	st := ps.st
	if k == len(ps.order) {
		ps.ctr.CompleteMappings++
		dsim := simSum / float64(ps.n) // missing nodes count as 0
		dpath := ps.deltaPath(st.union.Size())
		delta := ps.g.ev.Combine(dsim, dpath)
		if delta >= ps.g.cfg.Threshold {
			images, sims := st.emit(st.images, st.sims)
			pm := PartialMapping{
				Images:      images,
				Sims:        sims,
				CoveredMask: ps.mask,
				Covered:     ps.numCovered,
				ClusterID:   ps.cl.ID,
				Score: objective.Score{
					Delta: delta, Sim: dsim, Path: dpath, Et: st.union.Size(),
				},
			}
			ps.out = append(ps.out, pm)
		}
		return
	}
	i := ps.order[k]
	// contracted parent of i, if any
	parent := -1
	for _, e := range ps.edges {
		if e.child == i {
			parent = e.parent
			break
		}
	}
	for _, c := range st.sets[i] {
		if st.used.Has(c.Node.ID) {
			continue
		}
		ps.ctr.PartialMappings++
		mark := -1
		if parent >= 0 {
			mark = st.union.Push(st.images[parent], c.Node)
		}
		prune := false
		if ps.g.cfg.Algorithm == BranchAndBound {
			bound := ps.g.ev.Combine(
				(simSum+c.Sim+st.suffixBest[k+1])/float64(ps.n),
				ps.deltaPath(st.union.Size()),
			)
			prune = bound < ps.g.cfg.Threshold
		}
		if !prune {
			st.images[i] = c.Node
			st.sims[i] = c.Sim
			st.used.Set(c.Node.ID)
			ps.run(k+1, simSum+c.Sim)
			st.used.Unset(c.Node.ID)
			st.images[i] = nil
			st.sims[i] = 0
		}
		if parent >= 0 {
			st.union.Pop(mark)
		}
	}
}
