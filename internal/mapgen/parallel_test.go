package mapgen

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/objective"
	"bellflower/internal/schema"
	"bellflower/internal/strsim"
)

// mappingsIdentical asserts full bit-identity — scores, order, cluster,
// images, sims — the guarantee GenerateTopNParallel makes for every
// worker count.
func mappingsIdentical(t *testing.T, label string, got, want []Mapping) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d mappings, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := &got[i], &want[i]
		if g.Score != w.Score || g.ClusterID != w.ClusterID {
			t.Fatalf("%s: rank %d: %+v / cluster %d, want %+v / cluster %d",
				label, i, g.Score, g.ClusterID, w.Score, w.ClusterID)
		}
		for k := range g.Images {
			if g.Images[k].ID != w.Images[k].ID || g.Sims[k] != w.Sims[k] {
				t.Fatalf("%s: rank %d image %d: node %d sim %v, want node %d sim %v",
					label, i, k, g.Images[k].ID, g.Sims[k], w.Images[k].ID, w.Sims[k])
			}
		}
	}
}

// randomCase builds a random repository, candidate set and clustering from
// a seed; shared by the property test and the fuzz harness.
func randomCase(seed int64) (*labeling.Index, *objective.Evaluator, *matcher.Candidates, []*cluster.Cluster) {
	words := []string{"book", "title", "author", "name", "data", "isbn", "press"}
	rng := rand.New(rand.NewSource(seed))
	repo := schema.NewRepository()
	for tr := 0; tr < 1+rng.Intn(4); tr++ {
		b := schema.NewBuilder("t")
		nodes := []*schema.Node{b.Root(words[rng.Intn(len(words))])}
		for i := 1; i < 3+rng.Intn(14); i++ {
			p := nodes[rng.Intn(len(nodes))]
			nodes = append(nodes, b.Element(p, words[rng.Intn(len(words))]))
		}
		repo.MustAdd(b.MustTree())
	}
	personal := schema.MustParseSpec("book(title,author,press)")
	ix := labeling.NewIndex(repo)
	matchers := []matcher.Matcher{
		matcher.NameMatcher{},
		matcher.NameMatcher{Metric: strsim.MetricJaroWinkler},
		matcher.NameMatcher{TokenAware: true, Metric: strsim.MetricBigramCosine},
	}
	cands := matcher.FindCandidates(personal, repo, matchers[rng.Intn(len(matchers))],
		matcher.Config{MinSim: 0.3})
	ev := objective.NewEvaluator(objective.DefaultParams(), ix, personal)
	var clusters []*cluster.Cluster
	if rng.Intn(2) == 0 {
		clusters = cluster.TreeClusters(ix, cands).Clusters
	} else if res, err := cluster.KMeans(ix, cands, cluster.DefaultConfig()); err == nil {
		clusters = res.Clusters
	}
	return ix, ev, cands, clusters
}

// checkParallelEquivalence runs the three-way identity — parallel adaptive
// ≡ sequential adaptive ≡ exhaustive-then-truncate — for one seeded case
// and reports whether it held.
func checkParallelEquivalence(t *testing.T, seed int64, n int, threshold float64) {
	t.Helper()
	ix, ev, cands, clusters := randomCase(seed)

	exh, _ := New(Config{Threshold: threshold, Algorithm: Exhaustive}, ix, ev, cands).Generate(clusters)
	if len(exh) > n {
		exh = exh[:n]
	}
	seq, seqCtr := New(Config{Threshold: threshold}, ix, ev, cands).GenerateTopN(clusters, n)
	mappingsIdentical(t, "sequential vs exhaustive", seq, exh)

	for _, par := range []int{2, 3, 4, 8} {
		got, ctr := New(Config{Threshold: threshold}, ix, ev, cands).GenerateTopNParallel(clusters, n, par, nil)
		mappingsIdentical(t, "parallel", got, seq)
		if ctr.SearchSpace != seqCtr.SearchSpace || ctr.UsefulClusters != seqCtr.UsefulClusters {
			t.Fatalf("parallelism %d: space %v / useful %d, want %v / %d (schedule leaked into exact counters)",
				par, ctr.SearchSpace, ctr.UsefulClusters, seqCtr.SearchSpace, seqCtr.UsefulClusters)
		}
	}
}

// Property: for random repositories, matchers, clusterings, N and δ, the
// parallel adaptive search returns results bit-identical to the
// sequential adaptive search and to exhaustive generation truncated to N,
// for every parallelism, and the schedule-independent counters agree.
func TestGenerateTopNParallelEquivalence(t *testing.T) {
	thresholds := []float64{0, 0.3, 0.5, 0.75, 0.9}
	f := func(seed int64, nRaw, thRaw uint8) bool {
		n := 1 + int(nRaw)%9
		checkParallelEquivalence(t, seed, n, thresholds[int(thRaw)%len(thresholds)])
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzGenerateTopNParallel is the fuzz-harness form of the equivalence
// property, so the corpus can grow counterexamples across runs.
func FuzzGenerateTopNParallel(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(0))
	f.Add(int64(7), uint8(3), uint8(2))
	f.Add(int64(42), uint8(8), uint8(4))
	f.Add(int64(-99), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, thRaw uint8) {
		thresholds := []float64{0, 0.3, 0.5, 0.75, 0.9}
		checkParallelEquivalence(t, seed, 1+int(nRaw)%9, thresholds[int(thRaw)%len(thresholds)])
	})
}

// TestGenerateTopNParallelCancellation races workers against a stop signal
// that fires mid-search; under -race this doubles as the engine's data-race
// stress. Whatever survives must still be a prefix-consistent ranked list.
func TestGenerateTopNParallelCancellation(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ix, ev, cands, clusters := randomCase(seed)
		g := New(Config{Threshold: 0.3}, ix, ev, cands)
		var calls atomic.Int64
		cutoff := seed % 5 // stop after 0..4 stop-hook consultations
		ms, _ := g.GenerateTopNParallel(clusters, 5, 4, func() bool {
			return calls.Add(1) > cutoff
		})
		for i := 1; i < len(ms); i++ {
			if rankLess(&ms[i], &ms[i-1]) {
				t.Fatalf("seed %d: cancelled result unranked at %d", seed, i)
			}
		}
	}
}

// allocFix returns a generator whose searches do real work (partial
// mappings are generated) but keep no mapping — the configuration the
// zero-allocation pins measure, so result copies don't hide a leak in the
// search machinery itself.
func allocFix(t *testing.T) (*Generator, []*cluster.Cluster) {
	t.Helper()
	f := newFix(t, objective.DefaultParams(), 0.3,
		"book(title,author)",
		"lib(bok(titel,autor),bok(ttl,athr))",
		"store(dept(bok(titel)))")
	g := f.gen(Config{Threshold: 0.999})
	clusters := f.treeClusters()
	_, ctr := g.Generate(clusters)
	if ctr.PartialMappings == 0 || ctr.Found != 0 {
		t.Fatalf("alloc fixture must search without keeping: %+v", ctr)
	}
	return g, clusters
}

// The warm search paths must not allocate: state comes from the pool, the
// restricted sets, bitsets, edge union and heap reuse their backing
// arrays. Guards the tentpole's zero-allocation claim.
func TestSearchAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g, clusters := allocFix(t)
	g.GenerateTopN(clusters, 3) // warm the pool and every backing array

	if n := testing.AllocsPerRun(50, func() { g.Generate(clusters) }); n > 0 {
		t.Errorf("warm Generate allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(50, func() { g.GenerateTopN(clusters, 3) }); n > 0 {
		t.Errorf("warm GenerateTopN allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(50, func() { g.GenerateInCluster(clusters[0]) }); n > 0 {
		t.Errorf("warm GenerateInCluster allocates %v times per run", n)
	}
}
