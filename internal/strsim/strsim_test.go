package strsim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCompareStringFuzzyBasics(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "", 0},
		{"", "a", 0},
		{"book", "book", 1},
		{"Book", "book", 1},    // case-insensitive
		{"BOOK", "bOoK", 1},    // case-insensitive
		{"book", "bok", 0.75},  // 1 deletion over max len 4
		{"book", "boko", 0.75}, // 1 transposition over len 4
		{"abcd", "abdc", 0.75}, // transposition counts once
		{"abcd", "wxyz", 0},    // all substitutions
	}
	for _, tc := range tests {
		if got := CompareStringFuzzy(tc.a, tc.b); !close(got, tc.want) {
			t.Errorf("CompareStringFuzzy(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"ca", "abc", 3}, // classic OSA example (not 2 as in full DL)
		{"abcdef", "abdcef", 1},
		{"author", "authorName", 4},
	}
	for _, tc := range tests {
		if got := Distance(tc.a, tc.b); got != tc.want {
			t.Errorf("Distance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"authorName", "author name"},
		{"author_name", "author name"},
		{"author-name", "author name"},
		{"AuthorName", "author name"},
		{"XMLSchema", "xml schema"},
		{"ISBN13", "isbn 13"},
		{"isbn_13-code", "isbn 13 code"},
		{"book", "book"},
		{"", ""},
		{"a.b:c/d", "a b c d"},
		{"HTTPServer2Go", "http server 2 go"},
	}
	for _, tc := range tests {
		got := strings.Join(Tokenize(tc.in), " ")
		if got != tc.want {
			t.Errorf("Tokenize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTokenSimilarity(t *testing.T) {
	if got := TokenSimilarity("authorName", "author_name"); !close(got, 1) {
		t.Errorf("authorName vs author_name = %v, want 1", got)
	}
	if got := TokenSimilarity("nameOfAuthor", "authorName"); got < 0.6 {
		t.Errorf("reordered compound similarity = %v, want >= 0.6", got)
	}
	if got := TokenSimilarity("book", "zzz"); got > 0.3 {
		t.Errorf("dissimilar tokens = %v, want small", got)
	}
	if got := TokenSimilarity("", ""); !close(got, 1) {
		t.Errorf("empty vs empty = %v", got)
	}
	if got := TokenSimilarity("a", ""); !close(got, 0) {
		t.Errorf("a vs empty = %v", got)
	}
}

func TestTrigramSimilarity(t *testing.T) {
	if got := TrigramSimilarity("book", "book"); !close(got, 1) {
		t.Errorf("identical = %v", got)
	}
	if got := TrigramSimilarity("", ""); !close(got, 1) {
		t.Errorf("both empty = %v", got)
	}
	if got := TrigramSimilarity("book", ""); !close(got, 0) {
		t.Errorf("one empty = %v", got)
	}
	sim := TrigramSimilarity("address", "addresses")
	dis := TrigramSimilarity("address", "quantum")
	if sim <= dis {
		t.Errorf("trigram ordering wrong: sim=%v dis=%v", sim, dis)
	}
}

func TestNameSimilarityDominates(t *testing.T) {
	// NameSimilarity is the max of its components, so it can never be
	// smaller than either.
	pairs := [][2]string{
		{"authorName", "author"},
		{"email", "e-mail"},
		{"tel", "telephone"},
		{"address", "addr"},
	}
	for _, p := range pairs {
		n := NameSimilarity(p[0], p[1])
		if n < CompareStringFuzzy(p[0], p[1]) || n < TokenSimilarity(p[0], p[1]) {
			t.Errorf("NameSimilarity(%q,%q) = %v below a component", p[0], p[1], n)
		}
	}
}

func randString(rng *rand.Rand, n int) string {
	letters := "abcdefgXYZ_-"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// Property: similarity is symmetric, bounded in [0,1], and 1 for identical
// strings (after folding).
func TestFuzzySimilarityProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randString(rng, rng.Intn(12))
		b := randString(rng, rng.Intn(12))
		sab := CompareStringFuzzy(a, b)
		sba := CompareStringFuzzy(b, a)
		if !close(sab, sba) {
			return false
		}
		if sab < 0 || sab > 1 {
			return false
		}
		if !close(CompareStringFuzzy(a, a), 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: OSA distance is a metric-ish: symmetric, zero iff equal
// (case-folded), and obeys the triangle inequality.
func TestDistanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randString(rng, rng.Intn(10))
		b := randString(rng, rng.Intn(10))
		c := randString(rng, rng.Intn(10))
		dab := Distance(a, b)
		if dab != Distance(b, a) {
			return false
		}
		if (dab == 0) != (strings.EqualFold(a, b)) {
			return false
		}
		if dab > Distance(a, c)+Distance(c, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a single character edit changes distance by at most 1.
func TestDistanceEditBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randString(rng, 1+rng.Intn(10))
		b := randString(rng, rng.Intn(10))
		// mutate a by one substitution
		ra := []byte(a)
		ra[rng.Intn(len(ra))] = "abcdefg"[rng.Intn(7)]
		a2 := string(ra)
		d1, d2 := Distance(a, b), Distance(a2, b)
		diff := d1 - d2
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompareStringFuzzy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CompareStringFuzzy("authorName", "nameOfTheAuthor")
	}
}

func BenchmarkNameSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NameSimilarity("shippingAddress", "ship_to_address")
	}
}
