// Package strsim provides the fuzzy string similarity used by Bellflower's
// element matcher.
//
// The paper implements its single element matcher with the closed-source
// CompareStringFuzzy function, described as "a normalized string similarity
// based on character substitution, insertion, exclusion, and transposition".
// Those four edit operations define the Damerau–Levenshtein distance
// (optimal string alignment variant); CompareStringFuzzy here is the
// canonical open reimplementation of that description: 1 - dist/maxLen on
// case-folded input.
//
// The package additionally offers token-aware and n-gram similarities used
// by the extended matchers (XML element names are frequently camelCase or
// delimiter-separated compounds such as "authorName" or "author_name").
package strsim

import (
	"strings"
	"unicode"
)

// CompareStringFuzzy returns a normalized similarity in [0, 1] between a and
// b: 1 means equal (after case folding), 0 means maximally dissimilar. The
// measure is 1 - OSA(a, b)/max(len(a), len(b)) where OSA is the optimal
// string alignment distance over substitutions, insertions, deletions
// ("exclusions") and adjacent transpositions.
func CompareStringFuzzy(a, b string) float64 {
	ra := foldRunes(a)
	rb := foldRunes(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	d := osaDistance(ra, rb)
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(d)/float64(max)
}

func foldRunes(s string) []rune {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		out = append(out, unicode.ToLower(r))
	}
	return out
}

// osaDistance computes the optimal string alignment distance (restricted
// Damerau–Levenshtein: each substring may be transposed at most once) using
// three rolling rows.
func osaDistance(a, b []rune) int {
	la, lb := len(a), len(b)
	prev2 := make([]int, lb+1) // row i-2
	prev := make([]int, lb+1)  // row i-1
	cur := make([]int, lb+1)   // row i
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost // substitution / match
			if v := prev[j] + 1; v < m {
				m = v // deletion
			}
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v // transposition
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// Distance returns the raw optimal-string-alignment edit distance between a
// and b on case-folded runes.
func Distance(a, b string) int {
	return osaDistance(foldRunes(a), foldRunes(b))
}

// Tokenize splits an element name into lower-case word tokens: camelCase
// humps, digit runs, and '_', '-', '.', ':', '/' and whitespace delimiters
// all break tokens. "authorName" -> ["author","name"];
// "ISBN_13-code" -> ["isbn","13","code"].
func Tokenize(name string) []string {
	var tokens []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			tokens = append(tokens, string(cur))
			cur = cur[:0]
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-' || r == '.' || r == ':' || r == '/' || unicode.IsSpace(r):
			flush()
		case unicode.IsUpper(r):
			// Start a new token at a lower->Upper boundary, and at the last
			// upper of an acronym followed by a lower (XMLName -> xml name).
			if i > 0 {
				prev := runes[i-1]
				nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
				if unicode.IsLower(prev) || unicode.IsDigit(prev) || (unicode.IsUpper(prev) && nextLower) {
					flush()
				}
			}
			cur = append(cur, unicode.ToLower(r))
		case unicode.IsDigit(r):
			if i > 0 && !unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur = append(cur, r)
		default:
			if i > 0 && unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur = append(cur, unicode.ToLower(r))
		}
	}
	flush()
	return tokens
}

// TokenSimilarity compares two element names token-wise: each token of the
// shorter token list is greedily matched to its most similar counterpart
// (by CompareStringFuzzy) and the pair scores are averaged, weighted by the
// fraction of tokens covered. It rewards reordered compounds
// ("authorName" vs "name_of_author") that pure edit distance punishes.
func TokenSimilarity(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 || len(tb) == 0 {
		if len(ta) == len(tb) {
			return 1
		}
		return 0
	}
	if len(ta) > len(tb) {
		ta, tb = tb, ta
	}
	used := make([]bool, len(tb))
	total := 0.0
	for _, x := range ta {
		best, bestJ := 0.0, -1
		for j, y := range tb {
			if used[j] {
				continue
			}
			if s := CompareStringFuzzy(x, y); s > best {
				best, bestJ = s, j
			}
		}
		if bestJ >= 0 {
			used[bestJ] = true
		}
		total += best
	}
	// Average over the longer list: unmatched tokens dilute the score.
	return total / float64(len(tb))
}

// TrigramSimilarity returns the Jaccard similarity of the character trigram
// sets of a and b (case-folded, padded with '^' and '$'). It is cheap and
// robust for long names; the approximate-string-join literature the paper
// cites [10] builds on exactly this kind of q-gram overlap.
func TrigramSimilarity(a, b string) float64 {
	ga := trigrams(a)
	gb := trigrams(b)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range ga {
		if gb[g] {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]bool {
	folded := strings.ToLower(strings.TrimSpace(s))
	if folded == "" {
		return nil
	}
	padded := "^^" + folded + "$$"
	runes := []rune(padded)
	out := make(map[string]bool, len(runes))
	for i := 0; i+3 <= len(runes); i++ {
		out[string(runes[i:i+3])] = true
	}
	return out
}

// NameSimilarity is the similarity used by the default name matcher: the
// maximum of the whole-string fuzzy similarity and the token-wise
// similarity. Taking the max keeps exact/near-exact matches at 1.0 while
// still crediting reordered or differently delimited compounds.
func NameSimilarity(a, b string) float64 {
	s := CompareStringFuzzy(a, b)
	if t := TokenSimilarity(a, b); t > s {
		s = t
	}
	return s
}
