// Package strsim provides the fuzzy string similarity used by Bellflower's
// element matcher.
//
// The paper implements its single element matcher with the closed-source
// CompareStringFuzzy function, described as "a normalized string similarity
// based on character substitution, insertion, exclusion, and transposition".
// Those four edit operations define the Damerau–Levenshtein distance
// (optimal string alignment variant); CompareStringFuzzy here is the
// canonical open reimplementation of that description: 1 - dist/maxLen on
// case-folded input.
//
// The package additionally offers token-aware and n-gram similarities used
// by the extended matchers (XML element names are frequently camelCase or
// delimiter-separated compounds such as "authorName" or "author_name").
package strsim

import (
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"
)

// CompareStringFuzzy returns a normalized similarity in [0, 1] between a and
// b: 1 means equal (after case folding), 0 means maximally dissimilar. The
// measure is 1 - OSA(a, b)/max(len(a), len(b)) where OSA is the optimal
// string alignment distance over substitutions, insertions, deletions
// ("exclusions") and adjacent transpositions.
func CompareStringFuzzy(a, b string) float64 {
	ra := foldRunes(a)
	rb := foldRunes(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	d := osaDistance(ra, rb)
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(d)/float64(max)
}

func foldRunes(s string) []rune {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		out = append(out, unicode.ToLower(r))
	}
	return out
}

// osaDistance computes the optimal string alignment distance (restricted
// Damerau–Levenshtein: each substring may be transposed at most once) using
// three rolling rows.
func osaDistance(a, b []rune) int {
	lb := len(b)
	return osaInto(a, b, make([]int, lb+1), make([]int, lb+1), make([]int, lb+1))
}

// osaInto is osaDistance over caller-provided rolling rows (each len(b)+1
// long), so warm callers allocate nothing. The byte and rune instantiations
// produce identical distances on ASCII input — folding maps 'A'..'Z' to
// 'a'..'z' and leaves other ASCII untouched — which keeps the byte-level
// fast path exact.
func osaInto[T byte | rune](a, b []T, prev2, prev, cur []int) int {
	la, lb := len(a), len(b)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost // substitution / match
			if v := prev[j] + 1; v < m {
				m = v // deletion
			}
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m {
					m = v // transposition
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// Distance returns the raw optimal-string-alignment edit distance between a
// and b on case-folded runes.
func Distance(a, b string) int {
	return osaDistance(foldRunes(a), foldRunes(b))
}

// Tokenize splits an element name into lower-case word tokens: camelCase
// humps, digit runs, and '_', '-', '.', ':', '/' and whitespace delimiters
// all break tokens. "authorName" -> ["author","name"];
// "ISBN_13-code" -> ["isbn","13","code"].
func Tokenize(name string) []string {
	var tokens []string
	var buf [32]rune // reused across tokens; spills to the heap only for very long tokens
	cur := buf[:0]
	flush := func() {
		if len(cur) > 0 {
			tokens = append(tokens, string(cur))
			cur = cur[:0]
		}
	}
	// Single pass over the UTF-8 bytes: the previous rune is carried and the
	// next rune is peeked in place, so the name is never converted to []rune.
	prev := rune(-1) // -1 = start of string
	for i := 0; i < len(name); {
		r, size := utf8.DecodeRuneInString(name[i:])
		next := i + size
		switch {
		case r == '_' || r == '-' || r == '.' || r == ':' || r == '/' || unicode.IsSpace(r):
			flush()
		case unicode.IsUpper(r):
			// Start a new token at a lower->Upper boundary, and at the last
			// upper of an acronym followed by a lower (XMLName -> xml name).
			if prev >= 0 {
				nextLower := false
				if next < len(name) {
					nr, _ := utf8.DecodeRuneInString(name[next:])
					nextLower = unicode.IsLower(nr)
				}
				if unicode.IsLower(prev) || unicode.IsDigit(prev) || (unicode.IsUpper(prev) && nextLower) {
					flush()
				}
			}
			cur = append(cur, unicode.ToLower(r))
		case unicode.IsDigit(r):
			if prev >= 0 && !unicode.IsDigit(prev) {
				flush()
			}
			cur = append(cur, r)
		default:
			if prev >= 0 && unicode.IsDigit(prev) {
				flush()
			}
			cur = append(cur, unicode.ToLower(r))
		}
		prev = r
		i = next
	}
	flush()
	return tokens
}

// TokenSimilarity compares two element names token-wise: each token of the
// shorter token list is greedily matched to its most similar counterpart
// (by CompareStringFuzzy) and the pair scores are averaged, weighted by the
// fraction of tokens covered. It rewards reordered compounds
// ("authorName" vs "name_of_author") that pure edit distance punishes.
func TokenSimilarity(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 || len(tb) == 0 {
		if len(ta) == len(tb) {
			return 1
		}
		return 0
	}
	if len(ta) > len(tb) {
		ta, tb = tb, ta
	}
	used := make([]bool, len(tb))
	total := 0.0
	for _, x := range ta {
		best, bestJ := 0.0, -1
		for j, y := range tb {
			if used[j] {
				continue
			}
			if s := CompareStringFuzzy(x, y); s > best {
				best, bestJ = s, j
			}
		}
		if bestJ >= 0 {
			used[bestJ] = true
		}
		total += best
	}
	// Average over the longer list: unmatched tokens dilute the score.
	return total / float64(len(tb))
}

// TrigramSimilarity returns the Jaccard similarity of the character trigram
// sets of a and b (case-folded, padded with '^' and '$'). It is cheap and
// robust for long names; the approximate-string-join literature the paper
// cites [10] builds on exactly this kind of q-gram overlap.
func TrigramSimilarity(a, b string) float64 {
	return trigramJaccard(trigramSet(a), trigramSet(b))
}

// trigramSet returns the sorted distinct trigrams of the padded, case-folded
// text. The sorted-slice representation replaces the earlier per-call map:
// prepared forms can share it and set operations run as linear merges.
func trigramSet(s string) []string {
	folded := strings.ToLower(strings.TrimSpace(s))
	if folded == "" {
		return nil
	}
	padded := "^^" + folded + "$$"
	runes := []rune(padded)
	out := make([]string, 0, len(runes))
	for i := 0; i+3 <= len(runes); i++ {
		out = append(out, string(runes[i:i+3]))
	}
	sort.Strings(out)
	w := 0
	for i, g := range out {
		if i == 0 || g != out[w-1] {
			out[w] = g
			w++
		}
	}
	return out[:w]
}

// trigramJaccard is the Jaccard similarity of two sorted distinct trigram
// slices, computed as a linear merge.
func trigramJaccard(ga, gb []string) float64 {
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(ga) && j < len(gb) {
		switch {
		case ga[i] == gb[j]:
			inter++
			i++
			j++
		case ga[i] < gb[j]:
			i++
		default:
			j++
		}
	}
	union := len(ga) + len(gb) - inter
	return float64(inter) / float64(union)
}

// NameSimilarity is the similarity used by the default name matcher: the
// maximum of the whole-string fuzzy similarity and the token-wise
// similarity. Taking the max keeps exact/near-exact matches at 1.0 while
// still crediting reordered or differently delimited compounds.
func NameSimilarity(a, b string) float64 {
	s := CompareStringFuzzy(a, b)
	if t := TokenSimilarity(a, b); t > s {
		s = t
	}
	return s
}
