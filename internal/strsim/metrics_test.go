package strsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJaroSimilarity(t *testing.T) {
	cases := []struct {
		a, b   string
		lo, hi float64
	}{
		{"", "", 1, 1},
		{"a", "", 0, 0},
		{"martha", "marhta", 0.94, 0.95}, // classic example: 0.9444
		{"dixon", "dicksonx", 0.76, 0.77},
		{"same", "same", 1, 1},
		{"Same", "sAME", 1, 1}, // case-folded
		{"abc", "xyz", 0, 0},
	}
	for _, tc := range cases {
		got := JaroSimilarity(tc.a, tc.b)
		if got < tc.lo-1e-9 || got > tc.hi+1e-9 {
			t.Errorf("Jaro(%q,%q) = %v, want [%v,%v]", tc.a, tc.b, got, tc.lo, tc.hi)
		}
	}
}

func TestJaroWinkler(t *testing.T) {
	// Winkler boosts shared prefixes: MARTHA/MARHTA goes 0.944 -> 0.961.
	jw := JaroWinklerSimilarity("martha", "marhta")
	if jw < 0.96 || jw > 0.97 {
		t.Errorf("JaroWinkler(martha,marhta) = %v, want ~0.961", jw)
	}
	// Prefix boost only helps when there IS a shared prefix.
	a := JaroWinklerSimilarity("author", "zuthor")
	b := JaroWinklerSimilarity("author", "authoz")
	if b <= a {
		t.Errorf("prefix match should score higher: %v vs %v", a, b)
	}
}

func TestNGramCosine(t *testing.T) {
	if got := NGramCosineSimilarity("book", "book", 2); got < 1-1e-9 {
		t.Errorf("identical = %v", got)
	}
	if got := NGramCosineSimilarity("", "", 2); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := NGramCosineSimilarity("book", "", 2); got != 0 {
		t.Errorf("one empty = %v", got)
	}
	near := NGramCosineSimilarity("address", "addresses", 2)
	far := NGramCosineSimilarity("address", "quantum", 2)
	if near <= far {
		t.Errorf("cosine ordering: near=%v far=%v", near, far)
	}
}

func TestNGramCosinePanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("n=0 should panic")
		}
	}()
	NGramCosineSimilarity("a", "b", 0)
}

func TestMetricDispatch(t *testing.T) {
	metrics := []Metric{MetricFuzzy, MetricJaroWinkler, MetricTrigramJaccard, MetricBigramCosine}
	names := map[Metric]string{
		MetricFuzzy: "fuzzy", MetricJaroWinkler: "jaro-winkler",
		MetricTrigramJaccard: "trigram-jaccard", MetricBigramCosine: "bigram-cosine",
	}
	for _, m := range metrics {
		if m.String() != names[m] {
			t.Errorf("Metric(%d).String() = %q", m, m.String())
		}
		if got := m.Similarity("book", "book"); got < 1-1e-9 {
			t.Errorf("%v identical = %v", m, got)
		}
		exact := m.Similarity("author", "author")
		near := m.Similarity("author", "authors")
		far := m.Similarity("author", "zzzzzz")
		if !(exact >= near && near > far) {
			t.Errorf("%v ordering violated: %v %v %v", m, exact, near, far)
		}
	}
	if Metric(99).String() != "unknown" {
		t.Errorf("unknown metric name")
	}
}

// Property: all metrics are symmetric and bounded in [0,1].
func TestMetricProperties(t *testing.T) {
	metrics := []Metric{MetricFuzzy, MetricJaroWinkler, MetricTrigramJaccard, MetricBigramCosine}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randString(rng, rng.Intn(12))
		b := randString(rng, rng.Intn(12))
		for _, m := range metrics {
			sab := m.Similarity(a, b)
			if sab < -1e-12 || sab > 1+1e-12 {
				return false
			}
			if diff := sab - m.Similarity(b, a); diff > 1e-12 || diff < -1e-12 {
				return false
			}
			if m.Similarity(a, a) < 1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
