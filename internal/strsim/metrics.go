package strsim

import (
	"math"
	"sort"
	"strings"
)

// Additional name-similarity metrics. The paper's Bellflower uses a single
// fuzzy edit-distance matcher; real systems (COMA, Cupid) offer several
// metrics and combine them. These implementations back the NameMatcher's
// pluggable metric option and the metric-comparison benchmark.

// JaroSimilarity returns the Jaro similarity of a and b in [0,1]
// (case-folded): the classic record-linkage measure built from matching
// characters within a sliding window and transposition counts.
func JaroSimilarity(a, b string) float64 {
	ra, rb := foldRunes(a), foldRunes(b)
	return jaroFoldedRunes(ra, rb, make([]bool, len(ra)), make([]bool, len(rb)))
}

// jaroFoldedRunes is JaroSimilarity over already-folded text with
// caller-provided (cleared) match scratch, shared with the prepared-form
// scorer so both paths produce bit-identical results.
func jaroFoldedRunes[T byte | rune](ra, rb []T, matchedA, matchedB []bool) float64 {
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinklerSimilarity boosts the Jaro similarity for strings sharing a
// common prefix (up to 4 runes), with the standard scaling factor 0.1.
func JaroWinklerSimilarity(a, b string) float64 {
	j := JaroSimilarity(a, b)
	ra, rb := foldRunes(a), foldRunes(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NGramCosineSimilarity returns the cosine similarity of the character
// n-gram frequency vectors of a and b (case-folded, padded). n must be at
// least 1; 2 or 3 are the usual choices.
func NGramCosineSimilarity(a, b string, n int) float64 {
	if n < 1 {
		panic("strsim: n-gram size must be >= 1")
	}
	ga, na := ngramVec(a, n)
	gb, nb := ngramVec(b, n)
	return cosineVec(ga, na, gb, nb)
}

// gram is one entry of a sorted n-gram count vector.
type gram struct {
	g string
	c int
}

// ngramVec returns the n-gram counts of the padded, case-folded text sorted
// by gram, plus the Euclidean norm of the count vector. The sorted-slice
// representation makes dot products a linear merge with a deterministic
// accumulation order — the earlier map summed in random iteration order, so
// equal inputs could produce last-ulp-different cosines.
func ngramVec(s string, n int) ([]gram, float64) {
	folded := strings.ToLower(strings.TrimSpace(s))
	if folded == "" {
		return nil, 0
	}
	pad := strings.Repeat("^", n-1)
	runes := []rune(pad + folded + pad)
	grams := make([]string, 0, len(runes))
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	sort.Strings(grams)
	out := make([]gram, 0, len(grams))
	for _, g := range grams {
		if len(out) > 0 && out[len(out)-1].g == g {
			out[len(out)-1].c++
		} else {
			out = append(out, gram{g: g, c: 1})
		}
	}
	sum := 0.0
	for _, e := range out {
		sum += float64(e.c) * float64(e.c)
	}
	return out, math.Sqrt(sum)
}

// cosineVec is the cosine similarity of two sorted n-gram count vectors with
// precomputed norms.
func cosineVec(ga []gram, na float64, gb []gram, nb float64) float64 {
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	dot := 0.0
	i, j := 0, 0
	for i < len(ga) && j < len(gb) {
		switch {
		case ga[i].g == gb[j].g:
			dot += float64(ga[i].c) * float64(gb[j].c)
			i++
			j++
		case ga[i].g < gb[j].g:
			i++
		default:
			j++
		}
	}
	return dot / (na * nb)
}

// Metric identifies a name-similarity metric for the pluggable
// NameMatcher.
type Metric int

const (
	// MetricFuzzy is the paper-faithful CompareStringFuzzy (default).
	MetricFuzzy Metric = iota
	// MetricJaroWinkler uses Jaro–Winkler similarity.
	MetricJaroWinkler
	// MetricTrigramJaccard uses trigram-set Jaccard similarity.
	MetricTrigramJaccard
	// MetricBigramCosine uses bigram-frequency cosine similarity.
	MetricBigramCosine
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricFuzzy:
		return "fuzzy"
	case MetricJaroWinkler:
		return "jaro-winkler"
	case MetricTrigramJaccard:
		return "trigram-jaccard"
	case MetricBigramCosine:
		return "bigram-cosine"
	default:
		return "unknown"
	}
}

// Similarity evaluates the metric.
func (m Metric) Similarity(a, b string) float64 {
	switch m {
	case MetricJaroWinkler:
		return JaroWinklerSimilarity(a, b)
	case MetricTrigramJaccard:
		return TrigramSimilarity(a, b)
	case MetricBigramCosine:
		return NGramCosineSimilarity(a, b, 2)
	default:
		return CompareStringFuzzy(a, b)
	}
}
