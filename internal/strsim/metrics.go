package strsim

import (
	"math"
	"strings"
)

// Additional name-similarity metrics. The paper's Bellflower uses a single
// fuzzy edit-distance matcher; real systems (COMA, Cupid) offer several
// metrics and combine them. These implementations back the NameMatcher's
// pluggable metric option and the metric-comparison benchmark.

// JaroSimilarity returns the Jaro similarity of a and b in [0,1]
// (case-folded): the classic record-linkage measure built from matching
// characters within a sliding window and transposition counts.
func JaroSimilarity(a, b string) float64 {
	ra, rb := foldRunes(a), foldRunes(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinklerSimilarity boosts the Jaro similarity for strings sharing a
// common prefix (up to 4 runes), with the standard scaling factor 0.1.
func JaroWinklerSimilarity(a, b string) float64 {
	j := JaroSimilarity(a, b)
	ra, rb := foldRunes(a), foldRunes(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NGramCosineSimilarity returns the cosine similarity of the character
// n-gram frequency vectors of a and b (case-folded, padded). n must be at
// least 1; 2 or 3 are the usual choices.
func NGramCosineSimilarity(a, b string, n int) float64 {
	if n < 1 {
		panic("strsim: n-gram size must be >= 1")
	}
	ga, gb := ngramCounts(a, n), ngramCounts(b, n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	dot := 0.0
	for g, ca := range ga {
		if cb, ok := gb[g]; ok {
			dot += float64(ca) * float64(cb)
		}
	}
	return dot / (norm(ga) * norm(gb))
}

func ngramCounts(s string, n int) map[string]int {
	folded := strings.ToLower(strings.TrimSpace(s))
	if folded == "" {
		return nil
	}
	pad := strings.Repeat("^", n-1)
	runes := []rune(pad + folded + pad)
	out := make(map[string]int)
	for i := 0; i+n <= len(runes); i++ {
		out[string(runes[i:i+n])]++
	}
	return out
}

func norm(m map[string]int) float64 {
	sum := 0.0
	for _, c := range m {
		sum += float64(c) * float64(c)
	}
	return math.Sqrt(sum)
}

// Metric identifies a name-similarity metric for the pluggable
// NameMatcher.
type Metric int

const (
	// MetricFuzzy is the paper-faithful CompareStringFuzzy (default).
	MetricFuzzy Metric = iota
	// MetricJaroWinkler uses Jaro–Winkler similarity.
	MetricJaroWinkler
	// MetricTrigramJaccard uses trigram-set Jaccard similarity.
	MetricTrigramJaccard
	// MetricBigramCosine uses bigram-frequency cosine similarity.
	MetricBigramCosine
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricFuzzy:
		return "fuzzy"
	case MetricJaroWinkler:
		return "jaro-winkler"
	case MetricTrigramJaccard:
		return "trigram-jaccard"
	case MetricBigramCosine:
		return "bigram-cosine"
	default:
		return "unknown"
	}
}

// Similarity evaluates the metric.
func (m Metric) Similarity(a, b string) float64 {
	switch m {
	case MetricJaroWinkler:
		return JaroWinklerSimilarity(a, b)
	case MetricTrigramJaccard:
		return TrigramSimilarity(a, b)
	case MetricBigramCosine:
		return NGramCosineSimilarity(a, b, 2)
	default:
		return CompareStringFuzzy(a, b)
	}
}
