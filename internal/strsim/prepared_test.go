package strsim

import (
	"math/rand"
	"testing"
)

// corpusNames mixes the shapes the matcher sees in practice: plain words,
// camelCase and delimited compounds, acronyms, digits, unicode, whitespace
// and empty strings.
var corpusNames = []string{
	"", " ", "a", "author", "authorName", "name_of_author", "AuthorName",
	"XMLName", "ISBN_13-code", "book", "bookTitle", "title", "Título",
	"naïveTitle", "café", "АвторИмя", "zip.code", "person/contact",
	"publicationYear2024", "e-mail", "Price", "priceAmount", "x",
	"aVeryLongElementNameThatKeepsGoingAndGoing", "shelf:label",
}

func randomName(rng *rand.Rand) string {
	if rng.Intn(8) == 0 {
		// Random bytes, occasionally invalid UTF-8, to stress the folding.
		n := rng.Intn(12)
		b := make([]byte, n)
		rng.Read(b)
		return string(b)
	}
	return corpusNames[rng.Intn(len(corpusNames))]
}

// TestPreparedBitIdentical pins every Scorer method over Prepared values to
// its string-based counterpart, bit for bit — the keyed matching kernel's
// correctness rests on this.
func TestPreparedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var sc Scorer
	for i := 0; i < 5000; i++ {
		a, b := randomName(rng), randomName(rng)
		pa, pb := Prepare(a), Prepare(b)
		checks := []struct {
			name string
			want float64
			got  float64
		}{
			{"fuzzy", CompareStringFuzzy(a, b), sc.Fuzzy(&pa, &pb)},
			{"token", TokenSimilarity(a, b), sc.TokenSimilarity(&pa, &pb)},
			{"trigram", TrigramSimilarity(a, b), sc.Similarity(MetricTrigramJaccard, &pa, &pb)},
			{"bigram", NGramCosineSimilarity(a, b, 2), sc.Similarity(MetricBigramCosine, &pa, &pb)},
			{"jaro-winkler", JaroWinklerSimilarity(a, b), sc.Similarity(MetricJaroWinkler, &pa, &pb)},
		}
		for _, c := range checks {
			if c.want != c.got {
				t.Fatalf("%s(%q, %q): prepared %v != string %v", c.name, a, b, c.got, c.want)
			}
		}
	}
}

// TestFuzzyBoundedExact verifies the pruning contract: a pruned pair's true
// similarity never clears minSim, and an unpruned pair scores exactly like
// CompareStringFuzzy.
func TestFuzzyBoundedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc Scorer
	for i := 0; i < 5000; i++ {
		a, b := randomName(rng), randomName(rng)
		minSim := []float64{-0.5, 0, 0.3, 0.45, 0.7, 0.95}[rng.Intn(6)]
		pa, pb := Prepare(a), Prepare(b)
		want := CompareStringFuzzy(a, b)
		got, pruned := sc.FuzzyBounded(&pa, &pb, minSim)
		if pruned {
			if want > minSim {
				t.Fatalf("FuzzyBounded(%q, %q, %v) pruned a pair with true sim %v", a, b, minSim, want)
			}
			continue
		}
		if got != want {
			t.Fatalf("FuzzyBounded(%q, %q, %v) = %v, want %v", a, b, minSim, got, want)
		}
	}
}

// TestScorerZeroAllocs pins the warm-scorer allocation count at zero for
// every metric, so the kernel's allocation win can't silently rot.
func TestScorerZeroAllocs(t *testing.T) {
	var sc Scorer
	pa, pb := Prepare("authorName"), Prepare("name_of_the_author")
	pc := Prepare("publicationYear2024")
	// Warm the scratch buffers.
	sc.Fuzzy(&pa, &pb)
	sc.TokenSimilarity(&pa, &pb)
	sc.JaroWinkler(&pa, &pb)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Fuzzy", func() { sc.Fuzzy(&pa, &pb) }},
		{"FuzzyBounded", func() { sc.FuzzyBounded(&pa, &pc, 0.45) }},
		{"TokenSimilarity", func() { sc.TokenSimilarity(&pa, &pb) }},
		{"JaroWinkler", func() { sc.JaroWinkler(&pa, &pb) }},
		{"TrigramJaccard", func() { sc.Similarity(MetricTrigramJaccard, &pa, &pb) }},
		{"BigramCosine", func() { sc.Similarity(MetricBigramCosine, &pa, &pb) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(200, c.fn); n != 0 {
			t.Errorf("%s allocates %v times per warm call, want 0", c.name, n)
		}
	}
}

// TestScorerNonASCIIPairs exercises the widening path where one side is
// ASCII and the other is not.
func TestScorerNonASCIIPairs(t *testing.T) {
	var sc Scorer
	pairs := [][2]string{
		{"café", "cafe"}, {"Título", "titulo"}, {"АвторИмя", "author"},
		{"naïveTitle", "naiveTitle"}, {"café", "Café"},
	}
	for _, p := range pairs {
		pa, pb := Prepare(p[0]), Prepare(p[1])
		if got, want := sc.Fuzzy(&pa, &pb), CompareStringFuzzy(p[0], p[1]); got != want {
			t.Errorf("Fuzzy(%q, %q) = %v, want %v", p[0], p[1], got, want)
		}
		if got, want := sc.Fuzzy(&pb, &pa), CompareStringFuzzy(p[1], p[0]); got != want {
			t.Errorf("Fuzzy(%q, %q) = %v, want %v", p[1], p[0], got, want)
		}
	}
}

// FuzzPreparedEquivalence drives the prepared scorer against the string
// functions with fuzz-generated inputs.
func FuzzPreparedEquivalence(f *testing.F) {
	f.Add("authorName", "name_of_author")
	f.Add("", "x")
	f.Add("café", "cafe")
	f.Add("XMLName", "xml name")
	f.Fuzz(func(t *testing.T, a, b string) {
		if len(a) > 64 || len(b) > 64 {
			return // keep the quadratic OSA bounded
		}
		var sc Scorer
		pa, pb := Prepare(a), Prepare(b)
		if got, want := sc.Fuzzy(&pa, &pb), CompareStringFuzzy(a, b); got != want {
			t.Fatalf("Fuzzy(%q, %q) = %v, want %v", a, b, got, want)
		}
		if got, want := sc.TokenSimilarity(&pa, &pb), TokenSimilarity(a, b); got != want {
			t.Fatalf("TokenSimilarity(%q, %q) = %v, want %v", a, b, got, want)
		}
		if got, want := sc.Similarity(MetricJaroWinkler, &pa, &pb), JaroWinklerSimilarity(a, b); got != want {
			t.Fatalf("JaroWinkler(%q, %q) = %v, want %v", a, b, got, want)
		}
		got, pruned := sc.FuzzyBounded(&pa, &pb, 0.45)
		if want := CompareStringFuzzy(a, b); pruned {
			if want > 0.45 {
				t.Fatalf("FuzzyBounded(%q, %q) pruned sim %v > 0.45", a, b, want)
			}
		} else if got != want {
			t.Fatalf("FuzzyBounded(%q, %q) = %v, want %v", a, b, got, want)
		}
	})
}
