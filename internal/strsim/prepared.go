package strsim

import (
	"bytes"
	"unicode/utf8"
)

// Prepared is the precomputed similarity input for one string: its folded
// form (byte-level when pure ASCII), folded token list, sorted trigram set
// and bigram count vector. Preparing once and scoring many times removes the
// per-pair fold/tokenize/gram work from the matching kernel; every Scorer
// method over Prepared values returns results bit-identical to its
// string-based counterpart, so callers may mix the two freely.
type Prepared struct {
	f       foldedText
	tokens  []foldedText
	tris    []string
	bigrams []gram
	norm    float64
}

// foldedText is a case-folded string in its cheapest exact representation:
// plain bytes when every folded rune is ASCII, runes otherwise. Exactly one
// of the two slices is non-nil.
type foldedText struct {
	ascii []byte
	runes []rune
}

func (f *foldedText) length() int {
	if f.ascii != nil {
		return len(f.ascii)
	}
	return len(f.runes)
}

func newFoldedText(s string) foldedText {
	runes := foldRunes(s)
	for _, r := range runes {
		if r >= utf8.RuneSelf {
			return foldedText{runes: runes}
		}
	}
	b := make([]byte, len(runes))
	for i, r := range runes {
		b[i] = byte(r)
	}
	return foldedText{ascii: b}
}

// Prepare computes the prepared form of s. Tokens are re-folded exactly the
// way CompareStringFuzzy folds them, so token-wise scores stay identical.
func Prepare(s string) Prepared {
	toks := Tokenize(s)
	pt := make([]foldedText, len(toks))
	for i, t := range toks {
		pt[i] = newFoldedText(t)
	}
	bi, norm := ngramVec(s, 2)
	return Prepared{
		f:       newFoldedText(s),
		tokens:  pt,
		tris:    trigramSet(s),
		bigrams: bi,
		norm:    norm,
	}
}

// Tokens returns the number of tokens in the prepared form.
func (p *Prepared) Tokens() int { return len(p.tokens) }

// MemoryBytes estimates the heap footprint of the prepared form, including
// slice headers.
func (p *Prepared) MemoryBytes() int64 {
	b := int64(len(p.f.ascii) + 4*len(p.f.runes))
	for i := range p.tokens {
		t := &p.tokens[i]
		b += 48 + int64(len(t.ascii)+4*len(t.runes))
	}
	for _, g := range p.tris {
		b += 16 + int64(len(g))
	}
	for _, g := range p.bigrams {
		b += 24 + int64(len(g.g))
	}
	return b + 96
}

// Scorer evaluates similarities over Prepared values with reusable scratch
// buffers: once the buffers are warm, a similarity call performs no heap
// allocation. A Scorer is not safe for concurrent use — give each worker
// goroutine its own.
type Scorer struct {
	prev2, prev, cur []int  // OSA rolling rows
	used             []bool // token greedy-match scratch
	ma, mb           []bool // Jaro matched-character scratch
	ra, rb           []rune // ASCII widening scratch for mixed-width pairs
}

func (sc *Scorer) rows(lb int) (p2, p, c []int) {
	if cap(sc.prev2) <= lb {
		sc.prev2 = make([]int, lb+1)
		sc.prev = make([]int, lb+1)
		sc.cur = make([]int, lb+1)
	}
	return sc.prev2[:lb+1], sc.prev[:lb+1], sc.cur[:lb+1]
}

// widen returns the rune view of f, decoding ASCII bytes into the provided
// scratch slice when needed.
func widen(f *foldedText, scratch *[]rune) []rune {
	if f.runes != nil {
		return f.runes
	}
	buf := *scratch
	if cap(buf) < len(f.ascii) {
		buf = make([]rune, len(f.ascii))
	}
	buf = buf[:len(f.ascii)]
	for i, c := range f.ascii {
		buf[i] = rune(c)
	}
	*scratch = buf
	return buf
}

func (sc *Scorer) osa(a, b *foldedText) int {
	if a.ascii != nil && b.ascii != nil {
		p2, p, c := sc.rows(len(b.ascii))
		return osaInto(a.ascii, b.ascii, p2, p, c)
	}
	ra := widen(a, &sc.ra)
	rb := widen(b, &sc.rb)
	p2, p, c := sc.rows(len(rb))
	return osaInto(ra, rb, p2, p, c)
}

// fuzzyFolded is CompareStringFuzzy over folded text.
func (sc *Scorer) fuzzyFolded(a, b *foldedText) float64 {
	la, lb := a.length(), b.length()
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	if a.ascii != nil && b.ascii != nil && bytes.Equal(a.ascii, b.ascii) {
		return 1 // d = 0; identical to the full computation
	}
	d := sc.osa(a, b)
	max := la
	if lb > max {
		max = lb
	}
	return 1 - float64(d)/float64(max)
}

// Fuzzy is CompareStringFuzzy over prepared forms.
func (sc *Scorer) Fuzzy(a, b *Prepared) float64 { return sc.fuzzyFolded(&a.f, &b.f) }

// FuzzyBounded is Fuzzy with a length-difference early exit: when the upper
// bound 1 − |la−lb|/max(la,lb) cannot exceed minSim, the OSA pass is skipped
// and pruned is true. The bound is exact — the OSA distance is at least the
// length difference — so a pruned pair's true similarity is ≤ minSim and a
// `sim > minSim` filter discards it either way; pruning never changes which
// candidates are kept or their scores.
func (sc *Scorer) FuzzyBounded(a, b *Prepared, minSim float64) (sim float64, pruned bool) {
	la, lb := a.f.length(), b.f.length()
	if la == 0 && lb == 0 {
		return 1, false
	}
	max, diff := la, la-lb
	if lb > max {
		max = lb
	}
	if diff < 0 {
		diff = -diff
	}
	if bound := 1 - float64(diff)/float64(max); bound <= minSim {
		return 0, true
	}
	return sc.fuzzyFolded(&a.f, &b.f), false
}

// TokenSimilarity is the token-wise similarity over prepared forms.
func (sc *Scorer) TokenSimilarity(a, b *Prepared) float64 {
	ta, tb := a.tokens, b.tokens
	if len(ta) == 0 || len(tb) == 0 {
		if len(ta) == len(tb) {
			return 1
		}
		return 0
	}
	if len(ta) > len(tb) {
		ta, tb = tb, ta
	}
	if cap(sc.used) < len(tb) {
		sc.used = make([]bool, len(tb))
	}
	used := sc.used[:len(tb)]
	for j := range used {
		used[j] = false
	}
	total := 0.0
	for i := range ta {
		best, bestJ := 0.0, -1
		for j := range tb {
			if used[j] {
				continue
			}
			if s := sc.fuzzyFolded(&ta[i], &tb[j]); s > best {
				best, bestJ = s, j
			}
		}
		if bestJ >= 0 {
			used[bestJ] = true
		}
		total += best
	}
	return total / float64(len(tb))
}

func (sc *Scorer) matchScratch(la, lb int) (ma, mb []bool) {
	if cap(sc.ma) < la {
		sc.ma = make([]bool, la)
	}
	if cap(sc.mb) < lb {
		sc.mb = make([]bool, lb)
	}
	ma, mb = sc.ma[:la], sc.mb[:lb]
	for i := range ma {
		ma[i] = false
	}
	for j := range mb {
		mb[j] = false
	}
	return ma, mb
}

func (sc *Scorer) jaroFolded(a, b *foldedText) float64 {
	if a.ascii != nil && b.ascii != nil {
		ma, mb := sc.matchScratch(len(a.ascii), len(b.ascii))
		return jaroFoldedRunes(a.ascii, b.ascii, ma, mb)
	}
	ra := widen(a, &sc.ra)
	rb := widen(b, &sc.rb)
	ma, mb := sc.matchScratch(len(ra), len(rb))
	return jaroFoldedRunes(ra, rb, ma, mb)
}

func runeAt(f *foldedText, i int) rune {
	if f.ascii != nil {
		return rune(f.ascii[i])
	}
	return f.runes[i]
}

// JaroWinkler is JaroWinklerSimilarity over prepared forms.
func (sc *Scorer) JaroWinkler(a, b *Prepared) float64 {
	j := sc.jaroFolded(&a.f, &b.f)
	prefix := 0
	for prefix < a.f.length() && prefix < b.f.length() && prefix < 4 &&
		runeAt(&a.f, prefix) == runeAt(&b.f, prefix) {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// Similarity evaluates the metric over prepared forms; results are
// bit-identical to Metric.Similarity on the original strings.
func (sc *Scorer) Similarity(m Metric, a, b *Prepared) float64 {
	switch m {
	case MetricJaroWinkler:
		return sc.JaroWinkler(a, b)
	case MetricTrigramJaccard:
		return trigramJaccard(a.tris, b.tris)
	case MetricBigramCosine:
		return cosineVec(a.bigrams, a.norm, b.bigrams, b.norm)
	default:
		return sc.Fuzzy(a, b)
	}
}
