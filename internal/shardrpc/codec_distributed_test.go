package shardrpc_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"bellflower"
)

// TestDistributedEquivalenceMixedFleet is the rolling-upgrade acceptance
// harness: a binary-capable router fanning out over a fleet where one
// shard still speaks the legacy JSON-only surface must produce reports
// byte-identical (canonical form) to the unsharded run — per-shard codec
// negotiation must never leak into results. A forced-JSON router (the
// full legacy surface) must match too, and forcing binary against the
// mixed fleet must fail loudly rather than mis-serve.
func TestDistributedEquivalenceMixedFleet(t *testing.T) {
	const nodes, seed, shards = 400, 23, 3
	routerRepo := freshRepo(t, nodes, seed)
	rng := rand.New(rand.NewSource(seed * 7919))
	personal := randomPersonal(rng, routerRepo, 2)
	opts := bellflower.DefaultOptions()
	opts.MinSim = 0.4
	opts.Threshold = 0.6

	direct, err := bellflower.NewMatcher(freshRepo(t, nodes, seed)).Match(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalReport(direct)

	fleet := startFleet(t, nodes, seed, shards, bellflower.PartitionClustered, 1) // shard 1 lags the upgrade
	for _, mode := range []struct {
		name string
		cfg  bellflower.ServiceConfig
	}{
		{"auto", bellflower.ServiceConfig{Workers: 2}},
		{"json", bellflower.ServiceConfig{Workers: 2, WireCodec: "json"}},
	} {
		backend, err := bellflower.NewDistributedService(routerRepo, fleet.addrs, mode.cfg, bellflower.PartitionClustered)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		rep, err := backend.Match(context.Background(), personal, opts)
		if err != nil {
			backend.Close()
			t.Fatalf("%s: %v", mode.name, err)
		}
		if rep.Incomplete || len(rep.ShardErrors) != 0 {
			t.Errorf("%s: healthy mixed fleet marked incomplete", mode.name)
		}
		if got := canonicalReport(rep); got != want {
			t.Errorf("%s: mixed-fleet report differs from unsharded\n--- unsharded\n%s\n--- mixed\n%s", mode.name, want, got)
		}
		if rep.MappingElements != direct.MappingElements {
			t.Errorf("%s: mapping elements %d, want %d", mode.name, rep.MappingElements, direct.MappingElements)
		}
		// The same request again — whatever mix of caches serves it, the
		// answer must not drift.
		again, err := backend.Match(context.Background(), personal, opts)
		if err != nil {
			backend.Close()
			t.Fatalf("%s repeat: %v", mode.name, err)
		}
		if got := canonicalReport(again); got != want {
			t.Errorf("%s: repeated mixed-fleet report drifted", mode.name)
		}
		backend.Close()
	}

	// Negotiation is per shard and visible in the wire counters: the
	// legacy shard never saw a binary body, while the upgraded shards did
	// (the auto router handshakes at construction, before any match) —
	// and also JSON ones, from the forced-JSON router.
	for i, host := range fleet.hosts {
		wb := host.Stats().WireBytes
		switch {
		case i == 1 && (wb.InBinary != 0 || wb.InJSON == 0):
			t.Errorf("legacy shard %d wire bytes %+v, want JSON only", i, wb)
		case i != 1 && (wb.InBinary == 0 || wb.InJSON == 0):
			t.Errorf("upgraded shard %d wire bytes %+v, want both codecs", i, wb)
		}
	}

	// Forcing binary against a fleet with a legacy shard fails the
	// request loudly (the shard's 415 surfaces) instead of serving a
	// degraded or mis-coded merge.
	forced, err := bellflower.NewDistributedService(freshRepo(t, nodes, seed), fleet.addrs,
		bellflower.ServiceConfig{Workers: 2, WireCodec: "binary"}, bellflower.PartitionClustered)
	if err != nil {
		t.Fatalf("forced-binary construction: %v", err)
	}
	defer forced.Close()
	if _, err := forced.Match(context.Background(), personal, opts); err == nil || !strings.Contains(err.Error(), "415") {
		t.Errorf("forced-binary router against legacy shard: err = %v, want HTTP 415", err)
	}

	// An unknown codec is rejected at construction, not discovered on the
	// first request.
	if _, err := bellflower.NewDistributedService(freshRepo(t, nodes, seed), fleet.addrs,
		bellflower.ServiceConfig{Workers: 2, WireCodec: "gzip"}, bellflower.PartitionClustered); err == nil {
		t.Error("unknown wire codec accepted")
	}
}
