package shardrpc

import (
	"encoding/json"
	"reflect"
	"testing"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/repogen"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
	"bellflower/internal/strsim"
)

func testRepo(t testing.TB, nodes int, seed int64) *schema.Repository {
	t.Helper()
	cfg := repogen.DefaultConfig()
	cfg.TargetNodes = nodes
	cfg.Seed = seed
	repo, err := repogen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestTreeCodecRoundTrip(t *testing.T) {
	specs := []string{
		"book(title,author)",
		"lib(address,book(authorName:string,data(title),shelf,isbn@))",
		"a(b:integer,c@(unused_never),d(e(f(g))))",
		"weird(name with spaces,quo\"te@)",
	}
	for _, spec := range specs {
		orig, err := schema.ParseSpec(spec)
		if err != nil {
			// Specs with exotic characters may not parse; build by hand below.
			continue
		}
		got, err := DecodeTree(EncodeTree(orig))
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got.String() != orig.String() || got.Len() != orig.Len() {
			t.Errorf("%s: round trip %q != %q", spec, got, orig)
		}
		for i, n := range orig.Nodes() {
			g := got.NodeAt(i)
			if g.Name != n.Name || g.Kind != n.Kind || g.Type != n.Type || g.Depth != n.Depth {
				t.Errorf("%s node %d: %+v != %+v", spec, i, g, n)
			}
		}
	}

	// Arbitrary names and types must survive JSON + the codec.
	b := schema.NewBuilder("tree \"x\"\nwith newline")
	root := b.Root(`na"me`)
	b.TypedAttribute(root, "attr\twith\ttabs", "ty\"pe")
	b.TypedElement(root, "élan", "日本語")
	orig := b.MustTree()
	raw, err := json.Marshal(EncodeTree(orig))
	if err != nil {
		t.Fatal(err)
	}
	var wt WireTree
	if err := json.Unmarshal(raw, &wt); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTree(wt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.String() != orig.String() {
		t.Errorf("exotic tree round trip: %q != %q", got, orig)
	}

	// Malformed wire trees must be rejected, not crash.
	bad := []WireTree{
		{Name: "empty"},
		{Name: "gap", Nodes: []WireNode{{Depth: 0, Name: "r"}, {Depth: 2, Name: "x"}}},
		{Name: "tworoots", Nodes: []WireNode{{Depth: 0, Name: "r"}, {Depth: 0, Name: "s"}}},
		{Name: "attr-root", Nodes: []WireNode{{Depth: 0, Name: "r", Attr: true}}},
		{Name: "neg", Nodes: []WireNode{{Depth: -1, Name: "r"}}},
	}
	for _, wt := range bad {
		if _, err := DecodeTree(wt); err == nil {
			t.Errorf("DecodeTree(%s) accepted a malformed tree", wt.Name)
		}
	}
}

func TestOptionsCodecRoundTrip(t *testing.T) {
	cc := cluster.DefaultConfig()
	cc.SplitAbove = 17
	cases := []pipeline.Options{
		pipeline.DefaultOptions(),
		{Threshold: 0.5, MinSim: 0.3, TopN: 7, Variant: pipeline.VariantTree,
			Matcher: matcher.NameMatcher{TokenAware: true}, OrderClusters: true, AdaptiveTopN: true},
		{Threshold: 0.9, Variant: pipeline.VariantLarge, Matcher: matcher.TypeMatcher{},
			StructureMatcher: matcher.PathContextMatcher{}, StructureWeight: 0.25, Parallelism: 3},
		{Variant: pipeline.VariantSmall, Matcher: matcher.DefaultSynonyms(),
			Agglomerative: true, IncludePartials: true, ClusterConfig: &cc},
	}
	for i, o := range cases {
		o.Objective.Alpha, o.Objective.K = 0.25, 3
		w, err := EncodeOptions(o)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		raw, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		var w2 WireOptions
		if err := json.Unmarshal(raw, &w2); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := DecodeOptions(w2)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, o) {
			t.Errorf("case %d: decode(encode(o)) =\n%+v, want\n%+v", i, got, o)
		}
		// The canonical request signature must survive the codec: that is
		// the integrity check the shard server enforces per request.
		personal := schema.MustParseSpec("book(title,author)")
		if sa, sb := serve.Signature(personal, o), serve.Signature(personal, got); sa != sb {
			t.Errorf("case %d: signature drifted across the codec:\n%s\n%s", i, sa, sb)
		}
	}

	// Matchers without a wire name must refuse to encode.
	notEncodable := []pipeline.Options{
		{Matcher: matcher.NameMatcher{Metric: strsim.MetricJaroWinkler}},
		{Matcher: matcher.NewSynonymMatcher([]string{"a", "b"})},
		{StructureMatcher: matcher.NameMatcher{}},
	}
	for i, o := range notEncodable {
		if _, err := EncodeOptions(o); err == nil {
			t.Errorf("case %d: non-wire matcher encoded silently", i)
		}
	}
}

func TestDescriptorEqual(t *testing.T) {
	repo := testRepo(t, 300, 3)
	ix := labeling.NewIndex(repo)
	views := serve.PartitionRepositoryViews(ix, 3, serve.PartitionClustered)
	d0 := ViewDescriptor(views[0], 0, 3, serve.PartitionClustered)
	if !d0.Equal(d0) {
		t.Fatal("descriptor not equal to itself")
	}
	// A second identical repository copy produces an equal descriptor —
	// the property distributed serving rests on.
	repo2 := testRepo(t, 300, 3)
	views2 := serve.PartitionRepositoryViews(labeling.NewIndex(repo2), 3, serve.PartitionClustered)
	if d := ViewDescriptor(views2[0], 0, 3, serve.PartitionClustered); !d0.Equal(d) {
		t.Errorf("identical repository copies disagree: %s vs %s", d0, d)
	}
	// Any topology difference must break equality.
	if d := ViewDescriptor(views[1], 1, 3, serve.PartitionClustered); d0.Equal(d) {
		t.Error("different shards compare equal")
	}
	if d := ViewDescriptor(views2[0], 0, 3, serve.PartitionBalanced); d0.Equal(d) {
		t.Error("different strategies compare equal")
	}
	other := serve.PartitionRepositoryViews(labeling.NewIndex(testRepo(t, 300, 4)), 3, serve.PartitionClustered)
	if d := ViewDescriptor(other[0], 0, 3, serve.PartitionClustered); d0.Equal(d) {
		t.Error("different repositories compare equal")
	}

	// Same SHAPE, different content: counts and tree IDs agree, so only
	// the repository content hash can tell these apart — and it must.
	shape := func(childType string) *schema.Repository {
		repo := schema.NewRepository()
		b := schema.NewBuilder("t")
		b.TypedElement(b.Root("a"), "b", childType)
		repo.MustAdd(b.MustTree())
		return repo
	}
	dA := ViewDescriptor(serve.PartitionRepositoryViews(labeling.NewIndex(shape("string")), 1, serve.PartitionClustered)[0], 0, 1, serve.PartitionClustered)
	dB := ViewDescriptor(serve.PartitionRepositoryViews(labeling.NewIndex(shape("integer")), 1, serve.PartitionClustered)[0], 0, 1, serve.PartitionClustered)
	if dA.Equal(dB) {
		t.Error("same-shaped repositories with different content compare equal; the content hash is not doing its job")
	}
	if dA.RepoNodes != dB.RepoNodes || len(dA.TreeIDs) != len(dB.TreeIDs) {
		t.Fatal("test premise broken: the two repositories should differ only in content")
	}
}

// TestStagedWireRoundTrip covers the pre-pass payload end to end within
// one process: candidates restricted to a view and the clusters handed to
// it survive encode → JSON → decode exactly (same node objects, same
// order), and so does a full report.
func TestStagedWireRoundTrip(t *testing.T) {
	repo := testRepo(t, 500, 9)
	ix := labeling.NewIndex(repo)
	views := serve.PartitionRepositoryViews(ix, 3, serve.PartitionClustered)
	personal := schema.MustParseSpec("address(name,email)")
	opts := pipeline.DefaultOptions()
	opts.MinSim = 0.35

	cands := matcher.FindCandidates(personal, repo, matcher.NameMatcher{}, matcher.Config{MinSim: opts.MinSim})
	clusters, _, err := pipeline.ComputeClusters(ix, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	for vi, v := range views {
		restricted := cands.Restrict(v.Contains)
		ws, err := EncodeCandidates(v, restricted)
		if err != nil {
			t.Fatalf("view %d: %v", vi, err)
		}
		raw, _ := json.Marshal(ws)
		var ws2 []WireCandidateSet
		if err := json.Unmarshal(raw, &ws2); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeCandidates(v, personal, ws2)
		if err != nil {
			t.Fatalf("view %d: %v", vi, err)
		}
		if len(got.Sets) != len(restricted.Sets) {
			t.Fatalf("view %d: %d sets, want %d", vi, len(got.Sets), len(restricted.Sets))
		}
		for i := range restricted.Sets {
			a, b := restricted.Sets[i].Elems, got.Sets[i].Elems
			if len(a) != len(b) {
				t.Fatalf("view %d set %d: %d elems, want %d", vi, i, len(b), len(a))
			}
			for j := range a {
				if a[j].Node != b[j].Node || a[j].Sim != b[j].Sim {
					t.Fatalf("view %d set %d elem %d differs", vi, i, j)
				}
			}
		}

		var mine []*cluster.Cluster
		for _, cl := range clusters {
			if cl.Len() > 0 && v.ContainsTree(cl.Elements[0].Node.Tree()) {
				mine = append(mine, cl)
			}
		}
		wcs, err := EncodeClusters(v, mine)
		if err != nil {
			t.Fatalf("view %d: %v", vi, err)
		}
		raw, _ = json.Marshal(wcs)
		var wcs2 []WireCluster
		if err := json.Unmarshal(raw, &wcs2); err != nil {
			t.Fatal(err)
		}
		gotCls, err := DecodeClusters(v, wcs2)
		if err != nil {
			t.Fatalf("view %d: %v", vi, err)
		}
		if !reflect.DeepEqual(gotCls, mine) && len(mine) > 0 {
			t.Fatalf("view %d: clusters differ after round trip", vi)
		}
	}

	// Report round trip against a view-backed run.
	v := views[0]
	rep, err := pipeline.NewViewRunner(v).Run(personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := EncodeReport(v, rep)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(wr)
	var wr2 WireReport
	if err := json.Unmarshal(raw, &wr2); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(v, wr2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("report differs after round trip:\n%+v\nwant\n%+v", got, rep)
	}
}
