package shardrpc_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"sort"
	"strings"
	"testing"

	"bellflower"
	"bellflower/internal/labeling"
	"bellflower/internal/pipeline"
	"bellflower/internal/repogen"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
	"bellflower/internal/shardrpc"
)

// freshRepo builds a deterministic synthetic repository — each call
// returns an INDEPENDENT copy, simulating separate processes loading the
// same repository file.
func freshRepo(t testing.TB, nodes int, seed int64) *schema.Repository {
	t.Helper()
	cfg := repogen.DefaultConfig()
	cfg.TargetNodes = nodes
	cfg.Seed = seed
	repo, err := repogen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func randomPersonal(rng *rand.Rand, repo *schema.Repository, extraNodes int) *schema.Tree {
	nodes := repo.Nodes()
	name := func() string { return nodes[rng.Intn(len(nodes))].Name }
	b := schema.NewBuilder("personal")
	parents := []*schema.Node{b.Root(name())}
	for i := 0; i < extraNodes; i++ {
		parents = append(parents, b.Element(parents[rng.Intn(len(parents))], name()))
	}
	return b.MustTree()
}

// reportKeys and canonicalReport mirror the serve package's equivalence
// harness: shard-independent mapping keys, equal-Δ runs sorted so the only
// legitimate divergence (tie order) is normalized away.
func reportKeys(rep *pipeline.Report) []string {
	keys := make([]string, len(rep.Mappings))
	for i, m := range rep.Mappings {
		var b strings.Builder
		fmt.Fprintf(&b, "%.12f", m.Score.Delta)
		for _, img := range m.Images {
			b.WriteString("|")
			b.WriteString(img.Tree().Name)
			b.WriteString(img.PathString())
		}
		keys[i] = b.String()
	}
	return keys
}

func canonicalReport(rep *pipeline.Report) string {
	keys := reportKeys(rep)
	i := 0
	for i < len(keys) {
		j := i + 1
		for j < len(keys) && rep.Mappings[j].Score.Delta == rep.Mappings[i].Score.Delta {
			j++
		}
		sort.Strings(keys[i:j])
		i = j
	}
	return strings.Join(keys, "\n")
}

// shardFleet hosts n shard servers over httptest, each with its own
// repository copy — the closest in-process approximation of n separate
// bellflower-server -shard-of processes.
type shardFleet struct {
	hosts   []*bellflower.ShardHost
	servers []*httptest.Server
	addrs   []string
}

// startFleet hosts the fleet; shards listed in jsonOnly are switched to
// the legacy JSON-only wire surface before their handlers are mounted
// (simulating not-yet-upgraded processes in a rolling upgrade).
func startFleet(t testing.TB, nodes int, seed int64, n int, strategy bellflower.PartitionStrategy, jsonOnly ...int) *shardFleet {
	t.Helper()
	f := &shardFleet{}
	for i := 0; i < n; i++ {
		host, err := bellflower.NewShardHost(freshRepo(t, nodes, seed), i, n, bellflower.ServiceConfig{Workers: 2}, strategy)
		if err != nil {
			t.Fatal(err)
		}
		if slices.Contains(jsonOnly, i) {
			host.SetJSONOnly()
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/shard/match", host.HandleMatch)
		mux.HandleFunc("/v1/shard/stats", host.HandleStats)
		srv := httptest.NewServer(mux)
		f.hosts = append(f.hosts, host)
		f.servers = append(f.servers, srv)
		f.addrs = append(f.addrs, srv.URL)
	}
	t.Cleanup(f.stop)
	return f
}

func (f *shardFleet) stop() {
	for _, s := range f.servers {
		s.Close()
	}
	for _, h := range f.hosts {
		h.Close()
	}
}

// TestDistributedEquivalence is the acceptance harness for remote shards:
// a distributed match — router in this process, every shard behind a real
// HTTP hop with its OWN repository copy — must be byte-identical
// (canonical form) to the unsharded report, for both partition strategies,
// several shard counts, and both the tree and k-means clustering variants
// (the pre-pass clusters globally, so k-means stays exact even when the
// generation runs in other processes).
func TestDistributedEquivalence(t *testing.T) {
	cases := []struct {
		seed       int64
		nodes      int
		extraNodes int
		variant    pipeline.Variant
	}{
		{seed: 21, nodes: 350, extraNodes: 2, variant: pipeline.VariantTree},
		{seed: 22, nodes: 500, extraNodes: 3, variant: pipeline.VariantMedium},
	}
	for _, tc := range cases {
		routerRepo := freshRepo(t, tc.nodes, tc.seed)
		rng := rand.New(rand.NewSource(tc.seed * 7919))
		personal := randomPersonal(rng, routerRepo, tc.extraNodes)

		opts := bellflower.DefaultOptions()
		opts.Variant = tc.variant
		opts.MinSim = 0.4
		opts.Threshold = 0.6

		direct, err := bellflower.NewMatcher(freshRepo(t, tc.nodes, tc.seed)).Match(personal, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		want := canonicalReport(direct)
		if len(direct.Mappings) == 0 {
			t.Logf("seed %d: unsharded run found no mappings; equivalence still checked", tc.seed)
		}
		topNOpts := opts
		topNOpts.TopN = 5
		directTopN, err := bellflower.NewMatcher(freshRepo(t, tc.nodes, tc.seed)).Match(personal, topNOpts)
		if err != nil {
			t.Fatalf("seed %d topN: %v", tc.seed, err)
		}

		for _, strategy := range []bellflower.PartitionStrategy{bellflower.PartitionBalanced, bellflower.PartitionClustered} {
			for _, shards := range []int{2, 3, 5} {
				fleet := startFleet(t, tc.nodes, tc.seed, shards, strategy)
				backend, err := bellflower.NewDistributedService(routerRepo, fleet.addrs, bellflower.ServiceConfig{Workers: 2}, strategy)
				if err != nil {
					t.Fatalf("seed %d %v shards=%d: %v", tc.seed, strategy, shards, err)
				}
				rep, err := backend.Match(context.Background(), personal, opts)
				if err != nil {
					backend.Close()
					t.Fatalf("seed %d %v shards=%d: %v", tc.seed, strategy, shards, err)
				}
				if rep.Incomplete || len(rep.ShardErrors) != 0 {
					t.Errorf("seed %d %v shards=%d: healthy distributed fan-out marked incomplete", tc.seed, strategy, shards)
				}
				if got := canonicalReport(rep); got != want {
					t.Errorf("seed %d %v shards=%d: distributed report differs from unsharded\n--- unsharded\n%s\n--- distributed\n%s",
						tc.seed, strategy, shards, want, got)
				}
				if rep.MappingElements != direct.MappingElements {
					t.Errorf("seed %d %v shards=%d: mapping elements %d, want %d",
						tc.seed, strategy, shards, rep.MappingElements, direct.MappingElements)
				}
				// The adaptive parallel top-N engine, running inside the
				// remote shard processes, must carry the same Δ sequence
				// across the wire as plain unsharded truncation.
				adaptive := topNOpts
				adaptive.AdaptiveTopN = true
				adaptive.Parallelism = 3
				repAd, err := backend.Match(context.Background(), personal, adaptive)
				if err != nil {
					backend.Close()
					t.Fatalf("seed %d %v shards=%d adaptive: %v", tc.seed, strategy, shards, err)
				}
				dd, ad := directTopN.Deltas(), repAd.Deltas()
				if len(dd) != len(ad) {
					t.Fatalf("seed %d %v shards=%d: adaptive topN found %d mappings, want %d",
						tc.seed, strategy, shards, len(ad), len(dd))
				}
				for i := range dd {
					if dd[i] != ad[i] {
						t.Errorf("seed %d %v shards=%d: adaptive topN rank %d Δ=%v, want %v",
							tc.seed, strategy, shards, i, ad[i], dd[i])
					}
				}
				backend.Close()
				fleet.stop()
			}
		}
	}
}

// TestDistributedShardDeath: killing one shard server fails strict
// requests with that shard's error, while a partial-results router serves
// the surviving shards' merge as Report.Incomplete with the dead shard
// identified — and construction-time health checks tolerate the dead
// shard only under partial results.
func TestDistributedShardDeath(t *testing.T) {
	const nodes, seed, shards = 400, 31, 3
	fleet := startFleet(t, nodes, seed, shards, bellflower.PartitionClustered)
	routerRepo := freshRepo(t, nodes, seed)
	rng := rand.New(rand.NewSource(seed))
	personal := randomPersonal(rng, routerRepo, 2)
	opts := bellflower.DefaultOptions()
	opts.Variant = bellflower.VariantTree
	opts.MinSim = 0.4
	opts.Threshold = 0.6

	strict, err := bellflower.NewDistributedService(routerRepo, fleet.addrs, bellflower.ServiceConfig{Workers: 2}, bellflower.PartitionClustered)
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	partial, err := bellflower.NewDistributedService(freshRepo(t, nodes, seed), fleet.addrs,
		bellflower.ServiceConfig{Workers: 2, PartialResults: true}, bellflower.PartitionClustered)
	if err != nil {
		t.Fatal(err)
	}
	defer partial.Close()

	// Healthy baseline through both routers.
	if _, err := strict.Match(context.Background(), personal, opts); err != nil {
		t.Fatal(err)
	}
	whole, err := partial.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if whole.Incomplete {
		t.Fatal("healthy distributed fan-out marked incomplete")
	}

	// Kill shard 1's process.
	fleet.servers[1].Close()

	if _, err := strict.Match(context.Background(), personal, opts); err == nil {
		t.Error("strict distributed router served a fan-out with a dead shard")
	}
	rep, err := partial.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatalf("partial distributed router failed outright: %v", err)
	}
	if !rep.Incomplete {
		t.Error("degraded distributed merge not marked Incomplete")
	}
	if len(rep.ShardErrors) != 1 || rep.ShardErrors[0].Shard != 1 {
		t.Fatalf("ShardErrors = %+v, want exactly shard 1", rep.ShardErrors)
	}
	if rep.ShardErrors[0].Err == "" {
		t.Error("dead shard's error carries no message")
	}
	if got := partial.Stats().PartialResults; got != 1 {
		t.Errorf("PartialResults counter = %d, want 1", got)
	}

	// Construction with a dead shard: strict fails fast, partial tolerates.
	if _, err := bellflower.NewDistributedService(freshRepo(t, nodes, seed), fleet.addrs,
		bellflower.ServiceConfig{Workers: 2}, bellflower.PartitionClustered); err == nil {
		t.Error("strict construction succeeded with a dead shard")
	}
	late, err := bellflower.NewDistributedService(freshRepo(t, nodes, seed), fleet.addrs,
		bellflower.ServiceConfig{Workers: 2, PartialResults: true}, bellflower.PartitionClustered)
	if err != nil {
		t.Fatalf("partial construction rejected a dead shard: %v", err)
	}
	late.Close()
}

// TestDistributedDescriptorMismatch: a router partitioned with a different
// strategy than the shard servers must fail the health handshake with
// ErrDescriptorMismatch — never serve mappings from a mismatched ID space.
func TestDistributedDescriptorMismatch(t *testing.T) {
	const nodes, seed = 300, 41
	fleet := startFleet(t, nodes, seed, 2, bellflower.PartitionClustered)
	_, err := bellflower.NewDistributedService(freshRepo(t, nodes, seed), fleet.addrs,
		bellflower.ServiceConfig{Workers: 2, PartialResults: true}, bellflower.PartitionBalanced)
	if !errors.Is(err, shardrpc.ErrDescriptorMismatch) {
		t.Fatalf("err = %v, want ErrDescriptorMismatch", err)
	}
	// Per-request enforcement too: a raw client with a doctored descriptor
	// is rejected by the shard server even past the handshake.
	routerRepo := freshRepo(t, nodes, seed)
	ix := labeling.NewIndex(routerRepo)
	views := serve.PartitionRepositoryViews(ix, 2, serve.PartitionClustered)
	desc := shardrpc.ViewDescriptor(views[0], 0, 2, serve.PartitionClustered)
	desc.Strategy = "balanced" // doctored
	rs := shardrpc.NewRemoteShard(fleet.addrs[0], views[0], desc, shardrpc.RemoteShardConfig{})
	personal := schema.MustParseSpec("book(title,author)")
	if _, err := rs.Match(context.Background(), personal, pipeline.DefaultOptions()); !errors.Is(err, shardrpc.ErrDescriptorMismatch) {
		t.Fatalf("doctored descriptor: err = %v, want ErrDescriptorMismatch", err)
	}

	// And through a partial-results fan-out: shard 1 is healthy, shard 0
	// answers per-request 409s (it was "reconfigured" after the
	// handshake). The fan-out must hard-fail the request instead of
	// degrading to an Incomplete merge — a misconfigured shard's absence
	// is not a failure to tolerate but wrong answers to refuse.
	healthy := shardrpc.NewRemoteShard(fleet.addrs[1], views[1],
		shardrpc.ViewDescriptor(views[1], 1, 2, serve.PartitionClustered), shardrpc.RemoteShardConfig{})
	router := serve.NewRouterWithShardBackends(ix, views,
		[]serve.ShardBackend{rs, healthy}, serve.Config{Workers: 1, PartialResults: true})
	defer router.Close()
	if _, err := router.Match(context.Background(), personal, pipeline.DefaultOptions()); !errors.Is(err, serve.ErrShardMismatch) {
		t.Fatalf("partial fan-out tolerated a descriptor mismatch: err = %v", err)
	}
	if st := router.Stats(); st.PartialResults != 0 {
		t.Errorf("mismatch served as a partial merge (%d)", st.PartialResults)
	}
}

// TestRemoteShardRetryOnce: a transport-level failure on the first attempt
// (connection killed mid-flight) is retried once and the request succeeds.
func TestRemoteShardRetryOnce(t *testing.T) {
	const nodes, seed = 300, 43
	host, err := bellflower.NewShardHost(freshRepo(t, nodes, seed), 0, 1, bellflower.ServiceConfig{Workers: 2}, bellflower.PartitionClustered)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	killed := false
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shard/match", func(w http.ResponseWriter, r *http.Request) {
		if !killed {
			killed = true
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder not hijackable")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // first attempt dies below HTTP
			return
		}
		host.HandleMatch(w, r)
	})
	mux.HandleFunc("/v1/shard/stats", host.HandleStats)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	routerRepo := freshRepo(t, nodes, seed)
	ix := labeling.NewIndex(routerRepo)
	views := serve.PartitionRepositoryViews(ix, 1, serve.PartitionClustered)
	rs := shardrpc.NewRemoteShard(srv.URL, views[0],
		shardrpc.ViewDescriptor(views[0], 0, 1, serve.PartitionClustered), shardrpc.RemoteShardConfig{})
	personal := schema.MustParseSpec("address(name,email)")
	opts := pipeline.DefaultOptions()
	opts.MinSim = 0.4
	rep, err := rs.Match(context.Background(), personal, opts)
	if err != nil {
		t.Fatalf("retry did not rescue the request: %v", err)
	}
	if !killed {
		t.Fatal("test never exercised the kill path")
	}
	if rep == nil {
		t.Fatal("nil report after retry")
	}
}

// TestDistributedTraceStitching: a traced distributed match must yield ONE
// stitched span tree. The router's own spans (prepass, fanout, merge) and
// every shard's remote spans (shard.serve → decode, match, encode), shipped
// back over the real HTTP hop and grafted, all hang off the same trace with
// correct parentage: each shard.serve sits under the rpc.roundtrip span
// whose X-Bellflower-Trace header it resumed from.
func TestDistributedTraceStitching(t *testing.T) {
	const seed, nodes, shards = 31, 350, 2
	routerRepo := freshRepo(t, nodes, seed)
	rng := rand.New(rand.NewSource(seed * 7919))
	personal := randomPersonal(rng, routerRepo, 2)

	fleet := startFleet(t, nodes, seed, shards, bellflower.PartitionBalanced)
	backend, err := bellflower.NewDistributedService(routerRepo, fleet.addrs,
		bellflower.ServiceConfig{Workers: 2}, bellflower.PartitionBalanced)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()

	opts := bellflower.DefaultOptions()
	opts.MinSim = 0.4

	ctx, tr, root := bellflower.StartRequestTrace(context.Background(), "test.match")
	if tr == nil {
		t.Fatal("tracing disabled; cannot run stitching test")
	}
	if _, err := backend.Match(ctx, personal, opts); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := tr.Tree()
	if tree == nil {
		t.Fatal("traced request produced no span tree")
	}
	if tree.Name != "test.match" {
		t.Fatalf("tree root is %q, want the caller's root span", tree.Name)
	}

	// Index every node by name, remembering its parent, so parentage is
	// checkable without caring about intermediate wrapper spans.
	type placed struct{ node, parent *bellflower.TraceNode }
	byName := map[string][]placed{}
	var walk func(n, parent *bellflower.TraceNode)
	walk = func(n, parent *bellflower.TraceNode) {
		byName[n.Name] = append(byName[n.Name], placed{n, parent})
		for _, c := range n.Children {
			walk(c, n)
		}
	}
	walk(tree, nil)

	for _, name := range []string{"prepass", "fanout", "merge"} {
		if got := len(byName[name]); got != 1 {
			t.Fatalf("router span %q appears %d times in the tree, want 1", name, got)
		}
		if byName[name][0].node.Remote {
			t.Fatalf("router span %q marked remote", name)
		}
	}
	if got := len(byName["shard"]); got != shards {
		t.Fatalf("%d shard fan-out spans, want %d", got, shards)
	}
	if got := len(byName["rpc.roundtrip"]); got != shards {
		t.Fatalf("%d rpc.roundtrip spans, want %d", got, shards)
	}

	serves := byName["shard.serve"]
	if len(serves) != shards {
		t.Fatalf("%d grafted shard.serve spans, want %d", len(serves), shards)
	}
	for _, p := range serves {
		if !p.node.Remote {
			t.Fatal("shard.serve span not marked remote after graft")
		}
		if p.parent == nil || p.parent.Name != "rpc.roundtrip" {
			name := "<root>"
			if p.parent != nil {
				name = p.parent.Name
			}
			t.Fatalf("shard.serve parented to %q, want rpc.roundtrip", name)
		}
		kids := map[string]bool{}
		for _, c := range p.node.Children {
			kids[c.Name] = true
			if !c.Remote {
				t.Fatalf("shard-side span %q not marked remote", c.Name)
			}
		}
		for _, want := range []string{"decode", "match", "encode"} {
			if !kids[want] {
				t.Fatalf("shard.serve is missing child span %q (has %v)", want, p.node.Children)
			}
		}
	}
}
