package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
)

// testShard is one hosted shard with its httptest server and the
// CLIENT-side state — an independent repository copy with its own index
// and views, the way a real router process holds them.
type testShard struct {
	host       *ShardServer
	srv        *httptest.Server
	rs         *RemoteShard
	clientRepo *schema.Repository
	clientIx   *labeling.Index
	clientView *labeling.View
}

func shardUnderTest(t *testing.T, mods ...func(*ShardServer)) *testShard {
	t.Helper()
	serverRepo := testRepo(t, 400, 17)
	six := labeling.NewIndex(serverRepo)
	sviews := serve.PartitionRepositoryViews(six, 2, serve.PartitionClustered)
	svc := serve.New(pipeline.NewViewRunner(sviews[0]), serve.Config{Workers: 2})
	host := NewShardServer(svc, sviews[0], ViewDescriptor(sviews[0], 0, 2, serve.PartitionClustered))
	t.Cleanup(host.Close)
	for _, mod := range mods {
		mod(host)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shard/match", host.HandleMatch)
	mux.HandleFunc("/v1/shard/stats", host.HandleStats)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	clientRepo := testRepo(t, 400, 17)
	cix := labeling.NewIndex(clientRepo)
	cviews := serve.PartitionRepositoryViews(cix, 2, serve.PartitionClustered)
	rs := NewRemoteShard(srv.URL, cviews[0], ViewDescriptor(cviews[0], 0, 2, serve.PartitionClustered), RemoteShardConfig{})
	return &testShard{host: host, srv: srv, rs: rs, clientRepo: clientRepo, clientIx: cix, clientView: cviews[0]}
}

func postMatch(t *testing.T, srv *httptest.Server, req MatchRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/shard/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestShardServerRejections pins the protocol's failure statuses: wrong
// method, malformed body, mismatched descriptor, malformed tree, staged
// clusters without candidates, signature drift, and a closed service.
func TestShardServerRejections(t *testing.T) {
	ts := shardUnderTest(t)
	host, srv, rs := ts.host, ts.srv, ts.rs
	personal := schema.MustParseSpec("book(title,author)")
	goodOpts, err := EncodeOptions(pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	good := MatchRequest{
		Descriptor: host.Descriptor(),
		Personal:   EncodeTree(personal),
		Options:    goodOpts,
	}

	if resp, err := http.Get(srv.URL + "/v1/shard/match"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET match: %v %v, want 405", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Post(srv.URL+"/v1/shard/stats", "application/json", nil); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST stats: %v %v, want 405", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Post(srv.URL+"/v1/shard/match", "application/json", bytes.NewReader([]byte("{nope"))); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %v %v, want 400", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	doctored := good
	doctored.Descriptor.Shard = 1
	if resp := postMatch(t, srv, doctored); resp.StatusCode != http.StatusConflict {
		t.Errorf("descriptor mismatch: %d, want 409", resp.StatusCode)
	}

	badTree := good
	badTree.Personal = WireTree{Name: "broken", Nodes: []WireNode{{Depth: 3, Name: "x"}}}
	if resp := postMatch(t, srv, badTree); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed tree: %d, want 400", resp.StatusCode)
	}

	clustersOnly := good
	clustersOnly.HasClusters = true
	if resp := postMatch(t, srv, clustersOnly); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("clusters without candidates: %d, want 400", resp.StatusCode)
	}

	drifted := good
	drifted.Signature = "not-the-real-signature"
	if resp := postMatch(t, srv, drifted); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("signature drift: %d, want 400", resp.StatusCode)
	}

	badOpts := good
	badOpts.Options.Matcher = "no-such-matcher"
	if resp := postMatch(t, srv, badOpts); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown matcher: %d, want 400", resp.StatusCode)
	}

	// Accessors, for completeness of the host surface.
	if host.Service() == nil || rs.Addr() != srv.URL || rs.CapacityHint() <= 0 || !rs.Descriptor().Equal(host.Descriptor()) {
		t.Error("host/client accessors inconsistent")
	}

	// A closed shard service answers 503, and the client maps it back to
	// serve.ErrClosed.
	host.Close()
	if resp := postMatch(t, srv, good); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("closed service: %d, want 503", resp.StatusCode)
	}
	if _, err := rs.Match(context.Background(), personal, pipeline.DefaultOptions()); !errors.Is(err, serve.ErrClosed) {
		t.Errorf("client error for closed shard = %v, want ErrClosed", err)
	}
	rs.Close()
	if _, err := rs.Match(context.Background(), personal, pipeline.DefaultOptions()); !errors.Is(err, serve.ErrClosed) {
		t.Errorf("closed client error = %v, want ErrClosed", err)
	}
}

// TestRemoteShardStagedPaths drives MatchWithCandidates and
// MatchWithClusters over a real HTTP hop and checks the responses equal
// the same calls against an equivalent in-process service — including a
// run with partial mappings, which exercise the report codec's -1
// (uncovered rank) encoding.
func TestRemoteShardStagedPaths(t *testing.T) {
	ts := shardUnderTest(t)
	rs, clientRepo, cix := ts.rs, ts.clientRepo, ts.clientIx
	local := serve.New(pipeline.NewViewRunner(ts.clientView), serve.Config{Workers: 2})
	defer local.Close()

	personal := schema.MustParseSpec("address(name,email)")
	opts := pipeline.DefaultOptions()
	opts.MinSim = 0.35
	opts.IncludePartials = true

	cands := matcher.FindCandidates(personal, clientRepo, matcher.NameMatcher{}, matcher.Config{MinSim: opts.MinSim}).
		Restrict(ts.clientView.Contains)
	wantCand, err := local.MatchWithCandidates(context.Background(), personal, opts, cands)
	if err != nil {
		t.Fatal(err)
	}
	gotCand, err := rs.MatchWithCandidates(context.Background(), personal, opts, cands)
	if err != nil {
		t.Fatal(err)
	}
	// Node pointers differ across repository copies; compare structurally
	// via path strings and scores.
	assertReportsEquivalent(t, "MatchWithCandidates", gotCand, wantCand)

	clusters, iters, err := pipeline.ComputeClusters(cix, matcher.FindCandidates(personal, clientRepo, matcher.NameMatcher{}, matcher.Config{MinSim: opts.MinSim}), opts)
	if err != nil {
		t.Fatal(err)
	}
	myClusters := clustersForView(ts.clientView, clusters)
	wantCl, err := local.MatchWithClusters(context.Background(), personal, opts, cands, myClusters, iters)
	if err != nil {
		t.Fatal(err)
	}
	gotCl, err := rs.MatchWithClusters(context.Background(), personal, opts, cands, myClusters, iters)
	if err != nil {
		t.Fatal(err)
	}
	assertReportsEquivalent(t, "MatchWithClusters", gotCl, wantCl)

	// Nil-argument guards.
	if _, err := rs.MatchWithCandidates(context.Background(), personal, opts, nil); err == nil {
		t.Error("nil candidates accepted")
	}
	if _, err := rs.MatchWithClusters(context.Background(), personal, opts, cands, nil, 0); err == nil {
		t.Error("nil clusters accepted")
	}

	// Remote stats reflect the served work and the descriptor handshake.
	if err := rs.Check(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Both staged calls share one request signature, so the shard served
	// the second from its report cache: exactly one pipeline run.
	if st := rs.Stats(); st.PipelineRuns != 1 || st.CacheHits != 1 {
		t.Errorf("remote stats report %d runs / %d cache hits, want 1 / 1", st.PipelineRuns, st.CacheHits)
	}
	_ = ts.host
}

// clustersForView keeps the clusters whose elements live in the view's
// trees (clusters never span trees, so membership of the first element
// decides).
func clustersForView(v *labeling.View, cls []*cluster.Cluster) []*cluster.Cluster {
	out := []*cluster.Cluster{}
	for _, cl := range cls {
		if cl.Len() > 0 && v.ContainsTree(cl.Elements[0].Node.Tree()) {
			out = append(out, cl)
		}
	}
	return out
}

func assertReportsEquivalent(t *testing.T, what string, got, want *pipeline.Report) {
	t.Helper()
	if len(got.Mappings) != len(want.Mappings) || got.MappingElements != want.MappingElements ||
		got.Clusters != want.Clusters || len(got.Partials) != len(want.Partials) {
		t.Fatalf("%s: shape differs: got %d mappings/%d partials, want %d/%d",
			what, len(got.Mappings), len(got.Partials), len(want.Mappings), len(want.Partials))
	}
	for i := range want.Mappings {
		g, w := got.Mappings[i], want.Mappings[i]
		if g.Score != w.Score || !reflect.DeepEqual(g.Sims, w.Sims) {
			t.Fatalf("%s: mapping %d scores differ", what, i)
		}
		for j := range w.Images {
			if g.Images[j].PathString() != w.Images[j].PathString() {
				t.Fatalf("%s: mapping %d image %d differs", what, i, j)
			}
		}
	}
	for i := range want.Partials {
		g, w := got.Partials[i], want.Partials[i]
		if g.Score != w.Score || g.CoveredMask != w.CoveredMask || g.Covered != w.Covered {
			t.Fatalf("%s: partial %d differs", what, i)
		}
		for j := range w.Images {
			switch {
			case w.Images[j] == nil && g.Images[j] != nil, w.Images[j] != nil && g.Images[j] == nil:
				t.Fatalf("%s: partial %d image %d coverage differs", what, i, j)
			case w.Images[j] != nil && g.Images[j].PathString() != w.Images[j].PathString():
				t.Fatalf("%s: partial %d image %d differs", what, i, j)
			}
		}
	}
}
