package shardrpc

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// binTestRequest builds a request exercising every section of the binary
// layout: descriptor, tree, signature, hash, options with a cluster
// config, candidate sets (including an empty one), clusters (including a
// negative medoid) and iterations.
func binTestRequest() *MatchRequest {
	cc := WireClusterConfig{JoinThreshold: 3, RemoveBelow: 1, SplitAbove: 9, MaxIterations: 4, Stability: 0.75, Seeding: 1, SeedStride: 2, SimBias: 0.5}
	req := &MatchRequest{
		Descriptor: Descriptor{
			Shard: 1, NumShards: 4, Strategy: "clustered",
			TreeIDs: []int{3, 7, 12}, RepoNodes: 412, RepoHash: "aabbccdd",
		},
		Personal: WireTree{Name: "personal", Nodes: []WireNode{
			{Depth: 0, Name: "book"},
			{Depth: 1, Name: "title", Type: "string"},
			{Depth: 1, Attr: true, Name: "isbn", Type: "string"},
		}},
		Signature: "sig-1",
		Options: WireOptions{
			Alpha: 0.5, K: 2, Threshold: 0.8, MinSim: 0.3, TopN: 5,
			Variant: 2, Algorithm: 1, Matcher: "token", Structure: "path",
			StructureWeight: 0.25, Parallelism: 3,
			IncludePartials: true, OrderClusters: true, AdaptiveTopN: true,
			ClusterConfig: &cc,
		},
		HasCandidates: true,
		Candidates: []WireCandidateSet{
			{Local: []int32{4, 9, 120}, Sims: []float64{0.91, 0.5, 0.25}},
			{}, // a personal node with no candidates: nil arrays
			{Local: []int32{0}, Sims: []float64{1}},
		},
		HasClusters: true,
		Clusters: []WireCluster{
			{ID: 0, TreeID: 2, Medoid: 7, Local: []int32{7, 8}, Masks: []uint64{3, 5}, Sims: []float64{0.9, 0.4}},
			{ID: 1, TreeID: 5, Medoid: -1, Local: []int32{}, Masks: []uint64{}, Sims: []float64{}},
		},
		Iterations: 6,
	}
	req.ProjectionHash = ProjectionDigest(req)
	return req
}

func binTestResponse() *MatchResponse {
	return &MatchResponse{
		Report: WireReport{
			Variant: 2, MappingElements: 3, Clusters: 4, UsefulClusters: 2,
			AvgElementsPerUsefulCluster: 1.5, ClusterSizes: []int{2, 0, 1, 1}, Iterations: 3,
			Counters: WireCounters{SearchSpace: 128, PartialMappings: 17, CompleteMappings: 4, Found: 4, UsefulClusters: 2},
			Mappings: []WireMapping{
				{Local: []int32{1, 2, 3}, Sims: []float64{1, 0.5, 0.25}, Score: WireScore{Delta: 0.9, Sim: 0.8, Path: 0.7, Et: 3}, ClusterID: 2},
			},
			Partials: []WirePartial{
				{Local: []int32{1, -1, 3}, Sims: []float64{1, 0, 0.25}, CoveredMask: 5, Covered: 2, Score: WireScore{Delta: 0.4, Sim: 0.3, Path: 0.2, Et: 2}, ClusterID: 0},
			},
			MatchNS: 12345, ClusterNS: 678, GenNS: 91011, FirstGoodAfter: 2,
		},
		Spans: []WireSpan{
			{ID: "a1", Parent: "", Name: "shard.serve", StartNS: 100, DurNS: 900, Attrs: []WireAttr{{Key: "k", Value: "v"}}},
			{ID: "b2", Parent: "a1", Name: "stage.match", StartNS: 150, DurNS: 300},
		},
	}
}

// TestBinaryRequestRoundTrip pins exact identity — including nil-vs-empty
// slice distinctions — through the binary codec, and JSON-level
// equivalence between a binary-tripped and a JSON-tripped request.
func TestBinaryRequestRoundTrip(t *testing.T) {
	req := binTestRequest()
	got, err := DecodeBinaryMatchRequest(EncodeBinaryMatchRequest(req))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("binary round trip drifted:\n%+v\nvs\n%+v", got, req)
	}

	var jsonTripped MatchRequest
	raw, _ := json.Marshal(req)
	if err := json.Unmarshal(raw, &jsonTripped); err != nil {
		t.Fatalf("json: %v", err)
	}
	jb, _ := json.Marshal(jsonTripped)
	bb, _ := json.Marshal(got)
	if string(jb) != string(bb) {
		t.Fatalf("binary- and JSON-tripped requests disagree:\n%s\nvs\n%s", bb, jb)
	}
}

// TestBinaryRequestSlim pins the projection-reference layout: the
// projection section is omitted entirely and comes back zero-valued, with
// the hash and flag intact.
func TestBinaryRequestSlim(t *testing.T) {
	full := binTestRequest()
	slim := *full
	slim.ProjectionRef = true
	slim.HasCandidates, slim.Candidates = false, nil
	slim.HasClusters, slim.Clusters = false, nil
	slim.Iterations = 0

	fullLen := len(EncodeBinaryMatchRequest(full))
	b := EncodeBinaryMatchRequest(&slim)
	if len(b) >= fullLen {
		t.Fatalf("slim body (%d bytes) not smaller than full body (%d bytes)", len(b), fullLen)
	}
	got, err := DecodeBinaryMatchRequest(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.ProjectionRef || got.ProjectionHash != full.ProjectionHash {
		t.Fatalf("slim request lost its reference: ref=%v hash=%q", got.ProjectionRef, got.ProjectionHash)
	}
	if got.HasCandidates || got.Candidates != nil || got.HasClusters || got.Clusters != nil || got.Iterations != 0 {
		t.Fatalf("slim request grew a projection: %+v", got)
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	resp := binTestResponse()
	got, err := DecodeBinaryMatchResponse(EncodeBinaryMatchResponse(resp))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("binary round trip drifted:\n%+v\nvs\n%+v", got, resp)
	}
}

// TestBinaryDecodeErrors drives the decoders through every truncation
// point of valid bodies plus version and trailing-byte violations: all
// must fail cleanly, never panic, never succeed.
func TestBinaryDecodeErrors(t *testing.T) {
	reqBody := EncodeBinaryMatchRequest(binTestRequest())
	respBody := EncodeBinaryMatchResponse(binTestResponse())

	for n := 0; n < len(reqBody); n++ {
		if _, err := DecodeBinaryMatchRequest(reqBody[:n]); err == nil {
			t.Fatalf("request truncated to %d/%d bytes decoded successfully", n, len(reqBody))
		}
	}
	for n := 0; n < len(respBody); n++ {
		if _, err := DecodeBinaryMatchResponse(respBody[:n]); err == nil {
			t.Fatalf("response truncated to %d/%d bytes decoded successfully", n, len(respBody))
		}
	}

	bad := append([]byte{}, reqBody...)
	bad[0] = binaryVersion + 1
	if _, err := DecodeBinaryMatchRequest(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
	if _, err := DecodeBinaryMatchRequest(append(append([]byte{}, reqBody...), 0)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
	if _, err := DecodeBinaryMatchResponse(append(append([]byte{}, respBody...), 0)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
}

// TestProjectionDigest pins the content address: codec-independent, stable
// across the JSON transport's empty-vs-nil folding, and sensitive to the
// payload it covers.
func TestProjectionDigest(t *testing.T) {
	req := binTestRequest()
	d := ProjectionDigest(req)
	if d == "" || d != req.ProjectionHash {
		t.Fatalf("digest %q, want the request's own %q", d, req.ProjectionHash)
	}

	// Survives both transports.
	bin, err := DecodeBinaryMatchRequest(EncodeBinaryMatchRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got := ProjectionDigest(bin); got != d {
		t.Fatalf("digest drifted over binary: %q vs %q", got, d)
	}
	var js MatchRequest
	raw, _ := json.Marshal(req)
	if err := json.Unmarshal(raw, &js); err != nil {
		t.Fatal(err)
	}
	if got := ProjectionDigest(&js); got != d {
		t.Fatalf("digest drifted over JSON: %q vs %q", got, d)
	}

	// An empty-but-present cluster list hashes like a nil one: JSON's
	// omitempty cannot ship the distinction, so the digest must not
	// depend on it.
	a, b := *req, *req
	a.Clusters = []WireCluster{}
	b.Clusters = nil
	if ProjectionDigest(&a) != ProjectionDigest(&b) {
		t.Fatal("digest distinguishes empty from nil clusters; JSON transport would break it")
	}

	// Any payload change moves the digest.
	mutated := *req
	mutated.Iterations++
	if ProjectionDigest(&mutated) == d {
		t.Fatal("digest ignored an iterations change")
	}
	mutated = *req
	mutated.Candidates = append([]WireCandidateSet(nil), req.Candidates...)
	mutated.Candidates[0] = WireCandidateSet{Local: []int32{4, 9, 121}, Sims: []float64{0.91, 0.5, 0.25}}
	if ProjectionDigest(&mutated) == d {
		t.Fatal("digest ignored a candidate change")
	}

	// ...but fields outside the projection do not.
	renamed := *req
	renamed.Signature = "other"
	renamed.Descriptor.Shard = 3
	if ProjectionDigest(&renamed) != d {
		t.Fatal("digest depends on non-projection fields")
	}
}
