// Package shardrpc is the wire protocol behind distributed shard serving:
// it lets a serve.Router fan match requests out to shards hosted in OTHER
// processes, while keeping the merged report byte-identical to an
// unsharded run.
//
// # Model
//
// Both sides load the same repository (same file or the same synthetic
// seed) and partition it deterministically with the same strategy, so the
// router and every shard server agree on the shard views without ever
// shipping the repository over the wire. What crosses the wire per request
// is exactly the serve layer's pre-pass handoff:
//
//   - the personal schema (preorder node list),
//   - the request options (canonically encoded; matchers by name),
//   - the projected candidate set and the translated clusters, node
//     references encoded in the shard view's dense LOCAL ID space
//     (labeling.View.LocalID), and
//   - the shard Descriptor — partition shape plus the member tree IDs —
//     which the shard server verifies before serving, so a misconfigured
//     topology fails loudly instead of returning wrong mappings.
//
// The response is the shard's pipeline.Report with mapping images encoded
// as local IDs; the router's RemoteShard client decodes them back into its
// own repository nodes, after which merging is indistinguishable from the
// in-process fan-out.
//
// # Pieces
//
// ShardServer adapts one view-backed serve.Service to the two HTTP
// endpoints (/v1/shard/match, /v1/shard/stats) that bellflower-server
// exposes in -shard-of mode. RemoteShard is the client: it implements
// serve.ShardBackend with per-attempt timeouts, one retry on transport
// errors, and a Check health probe that verifies the remote descriptor —
// failures surface as per-shard errors, feeding the router's
// partial-results machinery (Report.Incomplete, ShardErrors, per-shard
// metrics). Integrity is belt-and-braces: requests carry the router's
// canonical request signature and the shard recomputes it after decoding,
// so any codec disagreement is a 400, never a silently different report.
package shardrpc
