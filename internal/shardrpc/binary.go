package shardrpc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// The binary wire codec. JSON is the protocol's lingua franca — every
// shard speaks it forever — but the hot match payloads (candidate sets,
// translated clusters, ranked reports) are dense arrays of small local
// IDs and float64s, which JSON inflates 5–10×. This codec writes the same
// wire structs as length-prefixed binary: uvarints for counts and IDs,
// zig-zag varints for signed integers, fixed 8-byte little-endian bits
// for float64s, and uvarint-length-prefixed UTF-8 for strings.
//
// The codec is a pure transport: it encodes and decodes the SAME wire
// structs (MatchRequest, MatchResponse) as the JSON codec, so everything
// downstream of the parse — descriptor verification, signature checks,
// Decode* semantics — is codec-agnostic, and decode(binary(x)) equals
// decode(json(x)) structurally for every request the client can build
// (pinned by FuzzShardWire).
//
// Negotiation: a shard advertises its codecs in the /v1/shard/stats
// handshake (StatsResponse.Codecs); a shard that does not advertise —
// any pre-codec build — is spoken to in JSON, so binary routers interop
// with JSON-only shards during a rolling upgrade. Requests declare their
// codec via Content-Type; responses mirror the request's codec. The
// first body byte is a version, so the format can evolve without a new
// content type.

// ContentTypeJSON and ContentTypeBinary are the match-request media
// types. A request with any other Content-Type is rejected with 415
// (Unsupported Media Type) rather than guessed at.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-bellflower-shard"
)

// Codec names as advertised in StatsResponse.Codecs and accepted by the
// -wire-codec flag.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

// binaryVersion is the first byte of every binary body.
const binaryVersion = 1

// binWriter accumulates the binary encoding. Slices are written as
// uvarint(len+1) with 0 meaning nil, so the decoder reproduces the
// encoder's nil-vs-empty distinction exactly (the JSON codec preserves
// it too, via null vs []).
type binWriter struct {
	b []byte
}

func (w *binWriter) u8(v byte)        { w.b = append(w.b, v) }
func (w *binWriter) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *binWriter) varint(v int64)   { w.b = binary.AppendVarint(w.b, v) }
func (w *binWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *binWriter) f64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}
func (w *binWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// slice writes the nil-aware length prefix and returns the element count
// to emit (callers loop themselves, keeping element layout local).
func (w *binWriter) slice(n int, isNil bool) {
	if isNil {
		w.uvarint(0)
		return
	}
	w.uvarint(uint64(n) + 1)
}

func (w *binWriter) i32s(v []int32) {
	w.slice(len(v), v == nil)
	for _, x := range v {
		w.varint(int64(x))
	}
}
func (w *binWriter) ints(v []int) {
	w.slice(len(v), v == nil)
	for _, x := range v {
		w.varint(int64(x))
	}
}
func (w *binWriter) f64s(v []float64) {
	w.slice(len(v), v == nil)
	for _, x := range v {
		w.f64(x)
	}
}
func (w *binWriter) u64s(v []uint64) {
	w.slice(len(v), v == nil)
	for _, x := range v {
		w.uvarint(x)
	}
}

// binReader consumes a binary body with a latched error, so decode code
// reads linearly and checks once.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("shardrpc: binary: "+format, args...)
	}
}

func (r *binReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) bool() bool { return r.u8() != 0 }

func (r *binReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated float64 at byte %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string of %d bytes overruns body at byte %d", n, r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// slice reads the nil-aware length prefix: (count, present). A count is
// bounded by the remaining bytes (every element costs at least one byte)
// so a corrupt prefix cannot drive a giant allocation.
func (r *binReader) slice() (int, bool) {
	v := r.uvarint()
	if r.err != nil || v == 0 {
		return 0, false
	}
	n := int(v - 1)
	if n > len(r.b)-r.off {
		r.fail("slice of %d elements overruns body at byte %d", n, r.off)
		return 0, false
	}
	return n, true
}

func (r *binReader) i32s() []int32 {
	n, ok := r.slice()
	if !ok {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(r.varint())
	}
	return v
}
func (r *binReader) ints() []int {
	n, ok := r.slice()
	if !ok {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = int(r.varint())
	}
	return v
}
func (r *binReader) f64s() []float64 {
	n, ok := r.slice()
	if !ok {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = r.f64()
	}
	return v
}
func (r *binReader) u64s() []uint64 {
	n, ok := r.slice()
	if !ok {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = r.uvarint()
	}
	return v
}

// --- composite sections ---

func (w *binWriter) descriptor(d Descriptor) {
	w.varint(int64(d.Shard))
	w.varint(int64(d.NumShards))
	w.str(d.Strategy)
	w.ints(d.TreeIDs)
	w.varint(int64(d.RepoNodes))
	w.str(d.RepoHash)
}

func (r *binReader) descriptor() Descriptor {
	return Descriptor{
		Shard:     int(r.varint()),
		NumShards: int(r.varint()),
		Strategy:  r.str(),
		TreeIDs:   r.ints(),
		RepoNodes: int(r.varint()),
		RepoHash:  r.str(),
	}
}

func (w *binWriter) tree(t WireTree) {
	w.str(t.Name)
	w.slice(len(t.Nodes), t.Nodes == nil)
	for _, n := range t.Nodes {
		w.varint(int64(n.Depth))
		w.bool(n.Attr)
		w.str(n.Name)
		w.str(n.Type)
	}
}

func (r *binReader) tree() WireTree {
	t := WireTree{Name: r.str()}
	n, ok := r.slice()
	if !ok {
		return t
	}
	t.Nodes = make([]WireNode, n)
	for i := range t.Nodes {
		t.Nodes[i] = WireNode{
			Depth: int(r.varint()),
			Attr:  r.bool(),
			Name:  r.str(),
			Type:  r.str(),
		}
	}
	return t
}

func (w *binWriter) options(o WireOptions) {
	w.f64(o.Alpha)
	w.f64(o.K)
	w.f64(o.Threshold)
	w.f64(o.MinSim)
	w.varint(int64(o.TopN))
	w.varint(int64(o.Variant))
	w.varint(int64(o.Algorithm))
	w.str(o.Matcher)
	w.str(o.Structure)
	w.f64(o.StructureWeight)
	w.varint(int64(o.Parallelism))
	var flags byte
	if o.IncludePartials {
		flags |= 1
	}
	if o.OrderClusters {
		flags |= 2
	}
	if o.Agglomerative {
		flags |= 4
	}
	if o.AdaptiveTopN {
		flags |= 8
	}
	w.u8(flags)
	w.bool(o.ClusterConfig != nil)
	if cc := o.ClusterConfig; cc != nil {
		w.varint(int64(cc.JoinThreshold))
		w.varint(int64(cc.RemoveBelow))
		w.varint(int64(cc.SplitAbove))
		w.varint(int64(cc.MaxIterations))
		w.f64(cc.Stability)
		w.varint(int64(cc.Seeding))
		w.varint(int64(cc.SeedStride))
		w.f64(cc.SimBias)
	}
}

func (r *binReader) options() WireOptions {
	o := WireOptions{
		Alpha:     r.f64(),
		K:         r.f64(),
		Threshold: r.f64(),
		MinSim:    r.f64(),
		TopN:      int(r.varint()),
		Variant:   int(r.varint()),
		Algorithm: int(r.varint()),
		Matcher:   r.str(),
		Structure: r.str(),
	}
	o.StructureWeight = r.f64()
	o.Parallelism = int(r.varint())
	flags := r.u8()
	o.IncludePartials = flags&1 != 0
	o.OrderClusters = flags&2 != 0
	o.Agglomerative = flags&4 != 0
	o.AdaptiveTopN = flags&8 != 0
	if r.bool() {
		o.ClusterConfig = &WireClusterConfig{
			JoinThreshold: int(r.varint()),
			RemoveBelow:   int(r.varint()),
			SplitAbove:    int(r.varint()),
			MaxIterations: int(r.varint()),
			Stability:     r.f64(),
			Seeding:       int(r.varint()),
			SeedStride:    int(r.varint()),
			SimBias:       r.f64(),
		}
	}
	return o
}

// projection writes the projected pre-pass payload — exactly the fields
// ProjectionDigest hashes, so the digest is a pure function of this
// section's bytes regardless of the request's transport codec.
func (w *binWriter) projection(req *MatchRequest) {
	w.bool(req.HasCandidates)
	w.slice(len(req.Candidates), req.Candidates == nil)
	for _, s := range req.Candidates {
		w.i32s(s.Local)
		w.f64s(s.Sims)
	}
	w.bool(req.HasClusters)
	w.slice(len(req.Clusters), req.Clusters == nil)
	for _, c := range req.Clusters {
		w.varint(int64(c.ID))
		w.varint(int64(c.TreeID))
		w.varint(int64(c.Medoid))
		w.i32s(c.Local)
		w.u64s(c.Masks)
		w.f64s(c.Sims)
	}
	w.varint(int64(req.Iterations))
}

func (r *binReader) projection(req *MatchRequest) {
	req.HasCandidates = r.bool()
	if n, ok := r.slice(); ok {
		req.Candidates = make([]WireCandidateSet, n)
		for i := range req.Candidates {
			req.Candidates[i] = WireCandidateSet{Local: r.i32s(), Sims: r.f64s()}
		}
	}
	req.HasClusters = r.bool()
	if n, ok := r.slice(); ok {
		req.Clusters = make([]WireCluster, n)
		for i := range req.Clusters {
			req.Clusters[i] = WireCluster{
				ID:     int(r.varint()),
				TreeID: int(r.varint()),
				Medoid: int32(r.varint()),
				Local:  r.i32s(),
				Masks:  r.u64s(),
				Sims:   r.f64s(),
			}
		}
	}
	req.Iterations = int(r.varint())
}

func (w *binWriter) score(s WireScore) {
	w.f64(s.Delta)
	w.f64(s.Sim)
	w.f64(s.Path)
	w.varint(int64(s.Et))
}

func (r *binReader) score() WireScore {
	return WireScore{Delta: r.f64(), Sim: r.f64(), Path: r.f64(), Et: int(r.varint())}
}

func (w *binWriter) report(rep WireReport) {
	w.varint(int64(rep.Variant))
	w.varint(int64(rep.MappingElements))
	w.varint(int64(rep.Clusters))
	w.varint(int64(rep.UsefulClusters))
	w.f64(rep.AvgElementsPerUsefulCluster)
	w.ints(rep.ClusterSizes)
	w.varint(int64(rep.Iterations))
	w.f64(rep.Counters.SearchSpace)
	w.varint(rep.Counters.PartialMappings)
	w.varint(rep.Counters.CompleteMappings)
	w.varint(rep.Counters.Found)
	w.varint(int64(rep.Counters.UsefulClusters))
	w.slice(len(rep.Mappings), rep.Mappings == nil)
	for _, m := range rep.Mappings {
		w.i32s(m.Local)
		w.f64s(m.Sims)
		w.score(m.Score)
		w.varint(int64(m.ClusterID))
	}
	w.slice(len(rep.Partials), rep.Partials == nil)
	for _, p := range rep.Partials {
		w.i32s(p.Local)
		w.f64s(p.Sims)
		w.uvarint(p.CoveredMask)
		w.varint(int64(p.Covered))
		w.score(p.Score)
		w.varint(int64(p.ClusterID))
	}
	w.varint(rep.MatchNS)
	w.varint(rep.ClusterNS)
	w.varint(rep.GenNS)
	w.varint(int64(rep.FirstGoodAfter))
}

func (r *binReader) report() WireReport {
	rep := WireReport{
		Variant:         int(r.varint()),
		MappingElements: int(r.varint()),
		Clusters:        int(r.varint()),
		UsefulClusters:  int(r.varint()),
	}
	rep.AvgElementsPerUsefulCluster = r.f64()
	rep.ClusterSizes = r.ints()
	rep.Iterations = int(r.varint())
	rep.Counters.SearchSpace = r.f64()
	rep.Counters.PartialMappings = r.varint()
	rep.Counters.CompleteMappings = r.varint()
	rep.Counters.Found = r.varint()
	rep.Counters.UsefulClusters = int(r.varint())
	if n, ok := r.slice(); ok {
		rep.Mappings = make([]WireMapping, n)
		for i := range rep.Mappings {
			rep.Mappings[i] = WireMapping{
				Local: r.i32s(),
				Sims:  r.f64s(),
				Score: r.score(),
			}
			rep.Mappings[i].ClusterID = int(r.varint())
		}
	}
	if n, ok := r.slice(); ok {
		rep.Partials = make([]WirePartial, n)
		for i := range rep.Partials {
			rep.Partials[i] = WirePartial{
				Local:       r.i32s(),
				Sims:        r.f64s(),
				CoveredMask: r.uvarint(),
				Covered:     int(r.varint()),
				Score:       r.score(),
			}
			rep.Partials[i].ClusterID = int(r.varint())
		}
	}
	rep.MatchNS = r.varint()
	rep.ClusterNS = r.varint()
	rep.GenNS = r.varint()
	rep.FirstGoodAfter = int(r.varint())
	return rep
}

func (w *binWriter) spans(spans []WireSpan) {
	w.slice(len(spans), spans == nil)
	for _, s := range spans {
		w.str(s.ID)
		w.str(s.Parent)
		w.str(s.Name)
		w.varint(s.StartNS)
		w.varint(s.DurNS)
		w.slice(len(s.Attrs), s.Attrs == nil)
		for _, a := range s.Attrs {
			w.str(a.Key)
			w.str(a.Value)
		}
	}
}

func (r *binReader) spans() []WireSpan {
	n, ok := r.slice()
	if !ok {
		return nil
	}
	spans := make([]WireSpan, n)
	for i := range spans {
		spans[i] = WireSpan{
			ID:      r.str(),
			Parent:  r.str(),
			Name:    r.str(),
			StartNS: r.varint(),
			DurNS:   r.varint(),
		}
		if an, ok := r.slice(); ok {
			spans[i].Attrs = make([]WireAttr, an)
			for j := range spans[i].Attrs {
				spans[i].Attrs[j] = WireAttr{Key: r.str(), Value: r.str()}
			}
		}
	}
	return spans
}

// --- top-level bodies ---

// request flag bits (byte 2 of a binary match request).
const (
	binFlagProjectionRef = 1 << 0
)

// EncodeBinaryMatchRequest renders a match request in the binary wire
// format. The result decodes back to a structurally identical
// MatchRequest (including nil-vs-empty slice distinctions), which is what
// makes the binary and JSON transports interchangeable above the parse.
func EncodeBinaryMatchRequest(req *MatchRequest) []byte {
	w := &binWriter{b: make([]byte, 0, 256)}
	w.u8(binaryVersion)
	var flags byte
	if req.ProjectionRef {
		flags |= binFlagProjectionRef
	}
	w.u8(flags)
	w.descriptor(req.Descriptor)
	w.tree(req.Personal)
	w.str(req.Signature)
	w.str(req.ProjectionHash)
	w.options(req.Options)
	if !req.ProjectionRef {
		w.projection(req)
	}
	return w.b
}

// DecodeBinaryMatchRequest parses a binary match request body.
func DecodeBinaryMatchRequest(b []byte) (*MatchRequest, error) {
	r := &binReader{b: b}
	if v := r.u8(); r.err == nil && v != binaryVersion {
		return nil, fmt.Errorf("shardrpc: binary: unsupported wire version %d (want %d)", v, binaryVersion)
	}
	flags := r.u8()
	req := &MatchRequest{
		Descriptor:     r.descriptor(),
		Personal:       r.tree(),
		Signature:      r.str(),
		ProjectionHash: r.str(),
		Options:        r.options(),
		ProjectionRef:  flags&binFlagProjectionRef != 0,
	}
	if !req.ProjectionRef {
		r.projection(req)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("shardrpc: binary: %d trailing bytes after match request", len(b)-r.off)
	}
	return req, nil
}

// EncodeBinaryMatchResponse renders a match response in the binary wire
// format.
func EncodeBinaryMatchResponse(resp *MatchResponse) []byte {
	w := &binWriter{b: make([]byte, 0, 256)}
	w.u8(binaryVersion)
	w.report(resp.Report)
	w.spans(resp.Spans)
	return w.b
}

// DecodeBinaryMatchResponse parses a binary match response body.
func DecodeBinaryMatchResponse(b []byte) (*MatchResponse, error) {
	r := &binReader{b: b}
	if v := r.u8(); r.err == nil && v != binaryVersion {
		return nil, fmt.Errorf("shardrpc: binary: unsupported wire version %d (want %d)", v, binaryVersion)
	}
	resp := &MatchResponse{Report: r.report(), Spans: r.spans()}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("shardrpc: binary: %d trailing bytes after match response", len(b)-r.off)
	}
	return resp, nil
}

// ProjectionDigest content-addresses a request's projected pre-pass
// payload: a hash over the BINARY encoding of (HasCandidates, Candidates,
// HasClusters, Clusters, Iterations). Both sides compute it from wire
// structs, so the address is independent of the transport codec — a
// projection cached off a binary request is found by a JSON request with
// the same shape, and vice versa. The shard recomputes the digest over
// every full payload it caches, so a corrupt or mislabelled projection is
// rejected (400) instead of poisoning the cache.
func ProjectionDigest(req *MatchRequest) string {
	// Canonicalize the top-level nil-vs-empty distinction before hashing:
	// Candidates/Clusters are omitempty on the JSON wire, so an encoder's
	// empty-but-non-nil slice (a zero-cluster projection) arrives as nil —
	// the digest must hash both spellings identically or a legitimate JSON
	// request would fail the shard's recomputation. The flags still
	// distinguish "no projection" from "empty projection".
	c := *req
	if len(c.Candidates) == 0 {
		c.Candidates = nil
	}
	if len(c.Clusters) == 0 {
		c.Clusters = nil
	}
	w := &binWriter{b: make([]byte, 0, 512)}
	w.projection(&c)
	sum := sha256.Sum256(w.b)
	return hex.EncodeToString(sum[:16])
}
