package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strings"
	"testing"

	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
)

// postRaw posts body to the shard match endpoint under the given
// Content-Type ("" sends no header at all).
func postRaw(t *testing.T, srv *httptest.Server, ct string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/shard/match", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// stagedFixture returns a staged-candidates request shape against ts — the
// projection-carrying path the cache protocol runs on.
func stagedFixture(t *testing.T, ts *testShard) (*schema.Tree, pipeline.Options, *matcher.Candidates) {
	t.Helper()
	personal := schema.MustParseSpec("address(name,email)")
	opts := pipeline.DefaultOptions()
	opts.MinSim = 0.35
	cands := matcher.FindCandidates(personal, ts.clientRepo, matcher.NameMatcher{}, matcher.Config{MinSim: opts.MinSim}).
		Restrict(ts.clientView.Contains)
	return personal, opts, cands
}

// TestShardServerContentType pins the codec dispatch: the declared
// Content-Type decides the decoder, a mismatched or unknown one is
// rejected (415 unknown, 400 when the body does not decode in the
// declared codec), and the response mirrors the request codec while error
// bodies stay JSON.
func TestShardServerContentType(t *testing.T) {
	ts := shardUnderTest(t)
	personal := schema.MustParseSpec("book(title,author)")
	goodOpts, err := EncodeOptions(pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	good := MatchRequest{Descriptor: ts.host.Descriptor(), Personal: EncodeTree(personal), Options: goodOpts}
	jsonBody, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	binBody := EncodeBinaryMatchRequest(&good)

	cases := []struct {
		name string
		ct   string
		body []byte
		want int
	}{
		{"unknown media type", "text/plain", jsonBody, http.StatusUnsupportedMediaType},
		{"unparseable content type", ";;;", jsonBody, http.StatusUnsupportedMediaType},
		{"binary body labeled json", ContentTypeJSON, binBody, http.StatusBadRequest},
		{"json body labeled binary", ContentTypeBinary, jsonBody, http.StatusBadRequest},
		{"json with charset parameter", "application/json; charset=utf-8", jsonBody, http.StatusOK},
		{"absent content type defaults to json", "", jsonBody, http.StatusOK},
		{"binary", ContentTypeBinary, binBody, http.StatusOK},
		{"json", ContentTypeJSON, jsonBody, http.StatusOK},
	}
	for _, tc := range cases {
		resp := postRaw(t, ts.srv, tc.ct, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
			continue
		}
		wantCT := ContentTypeJSON
		if tc.want == http.StatusOK && tc.ct == ContentTypeBinary {
			wantCT = ContentTypeBinary
		}
		if got := resp.Header.Get("Content-Type"); got != wantCT {
			t.Errorf("%s: response Content-Type %q, want %q", tc.name, got, wantCT)
		}
		if tc.want == http.StatusOK && tc.ct == ContentTypeBinary {
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeBinaryMatchResponse(raw); err != nil {
				t.Errorf("%s: undecodable binary response: %v", tc.name, err)
			}
		}
	}

	// Both directions of both codecs were exercised above.
	wb := ts.host.Stats().WireBytes
	if wb.InJSON == 0 || wb.InBinary == 0 || wb.OutJSON == 0 || wb.OutBinary == 0 {
		t.Errorf("wire byte counters missed traffic: %+v", wb)
	}
}

// TestShardServerJSONOnly pins the legacy surface emulation: a JSON-only
// shard rejects binary bodies with 415 and the projection-cache fields
// like the unknown fields they are to a pre-codec decoder, advertises no
// codecs, and an auto client negotiates down to JSON against it —
// including falling back mid-flight when its negotiation state is stale.
func TestShardServerJSONOnly(t *testing.T) {
	ts := shardUnderTest(t, (*ShardServer).SetJSONOnly)
	personal := schema.MustParseSpec("book(title,author)")
	goodOpts, err := EncodeOptions(pipeline.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	good := MatchRequest{Descriptor: ts.host.Descriptor(), Personal: EncodeTree(personal), Options: goodOpts}
	jsonBody, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}

	if resp := postRaw(t, ts.srv, ContentTypeBinary, EncodeBinaryMatchRequest(&good)); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("binary against JSON-only shard: %d, want 415", resp.StatusCode)
	}
	if resp := postRaw(t, ts.srv, ContentTypeJSON, jsonBody); resp.StatusCode != http.StatusOK {
		t.Errorf("legacy JSON request: %d, want 200", resp.StatusCode)
	}
	hashed := good
	hashed.ProjectionHash = "deadbeef"
	if b, _ := json.Marshal(hashed); postRaw(t, ts.srv, ContentTypeJSON, b).StatusCode != http.StatusBadRequest {
		t.Error("JSON-only shard accepted a projection hash a pre-codec decoder would reject")
	}
	ref := good
	ref.ProjectionRef = true
	ref.ProjectionHash = "deadbeef"
	if b, _ := json.Marshal(ref); postRaw(t, ts.srv, ContentTypeJSON, b).StatusCode != http.StatusBadRequest {
		t.Error("JSON-only shard accepted a projection reference")
	}

	// No codec advertisement — indistinguishable from a pre-codec build.
	if cs := ts.host.Codecs(); cs != nil {
		t.Errorf("JSON-only shard advertises %v", cs)
	}
	sresp, err := http.Get(ts.srv.URL + "/v1/shard/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Codecs) != 0 {
		t.Errorf("stats handshake advertises %v, want nothing", sr.Codecs)
	}

	// An auto client handshakes down to JSON and serves normally.
	if err := ts.rs.Check(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ts.rs.useBinary() {
		t.Error("auto client negotiated binary against a JSON-only shard")
	}
	staged, opts, cands := stagedFixture(t, ts)
	if _, err := ts.rs.MatchWithCandidates(context.Background(), staged, opts, cands); err != nil {
		t.Fatal(err)
	}

	// Rollback tolerance: a client whose negotiation state is stale (the
	// shard rolled back after advertising binary) gets a 415, falls back
	// to JSON inside the same attempt, and clears the capability — no
	// failed request, no unreachable mark.
	ts.rs.binaryOK.Store(true)
	if _, err := ts.rs.MatchWithCandidates(context.Background(), staged, opts, cands); err != nil {
		t.Fatalf("stale binary negotiation did not fall back: %v", err)
	}
	if ts.rs.useBinary() {
		t.Error("415 did not clear the negotiated capability")
	}
	if n := ts.rs.unreachables.Load(); n != 0 {
		t.Errorf("codec fallback charged %d unreachable requests", n)
	}
	wb := ts.host.Stats().WireBytes
	if wb.InBinary != 0 || wb.OutBinary != 0 {
		t.Errorf("JSON-only shard counted binary wire bytes: %+v", wb)
	}
	if wb.InJSON == 0 || wb.OutJSON == 0 {
		t.Errorf("JSON traffic not counted: %+v", wb)
	}

	// A client FORCED to binary must fail loudly instead of degrading.
	rsb := NewRemoteShard(ts.srv.URL, ts.clientView, ts.host.Descriptor(), RemoteShardConfig{Codec: CodecBinary})
	defer rsb.Close()
	if _, err := rsb.Match(context.Background(), personal, pipeline.DefaultOptions()); err == nil || !strings.Contains(err.Error(), "415") {
		t.Errorf("forced binary against JSON-only shard: err = %v, want HTTP 415", err)
	}
}

// TestProjectionCacheProtocol drives the content-addressed projection
// flow end to end: a full staged request teaches both sides the digest,
// the repeat goes out slim and resolves from the shard's cache, and a
// shard restart (empty cache, client still believes) recovers through the
// 428 protocol turn inside the same attempt.
func TestProjectionCacheProtocol(t *testing.T) {
	ts := shardUnderTest(t)
	rs := NewRemoteShard(ts.srv.URL, ts.clientView, ts.host.Descriptor(), RemoteShardConfig{Codec: CodecBinary})
	defer rs.Close()
	personal, opts, cands := stagedFixture(t, ts)

	first, err := rs.MatchWithCandidates(context.Background(), personal, opts, cands)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := rs.encodeRequest(personal, opts, cands, true, nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if enc.hash == "" {
		t.Fatal("staged request carries no projection digest")
	}
	if !rs.knowsProjection(enc.hash) {
		t.Fatal("client did not learn the digest from a served full request")
	}
	if st := ts.host.Stats(); st.ProjectionCacheHits != 0 || st.ProjectionCacheMisses != 0 {
		t.Fatalf("full request touched the projection cache: hits=%d misses=%d", st.ProjectionCacheHits, st.ProjectionCacheMisses)
	}
	fullLen, slimLen := len(enc.body(true, false)), len(enc.body(true, true))
	if slimLen >= fullLen {
		t.Fatalf("slim body (%d bytes) not smaller than full (%d bytes)", slimLen, fullLen)
	}

	second, err := rs.MatchWithCandidates(context.Background(), personal, opts, cands)
	if err != nil {
		t.Fatal(err)
	}
	assertReportsEquivalent(t, "slim repeat", second, first)
	st := ts.host.Stats()
	if st.ProjectionCacheHits != 1 || st.ProjectionCacheMisses != 0 {
		t.Errorf("slim repeat: hits=%d misses=%d, want 1/0", st.ProjectionCacheHits, st.ProjectionCacheMisses)
	}
	// Exactly one full and one slim binary body arrived — the repeat
	// really did skip the projection payload on the wire.
	if got, want := st.WireBytes.InBinary, int64(fullLen+slimLen); got != want {
		t.Errorf("shard saw %d binary request bytes, want %d (full %d + slim %d)", got, want, fullLen, slimLen)
	}

	// Shard restart: fresh process, empty cache; the client still believes
	// the digest is cached. The slim request bounces 428 and the client
	// resends the full payload on the same endpoint, in the same attempt.
	ts2 := shardUnderTest(t)
	rs2 := NewRemoteShard(ts2.srv.URL, ts.clientView, ts2.host.Descriptor(), RemoteShardConfig{Codec: CodecBinary})
	defer rs2.Close()
	rs2.markProjection(enc.hash) // stale knowledge, as after a shard restart
	third, err := rs2.MatchWithCandidates(context.Background(), personal, opts, cands)
	if err != nil {
		t.Fatalf("projection-needed turn did not recover: %v", err)
	}
	assertReportsEquivalent(t, "428 recovery", third, first)
	if st2 := ts2.host.Stats(); st2.ProjectionCacheMisses != 1 {
		t.Errorf("restart: misses = %d, want exactly the bounced slim request", st2.ProjectionCacheMisses)
	}
	if n := rs2.unreachables.Load(); n != 0 {
		t.Errorf("protocol turn charged %d unreachable requests", n)
	}
	if !rs2.knowsProjection(enc.hash) {
		t.Error("digest not re-learned after the full resend")
	}
	if _, err := rs2.MatchWithCandidates(context.Background(), personal, opts, cands); err != nil {
		t.Fatal(err)
	}
	if st2 := ts2.host.Stats(); st2.ProjectionCacheHits != 1 {
		t.Errorf("post-recovery repeat: hits = %d, want 1", st2.ProjectionCacheHits)
	}

	// Raw protocol pins: unknown digest → 428; reference without a digest
	// → 400; full payload whose digest does not match its claim → 400 (a
	// corrupt projection must never be cached under the wrong address).
	wopts, err := EncodeOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	slim := MatchRequest{
		Descriptor: ts2.host.Descriptor(), Personal: EncodeTree(personal),
		Signature: serve.Signature(personal, opts), Options: wopts,
		ProjectionRef: true, ProjectionHash: "no-such-digest",
	}
	if resp := postRaw(t, ts2.srv, ContentTypeBinary, EncodeBinaryMatchRequest(&slim)); resp.StatusCode != http.StatusPreconditionRequired {
		t.Errorf("unknown digest: %d, want 428", resp.StatusCode)
	}
	slim.ProjectionHash = ""
	if resp := postRaw(t, ts2.srv, ContentTypeBinary, EncodeBinaryMatchRequest(&slim)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("reference without digest: %d, want 400", resp.StatusCode)
	}
	forged := enc.req
	forged.ProjectionHash = "forged"
	if resp := postRaw(t, ts2.srv, ContentTypeBinary, EncodeBinaryMatchRequest(&forged)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("digest mismatch: %d, want 400", resp.StatusCode)
	}
}

// TestRemoteShardConnectionReuse pins the dedicated transport: idle-pool
// capacity sized to the fan-out width, and consecutive requests actually
// reusing pooled connections (which requires response bodies to be fully
// drained).
func TestRemoteShardConnectionReuse(t *testing.T) {
	ts := shardUnderTest(t)
	rs := NewRemoteShard(ts.srv.URL, ts.clientView, ts.host.Descriptor(), RemoteShardConfig{Codec: CodecBinary, MaxConcurrent: 8})
	defer rs.Close()
	tr, ok := rs.hc.Transport.(*http.Transport)
	if !ok {
		t.Fatal("client does not run on a dedicated http.Transport")
	}
	if tr.MaxIdleConnsPerHost < 8 {
		t.Fatalf("MaxIdleConnsPerHost = %d, want >= MaxConcurrent (8): the shared default transport's 2 idle slots serialize a shard fan-out", tr.MaxIdleConnsPerHost)
	}

	var conns, reused int
	ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		GotConn: func(ci httptrace.GotConnInfo) {
			conns++
			if ci.Reused {
				reused++
			}
		},
	})
	personal, opts, cands := stagedFixture(t, ts)
	const n = 4
	for i := 0; i < n; i++ {
		if _, err := rs.MatchWithCandidates(ctx, personal, opts, cands); err != nil {
			t.Fatal(err)
		}
	}
	if conns != n {
		t.Fatalf("%d connections obtained, want %d", conns, n)
	}
	if reused < n-2 {
		t.Errorf("only %d/%d requests reused a pooled connection", reused, conns)
	}
}
