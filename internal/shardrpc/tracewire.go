package shardrpc

import (
	"fmt"
	"time"

	"bellflower/internal/trace"
)

// WireAttr is one span annotation on the wire.
type WireAttr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// WireSpan is one finished span on the wire. IDs travel as the fixed-width
// hex of trace.ID — uint64s would survive Go's typed JSON decoding, but
// hex strings stay exact for every consumer (jq, browsers) and match the
// X-Bellflower-Trace header encoding. Start is absolute unix nanoseconds;
// the router's tree rendering re-bases offsets on its own root, so modest
// cross-host clock skew skews display offsets, never durations.
type WireSpan struct {
	ID      string     `json:"id"`
	Parent  string     `json:"parent,omitempty"`
	Name    string     `json:"name"`
	StartNS int64      `json:"start_ns"`
	DurNS   int64      `json:"dur_ns"`
	Attrs   []WireAttr `json:"attrs,omitempty"`
}

// EncodeSpans translates a trace's finished spans to wire form.
func EncodeSpans(spans []*trace.Span) []WireSpan {
	out := make([]WireSpan, 0, len(spans))
	for _, s := range spans {
		ws := WireSpan{
			ID:      s.ID.String(),
			Name:    s.Name,
			StartNS: s.Start.UnixNano(),
			DurNS:   int64(s.Duration),
		}
		if s.Parent != 0 {
			ws.Parent = s.Parent.String()
		}
		for _, a := range s.Attrs {
			ws.Attrs = append(ws.Attrs, WireAttr{Key: a.Key, Value: a.Value})
		}
		out = append(out, ws)
	}
	return out
}

// DecodeSpans translates wire spans back into trace spans (for grafting
// into the caller's trace). Malformed IDs fail loudly, matching the rest
// of the wire codec.
func DecodeSpans(ws []WireSpan) ([]trace.Span, error) {
	out := make([]trace.Span, 0, len(ws))
	for i, w := range ws {
		id, err := trace.ParseID(w.ID)
		if err != nil {
			return nil, fmt.Errorf("shardrpc: span %d: %w", i, err)
		}
		s := trace.Span{
			ID:       id,
			Name:     w.Name,
			Start:    time.Unix(0, w.StartNS),
			Duration: time.Duration(w.DurNS),
		}
		if w.Parent != "" {
			if s.Parent, err = trace.ParseID(w.Parent); err != nil {
				return nil, fmt.Errorf("shardrpc: span %d: %w", i, err)
			}
		}
		for _, a := range w.Attrs {
			s.Attrs = append(s.Attrs, trace.Attr{Key: a.Key, Value: a.Value})
		}
		out = append(out, s)
	}
	return out, nil
}
