package shardrpc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/mapgen"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
)

// Descriptor identifies one shard of a deterministic repository partition:
// the partition shape (strategy, fan-out width, shard index) plus the
// member trees by repository-wide tree ID and the repository node count as
// a cheap fingerprint. Router and shard server each derive a Descriptor
// from their own partition of their own repository copy; the shard serves
// a request only when the two agree, so a topology mismatch — different
// repository, different strategy, wrong -shard-of index — is rejected
// before any matching happens.
type Descriptor struct {
	// Shard is this shard's index in the partition order.
	Shard int `json:"shard"`

	// NumShards is the partition's fan-out width.
	NumShards int `json:"num_shards"`

	// Strategy is the partition strategy's flag name ("clustered",
	// "balanced").
	Strategy string `json:"strategy"`

	// TreeIDs lists the member trees' repository-wide IDs in view order.
	TreeIDs []int `json:"tree_ids"`

	// RepoNodes is the full repository's node count — the wire ID spaces
	// only line up when both sides hold the same repository.
	RepoNodes int `json:"repo_nodes"`

	// RepoHash is a content hash of the full repository (its canonical
	// text serialization). Counts and tree IDs alone cannot tell two
	// same-shaped repositories with different names or types apart — and
	// a router and shard holding different repository CONTENT would
	// resolve the same local IDs to different nodes, producing silently
	// wrong mappings. The hash makes that a loud handshake failure.
	RepoHash string `json:"repo_hash"`
}

// repoHash computes the descriptor's repository content hash. The
// canonical serialization (schema.WriteRepository) covers tree order,
// names, kinds, types and structure, so equal hashes mean node-for-node
// equal repositories.
func repoHash(repo *schema.Repository) string {
	h := sha256.New()
	// Hashing cannot fail; WriteRepository's only error source is the
	// writer, and a hash.Hash never errors.
	_ = schema.WriteRepository(h, repo)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ViewDescriptor derives the descriptor of a shard view within a partition
// produced by serve.PartitionRepositoryViews. It hashes the full
// repository; callers describing a whole partition at once should use
// ViewDescriptors, which hashes once for all shards.
func ViewDescriptor(v *labeling.View, shard, numShards int, strategy serve.PartitionStrategy) Descriptor {
	return viewDescriptor(v, shard, numShards, strategy, repoHash(v.Repository()))
}

// ViewDescriptors derives every shard's descriptor for one partition,
// computing the repository content hash exactly once (it is the same
// repository under every view).
func ViewDescriptors(views []*labeling.View, strategy serve.PartitionStrategy) []Descriptor {
	out := make([]Descriptor, len(views))
	var hash string
	for i, v := range views {
		if hash == "" {
			hash = repoHash(v.Repository())
		}
		out[i] = viewDescriptor(v, i, len(views), strategy, hash)
	}
	return out
}

func viewDescriptor(v *labeling.View, shard, numShards int, strategy serve.PartitionStrategy, hash string) Descriptor {
	ids := make([]int, v.NumTrees())
	for i, t := range v.Trees() {
		ids[i] = t.ID
	}
	return Descriptor{
		Shard:     shard,
		NumShards: numShards,
		Strategy:  strategy.String(),
		TreeIDs:   ids,
		RepoNodes: v.Repository().Len(),
		RepoHash:  hash,
	}
}

// Equal reports whether two descriptors describe the same shard of the
// same partition of the same repository.
func (d Descriptor) Equal(o Descriptor) bool {
	if d.Shard != o.Shard || d.NumShards != o.NumShards ||
		d.Strategy != o.Strategy || d.RepoNodes != o.RepoNodes ||
		d.RepoHash != o.RepoHash || len(d.TreeIDs) != len(o.TreeIDs) {
		return false
	}
	for i := range d.TreeIDs {
		if d.TreeIDs[i] != o.TreeIDs[i] {
			return false
		}
	}
	return true
}

// String renders the descriptor compactly for error messages.
func (d Descriptor) String() string {
	return fmt.Sprintf("shard %d/%d (%s, %d trees, %d repo nodes)",
		d.Shard, d.NumShards, d.Strategy, len(d.TreeIDs), d.RepoNodes)
}

// WireNode is one preorder entry of a serialized schema tree.
type WireNode struct {
	Depth int    `json:"d"`
	Attr  bool   `json:"a,omitempty"`
	Name  string `json:"n"`
	Type  string `json:"t,omitempty"`
}

// WireTree is a schema tree in preorder — the personal schema's wire form.
type WireTree struct {
	Name  string     `json:"name"`
	Nodes []WireNode `json:"nodes"`
}

// EncodeTree serializes a tree as its preorder node list.
func EncodeTree(t *schema.Tree) WireTree {
	wt := WireTree{Name: t.Name, Nodes: make([]WireNode, 0, t.Len())}
	for _, n := range t.Nodes() {
		wt.Nodes = append(wt.Nodes, WireNode{
			Depth: n.Depth,
			Attr:  n.Kind == schema.KindAttribute,
			Name:  n.Name,
			Type:  n.Type,
		})
	}
	return wt
}

// DecodeTree rebuilds a tree from its preorder node list, validating the
// preorder depth structure.
func DecodeTree(wt WireTree) (*schema.Tree, error) {
	if len(wt.Nodes) == 0 {
		return nil, fmt.Errorf("shardrpc: tree %q has no nodes", wt.Name)
	}
	b := schema.NewBuilder(wt.Name)
	var stack []*schema.Node // stack[d] = last node at depth d
	for i, wn := range wt.Nodes {
		if wn.Depth < 0 || wn.Depth > len(stack) || (wn.Depth == 0) != (i == 0) {
			return nil, fmt.Errorf("shardrpc: tree %q node %d: depth %d does not follow preorder", wt.Name, i, wn.Depth)
		}
		var n *schema.Node
		switch {
		case wn.Depth == 0:
			if wn.Attr {
				return nil, fmt.Errorf("shardrpc: tree %q: root cannot be an attribute", wt.Name)
			}
			n = b.Root(wn.Name)
			n.Type = wn.Type
		case wn.Attr:
			n = b.TypedAttribute(stack[wn.Depth-1], wn.Name, wn.Type)
		default:
			n = b.TypedElement(stack[wn.Depth-1], wn.Name, wn.Type)
		}
		stack = append(stack[:wn.Depth], n)
	}
	return b.Tree()
}

// WireClusterConfig mirrors cluster.Config field for field.
type WireClusterConfig struct {
	JoinThreshold int     `json:"join_threshold"`
	RemoveBelow   int     `json:"remove_below"`
	SplitAbove    int     `json:"split_above"`
	MaxIterations int     `json:"max_iterations"`
	Stability     float64 `json:"stability"`
	Seeding       int     `json:"seeding"`
	SeedStride    int     `json:"seed_stride"`
	SimBias       float64 `json:"sim_bias"`
}

func encodeClusterConfig(c cluster.Config) WireClusterConfig {
	return WireClusterConfig{
		JoinThreshold: c.JoinThreshold,
		RemoveBelow:   c.RemoveBelow,
		SplitAbove:    c.SplitAbove,
		MaxIterations: c.MaxIterations,
		Stability:     c.Stability,
		Seeding:       int(c.Seeding),
		SeedStride:    c.SeedStride,
		SimBias:       c.SimBias,
	}
}

func decodeClusterConfig(w WireClusterConfig) cluster.Config {
	return cluster.Config{
		JoinThreshold: w.JoinThreshold,
		RemoveBelow:   w.RemoveBelow,
		SplitAbove:    w.SplitAbove,
		MaxIterations: w.MaxIterations,
		Stability:     w.Stability,
		Seeding:       cluster.Seeding(w.Seeding),
		SeedStride:    w.SeedStride,
		SimBias:       w.SimBias,
	}
}

// WireOptions is the canonical wire form of pipeline.Options. Interface
// fields travel by name — exactly the vocabulary the HTTP daemon already
// exposes (name|token|synonym|type matchers, path|child|leaf structure
// matchers); options carrying any other implementation are not
// wire-encodable and fail EncodeOptions, which surfaces as that shard's
// error rather than a silently different result.
type WireOptions struct {
	Alpha           float64            `json:"alpha"`
	K               float64            `json:"k"`
	Threshold       float64            `json:"threshold"`
	MinSim          float64            `json:"min_sim"`
	TopN            int                `json:"top_n,omitempty"`
	Variant         int                `json:"variant"`
	Algorithm       int                `json:"algorithm,omitempty"`
	Matcher         string             `json:"matcher,omitempty"`
	Structure       string             `json:"structure,omitempty"`
	StructureWeight float64            `json:"structure_weight,omitempty"`
	Parallelism     int                `json:"parallelism,omitempty"`
	IncludePartials bool               `json:"include_partials,omitempty"`
	OrderClusters   bool               `json:"order_clusters,omitempty"`
	Agglomerative   bool               `json:"agglomerative,omitempty"`
	AdaptiveTopN    bool               `json:"adaptive_top_n,omitempty"`
	ClusterConfig   *WireClusterConfig `json:"cluster_config,omitempty"`
}

func encodeMatcher(m matcher.Matcher) (string, error) {
	switch mm := m.(type) {
	case nil:
		return "", nil
	case matcher.NameMatcher:
		switch mm {
		case matcher.NameMatcher{}:
			return "name", nil
		case matcher.NameMatcher{TokenAware: true}:
			return "token", nil
		}
	case matcher.TypeMatcher:
		return "type", nil
	case *matcher.SynonymMatcher:
		// The only synonym matcher with a wire name is the default
		// dictionary; Describe is canonical, so equality is behavioural.
		if matcher.Describe(mm) == matcher.Describe(matcher.DefaultSynonyms()) {
			return "synonym", nil
		}
	}
	return "", fmt.Errorf("shardrpc: matcher %s is not wire-encodable (want default, name, token, synonym or type)", matcher.Describe(m))
}

func decodeMatcher(s string) (matcher.Matcher, error) {
	switch s {
	case "":
		return nil, nil
	case "name":
		return matcher.NameMatcher{}, nil
	case "token":
		return matcher.NameMatcher{TokenAware: true}, nil
	case "synonym":
		return matcher.DefaultSynonyms(), nil
	case "type":
		return matcher.TypeMatcher{}, nil
	default:
		return nil, fmt.Errorf("shardrpc: unknown wire matcher %q", s)
	}
}

func encodeStructureMatcher(m matcher.Matcher) (string, error) {
	switch m.(type) {
	case nil:
		return "", nil
	case matcher.PathContextMatcher:
		return "path", nil
	case matcher.ChildContextMatcher:
		return "child", nil
	case matcher.LeafContextMatcher:
		return "leaf", nil
	}
	return "", fmt.Errorf("shardrpc: structure matcher %s is not wire-encodable (want path, child or leaf)", matcher.Describe(m))
}

func decodeStructureMatcher(s string) (matcher.Matcher, error) {
	switch s {
	case "":
		return nil, nil
	case "path":
		return matcher.PathContextMatcher{}, nil
	case "child":
		return matcher.ChildContextMatcher{}, nil
	case "leaf":
		return matcher.LeafContextMatcher{}, nil
	default:
		return nil, fmt.Errorf("shardrpc: unknown wire structure matcher %q", s)
	}
}

// EncodeOptions translates options to the wire form; options carrying
// matcher implementations without a wire name fail.
func EncodeOptions(o pipeline.Options) (WireOptions, error) {
	m, err := encodeMatcher(o.Matcher)
	if err != nil {
		return WireOptions{}, err
	}
	sm, err := encodeStructureMatcher(o.StructureMatcher)
	if err != nil {
		return WireOptions{}, err
	}
	w := WireOptions{
		Alpha:           o.Objective.Alpha,
		K:               o.Objective.K,
		Threshold:       o.Threshold,
		MinSim:          o.MinSim,
		TopN:            o.TopN,
		Variant:         int(o.Variant),
		Algorithm:       int(o.Algorithm),
		Matcher:         m,
		Structure:       sm,
		StructureWeight: o.StructureWeight,
		Parallelism:     o.Parallelism,
		IncludePartials: o.IncludePartials,
		OrderClusters:   o.OrderClusters,
		Agglomerative:   o.Agglomerative,
		AdaptiveTopN:    o.AdaptiveTopN,
	}
	if o.ClusterConfig != nil {
		cc := encodeClusterConfig(*o.ClusterConfig)
		w.ClusterConfig = &cc
	}
	return w, nil
}

// DecodeOptions is the inverse of EncodeOptions.
func DecodeOptions(w WireOptions) (pipeline.Options, error) {
	m, err := decodeMatcher(w.Matcher)
	if err != nil {
		return pipeline.Options{}, err
	}
	sm, err := decodeStructureMatcher(w.Structure)
	if err != nil {
		return pipeline.Options{}, err
	}
	o := pipeline.Options{
		Threshold:        w.Threshold,
		MinSim:           w.MinSim,
		TopN:             w.TopN,
		Variant:          pipeline.Variant(w.Variant),
		Matcher:          m,
		Algorithm:        mapgen.Algorithm(w.Algorithm),
		StructureMatcher: sm,
		StructureWeight:  w.StructureWeight,
		Parallelism:      w.Parallelism,
		IncludePartials:  w.IncludePartials,
		OrderClusters:    w.OrderClusters,
		Agglomerative:    w.Agglomerative,
		AdaptiveTopN:     w.AdaptiveTopN,
	}
	o.Objective.Alpha = w.Alpha
	o.Objective.K = w.K
	if w.ClusterConfig != nil {
		cc := decodeClusterConfig(*w.ClusterConfig)
		o.ClusterConfig = &cc
	}
	return o, nil
}

// WireCandidateSet is one personal node's candidate list: parallel arrays
// of view-local node IDs and similarities, preserving the canonical
// (sim desc, node ID asc) order.
type WireCandidateSet struct {
	Local []int32   `json:"local"`
	Sims  []float64 `json:"sims"`
}

// EncodeCandidates translates a candidate set (already restricted to the
// view) into local-ID wire form. A candidate outside the view is an
// encoding error — it would silently vanish from the shard's result.
func EncodeCandidates(v *labeling.View, c *matcher.Candidates) ([]WireCandidateSet, error) {
	out := make([]WireCandidateSet, len(c.Sets))
	for i := range c.Sets {
		elems := c.Sets[i].Elems
		if len(elems) == 0 {
			continue
		}
		ws := WireCandidateSet{
			Local: make([]int32, len(elems)),
			Sims:  make([]float64, len(elems)),
		}
		for j, cand := range elems {
			lid := v.LocalID(cand.Node)
			if lid < 0 {
				return nil, fmt.Errorf("shardrpc: candidate node %v (set %d) is outside the shard view", cand.Node, i)
			}
			ws.Local[j] = int32(lid)
			ws.Sims[j] = cand.Sim
		}
		out[i] = ws
	}
	return out, nil
}

// DecodeCandidates rebuilds a candidate set against the shard's own view,
// bound to the decoded personal tree.
func DecodeCandidates(v *labeling.View, personal *schema.Tree, sets []WireCandidateSet) (*matcher.Candidates, error) {
	if len(sets) != personal.Len() {
		return nil, fmt.Errorf("shardrpc: %d candidate sets for a %d-node personal schema", len(sets), personal.Len())
	}
	out := &matcher.Candidates{
		Personal: personal,
		Sets:     make([]matcher.CandidateSet, len(sets)),
	}
	for i := range sets {
		if len(sets[i].Local) != len(sets[i].Sims) {
			return nil, fmt.Errorf("shardrpc: candidate set %d: %d IDs, %d sims", i, len(sets[i].Local), len(sets[i].Sims))
		}
		out.Sets[i].Personal = personal.NodeAt(i)
		if len(sets[i].Local) == 0 {
			continue
		}
		elems := make([]matcher.Candidate, len(sets[i].Local))
		for j, lid := range sets[i].Local {
			if lid < 0 || int(lid) >= v.Len() {
				return nil, fmt.Errorf("shardrpc: candidate set %d: local ID %d outside view of %d nodes", i, lid, v.Len())
			}
			elems[j] = matcher.Candidate{Node: v.Node(int(lid)), Sim: sets[i].Sims[j]}
		}
		out.Sets[i].Elems = elems
	}
	return out, nil
}

// WireCluster is one cluster in local-ID form: parallel arrays for the
// member elements plus the medoid and owning tree.
type WireCluster struct {
	ID     int       `json:"id"`
	TreeID int       `json:"tree_id"`
	Medoid int32     `json:"medoid"` // local ID, -1 when unset
	Local  []int32   `json:"local"`
	Masks  []uint64  `json:"masks"`
	Sims   []float64 `json:"sims"`
}

// EncodeClusters translates clusters (whole, never split — clusters never
// span trees, so each belongs wholesale to one shard) into local-ID form.
func EncodeClusters(v *labeling.View, cls []*cluster.Cluster) ([]WireCluster, error) {
	out := make([]WireCluster, len(cls))
	for i, cl := range cls {
		wc := WireCluster{
			ID:     cl.ID,
			TreeID: cl.TreeID,
			Medoid: -1,
			Local:  make([]int32, len(cl.Elements)),
			Masks:  make([]uint64, len(cl.Elements)),
			Sims:   make([]float64, len(cl.Elements)),
		}
		if cl.Medoid != nil {
			lid := v.LocalID(cl.Medoid)
			if lid < 0 {
				return nil, fmt.Errorf("shardrpc: cluster %d medoid %v is outside the shard view", cl.ID, cl.Medoid)
			}
			wc.Medoid = int32(lid)
		}
		for j, e := range cl.Elements {
			lid := v.LocalID(e.Node)
			if lid < 0 {
				return nil, fmt.Errorf("shardrpc: cluster %d element %v is outside the shard view", cl.ID, e.Node)
			}
			wc.Local[j] = int32(lid)
			wc.Masks[j] = e.Mask
			wc.Sims[j] = e.BestSim
		}
		out[i] = wc
	}
	return out, nil
}

// DecodeClusters rebuilds clusters against the shard's own view.
func DecodeClusters(v *labeling.View, wcs []WireCluster) ([]*cluster.Cluster, error) {
	out := make([]*cluster.Cluster, len(wcs))
	for i, wc := range wcs {
		if len(wc.Local) != len(wc.Masks) || len(wc.Local) != len(wc.Sims) {
			return nil, fmt.Errorf("shardrpc: cluster %d: mismatched element arrays (%d/%d/%d)", wc.ID, len(wc.Local), len(wc.Masks), len(wc.Sims))
		}
		cl := &cluster.Cluster{ID: wc.ID, TreeID: wc.TreeID}
		if wc.Medoid >= 0 {
			if int(wc.Medoid) >= v.Len() {
				return nil, fmt.Errorf("shardrpc: cluster %d: medoid local ID %d outside view", wc.ID, wc.Medoid)
			}
			cl.Medoid = v.Node(int(wc.Medoid))
		}
		if len(wc.Local) > 0 {
			cl.Elements = make([]cluster.Element, len(wc.Local))
			for j, lid := range wc.Local {
				if lid < 0 || int(lid) >= v.Len() {
					return nil, fmt.Errorf("shardrpc: cluster %d: local ID %d outside view of %d nodes", wc.ID, lid, v.Len())
				}
				cl.Elements[j] = cluster.Element{Node: v.Node(int(lid)), Mask: wc.Masks[j], BestSim: wc.Sims[j]}
			}
			if got := v.TreeID(cl.Elements[0].Node); got != wc.TreeID {
				return nil, fmt.Errorf("shardrpc: cluster %d claims tree %d but its elements live in tree %d", wc.ID, wc.TreeID, got)
			}
		}
		out[i] = cl
	}
	return out, nil
}

// WireScore mirrors objective.Score.
type WireScore struct {
	Delta float64 `json:"delta"`
	Sim   float64 `json:"sim"`
	Path  float64 `json:"path"`
	Et    int     `json:"et"`
}

// WireCounters mirrors mapgen.Counters.
type WireCounters struct {
	SearchSpace      float64 `json:"search_space"`
	PartialMappings  int64   `json:"partial_mappings"`
	CompleteMappings int64   `json:"complete_mappings"`
	Found            int64   `json:"found"`
	UsefulClusters   int     `json:"useful_clusters"`
}

// WireMapping is one ranked mapping with images as view-local node IDs.
type WireMapping struct {
	Local     []int32   `json:"local"`
	Sims      []float64 `json:"sims"`
	Score     WireScore `json:"score"`
	ClusterID int       `json:"cluster_id"`
}

// WirePartial is one partial mapping; uncovered ranks carry local ID -1.
type WirePartial struct {
	Local       []int32   `json:"local"`
	Sims        []float64 `json:"sims"`
	CoveredMask uint64    `json:"covered_mask"`
	Covered     int       `json:"covered"`
	Score       WireScore `json:"score"`
	ClusterID   int       `json:"cluster_id"`
}

// WireReport is a pipeline.Report with node references in local-ID space.
// Incomplete/ShardErrors have no wire form: a single shard never merges.
type WireReport struct {
	Variant                     int           `json:"variant"`
	MappingElements             int           `json:"mapping_elements"`
	Clusters                    int           `json:"clusters"`
	UsefulClusters              int           `json:"useful_clusters"`
	AvgElementsPerUsefulCluster float64       `json:"avg_elements_per_useful_cluster"`
	ClusterSizes                []int         `json:"cluster_sizes,omitempty"`
	Iterations                  int           `json:"iterations"`
	Counters                    WireCounters  `json:"counters"`
	Mappings                    []WireMapping `json:"mappings"`
	Partials                    []WirePartial `json:"partials,omitempty"`
	MatchNS                     int64         `json:"match_ns"`
	ClusterNS                   int64         `json:"cluster_ns"`
	GenNS                       int64         `json:"gen_ns"`
	FirstGoodAfter              int           `json:"first_good_after"`
}

// EncodeReport translates a shard's report into local-ID wire form.
func EncodeReport(v *labeling.View, rep *pipeline.Report) (WireReport, error) {
	wr := WireReport{
		Variant:                     int(rep.Variant),
		MappingElements:             rep.MappingElements,
		Clusters:                    rep.Clusters,
		UsefulClusters:              rep.UsefulClusters,
		AvgElementsPerUsefulCluster: rep.AvgElementsPerUsefulCluster,
		ClusterSizes:                rep.ClusterSizes,
		Iterations:                  rep.Iterations,
		Counters: WireCounters{
			SearchSpace:      rep.Counters.SearchSpace,
			PartialMappings:  rep.Counters.PartialMappings,
			CompleteMappings: rep.Counters.CompleteMappings,
			Found:            rep.Counters.Found,
			UsefulClusters:   rep.Counters.UsefulClusters,
		},
		MatchNS:        int64(rep.MatchTime),
		ClusterNS:      int64(rep.ClusterTime),
		GenNS:          int64(rep.GenTime),
		FirstGoodAfter: rep.FirstGoodAfter,
	}
	wr.Mappings = make([]WireMapping, len(rep.Mappings))
	for i, m := range rep.Mappings {
		wm := WireMapping{
			Local:     make([]int32, len(m.Images)),
			Sims:      m.Sims,
			Score:     WireScore{Delta: m.Score.Delta, Sim: m.Score.Sim, Path: m.Score.Path, Et: m.Score.Et},
			ClusterID: m.ClusterID,
		}
		for j, img := range m.Images {
			lid := v.LocalID(img)
			if lid < 0 {
				return WireReport{}, fmt.Errorf("shardrpc: mapping %d image %v is outside the shard view", i, img)
			}
			wm.Local[j] = int32(lid)
		}
		wr.Mappings[i] = wm
	}
	if len(rep.Partials) > 0 {
		wr.Partials = make([]WirePartial, len(rep.Partials))
		for i, p := range rep.Partials {
			wp := WirePartial{
				Local:       make([]int32, len(p.Images)),
				Sims:        p.Sims,
				CoveredMask: p.CoveredMask,
				Covered:     p.Covered,
				Score:       WireScore{Delta: p.Score.Delta, Sim: p.Score.Sim, Path: p.Score.Path, Et: p.Score.Et},
				ClusterID:   p.ClusterID,
			}
			for j, img := range p.Images {
				if img == nil {
					wp.Local[j] = -1
					continue
				}
				lid := v.LocalID(img)
				if lid < 0 {
					return WireReport{}, fmt.Errorf("shardrpc: partial mapping %d image %v is outside the shard view", i, img)
				}
				wp.Local[j] = int32(lid)
			}
			wr.Partials[i] = wp
		}
	}
	return wr, nil
}

// DecodeReport rebuilds the report with node references resolved through
// the caller's own view — after which the report is indistinguishable from
// one produced by an in-process shard.
func DecodeReport(v *labeling.View, wr WireReport) (*pipeline.Report, error) {
	rep := &pipeline.Report{
		Variant:                     pipeline.Variant(wr.Variant),
		MappingElements:             wr.MappingElements,
		Clusters:                    wr.Clusters,
		UsefulClusters:              wr.UsefulClusters,
		AvgElementsPerUsefulCluster: wr.AvgElementsPerUsefulCluster,
		ClusterSizes:                wr.ClusterSizes,
		Iterations:                  wr.Iterations,
		MatchTime:                   time.Duration(wr.MatchNS),
		ClusterTime:                 time.Duration(wr.ClusterNS),
		GenTime:                     time.Duration(wr.GenNS),
		FirstGoodAfter:              wr.FirstGoodAfter,
	}
	rep.Counters.SearchSpace = wr.Counters.SearchSpace
	rep.Counters.PartialMappings = wr.Counters.PartialMappings
	rep.Counters.CompleteMappings = wr.Counters.CompleteMappings
	rep.Counters.Found = wr.Counters.Found
	rep.Counters.UsefulClusters = wr.Counters.UsefulClusters
	node := func(lid int32, what string, i int) (*schema.Node, error) {
		if lid < 0 || int(lid) >= v.Len() {
			return nil, fmt.Errorf("shardrpc: %s %d: local ID %d outside view of %d nodes", what, i, lid, v.Len())
		}
		return v.Node(int(lid)), nil
	}
	if len(wr.Mappings) > 0 {
		rep.Mappings = make([]mapgen.Mapping, len(wr.Mappings))
		for i, wm := range wr.Mappings {
			if len(wm.Local) != len(wm.Sims) {
				return nil, fmt.Errorf("shardrpc: mapping %d: %d images, %d sims", i, len(wm.Local), len(wm.Sims))
			}
			m := mapgen.Mapping{
				Images:    make([]*schema.Node, len(wm.Local)),
				Sims:      wm.Sims,
				ClusterID: wm.ClusterID,
			}
			m.Score.Delta, m.Score.Sim, m.Score.Path, m.Score.Et = wm.Score.Delta, wm.Score.Sim, wm.Score.Path, wm.Score.Et
			for j, lid := range wm.Local {
				n, err := node(lid, "mapping", i)
				if err != nil {
					return nil, err
				}
				m.Images[j] = n
			}
			rep.Mappings[i] = m
		}
	}
	if len(wr.Partials) > 0 {
		rep.Partials = make([]mapgen.PartialMapping, len(wr.Partials))
		for i, wp := range wr.Partials {
			if len(wp.Local) != len(wp.Sims) {
				return nil, fmt.Errorf("shardrpc: partial %d: %d images, %d sims", i, len(wp.Local), len(wp.Sims))
			}
			p := mapgen.PartialMapping{
				Images:      make([]*schema.Node, len(wp.Local)),
				Sims:        wp.Sims,
				CoveredMask: wp.CoveredMask,
				Covered:     wp.Covered,
				ClusterID:   wp.ClusterID,
			}
			p.Score.Delta, p.Score.Sim, p.Score.Path, p.Score.Et = wp.Score.Delta, wp.Score.Sim, wp.Score.Path, wp.Score.Et
			for j, lid := range wp.Local {
				if lid == -1 {
					continue // uncovered rank
				}
				n, err := node(lid, "partial mapping", i)
				if err != nil {
					return nil, err
				}
				p.Images[j] = n
			}
			rep.Partials[i] = p
		}
	}
	return rep, nil
}

// MatchRequest is the /v1/shard/match request body. HasCandidates /
// HasClusters distinguish "absent" from "present but empty" — a shard may
// legitimately be handed zero clusters for a query.
//
// ProjectionHash content-addresses the projected pre-pass payload
// (ProjectionDigest). A full request carries it alongside the payload so
// the shard can verify and cache the projection; a slim request sets
// ProjectionRef and OMITS Candidates/Clusters entirely, asking the shard
// to resolve the hash from its projection cache — the shard answers 428
// (projection-needed) when it cannot, and the client retries with the
// full payload.
type MatchRequest struct {
	Descriptor     Descriptor         `json:"descriptor"`
	Personal       WireTree           `json:"personal"`
	Signature      string             `json:"signature,omitempty"`
	ProjectionHash string             `json:"projection_hash,omitempty"`
	ProjectionRef  bool               `json:"projection_ref,omitempty"`
	Options        WireOptions        `json:"options"`
	HasCandidates  bool               `json:"has_candidates,omitempty"`
	Candidates     []WireCandidateSet `json:"candidates,omitempty"`
	HasClusters    bool               `json:"has_clusters,omitempty"`
	Clusters       []WireCluster      `json:"clusters,omitempty"`
	Iterations     int                `json:"iterations,omitempty"`
}

// MatchResponse is the /v1/shard/match success body. Spans carries the
// shard-side trace (decode/match/encode and the pipeline stages under
// them) when the request arrived with an X-Bellflower-Trace header; the
// client grafts them into its own trace, stitching ONE tree across the
// process boundary.
type MatchResponse struct {
	Report WireReport `json:"report"`
	Spans  []WireSpan `json:"spans,omitempty"`
}

// StatsResponse is the /v1/shard/stats body: the shard's instrumentation
// snapshot plus its descriptor, which doubles as the health-check
// handshake (RemoteShard.Check verifies it against the router's own
// partition). Codecs advertises the match codecs the shard accepts
// ("json", "binary") — the feature-negotiation half of the handshake: a
// shard that omits it (any pre-codec build) is spoken to in JSON, so a
// binary-capable router interops with JSON-only shards during a rolling
// upgrade. A shard advertising "binary" also resolves projection
// references (ProjectionRef requests).
type StatsResponse struct {
	Descriptor Descriptor  `json:"descriptor"`
	Codecs     []string    `json:"codecs,omitempty"`
	Stats      serve.Stats `json:"stats"`
}
