// Package faultproxy is a fault-injecting HTTP reverse proxy for
// exercising the distributed serving tier's failure paths: it fronts a
// shard server (or any HTTP upstream) and, on demand, drops connections
// without an HTTP response (what a crashed or partitioned process looks
// like to a client — a transport error, not a status code), injects
// bursts of error statuses, adds latency, and swaps its upstream (so a
// "recovered" endpoint can come back as the WRONG shard, exercising
// descriptor re-verification). It is the substrate of the shard
// control-plane tests and is reusable for future chaos work; it has no
// testing dependencies and is safe for concurrent use.
package faultproxy

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting reverse proxy; create with New and serve it
// (typically via httptest.NewServer(p)). All knobs are safe to flip while
// requests are in flight.
//
// Per request, faults apply in order: down (drop the connection) →
// status injection → latency → forward to the upstream. An upstream that
// is itself unreachable also surfaces as a dropped connection, not a 502
// — the proxy must look like the dead process it stands in for.
type Proxy struct {
	upstream atomic.Pointer[url.URL]
	down     atomic.Bool
	latency  atomic.Int64 // nanoseconds added before forwarding

	injectCode atomic.Int64 // status code to inject while injectLeft > 0
	injectLeft atomic.Int64

	forwarded atomic.Int64
	dropped   atomic.Int64
	injected  atomic.Int64
	matchReqs atomic.Int64

	rp *httputil.ReverseProxy
}

// New returns a proxy forwarding to upstream ("http://host:port"), fully
// transparent until a fault knob is set.
func New(upstream string) (*Proxy, error) {
	p := &Proxy{}
	if err := p.SetUpstream(upstream); err != nil {
		return nil, err
	}
	p.rp = &httputil.ReverseProxy{
		Director: func(r *http.Request) {
			u := p.upstream.Load()
			r.URL.Scheme = u.Scheme
			r.URL.Host = u.Host
		},
		// An unreachable upstream must read as a transport error on the
		// client, exactly like the proxy's own down mode.
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			dropConn(w)
		},
		// Injected faults routinely abort connections mid-response; that
		// is the point, not something to log.
		ErrorLog: log.New(io.Discard, "", 0),
	}
	return p, nil
}

// SetUpstream swaps the forward target ("http://host:port"); in-flight
// requests finish against the upstream they started with. Pointing a
// "recovered" proxy at a different shard server is how tests prove
// re-admission is gated on descriptor re-verification, not mere
// reachability.
func (p *Proxy) SetUpstream(upstream string) error {
	u, err := url.Parse(upstream)
	if err != nil {
		return fmt.Errorf("faultproxy: bad upstream %q: %w", upstream, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("faultproxy: upstream %q needs scheme and host", upstream)
	}
	p.upstream.Store(u)
	return nil
}

// SetDown switches hard-down mode: every request's connection is closed
// without any HTTP response — a transport error on the client, the wire
// signature of a crashed process.
func (p *Proxy) SetDown(down bool) { p.down.Store(down) }

// Down reports whether hard-down mode is on.
func (p *Proxy) Down() bool { return p.down.Load() }

// SetLatency adds a fixed delay before forwarding each request (0 turns
// it off). The delay runs on the request goroutine, so client-side
// timeouts fire exactly as they would against a slow shard.
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// InjectStatus makes the next n requests answer with the given status
// code (and a minimal body) instead of being forwarded — an HTTP-level
// error burst, which clients must treat as the shard's answer, not as a
// transport failure.
func (p *Proxy) InjectStatus(code, n int) {
	p.injectCode.Store(int64(code))
	p.injectLeft.Store(int64(n))
}

// Counts reports how many requests were forwarded, dropped (down mode or
// dead upstream at connect time), and answered with an injected status.
func (p *Proxy) Counts() (forwarded, dropped, injected int64) {
	return p.forwarded.Load(), p.dropped.Load(), p.injected.Load()
}

// MatchRequests counts requests that targeted the shard MATCH endpoint,
// whatever fault they then hit — the deterministic probe for "the router
// skipped this shard without sending anything": while a shard is marked
// unhealthy this counter must not move, health probes (which hit the
// stats endpoint) notwithstanding.
func (p *Proxy) MatchRequests() int64 { return p.matchReqs.Load() }

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/v1/shard/match") {
		p.matchReqs.Add(1)
	}
	if p.down.Load() {
		p.dropped.Add(1)
		dropConn(w)
		return
	}
	for {
		left := p.injectLeft.Load()
		if left <= 0 {
			break
		}
		if p.injectLeft.CompareAndSwap(left, left-1) {
			p.injected.Add(1)
			code := int(p.injectCode.Load())
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			fmt.Fprintf(w, `{"error":"faultproxy: injected HTTP %d"}`, code)
			return
		}
	}
	if d := time.Duration(p.latency.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			p.dropped.Add(1)
			dropConn(w)
			return
		}
	}
	p.forwarded.Add(1)
	p.rp.ServeHTTP(w, r)
}

// dropConn terminates the client connection without an HTTP response.
// Plain HTTP/1.x connections (httptest.NewServer) support hijacking; a
// non-hijackable writer falls back to 502, which is still an error but an
// HTTP-level one — tests that need true transport errors must serve the
// proxy over HTTP/1.x.
func dropConn(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	conn.Close()
}
