package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bellflower/internal/cluster"
	"bellflower/internal/labeling"
	"bellflower/internal/matcher"
	"bellflower/internal/pipeline"
	"bellflower/internal/schema"
	"bellflower/internal/serve"
	"bellflower/internal/trace"
)

// ErrDescriptorMismatch marks a remote server that answers but hosts a
// different shard/partition/repository than the client expects — a
// configuration error no retry can fix; match with errors.Is. It wraps
// serve.ErrShardMismatch, so the router's fan-out hard-fails on it even
// in partial-results mode, both at Check time and per request (the shard
// server's 409 maps back to this error).
var ErrDescriptorMismatch = fmt.Errorf("shardrpc: shard descriptor mismatch: %w", serve.ErrShardMismatch)

// Codec modes accepted by RemoteShardConfig.Codec.
const (
	// CodecAuto negotiates: binary (and projection references) when the
	// shard's stats handshake advertises it, JSON otherwise — the mode
	// that makes rolling upgrades safe.
	CodecAuto = "auto"
)

// RemoteShardConfig tunes one remote shard client.
type RemoteShardConfig struct {
	// Timeout bounds each match attempt on top of the request context (a
	// per-shard deadline; the fan-out's own context still applies). 0 =
	// context only.
	Timeout time.Duration

	// StatsTimeout bounds Stats and Check probes. Default 2s.
	StatsTimeout time.Duration

	// MaxConcurrent is the shard's advertised request capacity
	// (CapacityHint), sizing the router's batch fan-out. Default 16.
	MaxConcurrent int

	// Codec selects the match-request codec: CodecAuto (default)
	// negotiates via the stats handshake; CodecBinary forces binary (and
	// projection references) without waiting for a handshake; CodecJSON
	// pins the legacy JSON surface — full payloads, no projection
	// references — exactly what a pre-codec client sends.
	Codec string

	// HTTPClient overrides the transport (tests inject
	// httptest.Server.Client()). By default the client builds a dedicated
	// http.Transport sized for replica fan-out — MaxIdleConnsPerHost at
	// least MaxConcurrent, bounded dial/TLS timeouts — instead of
	// inheriting the shared default transport's 2 pooled connections per
	// host. No client-level timeout either way; deadlines come from
	// Timeout/ctx.
	HTTPClient *http.Client
}

// newShardTransportClient builds the dedicated per-shard HTTP client: the
// shared http.DefaultTransport caps idle pooled connections at 2 per
// host, which serializes a MaxConcurrent-wide fan-out onto 2 reused
// connections plus fresh handshakes for the rest.
func newShardTransportClient(maxConcurrent int) *http.Client {
	perHost := maxConcurrent
	if perHost < 2 {
		perHost = 2
	}
	return &http.Client{Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
		MaxIdleConns:          4 * perHost,
		MaxIdleConnsPerHost:   perHost,
		IdleConnTimeout:       90 * time.Second,
	}}
}

// RemoteShard is a serve.ShardBackend that forwards match traffic to a
// shard hosted in another process (bellflower-server -shard-of) over the
// wire protocol of this package. Node references cross the wire in the
// shard view's local-ID space; the client re-resolves them through its OWN
// view of its OWN repository copy, so decoded reports merge exactly like
// in-process shard reports.
//
// Failure semantics: transport errors are retried once (a fresh attempt,
// honouring the caller's context), then surface as this shard's error —
// under the router's partial-results mode that means Report.Incomplete
// with a ShardError instead of a failed request. Remote 504/503 map back
// to context.DeadlineExceeded / serve.ErrClosed so the daemon's status
// mapping and the router's strict mode treat remote shards like local
// ones. Two responses are protocol turns rather than failures and are
// handled inside the attempt, on the same endpoint: 428
// (projection-needed — resend with the full projection) and 415 under
// auto negotiation (the shard stopped speaking binary — fall back to
// JSON and stay there until a handshake re-advertises).
type RemoteShard struct {
	base string
	view *labeling.View
	desc Descriptor
	hc   *http.Client
	cfg  RemoteShardConfig

	closed       atomic.Bool
	unreachables atomic.Int64 // REQUESTS that exhausted their attempts without an HTTP response

	// binaryOK tracks the negotiated capability: set when the shard's
	// stats handshake (Check, health probes, stats scrapes) advertises
	// the binary codec, cleared when it stops — or when a binary request
	// bounces with 415 (a rolled-back shard mid-flight).
	binaryOK atomic.Bool

	// projKnown holds the projection digests this shard has confirmed
	// cached (any 200 to a request that carried the digest). A slim
	// request (ProjectionRef) is sent only for known digests; a 428
	// forgets the digest and retries with the full payload.
	projMu    sync.Mutex
	projKnown map[string]struct{}

	// Client-side stage timers: what this process spends translating to
	// and from the wire and waiting on the network. Folded into Stats()
	// alongside the remote shard's own per-stage figures.
	stEncode    serve.StageTimer
	stRoundtrip serve.StageTimer
	stDecode    serve.StageTimer
}

var _ serve.ShardBackend = (*RemoteShard)(nil)

// NewRemoteShard returns a client for the shard server at addr
// ("host:port" or a full http:// URL). view must be the caller's own view
// of the shard's tree set — the wire ID space — and desc the descriptor
// the remote side is expected to host (ViewDescriptor of view).
func NewRemoteShard(addr string, view *labeling.View, desc Descriptor, cfg RemoteShardConfig) *RemoteShard {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if cfg.StatsTimeout <= 0 {
		cfg.StatsTimeout = 2 * time.Second
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 16
	}
	if cfg.Codec == "" {
		cfg.Codec = CodecAuto
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = newShardTransportClient(cfg.MaxConcurrent)
	}
	return &RemoteShard{
		base:      strings.TrimSuffix(addr, "/"),
		view:      view,
		desc:      desc,
		hc:        hc,
		cfg:       cfg,
		projKnown: make(map[string]struct{}),
	}
}

// Addr returns the shard server's base URL.
func (rs *RemoteShard) Addr() string { return rs.base }

// Descriptor returns the descriptor this client expects the remote side to
// host.
func (rs *RemoteShard) Descriptor() Descriptor { return rs.desc }

// CapacityHint implements the router's batch-sizing probe.
func (rs *RemoteShard) CapacityHint() int { return rs.cfg.MaxConcurrent }

// Close marks the client closed; later matches fail with serve.ErrClosed.
// The remote server is NOT shut down — it belongs to its own process.
func (rs *RemoteShard) Close() {
	rs.closed.Store(true)
	rs.hc.CloseIdleConnections()
}

// useBinary reports whether the next request goes out in the binary
// codec; binary capability also gates projection references (a shard
// advertising the codec resolves them too).
func (rs *RemoteShard) useBinary() bool {
	switch rs.cfg.Codec {
	case CodecBinary:
		return true
	case CodecJSON:
		return false
	default:
		return rs.binaryOK.Load()
	}
}

func (rs *RemoteShard) knowsProjection(hash string) bool {
	rs.projMu.Lock()
	defer rs.projMu.Unlock()
	_, ok := rs.projKnown[hash]
	return ok
}

func (rs *RemoteShard) markProjection(hash string) {
	rs.projMu.Lock()
	defer rs.projMu.Unlock()
	rs.projKnown[hash] = struct{}{}
}

func (rs *RemoteShard) forgetProjection(hash string) {
	rs.projMu.Lock()
	defer rs.projMu.Unlock()
	delete(rs.projKnown, hash)
}

// noteCodecs records the shard's codec advertisement from a stats
// handshake. An empty advertisement is a pre-codec (or JSON-only) shard.
func (rs *RemoteShard) noteCodecs(codecs []string) {
	rs.binaryOK.Store(slices.Contains(codecs, CodecBinary))
}

// Match implements serve.ShardBackend over the wire (full per-shard
// pipeline on the remote side).
func (rs *RemoteShard) Match(ctx context.Context, personal *schema.Tree, opts pipeline.Options) (*pipeline.Report, error) {
	return rs.match(ctx, personal, opts, nil, false, nil, false, 0)
}

// MatchWithCandidates implements serve.ShardBackend over the wire.
func (rs *RemoteShard) MatchWithCandidates(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates) (*pipeline.Report, error) {
	if cands == nil {
		return nil, fmt.Errorf("shardrpc: MatchWithCandidates needs a candidate set")
	}
	return rs.match(ctx, personal, opts, cands, true, nil, false, 0)
}

// MatchWithClusters implements serve.ShardBackend over the wire — the
// router's pre-pass path: projected candidates and translated clusters
// ship in local-ID space, the remote shard runs generation only.
func (rs *RemoteShard) MatchWithClusters(ctx context.Context, personal *schema.Tree, opts pipeline.Options, cands *matcher.Candidates, clusters []*cluster.Cluster, iterations int) (*pipeline.Report, error) {
	if cands == nil {
		return nil, fmt.Errorf("shardrpc: MatchWithClusters needs a candidate set")
	}
	if clusters == nil {
		return nil, fmt.Errorf("shardrpc: MatchWithClusters needs a cluster slice (possibly empty, never nil)")
	}
	return rs.match(ctx, personal, opts, cands, true, clusters, true, iterations)
}

func (rs *RemoteShard) match(ctx context.Context, personal *schema.Tree, opts pipeline.Options,
	cands *matcher.Candidates, hasCands bool, clusters []*cluster.Cluster, hasClusters bool, iterations int) (*pipeline.Report, error) {
	if rs.closed.Load() {
		return nil, serve.ErrClosed
	}
	if personal == nil || personal.Root() == nil {
		return nil, fmt.Errorf("shardrpc: nil personal schema")
	}
	encStart := time.Now()
	_, esp := trace.StartSpan(ctx, "rpc.encode")
	enc, err := rs.encodeRequest(personal, opts, cands, hasCands, clusters, hasClusters, iterations)
	if err == nil {
		// Pre-marshal the body the first attempt will most likely send, so
		// the encode timer prices the real serialization work.
		enc.body(rs.useBinary(), rs.slimEligible(enc))
	}
	esp.End()
	rs.stEncode.Observe(time.Since(encStart))
	if err != nil {
		return nil, err
	}

	// Retry-once: a transport failure (connection refused/reset, per-shard
	// timeout) gets one fresh attempt while the caller's context is still
	// live; HTTP-level errors are the shard's answer and are not retried.
	// Only a request that EXHAUSTS its attempts counts as unreachable — a
	// first attempt rescued by its retry is a served request, not an
	// error (Stats would otherwise report outages that never happened).
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 && ctx.Err() != nil {
			break
		}
		rep, transport, err := rs.post(ctx, enc)
		if err == nil {
			return rep, nil
		}
		lastErr = err
		if !transport {
			return nil, err
		}
	}
	// A caller whose own context expired mid-attempt did not discover an
	// unreachable shard — don't charge phantom outages to a healthy one.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rs.unreachables.Add(1)
	return nil, lastErr
}

// encodedRequest is one match request translated to wire structs, with
// its projection digest and lazily marshalled bodies per (codec, slim)
// shape. Replicas of one shard share a single encodedRequest — they hold
// the same view and descriptor — while each picks the body its own
// negotiation state calls for.
type encodedRequest struct {
	req  MatchRequest
	hash string // projection digest; "" when no projection is staged

	mu     sync.Mutex
	bodies map[string][]byte
}

// body marshals (and caches) the request in the given shape. slim strips
// the projection payload and sets ProjectionRef — valid only when hash is
// non-empty.
func (e *encodedRequest) body(binary, slim bool) []byte {
	key := "j"
	if binary {
		key = "b"
	}
	if slim {
		key += "s"
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if b, ok := e.bodies[key]; ok {
		return b
	}
	req := e.req
	if slim {
		req.ProjectionRef = true
		req.HasCandidates = false
		req.Candidates = nil
		req.HasClusters = false
		req.Clusters = nil
		req.Iterations = 0
	} else if !binary {
		// The full JSON body is the LEGACY surface — byte-compatible with
		// what a pre-codec client sends. A pre-codec shard decodes with
		// DisallowUnknownFields, so the projection-cache fields must not
		// appear (JSON is only ever spoken to shards that did not
		// negotiate binary, which includes every pre-codec build).
		req.ProjectionHash = ""
	}
	var b []byte
	if binary {
		b = EncodeBinaryMatchRequest(&req)
	} else {
		// Marshalling wire structs cannot fail: every field is a plain
		// value type.
		b, _ = json.Marshal(req)
	}
	if e.bodies == nil {
		e.bodies = make(map[string][]byte, 2)
	}
	e.bodies[key] = b
	return b
}

// encodeRequest builds the wire request and its projection digest.
func (rs *RemoteShard) encodeRequest(personal *schema.Tree, opts pipeline.Options,
	cands *matcher.Candidates, hasCands bool, clusters []*cluster.Cluster, hasClusters bool, iterations int) (*encodedRequest, error) {
	wopts, err := EncodeOptions(opts)
	if err != nil {
		return nil, err
	}
	enc := &encodedRequest{req: MatchRequest{
		Descriptor: rs.desc,
		Personal:   EncodeTree(personal),
		Signature:  serve.Signature(personal, opts),
		Options:    wopts,
		Iterations: iterations,
	}}
	if hasCands {
		enc.req.HasCandidates = true
		if enc.req.Candidates, err = EncodeCandidates(rs.view, cands); err != nil {
			return nil, err
		}
	}
	if hasClusters {
		enc.req.HasClusters = true
		if enc.req.Clusters, err = EncodeClusters(rs.view, clusters); err != nil {
			return nil, err
		}
	}
	if hasCands {
		enc.hash = ProjectionDigest(&enc.req)
		enc.req.ProjectionHash = enc.hash
	}
	return enc, nil
}

// slimEligible reports whether projection references may be used for this
// request at all: there must be a staged projection, and the shard must
// have negotiated the capability (forced-JSON clients never slim — that
// is the legacy surface).
func (rs *RemoteShard) slimEligible(enc *encodedRequest) bool {
	return enc.hash != "" && rs.useBinary()
}

// send runs one HTTP exchange.
func (rs *RemoteShard) send(cctx, rctx context.Context, body []byte, binary bool) (*http.Response, error) {
	hreq, err := http.NewRequestWithContext(cctx, http.MethodPost, rs.base+"/v1/shard/match", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("shardrpc: %w", err)
	}
	if binary {
		hreq.Header.Set("Content-Type", ContentTypeBinary)
	} else {
		hreq.Header.Set("Content-Type", ContentTypeJSON)
	}
	if hv := trace.HeaderValue(rctx); hv != "" {
		hreq.Header.Set(trace.Header, hv)
	}
	return rs.hc.Do(hreq)
}

// post runs one match attempt. transport reports whether the failure
// happened below the protocol (no HTTP response decoded), i.e. whether a
// retry could help. Protocol turns — 428 projection-needed, 415 under
// auto negotiation — are resolved inside the attempt, on this same
// endpoint: they are answers, not failures, so they must not trigger
// replica failover or count against health.
func (rs *RemoteShard) post(ctx context.Context, enc *encodedRequest) (rep *pipeline.Report, transport bool, err error) {
	cctx := ctx
	if rs.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, rs.cfg.Timeout)
		defer cancel()
	}
	// The round-trip span is the stitch point: its ID crosses in the
	// trace header, the shard parents its whole serve tree to it, and the
	// spans shipped back in the response graft in under it.
	rctx, rsp := trace.StartSpan(cctx, "rpc.roundtrip")
	defer rsp.End()

	binary := rs.useBinary()
	slim := rs.slimEligible(enc) && rs.knowsProjection(enc.hash)
	rtStart := time.Now()
	resp, err := rs.send(cctx, rctx, enc.body(binary, slim), binary)
	if err != nil {
		rsp.SetAttr("error", err.Error())
		return nil, true, fmt.Errorf("shardrpc: shard %s unreachable: %w", rs.base, err)
	}
	if resp.StatusCode == http.StatusPreconditionRequired && slim {
		// Projection-needed: the shard no longer holds the projection
		// (restart, eviction). Resend with the payload inlined — same
		// endpoint, same attempt.
		drain(resp)
		rs.forgetProjection(enc.hash)
		rsp.SetAttr("projection", "resent")
		slim = false
		resp, err = rs.send(cctx, rctx, enc.body(binary, false), binary)
		if err != nil {
			rsp.SetAttr("error", err.Error())
			return nil, true, fmt.Errorf("shardrpc: shard %s unreachable: %w", rs.base, err)
		}
	}
	if resp.StatusCode == http.StatusUnsupportedMediaType && binary && rs.cfg.Codec != CodecBinary {
		// The shard stopped speaking binary (rolled back mid-upgrade).
		// Fall back to the legacy JSON surface for this and later requests
		// until a stats handshake re-advertises the codec.
		drain(resp)
		rs.binaryOK.Store(false)
		rsp.SetAttr("codec", "json-fallback")
		binary, slim = false, false
		resp, err = rs.send(cctx, rctx, enc.body(false, false), false)
		if err != nil {
			rsp.SetAttr("error", err.Error())
			return nil, true, fmt.Errorf("shardrpc: shard %s unreachable: %w", rs.base, err)
		}
	}
	rs.stRoundtrip.Observe(time.Since(rtStart))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rsp.SetAttrInt("status", int64(resp.StatusCode))
		return nil, false, rs.statusError(resp)
	}

	decStart := time.Now()
	_, dsp := trace.StartSpan(rctx, "rpc.decode")
	var mr MatchResponse
	if resp.Header.Get("Content-Type") == ContentTypeBinary {
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, maxMatchBody))
		if rerr == nil {
			var pm *MatchResponse
			if pm, rerr = DecodeBinaryMatchResponse(raw); rerr == nil {
				mr = *pm
			}
		}
		if rerr != nil {
			dsp.End()
			return nil, true, fmt.Errorf("shardrpc: shard %s: bad response: %w", rs.base, rerr)
		}
	} else if err := json.NewDecoder(io.LimitReader(resp.Body, maxMatchBody)).Decode(&mr); err != nil {
		dsp.End()
		return nil, true, fmt.Errorf("shardrpc: shard %s: bad response: %w", rs.base, err)
	}
	rep, err = DecodeReport(rs.view, mr.Report)
	dsp.End()
	rs.stDecode.Observe(time.Since(decStart))
	if err != nil {
		return nil, false, err
	}
	// The shard served a request that carried the projection digest — it
	// now holds the projection, so later identical shapes can go slim.
	if rs.slimEligible(enc) {
		rs.markProjection(enc.hash)
	}
	// Stitch the shard-side spans into the caller's trace. A decode
	// failure here loses observability, never correctness — drop quietly.
	if tr := trace.FromContext(ctx); tr != nil && len(mr.Spans) > 0 {
		if spans, err := DecodeSpans(mr.Spans); err == nil {
			tr.Graft(spans)
		}
	}
	return rep, false, nil
}

// drain discards and closes an HTTP response body that will not be read,
// keeping the connection reusable.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// statusError maps a non-200 shard response back onto the error classes
// the serving layer distinguishes.
func (rs *RemoteShard) statusError(resp *http.Response) error {
	var e errorJSON
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e)
	msg := e.Error
	if msg == "" {
		msg = resp.Status
	}
	switch resp.StatusCode {
	case http.StatusGatewayTimeout:
		return fmt.Errorf("shardrpc: shard %s: %s: %w", rs.base, msg, context.DeadlineExceeded)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("shardrpc: shard %s: %s: %w", rs.base, msg, serve.ErrClosed)
	case http.StatusConflict:
		// The shard hosts a different topology (it was reconfigured after
		// the construction-time handshake): a misconfiguration, not a
		// failure — the wrapped sentinel makes the router hard-fail
		// instead of serving degraded merges around wrong answers.
		return fmt.Errorf("shard %s: %s: %w", rs.base, msg, ErrDescriptorMismatch)
	default:
		return fmt.Errorf("shardrpc: shard %s: HTTP %d: %s", rs.base, resp.StatusCode, msg)
	}
}

// Check probes the shard server's health and verifies that it hosts
// exactly the shard this client was built for — the descriptor handshake
// that catches topology mismatches (wrong -shard-of index, different
// partition strategy, different repository) at wiring time. The same
// exchange negotiates the wire codec: the shard's advertisement decides
// whether this client sends binary payloads and projection references.
func (rs *RemoteShard) Check(ctx context.Context) error {
	sr, err := rs.fetchStats(ctx)
	if err != nil {
		return err
	}
	if !sr.Descriptor.Equal(rs.desc) {
		return fmt.Errorf("%w: shard %s hosts %s, want %s", ErrDescriptorMismatch, rs.base, sr.Descriptor, rs.desc)
	}
	return nil
}

// Stats implements serve.ShardBackend: the REMOTE shard's snapshot,
// fetched best-effort with the stats timeout. Requests that exhausted
// their transport attempts never reached the shard, so the client folds
// them in as requests + errors (retry-rescued requests count only on the
// shard, as the successes they are); an unreachable shard reports just
// those client-side figures instead of going silent.
func (rs *RemoteShard) Stats() serve.Stats {
	ctx, cancel := context.WithTimeout(context.Background(), rs.cfg.StatsTimeout)
	defer cancel()
	te := rs.unreachables.Load()
	sr, err := rs.fetchStats(ctx)
	if err != nil {
		st := serve.Stats{Requests: te, Errors: te}
		rs.addClientStages(&st)
		return st
	}
	st := sr.Stats
	st.Requests += te
	st.Errors += te
	rs.addClientStages(&st)
	return st
}

// clientStats is the client-side-only snapshot — exhausted requests plus
// the RPC stage timers — used for a replica already marked unhealthy, so
// a stats scrape does not pay StatsTimeout per dead replica.
func (rs *RemoteShard) clientStats() serve.Stats {
	te := rs.unreachables.Load()
	st := serve.Stats{Requests: te, Errors: te}
	rs.addClientStages(&st)
	return st
}

// addClientStages folds the client-side RPC stage timers into a remote
// snapshot. The keys are disjoint from the shard's own pipeline stages,
// so this is a plain insert.
func (rs *RemoteShard) addClientStages(st *serve.Stats) {
	add := func(name string, t *serve.StageTimer) {
		if snap := t.Snapshot(); snap.Count > 0 {
			if st.Stages == nil {
				st.Stages = make(map[string]serve.LatencyStats, 3)
			}
			st.Stages[name] = snap
		}
	}
	add(serve.StageEncode, &rs.stEncode)
	add(serve.StageRoundtrip, &rs.stRoundtrip)
	add(serve.StageDecode, &rs.stDecode)
}

func (rs *RemoteShard) fetchStats(ctx context.Context) (StatsResponse, error) {
	var sr StatsResponse
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.base+"/v1/shard/stats", nil)
	if err != nil {
		return sr, fmt.Errorf("shardrpc: %w", err)
	}
	resp, err := rs.hc.Do(hreq)
	if err != nil {
		return sr, fmt.Errorf("shardrpc: shard %s unreachable: %w", rs.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sr, fmt.Errorf("shardrpc: shard %s: HTTP %d", rs.base, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sr); err != nil {
		return sr, fmt.Errorf("shardrpc: shard %s: bad stats response: %w", rs.base, err)
	}
	// Every stats exchange refreshes the codec negotiation — health
	// probes keep it current through upgrades and rollbacks.
	rs.noteCodecs(sr.Codecs)
	return sr, nil
}
